package redpatch

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"redpatch/internal/fleet"
)

// TestPlanCampaignSurface pins the /api/v2/plan-campaign payload
// contract: deferred and residualAsp are always present (never null),
// totalRounds matches, and a window too small for any OS patch actually
// produces deferrals.
func TestPlanCampaignSurface(t *testing.T) {
	s, _ := caseStudy(t)

	plan, err := s.PlanCampaign("app", 35*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalRounds != len(plan.Rounds) || plan.TotalRounds < 2 {
		t.Fatalf("TotalRounds = %d with %d rounds, want a split campaign", plan.TotalRounds, len(plan.Rounds))
	}
	if len(plan.ResidualASP) != plan.TotalRounds+1 {
		t.Fatalf("residualAsp %d entries, want %d", len(plan.ResidualASP), plan.TotalRounds+1)
	}
	for i := 1; i < len(plan.ResidualASP); i++ {
		if plan.ResidualASP[i] > plan.ResidualASP[i-1] {
			t.Errorf("residualAsp grew at %d", i)
		}
	}
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"totalRounds"`, `"deferred":[`, `"residualAsp":[`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("payload missing %s: %s", key, data)
		}
	}
	if strings.Contains(string(data), `"deferred":null`) {
		t.Errorf("deferred serialized as null: %s", data)
	}

	// A 24-minute window fits app service patches but no 10-minute OS
	// patch: deferrals must surface with a non-zero residual floor.
	tight, err := s.PlanCampaign("app", 24*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Deferred) == 0 {
		t.Fatal("24-minute window should defer the OS patches")
	}
	// The deferred OS flaws happen not to be remotely exploitable, so
	// the residual floor may legitimately reach zero; the trajectory
	// itself must still be well-formed and monotone.
	if len(tight.ResidualASP) != tight.TotalRounds+1 {
		t.Errorf("tight residualAsp %d entries, want %d", len(tight.ResidualASP), tight.TotalRounds+1)
	}
	for i := 1; i < len(tight.ResidualASP); i++ {
		if tight.ResidualASP[i] > tight.ResidualASP[i-1] {
			t.Errorf("tight residualAsp grew at %d", i)
		}
	}
}

// TestFleetEngine exercises the facade adapter against the fleet
// scheduler end to end, and checks the memoized engine serves repeated
// spec shapes from cache.
func TestFleetEngine(t *testing.T) {
	s, _ := caseStudy(t)
	resolve := func(string) (fleet.Engine, error) { return s.FleetEngine(), nil }

	systems := make([]fleet.System, 6)
	for i := range systems {
		systems[i] = fleet.System{
			ID:   string(rune('a' + i)),
			Role: "app",
			Tiers: []fleet.TierSpec{
				{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 1 + i%2},
				{Role: "app", Replicas: 2}, {Role: "db", Replicas: 1},
			},
			WindowMinutes: 60,
		}
	}
	before := s.EngineStats()
	plan, err := fleet.PlanFleet(context.Background(), systems, resolve, fleet.PlanOptions{MaxConcurrent: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Systems) != len(systems) {
		t.Fatalf("planned %d systems, want %d", len(plan.Systems), len(systems))
	}
	after := s.EngineStats()
	// Six systems over two distinct shapes: at most two fresh solves,
	// the rest served by the engine cache.
	if solves := after.Solves - before.Solves; solves > 2 {
		t.Errorf("engine solves grew by %d, want <= 2 (two distinct shapes)", solves)
	}
	if hits := after.Hits - before.Hits; hits < 4 {
		t.Errorf("engine hits grew by %d, want >= 4", hits)
	}

	sum, err := fleet.Simulate(context.Background(), plan, fleet.SimOptions{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Windows != len(plan.Windows) || sum.RolledBack != 0 {
		t.Errorf("summary = %+v, want %d clean windows", sum, len(plan.Windows))
	}
}
