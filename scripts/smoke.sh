#!/usr/bin/env bash
# Warm-cache restart smoke for redpatchd, runnable locally or in CI.
#
# Boots the daemon with -cache-dir, evaluates a design, registers a
# fleet system, shuts down gracefully, restarts on the same cache dir
# and asserts the design is served from the persisted memo cache (zero
# solves, one hit, straight off /metrics), that the fleet registry
# survived the restart, that ?explain=1 and /debug/traces surface
# provenance, and that the mixed-version rollout endpoint streams a
# frontier. Leaves traces.json in the working directory for artifact
# upload.
#
# Then the cluster smoke: a coordinator sharding a sweep over two
# worker processes, one of which is SIGKILLed mid-sweep — the stream
# must still end in a done trailer byte-identical to a single-process
# run of the same sweep.
set -euo pipefail

ADDR=${ADDR:-127.0.0.1:18080}
W1=${W1:-127.0.0.1:18081}
W2=${W2:-127.0.0.1:18082}
BIN=${BIN:-/tmp/redpatchd}

go build -o "$BIN" ./cmd/redpatchd
CACHE=$(mktemp -d)
BODY='{"dns":1,"web":2,"app":2,"db":1}'

wait_healthz() {
  for _ in $(seq 1 50); do
    curl -sf "$ADDR/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "daemon on $ADDR never became healthy" >&2
  return 1
}

# Readiness, not liveness: workers must pass /readyz (cache restored,
# scenarios registered, listener bound) before the coordinator may
# dispatch to them.
wait_ready() {
  for _ in $(seq 1 50); do
    curl -sf "$1/readyz" >/dev/null && return 0
    sleep 0.2
  done
  echo "daemon on $1 never became ready" >&2
  return 1
}

"$BIN" -addr "$ADDR" -cache-dir "$CACHE" &
PID=$!
wait_healthz
curl -sf -X POST "$ADDR/api/v1/evaluate" -d "$BODY" >/dev/null
curl -s "$ADDR/metrics" | grep -F 'redpatchd_engine_solves_total{scenario="default"} 1'
curl -sf -X POST "$ADDR/api/v2/fleet/register" -d '{"systems":[{
  "id":"smoke-1","role":"app","windowMinutes":60,
  "tiers":[{"role":"dns","replicas":1},{"role":"web","replicas":2},{"role":"app","replicas":2},{"role":"db","replicas":1}]}]}' >/dev/null
kill -TERM "$PID"
wait "$PID"
test -s "$CACHE/default.cache.json"
test -s "$CACHE/fleet.json"

"$BIN" -addr "$ADDR" -cache-dir "$CACHE" -pprof -log-format json &
PID=$!
wait_healthz
curl -sf -X POST "$ADDR/api/v1/evaluate" -d "$BODY" >/dev/null
METRICS=$(curl -s "$ADDR/metrics")
echo "$METRICS" | grep -F 'redpatchd_engine_solves_total{scenario="default"} 0'
echo "$METRICS" | grep -F 'redpatchd_engine_cache_hits_total{scenario="default"} 1'
echo "$METRICS" | grep -F 'redpatchd_cache_restored_entries_total 1'
# The fleet registry rode the restart: the registered system is back
# and planning it runs on the restored warm cache.
echo "$METRICS" | grep -F 'redpatchd_fleet_systems 1'
curl -sf -X POST "$ADDR/api/v2/fleet/plan" -d '{}' \
  | grep -F '"smoke-1"' >/dev/null
curl -s "$ADDR/metrics" | grep -F 'redpatchd_fleet_plans_total 1'

# Provenance surfaces: ?explain=1 names the solver that answered (a
# design the restored cache has not seen, so the solvers actually
# run), /debug/traces (behind -pprof) retains the request trace with
# its root http.request span.
curl -sf -X POST "$ADDR/api/v2/evaluate?explain=1" \
  -d '{"spec":{"tiers":[{"role":"dns","replicas":1},{"role":"web","replicas":3},{"role":"app","replicas":2},{"role":"db","replicas":1}]}}' \
  | grep -F '"availabilitySolver"'
curl -sf "$ADDR/debug/traces" | tee traces.json \
  | grep -F '"http.request"'

# Mixed-version rollout: a one-shot schedule streams NDJSON ending in
# a done trailer that carries the security-availability frontier.
ROLLOUT=$(curl -sf -X POST "$ADDR/api/v2/rollout/sweep" \
  -d '{"spec":{"tiers":[{"role":"dns","replicas":1},{"role":"web","replicas":2},{"role":"app","replicas":2},{"role":"db","replicas":1}]},"schedule":{"strategy":"one-shot"}}')
echo "$ROLLOUT" | grep -F '"done":true' >/dev/null
echo "$ROLLOUT" | grep -F '"frontier"' >/dev/null

kill -TERM "$PID"
wait "$PID"
echo "warm-cache restart + trace + rollout surfaces verified"

# ── Cluster smoke: coordinator + 2 workers, one SIGKILLed mid-sweep ──

# 256 designs; each worker's evaluator is slowed by 50ms of injected
# latency per design so the sweep is reliably still in flight when the
# worker dies.
SWEEP='{"tiers":[{"role":"web","min":1,"max":16},{"role":"app","min":1,"max":16}]}'

# Single-process baseline trailer for the same sweep.
"$BIN" -addr "$ADDR" &
PID=$!
wait_ready "$ADDR"
BASE=$(curl -sf -X POST "$ADDR/api/v2/sweep/stream" -d "$SWEEP" | tail -n 1)
kill -TERM "$PID"
wait "$PID"
echo "$BASE" | grep -F '"done":true' >/dev/null

"$BIN" -worker -addr "$W1" -chaos-seed 1 -chaos-site "evaluate,0,1,50,0" &
WPID1=$!
"$BIN" -worker -addr "$W2" -chaos-seed 2 -chaos-site "evaluate,0,1,50,0" &
WPID2=$!
"$BIN" -addr "$ADDR" -cluster-workers "$W1,$W2" -cluster-shards 8 &
PID=$!
wait_ready "$W1"
wait_ready "$W2"
wait_ready "$ADDR"

curl -sf -X POST "$ADDR/api/v2/sweep/stream" -d "$SWEEP" >cluster_sweep.out &
CURL=$!
sleep 1
kill -KILL "$WPID1"
wait "$WPID1" || true
wait "$CURL"

CLUSTER=$(tail -n 1 cluster_sweep.out)
echo "$CLUSTER" | grep -F '"done":true' >/dev/null
if [ "$CLUSTER" != "$BASE" ]; then
  echo "cluster trailer diverged from single-process baseline:" >&2
  echo " cluster: $CLUSTER" >&2
  echo "baseline: $BASE" >&2
  exit 1
fi
# The fleet actually did the work before the kill: shards were
# dispatched, and losing a worker mid-shard forced a retry or a local
# fallback.
CMETRICS=$(curl -s "$ADDR/metrics")
echo "$CMETRICS" | grep -E 'redpatchd_cluster_dispatches_total [1-9]' >/dev/null
echo "$CMETRICS" | grep -E 'redpatchd_cluster_(retries|local_fallbacks)_total [1-9]' >/dev/null

kill -TERM "$PID"
wait "$PID"
kill -TERM "$WPID2"
wait "$WPID2"
rm -f cluster_sweep.out
echo "cluster sweep survived a worker SIGKILL byte-identical to single-process"
