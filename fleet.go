package redpatch

import (
	"context"
	"time"

	"redpatch/internal/fleet"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/redundancy"
)

// fleetEngine adapts a case study to the fleet scheduler's Engine
// interface: design evaluations go through the memoized engine (so a
// thousand-system fleet over a handful of spec shapes costs a handful of
// solves), campaign planning through the evaluator's policy-aware
// planner.
type fleetEngine struct{ s *CaseStudy }

func (f fleetEngine) EvaluateSpecCtx(ctx context.Context, spec paperdata.DesignSpec) (redundancy.Result, error) {
	return f.s.eng.EvaluateSpecCtx(ctx, spec)
}

func (f fleetEngine) PlanCampaign(role string, maxWindow time.Duration) (patch.Campaign, error) {
	return f.s.eval.PlanCampaign(role, maxWindow)
}

// FleetEngine exposes the study to the fleet scheduler
// (internal/fleet.PlanFleet): redpatchd's scenario registry resolves one
// per named scenario.
func (s *CaseStudy) FleetEngine() fleet.Engine { return fleetEngine{s} }
