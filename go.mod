module redpatch

go 1.24
