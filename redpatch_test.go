package redpatch

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"redpatch/internal/mathx"
)

// A case study solves four server SRNs; share one across the facade
// tests and benchmarks.
var (
	studyOnce sync.Once
	study     *CaseStudy
	studyErr  error
	designs   []DesignReport
)

func caseStudy(t testing.TB) (*CaseStudy, []DesignReport) {
	studyOnce.Do(func() {
		study, studyErr = NewCaseStudy()
		if studyErr != nil {
			return
		}
		designs, studyErr = study.PaperDesigns()
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return study, designs
}

func TestBaseNetworkHeadlineNumbers(t *testing.T) {
	s, _ := caseStudy(t)
	base, err := s.BaseNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if base.Servers != 6 {
		t.Errorf("servers = %d, want 6", base.Servers)
	}
	if !mathx.AlmostEqual(base.COA, 0.99707, 1e-4) {
		t.Errorf("COA = %v, want ≈ 0.99707 (paper Table VI)", base.COA)
	}
	if !mathx.AlmostEqual(base.Before.AIM, 52.2, 1e-9) || !mathx.AlmostEqual(base.After.AIM, 42.2, 1e-9) {
		t.Errorf("AIM = %v -> %v, want 52.2 -> 42.2 (paper Table II)", base.Before.AIM, base.After.AIM)
	}
	if base.Before.NoEV != 26 || base.After.NoEV != 11 {
		t.Errorf("NoEV = %d -> %d, want 26 -> 11", base.Before.NoEV, base.After.NoEV)
	}
	if base.Before.NoAP != 8 || base.After.NoAP != 4 {
		t.Errorf("NoAP = %d -> %d, want 8 -> 4", base.Before.NoAP, base.After.NoAP)
	}
	if base.Description != "1 DNS + 2 WEB + 2 APP + 1 DB" {
		t.Errorf("Description = %q", base.Description)
	}
}

func TestPaperDesignOrder(t *testing.T) {
	_, ds := caseStudy(t)
	if len(ds) != 5 {
		t.Fatalf("designs = %d, want 5", len(ds))
	}
	want := []string{"D1", "D2", "D3", "D4", "D5"}
	for i, d := range ds {
		if d.Name != want[i] {
			t.Errorf("design %d = %s, want %s", i, d.Name, want[i])
		}
	}
}

func TestPatchRatesTable5(t *testing.T) {
	s, _ := caseStudy(t)
	rates := s.PatchRates()
	tests := []struct {
		role     string
		wantMTTR float64
		wantDown float64 // minutes
	}{
		{role: "dns", wantMTTR: 0.6667, wantDown: 40},
		{role: "web", wantMTTR: 0.5834, wantDown: 35},
		{role: "app", wantMTTR: 1.0001, wantDown: 60},
		{role: "db", wantMTTR: 0.9167, wantDown: 55},
	}
	for _, tt := range tests {
		r, ok := rates[tt.role]
		if !ok {
			t.Fatalf("missing rates for %s", tt.role)
		}
		if !mathx.AlmostEqual(r.MTTPHours, 720, 1e-9) {
			t.Errorf("%s MTTP = %v, want 720", tt.role, r.MTTPHours)
		}
		if !mathx.AlmostEqual(r.MTTRHours, tt.wantMTTR, 1e-4) {
			t.Errorf("%s MTTR = %v, want ≈ %v", tt.role, r.MTTRHours, tt.wantMTTR)
		}
		if r.DowntimeMinutes != tt.wantDown {
			t.Errorf("%s downtime = %v min, want %v", tt.role, r.DowntimeMinutes, tt.wantDown)
		}
	}
}

func TestDecisionRegions(t *testing.T) {
	_, ds := caseStudy(t)

	region1 := FilterScatter(ds, ScatterBounds{MaxASP: 0.2, MinCOA: 0.9962})
	if len(region1) != 2 || region1[0].Name != "D4" || region1[1].Name != "D5" {
		t.Errorf("Eq.3 region 1 = %v, want [D4 D5]", names(region1))
	}
	region2 := FilterScatter(ds, ScatterBounds{MaxASP: 0.1, MinCOA: 0.9961})
	if len(region2) != 1 || region2[0].Name != "D2" {
		t.Errorf("Eq.3 region 2 = %v, want [D2]", names(region2))
	}

	multi1 := FilterMulti(ds, MultiBounds{MaxASP: 0.2, MaxNoEV: 9, MaxNoAP: 2, MaxNoEP: 1, MinCOA: 0.9962})
	if len(multi1) != 1 || multi1[0].Name != "D4" {
		t.Errorf("Eq.4 region 1 = %v, want [D4]", names(multi1))
	}
	multi2 := FilterMulti(ds, MultiBounds{MaxASP: 0.1, MaxNoEV: 7, MaxNoAP: 1, MaxNoEP: 1, MinCOA: 0.9961})
	if len(multi2) != 1 || multi2[0].Name != "D2" {
		t.Errorf("Eq.4 region 2 = %v, want [D2]", names(multi2))
	}
}

func names(ds []DesignReport) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

func TestPareto(t *testing.T) {
	_, ds := caseStudy(t)
	front := Pareto(ds)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for _, d := range front {
		if d.Name == "D1" {
			t.Error("D1 is dominated by D2")
		}
	}
	for i := 1; i < len(front); i++ {
		if front[i-1].After.ASP > front[i].After.ASP {
			t.Error("front must be sorted by ASP")
		}
	}
}

func TestCostModel(t *testing.T) {
	_, ds := caseStudy(t)
	c := CostModel{ServerPerMonth: 200, DowntimePerHour: 500, BreachLoss: 20000}
	got := c.MonthlyCost(ds[0])
	want := 200*4 + 500*(1-ds[0].COA)*720 + 20000*ds[0].After.ASP
	if !mathx.AlmostEqual(got, want, 1e-9) {
		t.Errorf("MonthlyCost = %v, want %v", got, want)
	}
}

func TestEvaluateDesignValidation(t *testing.T) {
	s, _ := caseStudy(t)
	if _, err := s.EvaluateDesign("bad", 0, 1, 1, 1); err == nil {
		t.Error("zero-replica tier should fail")
	}
}

func TestEnumerateDesigns(t *testing.T) {
	s, _ := caseStudy(t)
	all, err := s.EnumerateDesigns(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 16 {
		t.Fatalf("enumerated %d designs, want 16", len(all))
	}
	if _, err := s.EnumerateDesigns(0); err == nil {
		t.Error("maxPerTier 0 should fail")
	}
}

func TestRankPatches(t *testing.T) {
	s, _ := caseStudy(t)
	ranked, err := s.RankPatches("base", 1, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The ranking covers the study's policy-selected set: under the
	// default critical policy, the 9 distinct CVEs with base score > 8.0.
	if len(ranked) != 9 {
		t.Fatalf("ranked = %d, want the 9 critical CVEs", len(ranked))
	}
	if ranked[0].CVE != "CVE-2016-3227" {
		t.Errorf("top candidate = %s, want CVE-2016-3227 (removes the DNS stepping stone)", ranked[0].CVE)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].RiskReduction < ranked[i].RiskReduction-1e-12 {
			t.Error("ranking must be sorted by descending risk reduction")
		}
	}
	if _, err := s.RankPatches("bad", 0, 1, 1, 1); err == nil {
		t.Error("invalid design should fail")
	}

	// A PatchAll study ranks every distinct vulnerability — the policy
	// the ranking once ignored (it always ranked all 15 from the paper
	// defaults, whatever the study was configured to patch).
	all, err := NewCaseStudyWithConfig(Config{PatchAll: true})
	if err != nil {
		t.Fatal(err)
	}
	rankedAll, err := all.RankPatches("base", 1, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rankedAll) != 15 {
		t.Fatalf("patch-all ranked = %d, want 15 distinct CVEs (CVE-2016-4997 is shared)", len(rankedAll))
	}
	for _, r := range rankedAll {
		if r.CVE == "CVE-2016-4997" && len(r.Hosts) != 3 {
			t.Errorf("CVE-2016-4997 hosts = %v, want app1, app2, db1", r.Hosts)
		}
	}
}

func TestMeanTimeToServiceOutage(t *testing.T) {
	s, _ := caseStudy(t)
	base, err := s.MeanTimeToServiceOutage("base", 1, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base < 300 || base > 360 {
		t.Errorf("base MTTF = %v h, want just under 360 (two singleton tiers patch monthly)", base)
	}
	hardened, err := s.MeanTimeToServiceOutage("hard", 2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hardened <= 10*base {
		t.Errorf("full redundancy MTTF = %v, expected far above %v", hardened, base)
	}
	if _, err := s.MeanTimeToServiceOutage("bad", 0, 1, 1, 1); err == nil {
		t.Error("invalid design should fail")
	}
}

// TestReplicaMonotonicity is an end-to-end property over the whole
// pipeline: adding one replica to any tier never decreases the service
// availability and never decreases the after-patch attack surface
// (ASP, NoEV). COA itself is deliberately NOT monotone — extra replicas
// add patch downtime as well as capacity — which is the paper's whole
// trade-off.
func TestReplicaMonotonicity(t *testing.T) {
	s, _ := caseStudy(t)
	baseCases := [][4]int{
		{1, 1, 1, 1},
		{1, 2, 2, 1},
		{2, 1, 2, 2},
	}
	for _, counts := range baseCases {
		base, err := s.EvaluateDesign("base", counts[0], counts[1], counts[2], counts[3])
		if err != nil {
			t.Fatal(err)
		}
		for tier := 0; tier < 4; tier++ {
			grown := counts
			grown[tier]++
			next, err := s.EvaluateDesign("grown", grown[0], grown[1], grown[2], grown[3])
			if err != nil {
				t.Fatal(err)
			}
			if next.ServiceAvailability < base.ServiceAvailability-1e-12 {
				t.Errorf("%v -> %v: service availability fell %v -> %v",
					counts, grown, base.ServiceAvailability, next.ServiceAvailability)
			}
			if next.After.ASP < base.After.ASP-1e-12 {
				t.Errorf("%v -> %v: after-patch ASP fell %v -> %v",
					counts, grown, base.After.ASP, next.After.ASP)
			}
			if next.After.NoEV < base.After.NoEV {
				t.Errorf("%v -> %v: after-patch NoEV fell %d -> %d",
					counts, grown, base.After.NoEV, next.After.NoEV)
			}
		}
	}
}

func TestCustomConfigPatchAll(t *testing.T) {
	s, err := NewCaseStudyWithConfig(Config{PatchAll: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.EvaluateDesign("d1", 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.After.NoEV != 0 || r.After.ASP != 0 {
		t.Errorf("patch-all should clear the attack surface, got %+v", r.After)
	}
}

func TestCustomConfigInterval(t *testing.T) {
	weekly, err := NewCaseStudyWithConfig(Config{PatchIntervalHours: 168})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := weekly.BaseNetwork()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := caseStudy(t)
	rm, err := s.BaseNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if rw.COA >= rm.COA {
		t.Errorf("weekly patching should cost more availability: %v vs %v", rw.COA, rm.COA)
	}
	rates := weekly.PatchRates()
	if !mathx.AlmostEqual(rates["dns"].MTTPHours, 168, 1e-9) {
		t.Errorf("weekly MTTP = %v, want 168", rates["dns"].MTTPHours)
	}
}

// TestSweepMatchesEnumerate pins the engine-backed sweep surface to the
// batch enumeration it supersedes.
func TestSweepMatchesEnumerate(t *testing.T) {
	s, _ := caseStudy(t)
	want, err := s.EnumerateDesigns(2)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Sweep(context.Background(), FullSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 16 {
		t.Fatalf("Total = %d, want 16", sum.Total)
	}
	if !reflect.DeepEqual(sum.Reports, want) {
		t.Fatal("sweep reports differ from EnumerateDesigns")
	}
	if !reflect.DeepEqual(sum.Pareto, Pareto(want)) {
		t.Fatal("sweep Pareto front differs from Pareto()")
	}
}

// TestSweepBoundsAndStats checks incremental bound filtering plus the
// cache counters behind it.
func TestSweepBoundsAndStats(t *testing.T) {
	s, _ := caseStudy(t)
	req := FullSweep(2)
	req.Scatter = &ScatterBounds{MaxASP: 0.2, MinCOA: 0.9962}
	sum, err := s.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	all, err := s.EnumerateDesigns(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := FilterScatter(all, *req.Scatter); !reflect.DeepEqual(sum.Reports, want) {
		t.Fatalf("bounded sweep kept %d, want %d", len(sum.Reports), len(want))
	}

	before := s.EngineStats()
	if _, err := s.Sweep(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	after := s.EngineStats()
	if after.Solves != before.Solves {
		t.Fatalf("repeat sweep performed %d new solves", after.Solves-before.Solves)
	}
	if after.Hits < before.Hits+16 {
		t.Fatalf("repeat sweep hit the cache %d times, want >= 16", after.Hits-before.Hits)
	}
}

// TestSweepEachStreams checks the streaming surface.
func TestSweepEachStreams(t *testing.T) {
	s, _ := caseStudy(t)
	seen := make(map[string]bool)
	total, err := s.SweepEach(context.Background(), FullSweep(2), func(r DesignReport) error {
		seen[r.Name] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 || len(seen) != 16 {
		t.Fatalf("total = %d, streamed = %d, want 16/16", total, len(seen))
	}
}

// TestSweepRejectsInvalidRange checks request validation.
func TestSweepRejectsInvalidRange(t *testing.T) {
	s, _ := caseStudy(t)
	req := SweepRequest{DNS: SweepRange{Min: 3, Max: 1}}
	if _, err := s.Sweep(context.Background(), req); err == nil {
		t.Fatal("inverted range accepted")
	}
}
