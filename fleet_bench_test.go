package redpatch

// Fleet-scale benchmarks: the scheduler's headline is that a
// 1000-system fleet plans in one request because the memoized engine
// collapses the fleet's design diversity (a handful of spec shapes) to
// a handful of solves, and the try-revert simulator executes whole
// campaigns without touching a model solver at all.

import (
	"context"
	"fmt"
	"testing"

	"redpatch/internal/fleet"
)

// benchFleet builds n systems over four distinct design shapes with
// mixed priorities and windows — the shape diversity a real fleet has,
// at the cache locality the memoized engine exploits.
func benchFleet(n int, successProb float64) []fleet.System {
	shapes := [][]fleet.TierSpec{
		{{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 2}, {Role: "app", Replicas: 2}, {Role: "db", Replicas: 1}},
		{{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 3}, {Role: "app", Replicas: 2}, {Role: "db", Replicas: 2}},
		{{Role: "dns", Replicas: 2}, {Role: "web", Replicas: 2}, {Role: "app", Replicas: 3}, {Role: "db", Replicas: 1}},
		{{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 2}, {Role: "app", Replicas: 4}, {Role: "db", Replicas: 2}},
	}
	out := make([]fleet.System, n)
	for i := range out {
		out[i] = fleet.System{
			ID:                 fmt.Sprintf("sys-%04d", i),
			Role:               "app",
			Tiers:              shapes[i%len(shapes)],
			Priority:           1 + float64(i%3)/2,
			WindowMinutes:      60,
			SuccessProbability: successProb,
			RollbackMinutes:    10,
		}
	}
	return out
}

// BenchmarkFleetPlan1000 is the fleet-scale acceptance path: 1000
// systems scheduled in one PlanFleet call. The engine is warmed once
// (four shapes, four solves); iterations price the scheduling itself —
// per-system campaign planning, scoring and window assignment — on the
// all-hits cache path, which is what every steady-state plan request
// pays.
func BenchmarkFleetPlan1000(b *testing.B) {
	s, _ := caseStudy(b)
	resolve := func(string) (fleet.Engine, error) { return s.FleetEngine(), nil }
	systems := benchFleet(1000, 0)
	ctx := context.Background()
	plan, err := fleet.PlanFleet(ctx, systems, resolve, fleet.PlanOptions{MaxConcurrent: 16})
	if err != nil {
		b.Fatal(err)
	}
	if len(plan.Systems) != 1000 || len(plan.Windows) == 0 {
		b.Fatalf("warm plan: %d systems, %d windows", len(plan.Systems), len(plan.Windows))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.PlanFleet(ctx, systems, resolve, fleet.PlanOptions{MaxConcurrent: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSimulate prices the try-revert execution of a planned
// fleet campaign (100 systems, 90% window success): rollback draws,
// residual-ASP maintenance and event emission, no model solves.
func BenchmarkFleetSimulate(b *testing.B) {
	s, _ := caseStudy(b)
	resolve := func(string) (fleet.Engine, error) { return s.FleetEngine(), nil }
	ctx := context.Background()
	plan, err := fleet.PlanFleet(ctx, benchFleet(100, 0.9), resolve, fleet.PlanOptions{MaxConcurrent: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := fleet.Simulate(ctx, plan, fleet.SimOptions{Seed: int64(i), MaxConcurrent: 16}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Windows == 0 {
			b.Fatal("no windows executed")
		}
	}
}
