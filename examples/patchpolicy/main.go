// Patchpolicy: what-if analysis over patch management — the paper's §V
// "patch schedule" extension. Sweeps the patch cadence (weekly to
// quarterly) and the criticality threshold, showing how each trades the
// attack surface left open against the availability cost of patching, and
// closes with the user-visible performance impact (M/M/c queueing).
package main

import (
	"fmt"
	"log"

	"redpatch"

	"redpatch/internal/queueing"
	"redpatch/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Sweep 1: patch cadence at the paper's critical threshold.
	cadence := report.NewTable("patch cadence sweep (base network, threshold 8.0)",
		"interval", "COA", "lost capacity-hours/yr", "ASP after patch")
	for _, c := range []struct {
		label string
		hours float64
	}{
		{label: "weekly (168h)", hours: 168},
		{label: "biweekly (336h)", hours: 336},
		{label: "monthly (720h)", hours: 720},
		{label: "quarterly (2160h)", hours: 2160},
	} {
		study, err := redpatch.NewCaseStudyWithConfig(redpatch.Config{PatchIntervalHours: c.hours})
		if err != nil {
			return err
		}
		r, err := study.BaseNetwork()
		if err != nil {
			return err
		}
		cadence.AddRow(c.label, report.F(r.COA, 6), report.F((1-r.COA)*8760, 1), report.F(r.After.ASP, 4))
	}
	fmt.Println(cadence.Render())
	fmt.Println("patching more often does not change what is patched (same ASP) but costs availability;")
	fmt.Println("it shortens the exposure window to newly disclosed flaws, which this steady-state model prices at zero.")
	fmt.Println()

	// Sweep 2: criticality threshold at the monthly cadence. Lower
	// thresholds patch more vulnerabilities: less attack surface, longer
	// patch windows.
	threshold := report.NewTable("criticality threshold sweep (monthly cadence)",
		"policy", "NoEV after", "ASP after", "COA")
	for _, p := range []struct {
		label     string
		threshold float64
		patchAll  bool
	}{
		{label: "patch everything", patchAll: true},
		{label: "base score > 7.0", threshold: 7.0},
		{label: "base score > 8.0 (paper)", threshold: 8.0},
		{label: "base score > 9.5", threshold: 9.5},
	} {
		study, err := redpatch.NewCaseStudyWithConfig(redpatch.Config{
			CriticalThreshold: p.threshold,
			PatchAll:          p.patchAll,
		})
		if err != nil {
			return err
		}
		r, err := study.BaseNetwork()
		if err != nil {
			return err
		}
		threshold.AddRow(p.label, report.I(r.After.NoEV), report.F(r.After.ASP, 4), report.F(r.COA, 6))
	}
	fmt.Println(threshold.Render())

	// User-oriented performance (§V): response time of the web tier under
	// patch-induced capacity loss, at increasing load.
	study, err := redpatch.NewCaseStudy()
	if err != nil {
		return err
	}
	web := study.PatchRates()["web"]
	avail := web.RecoveryRate / (web.PatchRate + web.RecoveryRate)
	capacity := queueing.BinomialCapacity(2, avail)
	perf := report.NewTable("web tier user-oriented performance (2 servers, 900 req/h each)",
		"arrival rate (req/h)", "E[response] (s)", "P(unstable)", "P(down)")
	for _, lambda := range []float64{300, 600, 900, 1200, 1500} {
		resp, err := queueing.ResponseUnderPatch(lambda, 900, capacity)
		if err != nil {
			return err
		}
		perf.AddRow(report.F(lambda, 0), report.F(resp.MeanResponseTime*3600, 2),
			report.F(resp.UnstableProbability, 6), report.F(resp.DownProbability, 8))
	}
	fmt.Println(perf.Render())
	fmt.Println("above one server's capacity (900 req/h) the patch window leaves the tier unstable")
	fmt.Println("with the probability that exactly one server is down — the paper's motivation for")
	fmt.Println("active-active redundancy.")
	return nil
}
