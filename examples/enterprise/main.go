// Enterprise: the paper's full case study driven through the generic
// three-phase pipeline of internal/core — exactly the workflow of the
// paper's Fig. 1, from raw inputs (topology, vulnerability database,
// failure behaviours, patch schedule) to the combined security and
// availability report, including the intermediate models.
package main

import (
	"fmt"
	"log"

	"redpatch/internal/attacktree"
	"redpatch/internal/availability"
	"redpatch/internal/core"
	"redpatch/internal/harm"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/report"
	"redpatch/internal/vulndb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ---- Phase 1: data input -------------------------------------------
	db := paperdata.VulnDB()
	top, err := paperdata.Topology(paperdata.BaseDesign())
	if err != nil {
		return err
	}
	roleVulns := make(map[string][]vulndb.Vulnerability)
	rates := make(map[string]availability.ServerParams)
	for _, role := range paperdata.Roles() {
		vulns, err := paperdata.VulnsForRole(db, role)
		if err != nil {
			return err
		}
		roleVulns[role] = vulns
		rates[role] = availability.DefaultRates(role)
	}
	pipeline, err := core.NewPipeline(core.Inputs{
		Topology:    top,
		DB:          db,
		Trees:       paperdata.Trees(db),
		RoleVulns:   roleVulns,
		TargetRoles: []string{paperdata.RoleDB},
		Rates:       rates,
		Policy:      patch.CriticalPolicy(),
		Schedule:    patch.MonthlySchedule(),
		Eval:        harm.EvalOptions{Strategy: harm.ASPCompromise, ORRule: attacktree.ORNoisy},
	})
	if err != nil {
		return err
	}

	// ---- Phase 2: model construction -----------------------------------
	before, after, err := pipeline.BuildSecurityModels()
	if err != nil {
		return err
	}
	fmt.Println("security models (two-layered HARM):")
	fmt.Printf("  before patch: %d attackable hosts, targets %v\n", len(before.Upper().Nodes())-1, before.Targets())
	fmt.Printf("  after  patch: %d attackable hosts, targets %v\n", len(after.Upper().Nodes())-1, after.Targets())
	for _, host := range []string{"dns1", "web1", "app1", "db1"} {
		fmt.Printf("  %-5s AT before: %-75s after: %s\n", host, before.Tree(host), after.Tree(host))
	}
	fmt.Println()

	nm, roleReports, err := pipeline.BuildAvailabilityModel()
	if err != nil {
		return err
	}
	tbl := report.NewTable("availability models (lower-layer SRNs, aggregated)",
		"role", "replicas", "patch window", "tangible states", "MTTR (h)", "recovery rate")
	for _, rr := range roleReports {
		tbl.AddRow(rr.Role, report.I(rr.Replicas), rr.Plan.TotalDowntime().String(),
			report.I(rr.Solution.Tangible), report.F(rr.Rates.MTTR(), 4), report.F(rr.Rates.MuEq, 5))
	}
	fmt.Println(tbl.Render())
	fmt.Printf("upper-layer network model: %d tiers, %d servers\n\n", len(nm.Tiers), nm.TotalServers())

	// ---- Phase 3: evaluation -------------------------------------------
	rep, err := pipeline.Evaluate()
	if err != nil {
		return err
	}
	out := report.NewTable("combined evaluation", "measure", "before patch", "after patch")
	out.AddRow("AIM", report.F(rep.SecurityBefore.AIM, 1), report.F(rep.SecurityAfter.AIM, 1))
	out.AddRow("ASP", report.F(rep.SecurityBefore.ASP, 4), report.F(rep.SecurityAfter.ASP, 4))
	out.AddRow("NoEV", report.I(rep.SecurityBefore.NoEV), report.I(rep.SecurityAfter.NoEV))
	out.AddRow("NoAP", report.I(rep.SecurityBefore.NoAP), report.I(rep.SecurityAfter.NoAP))
	out.AddRow("NoEP", report.I(rep.SecurityBefore.NoEP), report.I(rep.SecurityAfter.NoEP))
	fmt.Println(out.Render())
	fmt.Printf("capacity oriented availability: %.5f (paper: 0.99707)\n", rep.COA)
	fmt.Printf("service availability:           %.5f\n", rep.ServiceAvailability)
	return nil
}
