// Maintenancewindow: transient analysis of patching — what happens in the
// minutes and hours around a patch event, complementing the paper's
// steady-state COA. Traces a DNS server through its 40-minute window,
// plots the network's expected capacity as patch rounds begin to arrive,
// and answers the operator question "how much capacity do I deliver over
// the first week?" with interval availability.
package main

import (
	"fmt"
	"log"

	"redpatch/internal/availability"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := paperdata.VulnDB()

	// Part 1: one server through its patch window. The DNS pipeline is
	// 5 min service patch + 20 min OS patch + 10 min OS reboot + 5 min
	// service restart, all exponential.
	params, plan, err := paperdata.ServerParams(db, paperdata.RoleDNS, patch.CriticalPolicy(), patch.MonthlySchedule())
	if err != nil {
		return err
	}
	fmt.Printf("DNS server patch window (%v planned):\n\n", plan.TotalDowntime())
	minutes := []float64{5, 10, 20, 30, 40, 60, 90, 120, 240}
	times := make([]float64, len(minutes))
	for i, m := range minutes {
		times[i] = m / 60
	}
	points, err := availability.PatchWindowTransient(params, times)
	if err != nil {
		return err
	}
	window := report.NewTable("time since patch trigger", "minutes", "P(service up)", "P(still patching)")
	for _, p := range points {
		window.AddRow(report.F(p.Hours*60, 0), report.F(p.ServiceUp, 4), report.F(p.PatchDown, 4))
	}
	fmt.Println(window.Render())

	// Part 2: network capacity over time from a fresh (all-up) start.
	var tiers []availability.Tier
	for _, role := range paperdata.Roles() {
		p, _, err := paperdata.ServerParams(db, role, patch.CriticalPolicy(), patch.MonthlySchedule())
		if err != nil {
			return err
		}
		sol, err := availability.SolveServer(p)
		if err != nil {
			return err
		}
		agg, err := availability.Aggregate(sol)
		if err != nil {
			return err
		}
		tiers = append(tiers, availability.Tier{
			Name: role, N: paperdata.BaseDesign().Counts()[role],
			LambdaEq: agg.LambdaEq, MuEq: agg.MuEq,
		})
	}
	nm := availability.NetworkModel{Tiers: tiers}
	steady, err := availability.ClosedFormCOA(nm)
	if err != nil {
		return err
	}
	traj := report.NewTable("expected network capacity from an all-up start",
		"hours", "COA(t)", "interval COA over [0,t]")
	for _, t := range []float64{24, 72, 168, 336, 720, 2160} {
		at, err := availability.TransientCOA(nm, t)
		if err != nil {
			return err
		}
		iv, err := availability.IntervalCOA(nm, t)
		if err != nil {
			return err
		}
		traj.AddRow(report.F(t, 0), report.F(at, 6), report.F(iv, 6))
	}
	fmt.Println(traj.Render())
	fmt.Printf("steady-state COA: %.6f — the trajectory approaches it from above as the\n", steady)
	fmt.Println("per-server monthly patch clocks desynchronize.")

	// Part 3: where does the downtime come from per server type?
	causes := report.NewTable("steady-state downtime decomposition per server type",
		"server", "P(down, patching)", "P(down, failure)", "patch share of downtime")
	for _, role := range paperdata.Roles() {
		p, _, err := paperdata.ServerParams(db, role, patch.CriticalPolicy(), patch.MonthlySchedule())
		if err != nil {
			return err
		}
		sol, err := availability.SolveServer(p)
		if err != nil {
			return err
		}
		causes.AddRow(role, report.F(sol.PatchDown, 6), report.F(sol.FailureDown, 6),
			report.F(sol.DowntimeShare(), 3))
	}
	fmt.Println(causes.Render())
	fmt.Println("The paper's upper-layer COA model isolates the patch share; failures are the")
	fmt.Println("larger cause in absolute terms but affect every design identically.")
	return nil
}
