// Heterogeneous: the paper's §V "heterogeneous redundancy" extension.
// The homogeneous design D3 duplicates the Apache web server; here the
// second web replica runs a different stack (Nginx on Ubuntu) that shares
// no vulnerability with the first. With the role-keyed DesignSpec API the
// whole comparison is two facade calls: the mixed tier is just two
// TierSpecs sharing the "web" role, and the engine handles the per-stack
// attack trees and patch windows.
package main

import (
	"fmt"
	"log"

	"redpatch"

	"redpatch/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	study, err := redpatch.NewCaseStudy()
	if err != nil {
		return err
	}
	designs := []struct {
		label string
		spec  redpatch.DesignSpec
	}{
		{label: "homogeneous", spec: redpatch.ClassicSpec("2x apache", 1, 2, 1, 1)},
		{label: "heterogeneous", spec: redpatch.DesignSpec{
			Name: "apache+nginx",
			Tiers: []redpatch.TierSpec{
				{Role: "dns", Replicas: 1},
				{Role: "web", Replicas: 1},
				{Role: "web", Replicas: 1, Variant: "webalt"},
				{Role: "app", Replicas: 1},
				{Role: "db", Replicas: 1},
			},
		}},
	}

	tbl := report.NewTable("homogeneous (2x Apache) vs heterogeneous (Apache + Nginx) web tier",
		"variant", "ASP after patch", "NoEV after", "COA", "service availability")
	for _, d := range designs {
		r, err := study.EvaluateSpec(d.spec)
		if err != nil {
			return err
		}
		tbl.AddRow(d.label, report.F(r.After.ASP, 4), report.I(r.After.NoEV),
			report.F(r.COA, 6), report.F(r.ServiceAvailability, 6))
	}
	fmt.Println(tbl.Render())
	fmt.Println("The Nginx replica's surviving exploit chain is harder (0.86 x 0.39 vs 0.39), so")
	fmt.Println("the after-patch attack success probability drops below the homogeneous design's,")
	fmt.Println("while the shorter Nginx patch window (30 min vs 35 min) slightly improves COA —")
	fmt.Println("heterogeneous redundancy softens the security cost of redundancy that the paper")
	fmt.Println("identifies, at the price of operating two different stacks.")
	return nil
}
