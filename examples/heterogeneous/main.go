// Heterogeneous: the paper's §V "heterogeneous redundancy" extension.
// The homogeneous design D3 duplicates the Apache web server; here the
// second web replica runs a different stack (Nginx on Ubuntu) that shares
// no vulnerability with the first. Security side: the HARM gets a
// per-role tree for the alternative stack; availability side: the web
// tier becomes two grouped sub-tiers with different patch windows.
package main

import (
	"fmt"
	"log"

	"redpatch/internal/attacktree"
	"redpatch/internal/availability"
	"redpatch/internal/harm"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/report"
	"redpatch/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildTopology assembles 1 DNS + web1 (Apache) + web2 (role webRole2) +
// 1 APP + 1 DB with the Fig. 2 reachability.
func buildTopology(webRole2 string) *topology.Topology {
	top := topology.New()
	top.MustAddNode(topology.Node{Name: "attacker", Kind: topology.KindAttacker, Subnet: "internet"})
	top.MustAddNode(topology.Node{Name: "dns1", Kind: topology.KindHost, Subnet: "dmz2", Role: paperdata.RoleDNS})
	top.MustAddNode(topology.Node{Name: "web1", Kind: topology.KindHost, Subnet: "dmz1", Role: paperdata.RoleWeb})
	top.MustAddNode(topology.Node{Name: "web2", Kind: topology.KindHost, Subnet: "dmz1", Role: webRole2})
	top.MustAddNode(topology.Node{Name: "app1", Kind: topology.KindHost, Subnet: "intranet", Role: paperdata.RoleApp})
	top.MustAddNode(topology.Node{Name: "db1", Kind: topology.KindHost, Subnet: "intranet", Role: paperdata.RoleDB})
	for _, e := range [][2]string{
		{"attacker", "dns1"}, {"attacker", "web1"}, {"attacker", "web2"},
		{"dns1", "web1"}, {"dns1", "web2"},
		{"web1", "app1"}, {"web2", "app1"}, {"app1", "db1"},
	} {
		top.MustConnect(e[0], e[1])
	}
	return top
}

func securityMetrics(webRole2 string) (before, after harm.Metrics, err error) {
	db := paperdata.VulnDB()
	trees := paperdata.Trees(db)
	trees[paperdata.RoleWebAlt] = paperdata.AltWebTree(db)
	h, err := harm.Build(harm.BuildInput{
		Topology:    buildTopology(webRole2),
		Trees:       trees,
		TargetRoles: []string{paperdata.RoleDB},
	})
	if err != nil {
		return before, after, err
	}
	pol := patch.CriticalPolicy()
	patched, err := h.Patched(func(role string, l *attacktree.Leaf) bool {
		v, ok := db.ByID(l.Ref)
		return !ok || !pol.Selects(v)
	})
	if err != nil {
		return before, after, err
	}
	opts := harm.EvalOptions{Strategy: harm.ASPCompromise, ORRule: attacktree.ORNoisy}
	if before, err = h.Evaluate(opts); err != nil {
		return before, after, err
	}
	after, err = patched.Evaluate(opts)
	return before, after, err
}

func webTiers(hetero bool) ([]availability.Tier, error) {
	db := paperdata.VulnDB()
	mkTier := func(name, role, group string, n int) (availability.Tier, error) {
		params, _, err := paperdata.ServerParams(db, role, patch.CriticalPolicy(), patch.MonthlySchedule())
		if err != nil {
			return availability.Tier{}, err
		}
		params.Name = name
		sol, err := availability.SolveServer(params)
		if err != nil {
			return availability.Tier{}, err
		}
		agg, err := availability.Aggregate(sol)
		if err != nil {
			return availability.Tier{}, err
		}
		return availability.Tier{Name: name, Group: group, N: n, LambdaEq: agg.LambdaEq, MuEq: agg.MuEq}, nil
	}
	var tiers []availability.Tier
	dns, err := mkTier("dns", paperdata.RoleDNS, "", 1)
	if err != nil {
		return nil, err
	}
	tiers = append(tiers, dns)
	if hetero {
		webA, err := mkTier("webA", paperdata.RoleWeb, "web", 1)
		if err != nil {
			return nil, err
		}
		webB, err := mkTier("webB", paperdata.RoleWebAlt, "web", 1)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, webA, webB)
	} else {
		web, err := mkTier("web", paperdata.RoleWeb, "", 2)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, web)
	}
	app, err := mkTier("app", paperdata.RoleApp, "", 1)
	if err != nil {
		return nil, err
	}
	dbt, err := mkTier("db", paperdata.RoleDB, "", 1)
	if err != nil {
		return nil, err
	}
	tiers = append(tiers, app, dbt)
	return tiers, nil
}

func run() error {
	tbl := report.NewTable("homogeneous (2x Apache) vs heterogeneous (Apache + Nginx) web tier",
		"variant", "ASP after patch", "NoEV after", "COA", "service availability")
	for _, v := range []struct {
		label  string
		role2  string
		hetero bool
	}{
		{label: "homogeneous", role2: paperdata.RoleWeb, hetero: false},
		{label: "heterogeneous", role2: paperdata.RoleWebAlt, hetero: true},
	} {
		_, after, err := securityMetrics(v.role2)
		if err != nil {
			return err
		}
		tiers, err := webTiers(v.hetero)
		if err != nil {
			return err
		}
		sol, err := availability.SolveNetwork(availability.NetworkModel{Tiers: tiers})
		if err != nil {
			return err
		}
		tbl.AddRow(v.label, report.F(after.ASP, 4), report.I(after.NoEV),
			report.F(sol.COA, 6), report.F(sol.ServiceAvailability, 6))
	}
	fmt.Println(tbl.Render())
	fmt.Println("The Nginx replica's surviving exploit chain is harder (0.86 x 0.39 vs 0.39), so")
	fmt.Println("the after-patch attack success probability drops below the homogeneous design's,")
	fmt.Println("while the shorter Nginx patch window (30 min vs 35 min) slightly improves COA —")
	fmt.Println("heterogeneous redundancy softens the security cost of redundancy that the paper")
	fmt.Println("identifies, at the price of operating two different stacks.")
	return nil
}
