// Quickstart: evaluate one redundancy design of the paper's case study
// through the public API — security metrics before/after the monthly
// patch round plus capacity oriented availability — and test it against
// administrator bounds.
package main

import (
	"fmt"
	"log"

	"redpatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	study, err := redpatch.NewCaseStudy()
	if err != nil {
		return err
	}

	// The paper's base network: active-active web and application
	// clusters behind one DNS server, one database server.
	base, err := study.BaseNetwork()
	if err != nil {
		return err
	}
	fmt.Printf("network: %s (%d servers)\n", base.Description, base.Servers)
	fmt.Printf("  attack impact           %6.1f -> %6.1f\n", base.Before.AIM, base.After.AIM)
	fmt.Printf("  attack success prob     %6.3f -> %6.3f\n", base.Before.ASP, base.After.ASP)
	fmt.Printf("  exploitable vulns       %6d -> %6d\n", base.Before.NoEV, base.After.NoEV)
	fmt.Printf("  attack paths            %6d -> %6d\n", base.Before.NoAP, base.After.NoAP)
	fmt.Printf("  capacity oriented availability: %.5f\n\n", base.COA)

	// Try a variant: add a second database server.
	variant, err := study.EvaluateDesign("extra-db", 1, 2, 2, 2)
	if err != nil {
		return err
	}
	fmt.Printf("variant: %s\n", variant.Description)
	fmt.Printf("  COA %.5f (%+.5f), ASP after patch %.3f (%+.3f)\n\n",
		variant.COA, variant.COA-base.COA, variant.After.ASP, variant.After.ASP-base.After.ASP)

	// Administrator decision (the paper's Eq. 3): does each design keep
	// ASP at or below 0.25 while COA stays at or above 0.997?
	bounds := redpatch.ScatterBounds{MaxASP: 0.25, MinCOA: 0.997}
	for _, d := range []redpatch.DesignReport{base, variant} {
		fmt.Printf("  %-30s satisfies (phi=%.2f, psi=%.3f): %v\n",
			d.Description, bounds.MaxASP, bounds.MinCOA, redpatch.SatisfiesScatter(d, bounds))
	}
	return nil
}
