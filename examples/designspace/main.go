// Designspace: explore a larger redundancy design space than the paper's
// five choices (its §V "Systems" extension): sweep every design with up to
// three replicas per tier, find the designs satisfying administrator
// bounds, compute the security/availability Pareto front, and pick the
// cost-optimal design under a simple economic model.
package main

import (
	"fmt"
	"log"
	"sort"

	"redpatch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	study, err := redpatch.NewCaseStudy()
	if err != nil {
		return err
	}
	designs, err := study.EnumerateDesigns(3)
	if err != nil {
		return err
	}
	fmt.Printf("evaluated %d designs (1..3 replicas per tier)\n\n", len(designs))

	// The security/availability trade-off at a glance: extremes.
	sort.Slice(designs, func(i, j int) bool { return designs[i].COA > designs[j].COA })
	fmt.Printf("highest COA:   %-30s COA %.6f  ASP %.4f\n",
		designs[0].Description, designs[0].COA, designs[0].After.ASP)
	sort.Slice(designs, func(i, j int) bool { return designs[i].After.ASP < designs[j].After.ASP })
	fmt.Printf("lowest ASP:    %-30s COA %.6f  ASP %.4f\n\n",
		designs[0].Description, designs[0].COA, designs[0].After.ASP)

	// Administrator bounds (Eq. 3 shape, tightened for the larger space).
	bounds := redpatch.ScatterBounds{MaxASP: 0.15, MinCOA: 0.9970}
	ok := redpatch.FilterScatter(designs, bounds)
	fmt.Printf("designs with ASP <= %.2f and COA >= %.4f: %d\n", bounds.MaxASP, bounds.MinCOA, len(ok))
	for _, d := range ok {
		fmt.Printf("  %-30s COA %.6f  ASP %.4f  servers %d\n", d.Description, d.COA, d.After.ASP, d.Servers)
	}
	fmt.Println()

	// Pareto front.
	front := redpatch.Pareto(designs)
	fmt.Printf("Pareto front (minimize ASP, maximize COA): %d designs\n", len(front))
	for _, d := range front {
		fmt.Printf("  %-30s COA %.6f  ASP %.4f\n", d.Description, d.COA, d.After.ASP)
	}
	fmt.Println()

	// Economics: servers cost money, downtime costs more, breaches most.
	cost := redpatch.CostModel{ServerPerMonth: 400, DowntimePerHour: 2000, BreachLoss: 50000}
	best := designs[0]
	for _, d := range designs[1:] {
		if cost.MonthlyCost(d) < cost.MonthlyCost(best) {
			best = d
		}
	}
	fmt.Printf("cost-optimal design: %s at %.0f/month (COA %.6f, ASP %.4f)\n",
		best.Description, cost.MonthlyCost(best), best.COA, best.After.ASP)
	return nil
}
