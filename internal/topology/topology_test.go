package topology

import (
	"strings"
	"testing"
)

func threeTier(t *testing.T) *Topology {
	t.Helper()
	top := New()
	top.MustAddNode(Node{Name: "attacker", Kind: KindAttacker, Subnet: "internet"})
	top.MustAddNode(Node{Name: "dns1", Kind: KindHost, Subnet: "dmz2", Role: "dns"})
	top.MustAddNode(Node{Name: "web1", Kind: KindHost, Subnet: "dmz1", Role: "web"})
	top.MustAddNode(Node{Name: "web2", Kind: KindHost, Subnet: "dmz1", Role: "web"})
	top.MustAddNode(Node{Name: "app1", Kind: KindHost, Subnet: "intranet", Role: "app"})
	top.MustAddNode(Node{Name: "db1", Kind: KindHost, Subnet: "intranet", Role: "db"})
	return top
}

func TestAddNodeValidation(t *testing.T) {
	top := New()
	tests := []struct {
		name    string
		node    Node
		wantErr bool
	}{
		{name: "ok", node: Node{Name: "a", Kind: KindHost, Role: "x"}, wantErr: false},
		{name: "empty", node: Node{Kind: KindHost}, wantErr: true},
		{name: "badKind", node: Node{Name: "b"}, wantErr: true},
		{name: "dup", node: Node{Name: "a", Kind: KindHost}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := top.AddNode(tt.node); (err != nil) != tt.wantErr {
				t.Errorf("AddNode err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConnect(t *testing.T) {
	top := threeTier(t)
	if err := top.Connect("attacker", "web1"); err != nil {
		t.Fatal(err)
	}
	if !top.HasEdge("attacker", "web1") {
		t.Error("edge should exist")
	}
	if top.HasEdge("web1", "attacker") {
		t.Error("edges are directed")
	}
	if err := top.Connect("attacker", "nosuch"); err == nil {
		t.Error("Connect to unknown node should fail")
	}
	if err := top.Connect("nosuch", "web1"); err == nil {
		t.Error("Connect from unknown node should fail")
	}
	if err := top.Connect("web1", "web1"); err == nil {
		t.Error("self edge should fail")
	}
}

func TestApplyRules(t *testing.T) {
	top := threeTier(t)
	top.ApplyRules([]Rule{
		{FromSubnet: "internet", ToSubnet: "dmz1"},
		{FromSubnet: "dmz1", ToSubnet: "intranet"},
	})
	for _, want := range [][2]string{
		{"attacker", "web1"}, {"attacker", "web2"},
		{"web1", "app1"}, {"web1", "db1"}, {"web2", "app1"},
	} {
		if !top.HasEdge(want[0], want[1]) {
			t.Errorf("rule-derived edge %s -> %s missing", want[0], want[1])
		}
	}
	if top.HasEdge("attacker", "app1") {
		t.Error("no rule allows internet -> intranet")
	}
	// Intra-subnet rule must not create self edges.
	top.ApplyRules([]Rule{{FromSubnet: "dmz1", ToSubnet: "dmz1"}})
	if top.HasEdge("web1", "web1") {
		t.Error("self edge created by intra-subnet rule")
	}
	if !top.HasEdge("web1", "web2") {
		t.Error("intra-subnet rule should connect distinct nodes")
	}
}

func TestApplyRulesDeny(t *testing.T) {
	top := threeTier(t)
	top.ApplyRules([]Rule{
		{FromSubnet: "internet", ToSubnet: "dmz1"},
		{FromSubnet: "internet", ToSubnet: "dmz1", Deny: true},
	})
	if top.HasEdge("attacker", "web1") {
		t.Error("later deny rule must remove the allowed edges")
	}
	// Deny also covers explicitly connected edges.
	top.MustConnect("attacker", "web2")
	top.ApplyRules([]Rule{{FromSubnet: "internet", ToSubnet: "dmz1", Deny: true}})
	if top.HasEdge("attacker", "web2") {
		t.Error("deny rule must remove explicit edges too")
	}
	// Order matters: allow after deny wins.
	top.ApplyRules([]Rule{
		{FromSubnet: "internet", ToSubnet: "dmz1", Deny: true},
		{FromSubnet: "internet", ToSubnet: "dmz1"},
	})
	if !top.HasEdge("attacker", "web1") {
		t.Error("allow after deny should restore the edges")
	}
	// Denying a non-existent edge is a no-op.
	fresh := threeTier(t)
	fresh.ApplyRules([]Rule{{FromSubnet: "internet", ToSubnet: "intranet", Deny: true}})
	if len(fresh.Successors("attacker")) != 0 {
		t.Error("deny on absent edges must not create anything")
	}
}

func TestReachable(t *testing.T) {
	top := threeTier(t)
	top.MustConnect("attacker", "web1")
	top.MustConnect("web1", "app1")
	top.MustConnect("app1", "db1")
	if !top.Reachable("attacker", "db1") {
		t.Error("db1 should be reachable transitively")
	}
	if top.Reachable("db1", "attacker") {
		t.Error("reverse direction should not be reachable")
	}
	if top.Reachable("nosuch", "db1") {
		t.Error("unknown source should not be reachable")
	}
	if !top.Reachable("web1", "web1") {
		t.Error("a node reaches itself")
	}
}

func TestNodeQueries(t *testing.T) {
	top := threeTier(t)
	if len(top.Nodes()) != 6 {
		t.Errorf("Nodes = %d, want 6", len(top.Nodes()))
	}
	if len(top.Hosts()) != 5 {
		t.Errorf("Hosts = %d, want 5", len(top.Hosts()))
	}
	att := top.Attackers()
	if len(att) != 1 || att[0].Name != "attacker" {
		t.Errorf("Attackers = %v", att)
	}
	n, ok := top.Node("web1")
	if !ok || n.Role != "web" {
		t.Errorf("Node(web1) = %+v, %v", n, ok)
	}
	hosts := top.Hosts()
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1].Name >= hosts[i].Name {
			t.Error("Hosts must be sorted")
		}
	}
}

func TestSuccessorsSorted(t *testing.T) {
	top := threeTier(t)
	top.MustConnect("attacker", "web2")
	top.MustConnect("attacker", "dns1")
	top.MustConnect("attacker", "web1")
	got := top.Successors("attacker")
	want := []string{"dns1", "web1", "web2"}
	if len(got) != len(want) {
		t.Fatalf("Successors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Successors = %v, want %v", got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	top := threeTier(t)
	if err := top.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}

	t.Run("noAttacker", func(t *testing.T) {
		bad := New()
		bad.MustAddNode(Node{Name: "h", Kind: KindHost, Role: "x"})
		if err := bad.Validate(); err == nil {
			t.Error("topology without attacker should fail")
		}
	})
	t.Run("noHosts", func(t *testing.T) {
		bad := New()
		bad.MustAddNode(Node{Name: "a", Kind: KindAttacker})
		if err := bad.Validate(); err == nil {
			t.Error("topology without hosts should fail")
		}
	})
	t.Run("hostWithoutRole", func(t *testing.T) {
		bad := New()
		bad.MustAddNode(Node{Name: "a", Kind: KindAttacker})
		bad.MustAddNode(Node{Name: "h", Kind: KindHost})
		if err := bad.Validate(); err == nil {
			t.Error("host without role should fail")
		}
	})
}

func TestDOT(t *testing.T) {
	top := threeTier(t)
	top.MustConnect("attacker", "web1")
	dot := top.DOT()
	for _, want := range []string{"digraph", "cluster_", "attacker", "web1", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if dot != top.DOT() {
		t.Error("DOT output must be deterministic")
	}
}
