// Package topology models the network input of the paper's framework: the
// hosts of an enterprise network, the subnets they sit in, and the
// reachability between them as constrained by firewalls. The security
// model generator consumes a Topology to build the upper layer of the
// HARM; an administrator would produce the same information from network
// scans and firewall configuration.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes the attacker's location node from protected hosts.
type Kind int

// Node kinds.
const (
	// KindAttacker marks the attacker's starting location (outside the
	// network in the paper's attacker model).
	KindAttacker Kind = iota + 1
	// KindHost marks a server.
	KindHost
)

// Node is a host or the attacker location.
type Node struct {
	// Name uniquely identifies the node, e.g. "web1".
	Name string
	// Kind is attacker or host.
	Kind Kind
	// Subnet is the network segment, e.g. "dmz" or "intranet". Firewall
	// rules are expressed between subnets.
	Subnet string
	// Role is the server type the node instantiates, e.g. "web"; the HARM
	// generator uses it to attach the right attack tree.
	Role string
}

// Rule is a firewall decision between two subnets. Rules are directional
// and processed in order: an allow rule adds every edge between the
// subnets, a deny rule removes them again, so later rules override
// earlier ones (the usual first-match-last-write firewall composition).
type Rule struct {
	FromSubnet string
	ToSubnet   string
	// Deny removes the edges instead of adding them.
	Deny bool
}

// Topology is a set of nodes plus directed reachability edges.
type Topology struct {
	nodes map[string]Node
	adj   map[string]map[string]bool
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		nodes: make(map[string]Node),
		adj:   make(map[string]map[string]bool),
	}
}

// AddNode inserts a node, rejecting duplicates and empty names.
func (t *Topology) AddNode(n Node) error {
	if n.Name == "" {
		return fmt.Errorf("topology: node with empty name")
	}
	if n.Kind != KindAttacker && n.Kind != KindHost {
		return fmt.Errorf("topology: node %q has invalid kind %d", n.Name, n.Kind)
	}
	if _, dup := t.nodes[n.Name]; dup {
		return fmt.Errorf("topology: duplicate node %q", n.Name)
	}
	t.nodes[n.Name] = n
	t.adj[n.Name] = make(map[string]bool)
	return nil
}

// MustAddNode is AddNode for statically known topologies; panics on error.
func (t *Topology) MustAddNode(n Node) {
	if err := t.AddNode(n); err != nil {
		panic(err)
	}
}

// Connect adds a directed reachability edge from one node to another.
func (t *Topology) Connect(from, to string) error {
	if _, ok := t.nodes[from]; !ok {
		return fmt.Errorf("topology: unknown node %q", from)
	}
	if _, ok := t.nodes[to]; !ok {
		return fmt.Errorf("topology: unknown node %q", to)
	}
	if from == to {
		return fmt.Errorf("topology: self edge on %q", from)
	}
	t.adj[from][to] = true
	return nil
}

// MustConnect is Connect for statically known topologies; panics on error.
func (t *Topology) MustConnect(from, to string) {
	if err := t.Connect(from, to); err != nil {
		panic(err)
	}
}

// ApplyRules applies a firewall rule set in order: every allow rule
// connects each node in the source subnet to each node in the destination
// subnet, every deny rule disconnects them again. Self edges are skipped.
// Explicitly Connect-ed edges survive unless a deny rule covers them.
func (t *Topology) ApplyRules(rules []Rule) {
	for _, r := range rules {
		for _, from := range t.nodesInSubnet(r.FromSubnet) {
			for _, to := range t.nodesInSubnet(r.ToSubnet) {
				if from == to {
					continue
				}
				if r.Deny {
					delete(t.adj[from], to)
				} else {
					t.adj[from][to] = true
				}
			}
		}
	}
}

func (t *Topology) nodesInSubnet(subnet string) []string {
	var out []string
	for name, n := range t.nodes {
		if n.Subnet == subnet {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Node returns the named node.
func (t *Topology) Node(name string) (Node, bool) {
	n, ok := t.nodes[name]
	return n, ok
}

// Nodes returns all nodes sorted by name.
func (t *Topology) Nodes() []Node {
	out := make([]Node, 0, len(t.nodes))
	for _, n := range t.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Hosts returns the non-attacker nodes sorted by name.
func (t *Topology) Hosts() []Node {
	var out []Node
	for _, n := range t.nodes {
		if n.Kind == KindHost {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Attackers returns the attacker nodes sorted by name.
func (t *Topology) Attackers() []Node {
	var out []Node
	for _, n := range t.nodes {
		if n.Kind == KindAttacker {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Successors returns the names directly reachable from the given node,
// sorted.
func (t *Topology) Successors(name string) []string {
	var out []string
	for to := range t.adj[name] {
		out = append(out, to)
	}
	sort.Strings(out)
	return out
}

// HasEdge reports whether a directed edge exists.
func (t *Topology) HasEdge(from, to string) bool { return t.adj[from][to] }

// Reachable reports whether to is reachable from from over directed edges.
func (t *Topology) Reachable(from, to string) bool {
	if _, ok := t.nodes[from]; !ok {
		return false
	}
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			return true
		}
		for _, next := range t.Successors(cur) {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// Validate checks that the topology has at least one attacker and one host
// and that every host carries a role (the HARM generator requires one).
func (t *Topology) Validate() error {
	if len(t.Attackers()) == 0 {
		return fmt.Errorf("topology: no attacker node")
	}
	hosts := t.Hosts()
	if len(hosts) == 0 {
		return fmt.Errorf("topology: no host nodes")
	}
	for _, h := range hosts {
		if h.Role == "" {
			return fmt.Errorf("topology: host %q has no role", h.Name)
		}
	}
	return nil
}

// DOT renders the topology in Graphviz dot format with subnets as
// clusters; output is deterministic.
func (t *Topology) DOT() string {
	var b strings.Builder
	b.WriteString("digraph topology {\n  rankdir=LR;\n")

	subnets := make(map[string][]Node)
	for _, n := range t.Nodes() {
		subnets[n.Subnet] = append(subnets[n.Subnet], n)
	}
	var names []string
	for s := range subnets {
		names = append(names, s)
	}
	sort.Strings(names)
	for i, s := range names {
		if s != "" {
			fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, s)
		}
		for _, n := range subnets[s] {
			shape := "box"
			if n.Kind == KindAttacker {
				shape = "diamond"
			}
			indent := "  "
			if s != "" {
				indent = "    "
			}
			fmt.Fprintf(&b, "%s%q [shape=%s];\n", indent, n.Name, shape)
		}
		if s != "" {
			b.WriteString("  }\n")
		}
	}
	for _, n := range t.Nodes() {
		for _, to := range t.Successors(n.Name) {
			fmt.Fprintf(&b, "  %q -> %q;\n", n.Name, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
