// Package admission is redpatchd's load-shedding primitive: a
// per-endpoint-class concurrency limiter with a bounded FIFO wait
// queue and deadline-aware acquisition. At most Concurrency holders
// run at once; up to Queue callers wait in arrival order; everyone
// else is shed immediately with ErrQueueFull, and queued callers that
// outlive their wait budget (MaxWait or their context) are shed
// without ever occupying a slot. The HTTP layer maps sheds to
// 429 + Retry-After; the limiter itself is transport-agnostic.
package admission

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull marks a request shed because the wait queue was at
// capacity at arrival.
var ErrQueueFull = errors.New("admission: queue full")

// ErrWaitBudget marks a request shed because it waited MaxWait without
// reaching the front of the queue.
var ErrWaitBudget = errors.New("admission: wait budget exhausted")

// Options configures a Limiter. The zero value is not useful; callers
// choose explicit limits (redpatchd's flags default them).
type Options struct {
	// Concurrency is the number of concurrently admitted holders
	// (minimum 1).
	Concurrency int
	// Queue bounds the FIFO wait queue; 0 sheds every request that
	// cannot be admitted immediately.
	Queue int
	// MaxWait bounds the time a request may sit queued; 0 means the
	// caller's context is the only wait bound.
	MaxWait time.Duration
}

// Stats is a snapshot of a limiter's state and lifetime counters.
type Stats struct {
	InFlight int // admitted and not yet released
	Waiting  int // queued
	// Admitted counts successful acquisitions; the Shed* counters the
	// rejections by reason.
	Admitted     uint64
	ShedFull     uint64
	ShedWait     uint64
	ShedCanceled uint64
}

// waiter is one queued acquisition; ready is closed by a releasing
// holder handing its slot over. A waiter no longer in the queue when
// its cancellation fires has been granted concurrently and must pass
// the slot on (see abandon).
type waiter struct {
	ready chan struct{}
}

// Limiter is a FIFO concurrency limiter. It is safe for concurrent
// use. The zero value is invalid; use New.
type Limiter struct {
	name string
	opts Options

	mu       sync.Mutex
	inflight int
	queue    []*waiter

	admitted     uint64
	shedFull     uint64
	shedWait     uint64
	shedCanceled uint64
}

// New builds a limiter. Concurrency below 1 is raised to 1; a negative
// Queue is treated as 0.
func New(name string, opts Options) *Limiter {
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	if opts.Queue < 0 {
		opts.Queue = 0
	}
	return &Limiter{name: name, opts: opts}
}

// Name returns the class label the limiter was built with.
func (l *Limiter) Name() string { return l.name }

// Concurrency returns the configured concurrency cap.
func (l *Limiter) Concurrency() int { return l.opts.Concurrency }

// Stats returns a snapshot of the limiter's state.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		InFlight:     l.inflight,
		Waiting:      len(l.queue),
		Admitted:     l.admitted,
		ShedFull:     l.shedFull,
		ShedWait:     l.shedWait,
		ShedCanceled: l.shedCanceled,
	}
}

// Acquire admits the caller or sheds it. On success the returned
// release must be called exactly once when the work finishes (it is
// idempotent, so a deferred double call is harmless). Shed errors are
// ErrQueueFull, ErrWaitBudget, or the context's error; a queued caller
// whose deadline-aware wait ends never leaks its queue slot, and a
// grant racing a cancellation is handed to the next waiter rather than
// lost.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	l.mu.Lock()
	// FIFO: never jump an occupied queue even when a slot is free (a
	// releasing holder is about to hand it to the head waiter).
	if l.inflight < l.opts.Concurrency && len(l.queue) == 0 {
		l.inflight++
		l.admitted++
		l.mu.Unlock()
		return l.releaseOnce(), nil
	}
	if len(l.queue) >= l.opts.Queue {
		l.shedFull++
		l.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	var budget <-chan time.Time
	if l.opts.MaxWait > 0 {
		t := time.NewTimer(l.opts.MaxWait)
		defer t.Stop()
		budget = t.C
	}
	select {
	case <-w.ready:
		return l.releaseOnce(), nil
	case <-ctx.Done():
		return nil, l.abandon(w, ctx.Err(), &l.shedCanceled)
	case <-budget:
		return nil, l.abandon(w, ErrWaitBudget, &l.shedWait)
	}
}

// TryAcquire admits the caller only when a slot is free right now —
// the cache-bypass path uses it to keep warm reads cheap — returning
// false instead of queueing.
func (l *Limiter) TryAcquire() (release func(), ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= l.opts.Concurrency || len(l.queue) > 0 {
		return nil, false
	}
	l.inflight++
	l.admitted++
	return l.releaseOnce(), true
}

// abandon removes a timed-out or cancelled waiter from the queue. If a
// releasing holder granted the waiter's slot first, the slot is
// released again (handing it onward) so it is never lost.
func (l *Limiter) abandon(w *waiter, cause error, counter *uint64) error {
	l.mu.Lock()
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			*counter++
			l.mu.Unlock()
			return cause
		}
	}
	// Not queued: the grant raced the cancellation and this waiter owns
	// a slot. Count the admit-then-abandon as a shed all the same — the
	// caller is gone — and pass the slot to the next waiter.
	*counter++
	l.mu.Unlock()
	<-w.ready // already closed by the granter
	l.release()
	return cause
}

// releaseOnce wraps release in a sync.Once so a double call cannot
// free someone else's slot.
func (l *Limiter) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(l.release) }
}

// release frees one slot: the head waiter inherits it (inflight
// unchanged, admitted counted) or, with an empty queue, inflight
// drops.
func (l *Limiter) release() {
	l.mu.Lock()
	if len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.admitted++
		l.mu.Unlock()
		close(w.ready)
		return
	}
	l.inflight--
	l.mu.Unlock()
}
