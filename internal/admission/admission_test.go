package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// acquireOrFatal admits immediately or fails the test.
func acquireOrFatal(t *testing.T, l *Limiter) func() {
	t.Helper()
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	return release
}

// TestImmediateAdmit: under the cap, acquisition is immediate and
// release frees the slot.
func TestImmediateAdmit(t *testing.T) {
	l := New("t", Options{Concurrency: 2, Queue: 0})
	r1 := acquireOrFatal(t, l)
	r2 := acquireOrFatal(t, l)
	if st := l.Stats(); st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	r1()
	r2()
	if st := l.Stats(); st.InFlight != 0 {
		t.Fatalf("inflight after release = %d", st.InFlight)
	}
}

// TestQueueFullShed: with C holders and Q waiters, the next caller is
// shed immediately with ErrQueueFull.
func TestQueueFullShed(t *testing.T) {
	l := New("t", Options{Concurrency: 1, Queue: 1})
	release := acquireOrFatal(t, l)
	defer release()

	queued := make(chan struct{})
	go func() {
		close(queued)
		r, err := l.Acquire(context.Background())
		if err == nil {
			r()
		}
	}()
	<-queued
	waitFor(t, func() bool { return l.Stats().Waiting == 1 })

	start := time.Now()
	_, err := l.Acquire(context.Background())
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("shed took %v, want fail-fast", d)
	}
	if st := l.Stats(); st.ShedFull != 1 {
		t.Errorf("ShedFull = %d, want 1", st.ShedFull)
	}
}

// TestFIFOOrder: queued waiters are granted in arrival order.
func TestFIFOOrder(t *testing.T) {
	l := New("t", Options{Concurrency: 1, Queue: 8})
	release := acquireOrFatal(t, l)

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		waitFor(t, func() bool { return l.Stats().Waiting == i })
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
		// Ensure waiter i is queued before launching i+1.
		waitFor(t, func() bool { return l.Stats().Waiting == i+1 })
	}
	release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

// TestWaitBudget: a queued caller past MaxWait is shed with
// ErrWaitBudget and leaves no queue slot behind.
func TestWaitBudget(t *testing.T) {
	l := New("t", Options{Concurrency: 1, Queue: 4, MaxWait: 20 * time.Millisecond})
	release := acquireOrFatal(t, l)
	defer release()

	_, err := l.Acquire(context.Background())
	if !errors.Is(err, ErrWaitBudget) {
		t.Fatalf("Acquire = %v, want ErrWaitBudget", err)
	}
	if st := l.Stats(); st.Waiting != 0 || st.ShedWait != 1 {
		t.Errorf("stats after budget shed = %+v", st)
	}
}

// TestCancelWhileQueued: a cancelled waiter is removed from the queue
// without consuming a slot.
func TestCancelWhileQueued(t *testing.T) {
	l := New("t", Options{Concurrency: 1, Queue: 4})
	release := acquireOrFatal(t, l)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		errc <- err
	}()
	waitFor(t, func() bool { return l.Stats().Waiting == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire = %v, want Canceled", err)
	}
	if st := l.Stats(); st.Waiting != 0 || st.ShedCanceled != 1 {
		t.Errorf("stats after cancel = %+v", st)
	}
	// The slot is still usable.
	release()
	r := acquireOrFatal(t, l)
	r()
}

// TestGrantCancelRace: hammer release-grants against waiter
// cancellations; no slot may ever be lost (the limiter must always be
// able to admit Concurrency holders afterwards). Run with -race.
func TestGrantCancelRace(t *testing.T) {
	l := New("t", Options{Concurrency: 2, Queue: 16})
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(g%3)*time.Millisecond)
				r, err := l.Acquire(ctx)
				if err == nil {
					admitted.Add(1)
					r()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if st := l.Stats(); st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("leaked state after race: %+v", st)
	}
	// Both slots survived the churn.
	r1 := acquireOrFatal(t, l)
	r2 := acquireOrFatal(t, l)
	r1()
	r2()
	if admitted.Load() == 0 {
		t.Error("no acquisition ever succeeded")
	}
}

// TestReleaseIdempotent: calling release twice frees one slot, not two.
func TestReleaseIdempotent(t *testing.T) {
	l := New("t", Options{Concurrency: 1, Queue: 0})
	r := acquireOrFatal(t, l)
	r()
	r()
	if st := l.Stats(); st.InFlight != 0 {
		t.Fatalf("inflight = %d after double release", st.InFlight)
	}
	r2 := acquireOrFatal(t, l)
	defer r2()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("double release minted a slot: %v", err)
	}
}

// TestTryAcquire: admits only when a slot is free right now.
func TestTryAcquire(t *testing.T) {
	l := New("t", Options{Concurrency: 1, Queue: 4})
	r, ok := l.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed on an idle limiter")
	}
	if _, ok := l.TryAcquire(); ok {
		t.Fatal("TryAcquire admitted past the cap")
	}
	r()
	r2, ok := l.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed after release")
	}
	r2()
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
