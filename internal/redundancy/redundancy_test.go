package redundancy

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"redpatch/internal/availability"
	"redpatch/internal/harm"
	"redpatch/internal/mathx"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
)

// The evaluator solves four server SRNs; share one across tests.
var (
	sharedEval     *Evaluator
	sharedResults  []Result
	sharedInitOnce sync.Once
	sharedInitErr  error
)

func evaluator(t *testing.T) (*Evaluator, []Result) {
	t.Helper()
	sharedInitOnce.Do(func() {
		sharedEval, sharedInitErr = NewEvaluator(Options{})
		if sharedInitErr != nil {
			return
		}
		sharedResults, sharedInitErr = sharedEval.EvaluateAll(paperdata.Designs())
	})
	if sharedInitErr != nil {
		t.Fatal(sharedInitErr)
	}
	return sharedEval, sharedResults
}

func byName(t *testing.T, results []Result, name string) Result {
	t.Helper()
	for _, r := range results {
		if r.Spec.Name == name {
			return r
		}
	}
	t.Fatalf("design %s not in results", name)
	return Result{}
}

func TestFiveDesignResults(t *testing.T) {
	_, results := evaluator(t)
	if len(results) != 5 {
		t.Fatalf("results = %d, want 5", len(results))
	}
	for _, r := range results {
		// Before patch every design is maximally attackable (Fig. 6a).
		if !mathx.AlmostEqual(r.Before.ASP, 1.0, 1e-9) {
			t.Errorf("%s before ASP = %v, want 1.0", r.Spec.Name, r.Before.ASP)
		}
		if !mathx.AlmostEqual(r.Before.AIM, 52.2, 1e-9) {
			t.Errorf("%s before AIM = %v, want 52.2 (same longest path in every design)", r.Spec.Name, r.Before.AIM)
		}
		if !mathx.AlmostEqual(r.After.AIM, 42.2, 1e-9) {
			t.Errorf("%s after AIM = %v, want 42.2", r.Spec.Name, r.After.AIM)
		}
		if r.After.ASP >= r.Before.ASP {
			t.Errorf("%s patch must reduce ASP", r.Spec.Name)
		}
	}
}

// TestFigure7MetricCounts pins the before/after NoEV, NoAP and NoEP of
// every design (the radar-chart axes of Fig. 7).
func TestFigure7MetricCounts(t *testing.T) {
	_, results := evaluator(t)
	tests := []struct {
		name                               string
		noEVBefore, noAPBefore, noEPBefore int
		noEVAfter, noAPAfter, noEPAfter    int
	}{
		{name: "D1", noEVBefore: 16, noAPBefore: 2, noEPBefore: 2, noEVAfter: 7, noAPAfter: 1, noEPAfter: 1},
		{name: "D2", noEVBefore: 17, noAPBefore: 3, noEPBefore: 3, noEVAfter: 7, noAPAfter: 1, noEPAfter: 1},
		{name: "D3", noEVBefore: 21, noAPBefore: 4, noEPBefore: 3, noEVAfter: 9, noAPAfter: 2, noEPAfter: 2},
		{name: "D4", noEVBefore: 21, noAPBefore: 4, noEPBefore: 2, noEVAfter: 9, noAPAfter: 2, noEPAfter: 1},
		{name: "D5", noEVBefore: 21, noAPBefore: 4, noEPBefore: 2, noEVAfter: 10, noAPAfter: 2, noEPAfter: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := byName(t, results, tt.name)
			if r.Before.NoEV != tt.noEVBefore || r.Before.NoAP != tt.noAPBefore || r.Before.NoEP != tt.noEPBefore {
				t.Errorf("before = (NoEV %d, NoAP %d, NoEP %d), want (%d, %d, %d)",
					r.Before.NoEV, r.Before.NoAP, r.Before.NoEP, tt.noEVBefore, tt.noAPBefore, tt.noEPBefore)
			}
			if r.After.NoEV != tt.noEVAfter || r.After.NoAP != tt.noAPAfter || r.After.NoEP != tt.noEPAfter {
				t.Errorf("after = (NoEV %d, NoAP %d, NoEP %d), want (%d, %d, %d)",
					r.After.NoEV, r.After.NoAP, r.After.NoEP, tt.noEVAfter, tt.noAPAfter, tt.noEPAfter)
			}
		})
	}
}

// TestPaperObservations verifies the qualitative claims of §IV-A/B: D1
// and D2 share their after-patch ASP (the patched DNS leaves the graph),
// every other design has strictly higher ASP, and only D3 has more entry
// points after patch.
func TestPaperObservations(t *testing.T) {
	_, results := evaluator(t)
	d1 := byName(t, results, "D1")
	d2 := byName(t, results, "D2")
	if !mathx.AlmostEqual(d1.After.ASP, d2.After.ASP, 1e-12) {
		t.Errorf("D1 and D2 after-patch ASP should match: %v vs %v", d1.After.ASP, d2.After.ASP)
	}
	for _, name := range []string{"D3", "D4", "D5"} {
		r := byName(t, results, name)
		if r.After.ASP <= d1.After.ASP {
			t.Errorf("%s after ASP = %v should exceed D1's %v", name, r.After.ASP, d1.After.ASP)
		}
	}
	for _, name := range []string{"D1", "D2", "D4", "D5"} {
		if byName(t, results, name).After.NoEP != 1 {
			t.Errorf("%s after NoEP should be 1", name)
		}
	}
	if byName(t, results, "D3").After.NoEP != 2 {
		t.Error("only D3 keeps two entry points after patch")
	}
}

// TestEquation3Regions reproduces the paper's §IV-A region results:
// region 1 (phi 0.2, psi 0.9962) selects D4 and D5; region 2 (phi 0.1,
// psi 0.9961) selects D2 alone.
func TestEquation3Regions(t *testing.T) {
	_, results := evaluator(t)
	region1 := Filter(results, ScatterBounds{MaxASP: 0.2, MinCOA: 0.9962})
	if len(region1) != 2 || region1[0].Spec.Name != "D4" || region1[1].Spec.Name != "D5" {
		names := designNames(region1)
		t.Errorf("region 1 = %v, want [D4 D5]", names)
	}
	region2 := Filter(results, ScatterBounds{MaxASP: 0.1, MinCOA: 0.9961})
	if len(region2) != 1 || region2[0].Spec.Name != "D2" {
		t.Errorf("region 2 = %v, want [D2]", designNames(region2))
	}
}

// TestEquation4Regions reproduces the §IV-B multi-metric regions:
// region 1 selects D4 alone; region 2 selects D2 alone.
func TestEquation4Regions(t *testing.T) {
	_, results := evaluator(t)
	region1 := Filter(results, MultiBounds{MaxASP: 0.2, MaxNoEV: 9, MaxNoAP: 2, MaxNoEP: 1, MinCOA: 0.9962})
	if len(region1) != 1 || region1[0].Spec.Name != "D4" {
		t.Errorf("region 1 = %v, want [D4]", designNames(region1))
	}
	region2 := Filter(results, MultiBounds{MaxASP: 0.1, MaxNoEV: 7, MaxNoAP: 1, MaxNoEP: 1, MinCOA: 0.9961})
	if len(region2) != 1 || region2[0].Spec.Name != "D2" {
		t.Errorf("region 2 = %v, want [D2]", designNames(region2))
	}
}

func designNames(results []Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Spec.Name
	}
	return out
}

func TestParetoFront(t *testing.T) {
	_, results := evaluator(t)
	front := ParetoFront(results)
	if len(front) == 0 {
		t.Fatal("front must not be empty")
	}
	// D1 is dominated by D2 (same ASP, higher COA) and must be absent.
	for _, r := range front {
		if r.Spec.Name == "D1" {
			t.Error("D1 is dominated by D2 and must not be on the front")
		}
	}
	// D2 (lowest ASP among survivors) and D4 (highest COA) must be on it.
	var sawD2, sawD4 bool
	for _, r := range front {
		switch r.Spec.Name {
		case "D2":
			sawD2 = true
		case "D4":
			sawD4 = true
		}
	}
	if !sawD2 || !sawD4 {
		t.Errorf("front = %v, expected D2 and D4 present", designNames(front))
	}
	// Sorted by ascending ASP.
	for i := 1; i < len(front); i++ {
		if front[i-1].After.ASP > front[i].After.ASP {
			t.Error("front must be sorted by ascending ASP")
		}
	}
}

func TestCostModel(t *testing.T) {
	_, results := evaluator(t)
	c := CostModel{ServerPerMonth: 100, DowntimePerHour: 1000, BreachLoss: 10000}
	d1 := byName(t, results, "D1")
	cost := c.MonthlyCost(d1)
	want := 100*4 + 1000*(1-d1.COA)*720 + 10000*d1.After.ASP
	if !mathx.AlmostEqual(cost, want, 1e-9) {
		t.Errorf("cost = %v, want %v", cost, want)
	}
	cheapest, err := c.Cheapest(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if c.MonthlyCost(r) < c.MonthlyCost(cheapest) {
			t.Errorf("Cheapest missed %s", r.Spec.Name)
		}
	}
	if _, err := c.Cheapest(nil); err == nil {
		t.Error("Cheapest of empty slice should fail")
	}
}

func TestEnumerateDesigns(t *testing.T) {
	ds := EnumerateDesigns(2)
	if len(ds) != 16 {
		t.Fatalf("EnumerateDesigns(2) = %d designs, want 16", len(ds))
	}
	seen := make(map[string]bool, len(ds))
	for _, d := range ds {
		if err := d.Validate(); err != nil {
			t.Errorf("design %s invalid: %v", d.Name, err)
		}
		if seen[d.Name] {
			t.Errorf("duplicate design name %s", d.Name)
		}
		seen[d.Name] = true
	}
	if got := EnumerateDesigns(0); got != nil {
		t.Error("EnumerateDesigns(0) should be nil")
	}
}

func TestEvaluateRejectsBadDesign(t *testing.T) {
	e, _ := evaluator(t)
	if _, err := e.Evaluate(paperdata.Design{Name: "bad"}); err == nil {
		t.Error("invalid design should fail")
	}
}

func TestAccessors(t *testing.T) {
	e, _ := evaluator(t)
	agg := e.AggregatedRates()
	if len(agg) != 4 {
		t.Fatalf("AggregatedRates = %d entries, want 4", len(agg))
	}
	if !mathx.AlmostEqual(agg[paperdata.RoleDNS].MuEq, 1.49992, 1e-4) {
		t.Errorf("dns mu_eq = %v, want ≈ 1.49992", agg[paperdata.RoleDNS].MuEq)
	}
	plans := e.Plans()
	if plans[paperdata.RoleApp].TotalDowntime().Minutes() != 60 {
		t.Errorf("app plan downtime = %v, want 60m", plans[paperdata.RoleApp].TotalDowntime())
	}
}

// TestPatchAllPolicyZeroesSecurityMetrics: under a patch-everything
// policy the after-patch network has no attack surface at all, and the
// availability cost of patching grows (longer windows).
func TestPatchAllPolicyZeroesSecurityMetrics(t *testing.T) {
	pol := patch.Policy{PatchAll: true}
	e, err := NewEvaluator(Options{Policy: &pol})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Evaluate(paperdata.Designs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.After.NoEV != 0 || r.After.NoAP != 0 || r.After.ASP != 0 {
		t.Errorf("patch-all should zero the attack surface, got %+v", r.After)
	}
	_, critResults := evaluator(t)
	critD1 := byName(t, critResults, "D1")
	if r.COA >= critD1.COA {
		t.Errorf("patching more vulnerabilities must cost more availability: %v vs %v", r.COA, critD1.COA)
	}
}

// TestMaxPathStrategyInsensitiveToRedundancy documents why ASPMaxPath is
// not the default: it cannot see redundancy at all.
func TestMaxPathStrategyInsensitiveToRedundancy(t *testing.T) {
	ev, err := NewEvaluator(Options{Eval: &harm.EvalOptions{Strategy: harm.ASPMaxPath}})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ev.Evaluate(paperdata.Designs()[0])
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ev.Evaluate(paperdata.Designs()[2])
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(r1.After.ASP, r3.After.ASP, 1e-12) {
		t.Errorf("max-path ASP should not change with redundancy: %v vs %v", r1.After.ASP, r3.After.ASP)
	}
}

// TestEvaluatorSafeForConcurrentUse exercises the documented guarantee the
// engine relies on: one Evaluator shared by many goroutines, each
// evaluating designs, must produce exactly the serial results (run under
// -race to verify the absence of data races, not just agreement).
func TestEvaluatorSafeForConcurrentUse(t *testing.T) {
	e, _ := evaluator(t)
	designs := EnumerateDesigns(2)
	serial := make([]Result, len(designs))
	for i, d := range designs {
		r, err := e.Evaluate(d)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, d := range designs {
				r, err := e.Evaluate(d)
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(r, serial[i]) {
					errs[g] = fmt.Errorf("design %s: concurrent result differs", d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvaluateAllParallelMatchesSerial pins EvaluateAll's delegation to
// the worker pool: any worker count returns the serial results.
func TestEvaluateAllParallelMatchesSerial(t *testing.T) {
	e, _ := evaluator(t)
	designs := EnumerateDesigns(2)
	serial, err := e.EvaluateAll(designs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEvaluator(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.EvaluateAll(designs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Fatal("parallel EvaluateAll differs from serial")
	}
}

// specTiers builds a classic chain with the given web-tier groups.
func specTiers(web ...paperdata.TierSpec) []paperdata.TierSpec {
	tiers := []paperdata.TierSpec{{Role: paperdata.RoleDNS, Replicas: 1}}
	tiers = append(tiers, web...)
	return append(tiers,
		paperdata.TierSpec{Role: paperdata.RoleApp, Replicas: 1},
		paperdata.TierSpec{Role: paperdata.RoleDB, Replicas: 1})
}

// TestEvaluateSpecMatchesClassicEvaluate pins the wrapper contract: the
// 4-int Evaluate and the role-keyed EvaluateSpec must agree exactly for
// classic designs.
func TestEvaluateSpecMatchesClassicEvaluate(t *testing.T) {
	e, _ := evaluator(t)
	d := paperdata.Design{Name: "eq", DNS: 1, Web: 2, App: 2, DB: 1}
	classic, err := e.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := e.EvaluateSpec(d.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(classic, spec) {
		t.Fatal("EvaluateSpec differs from Evaluate for a classic design")
	}
}

// TestEvaluateSpecHeterogeneousWebTier evaluates the paper's §V variant
// deployment through the spec path: a web tier mixing Apache and Nginx
// shares no vulnerability between its replicas, so the after-patch attack
// success probability drops below the homogeneous twin's while the tier
// still backs itself up for availability.
func TestEvaluateSpecHeterogeneousWebTier(t *testing.T) {
	e, _ := evaluator(t)
	homog, err := e.EvaluateSpec(paperdata.DesignSpec{
		Name:  "homog",
		Tiers: specTiers(paperdata.TierSpec{Role: paperdata.RoleWeb, Replicas: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := e.EvaluateSpec(paperdata.DesignSpec{
		Name: "hetero",
		Tiers: specTiers(
			paperdata.TierSpec{Role: paperdata.RoleWeb, Replicas: 1},
			paperdata.TierSpec{Role: paperdata.RoleWeb, Replicas: 1, Variant: paperdata.RoleWebAlt}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 DNS leaf + 5 Apache leaves + 3 Nginx leaves + 5 app + 5 db.
	if hetero.Before.NoEV != 19 {
		t.Errorf("heterogeneous NoEV before = %d, want 19", hetero.Before.NoEV)
	}
	if hetero.After.ASP >= homog.After.ASP {
		t.Errorf("heterogeneous after-patch ASP = %v, want below homogeneous %v",
			hetero.After.ASP, homog.After.ASP)
	}
	if hetero.COA <= 0 || hetero.COA > 1 || hetero.ServiceAvailability < homog.ServiceAvailability-1e-3 {
		t.Errorf("implausible heterogeneous availability: COA %v, service %v (homogeneous %v)",
			hetero.COA, hetero.ServiceAvailability, homog.ServiceAvailability)
	}
}

// TestRankPatchesHonoursPolicy pins the satellite fix: the ranking must
// come from the evaluator's own policy, not the paper defaults — a
// critical-threshold study ranks only its critical set, a PatchAll study
// ranks every distinct vulnerability.
func TestRankPatchesHonoursPolicy(t *testing.T) {
	e, _ := evaluator(t)
	spec := paperdata.BaseDesign().Spec()
	critical, err := e.RankPatches(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(critical) != 9 {
		t.Fatalf("critical policy ranked %d CVEs, want the 9 with base score > 8.0", len(critical))
	}
	for _, c := range critical {
		if c.Ref == "CVE-2016-4997" {
			t.Error("CVE-2016-4997 (base 7.2) ranked under the critical policy")
		}
	}

	all := patch.Policy{PatchAll: true}
	ePA, err := NewEvaluator(Options{Policy: &all})
	if err != nil {
		t.Fatal(err)
	}
	everything, err := ePA.RankPatches(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(everything) != 15 {
		t.Fatalf("patch-all policy ranked %d CVEs, want all 15 distinct", len(everything))
	}
}

// TestPlanCampaignUsesEvaluatorPolicy checks the campaign surface: a
// PatchAll evaluator plans more work than the critical-policy default.
func TestPlanCampaignUsesEvaluatorPolicy(t *testing.T) {
	e, _ := evaluator(t)
	crit, err := e.PlanCampaign(paperdata.RoleWeb, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	all := patch.Policy{PatchAll: true}
	ePA, err := NewEvaluator(Options{Policy: &all})
	if err != nil {
		t.Fatal(err)
	}
	full, err := ePA.PlanCampaign(paperdata.RoleWeb, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	nvulns := func(c patch.Campaign) int {
		n := len(c.Deferred)
		for _, r := range c.Rounds {
			n += len(r.Selected)
		}
		return n
	}
	if nvulns(full) <= nvulns(crit) {
		t.Errorf("patch-all campaign covers %d vulns, critical %d; want strictly more",
			nvulns(full), nvulns(crit))
	}
	if _, err := e.PlanCampaign("nosuchrole", 30*time.Minute); err == nil {
		t.Error("unknown role accepted")
	}
}

// TestTierFactorMemo pins the factored-availability bookkeeping: a fresh
// evaluator solves one tier factor per distinct (stack, replicas) pair,
// serves repeats from the memo, and never touches the SRN path for the
// PerServer models it builds.
func TestTierFactorMemo(t *testing.T) {
	e, err := NewEvaluator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.SolverStats(); st != (SolverStats{}) {
		t.Fatalf("fresh evaluator stats = %+v, want zeros", st)
	}
	// Base design 1d2w2a1b: four distinct (stack, n) pairs.
	if _, err := e.Evaluate(paperdata.BaseDesign()); err != nil {
		t.Fatal(err)
	}
	st := e.SolverStats()
	if st.FactoredSolves != 1 || st.TierSolves != 4 || st.TierFactorHits != 0 || st.SRNSolves != 0 {
		t.Fatalf("after base design: stats = %+v, want 1 factored / 4 tier solves", st)
	}
	// Same replica multiset again (different name): all four factors hit.
	if _, err := e.Evaluate(paperdata.Design{Name: "again", DNS: 1, Web: 2, App: 2, DB: 1}); err != nil {
		t.Fatal(err)
	}
	st = e.SolverStats()
	if st.FactoredSolves != 2 || st.TierSolves != 4 || st.TierFactorHits != 4 {
		t.Fatalf("after repeat: stats = %+v, want 2 factored / 4 tier solves / 4 hits", st)
	}
	// A new replica count adds exactly the new pairs.
	if _, err := e.Evaluate(paperdata.Design{Name: "d1", DNS: 1, Web: 1, App: 1, DB: 1}); err != nil {
		t.Fatal(err)
	}
	st = e.SolverStats()
	if st.TierSolves != 6 || st.TierFactorHits != 6 {
		t.Fatalf("after 1d1w1a1b: stats = %+v, want 6 tier solves / 6 hits", st)
	}
}

// TestFactoredAvailabilityMatchesSRNOracle cross-validates the
// evaluator's memoized factored solve against the generated-SRN oracle
// on the upper-layer model of a heterogeneous spec.
func TestFactoredAvailabilityMatchesSRNOracle(t *testing.T) {
	e, _ := evaluator(t)
	spec := paperdata.DesignSpec{Name: "hetero", Tiers: []paperdata.TierSpec{
		{Role: paperdata.RoleDNS, Replicas: 1},
		{Role: paperdata.RoleWeb, Replicas: 2},
		{Role: paperdata.RoleWeb, Replicas: 1, Variant: paperdata.RoleWebAlt},
		{Role: paperdata.RoleApp, Replicas: 2},
		{Role: paperdata.RoleDB, Replicas: 1},
	}}
	r, err := e.EvaluateSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := e.NetworkModelFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := availability.SolveNetworkSRN(nm)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(r.COA, oracle.COA, 1e-9) {
		t.Errorf("factored COA %.12f != SRN oracle %.12f", r.COA, oracle.COA)
	}
	if !mathx.AlmostEqual(r.ServiceAvailability, oracle.ServiceAvailability, 1e-9) {
		t.Errorf("factored service availability %.12f != SRN oracle %.12f",
			r.ServiceAvailability, oracle.ServiceAvailability)
	}
}
