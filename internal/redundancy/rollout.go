package redundancy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"redpatch/internal/availability"
	"redpatch/internal/harm"
	"redpatch/internal/paperdata"
	"redpatch/internal/trace"
)

// This file evaluates designs mid-rollout: a rollout point assigns each
// tier group a patched fraction, splitting its replica class into a
// patched and an unpatched sub-class. Security evaluates on the
// sub-classed quotient (paperdata.SpecRolloutQuotient +
// harm.BuildFactoredRollout), availability on mixed-version tier
// factors (availability.SolveTierFactorRollout) — both still factored,
// so sweeping a whole rollout schedule costs microseconds per point.
// The f=0 and f=1 endpoints reproduce the atomic Result's Before and
// After sides bit for bit (TestRolloutDegenerateEndpoints).

// Rollout strategy names for RolloutSchedule.Strategy.
const (
	// RolloutCustom evaluates the explicit Fractions sequence.
	RolloutCustom = "custom"
	// RolloutOneShot jumps every tier from 0 to 1 in one step.
	RolloutOneShot = "one-shot"
	// RolloutRolling ramps every tier uniformly over Steps equal waves.
	RolloutRolling = "rolling"
	// RolloutBlueGreen flips whole tiers to 1 one at a time, in Order.
	RolloutBlueGreen = "blue-green"
	// RolloutCanary patches a CanaryFraction first wave, then ramps the
	// remainder over Steps waves.
	RolloutCanary = "canary"
)

// RolloutSchedule describes a rollout as a sequence of per-tier patched
// fractions — the planner vocabulary. One-shot, rolling-N, blue-green
// and canary-then-ramp are all special cases of a fraction sequence;
// Points expands whichever is selected. Every expansion starts at the
// unpatched point (all zeros) and ends fully patched (all ones), so a
// schedule's frontier always brackets both atomic endpoints.
type RolloutSchedule struct {
	// Strategy selects the expansion; empty means RolloutCustom.
	Strategy string
	// Steps is the wave count for rolling and canary ramps (default 4).
	Steps int
	// CanaryFraction is the canary first-wave fraction (default 0.1).
	CanaryFraction float64
	// Order is the blue-green tier flip order, a permutation of the
	// spec's tier indices (default: spec order).
	Order []int
	// Fractions is the explicit point sequence for RolloutCustom, one
	// per-tier fraction vector per point.
	Fractions [][]float64
}

// Points expands the schedule into per-tier fraction vectors for a
// design with the given tier count.
func (s RolloutSchedule) Points(tiers int) ([][]float64, error) {
	if tiers < 1 {
		return nil, fmt.Errorf("redundancy: rollout schedule needs at least one tier")
	}
	uniform := func(f float64) []float64 {
		out := make([]float64, tiers)
		for i := range out {
			out[i] = f
		}
		return out
	}
	steps := s.Steps
	if steps <= 0 {
		steps = 4
	}
	switch s.Strategy {
	case "", RolloutCustom:
		if len(s.Fractions) == 0 {
			return nil, fmt.Errorf("redundancy: custom rollout schedule has no fraction points")
		}
		out := make([][]float64, len(s.Fractions))
		for i, p := range s.Fractions {
			if len(p) != tiers {
				return nil, fmt.Errorf("redundancy: rollout point %d has %d fractions for %d tiers", i, len(p), tiers)
			}
			for j, f := range p {
				if math.IsNaN(f) || f < 0 || f > 1 {
					return nil, fmt.Errorf("redundancy: rollout point %d tier %d fraction %v outside [0,1]", i, j, f)
				}
			}
			out[i] = append([]float64(nil), p...)
		}
		return out, nil
	case RolloutOneShot:
		return [][]float64{uniform(0), uniform(1)}, nil
	case RolloutRolling:
		out := make([][]float64, steps+1)
		for i := 0; i <= steps; i++ {
			out[i] = uniform(float64(i) / float64(steps))
		}
		out[steps] = uniform(1) // exact endpoint regardless of division
		return out, nil
	case RolloutBlueGreen:
		order := s.Order
		if len(order) == 0 {
			order = make([]int, tiers)
			for i := range order {
				order[i] = i
			}
		}
		seen := make([]bool, tiers)
		for _, t := range order {
			if t < 0 || t >= tiers || seen[t] {
				return nil, fmt.Errorf("redundancy: blue-green order %v is not a permutation of %d tiers", order, tiers)
			}
			seen[t] = true
		}
		if len(order) != tiers {
			return nil, fmt.Errorf("redundancy: blue-green order %v is not a permutation of %d tiers", order, tiers)
		}
		out := [][]float64{uniform(0)}
		cur := uniform(0)
		for _, t := range order {
			cur = append([]float64(nil), cur...)
			cur[t] = 1
			out = append(out, cur)
		}
		return out, nil
	case RolloutCanary:
		c := s.CanaryFraction
		if c == 0 {
			c = 0.1
		}
		if math.IsNaN(c) || c <= 0 || c >= 1 {
			return nil, fmt.Errorf("redundancy: canary fraction %v outside (0,1)", c)
		}
		out := [][]float64{uniform(0), uniform(c)}
		for i := 1; i <= steps; i++ {
			f := c + (1-c)*float64(i)/float64(steps)
			if i == steps || f > 1 {
				f = 1 // exact endpoint regardless of rounding
			}
			out = append(out, uniform(f))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("redundancy: unknown rollout strategy %q", s.Strategy)
	}
}

// PatchedCounts converts per-tier rollout fractions into per-tier
// patched replica counts, one per spec.Tiers entry: ceil(f*n), so any
// non-zero fraction patches at least one replica and fraction 1 patches
// all of them.
func PatchedCounts(spec paperdata.DesignSpec, fractions []float64) ([]int, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(fractions) != len(spec.Tiers) {
		return nil, fmt.Errorf("redundancy: %d rollout fractions for %d tiers", len(fractions), len(spec.Tiers))
	}
	out := make([]int, len(fractions))
	for i, f := range fractions {
		if math.IsNaN(f) || f < 0 || f > 1 {
			return nil, fmt.Errorf("redundancy: tier %d rollout fraction %v outside [0,1]", i, f)
		}
		p := int(math.Ceil(f * float64(spec.Tiers[i].Replicas)))
		if p > spec.Tiers[i].Replicas {
			p = spec.Tiers[i].Replicas
		}
		out[i] = p
	}
	return out, nil
}

// RolloutResult is the evaluation of one design at one rollout point.
type RolloutResult struct {
	// Spec is the design the point was evaluated for.
	Spec paperdata.DesignSpec
	// Fractions are the per-tier rollout fractions of the point.
	Fractions []float64
	// Patched are the per-tier patched replica counts (ceil(f*n)).
	Patched []int
	// Security holds the mixed-version security metrics: patched
	// replicas contribute their post-patch attack trees, unpatched ones
	// their pre-patch trees.
	Security harm.Metrics
	// COA is the capacity oriented availability mid-rollout: only the
	// patched sub-populations cycle through patch windows.
	COA float64
	// ServiceAvailability is P(at least one server up in every tier).
	ServiceAvailability float64
}

// rolloutModelFor returns the memoized mixed-version security model of
// a rollout quotient structure, building it on first use. Like the
// atomic security memo, the build runs under the mutex and only a miss
// opens a "security.evaluate" span.
func (e *Evaluator) rolloutModelFor(ctx context.Context, rq paperdata.RolloutQuotient) (*harm.FactoredHARM, bool, error) {
	k := securityKey{structure: rq.Structure, policy: e.policyFingerprint()}
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.rollout[k]; ok {
		e.rolloutModelHits.Add(1)
		return m, true, nil
	}
	_, sp := trace.Start(ctx, "security.evaluate",
		trace.Attr{Key: "solver", Value: "rollout-quotient"},
		trace.Attr{Key: "memo", Value: "miss"})
	top, err := paperdata.SpecTopology(rq.Quotient)
	var m *harm.FactoredHARM
	if err == nil {
		m, err = harm.BuildFactoredRollout(harm.BuildInput{
			Topology:    top,
			Trees:       e.trees,
			TargetRoles: rq.Quotient.TargetStacks(),
		}, rq.PatchedHosts, e.keepLeaf)
	}
	sp.EndErr(err)
	if err != nil {
		return nil, false, err
	}
	e.rolloutModels.Add(1)
	e.rollout[k] = m
	return m, false, nil
}

// tierFactorRollout returns the mixed-version tier factor, memoized
// under the same map as the atomic factors: the fully-patched case is
// literally the atomic entry, partial patches get their own
// (stack, n, patched) entries.
func (e *Evaluator) tierFactorRollout(ctx context.Context, stack string, tier availability.Tier, patched int) (availability.TierFactor, bool, error) {
	if patched == tier.N {
		return e.tierFactorFor(ctx, stack, tier)
	}
	k := factorKey{stack: stack, n: tier.N, patched: patched}
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.factors[k]; ok {
		e.tierFactorHits.Add(1)
		return f, true, nil
	}
	f, err := availability.SolveTierFactorRolloutCtx(ctx, tier, patched)
	if err != nil {
		return availability.TierFactor{}, false, err
	}
	e.tierSolves.Add(1)
	e.factors[k] = f
	return f, false, nil
}

// EvaluateRollout evaluates one design at one rollout point given by
// per-tier patched fractions (aligned with spec.Tiers). Both axes run
// factored: security on the sub-classed rollout quotient with the
// mixed-version model memoized per rollout structure, availability by
// composing mixed-version tier factors memoized per (stack, n, patched).
// The context carries tracing only; provenance lands as attributes on
// the caller's span exactly like the atomic path.
func (e *Evaluator) EvaluateRollout(ctx context.Context, spec paperdata.DesignSpec, fractions []float64) (RolloutResult, error) {
	patched, err := PatchedCounts(spec, fractions)
	if err != nil {
		return RolloutResult{}, err
	}
	rq, err := paperdata.SpecRolloutQuotient(spec, patched)
	if err != nil {
		return RolloutResult{}, err
	}
	model, hit, err := e.rolloutModelFor(ctx, rq)
	if err != nil {
		return RolloutResult{}, err
	}
	parent := trace.FromContext(ctx)
	parent.SetAttr("security_solver", "rollout-quotient")
	if hit {
		parent.SetAttr("security_memo", "hit")
	} else {
		parent.SetAttr("security_memo", "miss")
	}
	e.rolloutEvals.Add(1)
	res := RolloutResult{
		Spec:      spec,
		Fractions: append([]float64(nil), fractions...),
		Patched:   patched,
	}
	if res.Security, err = model.Evaluate(rq.Mult, e.evalOpts); err != nil {
		return RolloutResult{}, err
	}

	nm, stacks, err := e.networkModelFor(spec)
	if err != nil {
		return RolloutResult{}, err
	}
	// nm.Tiers follows spec.Logical() order; patched follows spec.Tiers
	// order. LogicalIndices maps between them.
	order := make([]int, 0, len(nm.Tiers))
	for _, idxs := range spec.LogicalIndices() {
		order = append(order, idxs...)
	}
	factors := make([]availability.TierFactor, len(nm.Tiers))
	for i, t := range nm.Tiers {
		f, _, err := e.tierFactorRollout(ctx, stacks[i], t, patched[order[i]])
		if err != nil {
			return RolloutResult{}, err
		}
		factors[i] = f
	}
	parent.SetAttr("availability_solver", "factored")
	e.factoredSolves.Add(1)
	sol, err := availability.ComposeNetwork(nm, factors)
	if err != nil {
		return RolloutResult{}, err
	}
	res.COA = sol.COA
	res.ServiceAvailability = sol.ServiceAvailability
	return res, nil
}

// RolloutDominates reports whether a dominates b on the rollout
// frontier plane (minimize mixed-version ASP, maximize COA): during a
// rollout the exposure is the still-running unpatched sub-populations,
// so the Security metrics themselves are the "after" side of the point.
func RolloutDominates(a, b RolloutResult) bool {
	return a.Security.ASP <= b.Security.ASP && a.COA >= b.COA &&
		(a.Security.ASP < b.Security.ASP || a.COA > b.COA)
}

// RolloutFront returns the rollout points not dominated on the
// (minimize ASP, maximize COA) plane, sorted by ascending ASP — the
// security-availability frontier of the rollout itself.
func RolloutFront(points []RolloutResult) []RolloutResult {
	var front []RolloutResult
	for i, r := range points {
		dominated := false
		for j, s := range points {
			if i != j && RolloutDominates(s, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, r)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Security.ASP != front[j].Security.ASP {
			return front[i].Security.ASP < front[j].Security.ASP
		}
		return front[i].COA > front[j].COA
	})
	return front
}
