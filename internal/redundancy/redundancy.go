// Package redundancy evaluates server-redundancy design choices on both
// axes of the paper — security (HARM metrics before and after patch) and
// capacity oriented availability (aggregated SRN model) — and implements
// the administrator decision functions of Eq. 3 (two-metric bounds) and
// Eq. 4 (multi-metric bounds), a Pareto-front analysis, and the
// operational-cost extension sketched in the paper's §V.
package redundancy

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"redpatch/internal/attacktree"
	"redpatch/internal/availability"
	"redpatch/internal/harm"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/trace"
	"redpatch/internal/vulndb"
	"redpatch/internal/workpool"
)

// Evaluator evaluates redundancy designs for one case study: a
// vulnerability dataset, per-stack attack trees, a patch policy and
// schedule, and the HARM evaluation options. Lower-layer availability
// models are solved once per software stack and cached — the paper's
// four roles eagerly at construction, variant stacks (RoleWebAlt)
// lazily on first use.
//
// An Evaluator is safe for concurrent use after NewEvaluator returns:
// the configuration fields are read-only from then on, the per-stack
// rate cache is guarded by its mutex, harm.Build clones the shared
// attack-tree templates before touching them, vulndb.DB lookups are plain
// map reads, and each Evaluate call builds its own topology, HARM and
// network model. The one caveat is the vulnerability database itself —
// callers must not mutate a DB (Add/UnmarshalJSON) that a live Evaluator
// reads. The concurrent engine (internal/engine) relies on this
// guarantee.
type Evaluator struct {
	db       *vulndb.DB
	trees    map[string]*attacktree.Tree
	policy   patch.Policy
	schedule patch.Schedule
	evalOpts harm.EvalOptions
	workers  int

	mu       sync.Mutex // guards agg, plans, factors, security and rollout (lazy solves)
	agg      map[string]availability.AggregatedRates
	plans    map[string]patch.Plan
	factors  map[factorKey]availability.TierFactor
	security map[securityKey]*securityFactor
	rollout  map[securityKey]*harm.FactoredHARM

	// Solver dispatch counters (see SolverStats).
	factoredSolves   atomic.Uint64
	srnSolves        atomic.Uint64
	tierSolves       atomic.Uint64
	tierFactorHits   atomic.Uint64
	securityFactored atomic.Uint64
	securitySolves   atomic.Uint64
	securityHits     atomic.Uint64
	rolloutEvals     atomic.Uint64
	rolloutModels    atomic.Uint64
	rolloutModelHits atomic.Uint64
}

// factorKey identifies one memoized tier factor: a software stack (whose
// aggregated rates are fixed for the evaluator's policy configuration)
// deployed at a replica count, with patched servers of the n on the
// patch cycle. Atomic evaluations always use patched == n, so the
// fully-patched rollout endpoint lands on — and shares — the atomic
// memo entries.
type factorKey struct {
	stack   string
	n       int
	patched int
}

// securityKey identifies one memoized security factor: the
// replica-independent quotient structure of a spec (logical tier order,
// roles and per-tier variant multisets — paperdata.SpecQuotient's
// structure key) under the evaluator's patch-policy fingerprint. Replica
// counts deliberately do not appear: they enter the factored metrics in
// closed form at evaluation time, which is what turns an R^k sweep into
// O(#variant-combos) HARM evaluations.
type securityKey struct {
	structure string
	policy    string
}

// securityFactor is one memoized factored security model: the quotient
// HARM before and after the patch transformation. Both are immutable and
// safe for concurrent Evaluate calls.
type securityFactor struct {
	before, after *harm.FactoredHARM
}

// Options configures an Evaluator. Zero-value fields select the paper's
// defaults.
type Options struct {
	// DB defaults to the paper dataset.
	DB *vulndb.DB
	// Trees defaults to the paper's Fig. 3 templates.
	Trees map[string]*attacktree.Tree
	// Policy defaults to the critical policy (base score > 8.0).
	Policy *patch.Policy
	// Schedule defaults to the monthly schedule.
	Schedule *patch.Schedule
	// Eval defaults to ASPCompromise with noisy-OR tree combination, the
	// configuration closest to the paper's published ASP values (see
	// DESIGN.md §3).
	Eval *harm.EvalOptions
	// Workers bounds the goroutines EvaluateAll fans out across; the
	// default of 1 keeps it a deterministic serial loop (the engine in
	// internal/engine layers caching and wider pools on top).
	Workers int
}

// NewEvaluator builds an evaluator and solves the per-role availability
// models.
func NewEvaluator(opts Options) (*Evaluator, error) {
	e := &Evaluator{
		db:       opts.DB,
		trees:    opts.Trees,
		policy:   patch.CriticalPolicy(),
		schedule: patch.MonthlySchedule(),
		evalOpts: harm.EvalOptions{Strategy: harm.ASPCompromise, ORRule: attacktree.ORNoisy},
		agg:      make(map[string]availability.AggregatedRates),
		plans:    make(map[string]patch.Plan),
		factors:  make(map[factorKey]availability.TierFactor),
		security: make(map[securityKey]*securityFactor),
		rollout:  make(map[securityKey]*harm.FactoredHARM),
	}
	if e.db == nil {
		e.db = paperdata.VulnDB()
	}
	if e.trees == nil {
		e.trees = paperdata.Trees(e.db)
	}
	if opts.Policy != nil {
		e.policy = *opts.Policy
	}
	if opts.Schedule != nil {
		e.schedule = *opts.Schedule
	}
	if opts.Eval != nil {
		e.evalOpts = *opts.Eval
	}
	e.workers = 1
	if opts.Workers > 0 {
		e.workers = opts.Workers
	}

	for _, role := range paperdata.Roles() {
		if _, err := e.ratesFor(role); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// ratesFor returns the aggregated patch/recovery rates of a software
// stack, solving and caching its lower-layer availability model on first
// use. The paper's four roles are presolved at construction; variant
// stacks land here lazily. The solve runs outside the mutex so a cache
// miss never stalls workers whose stacks are already cached; concurrent
// first requests for one stack may duplicate the (deterministic) solve,
// which beats serializing the whole pool behind it.
func (e *Evaluator) ratesFor(stack string) (availability.AggregatedRates, error) {
	e.mu.Lock()
	a, ok := e.agg[stack]
	e.mu.Unlock()
	if ok {
		return a, nil
	}
	params, plan, err := paperdata.ServerParams(e.db, stack, e.policy, e.schedule)
	if err != nil {
		return availability.AggregatedRates{}, err
	}
	agg := availability.AggregatedRates{} // a stack that never patches is always fully up
	if plan.RequiresPatch() {
		sol, err := availability.SolveServer(params)
		if err != nil {
			return availability.AggregatedRates{}, err
		}
		if agg, err = availability.Aggregate(sol); err != nil {
			return availability.AggregatedRates{}, err
		}
	}
	e.mu.Lock()
	e.plans[stack] = plan
	e.agg[stack] = agg
	e.mu.Unlock()
	return agg, nil
}

// AggregatedRates exposes the cached per-stack rates (Table V).
func (e *Evaluator) AggregatedRates() map[string]availability.AggregatedRates {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]availability.AggregatedRates, len(e.agg))
	for k, v := range e.agg {
		out[k] = v
	}
	return out
}

// Plans exposes the per-stack patch plans.
func (e *Evaluator) Plans() map[string]patch.Plan {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]patch.Plan, len(e.plans))
	for k, v := range e.plans {
		out[k] = v
	}
	return out
}

// Result is the full evaluation of one design.
type Result struct {
	// Spec is the role-keyed design the result was evaluated for.
	Spec paperdata.DesignSpec
	// Before and After hold the security metrics on either side of the
	// patch round.
	Before, After harm.Metrics
	// COA is the capacity oriented availability under the patch schedule.
	COA float64
	// ServiceAvailability is P(at least one server up in every tier).
	ServiceAvailability float64
}

// buildHARM constructs the security model of a spec: the generalized
// Fig. 2 topology with the evaluator's attack-tree templates, targeting
// the stacks of the last logical tier.
func (e *Evaluator) buildHARM(spec paperdata.DesignSpec) (*harm.HARM, error) {
	top, err := paperdata.SpecTopology(spec)
	if err != nil {
		return nil, err
	}
	return harm.Build(harm.BuildInput{
		Topology:    top,
		Trees:       e.trees,
		TargetRoles: spec.TargetStacks(),
	})
}

// NetworkModelFor builds the upper-layer availability model of a spec:
// one tier per replica group with the stack's aggregated rates, grouped
// by logical role so heterogeneous groups back each other up (the
// service is up while any group of the role has a server up).
func (e *Evaluator) NetworkModelFor(spec paperdata.DesignSpec) (availability.NetworkModel, error) {
	nm, _, err := e.networkModelFor(spec)
	return nm, err
}

// networkModelFor is NetworkModelFor plus the software stack behind each
// tier in order — the memo identity the factored solver caches tier
// factors under (tier names carry ordinal suffixes, stacks do not).
func (e *Evaluator) networkModelFor(spec paperdata.DesignSpec) (availability.NetworkModel, []string, error) {
	if err := spec.Validate(); err != nil {
		return availability.NetworkModel{}, nil, err
	}
	var nm availability.NetworkModel
	var stacks []string
	names := make(map[string]int)
	for _, lt := range spec.Logical() {
		for _, g := range lt.Groups {
			stack := g.Stack()
			agg, err := e.ratesFor(stack)
			if err != nil {
				return availability.NetworkModel{}, nil, err
			}
			// Tier names must be unique in the SRN; a stack deployed in
			// several groups gets an ordinal suffix past the first.
			name := stack
			names[stack]++
			if names[stack] > 1 {
				name = fmt.Sprintf("%s#%d", stack, names[stack])
			}
			nm.Tiers = append(nm.Tiers, availability.Tier{
				Name:     name,
				Group:    lt.Role,
				N:        g.Replicas,
				LambdaEq: agg.LambdaEq,
				MuEq:     agg.MuEq,
			})
			stacks = append(stacks, stack)
		}
	}
	return nm, stacks, nil
}

// tierFactorFor returns the birth–death solution of one (stack, replica
// count) tier, memoized: a sweep over an R^k replica space performs one
// tier solve per distinct (stack, n) pair — O(R*k) — rather than one
// network solve per point. The solve is O(n) and runs under the mutex,
// so concurrent misses for one key never duplicate it and the TierSolves
// counter is an exact distinct-pair count. The hit return reports
// whether the memo served the factor; the context carries tracing only.
func (e *Evaluator) tierFactorFor(ctx context.Context, stack string, tier availability.Tier) (availability.TierFactor, bool, error) {
	k := factorKey{stack: stack, n: tier.N, patched: tier.N}
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.factors[k]; ok {
		e.tierFactorHits.Add(1)
		return f, true, nil
	}
	f, err := availability.SolveTierFactorCtx(ctx, tier)
	if err != nil {
		return availability.TierFactor{}, false, err
	}
	e.tierSolves.Add(1)
	e.factors[k] = f
	return f, false, nil
}

// solveNetwork dispatches one spec's availability solve: PerServer
// models (every model this evaluator builds) go through the memoized
// factored path, anything else falls back to the generated SRN. When
// every tier factor is already memoized the solve is closed-form
// arithmetic, so it is recorded as attributes on the caller's span
// rather than a span of its own — a memo-warm sweep stays nearly
// span-free. Any real solve work gets an "availability.solve" span
// recording which solver answered and how many tier factors came from
// the memo versus fresh solves.
func (e *Evaluator) solveNetwork(ctx context.Context, nm availability.NetworkModel, stacks []string) (availability.NetworkSolution, error) {
	if nm.Recovery == 0 || nm.Recovery == availability.PerServer {
		if factors, ok := e.memoizedFactors(nm, stacks); ok {
			// One attribute suffices: on this path every tier factor was
			// a memo hit by definition.
			trace.FromContext(ctx).SetAttr("availability_solver", "factored")
			e.factoredSolves.Add(1)
			return availability.ComposeNetwork(nm, factors)
		}
	}
	ctx, sp := trace.Start(ctx, "availability.solve",
		trace.Attr{Key: "tiers", Value: len(nm.Tiers)})
	sol, err := e.solveNetworkSpanned(ctx, sp, nm, stacks)
	sp.EndErr(err)
	return sol, err
}

// memoizedFactors returns the spec's tier factors when every (stack, n)
// pair is already memoized, counting the hits; one miss returns false
// with nothing counted, and the caller takes the spanned solve path
// (where tierFactorFor counts hits and misses individually).
func (e *Evaluator) memoizedFactors(nm availability.NetworkModel, stacks []string) ([]availability.TierFactor, bool) {
	factors := make([]availability.TierFactor, len(nm.Tiers))
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, t := range nm.Tiers {
		f, ok := e.factors[factorKey{stack: stacks[i], n: t.N, patched: t.N}]
		if !ok {
			return nil, false
		}
		factors[i] = f
	}
	e.tierFactorHits.Add(uint64(len(nm.Tiers)))
	return factors, true
}

func (e *Evaluator) solveNetworkSpanned(ctx context.Context, sp *trace.Span, nm availability.NetworkModel, stacks []string) (availability.NetworkSolution, error) {
	if nm.Recovery != 0 && nm.Recovery != availability.PerServer {
		sp.SetAttr("solver", "srn")
		e.srnSolves.Add(1)
		return availability.SolveNetworkSRNCtx(ctx, nm)
	}
	sp.SetAttr("solver", "factored")
	factors := make([]availability.TierFactor, len(nm.Tiers))
	hits := 0
	for i, t := range nm.Tiers {
		f, hit, err := e.tierFactorFor(ctx, stacks[i], t)
		if err != nil {
			return availability.NetworkSolution{}, err
		}
		if hit {
			hits++
		}
		factors[i] = f
	}
	sp.SetAttr("tier_memo_hits", hits)
	sp.SetAttr("tier_solves", len(nm.Tiers)-hits)
	e.factoredSolves.Add(1)
	return availability.ComposeNetwork(nm, factors)
}

// policyFingerprint renders the evaluator's patch-policy configuration
// for the security-memo key. Within one evaluator the policy never
// changes, but keeping it in the key makes a factor self-describing and
// keeps any future cross-evaluator sharing honest.
func (e *Evaluator) policyFingerprint() string {
	return fmt.Sprintf("pol=%+v|sch=%+v|eval=%+v", e.policy, e.schedule, e.evalOpts)
}

// keepLeaf is the patch transformation's keep predicate: a leaf survives
// the patch round unless its vulnerability is known and selected by the
// evaluator's policy. One definition serves both the factored path and
// the expanded oracle, so they can never disagree on patch semantics.
func (e *Evaluator) keepLeaf(_ string, l *attacktree.Leaf) bool {
	v, ok := e.db.ByID(l.Ref)
	if !ok {
		return true // unknown leaves cannot be patched away
	}
	return !e.policy.Selects(v)
}

// securityFactorFor returns the memoized factored security model of a
// spec's quotient structure, building it on first use: the quotient
// topology, its HARM, and the patched transformation — everything about
// security that does not depend on replica counts. The build runs under
// the mutex (it is microseconds of work on a replica-independent graph),
// so concurrent misses for one structure never duplicate it and
// SecuritySolves counts distinct structures exactly.
// The hit return reports whether the memo served the factor; a miss —
// the one place real security model-building happens — runs under a
// "security.evaluate" span, while hits stay span-free (the caller
// records provenance attributes instead).
func (e *Evaluator) securityFactorFor(ctx context.Context, quotient paperdata.DesignSpec, structure string) (*securityFactor, bool, error) {
	k := securityKey{structure: structure, policy: e.policyFingerprint()}
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.security[k]; ok {
		e.securityHits.Add(1)
		return f, true, nil
	}
	_, sp := trace.Start(ctx, "security.evaluate",
		trace.Attr{Key: "solver", Value: "quotient"},
		trace.Attr{Key: "memo", Value: "miss"})
	f, err := e.buildSecurityFactor(quotient)
	sp.EndErr(err)
	if err != nil {
		return nil, false, err
	}
	e.securitySolves.Add(1)
	e.security[k] = f
	return f, false, nil
}

// buildSecurityFactor builds the replica-independent factored security
// model of one quotient structure: the quotient topology, its HARM, and
// the patched transformation.
func (e *Evaluator) buildSecurityFactor(quotient paperdata.DesignSpec) (*securityFactor, error) {
	top, err := paperdata.SpecTopology(quotient)
	if err != nil {
		return nil, err
	}
	before, err := harm.BuildFactored(harm.BuildInput{
		Topology:    top,
		Trees:       e.trees,
		TargetRoles: quotient.TargetStacks(),
	})
	if err != nil {
		return nil, err
	}
	after, err := before.Patched(e.keepLeaf)
	if err != nil {
		return nil, err
	}
	return &securityFactor{before: before, after: after}, nil
}

// securityFor evaluates both sides of the patch round for one spec via
// the factored path: the quotient model is fetched (or built) once per
// variant structure, and the spec's replica counts enter the metrics in
// closed form. A memo hit is pure closed-form arithmetic, so it records
// provenance attributes on the caller's span instead of opening one of
// its own; only a miss — a genuine model build inside securityFactorFor
// — gets a "security.evaluate" span. The expanded-topology evaluation
// (securityExpanded) remains as the cross-validation oracle.
func (e *Evaluator) securityFor(ctx context.Context, spec paperdata.DesignSpec) (before, after harm.Metrics, err error) {
	quotient, mult, structure, err := paperdata.SpecQuotient(spec)
	if err != nil {
		return harm.Metrics{}, harm.Metrics{}, err
	}
	f, hit, err := e.securityFactorFor(ctx, quotient, structure)
	if err != nil {
		return harm.Metrics{}, harm.Metrics{}, err
	}
	parent := trace.FromContext(ctx)
	parent.SetAttr("security_solver", "quotient")
	if hit {
		parent.SetAttr("security_memo", "hit")
	} else {
		parent.SetAttr("security_memo", "miss")
	}
	e.securityFactored.Add(1)
	if before, err = f.before.Evaluate(mult, e.evalOpts); err != nil {
		return harm.Metrics{}, harm.Metrics{}, err
	}
	if after, err = f.after.Evaluate(mult, e.evalOpts); err != nil {
		return harm.Metrics{}, harm.Metrics{}, err
	}
	return before, after, nil
}

// securityExpanded evaluates the security metrics on the full
// replica-expanded HARM — the original pipeline, kept as the oracle the
// factored path is cross-validated against (TestFactoredSecurityEquivalence).
// Unlike the factored path, every oracle evaluation enumerates the
// expanded model, so both rounds run under "harm.expanded.evaluate"
// spans — in a trace, oracle time is unmistakable.
func (e *Evaluator) securityExpanded(ctx context.Context, spec paperdata.DesignSpec) (before, after harm.Metrics, err error) {
	h, err := e.buildHARM(spec)
	if err != nil {
		return harm.Metrics{}, harm.Metrics{}, err
	}
	if before, err = h.EvaluateCtx(ctx, e.evalOpts); err != nil {
		return harm.Metrics{}, harm.Metrics{}, err
	}
	patched, err := h.Patched(e.keepLeaf)
	if err != nil {
		return harm.Metrics{}, harm.Metrics{}, err
	}
	if after, err = patched.EvaluateCtx(ctx, e.evalOpts); err != nil {
		return harm.Metrics{}, harm.Metrics{}, err
	}
	return before, after, nil
}

// SolverStats counts the evaluator's model-solver dispatch on both paper
// axes.
type SolverStats struct {
	// FactoredSolves is the number of network solves served by the
	// factored (per-tier birth–death) path.
	FactoredSolves uint64
	// SRNSolves is the number of network solves that generated and
	// eliminated the full SRN (SingleRepair models).
	SRNSolves uint64
	// TierSolves is the number of per-(stack, replicas) tier factors
	// solved — the cache-miss count.
	TierSolves uint64
	// TierFactorHits is the number of tier factors served from the memo.
	TierFactorHits uint64
	// SecurityFactored is the number of spec security evaluations served
	// by the factored (quotient) path.
	SecurityFactored uint64
	// SecuritySolves is the number of factored security models built —
	// one per distinct (variant structure, policy) pair, the security
	// memo's miss count.
	SecuritySolves uint64
	// SecurityFactorHits is the number of security evaluations served
	// from the memo.
	SecurityFactorHits uint64
	// RolloutEvals is the number of mixed-version rollout-point
	// evaluations.
	RolloutEvals uint64
	// RolloutModels is the number of mixed-version security models built
	// — one per distinct (rollout structure, policy) pair, the rollout
	// memo's miss count.
	RolloutModels uint64
	// RolloutModelHits is the number of rollout evaluations whose
	// security model came from the memo.
	RolloutModelHits uint64
}

// SolverStats returns a snapshot of the dispatch counters.
func (e *Evaluator) SolverStats() SolverStats {
	return SolverStats{
		FactoredSolves:     e.factoredSolves.Load(),
		SRNSolves:          e.srnSolves.Load(),
		TierSolves:         e.tierSolves.Load(),
		TierFactorHits:     e.tierFactorHits.Load(),
		SecurityFactored:   e.securityFactored.Load(),
		SecuritySolves:     e.securitySolves.Load(),
		SecurityFactorHits: e.securityHits.Load(),
		RolloutEvals:       e.rolloutEvals.Load(),
		RolloutModels:      e.rolloutModels.Load(),
		RolloutModelHits:   e.rolloutModelHits.Load(),
	}
}

// EvaluateSpec runs both models for one role-keyed design. Security goes
// through the factored (quotient) evaluator: the replica-symmetric HARM
// is built once per variant structure and the spec's replica counts enter
// the metrics in closed form, so sweeps never rebuild or re-enumerate the
// replica-expanded model.
func (e *Evaluator) EvaluateSpec(spec paperdata.DesignSpec) (Result, error) {
	return e.EvaluateSpecContext(context.Background(), spec)
}

// EvaluateSpecContext is EvaluateSpec with the caller's context threaded
// through for tracing: when the context carries a tracer, the security
// and availability solves record spans naming which solver ran, which
// memos hit, and how long each step took. The context is used for
// observability only — an evaluation never aborts mid-solve on
// cancellation, so a result computed for one caller stays valid for
// every concurrent caller deduplicated onto it.
func (e *Evaluator) EvaluateSpecContext(ctx context.Context, spec paperdata.DesignSpec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Spec: spec}
	var err error
	if res.Before, res.After, err = e.securityFor(ctx, spec); err != nil {
		return Result{}, err
	}

	nm, stacks, err := e.networkModelFor(spec)
	if err != nil {
		return Result{}, err
	}
	sol, err := e.solveNetwork(ctx, nm, stacks)
	if err != nil {
		return Result{}, err
	}
	res.COA = sol.COA
	res.ServiceAvailability = sol.ServiceAvailability
	return res, nil
}

// Evaluate runs both models for one classic 4-tuple design.
func (e *Evaluator) Evaluate(d paperdata.Design) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	return e.EvaluateSpec(d.Spec())
}

// RankPatches ranks the policy-selected vulnerabilities of a design by
// the network-level risk reduction of patching each alone — the
// prioritization an administrator needs when the selected set does not
// fit one maintenance window. The ranking uses the evaluator's own
// dataset, trees and policy, so a PatchAll or custom-threshold study
// ranks exactly the set it would patch.
func (e *Evaluator) RankPatches(spec paperdata.DesignSpec) ([]harm.PatchCandidate, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	h, err := e.buildHARM(spec)
	if err != nil {
		return nil, err
	}
	return h.RankPatchCandidatesWhere(e.evalOpts, func(ref string) bool {
		v, ok := e.db.ByID(ref)
		return ok && e.policy.Selects(v)
	})
}

// PlanCampaign splits the policy-selected patches of one stack role over
// maintenance rounds bounded by maxWindow, under the evaluator's policy
// and schedule.
func (e *Evaluator) PlanCampaign(role string, maxWindow time.Duration) (patch.Campaign, error) {
	vulns, err := paperdata.VulnsForRole(e.db, role)
	if err != nil {
		return patch.Campaign{}, err
	}
	return patch.PlanCampaign(role, vulns, e.policy, e.schedule, maxWindow)
}

// EvaluateAll evaluates a list of designs and returns results in input
// order. It delegates to the engine's worker-pool primitive
// (internal/workpool); with the default Options.Workers of 1 it is the
// serial reference loop, with more workers the designs evaluate
// concurrently with identical output.
func (e *Evaluator) EvaluateAll(designs []paperdata.Design) ([]Result, error) {
	return workpool.Map(e.workers, designs, func(_ int, d paperdata.Design) (Result, error) {
		r, err := e.Evaluate(d)
		if err != nil {
			return Result{}, fmt.Errorf("redundancy: design %s: %w", d, err)
		}
		return r, nil
	})
}

// ScatterBounds are the administrator bounds of the paper's Eq. 3:
// an upper bound phi on ASP and a lower bound psi on COA.
type ScatterBounds struct {
	MaxASP float64 // phi
	MinCOA float64 // psi
}

// Satisfied implements Eq. 3 on the after-patch metrics: 1 iff
// ASP <= phi and COA >= psi.
func (b ScatterBounds) Satisfied(r Result) bool {
	return r.After.ASP <= b.MaxASP && r.COA >= b.MinCOA
}

// MultiBounds are the administrator bounds of the paper's Eq. 4: upper
// bounds on ASP, NoEV, NoAP and NoEP plus a lower bound on COA.
type MultiBounds struct {
	MaxASP  float64 // phi
	MaxNoEV int     // xi
	MaxNoAP int     // omega
	MaxNoEP int     // kappa
	MinCOA  float64 // psi
}

// Satisfied implements Eq. 4 on the after-patch metrics.
func (b MultiBounds) Satisfied(r Result) bool {
	return r.After.ASP <= b.MaxASP &&
		r.After.NoEV <= b.MaxNoEV &&
		r.After.NoAP <= b.MaxNoAP &&
		r.After.NoEP <= b.MaxNoEP &&
		r.COA >= b.MinCOA
}

// Bound is satisfied by both bounds types; filtering is generic over it.
type Bound interface {
	Satisfied(Result) bool
}

// Filter returns the results satisfying the bound, preserving order.
func Filter(results []Result, b Bound) []Result {
	var out []Result
	for _, r := range results {
		if b.Satisfied(r) {
			out = append(out, r)
		}
	}
	return out
}

// Dominates reports whether a dominates b on the (minimize after-patch
// ASP, maximize COA) plane: a.ASP <= b.ASP and a.COA >= b.COA with at
// least one strict. ParetoFront and the engine's incremental front both
// apply this one predicate.
func Dominates(a, b Result) bool {
	return a.After.ASP <= b.After.ASP && a.COA >= b.COA &&
		(a.After.ASP < b.After.ASP || a.COA > b.COA)
}

// ParetoFront returns the designs not dominated on the
// (minimize after-patch ASP, maximize COA) plane, sorted by ascending
// ASP.
func ParetoFront(results []Result) []Result {
	var front []Result
	for i, r := range results {
		dominated := false
		for j, s := range results {
			if i != j && Dominates(s, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, r)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].After.ASP != front[j].After.ASP {
			return front[i].After.ASP < front[j].After.ASP
		}
		return front[i].COA > front[j].COA
	})
	return front
}

// CostModel monetizes a design per month, the economic extension the
// paper lists in §V: fixed server cost, capacity-loss cost scaled by
// (1 - COA), and expected breach loss scaled by the after-patch ASP.
type CostModel struct {
	// ServerPerMonth is the cost of operating one server for a month.
	ServerPerMonth float64
	// DowntimePerHour is the cost of one full-capacity-hour lost.
	DowntimePerHour float64
	// BreachLoss is the loss of a successful compromise, weighted by the
	// after-patch attack success probability.
	BreachLoss float64
	// HoursPerMonth defaults to 720 when zero.
	HoursPerMonth float64
}

// MonthlyCost evaluates the model for one design result.
func (c CostModel) MonthlyCost(r Result) float64 {
	hours := c.HoursPerMonth
	if hours == 0 {
		hours = 720
	}
	return c.ServerPerMonth*float64(r.Spec.Total()) +
		c.DowntimePerHour*(1-r.COA)*hours +
		c.BreachLoss*r.After.ASP
}

// Cheapest returns the result with the lowest monthly cost (ties keep the
// earlier result). It errors on an empty slice.
func (c CostModel) Cheapest(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("redundancy: no results to cost")
	}
	best := results[0]
	bestCost := c.MonthlyCost(best)
	for _, r := range results[1:] {
		if cost := c.MonthlyCost(r); cost < bestCost {
			best, bestCost = r, cost
		}
	}
	return best, nil
}

// EnumerateDesigns yields every design with 1..maxPerTier servers per
// tier, in lexicographic order — the larger design spaces of the paper's
// §V "Systems" extension.
func EnumerateDesigns(maxPerTier int) []paperdata.Design {
	if maxPerTier < 1 {
		return nil
	}
	var out []paperdata.Design
	for dns := 1; dns <= maxPerTier; dns++ {
		for web := 1; web <= maxPerTier; web++ {
			for app := 1; app <= maxPerTier; app++ {
				for db := 1; db <= maxPerTier; db++ {
					out = append(out, paperdata.Design{
						Name: paperdata.DefaultName(dns, web, app, db),
						DNS:  dns, Web: web, App: app, DB: db,
					})
				}
			}
		}
	}
	return out
}
