package redundancy

import (
	"fmt"

	"redpatch/internal/availability"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/vulndb"
)

// CampaignResidualASP traces the composite attack-surface probability of
// a role's policy-selected vulnerabilities across a campaign: entry i is
// the probability that at least one still-unpatched selected
// vulnerability is successfully exploited after i completed rounds
// (entry 0 = before any round, last entry = the floor the deferred set
// leaves behind). The composition is canonical (vulndb.CompositeASP), so
// the fleet simulator's residual stream and this trajectory agree bit
// for bit on the same campaign.
func (e *Evaluator) CampaignResidualASP(role string, camp patch.Campaign) ([]float64, error) {
	vulns, err := paperdata.VulnsForRole(e.db, role)
	if err != nil {
		return nil, err
	}
	var selected []vulndb.Vulnerability
	for _, v := range vulns {
		if e.policy.Selects(v) {
			selected = append(selected, v)
		}
	}
	out := make([]float64, camp.TotalRounds()+1)
	for i := range out {
		out[i] = vulndb.CompositeASP(camp.ResidualAfterRound(i, selected))
	}
	return out, nil
}

// CampaignTimeline builds the availability-layer view of a campaign: one
// try-revert maintenance window per round, spaced cycleHours apart, each
// sampled at the given offsets (hours into the window), solved by
// availability.CampaignTransient — the server's P(service up) trajectory
// over the whole campaign, rollback branch included.
func (e *Evaluator) CampaignTimeline(role string, camp patch.Campaign, rb availability.Rollback, cycleHours float64, offsets []float64) ([]availability.PatchWindowPoint, error) {
	if err := rb.Validate(); err != nil {
		return nil, err
	}
	if cycleHours <= 0 {
		return nil, fmt.Errorf("redundancy: non-positive cycle %v h", cycleHours)
	}
	if len(offsets) == 0 {
		return nil, fmt.Errorf("redundancy: no sample offsets")
	}
	base, _, err := paperdata.ServerParams(e.db, role, e.policy, e.schedule)
	if err != nil {
		return nil, err
	}
	windows := make([]availability.CampaignWindow, 0, camp.TotalRounds())
	times := make([]float64, 0, camp.TotalRounds()*len(offsets))
	for i, r := range camp.Rounds {
		p := base
		p.SvcPatchTime = r.ServicePatchTime
		p.OSPatchTime = r.OSPatchTime
		start := float64(i) * cycleHours
		windows = append(windows, availability.CampaignWindow{
			StartHours: start,
			Params:     p,
			Rollback:   rb,
		})
		for _, off := range offsets {
			if off < 0 || off >= cycleHours {
				return nil, fmt.Errorf("redundancy: offset %v h outside [0, cycle)", off)
			}
			times = append(times, start+off)
		}
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("redundancy: campaign has no rounds")
	}
	return availability.CampaignTransient(windows, times)
}
