package redundancy

import (
	"context"
	"fmt"
	"testing"

	"redpatch/internal/harm"
	"redpatch/internal/mathx"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/trace"
)

// assertMetricsEqual compares the factored and expanded security metrics
// to the equivalence tolerance.
func assertMetricsEqual(t *testing.T, label string, fac, exp harm.Metrics) {
	t.Helper()
	const tol = 1e-9
	if fac.NoEV != exp.NoEV || fac.NoAP != exp.NoAP || fac.NoEP != exp.NoEP ||
		fac.ShortestPath != exp.ShortestPath {
		t.Errorf("%s: counts NoEV/NoAP/NoEP/SP %d/%d/%d/%d != %d/%d/%d/%d",
			label, fac.NoEV, fac.NoAP, fac.NoEP, fac.ShortestPath,
			exp.NoEV, exp.NoAP, exp.NoEP, exp.ShortestPath)
	}
	if !mathx.AlmostEqual(fac.AIM, exp.AIM, tol) {
		t.Errorf("%s: AIM %.12f != %.12f", label, fac.AIM, exp.AIM)
	}
	if !mathx.AlmostEqual(fac.ASP, exp.ASP, tol) {
		t.Errorf("%s: ASP %.12f != %.12f", label, fac.ASP, exp.ASP)
	}
}

// equivalenceSpecs enumerates the design space the factored path is
// validated over: every homogeneous four-tier design with 1..4 replicas
// per tier, plus heterogeneous web tiers mixing the webalt variant at
// 1..4 replicas per group.
func equivalenceSpecs() []paperdata.DesignSpec {
	var specs []paperdata.DesignSpec
	for dns := 1; dns <= 4; dns++ {
		for web := 1; web <= 4; web++ {
			for app := 1; app <= 4; app++ {
				for db := 1; db <= 4; db++ {
					specs = append(specs, paperdata.Design{
						Name: paperdata.DefaultName(dns, web, app, db),
						DNS:  dns, Web: web, App: app, DB: db,
					}.Spec())
				}
			}
		}
	}
	// Heterogeneous web tier: web and webalt groups backing each other up.
	for web := 1; web <= 4; web++ {
		for alt := 1; alt <= 4; alt++ {
			specs = append(specs, paperdata.DesignSpec{
				Name: fmt.Sprintf("het-%dw-%dwa", web, alt),
				Tiers: []paperdata.TierSpec{
					{Role: paperdata.RoleDNS, Replicas: 1},
					{Role: paperdata.RoleWeb, Replicas: web},
					{Role: paperdata.RoleWeb, Replicas: alt, Variant: paperdata.RoleWebAlt},
					{Role: paperdata.RoleApp, Replicas: 2},
					{Role: paperdata.RoleDB, Replicas: 1},
				},
			})
		}
	}
	// A webalt-only web tier and a deeper mixed design exercise the
	// class-merging and naming edges.
	specs = append(specs,
		paperdata.DesignSpec{
			Name: "altonly",
			Tiers: []paperdata.TierSpec{
				{Role: paperdata.RoleDNS, Replicas: 2},
				{Role: paperdata.RoleWeb, Replicas: 3, Variant: paperdata.RoleWebAlt},
				{Role: paperdata.RoleApp, Replicas: 1},
				{Role: paperdata.RoleDB, Replicas: 2},
			},
		},
		paperdata.DesignSpec{
			Name: "mergedweb",
			Tiers: []paperdata.TierSpec{
				{Role: paperdata.RoleDNS, Replicas: 1},
				{Role: paperdata.RoleWeb, Replicas: 2},
				{Role: paperdata.RoleWeb, Replicas: 1}, // same stack twice: classes merge
				{Role: paperdata.RoleApp, Replicas: 2},
				{Role: paperdata.RoleDB, Replicas: 1},
			},
		},
	)
	return specs
}

// TestFactoredSecurityEquivalence is the security counterpart of the
// availability solver's TestFactoredEquivalence: across the paper's
// design space — all four tiers at 1..4 replicas, webalt variant mixes,
// both patch policies — the factored (quotient) security metrics must
// match the expanded-topology oracle on every metric within 1e-9. CI
// runs it under the race detector.
func TestFactoredSecurityEquivalence(t *testing.T) {
	critical := patch.CriticalPolicy()
	all := patch.Policy{PatchAll: true}
	// Both parallel subtests evaluate under one shared tracer, so the
	// race detector also covers concurrent span recording on the solver
	// path — the configuration redpatchd runs in.
	ctx := trace.WithTracer(context.Background(), trace.New(trace.Options{}))
	for _, pc := range []struct {
		name   string
		policy patch.Policy
	}{
		{"critical", critical},
		{"patchAll", all},
	} {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			ev, err := NewEvaluator(Options{Policy: &pc.policy})
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range equivalenceSpecs() {
				facBefore, facAfter, err := ev.securityFor(ctx, spec)
				if err != nil {
					t.Fatalf("%s: factored: %v", spec.Name, err)
				}
				expBefore, expAfter, err := ev.securityExpanded(ctx, spec)
				if err != nil {
					t.Fatalf("%s: expanded: %v", spec.Name, err)
				}
				assertMetricsEqual(t, spec.Name+"/before", facBefore, expBefore)
				assertMetricsEqual(t, spec.Name+"/after", facAfter, expAfter)
			}
		})
	}
}

// TestSecurityMemoSweepReuse: a sweep over an R^k replica space must
// build exactly one factored security model per variant structure —
// every other spec is a memo hit.
func TestSecurityMemoSweepReuse(t *testing.T) {
	ev, err := NewEvaluator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for dns := 1; dns <= 3; dns++ {
		for web := 1; web <= 3; web++ {
			for app := 1; app <= 3; app++ {
				for db := 1; db <= 3; db++ {
					d := paperdata.Design{Name: "s", DNS: dns, Web: web, App: app, DB: db}
					if _, err := ev.EvaluateSpec(d.Spec()); err != nil {
						t.Fatal(err)
					}
					n++
				}
			}
		}
	}
	st := ev.SolverStats()
	if st.SecuritySolves != 1 {
		t.Errorf("SecuritySolves = %d, want 1 (one homogeneous structure)", st.SecuritySolves)
	}
	if st.SecurityFactorHits != uint64(n-1) {
		t.Errorf("SecurityFactorHits = %d, want %d", st.SecurityFactorHits, n-1)
	}
	if st.SecurityFactored != uint64(n) {
		t.Errorf("SecurityFactored = %d, want %d", st.SecurityFactored, n)
	}
}

// TestSecurityMemoKeyVariants: two specs with identical replica counts
// but different variant sets must not share a security factor, and their
// metrics must differ (the variant stack has different vulnerabilities).
func TestSecurityMemoKeyVariants(t *testing.T) {
	ev, err := NewEvaluator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := paperdata.DesignSpec{
		Name: "plain",
		Tiers: []paperdata.TierSpec{
			{Role: paperdata.RoleDNS, Replicas: 1},
			{Role: paperdata.RoleWeb, Replicas: 2},
			{Role: paperdata.RoleApp, Replicas: 2},
			{Role: paperdata.RoleDB, Replicas: 1},
		},
	}
	variant := paperdata.DesignSpec{
		Name: "variant",
		Tiers: []paperdata.TierSpec{
			{Role: paperdata.RoleDNS, Replicas: 1},
			{Role: paperdata.RoleWeb, Replicas: 2, Variant: paperdata.RoleWebAlt},
			{Role: paperdata.RoleApp, Replicas: 2},
			{Role: paperdata.RoleDB, Replicas: 1},
		},
	}
	rp, err := ev.EvaluateSpec(plain)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := ev.EvaluateSpec(variant)
	if err != nil {
		t.Fatal(err)
	}
	st := ev.SolverStats()
	if st.SecuritySolves != 2 {
		t.Errorf("SecuritySolves = %d, want 2 (distinct variant structures)", st.SecuritySolves)
	}
	if st.SecurityFactorHits != 0 {
		t.Errorf("SecurityFactorHits = %d, want 0", st.SecurityFactorHits)
	}
	// Same replica counts, different stacks: the webalt web tier has 3
	// exploitable vulnerabilities per replica instead of 5.
	if rp.Before.NoEV == rv.Before.NoEV {
		t.Errorf("plain and variant NoEV both %d; factors must not be shared", rp.Before.NoEV)
	}
	// Re-evaluating either spec is a pure memo hit.
	if _, err := ev.EvaluateSpec(plain); err != nil {
		t.Fatal(err)
	}
	if got := ev.SolverStats().SecuritySolves; got != 2 {
		t.Errorf("SecuritySolves after repeat = %d, want 2", got)
	}
}

// TestSecurityMemoDistinctPolicies: evaluators under different patch
// policies must key their factors apart — the after-patch metrics of the
// same spec differ.
func TestSecurityMemoDistinctPolicies(t *testing.T) {
	critical, err := NewEvaluator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	allPol := patch.Policy{PatchAll: true}
	all, err := NewEvaluator(Options{Policy: &allPol})
	if err != nil {
		t.Fatal(err)
	}
	spec := paperdata.BaseDesign().Spec()
	rc, err := critical.EvaluateSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := all.EvaluateSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ra.After.NoEV != 0 {
		t.Errorf("patch-all after NoEV = %d, want 0", ra.After.NoEV)
	}
	if rc.After.NoEV == ra.After.NoEV {
		t.Error("critical and patch-all after-patch NoEV should differ")
	}
}
