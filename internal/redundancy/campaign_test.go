package redundancy

import (
	"testing"
	"time"

	"redpatch/internal/availability"
	"redpatch/internal/vulndb"
)

func TestCampaignResidualASP(t *testing.T) {
	e, _ := evaluator(t)
	camp, err := e.PlanCampaign("app", 35*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if camp.TotalRounds() < 2 {
		t.Fatalf("rounds = %d, want a split campaign", camp.TotalRounds())
	}
	traj, err := e.CampaignResidualASP("app", camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != camp.TotalRounds()+1 {
		t.Fatalf("trajectory %d entries, want %d", len(traj), camp.TotalRounds()+1)
	}
	for i := 1; i < len(traj); i++ {
		if traj[i] > traj[i-1] {
			t.Errorf("residual grew at round %d: %v -> %v", i, traj[i-1], traj[i])
		}
	}
	if traj[0] <= 0 || traj[0] > 1 {
		t.Errorf("initial residual %v outside (0, 1]", traj[0])
	}
	// Everything fit a round (no deferrals), so the floor is clean.
	if len(camp.Deferred) == 0 && traj[len(traj)-1] != 0 {
		t.Errorf("final residual %v, want 0 with nothing deferred", traj[len(traj)-1])
	}
	// The trajectory composes exactly the campaign's own selected set —
	// the identity the fleet simulator relies on.
	var all []vulndb.Vulnerability
	for _, r := range camp.Rounds {
		all = append(all, r.Selected...)
	}
	all = append(all, camp.Deferred...)
	for i := range traj {
		if want := vulndb.CompositeASP(camp.ResidualAfterRound(i, all)); traj[i] != want {
			t.Errorf("entry %d = %v, campaign-derived %v (must be bit-identical)", i, traj[i], want)
		}
	}

	if _, err := e.CampaignResidualASP("nope", camp); err == nil {
		t.Error("unknown role should fail")
	}
}

func TestCampaignTimeline(t *testing.T) {
	e, _ := evaluator(t)
	camp, err := e.PlanCampaign("app", 35*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rb := availability.Rollback{SuccessProb: 0.8, Duration: 10 * time.Minute}
	offsets := []float64{0.1, 2}
	pts, err := e.CampaignTimeline("app", camp, rb, 720, offsets)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != camp.TotalRounds()*len(offsets) {
		t.Fatalf("points = %d, want %d", len(pts), camp.TotalRounds()*len(offsets))
	}
	for i, pt := range pts {
		round := i / len(offsets)
		if want := float64(round)*720 + offsets[i%len(offsets)]; pt.Hours != want {
			t.Errorf("point %d at %v h, want %v", i, pt.Hours, want)
		}
		if pt.ServiceUp < 0 || pt.ServiceUp > 1 {
			t.Errorf("point %d: P(up) = %v", i, pt.ServiceUp)
		}
	}
	// Early in each window the pipeline dominates; by two hours in the
	// service has recovered.
	for r := 0; r < camp.TotalRounds(); r++ {
		early, late := pts[r*2], pts[r*2+1]
		if early.ServiceUp >= late.ServiceUp {
			t.Errorf("round %d: no recovery %v -> %v", r, early.ServiceUp, late.ServiceUp)
		}
		if late.ServiceUp < 0.99 {
			t.Errorf("round %d: P(up) at +2h = %v, want ≈ 1", r, late.ServiceUp)
		}
	}

	if _, err := e.CampaignTimeline("app", camp, availability.Rollback{}, 720, offsets); err == nil {
		t.Error("invalid rollback should fail")
	}
	if _, err := e.CampaignTimeline("app", camp, rb, 0, offsets); err == nil {
		t.Error("non-positive cycle should fail")
	}
	if _, err := e.CampaignTimeline("app", camp, rb, 720, nil); err == nil {
		t.Error("no offsets should fail")
	}
	if _, err := e.CampaignTimeline("app", camp, rb, 720, []float64{721}); err == nil {
		t.Error("offset beyond the cycle should fail")
	}
}
