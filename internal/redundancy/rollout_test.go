package redundancy

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"redpatch/internal/attacktree"
	"redpatch/internal/availability"
	"redpatch/internal/harm"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
)

// TestRolloutDegenerateEndpoints is the byte-identity gate the rollout
// path must clear before the mixed points mean anything: fraction 0
// everywhere must reproduce the atomic before-patch result and fraction
// 1 everywhere the after-patch one, exactly — same security metrics bit
// for bit through both factored solvers, and for f=1 the same COA and
// service availability (f=0 is deterministically fully up: nothing is
// patching). CI runs it under the race detector with the other
// equivalence gates.
func TestRolloutDegenerateEndpoints(t *testing.T) {
	ctx := context.Background()
	specs := []paperdata.DesignSpec{
		paperdata.BaseDesign().Spec(),
		paperdata.Design{Name: "d2322", DNS: 2, Web: 3, App: 2, DB: 2}.Spec(),
		{
			Name: "het",
			Tiers: []paperdata.TierSpec{
				{Role: paperdata.RoleDNS, Replicas: 1},
				{Role: paperdata.RoleWeb, Replicas: 2},
				{Role: paperdata.RoleWeb, Replicas: 2, Variant: paperdata.RoleWebAlt},
				{Role: paperdata.RoleApp, Replicas: 2},
				{Role: paperdata.RoleDB, Replicas: 1},
			},
		},
	}
	allPol := patch.Policy{PatchAll: true}
	for _, pc := range []struct {
		name   string
		policy *patch.Policy
	}{
		{"critical", nil},
		{"patchAll", &allPol},
	} {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			ev, err := NewEvaluator(Options{Policy: pc.policy})
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range specs {
				atomic, err := ev.EvaluateSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				zeros := make([]float64, len(spec.Tiers))
				ones := make([]float64, len(spec.Tiers))
				for i := range ones {
					ones[i] = 1
				}
				r0, err := ev.EvaluateRollout(ctx, spec, zeros)
				if err != nil {
					t.Fatalf("%s: f=0: %v", spec.Name, err)
				}
				if !reflect.DeepEqual(r0.Security, atomic.Before) {
					t.Errorf("%s: f=0 security differs from atomic before:\n%+v\n%+v",
						spec.Name, r0.Security, atomic.Before)
				}
				if r0.COA != 1 || r0.ServiceAvailability != 1 {
					t.Errorf("%s: f=0 COA %v, service availability %v, want exactly 1",
						spec.Name, r0.COA, r0.ServiceAvailability)
				}
				r1, err := ev.EvaluateRollout(ctx, spec, ones)
				if err != nil {
					t.Fatalf("%s: f=1: %v", spec.Name, err)
				}
				if !reflect.DeepEqual(r1.Security, atomic.After) {
					t.Errorf("%s: f=1 security differs from atomic after:\n%+v\n%+v",
						spec.Name, r1.Security, atomic.After)
				}
				if r1.COA != atomic.COA {
					t.Errorf("%s: f=1 COA %v != atomic %v", spec.Name, r1.COA, atomic.COA)
				}
				if r1.ServiceAvailability != atomic.ServiceAvailability {
					t.Errorf("%s: f=1 service availability %v != atomic %v",
						spec.Name, r1.ServiceAvailability, atomic.ServiceAvailability)
				}
			}
		})
	}
}

// rolloutSecurityExpanded is the mixed-version oracle: the fully
// expanded topology (every replica a host) with the patched replicas'
// trees pruned per instance, evaluated without any quotient. Host names
// replay SpecTopology's global stack counter; within a class the
// replicas are symmetric, so patching the last p of each group matches
// any placement the quotient could stand for.
func rolloutSecurityExpanded(ev *Evaluator, spec paperdata.DesignSpec, patched []int) (harm.Metrics, error) {
	top, err := paperdata.SpecTopology(spec)
	if err != nil {
		return harm.Metrics{}, err
	}
	inst := make(map[string]*attacktree.Tree)
	counter := make(map[string]int)
	indices := spec.LogicalIndices()
	for li, lt := range spec.Logical() {
		for gi, g := range lt.Groups {
			stack := g.Stack()
			p := patched[indices[li][gi]]
			for r := 1; r <= g.Replicas; r++ {
				counter[stack]++
				if r > g.Replicas-p {
					host := fmt.Sprintf("%s%d", stack, counter[stack])
					tmpl := ev.trees[stack]
					if tmpl == nil {
						continue
					}
					inst[host] = tmpl.Prune(func(l *attacktree.Leaf) bool {
						return ev.keepLeaf(stack, l)
					})
				}
			}
		}
	}
	h, err := harm.Build(harm.BuildInput{
		Topology:      top,
		Trees:         ev.trees,
		InstanceTrees: inst,
		TargetRoles:   spec.TargetStacks(),
	})
	if err != nil {
		return harm.Metrics{}, err
	}
	return h.Evaluate(ev.evalOpts)
}

// TestFactoredSecurityEquivalenceRollout extends the security
// equivalence gate to mixed rollout points: across homogeneous and
// heterogeneous specs and a spread of per-tier fractions, the
// sub-classed rollout quotient must match the expanded per-instance
// oracle on every metric within 1e-9. CI runs it under the race
// detector.
func TestFactoredSecurityEquivalenceRollout(t *testing.T) {
	ctx := context.Background()
	ev, err := NewEvaluator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []paperdata.DesignSpec{
		paperdata.BaseDesign().Spec(),
		paperdata.Design{Name: "d3233", DNS: 3, Web: 2, App: 3, DB: 3}.Spec(),
		{
			Name: "het",
			Tiers: []paperdata.TierSpec{
				{Role: paperdata.RoleDNS, Replicas: 2},
				{Role: paperdata.RoleWeb, Replicas: 3},
				{Role: paperdata.RoleWeb, Replicas: 2, Variant: paperdata.RoleWebAlt},
				{Role: paperdata.RoleApp, Replicas: 2},
				{Role: paperdata.RoleDB, Replicas: 2},
			},
		},
		{
			// Interleaved groups: spec.Tiers order differs from the logical
			// layering, exercising the fraction-to-tier index mapping.
			Name: "interleaved",
			Tiers: []paperdata.TierSpec{
				{Role: paperdata.RoleDNS, Replicas: 1},
				{Role: paperdata.RoleWeb, Replicas: 2},
				{Role: paperdata.RoleApp, Replicas: 2},
				{Role: paperdata.RoleWeb, Replicas: 2, Variant: paperdata.RoleWebAlt},
				{Role: paperdata.RoleDB, Replicas: 2},
			},
		},
	}
	// A spread of fraction shapes per spec: uniform mid-rollout, skewed,
	// and a mix of finished and untouched tiers.
	shapes := []func(i, tiers int) float64{
		func(i, tiers int) float64 { return 0.5 },
		func(i, tiers int) float64 { return float64(i) / float64(tiers) },
		func(i, tiers int) float64 {
			if i%2 == 0 {
				return 1
			}
			return 0
		},
	}
	for _, spec := range specs {
		for si, shape := range shapes {
			fractions := make([]float64, len(spec.Tiers))
			for i := range fractions {
				fractions[i] = shape(i, len(spec.Tiers))
			}
			r, err := ev.EvaluateRollout(ctx, spec, fractions)
			if err != nil {
				t.Fatalf("%s/shape%d: rollout: %v", spec.Name, si, err)
			}
			exp, err := rolloutSecurityExpanded(ev, spec, r.Patched)
			if err != nil {
				t.Fatalf("%s/shape%d: expanded oracle: %v", spec.Name, si, err)
			}
			assertMetricsEqual(t, fmt.Sprintf("%s/shape%d", spec.Name, si), r.Security, exp)
		}
	}
}

// TestRolloutAvailabilityMapping pins the fraction-to-tier mapping on
// the availability side with an interleaved spec whose web groups are
// patched asymmetrically: the composed mixed-version solution must match
// a hand-built oracle over the logical tier order.
func TestRolloutAvailabilityMapping(t *testing.T) {
	ctx := context.Background()
	ev, err := NewEvaluator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := paperdata.DesignSpec{
		Name: "interleaved",
		Tiers: []paperdata.TierSpec{
			{Role: paperdata.RoleDNS, Replicas: 1},
			{Role: paperdata.RoleWeb, Replicas: 2},
			{Role: paperdata.RoleApp, Replicas: 2},
			{Role: paperdata.RoleWeb, Replicas: 2, Variant: paperdata.RoleWebAlt},
			{Role: paperdata.RoleDB, Replicas: 1},
		},
	}
	// Patch all of web, none of webalt, half of app: a wrong mapping
	// would hand app's fraction to webalt (their spec positions swap in
	// logical order) and change the composition.
	fractions := []float64{0, 1, 0.5, 0, 0}
	r, err := ev.EvaluateRollout(ctx, spec, fractions)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := ev.NetworkModelFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	// nm.Tiers is the logical order dns, web, webalt, app, db; the
	// patched counts are written out by hand against it.
	oracle, err := availability.SolveNetworkRollout(nm, []int{0, 2, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.COA != oracle.COA {
		t.Errorf("COA %v != oracle %v", r.COA, oracle.COA)
	}
	if r.ServiceAvailability != oracle.ServiceAvailability {
		t.Errorf("service availability %v != oracle %v", r.ServiceAvailability, oracle.ServiceAvailability)
	}
}

// TestRolloutMemoReuse: re-evaluating rollout points must reuse both the
// mixed-version security model (per rollout structure) and the partial
// tier factors (per stack, n, patched).
func TestRolloutMemoReuse(t *testing.T) {
	ctx := context.Background()
	ev, err := NewEvaluator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := paperdata.Design{Name: "m", DNS: 2, Web: 3, App: 2, DB: 2}.Spec()
	fr := []float64{0.5, 0.5, 0.5, 0.5}
	if _, err := ev.EvaluateRollout(ctx, spec, fr); err != nil {
		t.Fatal(err)
	}
	st := ev.SolverStats()
	if st.RolloutEvals != 1 || st.RolloutModels != 1 || st.RolloutModelHits != 0 {
		t.Fatalf("after first eval: evals/models/hits = %d/%d/%d, want 1/1/0",
			st.RolloutEvals, st.RolloutModels, st.RolloutModelHits)
	}
	// The same point again, and a different fraction vector with the same
	// ceil()ed patched counts: both are pure model-memo hits.
	if _, err := ev.EvaluateRollout(ctx, spec, fr); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EvaluateRollout(ctx, spec, []float64{0.4, 0.4, 0.3, 0.26}); err != nil {
		t.Fatal(err)
	}
	st = ev.SolverStats()
	if st.RolloutModels != 1 || st.RolloutModelHits != 2 {
		t.Errorf("after repeats: models/hits = %d/%d, want 1/2", st.RolloutModels, st.RolloutModelHits)
	}

	// Scaling a replica count keeps the rollout structure (same class
	// split pattern), so the model is shared; only multiplicities change.
	scaled := paperdata.Design{Name: "m2", DNS: 4, Web: 5, App: 4, DB: 4}.Spec()
	if _, err := ev.EvaluateRollout(ctx, scaled, fr); err != nil {
		t.Fatal(err)
	}
	if st = ev.SolverStats(); st.RolloutModels != 1 {
		t.Errorf("scaled spec built a new model: RolloutModels = %d, want 1", st.RolloutModels)
	}
}

func TestRolloutSchedulePoints(t *testing.T) {
	uniform := func(f float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = f
		}
		return out
	}
	oneShot, err := RolloutSchedule{Strategy: RolloutOneShot}.Points(3)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]float64{uniform(0, 3), uniform(1, 3)}; !reflect.DeepEqual(oneShot, want) {
		t.Errorf("one-shot = %v, want %v", oneShot, want)
	}
	rolling, err := RolloutSchedule{Strategy: RolloutRolling, Steps: 2}.Points(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]float64{uniform(0, 2), uniform(0.5, 2), uniform(1, 2)}; !reflect.DeepEqual(rolling, want) {
		t.Errorf("rolling = %v, want %v", rolling, want)
	}
	// Rolling with a step count that does not divide 1 exactly must still
	// end at exactly 1.
	rolling7, err := RolloutSchedule{Strategy: RolloutRolling, Steps: 7}.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	if last := rolling7[len(rolling7)-1][0]; last != 1 {
		t.Errorf("rolling-7 last point = %v, want exactly 1", last)
	}
	bg, err := RolloutSchedule{Strategy: RolloutBlueGreen, Order: []int{2, 0, 1}}.Points(3)
	if err != nil {
		t.Fatal(err)
	}
	wantBG := [][]float64{
		{0, 0, 0}, {0, 0, 1}, {1, 0, 1}, {1, 1, 1},
	}
	if !reflect.DeepEqual(bg, wantBG) {
		t.Errorf("blue-green = %v, want %v", bg, wantBG)
	}
	canary, err := RolloutSchedule{Strategy: RolloutCanary, Steps: 3, CanaryFraction: 0.1}.Points(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(canary) != 5 {
		t.Fatalf("canary has %d points, want 5", len(canary))
	}
	if canary[0][0] != 0 || canary[1][0] != 0.1 || canary[len(canary)-1][0] != 1 {
		t.Errorf("canary = %v, want 0, 0.1, ..., exactly 1", canary)
	}
	custom, err := RolloutSchedule{Fractions: [][]float64{{0, 0.5}, {1, 1}}}.Points(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(custom) != 2 || custom[0][1] != 0.5 {
		t.Errorf("custom = %v", custom)
	}

	for _, bad := range []RolloutSchedule{
		{},                               // custom without fractions
		{Fractions: [][]float64{{0.5}}},  // wrong arity for 2 tiers
		{Fractions: [][]float64{{0, 2}}}, // fraction above 1
		{Strategy: "bogus"},
		{Strategy: RolloutBlueGreen, Order: []int{0, 0}},
		{Strategy: RolloutBlueGreen, Order: []int{0}},
		{Strategy: RolloutCanary, CanaryFraction: 1.5},
	} {
		if _, err := bad.Points(2); err == nil {
			t.Errorf("schedule %+v should fail", bad)
		}
	}
	if _, err := (RolloutSchedule{Strategy: RolloutOneShot}).Points(0); err == nil {
		t.Error("zero tiers should fail")
	}
}

func TestPatchedCounts(t *testing.T) {
	spec := paperdata.Design{Name: "p", DNS: 1, Web: 4, App: 3, DB: 2}.Spec()
	got, err := PatchedCounts(spec, []float64{0, 0.25, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("PatchedCounts = %v, want %v", got, want)
	}
	// Any non-zero fraction patches at least one replica.
	got, err = PatchedCounts(spec, []float64{0.001, 0.001, 0.001, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 1, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("PatchedCounts(eps) = %v, want %v", got, want)
	}
	if _, err := PatchedCounts(spec, []float64{0, 0, 0}); err == nil {
		t.Error("wrong fraction arity should fail")
	}
	if _, err := PatchedCounts(spec, []float64{0, 0, 0, 1.5}); err == nil {
		t.Error("fraction above 1 should fail")
	}
}

func TestRolloutFront(t *testing.T) {
	mk := func(asp, coa float64) RolloutResult {
		return RolloutResult{Security: harm.Metrics{ASP: asp}, COA: coa}
	}
	points := []RolloutResult{
		mk(0.9, 1.0),   // unpatched end: worst security, best availability
		mk(0.5, 0.999), // mid-rollout: on the frontier
		mk(0.5, 0.99),  // dominated by the point above
		mk(0.2, 0.995), // patched end
	}
	front := RolloutFront(points)
	if len(front) != 3 {
		t.Fatalf("front has %d points, want 3: %+v", len(front), front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Security.ASP < front[i-1].Security.ASP {
			t.Errorf("front not sorted by ascending ASP: %+v", front)
		}
	}
	for _, f := range front {
		if f.Security.ASP == 0.5 && f.COA == 0.99 {
			t.Error("dominated point survived")
		}
	}
}
