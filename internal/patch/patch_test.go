package patch

import (
	"testing"
	"time"

	"redpatch/internal/cvss"
	"redpatch/internal/vulndb"
)

func vuln(id string, component vulndb.Component, vector string) vulndb.Vulnerability {
	return vulndb.Vulnerability{
		ID:        id,
		Product:   "p",
		Component: component,
		Vector:    cvss.MustParse(vector),
	}
}

func TestPolicySelects(t *testing.T) {
	critical := vuln("CVE-1", vulndb.ComponentOS, "AV:N/AC:L/Au:N/C:C/I:C/A:C") // 10.0
	moderate := vuln("CVE-2", vulndb.ComponentOS, "AV:L/AC:L/Au:N/C:C/I:C/A:C") // 7.2
	low := vuln("CVE-3", vulndb.ComponentService, "AV:N/AC:M/Au:N/C:P/I:N/A:N") // 4.3

	pol := CriticalPolicy()
	if !pol.Selects(critical) {
		t.Error("base 10.0 should be selected at threshold 8.0")
	}
	if pol.Selects(moderate) || pol.Selects(low) {
		t.Error("non-critical vulnerabilities must not be selected")
	}
	all := Policy{PatchAll: true}
	if !all.Selects(low) {
		t.Error("PatchAll should select everything")
	}
}

func TestMonthlySchedule(t *testing.T) {
	s := MonthlySchedule()
	if s.Interval != 720*time.Hour {
		t.Errorf("Interval = %v, want 720h", s.Interval)
	}
	if s.PerServiceVuln != 5*time.Minute || s.PerOSVuln != 10*time.Minute {
		t.Error("per-vulnerability durations wrong")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestScheduleValidate(t *testing.T) {
	s := MonthlySchedule()
	s.Interval = 0
	if err := s.Validate(); err == nil {
		t.Error("zero interval should fail")
	}
	s = MonthlySchedule()
	s.OSReboot = -time.Minute
	if err := s.Validate(); err == nil {
		t.Error("negative duration should fail")
	}
}

// TestComputeDNSPlan reproduces the paper's DNS server: one critical
// service vulnerability and two critical OS vulnerabilities yield a 5 min
// service patch, a 20 min OS patch and a 40 min total outage (Table IV /
// Table V MTTR 0.6667 h).
func TestComputeDNSPlan(t *testing.T) {
	vulns := []vulndb.Vulnerability{
		vuln("CVE-DNS", vulndb.ComponentService, "AV:N/AC:L/Au:N/C:C/I:C/A:C"),
		vuln("CVE-WIN1", vulndb.ComponentOS, "AV:N/AC:M/Au:N/C:C/I:C/A:C"),
		vuln("CVE-WIN2", vulndb.ComponentOS, "AV:N/AC:M/Au:N/C:C/I:C/A:C"),
		vuln("CVE-MEH", vulndb.ComponentService, "AV:N/AC:M/Au:N/C:P/I:N/A:N"), // not critical
	}
	plan, err := Compute("dns", vulns, CriticalPolicy(), MonthlySchedule())
	if err != nil {
		t.Fatal(err)
	}
	if plan.ServiceCount != 1 || plan.OSCount != 2 {
		t.Errorf("counts = (%d service, %d os), want (1, 2)", plan.ServiceCount, plan.OSCount)
	}
	if plan.ServicePatchTime != 5*time.Minute {
		t.Errorf("ServicePatchTime = %v, want 5m", plan.ServicePatchTime)
	}
	if plan.OSPatchTime != 20*time.Minute {
		t.Errorf("OSPatchTime = %v, want 20m", plan.OSPatchTime)
	}
	if got := plan.TotalDowntime(); got != 40*time.Minute {
		t.Errorf("TotalDowntime = %v, want 40m", got)
	}
	if !plan.RequiresPatch() {
		t.Error("plan with selections should require patch")
	}
}

func TestComputeEmptyPlan(t *testing.T) {
	vulns := []vulndb.Vulnerability{
		vuln("CVE-MEH", vulndb.ComponentService, "AV:N/AC:M/Au:N/C:P/I:N/A:N"),
	}
	plan, err := Compute("clean", vulns, CriticalPolicy(), MonthlySchedule())
	if err != nil {
		t.Fatal(err)
	}
	if plan.RequiresPatch() {
		t.Error("plan without selections should not require patch")
	}
	if plan.TotalDowntime() != 0 {
		t.Errorf("TotalDowntime = %v, want 0", plan.TotalDowntime())
	}
}

func TestComputeRejectsBadSchedule(t *testing.T) {
	if _, err := Compute("x", nil, CriticalPolicy(), Schedule{}); err == nil {
		t.Error("invalid schedule should fail")
	}
}

// TestPaperServerDowntimes pins the four server types' patch windows that
// drive the paper's Table V MTTR column.
func TestPaperServerDowntimes(t *testing.T) {
	full := "AV:N/AC:L/Au:N/C:C/I:C/A:C"
	tests := []struct {
		name         string
		nService     int
		nOS          int
		wantDowntime time.Duration
	}{
		{name: "dns", nService: 1, nOS: 2, wantDowntime: 40 * time.Minute},
		{name: "web", nService: 2, nOS: 1, wantDowntime: 35 * time.Minute},
		{name: "app", nService: 3, nOS: 3, wantDowntime: 60 * time.Minute},
		{name: "db", nService: 2, nOS: 3, wantDowntime: 55 * time.Minute},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var vulns []vulndb.Vulnerability
			for i := 0; i < tt.nService; i++ {
				vulns = append(vulns, vuln("CVE-S"+string(rune('0'+i)), vulndb.ComponentService, full))
			}
			for i := 0; i < tt.nOS; i++ {
				vulns = append(vulns, vuln("CVE-O"+string(rune('0'+i)), vulndb.ComponentOS, full))
			}
			plan, err := Compute(tt.name, vulns, CriticalPolicy(), MonthlySchedule())
			if err != nil {
				t.Fatal(err)
			}
			if got := plan.TotalDowntime(); got != tt.wantDowntime {
				t.Errorf("TotalDowntime = %v, want %v", got, tt.wantDowntime)
			}
		})
	}
}
