package patch

import (
	"fmt"
	"sort"
	"time"

	"redpatch/internal/vulndb"
)

// Campaign splits a server's selected patches over several maintenance
// rounds — the paper's §III "more complex cases (e.g., monthly patch of 3
// months)" future work. Operators rarely get a 60-minute window; a
// campaign respects a per-round downtime budget and spreads the work
// across successive patch intervals, most severe vulnerabilities first.
type Campaign struct {
	// Server names the server or role the campaign applies to.
	Server string
	// Rounds are the per-round plans in execution order.
	Rounds []Plan
	// Deferred lists selected vulnerabilities that cannot fit even in a
	// dedicated round (their single patch time exceeds the budget).
	Deferred []vulndb.Vulnerability
}

// TotalRounds returns the number of maintenance rounds.
func (c Campaign) TotalRounds() int { return len(c.Rounds) }

// TotalDowntime sums the downtime of every round.
func (c Campaign) TotalDowntime() time.Duration {
	var total time.Duration
	for _, r := range c.Rounds {
		total += r.TotalDowntime()
	}
	return total
}

// PlanCampaign distributes the policy-selected vulnerabilities of a
// server over successive rounds so that no round's downtime (patches plus
// the merged reboot overhead paid every round) exceeds maxWindow.
// Vulnerabilities are assigned greedily in descending base-score order
// (most severe patched earliest), first-fit onto the earliest round with
// room. Vulnerabilities whose lone patch would already blow the budget
// are reported in Deferred rather than silently dropped.
func PlanCampaign(server string, vulns []vulndb.Vulnerability, pol Policy, sch Schedule, maxWindow time.Duration) (Campaign, error) {
	if err := sch.Validate(); err != nil {
		return Campaign{}, err
	}
	overhead := sch.OSReboot + sch.ServiceReboot
	if maxWindow <= overhead {
		return Campaign{}, fmt.Errorf("patch: window %v cannot cover the reboot overhead %v", maxWindow, overhead)
	}

	var selected []vulndb.Vulnerability
	for _, v := range vulns {
		if pol.Selects(v) {
			selected = append(selected, v)
		}
	}
	sort.SliceStable(selected, func(i, j int) bool {
		si, sj := selected[i].BaseScore(), selected[j].BaseScore()
		if si != sj {
			return si > sj
		}
		return selected[i].ID < selected[j].ID
	})

	patchTime := func(v vulndb.Vulnerability) time.Duration {
		if v.Component == vulndb.ComponentOS {
			return sch.PerOSVuln
		}
		return sch.PerServiceVuln
	}

	camp := Campaign{Server: server}
	var roundVulns [][]vulndb.Vulnerability
	var roundBudget []time.Duration
	for _, v := range selected {
		need := patchTime(v)
		if need+overhead > maxWindow {
			camp.Deferred = append(camp.Deferred, v)
			continue
		}
		placed := false
		for i := range roundVulns {
			if roundBudget[i]+need+overhead <= maxWindow {
				roundVulns[i] = append(roundVulns[i], v)
				roundBudget[i] += need
				placed = true
				break
			}
		}
		if !placed {
			roundVulns = append(roundVulns, []vulndb.Vulnerability{v})
			roundBudget = append(roundBudget, need)
		}
	}
	for i, rv := range roundVulns {
		plan, err := Compute(fmt.Sprintf("%s-round-%d", server, i+1), rv, Policy{PatchAll: true}, sch)
		if err != nil {
			return Campaign{}, err
		}
		camp.Rounds = append(camp.Rounds, plan)
	}
	return camp, nil
}

// ResidualAfterRound returns the vulnerabilities still unpatched after
// the given number of completed rounds (0 = nothing patched yet),
// including any deferred ones. Security models re-evaluate against this
// residual set to trace how the attack surface shrinks over the campaign.
func (c Campaign) ResidualAfterRound(completed int, all []vulndb.Vulnerability) []vulndb.Vulnerability {
	patched := make(map[string]bool)
	for i := 0; i < completed && i < len(c.Rounds); i++ {
		for _, v := range c.Rounds[i].Selected {
			patched[v.ID] = true
		}
	}
	var out []vulndb.Vulnerability
	for _, v := range all {
		if !patched[v.ID] {
			out = append(out, v)
		}
	}
	return out
}
