// Package patch models the patch-management inputs of the paper: which
// vulnerabilities a policy selects for patching, on what schedule patches
// are applied, and how long a server's patch window lasts. The paper's
// policy patches "critical" vulnerabilities (CVSS base score above 8.0) on
// a monthly cadence, with application patches applied first, OS patches
// immediately after, and a single merged reboot at the end.
package patch

import (
	"fmt"
	"time"

	"redpatch/internal/vulndb"
)

// Policy decides which vulnerabilities get patched.
type Policy struct {
	// CriticalThreshold selects vulnerabilities whose CVSS v2 base score
	// strictly exceeds this value (the paper uses 8.0).
	CriticalThreshold float64
	// PatchAll selects every vulnerability regardless of score.
	PatchAll bool
}

// CriticalPolicy returns the paper's policy: patch vulnerabilities with
// base score above 8.0.
func CriticalPolicy() Policy { return Policy{CriticalThreshold: 8.0} }

// Selects reports whether the policy patches the given vulnerability.
func (p Policy) Selects(v vulndb.Vulnerability) bool {
	if p.PatchAll {
		return true
	}
	return v.IsCritical(p.CriticalThreshold)
}

// Schedule carries the timing constants of the patch process.
type Schedule struct {
	// Interval is the time between patch rounds (the paper patches
	// monthly: 720 hours).
	Interval time.Duration
	// PerServiceVuln is the patch time per application vulnerability
	// (paper: 5 minutes).
	PerServiceVuln time.Duration
	// PerOSVuln is the patch time per OS vulnerability (paper: 10
	// minutes).
	PerOSVuln time.Duration
	// OSReboot is the OS reboot time after patching (paper: 10 minutes).
	OSReboot time.Duration
	// ServiceReboot is the service restart time after the OS is back
	// (paper: 5 minutes).
	ServiceReboot time.Duration
}

// MonthlySchedule returns the paper's Table IV schedule.
func MonthlySchedule() Schedule {
	return Schedule{
		Interval:       720 * time.Hour,
		PerServiceVuln: 5 * time.Minute,
		PerOSVuln:      10 * time.Minute,
		OSReboot:       10 * time.Minute,
		ServiceReboot:  5 * time.Minute,
	}
}

// Validate checks the schedule for positive interval and non-negative
// durations.
func (s Schedule) Validate() error {
	if s.Interval <= 0 {
		return fmt.Errorf("patch: non-positive interval %v", s.Interval)
	}
	for _, d := range []time.Duration{s.PerServiceVuln, s.PerOSVuln, s.OSReboot, s.ServiceReboot} {
		if d < 0 {
			return fmt.Errorf("patch: negative duration in schedule")
		}
	}
	return nil
}

// Plan is the computed patch work for one server in one round.
type Plan struct {
	// Server names the server or server type the plan applies to.
	Server string
	// Selected are the vulnerabilities the policy patches this round.
	Selected []vulndb.Vulnerability
	// OSCount and ServiceCount split Selected by component.
	OSCount, ServiceCount int
	// ServicePatchTime and OSPatchTime are the per-layer patch windows.
	ServicePatchTime, OSPatchTime time.Duration
	// OSReboot and ServiceReboot are copied from the schedule for
	// downstream model builders.
	OSReboot, ServiceReboot time.Duration
	// Interval is the patch cadence, copied from the schedule.
	Interval time.Duration
}

// Compute derives the plan for a server from its vulnerability list under
// the given policy and schedule.
func Compute(server string, vulns []vulndb.Vulnerability, pol Policy, sch Schedule) (Plan, error) {
	if err := sch.Validate(); err != nil {
		return Plan{}, err
	}
	plan := Plan{
		Server:        server,
		OSReboot:      sch.OSReboot,
		ServiceReboot: sch.ServiceReboot,
		Interval:      sch.Interval,
	}
	for _, v := range vulns {
		if !pol.Selects(v) {
			continue
		}
		plan.Selected = append(plan.Selected, v)
		switch v.Component {
		case vulndb.ComponentOS:
			plan.OSCount++
		case vulndb.ComponentService:
			plan.ServiceCount++
		}
	}
	plan.ServicePatchTime = time.Duration(plan.ServiceCount) * sch.PerServiceVuln
	plan.OSPatchTime = time.Duration(plan.OSCount) * sch.PerOSVuln
	return plan, nil
}

// RequiresPatch reports whether the plan patches anything at all. A server
// with nothing selected skips the round entirely (no downtime).
func (p Plan) RequiresPatch() bool { return len(p.Selected) > 0 }

// TotalDowntime is the expected service outage of one patch round:
// service patch + OS patch + OS reboot + service restart (the paper's
// patch pipeline, reboots merged at the end).
func (p Plan) TotalDowntime() time.Duration {
	if !p.RequiresPatch() {
		return 0
	}
	return p.ServicePatchTime + p.OSPatchTime + p.OSReboot + p.ServiceReboot
}
