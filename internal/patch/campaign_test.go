package patch

import (
	"testing"
	"time"

	"redpatch/internal/vulndb"
)

// appServerVulns builds the application server's six criticals (3 service
// at 5 min, 3 OS at 10 min — a 60-minute single-round window).
func appServerVulns() []vulndb.Vulnerability {
	full := "AV:N/AC:L/Au:N/C:C/I:C/A:C"
	var out []vulndb.Vulnerability
	for i := 0; i < 3; i++ {
		out = append(out, vuln("CVE-S"+string(rune('0'+i)), vulndb.ComponentService, full))
		out = append(out, vuln("CVE-O"+string(rune('0'+i)), vulndb.ComponentOS, full))
	}
	return out
}

func TestPlanCampaignSingleRound(t *testing.T) {
	// A 60-minute budget fits everything in one round, equal to Compute.
	camp, err := PlanCampaign("app", appServerVulns(), CriticalPolicy(), MonthlySchedule(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if camp.TotalRounds() != 1 {
		t.Fatalf("rounds = %d, want 1", camp.TotalRounds())
	}
	if got := camp.TotalDowntime(); got != 60*time.Minute {
		t.Errorf("TotalDowntime = %v, want 60m", got)
	}
	if len(camp.Deferred) != 0 {
		t.Errorf("Deferred = %v, want none", camp.Deferred)
	}
}

func TestPlanCampaignSplitsRounds(t *testing.T) {
	// A 35-minute budget (15 min reboot overhead per round) forces a
	// split: each round carries at most 20 minutes of patching.
	camp, err := PlanCampaign("app", appServerVulns(), CriticalPolicy(), MonthlySchedule(), 35*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if camp.TotalRounds() < 2 {
		t.Fatalf("rounds = %d, want at least 2", camp.TotalRounds())
	}
	for i, r := range camp.Rounds {
		if got := r.TotalDowntime(); got > 35*time.Minute {
			t.Errorf("round %d downtime %v exceeds the 35m window", i+1, got)
		}
	}
	// Every selected vulnerability lands in exactly one round.
	seen := make(map[string]int)
	total := 0
	for _, r := range camp.Rounds {
		for _, v := range r.Selected {
			seen[v.ID]++
			total++
		}
	}
	if total != 6 {
		t.Errorf("patched %d vulnerabilities, want 6", total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("%s patched %d times", id, n)
		}
	}
	// The campaign pays the reboot overhead per round, so the total
	// downtime exceeds the single-round 60 minutes.
	if camp.TotalDowntime() <= 60*time.Minute {
		t.Errorf("split campaign downtime = %v, should exceed 60m", camp.TotalDowntime())
	}
}

func TestPlanCampaignSeverityOrder(t *testing.T) {
	// Mixed severities: the critical (base 10.0) must land in round 1,
	// ahead of lower scores, when the policy selects everything.
	vulns := []vulndb.Vulnerability{
		vuln("CVE-LOW", vulndb.ComponentService, "AV:N/AC:M/Au:N/C:P/I:N/A:N"),  // 4.3
		vuln("CVE-CRIT", vulndb.ComponentService, "AV:N/AC:L/Au:N/C:C/I:C/A:C"), // 10.0
		vuln("CVE-MID", vulndb.ComponentService, "AV:N/AC:L/Au:N/C:P/I:P/A:P"),  // 7.5
	}
	camp, err := PlanCampaign("x", vulns, Policy{PatchAll: true}, MonthlySchedule(), 20*time.Minute+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Rounds) == 0 || len(camp.Rounds[0].Selected) == 0 {
		t.Fatal("no rounds planned")
	}
	if camp.Rounds[0].Selected[0].ID != "CVE-CRIT" {
		t.Errorf("round 1 starts with %s, want CVE-CRIT", camp.Rounds[0].Selected[0].ID)
	}
}

func TestPlanCampaignDefersOversized(t *testing.T) {
	// With a 16-minute window (15 min overhead), a 10-minute OS patch can
	// never fit; it must be deferred, while 5-minute service patches fit
	// one per round... actually 1 min of budget fits nothing: all
	// deferred.
	vulns := appServerVulns()
	camp, err := PlanCampaign("app", vulns, CriticalPolicy(), MonthlySchedule(), 16*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Deferred) != 6 {
		t.Errorf("Deferred = %d, want all 6 (nothing fits a 1m patch budget)", len(camp.Deferred))
	}
	if camp.TotalRounds() != 0 {
		t.Errorf("rounds = %d, want 0", camp.TotalRounds())
	}
}

func TestPlanCampaignWindowValidation(t *testing.T) {
	if _, err := PlanCampaign("x", nil, CriticalPolicy(), MonthlySchedule(), 10*time.Minute); err == nil {
		t.Error("window below the reboot overhead should fail")
	}
	if _, err := PlanCampaign("x", nil, CriticalPolicy(), Schedule{}, time.Hour); err == nil {
		t.Error("invalid schedule should fail")
	}
}

func TestResidualAfterRound(t *testing.T) {
	vulns := appServerVulns()
	camp, err := PlanCampaign("app", vulns, CriticalPolicy(), MonthlySchedule(), 35*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := camp.ResidualAfterRound(0, vulns); len(got) != 6 {
		t.Errorf("residual before any round = %d, want 6", len(got))
	}
	afterFirst := camp.ResidualAfterRound(1, vulns)
	if len(afterFirst) != 6-len(camp.Rounds[0].Selected) {
		t.Errorf("residual after round 1 = %d, want %d", len(afterFirst), 6-len(camp.Rounds[0].Selected))
	}
	if got := camp.ResidualAfterRound(camp.TotalRounds(), vulns); len(got) != 0 {
		t.Errorf("residual after all rounds = %v, want none", got)
	}
	// Asking beyond the last round is harmless.
	if got := camp.ResidualAfterRound(99, vulns); len(got) != 0 {
		t.Errorf("residual after round 99 = %v, want none", got)
	}
}

func TestResidualAfterRoundDeferredPersists(t *testing.T) {
	// A 24-minute window (15 min overhead, 9 min patch budget) fits the
	// 5-minute service patches one per round but can never fit a
	// 10-minute OS patch: the three OS vulnerabilities are deferred and
	// must persist in the residual at every round, including past the
	// end of the campaign.
	vulns := appServerVulns()
	camp, err := PlanCampaign("app", vulns, CriticalPolicy(), MonthlySchedule(), 24*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Deferred) != 3 {
		t.Fatalf("Deferred = %d, want the 3 OS vulnerabilities", len(camp.Deferred))
	}
	deferred := make(map[string]bool)
	for _, v := range camp.Deferred {
		deferred[v.ID] = true
	}
	for completed := 0; completed <= camp.TotalRounds()+2; completed++ {
		residual := camp.ResidualAfterRound(completed, vulns)
		got := make(map[string]bool)
		for _, v := range residual {
			got[v.ID] = true
		}
		for id := range deferred {
			if !got[id] {
				t.Errorf("deferred %s missing from residual after %d rounds", id, completed)
			}
		}
		if completed >= camp.TotalRounds() && len(residual) != len(camp.Deferred) {
			t.Errorf("residual after %d rounds = %d vulns, want exactly the %d deferred",
				completed, len(residual), len(camp.Deferred))
		}
	}
}

func TestResidualAfterRoundBeyondEndNoPanic(t *testing.T) {
	// completed far past len(Rounds) — and on an empty campaign — must
	// not panic and must return the full residual semantics.
	var empty Campaign
	if got := empty.ResidualAfterRound(5, appServerVulns()); len(got) != 6 {
		t.Errorf("empty campaign residual = %d, want all 6", len(got))
	}
	camp, err := PlanCampaign("app", appServerVulns(), CriticalPolicy(), MonthlySchedule(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, completed := range []int{camp.TotalRounds(), camp.TotalRounds() + 1, 1 << 20} {
		if got := camp.ResidualAfterRound(completed, appServerVulns()); len(got) != 0 {
			t.Errorf("residual after %d rounds = %v, want none", completed, got)
		}
	}
}
