package patch

import (
	"encoding/json"
	"testing"
	"time"
)

func TestAttemptValidate(t *testing.T) {
	if err := PerfectAttempt().Validate(); err != nil {
		t.Errorf("PerfectAttempt invalid: %v", err)
	}
	cases := []Attempt{
		{SuccessProbability: 0},
		{SuccessProbability: -0.1},
		{SuccessProbability: 1.1},
		{SuccessProbability: 0.9, Rollback: -time.Minute},
	}
	for _, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("Attempt %+v should be invalid", a)
		}
	}
}

func TestFailedAndExpectedDowntime(t *testing.T) {
	plan, err := Compute("app", appServerVulns(), CriticalPolicy(), MonthlySchedule())
	if err != nil {
		t.Fatal(err)
	}
	// 15 min service + 30 min OS patching, 15 min reboots = 60 min total.
	if got := plan.TotalDowntime(); got != 60*time.Minute {
		t.Fatalf("TotalDowntime = %v, want 60m", got)
	}
	a := Attempt{SuccessProbability: 0.8, Rollback: 6 * time.Minute}
	// Failure strikes halfway through the 45 min of patch work, then
	// 6 min rollback and the 15 min of reboots: 43.5 min.
	wantFailed := 45*time.Minute/2 + 6*time.Minute + 15*time.Minute
	if got := plan.FailedDowntime(a); got != wantFailed {
		t.Errorf("FailedDowntime = %v, want %v", got, wantFailed)
	}
	wantExpected := time.Duration(0.8*float64(60*time.Minute) + 0.2*float64(wantFailed))
	if got := plan.ExpectedDowntime(a); got != wantExpected {
		t.Errorf("ExpectedDowntime = %v, want %v", got, wantExpected)
	}
	// The perfect attempt collapses to the paper's atomic window.
	if got := plan.ExpectedDowntime(PerfectAttempt()); got != plan.TotalDowntime() {
		t.Errorf("perfect ExpectedDowntime = %v, want %v", got, plan.TotalDowntime())
	}
	// An empty plan has no downtime on either branch.
	var empty Plan
	if empty.FailedDowntime(a) != 0 || empty.ExpectedDowntime(a) != 0 {
		t.Error("empty plan should cost nothing on either branch")
	}
}

func TestOutcomeJSON(t *testing.T) {
	for _, o := range []Outcome{OutcomeSucceeded, OutcomeRolledBack, OutcomeDeferred} {
		data, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		var back Outcome
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != o {
			t.Errorf("round trip %v -> %s -> %v", o, data, back)
		}
	}
	var o Outcome
	if err := json.Unmarshal([]byte(`"exploded"`), &o); err == nil {
		t.Error("unknown outcome label should fail")
	}
	if got := Outcome(99).String(); got != "Outcome(99)" {
		t.Errorf("String() = %q", got)
	}
}
