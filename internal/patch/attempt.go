package patch

import (
	"encoding/json"
	"fmt"
	"time"
)

// Outcome classifies how one patch-window attempt ended.
type Outcome int

// Outcome values.
const (
	// OutcomeSucceeded marks a window whose patches all applied; the
	// round's vulnerabilities leave the residual set.
	OutcomeSucceeded Outcome = iota + 1
	// OutcomeRolledBack marks a failed window: the rollback procedure ran
	// and the system came back up unpatched, so the round's
	// vulnerabilities stay in the residual set and re-queue.
	OutcomeRolledBack
	// OutcomeDeferred marks a round abandoned after exhausting its
	// attempt budget; its vulnerabilities stay in the residual set for
	// the remainder of the campaign.
	OutcomeDeferred
)

// String returns the outcome label.
func (o Outcome) String() string {
	switch o {
	case OutcomeSucceeded:
		return "succeeded"
	case OutcomeRolledBack:
		return "rolledBack"
	case OutcomeDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// MarshalJSON encodes the outcome as its label.
func (o Outcome) MarshalJSON() ([]byte, error) { return json.Marshal(o.String()) }

// UnmarshalJSON decodes an outcome label.
func (o *Outcome) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "succeeded":
		*o = OutcomeSucceeded
	case "rolledBack":
		*o = OutcomeRolledBack
	case "deferred":
		*o = OutcomeDeferred
	default:
		return fmt.Errorf("patch: unknown outcome %q", s)
	}
	return nil
}

// Attempt carries the try-revert parameters of a patch window: the
// probability the window's patches all apply, and how long the rollback
// procedure takes when they do not. The paper treats every window as an
// atomic success; Attempt is the operational correction — patching
// agents carry a success probability and a rollback procedure per patch.
type Attempt struct {
	// SuccessProbability is the chance the window completes, in (0, 1].
	SuccessProbability float64
	// Rollback is the time the revert procedure adds to a failed window
	// before the system is back up unpatched.
	Rollback time.Duration
}

// PerfectAttempt returns the paper's idealisation: every window succeeds
// and the rollback branch is dormant.
func PerfectAttempt() Attempt { return Attempt{SuccessProbability: 1} }

// Validate checks the attempt parameters.
func (a Attempt) Validate() error {
	if a.SuccessProbability <= 0 || a.SuccessProbability > 1 {
		return fmt.Errorf("patch: success probability %v outside (0, 1]", a.SuccessProbability)
	}
	if a.Rollback < 0 {
		return fmt.Errorf("patch: negative rollback duration %v", a.Rollback)
	}
	return nil
}

// FailedDowntime is the service outage of a window that fails and rolls
// back: on average the failure strikes halfway through the patch work
// (half the service + OS patch time is spent before the revert), then the
// rollback procedure runs and the system reboots back into the unpatched
// image — the reboot costs are paid either way.
func (p Plan) FailedDowntime(a Attempt) time.Duration {
	if !p.RequiresPatch() {
		return 0
	}
	return (p.ServicePatchTime+p.OSPatchTime)/2 + a.Rollback + p.OSReboot + p.ServiceReboot
}

// ExpectedDowntime is the outage of one window under the try-revert
// model: the success and failure branches weighted by the attempt's
// success probability.
func (p Plan) ExpectedDowntime(a Attempt) time.Duration {
	if !p.RequiresPatch() {
		return 0
	}
	s := a.SuccessProbability
	return time.Duration(s*float64(p.TotalDowntime()) + (1-s)*float64(p.FailedDowntime(a)))
}
