// Package metrics is a dependency-free Prometheus-compatible metrics
// registry: counters, gauges and fixed-bucket latency histograms, plain
// or labelled, exposed in the text exposition format (version 0.0.4)
// that any Prometheus-compatible scraper ingests. redpatchd mounts a
// Registry behind GET /metrics; nothing here imports anything beyond
// the standard library.
//
// Registration (the New* constructors) panics on invalid or duplicate
// metric names — those are programmer errors, caught by the first test
// that touches the registry — while observation (Inc, Add, Observe,
// Set) is cheap and safe for concurrent use: counters and gauges are
// single atomics, histograms take a short mutex.
//
// Collector callbacks (NewCounterFunc, NewGaugeFunc and their Vec
// forms) export state owned elsewhere — engine cache counters, registry
// sizes — by reading it at scrape time instead of double-counting it
// through increments.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram buckets (seconds), the
// conventional Prometheus spread from 5ms to 10s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns count exponentially spaced bucket bounds starting
// at start and multiplying by factor — the spread for durations DefBuckets
// is too coarse for, like microsecond-scale factored solves. start must
// be positive and factor above 1.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%g, %g, %d): need start > 0, factor > 1, count >= 1", start, factor, count))
	}
	out := make([]float64, count)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// metricType is the TYPE line vocabulary.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Sample is one labelled value emitted by a collector callback: Labels
// must align with the label names the collector was registered with.
type Sample struct {
	Labels []string
	Value  float64
}

// Registry holds metric families and renders them in registration
// order. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.RWMutex
	byNam map[string]*family
	fams  []*family
}

// family is one named metric family: either a map of live children
// keyed by label values, or a collector callback read at scrape time.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]observer // keyed by joined label values
	collect  func() []Sample     // collector families only
}

// observer is any live child a family can render.
type observer interface {
	write(w io.Writer, fam *family, labelValues []string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNam: make(map[string]*family)}
}

// register validates and stores a family, panicking on conflicts.
func (r *Registry) register(f *family) *family {
	if !metricNameRE.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !labelNameRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: metric %q: invalid label name %q", f.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byNam[f.name]; dup {
		panic(fmt.Sprintf("metrics: metric %q registered twice", f.name))
	}
	r.byNam[f.name] = f
	r.fams = append(r.fams, f)
	return f
}

// --- counters ------------------------------------------------------------

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas panic (counters only go
// up — use a Gauge for anything that can fall).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("metrics: counter decreased")
	}
	addFloat(&c.bits, d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, fam *family, lv []string) {
	writeSample(w, fam.name, fam.labels, lv, c.Value())
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ fam *family }

// With returns (creating on first use) the child for the label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.child(labelValues, func() observer { return &Counter{} }).(*Counter)
}

// NewCounter registers a label-less counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	v := r.NewCounterVec(name, help)
	return v.With()
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(&family{
		name: name, help: help, typ: typeCounter, labels: labels,
		children: make(map[string]observer),
	})
	return &CounterVec{fam: f}
}

// NewCounterFunc registers a counter whose value is read by fn at
// scrape time. fn must be safe for concurrent use.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.NewCounterVecFunc(name, help, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// NewCounterVecFunc registers a labelled counter collector: fn is
// called at scrape time and returns one sample per child.
func (r *Registry) NewCounterVecFunc(name, help string, labels []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: typeCounter, labels: labels, collect: fn})
}

// --- gauges --------------------------------------------------------------

// Gauge is a value that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d (negative deltas allowed).
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, fam *family, lv []string) {
	writeSample(w, fam.name, fam.labels, lv, g.Value())
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ fam *family }

// With returns (creating on first use) the child for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.child(labelValues, func() observer { return &Gauge{} }).(*Gauge)
}

// NewGauge registers a label-less gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	v := r.NewGaugeVec(name, help)
	return v.With()
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(&family{
		name: name, help: help, typ: typeGauge, labels: labels,
		children: make(map[string]observer),
	})
	return &GaugeVec{fam: f}
}

// NewGaugeFunc registers a gauge whose value is read by fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.NewGaugeVecFunc(name, help, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// NewGaugeVecFunc registers a labelled gauge collector: fn is called at
// scrape time and returns one sample per child.
func (r *Registry) NewGaugeVecFunc(name, help string, labels []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: typeGauge, labels: labels, collect: fn})
}

// --- histograms ----------------------------------------------------------

// Histogram accumulates observations into fixed buckets. Buckets are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// tail, and _sum/_count come along as Prometheus requires.
type Histogram struct {
	upper []float64 // shared with the family, read-only

	mu     sync.Mutex
	counts []uint64 // per-bucket (not cumulative), +Inf last
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search the first bucket whose upper bound holds v; the
	// +Inf slot is len(upper).
	i := sort.SearchFloat64s(h.upper, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Mean returns the average of all observations, 0 before the first.
// redpatchd's admission layer reads it to estimate Retry-After for
// shed requests (expected service time × queue depth ÷ concurrency).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

func (h *Histogram) write(w io.Writer, fam *family, lv []string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	labels := append(append([]string(nil), fam.labels...), "le")
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += counts[i]
		writeSample(w, fam.name+"_bucket", labels, append(append([]string(nil), lv...), formatFloat(ub)), float64(cum))
	}
	writeSample(w, fam.name+"_bucket", labels, append(append([]string(nil), lv...), "+Inf"), float64(count))
	writeSample(w, fam.name+"_sum", fam.labels, lv, sum)
	writeSample(w, fam.name+"_count", fam.labels, lv, float64(count))
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ fam *family }

// With returns (creating on first use) the child for the label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.child(labelValues, func() observer {
		return &Histogram{upper: v.fam.buckets, counts: make([]uint64, len(v.fam.buckets)+1)}
	}).(*Histogram)
}

// NewHistogram registers a label-less histogram with the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	v := r.NewHistogramVec(name, help, buckets)
	return v.With()
}

// NewHistogramVec registers a histogram family. buckets are upper
// bounds, strictly ascending; nil selects DefBuckets. "le" is reserved
// as a label name.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q: buckets not strictly ascending", name))
		}
	}
	for _, l := range labels {
		if l == "le" {
			panic(fmt.Sprintf("metrics: histogram %q: label name \"le\" is reserved", name))
		}
	}
	f := r.register(&family{
		name: name, help: help, typ: typeHistogram, labels: labels,
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]observer),
	})
	return &HistogramVec{fam: f}
}

// --- family internals ----------------------------------------------------

// childSep joins label values into a map key; label values may contain
// anything but this byte is invalid UTF-8 and cannot collide.
const childSep = "\xff"

func (f *family) child(labelValues []string, make func() observer) observer {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: metric %q: got %d label values, want %d",
			f.name, len(labelValues), len(f.labels)))
	}
	k := strings.Join(labelValues, childSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[k]; ok {
		return c
	}
	c := make()
	f.children[k] = c
	return c
}

// --- exposition ----------------------------------------------------------

// WriteTo renders every family in registration order, children sorted
// by label values, in the Prometheus text format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	r.mu.RLock()
	fams := append([]*family(nil), r.fams...)
	r.mu.RUnlock()
	for _, f := range fams {
		f.writeTo(cw)
		if cw.err != nil {
			break
		}
	}
	return cw.n, cw.err
}

// Handler serves the registry over HTTP with the exposition-format
// content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

func (f *family) writeTo(w io.Writer) {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)

	if f.collect != nil {
		samples := f.collect()
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].Labels, childSep) < strings.Join(samples[j].Labels, childSep)
		})
		for _, s := range samples {
			if len(s.Labels) != len(f.labels) {
				panic(fmt.Sprintf("metrics: collector %q: sample has %d label values, want %d",
					f.name, len(s.Labels), len(f.labels)))
			}
			writeSample(w, f.name, f.labels, s.Labels, s.Value)
		}
		return
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]observer, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	for i, c := range children {
		var lv []string
		if keys[i] != "" || len(f.labels) > 0 {
			lv = strings.Split(keys[i], childSep)
		}
		c.write(w, f, lv)
	}
}

// writeSample renders one "name{labels} value" line.
func writeSample(w io.Writer, name string, labels, values []string, v float64) {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(values[i]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
	_, _ = io.WriteString(w, sb.String())
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// addFloat CAS-adds a delta onto a float64 stored in atomic bits.
func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
