package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs processed.")
	c.Inc()
	c.Add(2.5)
	out := render(t, r)
	want := "# HELP jobs_total Jobs processed.\n# TYPE jobs_total counter\njobs_total 3.5\n"
	if out != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", out, want)
	}
}

func TestCounterVecSortsChildren(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("http_requests_total", "Requests by route and code.", "route", "code")
	v.With("/b", "200").Inc()
	v.With("/a", "500").Add(2)
	v.With("/a", "200").Add(3)
	out := render(t, r)
	lines := strings.Split(strings.TrimSpace(out), "\n")[2:]
	want := []string{
		`http_requests_total{route="/a",code="200"} 3`,
		`http_requests_total{route="/a",code="500"} 2`,
		`http_requests_total{route="/b",code="200"} 1`,
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("in_flight", "In-flight requests.")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if v := g.Value(); v != 1.5 {
		t.Fatalf("gauge = %v", v)
	}
	g.Set(-4)
	if !strings.Contains(render(t, r), "in_flight -4\n") {
		t.Fatalf("exposition missing set value:\n%s", render(t, r))
	}
}

func TestGaugeFuncReadsAtScrape(t *testing.T) {
	r := NewRegistry()
	val := 1.0
	var mu sync.Mutex
	r.NewGaugeFunc("live_value", "Read each scrape.", func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return val
	})
	if !strings.Contains(render(t, r), "live_value 1\n") {
		t.Fatal("first scrape wrong")
	}
	mu.Lock()
	val = 7
	mu.Unlock()
	if !strings.Contains(render(t, r), "live_value 7\n") {
		t.Fatal("second scrape did not re-read")
	}
}

func TestCounterVecFuncSamples(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVecFunc("engine_solves_total", "Solves per scenario.", []string{"scenario"}, func() []Sample {
		return []Sample{
			{Labels: []string{"what-if"}, Value: 2},
			{Labels: []string{"default"}, Value: 5},
		}
	})
	out := render(t, r)
	di := strings.Index(out, `engine_solves_total{scenario="default"} 5`)
	wi := strings.Index(out, `engine_solves_total{scenario="what-if"} 2`)
	if di < 0 || wi < 0 || di > wi {
		t.Fatalf("samples missing or unsorted:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`, // 0.05 and the le-inclusive 0.1
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 102.65`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("req_seconds", "", []float64{1}, "route")
	v.With("/a").Observe(0.5)
	v.With("/a").Observe(3)
	out := render(t, r)
	for _, want := range []string{
		`req_seconds_bucket{route="/a",le="1"} 1`,
		`req_seconds_bucket{route="/a",le="+Inf"} 2`,
		`req_seconds_sum{route="/a"} 3.5`,
		`req_seconds_count{route="/a"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestVecReturnsSameChild(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("c_total", "", "l")
	if v.With("x") != v.With("x") {
		t.Fatal("same labels must return the same child")
	}
	if v.With("x") == v.With("y") {
		t.Fatal("different labels must return different children")
	}
}

func TestRegistrationPanics(t *testing.T) {
	for name, fn := range map[string]func(r *Registry){
		"duplicate name": func(r *Registry) {
			r.NewCounter("dup", "")
			r.NewGauge("dup", "")
		},
		"invalid metric name": func(r *Registry) { r.NewCounter("0bad", "") },
		"invalid label name":  func(r *Registry) { r.NewCounterVec("ok_total", "", "bad-label") },
		"reserved le label":   func(r *Registry) { r.NewHistogramVec("h", "", nil, "le") },
		"descending buckets":  func(r *Registry) { r.NewHistogram("h", "", []float64{2, 1}) },
		"label arity": func(r *Registry) {
			r.NewCounterVec("v_total", "", "a", "b").With("only-one")
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("esc_total", "", "l")
	v.With("a\"b\\c\nd").Inc()
	out := render(t, r)
	want := `esc_total{l="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("escaping wrong:\n%s", out)
	}
}

func TestInfFormatting(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("g", "")
	g.Set(math.Inf(1))
	if !strings.Contains(render(t, r), "g +Inf\n") {
		t.Fatalf("inf formatting:\n%s", render(t, r))
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("one_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1\n") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

// TestConcurrentObservation hammers every metric kind from many
// goroutines while scraping — the race detector is the assertion, the
// final counts the sanity check.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	hv := r.NewHistogramVec("h_seconds", "", []float64{0.5}, "route")
	cv := r.NewCounterVec("cv_total", "", "route")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			route := string(rune('a' + id%2))
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				hv.With(route).Observe(float64(j%2) * 0.7)
				cv.With(route).Inc()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if _, err := r.WriteTo(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if v := c.Value(); v != goroutines*per {
		t.Fatalf("counter = %v, want %d", v, goroutines*per)
	}
	out := render(t, r)
	if !strings.Contains(out, "c_total 8000\n") {
		t.Fatalf("final exposition:\n%s", out)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets returned %d bounds, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
	// The bounds must satisfy the histogram registration invariant.
	r := NewRegistry()
	h := r.NewHistogram("solve_seconds", "solver time", ExpBuckets(1e-6, 4, 12))
	h.Observe(3e-5)
	if out := render(t, r); !strings.Contains(out, "solve_seconds_count 1") {
		t.Fatalf("exposition:\n%s", out)
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 10, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid ExpBuckets args should panic")
				}
			}()
			bad()
		}()
	}
}

// TestHistogramMean: the mean tracks sum/count and reads 0 before any
// observation.
func TestHistogramMean(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("m", "help", []float64{1, 10})
	if got := h.Mean(); got != 0 {
		t.Fatalf("Mean of empty histogram = %g, want 0", got)
	}
	h.Observe(2)
	h.Observe(4)
	h.Observe(12)
	if got := h.Mean(); got != 6 {
		t.Fatalf("Mean = %g, want 6", got)
	}
}
