package engine

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"redpatch/internal/paperdata"
	"redpatch/internal/redundancy"
)

// rolloutFake is a deterministic RolloutEvaluator: the result encodes
// the patched counts so tests can tell solves apart, and calls count so
// memo behaviour is observable. fail makes every solve error.
type rolloutFake struct {
	calls atomic.Int64
	gate  chan struct{}
	fail  bool
}

func (f *rolloutFake) EvaluateSpec(spec paperdata.DesignSpec) (redundancy.Result, error) {
	return redundancy.Result{Spec: spec}, nil
}

func (f *rolloutFake) EvaluateRollout(ctx context.Context, spec paperdata.DesignSpec, fractions []float64) (redundancy.RolloutResult, error) {
	f.calls.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	if f.fail {
		return redundancy.RolloutResult{}, errors.New("solve failed")
	}
	patched, err := redundancy.PatchedCounts(spec, fractions)
	if err != nil {
		return redundancy.RolloutResult{}, err
	}
	coa := 1.0
	for _, p := range patched {
		coa -= 0.01 * float64(p)
	}
	return redundancy.RolloutResult{Spec: spec, Patched: patched, COA: coa}, nil
}

func TestEvaluateRolloutMemo(t *testing.T) {
	f := &rolloutFake{}
	g, err := New(f, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := paperdata.Design{Name: "m", DNS: 2, Web: 2, App: 2, DB: 2}.Spec()

	r1, err := g.EvaluateRollout(ctx, spec, []float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 1, 1, 1}; !reflect.DeepEqual(r1.Patched, want) {
		t.Fatalf("Patched = %v, want %v", r1.Patched, want)
	}
	// The same fractions, and different fractions ceiling to the same
	// patched counts, are both served from the memo.
	if _, err := g.EvaluateRollout(ctx, spec, []float64{0.5, 0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	r3, err := g.EvaluateRollout(ctx, spec, []float64{0.4, 0.3, 0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if n := f.calls.Load(); n != 1 {
		t.Errorf("3 equivalent points performed %d solves, want 1", n)
	}
	// Hits still carry the caller's own fractions, not the solver's.
	if want := []float64{0.4, 0.3, 0.2, 0.1}; !reflect.DeepEqual(r3.Fractions, want) {
		t.Errorf("hit Fractions = %v, want %v", r3.Fractions, want)
	}
	// A different patched-count identity solves again.
	if _, err := g.EvaluateRollout(ctx, spec, []float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if n := f.calls.Load(); n != 2 {
		t.Errorf("distinct point performed %d total solves, want 2", n)
	}
	st := g.Stats()
	if st.RolloutSolves != 2 || st.RolloutHits != 2 {
		t.Errorf("RolloutSolves/Hits = %d/%d, want 2/2", st.RolloutSolves, st.RolloutHits)
	}
	// The atomic design cache is untouched by rollout traffic.
	if st.Solves != 0 || st.Hits != 0 {
		t.Errorf("atomic Solves/Hits = %d/%d, want 0/0", st.Solves, st.Hits)
	}
}

func TestEvaluateRolloutErrorsNotMemoized(t *testing.T) {
	f := &rolloutFake{fail: true}
	g, err := New(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := paperdata.Design{Name: "e", DNS: 1, Web: 1, App: 1, DB: 1}.Spec()
	fr := []float64{1, 1, 1, 1}
	if _, err := g.EvaluateRollout(ctx, spec, fr); err == nil {
		t.Fatal("want error from failing evaluator")
	}
	f.fail = false
	if _, err := g.EvaluateRollout(ctx, spec, fr); err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if n := f.calls.Load(); n != 2 {
		t.Errorf("calls = %d, want 2 (error must not be memoized)", n)
	}
}

func TestEvaluateRolloutUnsupportedEvaluator(t *testing.T) {
	// countingEvaluator does not implement RolloutEvaluator.
	g, err := New(&countingEvaluator{inner: paperEvaluator(t)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := paperdata.BaseDesign().Spec()
	if _, err := g.EvaluateRollout(context.Background(), spec, []float64{0, 0, 0, 0}); err == nil {
		t.Fatal("want error from non-rollout evaluator")
	}
	if err := func() error {
		return g.RolloutSweep(context.Background(), spec, [][]float64{{0, 0, 0, 0}},
			func(int, redundancy.RolloutResult) error { return nil }, nil)
	}(); err == nil {
		t.Fatal("want sweep error from non-rollout evaluator")
	}
}

func TestRolloutSweepStreamsEveryPoint(t *testing.T) {
	f := &rolloutFake{}
	g, err := New(f, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec := paperdata.Design{Name: "s", DNS: 2, Web: 2, App: 2, DB: 2}.Spec()
	sched := redundancy.RolloutSchedule{Strategy: redundancy.RolloutRolling, Steps: 4}
	points, err := sched.Points(len(spec.Tiers))
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	lastDone := 0
	err = g.RolloutSweep(context.Background(), spec, points,
		func(step int, r redundancy.RolloutResult) error {
			steps = append(steps, step)
			return nil
		},
		func(done, total int) {
			if done <= lastDone || total != len(points) {
				t.Errorf("progress(%d, %d) after done=%d", done, total, lastDone)
			}
			lastDone = done
		})
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(steps)
	want := make([]int, len(points))
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(steps, want) {
		t.Errorf("streamed steps %v, want every index once", steps)
	}
	if lastDone != len(points) {
		t.Errorf("last progress done = %d, want %d", lastDone, len(points))
	}

	// An error from fn cancels the sweep.
	boom := errors.New("stop")
	err = g.RolloutSweep(context.Background(), spec, points,
		func(int, redundancy.RolloutResult) error { return boom }, nil)
	if !errors.Is(err, boom) {
		t.Errorf("sweep error = %v, want %v", err, boom)
	}

	// Validation: no points, invalid spec.
	if err := g.RolloutSweep(context.Background(), spec, nil,
		func(int, redundancy.RolloutResult) error { return nil }, nil); err == nil {
		t.Error("empty point list should fail")
	}
	if err := g.RolloutSweep(context.Background(), paperdata.DesignSpec{}, points,
		func(int, redundancy.RolloutResult) error { return nil }, nil); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestRolloutSweepCancellation(t *testing.T) {
	f := &rolloutFake{gate: make(chan struct{})}
	g, err := New(f, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := paperdata.Design{Name: "c", DNS: 2, Web: 2, App: 2, DB: 2}.Spec()
	sched := redundancy.RolloutSchedule{Strategy: redundancy.RolloutRolling, Steps: 8}
	points, err := sched.Points(len(spec.Tiers))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- g.RolloutSweep(ctx, spec, points,
			func(int, redundancy.RolloutResult) error { return nil }, nil)
	}()
	cancel()
	close(f.gate) // release any solver already holding the gate
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled sweep returned %v, want context.Canceled", err)
	}
}
