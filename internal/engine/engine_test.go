package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redpatch/internal/paperdata"
	"redpatch/internal/redundancy"
)

// sharedEvaluator builds the paper evaluator once; solving the four
// per-role SRNs dominates construction cost.
var (
	evalOnce sync.Once
	evalRef  *redundancy.Evaluator
	evalErr  error
)

func paperEvaluator(t testing.TB) *redundancy.Evaluator {
	t.Helper()
	evalOnce.Do(func() {
		evalRef, evalErr = redundancy.NewEvaluator(redundancy.Options{})
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return evalRef
}

// countingEvaluator wraps a DesignEvaluator and counts Evaluate calls;
// optionally it blocks every call until released, to force overlap.
type countingEvaluator struct {
	inner DesignEvaluator
	calls atomic.Int64
	gate  chan struct{}
}

func (c *countingEvaluator) EvaluateSpec(spec paperdata.DesignSpec) (redundancy.Result, error) {
	c.calls.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	return c.inner.EvaluateSpec(spec)
}

func TestParallelSweepMatchesSerialEvaluateAll(t *testing.T) {
	ev := paperEvaluator(t)
	designs := redundancy.EnumerateDesigns(3) // 81 designs
	serial, err := ev.EvaluateAll(designs)
	if err != nil {
		t.Fatal(err)
	}

	g, err := New(ev, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := g.EvaluateAll(designs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel EvaluateAll differs from the serial reference")
	}

	sweep, err := g.Sweep(context.Background(), FullSpace(3))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Total != len(designs) {
		t.Fatalf("Total = %d, want %d", sweep.Total, len(designs))
	}
	if !reflect.DeepEqual(serial, sweep.Kept) {
		t.Fatal("parallel sweep differs from the serial reference")
	}
	if want := redundancy.ParetoFront(serial); !reflect.DeepEqual(sweep.Front, want) {
		t.Fatalf("incremental Pareto front differs from ParetoFront: got %d, want %d members", len(sweep.Front), len(want))
	}
}

func TestRepeatSweepServedFromCache(t *testing.T) {
	c := &countingEvaluator{inner: paperEvaluator(t)}
	g, err := New(c, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec := FullSpace(2) // 16 designs
	if _, err := g.Sweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if n := c.calls.Load(); n != 16 {
		t.Fatalf("first sweep solved %d designs, want 16", n)
	}
	first, err := g.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := g.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.calls.Load(); n != 16 {
		t.Fatalf("repeat sweeps performed %d extra solves", n-16)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached sweep differs from the original")
	}
	st := g.Stats()
	if st.Solves != 16 || st.Hits != 32 {
		t.Fatalf("stats = %+v, want 16 solves / 32 hits", st)
	}

	// An overlapping sweep only solves the designs it adds to the space.
	if _, err := g.Sweep(context.Background(), FullSpace(3)); err != nil {
		t.Fatal(err)
	}
	if n := c.calls.Load(); n != 81 {
		t.Fatalf("overlapping sweep brought total solves to %d, want 81", n)
	}
}

func TestConcurrentDuplicatesShareOneSolve(t *testing.T) {
	c := &countingEvaluator{inner: paperEvaluator(t), gate: make(chan struct{})}
	g, err := New(c, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	d := paperdata.BaseDesign()
	const callers = 8
	results := make([]redundancy.Result, callers)
	errs := make([]error, callers)
	var started, done sync.WaitGroup
	for i := 0; i < callers; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			started.Done()
			defer done.Done()
			results[i], errs[i] = g.Evaluate(d)
		}(i)
	}
	started.Wait()
	close(c.gate) // release the single in-flight solve
	done.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatal("concurrent duplicate returned a different result")
		}
	}
	if n := c.calls.Load(); n != 1 {
		t.Fatalf("%d callers performed %d solves, want 1", callers, n)
	}
}

func TestEvaluateStampsRequestedName(t *testing.T) {
	g, err := New(paperEvaluator(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.Evaluate(paperdata.Design{Name: "first", DNS: 1, Web: 2, App: 2, DB: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Evaluate(paperdata.Design{Name: "second", DNS: 1, Web: 2, App: 2, DB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec.Name != "first" || b.Spec.Name != "second" {
		t.Fatalf("names = %q, %q", a.Spec.Name, b.Spec.Name)
	}
	if a.COA != b.COA || !reflect.DeepEqual(a.After, b.After) {
		t.Fatal("same tuple under different names produced different metrics")
	}
	if st := g.Stats(); st.Solves != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 solve / 1 hit", st)
	}
}

func TestEvaluateRejectsInvalidDesign(t *testing.T) {
	g, err := New(paperEvaluator(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Evaluate(paperdata.Design{Name: "bad", DNS: 0, Web: 1, App: 1, DB: 1}); err == nil {
		t.Fatal("zero-replica design accepted")
	}
	if st := g.Stats(); st.Solves != 0 {
		t.Fatalf("invalid design reached the evaluator: %+v", st)
	}
}

func TestSweepBoundsFilterIncrementally(t *testing.T) {
	ev := paperEvaluator(t)
	g, err := New(ev, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec := FullSpace(2)
	spec.Scatter = &redundancy.ScatterBounds{MaxASP: 0.2, MinCOA: 0.9962}
	res, err := g.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ev.EvaluateAll(redundancy.EnumerateDesigns(2))
	if err != nil {
		t.Fatal(err)
	}
	want := redundancy.Filter(all, *spec.Scatter)
	if !reflect.DeepEqual(res.Kept, want) {
		t.Fatalf("kept %d results, want %d", len(res.Kept), len(want))
	}
	if res.Total != 16 {
		t.Fatalf("Total = %d, want 16", res.Total)
	}
	for _, r := range res.Front {
		if !spec.Scatter.Satisfied(r) {
			t.Fatalf("front member %s violates the bounds", r.Spec)
		}
	}
}

func TestSweepParetoMatchesSweep(t *testing.T) {
	g, err := New(paperEvaluator(t), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := g.Sweep(context.Background(), FullSpace(2))
	if err != nil {
		t.Fatal(err)
	}
	total, front, err := g.SweepPareto(context.Background(), FullSpace(2))
	if err != nil {
		t.Fatal(err)
	}
	if total != full.Total {
		t.Fatalf("total = %d, want %d", total, full.Total)
	}
	if !reflect.DeepEqual(front, full.Front) {
		t.Fatalf("front-only sweep returned %d members, Sweep returned %d", len(front), len(full.Front))
	}
}

func TestSweepFuncStreams(t *testing.T) {
	g, err := New(paperEvaluator(t), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	total, err := g.SweepFunc(context.Background(), FullSpace(2), func(redundancy.Result) error {
		streamed++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 || streamed != 16 {
		t.Fatalf("total = %d, streamed = %d, want 16/16", total, streamed)
	}

	sentinel := errors.New("enough")
	if _, err := g.SweepFunc(context.Background(), FullSpace(2), func(redundancy.Result) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

func TestSweepHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := New(paperEvaluator(t), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Sweep(ctx, FullSpace(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepSpecValidate(t *testing.T) {
	bad := ClassicSpace(Range{Min: 3, Max: 1}, Range{}, Range{}, Range{})
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := (SweepSpec{}).Validate(); err == nil {
		t.Fatal("tierless spec accepted")
	}
	if n := ClassicSpace(Range{}, Range{}, Range{}, Range{}).Size(); n != 1 {
		t.Fatalf("zero-range classic spec size = %d, want 1", n)
	}
	if n := FullSpace(4).Size(); n != 256 {
		t.Fatalf("FullSpace(4) size = %d, want 256", n)
	}
	if err := FullSpace(0).Validate(); err == nil {
		t.Fatal("FullSpace(0) must fail validation, not sweep one design")
	}
	for name, spec := range map[string]SweepSpec{
		"duplicate role":    {Tiers: []TierSweep{{Role: "web"}, {Role: "web"}}},
		"unknown role":      {Tiers: []TierSweep{{Role: "cache"}}},
		"unknown variant":   {Tiers: []TierSweep{{Role: "web", Variants: []string{"iis"}}}},
		"duplicate variant": {Tiers: []TierSweep{{Role: "web", Variants: []string{"webalt", "webalt"}}}},
		"variant names own role": {Tiers: []TierSweep{
			{Role: "web", Variants: []string{"", "web"}}}},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	hetero := SweepSpec{Tiers: []TierSweep{
		{Role: "dns"},
		{Role: "web", Replicas: Range{Min: 1, Max: 2}, Variants: []string{"", "webalt"}},
		{Role: "app"},
		{Role: "db"},
	}}
	if err := hetero.Validate(); err != nil {
		t.Fatalf("heterogeneous spec rejected: %v", err)
	}
	if n := hetero.Size(); n != 4 {
		t.Fatalf("heterogeneous size = %d, want 4 (2 counts x 2 stacks)", n)
	}
}

func TestSweepSurfacesEvaluationError(t *testing.T) {
	failing := evaluatorFunc(func(s paperdata.DesignSpec) (redundancy.Result, error) {
		if s.Name == "2d1w1a1b" {
			return redundancy.Result{}, errors.New("synthetic failure")
		}
		return redundancy.Result{Spec: s}, nil
	})
	g, err := New(failing, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Sweep(context.Background(), FullSpace(2)); err == nil {
		t.Fatal("evaluation error swallowed")
	}
}

type evaluatorFunc func(paperdata.DesignSpec) (redundancy.Result, error)

func (f evaluatorFunc) EvaluateSpec(s paperdata.DesignSpec) (redundancy.Result, error) { return f(s) }

// TestEvaluatorPanicDoesNotWedgeCacheKey pins the singleflight panic
// path: a panicking solve must surface as an error and later calls for
// the same tuple must not block forever on a never-closed ready channel.
func TestEvaluatorPanicDoesNotWedgeCacheKey(t *testing.T) {
	g, err := New(evaluatorFunc(func(paperdata.DesignSpec) (redundancy.Result, error) {
		panic("synthetic solver bug")
	}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := paperdata.BaseDesign()
	if _, err := g.Evaluate(d); err == nil {
		t.Fatal("panic not surfaced as an error")
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Evaluate(d)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("second call returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second Evaluate blocked on the wedged cache key")
	}
	// Failures are evicted, not memoized: the second call re-solved.
	if st := g.Stats(); st.Solves != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 solves / 0 hits", st)
	}
}

// TestTransientErrorIsNotMemoized pins the eviction of failed entries: a
// solve that fails once must not poison its design tuple forever.
func TestTransientErrorIsNotMemoized(t *testing.T) {
	inner := paperEvaluator(t)
	var failed atomic.Bool
	g, err := New(evaluatorFunc(func(s paperdata.DesignSpec) (redundancy.Result, error) {
		if failed.CompareAndSwap(false, true) {
			return redundancy.Result{}, errors.New("transient failure")
		}
		return inner.EvaluateSpec(s)
	}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := paperdata.BaseDesign()
	if _, err := g.Evaluate(d); err == nil {
		t.Fatal("first call should fail")
	}
	r, err := g.Evaluate(d)
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if r.COA <= 0 {
		t.Fatalf("implausible retried result: %+v", r)
	}
}

// TestSpecCacheKeysDistinguishVariants pins the v2 cache identity: a web
// tier and its webalt deployment with identical replica counts must never
// share a cache slot, a mixed heterogeneous tier is a third identity, and
// renaming any of them stays a cache hit.
func TestSpecCacheKeysDistinguishVariants(t *testing.T) {
	c := &countingEvaluator{inner: paperEvaluator(t)}
	g, err := New(c, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	classic := func(web ...paperdata.TierSpec) paperdata.DesignSpec {
		tiers := []paperdata.TierSpec{{Role: paperdata.RoleDNS, Replicas: 1}}
		tiers = append(tiers, web...)
		tiers = append(tiers,
			paperdata.TierSpec{Role: paperdata.RoleApp, Replicas: 1},
			paperdata.TierSpec{Role: paperdata.RoleDB, Replicas: 1})
		return paperdata.DesignSpec{Name: "d", Tiers: tiers}
	}
	plain := classic(paperdata.TierSpec{Role: paperdata.RoleWeb, Replicas: 2})
	alt := classic(paperdata.TierSpec{Role: paperdata.RoleWeb, Replicas: 2, Variant: paperdata.RoleWebAlt})
	mixed := classic(
		paperdata.TierSpec{Role: paperdata.RoleWeb, Replicas: 1},
		paperdata.TierSpec{Role: paperdata.RoleWeb, Replicas: 1, Variant: paperdata.RoleWebAlt})

	rPlain, err := g.EvaluateSpec(plain)
	if err != nil {
		t.Fatal(err)
	}
	rAlt, err := g.EvaluateSpec(alt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.EvaluateSpec(mixed); err != nil {
		t.Fatal(err)
	}
	if n := c.calls.Load(); n != 3 {
		t.Fatalf("three distinct variant identities performed %d solves, want 3", n)
	}
	if rPlain.After.NoEV == rAlt.After.NoEV && rPlain.After.ASP == rAlt.After.ASP {
		t.Fatal("variant deployment evaluated identically to the base stack")
	}

	renamed := alt
	renamed.Name = "renamed"
	r, err := g.EvaluateSpec(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.calls.Load(); n != 3 {
		t.Fatalf("renamed spec re-solved: %d solves", n)
	}
	if r.Spec.Name != "renamed" {
		t.Fatalf("cache hit lost the requested name: %q", r.Spec.Name)
	}
}

// TestColdSweepTierSolveBudget pins the factored-sweep scaling contract:
// a cold sweep over the 3^4 replica space (81 designs) performs at most
// one tier solve per (role, replica-count) pair — the sum of the range
// sizes, 12 — instead of one network solve per design point, and never
// touches the SRN path. Asserted through the engine's merged counters.
func TestColdSweepTierSolveBudget(t *testing.T) {
	ev, err := redundancy.NewEvaluator(redundancy.Options{}) // cold: fresh counters
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(ev, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	spec := FullSpace(3)
	res, err := g.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 81 {
		t.Fatalf("total = %d, want 81", res.Total)
	}
	st := g.Stats()
	if st.Solves != 81 || st.FactoredSolves != 81 {
		t.Errorf("solves = %d, factored = %d; want 81 of each", st.Solves, st.FactoredSolves)
	}
	var sumRanges uint64
	for _, tier := range spec.Tiers {
		sumRanges += uint64(tier.Replicas.Max - tier.Replicas.Min + 1)
	}
	if st.TierSolves > sumRanges {
		t.Errorf("cold 3^4 sweep performed %d tier solves, budget is sum of ranges = %d",
			st.TierSolves, sumRanges)
	}
	if st.SRNSolves != 0 {
		t.Errorf("sweep performed %d SRN solves, want 0", st.SRNSolves)
	}
	// Every design reads 4 factors; all but the 12 misses must hit.
	if want := uint64(81*4) - st.TierSolves; st.TierFactorHits != want {
		t.Errorf("tier factor hits = %d, want %d", st.TierFactorHits, want)
	}
}

// TestStatsWithoutSolverProvider: engines over evaluators that do not
// expose solver counters report zeros rather than garbage.
func TestStatsWithoutSolverProvider(t *testing.T) {
	ev := &countingEvaluator{inner: paperEvaluator(t)}
	g, err := New(ev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Evaluate(paperdata.BaseDesign()); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Solves != 1 {
		t.Errorf("solves = %d, want 1", st.Solves)
	}
	if st.FactoredSolves != 0 || st.SRNSolves != 0 || st.TierSolves != 0 || st.TierFactorHits != 0 {
		t.Errorf("wrapped evaluator without SolverStats leaked counters: %+v", st)
	}
}

// TestSweepCancelDropsQueuedSpecs: a cancelled sweep must stop issuing
// queued designs to the evaluator — only the design already in flight
// at cancellation runs; the rest of the space is dropped before a
// worker ever picks it up, so the pool frees immediately instead of
// cycling the dead request's backlog.
func TestSweepCancelDropsQueuedSpecs(t *testing.T) {
	ce := &countingEvaluator{inner: paperEvaluator(t), gate: make(chan struct{})}
	g, err := New(ce, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := g.Sweep(ctx, FullSpace(3)) // 81 designs
		done <- err
	}()

	// Wait for the single worker to start design #1, then pull the plug
	// while it is blocked inside the evaluator.
	deadline := time.Now().Add(5 * time.Second)
	for ce.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("evaluator never called")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(ce.gate) // release the in-flight solve

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled sweep never returned")
	}
	if n := ce.calls.Load(); n != 1 {
		t.Fatalf("evaluator ran %d designs after cancellation, want 1 (queued specs must be dropped)", n)
	}
}
