package engine

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"redpatch/internal/paperdata"
	"redpatch/internal/redundancy"
)

func specFor(t *testing.T, dns, web, app, db int) paperdata.DesignSpec {
	t.Helper()
	return paperdata.Design{
		Name: paperdata.DefaultName(dns, web, app, db),
		DNS:  dns, Web: web, App: app, DB: db,
	}.Spec()
}

// TestSnapshotRoundTrip dumps a warmed engine and restores it into a
// fresh one: the restored engine must answer from cache (zero solves)
// with byte-identical results.
func TestSnapshotRoundTrip(t *testing.T) {
	ev := paperEvaluator(t)
	counted := &countingEvaluator{inner: ev}
	g, err := New(counted, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	specs := []paperdata.DesignSpec{
		specFor(t, 1, 2, 2, 1),
		specFor(t, 1, 1, 1, 1),
		specFor(t, 2, 2, 2, 2),
	}
	want := make([]redundancy.Result, len(specs))
	for i, sp := range specs {
		if want[i], err = g.EvaluateSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	if n := g.Len(); n != len(specs) {
		t.Fatalf("Len = %d, want %d", n, len(specs))
	}

	var buf bytes.Buffer
	n, err := g.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(specs) {
		t.Fatalf("snapshot wrote %d entries, want %d", n, len(specs))
	}

	fresh := &countingEvaluator{inner: ev}
	g2, err := New(fresh, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := g2.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != len(specs) {
		t.Fatalf("restored %d entries, want %d", restored, len(specs))
	}
	if g2.Len() != len(specs) {
		t.Fatalf("Len after restore = %d, want %d", g2.Len(), len(specs))
	}
	for i, sp := range specs {
		got, err := g2.EvaluateSpec(sp)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want[i]) {
			t.Fatalf("restored result for %s differs:\ngot  %+v\nwant %+v", sp, got, want[i])
		}
	}
	if calls := fresh.calls.Load(); calls != 0 {
		t.Fatalf("restored engine re-solved %d designs", calls)
	}
	st := g2.Stats()
	if st.Solves != 0 || st.Hits != uint64(len(specs)) {
		t.Fatalf("stats after restored serves = %+v", st)
	}
}

// resultsEqual compares the fields the facade serves. Full reflect
// equality would also compare Paths float ordering, which the JSON
// round trip preserves — compare the whole struct via marshal-free
// field checks on the summary plus the path count.
func resultsEqual(a, b redundancy.Result) bool {
	return a.Spec.Key() == b.Spec.Key() &&
		a.COA == b.COA &&
		a.ServiceAvailability == b.ServiceAvailability &&
		a.Before.ASP == b.Before.ASP && a.After.ASP == b.After.ASP &&
		a.Before.AIM == b.Before.AIM && a.After.AIM == b.After.AIM &&
		a.Before.NoEV == b.Before.NoEV && a.After.NoEV == b.After.NoEV &&
		a.Before.NoAP == b.Before.NoAP && a.After.NoAP == b.After.NoAP &&
		a.Before.NoEP == b.Before.NoEP && a.After.NoEP == b.After.NoEP &&
		len(a.Before.Paths) == len(b.Before.Paths) &&
		len(a.After.Paths) == len(b.After.Paths)
}

// TestRestoreRejectsFingerprintMismatch: a dump taken under a different
// vulnerability dataset / policy / schedule (a different fingerprint)
// must be rejected, never merged.
func TestRestoreRejectsFingerprintMismatch(t *testing.T) {
	ev := paperEvaluator(t)
	g, err := New(ev, Options{Fingerprint: "dataset-A,thr=8"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.EvaluateSpec(specFor(t, 1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	other, err := New(ev, Options{Fingerprint: "dataset-B,thr=8"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := other.Restore(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrSnapshotFingerprint) {
		t.Fatalf("err = %v, want ErrSnapshotFingerprint", err)
	}
	if n != 0 || other.Len() != 0 {
		t.Fatalf("mismatched snapshot merged %d entries (cache %d)", n, other.Len())
	}
}

// TestRestoreRejectsVersionMismatch: future-format dumps fail loudly.
func TestRestoreRejectsVersionMismatch(t *testing.T) {
	g, err := New(paperEvaluator(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := `{"version":99,"fingerprint":"","entries":[]}`
	n, err := g.Restore(strings.NewReader(in))
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("err = %v, want ErrSnapshotVersion", err)
	}
	if n != 0 {
		t.Fatalf("restored %d entries from wrong version", n)
	}
}

// TestRestoreRejectsCorruptEntries: a tampered dump whose entry key
// disagrees with its result spec, or whose spec fails validation, must
// not merge a single entry.
func TestRestoreRejectsCorruptEntries(t *testing.T) {
	ev := paperEvaluator(t)
	g, err := New(ev, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.EvaluateSpec(specFor(t, 1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	for name, mangle := range map[string]func(string) string{
		"key mismatch": func(s string) string {
			return strings.Replace(s, `"key":"dns:1;`, `"key":"dns:9;`, 1)
		},
		"invalid spec": func(s string) string {
			return strings.Replace(s, `"Replicas":1`, `"Replicas":0`, 1)
		},
		"not json": func(string) string { return "not a snapshot" },
	} {
		t.Run(name, func(t *testing.T) {
			fresh, err := New(ev, Options{Fingerprint: "fp"})
			if err != nil {
				t.Fatal(err)
			}
			n, err := fresh.Restore(strings.NewReader(mangle(buf.String())))
			if err == nil {
				t.Fatal("corrupt snapshot restored without error")
			}
			if n != 0 || fresh.Len() != 0 {
				t.Fatalf("corrupt snapshot merged %d entries (cache %d)", n, fresh.Len())
			}
		})
	}
}

// TestRestoreSkipsExistingEntries: live results win over persisted
// ones; restoring on top of a warm cache only fills the gaps.
func TestRestoreSkipsExistingEntries(t *testing.T) {
	ev := paperEvaluator(t)
	g, err := New(ev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []paperdata.DesignSpec{specFor(t, 1, 1, 1, 1), specFor(t, 1, 2, 2, 1)} {
		if _, err := g.EvaluateSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := g.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	g2, err := New(ev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.EvaluateSpec(specFor(t, 1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	restored, err := g2.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored = %d, want 1 (the missing design only)", restored)
	}
	if g2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g2.Len())
	}
}

// TestSnapshotSkipsInFlight: an entry still being solved is not
// serialized — the snapshot holds completed results only.
func TestSnapshotSkipsInFlight(t *testing.T) {
	gate := make(chan struct{})
	blocked := &countingEvaluator{inner: paperEvaluator(t), gate: gate}
	g, err := New(blocked, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.EvaluateSpec(specFor(t, 1, 1, 1, 1))
		done <- err
	}()
	// Wait for the solve to be registered in-flight.
	for blocked.calls.Load() == 0 {
	}
	var buf bytes.Buffer
	n, err := g.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("snapshot wrote %d in-flight entries", n)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if n, err = g.Snapshot(&buf); err != nil || n != 1 {
		t.Fatalf("after completion: n = %d, err = %v", n, err)
	}
}

// TestSnapshotDeterministic: equal caches produce byte-identical dumps
// regardless of evaluation order.
func TestSnapshotDeterministic(t *testing.T) {
	ev := paperEvaluator(t)
	specs := []paperdata.DesignSpec{
		specFor(t, 1, 1, 1, 1), specFor(t, 2, 1, 1, 1), specFor(t, 1, 2, 1, 1),
	}
	dump := func(order []int) string {
		g, err := New(ev, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if _, err := g.EvaluateSpec(specs[i]); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := g.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if dump([]int{0, 1, 2}) != dump([]int{2, 0, 1}) {
		t.Fatal("snapshot bytes depend on evaluation order")
	}
}
