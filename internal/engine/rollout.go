package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"redpatch/internal/paperdata"
	"redpatch/internal/redundancy"
	"redpatch/internal/trace"
	"redpatch/internal/workpool"
)

// RolloutEvaluator is the optional DesignEvaluator extension scoring a
// design mid-rollout at per-tier patched fractions.
// *redundancy.Evaluator implements it; engines over evaluators that do
// not reject rollout requests.
type RolloutEvaluator interface {
	EvaluateRollout(ctx context.Context, spec paperdata.DesignSpec, fractions []float64) (redundancy.RolloutResult, error)
}

// rolloutEntry is one singleflight slot of the rollout memo, the
// RolloutResult counterpart of entry. Rollout entries are kept in their
// own map — and deliberately out of Snapshot/Restore, whose persisted
// format stays atomic-results-only.
type rolloutEntry struct {
	ready chan struct{}
	res   redundancy.RolloutResult
	err   error
}

// rolloutKey renders the memo identity of a rollout point: the spec's
// canonical key joined with the per-tier patched counts. Fractions that
// ceil to the same counts share one entry — the quotient structure, not
// the raw fraction, is what determines the models.
func rolloutKey(spec paperdata.DesignSpec, patched []int) string {
	parts := make([]string, len(patched))
	for i, p := range patched {
		parts[i] = strconv.Itoa(p)
	}
	return spec.Key() + "|rollout=" + strings.Join(parts, ",")
}

// EvaluateRollout scores one design at one rollout point (per-tier
// patched fractions aligned with spec.Tiers), serving repeats from the
// rollout memo. Concurrent calls for the same (spec, patched-counts)
// identity share a single solve, with the same join-abandon semantics
// as EvaluateSpecCtx. The returned result carries the requested spec
// and fractions even on a cache hit.
func (g *Engine) EvaluateRollout(ctx context.Context, spec paperdata.DesignSpec, fractions []float64) (redundancy.RolloutResult, error) {
	return g.evaluateRolloutTraced(ctx, spec, fractions,
		trace.Attr{Key: "design", Value: spec.Name})
}

// evaluateRolloutTraced opens the "engine.evaluate" span with the
// caller's attributes — RolloutSweep adds per-point queue wait.
func (g *Engine) evaluateRolloutTraced(ctx context.Context, spec paperdata.DesignSpec, fractions []float64, attrs ...trace.Attr) (res redundancy.RolloutResult, err error) {
	ctx, sp := trace.Start(ctx, "engine.evaluate", attrs...)
	defer func() { sp.EndErr(err) }()
	sp.SetAttr("rollout", true)

	re, ok := g.eval.(RolloutEvaluator)
	if !ok {
		return redundancy.RolloutResult{}, fmt.Errorf("engine: evaluator does not support rollout evaluation")
	}
	if err := spec.Validate(); err != nil {
		return redundancy.RolloutResult{}, err
	}
	patched, err := redundancy.PatchedCounts(spec, fractions)
	if err != nil {
		return redundancy.RolloutResult{}, err
	}
	k := key{fp: g.fp, spec: rolloutKey(spec, patched)}

	g.mu.Lock()
	e, ok := g.rollout[k]
	if !ok {
		e = &rolloutEntry{ready: make(chan struct{})}
		g.rollout[k] = e
		g.mu.Unlock()
		sp.SetAttr("cache", "miss")
		g.rolloutSolves.Add(1)
		func() {
			// Mirror evaluateSpec: the entry must reach a final state no
			// matter how the evaluator exits, and errors are never
			// memoized.
			defer func() {
				if p := recover(); p != nil {
					e.err = fmt.Errorf("engine: evaluator panic for rollout of %s: %v", spec, p)
				}
				if e.err != nil {
					g.mu.Lock()
					delete(g.rollout, k)
					g.mu.Unlock()
				}
				close(e.ready)
			}()
			e.res, e.err = re.EvaluateRollout(ctx, spec, fractions)
		}()
	} else {
		g.mu.Unlock()
		g.rolloutHits.Add(1)
		select {
		case <-e.ready:
			sp.SetAttr("cache", "hit")
		default:
			sp.SetAttr("cache", "inflight")
			select {
			case <-e.ready:
			case <-ctx.Done():
				return redundancy.RolloutResult{}, ctx.Err()
			}
		}
	}

	if e.err != nil {
		return redundancy.RolloutResult{}, e.err
	}
	r := e.res
	r.Spec = spec
	r.Fractions = append([]float64(nil), fractions...)
	return r, nil
}

// RolloutSweep evaluates every point of a rollout schedule on the
// worker pool, streaming results to fn in completion order with the
// point's schedule index. fn runs on a single collector goroutine;
// returning an error cancels the sweep. progress (optional) runs there
// too after every completed point. The whole sweep runs under a
// "rollout.sweep" span; each point's evaluate span carries its queue
// wait, like design sweeps.
func (g *Engine) RolloutSweep(ctx context.Context, spec paperdata.DesignSpec, points [][]float64, fn func(step int, r redundancy.RolloutResult) error, progress func(done, total int)) (err error) {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(points) == 0 {
		return fmt.Errorf("engine: rollout sweep has no points")
	}
	ctx, sp := trace.Start(ctx, "rollout.sweep",
		trace.Attr{Key: "design", Value: spec.Name},
		trace.Attr{Key: "points", Value: len(points)})
	defer func() { sp.EndErr(err) }()
	start := time.Now()
	done := 0
	var firstErr error
	workpool.StreamCtx(ctx, g.workers, points,
		func(_ int, fr []float64) (redundancy.RolloutResult, error) {
			if err := ctx.Err(); err != nil {
				return redundancy.RolloutResult{}, err
			}
			wait := time.Since(start)
			r, err := g.evaluateRolloutTraced(ctx, spec, fr,
				trace.Attr{Key: "design", Value: spec.Name},
				trace.Attr{Key: "queue_wait_ns", Value: wait.Nanoseconds()})
			if err != nil {
				err = fmt.Errorf("engine: rollout point %v: %w", fr, err)
			}
			return r, err
		},
		func(idx int, r redundancy.RolloutResult, err error) bool {
			if err != nil {
				firstErr = err
				return false
			}
			done++
			if progress != nil {
				progress(done, len(points))
			}
			if err := fn(idx, r); err != nil {
				firstErr = err
				return false
			}
			return true
		})
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
