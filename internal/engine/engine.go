// Package engine is the concurrent design-space evaluation engine on top
// of internal/redundancy: a bounded worker pool fans design evaluations
// out across cores, a keyed memo cache remembers every solved design
// (design tuple + policy fingerprint → Result), and in-flight deduplication
// ensures overlapping sweeps never solve the same HARM/CTMC models twice —
// the first caller computes, every concurrent duplicate waits for that one
// result. Sweeps (sweep.go) enumerate per-tier redundancy ranges and stream
// results through administrator-bound and Pareto filters incrementally, so
// large spaces never accumulate rejected results in memory.
//
// One Engine wraps one evaluator and therefore one patch policy and
// schedule; construct one engine per policy configuration (the redpatch
// facade does this per CaseStudy) and set Options.Fingerprint when several
// engines could ever share keys downstream.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"redpatch/internal/paperdata"
	"redpatch/internal/redundancy"
	"redpatch/internal/trace"
	"redpatch/internal/workpool"
)

// DesignEvaluator is the evaluation dependency: anything that can score
// one role-keyed design spec on both paper axes. *redundancy.Evaluator
// is the production implementation; tests substitute counting or
// blocking fakes. Implementations must be safe for concurrent use.
type DesignEvaluator interface {
	EvaluateSpec(paperdata.DesignSpec) (redundancy.Result, error)
}

// ContextEvaluator is the optional DesignEvaluator extension that
// accepts the caller's context, so solver-layer spans join the request
// trace. *redundancy.Evaluator implements it; evaluators that do not are
// called through plain EvaluateSpec and simply record no solver spans.
type ContextEvaluator interface {
	EvaluateSpecContext(context.Context, paperdata.DesignSpec) (redundancy.Result, error)
}

// Options configures an Engine.
type Options struct {
	// Workers bounds the evaluation pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Fingerprint distinguishes the wrapped evaluator's policy
	// configuration in cache keys. An engine never shares its cache, so
	// this only matters for operators that aggregate stats or persist
	// results across engines; empty is fine otherwise.
	Fingerprint string
}

// Stats counts the engine's cache behaviour. Solves is the number of
// underlying evaluator calls; Hits the number of requests served from the
// cache, including requests that waited on an in-flight solve of the same
// design instead of starting their own. The remaining counters mirror
// the wrapped evaluator's availability-solver dispatch (SolverStats)
// when it exposes one — redundancy.Evaluator does — and stay zero for
// evaluators that do not.
type Stats struct {
	Solves uint64
	Hits   uint64
	// FactoredSolves is the number of upper-layer availability solves
	// served by the factored (per-tier birth–death) path.
	FactoredSolves uint64
	// SRNSolves is the number of upper-layer solves that generated and
	// eliminated the full SRN.
	SRNSolves uint64
	// TierSolves is the number of distinct (stack, replicas) tier
	// factors solved; TierFactorHits the number served from the memo.
	TierSolves     uint64
	TierFactorHits uint64
	// SecurityFactored is the number of security evaluations served by
	// the factored (quotient) path; SecuritySolves the number of
	// factored security models built (one per variant structure);
	// SecurityFactorHits the number served from the security memo.
	SecurityFactored   uint64
	SecuritySolves     uint64
	SecurityFactorHits uint64
	// RolloutSolves is the number of rollout-point evaluations the
	// engine ran; RolloutHits the number served from (or deduplicated
	// onto) the rollout memo. The remaining rollout counters mirror the
	// evaluator's SolverStats: RolloutModels mixed-version security
	// models built, RolloutModelHits evaluations served from that memo.
	RolloutSolves    uint64
	RolloutHits      uint64
	RolloutModels    uint64
	RolloutModelHits uint64
}

// SolverStatsProvider is the optional evaluator extension surfacing
// availability-solver dispatch counters through the engine's Stats.
type SolverStatsProvider interface {
	SolverStats() redundancy.SolverStats
}

// key identifies a solved model: the spec's canonical identity (tier
// order, roles, variants, replica counts) under the engine's policy
// fingerprint. The design name is deliberately excluded — renaming a
// design does not change its models — while variants are included, so
// a web tier and its webalt deployment never share a slot.
type key struct {
	fp, spec string
}

// entry is one singleflight cache slot. ready is closed once res/err are
// final; concurrent callers for the same key block on it instead of
// re-solving.
type entry struct {
	ready chan struct{}
	res   redundancy.Result
	err   error
}

// Engine is a concurrent, memoizing design evaluator. It is safe for
// concurrent use.
type Engine struct {
	eval    DesignEvaluator
	workers int
	fp      string

	mu      sync.Mutex
	cache   map[key]*entry
	rollout map[key]*rolloutEntry

	solves        atomic.Uint64
	hits          atomic.Uint64
	rolloutSolves atomic.Uint64
	rolloutHits   atomic.Uint64
	// done counts completed successful cache entries (Len's O(1)
	// source): bumped per solve that memoizes and per restored entry;
	// never decremented, since only erred entries leave the cache.
	done atomic.Uint64
}

// New builds an engine over eval. eval must be safe for concurrent use
// (see redundancy.Evaluator's documented guarantee).
func New(eval DesignEvaluator, opts Options) (*Engine, error) {
	if eval == nil {
		return nil, fmt.Errorf("engine: nil evaluator")
	}
	return &Engine{
		eval:    eval,
		workers: opts.Workers,
		fp:      opts.Fingerprint,
		cache:   make(map[key]*entry),
		rollout: make(map[key]*rolloutEntry),
	}, nil
}

// Stats returns a snapshot of the cache counters, merged with the
// evaluator's solver-dispatch counters when available.
func (g *Engine) Stats() Stats {
	st := Stats{
		Solves:        g.solves.Load(),
		Hits:          g.hits.Load(),
		RolloutSolves: g.rolloutSolves.Load(),
		RolloutHits:   g.rolloutHits.Load(),
	}
	if p, ok := g.eval.(SolverStatsProvider); ok {
		ss := p.SolverStats()
		st.FactoredSolves = ss.FactoredSolves
		st.SRNSolves = ss.SRNSolves
		st.TierSolves = ss.TierSolves
		st.TierFactorHits = ss.TierFactorHits
		st.SecurityFactored = ss.SecurityFactored
		st.SecuritySolves = ss.SecuritySolves
		st.SecurityFactorHits = ss.SecurityFactorHits
		st.RolloutModels = ss.RolloutModels
		st.RolloutModelHits = ss.RolloutModelHits
	}
	return st
}

// Evaluate scores one classic 4-tuple design through the spec path.
func (g *Engine) Evaluate(d paperdata.Design) (redundancy.Result, error) {
	if err := d.Validate(); err != nil {
		return redundancy.Result{}, err
	}
	return g.EvaluateSpec(d.Spec())
}

// EvaluateSpec scores one role-keyed design, serving repeats from the
// cache. Concurrent calls for the same spec identity share a single
// solve. The returned result carries the requested spec (name included)
// even on a cache hit.
func (g *Engine) EvaluateSpec(spec paperdata.DesignSpec) (redundancy.Result, error) {
	return g.EvaluateSpecCtx(context.Background(), spec)
}

// EvaluateSpecCtx is EvaluateSpec with the caller's context threaded
// through for tracing. When the context carries a tracer, the call
// records an "engine.evaluate" span whose cache attribute distinguishes
// a miss (this call solved), a hit (the memo had a completed entry) and
// an inflight join (a concurrent solve of the same design was in
// progress and this call waited for it). The context does not cancel an
// in-flight solve — a result being computed belongs to every caller
// deduplicated onto it, so the first caller's cancellation must not
// poison the shared entry — but a caller *joining* an in-flight solve
// abandons its wait when its context ends: the solve finishes and
// memoizes without it.
func (g *Engine) EvaluateSpecCtx(ctx context.Context, spec paperdata.DesignSpec) (redundancy.Result, error) {
	return g.evaluateSpecTraced(ctx, spec,
		trace.Attr{Key: "design", Value: spec.Name})
}

// evaluateSpecTraced opens the "engine.evaluate" span with the caller's
// attributes — the sweep path adds per-design queue wait on top of the
// design name.
func (g *Engine) evaluateSpecTraced(ctx context.Context, spec paperdata.DesignSpec, attrs ...trace.Attr) (res redundancy.Result, err error) {
	ctx, sp := trace.Start(ctx, "engine.evaluate", attrs...)
	defer func() { sp.EndErr(err) }()
	return g.evaluateSpec(ctx, sp, spec)
}

func (g *Engine) evaluateSpec(ctx context.Context, sp *trace.Span, spec paperdata.DesignSpec) (redundancy.Result, error) {
	if err := spec.Validate(); err != nil {
		return redundancy.Result{}, err
	}
	k := key{fp: g.fp, spec: spec.Key()}

	g.mu.Lock()
	e, ok := g.cache[k]
	if !ok {
		e = &entry{ready: make(chan struct{})}
		g.cache[k] = e
		g.mu.Unlock()
		sp.SetAttr("cache", "miss")
		g.solves.Add(1)
		func() {
			// The entry must reach a final state no matter how the
			// evaluator exits: a panic that skipped close(ready) would
			// wedge this key forever, hanging every later caller on the
			// channel. Surface it as the entry's error instead.
			defer func() {
				if p := recover(); p != nil {
					e.err = fmt.Errorf("engine: evaluator panic for design %s: %v", spec, p)
				}
				if e.err != nil {
					// Errors are not memoized: waiters already holding
					// this entry see it, but later callers retry rather
					// than read a possibly transient failure forever.
					g.mu.Lock()
					delete(g.cache, k)
					g.mu.Unlock()
				} else {
					g.done.Add(1)
				}
				close(e.ready)
			}()
			if ce, ok := g.eval.(ContextEvaluator); ok {
				e.res, e.err = ce.EvaluateSpecContext(ctx, spec)
			} else {
				e.res, e.err = g.eval.EvaluateSpec(spec)
			}
		}()
	} else {
		g.mu.Unlock()
		g.hits.Add(1)
		select {
		case <-e.ready:
			sp.SetAttr("cache", "hit")
		default:
			sp.SetAttr("cache", "inflight")
			// A join abandons its wait when the caller's deadline fires:
			// the in-flight solve continues (its result belongs to every
			// deduplicated caller and is memoized for the next request),
			// but this caller stops occupying a connection for it.
			select {
			case <-e.ready:
			case <-ctx.Done():
				return redundancy.Result{}, ctx.Err()
			}
		}
	}

	if e.err != nil {
		return redundancy.Result{}, e.err
	}
	r := e.res
	r.Spec = spec
	return r, nil
}

// Peek reports whether spec's result is already completed in the memo
// cache — no solve, no wait, no stats movement. Admission control uses
// it to let warm requests bypass the limiter: a true Peek means the
// matching EvaluateSpec call is a map lookup, safe to serve even on a
// saturated daemon. In-flight solves and erred entries read false.
func (g *Engine) Peek(spec paperdata.DesignSpec) bool {
	if spec.Validate() != nil {
		return false
	}
	k := key{fp: g.fp, spec: spec.Key()}
	g.mu.Lock()
	e, ok := g.cache[k]
	g.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.ready:
		return e.err == nil
	default:
		return false
	}
}

// EvaluateAll scores every design on the worker pool and returns results
// in input order — the concurrent, cached counterpart of
// redundancy.(*Evaluator).EvaluateAll, with identical output.
func (g *Engine) EvaluateAll(designs []paperdata.Design) ([]redundancy.Result, error) {
	return workpool.Map(g.workers, designs, func(_ int, d paperdata.Design) (redundancy.Result, error) {
		r, err := g.Evaluate(d)
		if err != nil {
			return redundancy.Result{}, fmt.Errorf("engine: design %s: %w", d, err)
		}
		return r, nil
	})
}
