package engine

import (
	"math"
	"testing"
)

// TestSweepSizeSaturatesInsteadOfWrapping pins the guard redpatchd's
// request cap relies on: a product of huge attacker-chosen ranges must
// saturate, never wrap past the cap to a small or negative count.
func TestSweepSizeSaturatesInsteadOfWrapping(t *testing.T) {
	r := Range{Min: 1, Max: 65536} // 65536^4 == 2^64 wraps to 0 unchecked
	spec := ClassicSpace(r, r, r, r)
	if err := spec.Validate(); err != nil {
		t.Fatalf("huge-but-wellformed spec rejected: %v", err)
	}
	if got := spec.Size(); got != math.MaxInt {
		t.Fatalf("Size() = %d, want saturation at MaxInt", got)
	}
	half := SweepSpec{Tiers: []TierSweep{{Role: "dns", Replicas: r}, {Role: "web", Replicas: r}}}
	if got := half.Size(); got != 65536*65536 {
		t.Fatalf("unsaturated Size() = %d, want %d", got, 65536*65536)
	}
}
