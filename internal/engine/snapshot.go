package engine

// Memo-cache persistence: Snapshot serializes every completed cache
// entry, Restore merges a snapshot back into a (typically fresh) engine
// so a restarted service keeps its warmed cache. A snapshot is only
// valid for the exact evaluator configuration it was taken under, so
// the format carries the engine's fingerprint — the facade fingerprints
// the vulnerability dataset, patch policy and schedule — and Restore
// rejects any mismatch outright: results solved under different inputs
// must never be merged, silently serving stale models.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"redpatch/internal/redundancy"
)

// SnapshotVersion is the current snapshot format version. Restore
// rejects snapshots written by other versions. Version 2 switched the
// persisted security path detail to the factored evaluator's quotient
// paths (PathMetric.Count carrying replica multiplicities); version-1
// dumps hold the expanded per-instance detail and are rejected rather
// than mixed with factored results.
const SnapshotVersion = 2

var (
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format version.
	ErrSnapshotVersion = errors.New("engine: unsupported snapshot version")
	// ErrSnapshotFingerprint reports a snapshot taken under a different
	// evaluator configuration (vulnerability dataset, policy or
	// schedule).
	ErrSnapshotFingerprint = errors.New("engine: snapshot fingerprint mismatch")
	// ErrSnapshotCorrupt reports a snapshot whose entries are
	// internally inconsistent (key not matching its result's spec, or
	// an invalid spec).
	ErrSnapshotCorrupt = errors.New("engine: corrupt snapshot")
)

// snapshotFile is the on-disk shape.
type snapshotFile struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Entries     []snapshotEntry `json:"entries"`
}

// snapshotEntry is one solved design: the spec's cache key and the full
// evaluation result (whose Spec carries the solve-time name).
type snapshotEntry struct {
	Key    string            `json:"key"`
	Result redundancy.Result `json:"result"`
}

// Len reports the number of completed entries in the memo cache
// (in-flight solves excluded). It reads one atomic — metrics scrapes
// and flush-loop clean checks call it per scenario, and walking the
// cache under the mutex would stall concurrent evaluations for nothing.
func (g *Engine) Len() int { return int(g.done.Load()) }

// Snapshot writes every completed cache entry to w as versioned JSON
// and reports how many entries it wrote. In-flight solves are skipped,
// not waited for; erred entries never sit in the cache. Entries are
// sorted by key, so equal caches snapshot byte-identically.
func (g *Engine) Snapshot(w io.Writer) (int, error) {
	g.mu.Lock()
	entries := make([]snapshotEntry, 0, len(g.cache))
	for k, e := range g.cache {
		select {
		case <-e.ready:
			if e.err == nil {
				entries = append(entries, snapshotEntry{Key: k.spec, Result: e.res})
			}
		default: // still solving; its caller will cache it, not us
		}
	}
	g.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	enc := json.NewEncoder(w)
	if err := enc.Encode(snapshotFile{
		Version:     SnapshotVersion,
		Fingerprint: g.fp,
		Entries:     entries,
	}); err != nil {
		return 0, fmt.Errorf("engine: writing snapshot: %w", err)
	}
	return len(entries), nil
}

// Restore merges a snapshot into the cache and reports how many entries
// it added. The snapshot must carry this engine's format version and
// fingerprint — a dump taken under a different vulnerability dataset,
// policy or schedule fails with ErrSnapshotFingerprint and changes
// nothing. Entries whose key is already cached (or being solved) are
// skipped: live results win over persisted ones.
func (g *Engine) Restore(r io.Reader) (int, error) {
	var snap snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return 0, fmt.Errorf("engine: reading snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return 0, fmt.Errorf("%w: snapshot version %d, engine supports %d",
			ErrSnapshotVersion, snap.Version, SnapshotVersion)
	}
	if snap.Fingerprint != g.fp {
		return 0, fmt.Errorf("%w: snapshot taken under %q, engine is %q",
			ErrSnapshotFingerprint, snap.Fingerprint, g.fp)
	}
	// Validate before touching the cache: a corrupt snapshot must not
	// half-merge.
	for _, se := range snap.Entries {
		if err := se.Result.Spec.Validate(); err != nil {
			return 0, fmt.Errorf("%w: entry %q: %v", ErrSnapshotCorrupt, se.Key, err)
		}
		if got := se.Result.Spec.Key(); got != se.Key {
			return 0, fmt.Errorf("%w: entry keyed %q holds a result for %q",
				ErrSnapshotCorrupt, se.Key, got)
		}
	}

	restored := 0
	g.mu.Lock()
	for _, se := range snap.Entries {
		k := key{fp: g.fp, spec: se.Key}
		if _, exists := g.cache[k]; exists {
			continue
		}
		e := &entry{ready: make(chan struct{}), res: se.Result}
		close(e.ready)
		g.cache[k] = e
		restored++
	}
	g.mu.Unlock()
	g.done.Add(uint64(restored))
	return restored, nil
}
