package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"redpatch/internal/paperdata"
	"redpatch/internal/redundancy"
	"redpatch/internal/trace"
	"redpatch/internal/workpool"
)

// Range is an inclusive per-tier replica range. The zero value means
// "exactly one replica".
type Range struct {
	Min, Max int
}

func (r Range) normalized() Range {
	if r.Min < 1 {
		r.Min = 1
	}
	if r.Max < r.Min {
		r.Max = r.Min
	}
	return r
}

func (r Range) size() int { return r.Max - r.Min + 1 }

// TierSweep is one tier of a sweep: a logical role, an inclusive replica
// range, and the stack variants to enumerate. An empty Variants set
// sweeps the role's own stack only; listing variants (the empty string
// stands for the base stack) multiplies the space by the stack choices —
// the paper's §V heterogeneous-redundancy exploration.
type TierSweep struct {
	Role     string
	Replicas Range
	Variants []string
}

// options returns the tier's stack choices, defaulting to the base
// stack, with the role-equals-variant spelling normalized to "".
func (t TierSweep) options() []string {
	if len(t.Variants) == 0 {
		return []string{""}
	}
	out := make([]string, len(t.Variants))
	for i, v := range t.Variants {
		if v == t.Role {
			v = ""
		}
		out[i] = v
	}
	return out
}

// SweepShard restricts a sweep to one hash partition of its design
// space: the designs whose paperdata.ShardIndex(Key(), Count) equals
// Index. Shards are disjoint and cover the space, so a coordinator
// that runs every shard exactly once evaluates exactly the unsharded
// sweep — partitioning is by canonical spec key, independent of
// enumeration order or worker count.
type SweepShard struct {
	Index int
	Count int
}

// SweepSpec describes a design-space sweep: an ordered list of tier
// sweeps plus optional administrator bounds. When a bound is set,
// results failing it are dropped as they arrive and never accumulate.
type SweepSpec struct {
	Tiers []TierSweep
	// Scatter, when non-nil, applies the paper's Eq. 3 bounds.
	Scatter *redundancy.ScatterBounds
	// Multi, when non-nil, applies the paper's Eq. 4 bounds.
	Multi *redundancy.MultiBounds
	// Shard, when non-nil, enumerates only the designs of one hash
	// partition of the space. Size() still reports the full space — the
	// request-cap guard — while Designs() and the sweep total reflect
	// the shard.
	Shard *SweepShard
}

// FullSpace is the sweep of every classic design with 1..maxPerTier
// replicas in every tier, the paper's §V enumeration. maxPerTier < 1
// yields a spec that fails Validate — it must not silently shrink to a
// one-design sweep the way the Max-means-Min sentinel otherwise would.
func FullSpace(maxPerTier int) SweepSpec {
	r := Range{Min: 1, Max: maxPerTier}
	if maxPerTier < 1 {
		r = Range{Min: 1, Max: -1}
	}
	return ClassicSpace(r, r, r, r)
}

// ClassicSpace builds the paper's fixed four-tier sweep from per-tier
// replica ranges — the shape the deprecated 4-int API sweeps.
func ClassicSpace(dns, web, app, db Range) SweepSpec {
	return SweepSpec{Tiers: []TierSweep{
		{Role: paperdata.RoleDNS, Replicas: dns},
		{Role: paperdata.RoleWeb, Replicas: web},
		{Role: paperdata.RoleApp, Replicas: app},
		{Role: paperdata.RoleDB, Replicas: db},
	}}
}

// Validate rejects specs with no tiers, duplicate or empty roles,
// nonsensical ranges, and unknown or duplicate variant stacks.
func (s SweepSpec) Validate() error {
	if len(s.Tiers) == 0 {
		return fmt.Errorf("engine: sweep spec has no tiers")
	}
	roles := make(map[string]bool, len(s.Tiers))
	for _, t := range s.Tiers {
		if t.Role == "" {
			return fmt.Errorf("engine: sweep tier with empty role")
		}
		if roles[t.Role] {
			return fmt.Errorf("engine: duplicate sweep tier %q", t.Role)
		}
		roles[t.Role] = true
		if !paperdata.KnownStack(t.Role) {
			return fmt.Errorf("engine: sweep tier %q has no catalogued stack", t.Role)
		}
		if t.Replicas.Min < 0 || t.Replicas.Max < 0 {
			return fmt.Errorf("engine: negative %s range [%d,%d]", t.Role, t.Replicas.Min, t.Replicas.Max)
		}
		if t.Replicas.Max != 0 && t.Replicas.Max < t.Replicas.Min {
			return fmt.Errorf("engine: inverted %s range [%d,%d]", t.Role, t.Replicas.Min, t.Replicas.Max)
		}
		seen := make(map[string]bool, len(t.Variants))
		for _, v := range t.options() {
			if seen[v] {
				return fmt.Errorf("engine: tier %s lists variant %q twice", t.Role, v)
			}
			seen[v] = true
			if v != "" && !paperdata.KnownStack(v) {
				return fmt.Errorf("engine: tier %s sweeps unknown variant stack %q", t.Role, v)
			}
		}
	}
	if s.Shard != nil {
		if s.Shard.Count < 1 {
			return fmt.Errorf("engine: sweep shard count %d, need at least 1", s.Shard.Count)
		}
		if s.Shard.Index < 0 || s.Shard.Index >= s.Shard.Count {
			return fmt.Errorf("engine: sweep shard index %d outside [0,%d)", s.Shard.Index, s.Shard.Count)
		}
	}
	return nil
}

// Size is the number of designs the spec enumerates, saturating at
// math.MaxInt — ranges are request data in redpatchd, and a wrapped
// product would slip huge spaces past its size cap.
func (s SweepSpec) Size() int {
	size := 1
	for _, t := range s.Tiers {
		n := t.Replicas.normalized().size() * len(t.options())
		if n <= 0 {
			n = 1
		}
		if size > math.MaxInt/n {
			return math.MaxInt
		}
		size *= n
	}
	return size
}

// Designs enumerates the spec in lexicographic tier order: earlier tiers
// vary slowest, and within a tier replica counts vary before variant
// choices. Classic homogeneous sweeps keep the "1d2w2a1b" naming of
// redundancy.EnumerateDesigns; heterogeneous designs get role-keyed
// canonical names. A Shard keeps only its hash partition, preserving
// the enumeration order of the survivors.
func (s SweepSpec) Designs() []paperdata.DesignSpec {
	out := make([]paperdata.DesignSpec, 0, min(s.Size(), 1<<20))
	tiers := make([]paperdata.TierSpec, len(s.Tiers))
	var walk func(i int)
	walk = func(i int) {
		if i == len(s.Tiers) {
			spec := paperdata.DesignSpec{Tiers: append([]paperdata.TierSpec(nil), tiers...)}
			spec.Name = spec.CanonicalName()
			if s.Shard != nil && paperdata.ShardIndex(spec.Key(), s.Shard.Count) != s.Shard.Index {
				return
			}
			out = append(out, spec)
			return
		}
		t := s.Tiers[i]
		r := t.Replicas.normalized()
		for n := r.Min; n <= r.Max; n++ {
			for _, v := range t.options() {
				tiers[i] = paperdata.TierSpec{Role: t.Role, Replicas: n, Variant: v}
				walk(i + 1)
			}
		}
	}
	walk(0)
	return out
}

// keeps reports whether a result passes every configured bound.
func (s SweepSpec) keeps(r redundancy.Result) bool {
	if s.Scatter != nil && !s.Scatter.Satisfied(r) {
		return false
	}
	if s.Multi != nil && !s.Multi.Satisfied(r) {
		return false
	}
	return true
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Total is the number of designs enumerated (and, on success,
	// evaluated — possibly from cache).
	Total int
	// Kept holds the results passing the spec's bounds, in enumeration
	// order.
	Kept []redundancy.Result
	// Front is the Pareto front (minimize after-patch ASP, maximize COA)
	// over Kept, sorted by ascending ASP.
	Front []redundancy.Result
}

// Sweep evaluates the whole spec on the worker pool and returns the
// bound-filtered results plus their Pareto front. Rejected results are
// discarded as they arrive; the front is maintained incrementally, so
// peak memory is proportional to the kept set, not the space.
func (g *Engine) Sweep(ctx context.Context, spec SweepSpec) (SweepResult, error) {
	type kept struct {
		idx int
		res redundancy.Result
	}
	var ks []kept
	var front paretoFront
	total, err := g.sweep(ctx, spec, func(idx int, r redundancy.Result) error {
		ks = append(ks, kept{idx, r})
		front.insert(r)
		return nil
	}, nil)
	if err != nil {
		return SweepResult{}, err
	}
	// The collector sees completion order; restore enumeration order.
	sort.Slice(ks, func(i, j int) bool { return ks[i].idx < ks[j].idx })
	out := SweepResult{Total: total, Kept: make([]redundancy.Result, len(ks))}
	for i, k := range ks {
		out.Kept[i] = k.res
	}
	// ParetoFront both orders the front canonically and keeps the
	// dominance semantics in one place.
	out.Front = redundancy.ParetoFront(front.front)
	return out, nil
}

// SweepPareto sweeps the spec but retains only the incremental Pareto
// front — peak memory is the front, not the kept set. It returns the
// number of enumerated designs and the front sorted by ascending ASP.
func (g *Engine) SweepPareto(ctx context.Context, spec SweepSpec) (int, []redundancy.Result, error) {
	var front paretoFront
	total, err := g.sweep(ctx, spec, func(_ int, r redundancy.Result) error {
		front.insert(r)
		return nil
	}, nil)
	if err != nil {
		return 0, nil, err
	}
	return total, redundancy.ParetoFront(front.front), nil
}

// SweepFunc streams every result passing the spec's bounds to fn as it
// completes (completion order, not enumeration order). fn runs on a
// single collector goroutine, so it needs no locking; returning an error
// cancels the sweep. The total number of enumerated designs is returned.
func (g *Engine) SweepFunc(ctx context.Context, spec SweepSpec, fn func(redundancy.Result) error) (int, error) {
	return g.sweep(ctx, spec, func(_ int, r redundancy.Result) error { return fn(r) }, nil)
}

// SweepFuncProgress is SweepFunc plus a progress callback: progress runs
// on the collector goroutine after every completed evaluation — kept or
// bound-filtered — with the number of designs done so far and the total.
// Streaming surfaces (redpatchd's NDJSON sweep) derive their periodic
// progress events from it. A nil progress makes this exactly SweepFunc.
func (g *Engine) SweepFuncProgress(ctx context.Context, spec SweepSpec, fn func(redundancy.Result) error, progress func(done, total int)) (int, error) {
	return g.sweep(ctx, spec, func(_ int, r redundancy.Result) error { return fn(r) }, progress)
}

// sweep is the shared fan-out/collect loop: pool workers evaluate
// designs through the cache (workpool.Stream), the collector applies
// bound filtering and hands passing results (with their enumeration
// index) to emit. The whole sweep runs under an "engine.sweep" span;
// each design's evaluate span carries its queue wait — the time from
// sweep start until a pool worker picked the design up, the backlog
// signal admission control will shed against.
func (g *Engine) sweep(ctx context.Context, spec SweepSpec, emit func(int, redundancy.Result) error, progress func(done, total int)) (total int, err error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	designs := spec.Designs()
	ctx, sp := trace.Start(ctx, "engine.sweep",
		trace.Attr{Key: "designs", Value: len(designs)})
	defer func() { sp.EndErr(err) }()
	start := time.Now()
	done := 0
	var firstErr error
	// StreamCtx drops still-queued designs the moment ctx ends — workers
	// exit before picking the next item — so a cancelled sweep releases
	// the pool immediately instead of cycling every queued spec through
	// fn. The in-fn check below handles the pickup race (a worker that
	// grabbed its item just before the cancellation landed).
	workpool.StreamCtx(ctx, g.workers, designs,
		func(_ int, d paperdata.DesignSpec) (redundancy.Result, error) {
			if err := ctx.Err(); err != nil {
				return redundancy.Result{}, err
			}
			wait := time.Since(start)
			r, err := g.evaluateSpecTraced(ctx, d,
				trace.Attr{Key: "design", Value: d.Name},
				trace.Attr{Key: "queue_wait_ns", Value: wait.Nanoseconds()})
			if err != nil {
				err = fmt.Errorf("engine: design %s: %w", d, err)
			}
			return r, err
		},
		func(idx int, r redundancy.Result, err error) bool {
			if err != nil {
				firstErr = err
				return false
			}
			done++
			if progress != nil {
				progress(done, len(designs))
			}
			if spec.keeps(r) {
				if err := emit(idx, r); err != nil {
					firstErr = err
					return false
				}
			}
			return true
		})
	if firstErr != nil {
		return 0, firstErr
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return len(designs), nil
}

// paretoFront maintains a (minimize ASP, maximize COA) front under
// insertion: dominated newcomers are rejected, newcomers evict the
// members they dominate.
type paretoFront struct {
	front []redundancy.Result
}

func (p *paretoFront) insert(r redundancy.Result) {
	// keep compacts in place. The early return below cannot corrupt the
	// front: if some member dominates r, then (by transitivity of
	// dominance) no earlier member was dominated by r, so nothing has
	// been dropped and every write so far was an identity write.
	keep := p.front[:0]
	for _, s := range p.front {
		if redundancy.Dominates(s, r) {
			return // r dominated by an existing member; front unchanged
		}
		if !redundancy.Dominates(r, s) {
			keep = append(keep, s)
		}
	}
	p.front = append(keep, r)
}
