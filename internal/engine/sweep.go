package engine

import (
	"context"
	"fmt"
	"math"
	"sort"

	"redpatch/internal/paperdata"
	"redpatch/internal/redundancy"
	"redpatch/internal/workpool"
)

// Range is an inclusive per-tier replica range. The zero value means
// "exactly one replica".
type Range struct {
	Min, Max int
}

func (r Range) normalized() Range {
	if r.Min < 1 {
		r.Min = 1
	}
	if r.Max < r.Min {
		r.Max = r.Min
	}
	return r
}

func (r Range) size() int { return r.Max - r.Min + 1 }

// SweepSpec describes a design-space sweep: one replica range per tier
// plus optional administrator bounds. When a bound is set, results
// failing it are dropped as they arrive and never accumulate.
type SweepSpec struct {
	DNS, Web, App, DB Range
	// Scatter, when non-nil, applies the paper's Eq. 3 bounds.
	Scatter *redundancy.ScatterBounds
	// Multi, when non-nil, applies the paper's Eq. 4 bounds.
	Multi *redundancy.MultiBounds
}

// FullSpace is the sweep of every design with 1..maxPerTier replicas in
// every tier, the paper's §V enumeration. maxPerTier < 1 yields a spec
// that fails Validate — it must not silently shrink to a one-design
// sweep the way the Max-means-Min sentinel otherwise would.
func FullSpace(maxPerTier int) SweepSpec {
	if maxPerTier < 1 {
		r := Range{Min: 1, Max: -1}
		return SweepSpec{DNS: r, Web: r, App: r, DB: r}
	}
	r := Range{Min: 1, Max: maxPerTier}
	return SweepSpec{DNS: r, Web: r, App: r, DB: r}
}

// Validate rejects nonsensical ranges.
func (s SweepSpec) Validate() error {
	for _, tr := range []struct {
		name string
		r    Range
	}{{"dns", s.DNS}, {"web", s.Web}, {"app", s.App}, {"db", s.DB}} {
		if tr.r.Min < 0 || tr.r.Max < 0 {
			return fmt.Errorf("engine: negative %s range [%d,%d]", tr.name, tr.r.Min, tr.r.Max)
		}
		if tr.r.Max != 0 && tr.r.Max < tr.r.Min {
			return fmt.Errorf("engine: inverted %s range [%d,%d]", tr.name, tr.r.Min, tr.r.Max)
		}
	}
	return nil
}

// Size is the number of designs the spec enumerates, saturating at
// math.MaxInt — ranges are request data in redpatchd, and a wrapped
// product would slip huge spaces past its size cap.
func (s SweepSpec) Size() int {
	size := 1
	for _, r := range []Range{s.DNS, s.Web, s.App, s.DB} {
		n := r.normalized().size()
		if size > math.MaxInt/n {
			return math.MaxInt
		}
		size *= n
	}
	return size
}

// Designs enumerates the spec in lexicographic (dns, web, app, db) order
// with the same naming scheme as redundancy.EnumerateDesigns.
func (s SweepSpec) Designs() []paperdata.Design {
	dns, web, app, db := s.DNS.normalized(), s.Web.normalized(), s.App.normalized(), s.DB.normalized()
	out := make([]paperdata.Design, 0, min(s.Size(), 1<<20))
	for d := dns.Min; d <= dns.Max; d++ {
		for w := web.Min; w <= web.Max; w++ {
			for a := app.Min; a <= app.Max; a++ {
				for b := db.Min; b <= db.Max; b++ {
					out = append(out, paperdata.Design{
						Name: paperdata.DefaultName(d, w, a, b),
						DNS:  d, Web: w, App: a, DB: b,
					})
				}
			}
		}
	}
	return out
}

// keeps reports whether a result passes every configured bound.
func (s SweepSpec) keeps(r redundancy.Result) bool {
	if s.Scatter != nil && !s.Scatter.Satisfied(r) {
		return false
	}
	if s.Multi != nil && !s.Multi.Satisfied(r) {
		return false
	}
	return true
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Total is the number of designs enumerated (and, on success,
	// evaluated — possibly from cache).
	Total int
	// Kept holds the results passing the spec's bounds, in enumeration
	// order.
	Kept []redundancy.Result
	// Front is the Pareto front (minimize after-patch ASP, maximize COA)
	// over Kept, sorted by ascending ASP.
	Front []redundancy.Result
}

// Sweep evaluates the whole spec on the worker pool and returns the
// bound-filtered results plus their Pareto front. Rejected results are
// discarded as they arrive; the front is maintained incrementally, so
// peak memory is proportional to the kept set, not the space.
func (g *Engine) Sweep(ctx context.Context, spec SweepSpec) (SweepResult, error) {
	type kept struct {
		idx int
		res redundancy.Result
	}
	var ks []kept
	var front paretoFront
	total, err := g.sweep(ctx, spec, func(idx int, r redundancy.Result) error {
		ks = append(ks, kept{idx, r})
		front.insert(r)
		return nil
	})
	if err != nil {
		return SweepResult{}, err
	}
	// The collector sees completion order; restore enumeration order.
	sort.Slice(ks, func(i, j int) bool { return ks[i].idx < ks[j].idx })
	out := SweepResult{Total: total, Kept: make([]redundancy.Result, len(ks))}
	for i, k := range ks {
		out.Kept[i] = k.res
	}
	// ParetoFront both orders the front canonically and keeps the
	// dominance semantics in one place.
	out.Front = redundancy.ParetoFront(front.front)
	return out, nil
}

// SweepPareto sweeps the spec but retains only the incremental Pareto
// front — peak memory is the front, not the kept set. It returns the
// number of enumerated designs and the front sorted by ascending ASP.
func (g *Engine) SweepPareto(ctx context.Context, spec SweepSpec) (int, []redundancy.Result, error) {
	var front paretoFront
	total, err := g.sweep(ctx, spec, func(_ int, r redundancy.Result) error {
		front.insert(r)
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return total, redundancy.ParetoFront(front.front), nil
}

// SweepFunc streams every result passing the spec's bounds to fn as it
// completes (completion order, not enumeration order). fn runs on a
// single collector goroutine, so it needs no locking; returning an error
// cancels the sweep. The total number of enumerated designs is returned.
func (g *Engine) SweepFunc(ctx context.Context, spec SweepSpec, fn func(redundancy.Result) error) (int, error) {
	return g.sweep(ctx, spec, func(_ int, r redundancy.Result) error { return fn(r) })
}

// sweep is the shared fan-out/collect loop: pool workers evaluate
// designs through the cache (workpool.Stream), the collector applies
// bound filtering and hands passing results (with their enumeration
// index) to emit.
func (g *Engine) sweep(ctx context.Context, spec SweepSpec, emit func(int, redundancy.Result) error) (int, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	designs := spec.Designs()
	var firstErr error
	workpool.Stream(g.workers, designs,
		func(_ int, d paperdata.Design) (redundancy.Result, error) {
			if err := ctx.Err(); err != nil {
				return redundancy.Result{}, err
			}
			r, err := g.Evaluate(d)
			if err != nil {
				err = fmt.Errorf("engine: design %s: %w", d, err)
			}
			return r, err
		},
		func(idx int, r redundancy.Result, err error) bool {
			if err != nil {
				firstErr = err
				return false
			}
			if spec.keeps(r) {
				if err := emit(idx, r); err != nil {
					firstErr = err
					return false
				}
			}
			return true
		})
	if firstErr != nil {
		return 0, firstErr
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return len(designs), nil
}

// paretoFront maintains a (minimize ASP, maximize COA) front under
// insertion: dominated newcomers are rejected, newcomers evict the
// members they dominate.
type paretoFront struct {
	front []redundancy.Result
}

func (p *paretoFront) insert(r redundancy.Result) {
	// keep compacts in place. The early return below cannot corrupt the
	// front: if some member dominates r, then (by transitivity of
	// dominance) no earlier member was dominated by r, so nothing has
	// been dropped and every write so far was an identity write.
	keep := p.front[:0]
	for _, s := range p.front {
		if redundancy.Dominates(s, r) {
			return // r dominated by an existing member; front unchanged
		}
		if !redundancy.Dominates(r, s) {
			keep = append(keep, s)
		}
	}
	p.front = append(keep, r)
}
