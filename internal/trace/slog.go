package trace

import (
	"context"
	"log/slog"
)

// LogHandler wraps a slog.Handler and stamps trace_id / span_id onto
// every record whose context carries a live span, so daemon logs and
// /debug/traces dumps join on the same IDs.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps h.
func NewLogHandler(h slog.Handler) *LogHandler { return &LogHandler{inner: h} }

func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *LogHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := FromContext(ctx); s != nil {
		r.AddAttrs(
			slog.String("trace_id", s.TraceID()),
			slog.String("span_id", s.SpanID()),
		)
	}
	return h.inner.Handle(ctx, r)
}

func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}
