package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestDisabledPathIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := Start(ctx, "root")
	if s != nil {
		t.Fatalf("Start without tracer returned a span: %+v", s)
	}
	if ctx2 != ctx {
		t.Fatal("Start without tracer should return ctx unchanged")
	}
	// All methods must be nil-safe.
	s.SetAttr("k", "v")
	s.End()
	s.EndErr(errors.New("boom"))
	if got := s.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if FromContext(ctx2) != nil {
		t.Fatal("FromContext on plain ctx should be nil")
	}
}

func TestDisabledStartAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		_, s := Start(ctx, "noop")
		s.SetAttr("k", 1)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled Start allocated %v times per run, want 0", allocs)
	}
}

func TestSpanTreeAndRing(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "request", Attr{Key: "route", Value: "/v2/evaluate"})
	cctx, child := Start(ctx, "engine.evaluate")
	_, grand := Start(cctx, "solver.availability")
	grand.SetAttr("solver", "factored")
	grand.End()
	child.End()
	root.End()

	if n := tr.Len(); n != 1 {
		t.Fatalf("ring has %d traces, want 1", n)
	}
	got := tr.Recent()[0]
	if got.Root != "request" {
		t.Fatalf("trace root = %q, want request", got.Root)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(got.Spans))
	}
	// End order: deepest first.
	if got.Spans[0].Name != "solver.availability" || got.Spans[2].Name != "request" {
		t.Fatalf("unexpected span order: %q, %q, %q",
			got.Spans[0].Name, got.Spans[1].Name, got.Spans[2].Name)
	}
	// Parent/child links within one trace.
	byName := map[string]SpanData{}
	for _, s := range got.Spans {
		if s.TraceID != got.TraceID {
			t.Fatalf("span %q has trace ID %q, want %q", s.Name, s.TraceID, got.TraceID)
		}
		byName[s.Name] = s
	}
	if byName["engine.evaluate"].ParentID != byName["request"].SpanID {
		t.Fatal("engine span not parented to request span")
	}
	if byName["solver.availability"].ParentID != byName["engine.evaluate"].SpanID {
		t.Fatal("solver span not parented to engine span")
	}
	if byName["request"].ParentID != "" {
		t.Fatal("root span should have no parent")
	}
	if v, ok := byName["solver.availability"].Attr("solver"); !ok || v != "factored" {
		t.Fatalf("solver attr = %v, %v", v, ok)
	}
	if byName["request"].Duration <= 0 {
		t.Fatal("root duration should be positive")
	}
}

func TestRingBoundAndOrder(t *testing.T) {
	tr := New(Options{Capacity: 3})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, s := Start(ctx, fmt.Sprintf("t%d", i))
		s.End()
	}
	got := tr.Recent()
	if len(got) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(got))
	}
	for i, want := range []string{"t4", "t3", "t2"} {
		if got[i].Root != want {
			t.Fatalf("Recent()[%d].Root = %q, want %q (newest first)", i, got[i].Root, want)
		}
	}
}

func TestMaxSpansDropCount(t *testing.T) {
	tr := New(Options{MaxSpans: 2})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	for i := 0; i < 4; i++ {
		_, s := Start(ctx, "child")
		s.End()
	}
	root.End()
	got := tr.Recent()[0]
	// 2 children fill the bound, 2 more drop — but the root is always
	// retained past it: a dump without the request span is unreadable.
	if len(got.Spans) != 3 || got.Dropped != 2 {
		t.Fatalf("spans=%d dropped=%d, want 3 and 2", len(got.Spans), got.Dropped)
	}
	if last := got.Spans[len(got.Spans)-1]; last.Name != "root" {
		t.Fatalf("last retained span = %q, want the root", last.Name)
	}
}

func TestEndErrStatuses(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)

	cases := []struct {
		err  error
		want string
	}{
		{nil, StatusOK},
		{context.Canceled, StatusCancelled},
		{context.DeadlineExceeded, StatusCancelled},
		{fmt.Errorf("wrap: %w", context.Canceled), StatusCancelled},
		{errors.New("boom"), StatusError},
	}
	for _, c := range cases {
		_, s := Start(ctx, "op")
		s.EndErr(c.err)
	}
	recent := tr.Recent()
	if len(recent) != len(cases) {
		t.Fatalf("got %d traces, want %d", len(recent), len(cases))
	}
	// Recent is newest first; cases were recorded oldest first.
	for i, c := range cases {
		got := recent[len(cases)-1-i].Spans[0]
		if got.Status != c.want {
			t.Fatalf("case %d (err=%v): status %q, want %q", i, c.err, got.Status, c.want)
		}
		if c.want == StatusError {
			if v, ok := got.Attr("error"); !ok || v != "boom" {
				t.Fatalf("error attr = %v, %v", v, ok)
			}
		}
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "once")
	s.End()
	s.End()
	s.EndErr(errors.New("late"))
	if n := tr.Len(); n != 1 {
		t.Fatalf("double End produced %d traces, want 1", n)
	}
	if len(tr.Recent()[0].Spans) != 1 {
		t.Fatal("double End recorded extra spans")
	}
}

func TestOnEndObserver(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	tr := New(Options{OnEnd: func(d SpanData) {
		mu.Lock()
		seen = append(seen, d.Name)
		mu.Unlock()
	}})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, child := Start(ctx, "child")
	child.End()
	root.End()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != "child" || seen[1] != "root" {
		t.Fatalf("OnEnd saw %v", seen)
	}
}

func TestCollectLiveTrace(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, child := Start(ctx, "child")
	child.End()
	// Root still open: Collect must surface the finished child.
	spans := tr.Collect(root.TraceID())
	if len(spans) != 1 || spans[0].Name != "child" {
		t.Fatalf("Collect(live) = %+v, want the child span", spans)
	}
	root.End()
	spans = tr.Collect(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("Collect(done) returned %d spans, want 2", len(spans))
	}
	if tr.Collect("ffffffffffffffffffffffffffffffff") != nil {
		t.Fatal("Collect(unknown) should be nil")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "client")
	tp := s.SpanContext().Traceparent()
	sc, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", tp)
	}
	if sc.TraceID != s.TraceID() || sc.SpanID != s.SpanID() {
		t.Fatalf("round trip mismatch: %+v vs %s/%s", sc, s.TraceID(), s.SpanID())
	}
	s.End()
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // invalid version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Fatalf("ParseTraceparent(%q) accepted, want reject", v)
		}
	}
	good := []string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00",
		" 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01 ",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future",
	}
	for _, v := range good {
		if _, ok := ParseTraceparent(v); !ok {
			t.Fatalf("ParseTraceparent(%q) rejected, want accept", v)
		}
	}
}

func TestExtractJoinsRemoteTrace(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	const remoteTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const remoteSpan = "00f067aa0ba902b7"
	r.Header.Set(TraceparentHeader, "00-"+remoteTrace+"-"+remoteSpan+"-01")

	ctx = Extract(ctx, r)
	_, s := Start(ctx, "server")
	if s.TraceID() != remoteTrace {
		t.Fatalf("span trace ID = %q, want remote %q", s.TraceID(), remoteTrace)
	}
	s.End()
	got := tr.Recent()[0]
	if got.Spans[0].ParentID != remoteSpan {
		t.Fatalf("root parent = %q, want remote span %q", got.Spans[0].ParentID, remoteSpan)
	}
}

func TestExtractIgnoresInvalid(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.Header.Set(TraceparentHeader, "garbage")
	ctx = Extract(ctx, r)
	_, s := Start(ctx, "server")
	if !validHexT(t, s.TraceID(), 32) {
		t.Fatalf("fresh trace ID malformed: %q", s.TraceID())
	}
	s.End()
}

func validHexT(t *testing.T, s string, n int) bool {
	t.Helper()
	return validHex(s, n)
}

func TestInject(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "client")
	h := http.Header{}
	Inject(s, h)
	if got := h.Get(TraceparentHeader); got != s.SpanContext().Traceparent() {
		t.Fatalf("injected %q", got)
	}
	s.End()
	// Nil span: no header.
	h2 := http.Header{}
	Inject(nil, h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatal("nil span should inject nothing")
	}
}

func TestLogHandlerAddsIDs(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	ctx, s := Start(ctx, "op")
	defer s.End()

	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))
	logger.InfoContext(ctx, "hello", "k", "v")

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log output not JSON: %v\n%s", err, buf.String())
	}
	if rec["trace_id"] != s.TraceID() || rec["span_id"] != s.SpanID() {
		t.Fatalf("log record missing IDs: %v", rec)
	}

	// Without a span: no IDs, no panic.
	buf.Reset()
	logger.InfoContext(context.Background(), "plain")
	var rec2 map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec2); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec2["trace_id"]; ok {
		t.Fatal("plain record should carry no trace_id")
	}
}

func TestConcurrentTraces(t *testing.T) {
	tr := New(Options{Capacity: 64})
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, root := Start(ctx, "root")
			for j := 0; j < 8; j++ {
				_, s := Start(c, "child")
				s.SetAttr("j", j)
				s.End()
			}
			root.End()
		}()
	}
	wg.Wait()
	if n := tr.Len(); n != 32 {
		t.Fatalf("ring has %d traces, want 32", n)
	}
	for _, tr := range tr.Recent() {
		if len(tr.Spans) != 9 {
			t.Fatalf("trace has %d spans, want 9", len(tr.Spans))
		}
	}
}

func TestIDsAreUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := randomTraceID()
		if !validHex(id, 32) {
			t.Fatalf("bad trace ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
		sid := randomSpanID()
		if !validHex(sid, 16) {
			t.Fatalf("bad span ID %q", sid)
		}
	}
}

func TestRootDurationCoversChildren(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, child := Start(ctx, "child")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	got := tr.Recent()[0]
	var rootD, childD time.Duration
	for _, s := range got.Spans {
		if s.Name == "root" {
			rootD = s.Duration
		} else {
			childD = s.Duration
		}
	}
	if rootD < childD {
		t.Fatalf("root duration %v < child %v", rootD, childD)
	}
}
