// Package trace is a dependency-free span tracer for the evaluation
// pipeline: redpatchd starts a root span per request, the engine and the
// solvers hang child spans off it through context.Context, and a bounded
// in-memory ring keeps the most recent completed traces for GET
// /debug/traces and the ?explain=1 provenance block. Nothing here
// imports anything beyond the standard library, and nothing is exported
// off-process — the ring is the whole storage story.
//
// Spans measure with the monotonic clock (time.Since on the Start
// reading), carry free-form attributes, and link parent to child by span
// ID within one trace ID. W3C trace context interop lives in http.go:
// inbound `traceparent` headers join a request onto the caller's trace,
// and Inject propagates the current span outward.
//
// The disabled path is free: with no Tracer in the context, Start
// returns the context unchanged and a nil *Span, and every method on a
// nil *Span is a no-op — callers never branch on "is tracing on", and
// the hot solver loops pay zero allocations when it is off.
//
// A live Span is owned by the call path that started it: SetAttr and
// End are unsynchronized and must not race on one span. Distinct spans
// of one trace are independent — they may start and end on any
// goroutines concurrently (the sweep workers do exactly that), and the
// per-trace record they share is internally synchronized.
package trace

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Options; see New. The bounds are deliberately modest:
// retained spans are pointer-dense (IDs, names, attribute values), so
// every live garbage-collection cycle rescans the whole ring — the
// dominant cost of leaving tracing always-on. 32 requests of up to 65
// retained spans is ample for a debug dump while keeping that rescan
// in the tens of kilobytes.
const (
	DefaultCapacity = 32
	DefaultMaxSpans = 64
)

// Attr is one span attribute. Values should be JSON-encodable — they
// are rendered verbatim into /debug/traces dumps and explain blocks.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span statuses. A span ends StatusOK unless EndErr saw an error;
// context cancellation gets its own status so cancelled requests are
// distinguishable from genuine failures in the ring.
const (
	StatusOK        = "ok"
	StatusError     = "error"
	StatusCancelled = "cancelled"
)

// SpanData is one finished span as it appears in dumps: immutable,
// JSON-shaped, detached from the live Span that produced it.
type SpanData struct {
	TraceID  string        `json:"traceId"`
	SpanID   string        `json:"spanId"`
	ParentID string        `json:"parentId,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Status   string        `json:"status"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute and whether it is set.
func (d SpanData) Attr(key string) (any, bool) {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Trace is one completed request: every finished span sharing a trace
// ID, in end order (children end before their parents, so the root is
// last). Dropped counts spans discarded past the per-trace bound.
type Trace struct {
	TraceID string     `json:"traceId"`
	Root    string     `json:"root"`
	Start   time.Time  `json:"start"`
	Spans   []SpanData `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`
}

// Options configures a Tracer. Zero values select the defaults.
type Options struct {
	// Capacity bounds the ring of recent completed traces (default 32).
	Capacity int
	// MaxSpans bounds the spans recorded per trace (default 64); spans
	// past the bound still run (and reach OnEnd) but are not retained —
	// except the root span, which always is, so an overflowed dump still
	// shows what the trace was.
	MaxSpans int
	// OnEnd, when set, observes every finished span — the hook redpatchd
	// uses to derive latency histograms from span durations. It runs on
	// the goroutine calling End and must be safe for concurrent use.
	OnEnd func(SpanData)
}

// Tracer owns the recent-trace ring and mints spans. It is safe for
// concurrent use.
type Tracer struct {
	capacity int
	maxSpans int
	onEnd    func(SpanData)

	mu     sync.Mutex
	active map[string]*traceRec // live traces by trace ID
	ring   []*Trace             // completed traces, oldest first at head
	head   int                  // next ring slot to overwrite
	filled bool
}

// traceRec accumulates one live trace's finished spans until its last
// open span ends and moves it into the ring. Child spans reach their
// record through the parent span's pointer — only roots touch the
// tracer's map — so the per-span cost on the hot solver path is one
// atomic add and one short critical section on the record's own lock.
type traceRec struct {
	traceID string
	start   time.Time
	open    atomic.Int64 // live spans keeping the record active

	mu      sync.Mutex // guards spans and dropped
	spans   []SpanData
	dropped int
}

// New builds a tracer.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = DefaultMaxSpans
	}
	return &Tracer{
		capacity: opts.Capacity,
		maxSpans: opts.MaxSpans,
		onEnd:    opts.OnEnd,
		active:   make(map[string]*traceRec),
		ring:     make([]*Trace, 0, opts.Capacity),
	}
}

// Span is one live span. The zero of usefulness is nil: every method
// no-ops on a nil receiver, so disabled tracing costs one pointer test.
// See the package comment for the single-owner rule.
type Span struct {
	tracer  *Tracer
	rec     *traceRec
	traceID string
	spanID  string
	parent  string
	name    string
	start   time.Time // monotonic-bearing
	attrs   []Attr
	ended   bool
}

// attrsPrealloc sizes attribute buffers to the deepest count the
// pipeline produces (an engine evaluate span accumulates seven), so
// SetAttr almost never regrows.
const attrsPrealloc = 8

// copyAttrs moves Start's variadic attributes into a heap buffer with
// room to grow. Copying — rather than retaining the argument slice —
// keeps the call-site array stack-allocatable, so a traced call with
// constant attributes costs the caller nothing when tracing is off.
// The buffer is deliberately separate from the Span: finished-span
// views of it go into the ring, and an attribute slab pins two hundred
// bytes less than a whole Span would.
func copyAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	buf := make([]Attr, len(attrs), max(len(attrs), attrsPrealloc))
	copy(buf, attrs)
	return buf
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	remoteKey
)

// WithTracer returns a context carrying the tracer; Start calls under
// it record spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the current span, or nil when tracing is off or
// no span has been started.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextWithRemote marks the context with a remote parent (an inbound
// W3C traceparent): the next Start joins that trace as a child of the
// remote span instead of minting a fresh trace ID.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// Start begins a span named name: a child of the context's current span
// when one exists, otherwise a new root (joining a remote parent from
// ContextWithRemote when present). The returned context carries the new
// span for nested Starts. Without a tracer in the context, Start
// returns ctx unchanged and a nil span — the zero-cost disabled path.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		s := &Span{
			tracer:  parent.tracer,
			rec:     parent.rec,
			traceID: parent.traceID,
			spanID:  randomSpanID(),
			parent:  parent.spanID,
			name:    name,
			start:   time.Now(),
			attrs:   copyAttrs(attrs),
		}
		s.rec.open.Add(1)
		return context.WithValue(ctx, spanKey, s), s
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	traceID, parentID := "", ""
	if sc, ok := ctx.Value(remoteKey).(SpanContext); ok {
		traceID, parentID = sc.TraceID, sc.SpanID
	} else {
		traceID = randomTraceID()
	}
	s := t.startRoot(traceID, parentID, name, attrs)
	return context.WithValue(ctx, spanKey, s), s
}

// startRoot mints a root span and opens (or, for a shared remote trace
// ID, joins) its trace record.
func (t *Tracer) startRoot(traceID, parentID, name string, attrs []Attr) *Span {
	s := &Span{
		tracer:  t,
		traceID: traceID,
		spanID:  randomSpanID(),
		parent:  parentID,
		name:    name,
		start:   time.Now(),
		attrs:   copyAttrs(attrs),
	}
	t.mu.Lock()
	rec, ok := t.active[traceID]
	if !ok {
		rec = &traceRec{traceID: traceID, start: s.start}
		rec.spans = make([]SpanData, 0, 8)
		t.active[traceID] = rec
	}
	rec.open.Add(1)
	t.mu.Unlock()
	s.rec = rec
	return s
}

// SetAttr records (or appends) one attribute on a live span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make([]Attr, 0, attrsPrealloc)
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// TraceID returns the span's trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// SpanContext returns the span's W3C identity for propagation.
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// End finishes the span with StatusOK. Idempotent; nil-safe.
func (s *Span) End() { s.end(StatusOK) }

// EndErr finishes the span with a status derived from err: nil ends OK,
// context cancellation (or deadline) ends StatusCancelled, anything
// else ends StatusError with the message attached as an "error" attr.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	switch {
	case err == nil:
		s.end(StatusOK)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.end(StatusCancelled)
	default:
		s.SetAttr("error", err.Error())
		s.end(StatusError)
	}
}

func (s *Span) end(status string) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	attrs := s.attrs
	if len(attrs) == 0 {
		attrs = nil // don't pin the Span via an empty view of its buffer
	}
	d := SpanData{
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Status:   status,
		Attrs:    attrs,
	}
	t := s.tracer
	if t.onEnd != nil {
		t.onEnd(d)
	}
	rec := s.rec
	rec.mu.Lock()
	kept := len(rec.spans) < t.maxSpans
	if kept {
		rec.spans = append(rec.spans, d)
	} else {
		rec.dropped++
	}
	rec.mu.Unlock()
	// Record before decrement: whichever span observes the count hit
	// zero is then guaranteed (by the record lock it re-takes in
	// complete) to see every other span already appended.
	if rec.open.Add(-1) == 0 {
		t.complete(rec, d, kept)
	}
}

// complete moves a finished trace record into the ring. The span that
// closed the trace is by construction the outermost one the record saw
// — the request's root — and a dump without it is unreadable, so it is
// re-admitted even when the trace overflowed maxSpans.
func (t *Tracer) complete(rec *traceRec, last SpanData, kept bool) {
	t.mu.Lock()
	if t.active[rec.traceID] != rec {
		// Already emitted — a stray span ended after its trace closed.
		t.mu.Unlock()
		return
	}
	if rec.open.Load() != 0 {
		// A second root joined the shared (remote) trace ID between the
		// zero observation and now; its end completes the record instead.
		t.mu.Unlock()
		return
	}
	delete(t.active, rec.traceID)
	t.mu.Unlock()

	rec.mu.Lock()
	if !kept {
		rec.spans = append(rec.spans, last)
		rec.dropped--
	}
	done := &Trace{
		TraceID: rec.traceID,
		Root:    last.Name,
		Start:   rec.start,
		Spans:   rec.spans,
		Dropped: rec.dropped,
	}
	rec.mu.Unlock()

	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, done)
	} else {
		t.ring[t.head] = done
		t.head = (t.head + 1) % t.capacity
		t.filled = true
	}
	t.mu.Unlock()
}

// Recent returns the completed traces in the ring, newest first.
func (t *Tracer) Recent() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	// Newest is just before head once the ring has wrapped; before that,
	// the slice is in append (oldest-first) order.
	n := len(t.ring)
	for i := 0; i < n; i++ {
		idx := (t.head - 1 - i + 2*n) % n
		if !t.filled {
			idx = n - 1 - i
		}
		out = append(out, *t.ring[idx])
	}
	return out
}

// Collect returns the finished spans of a trace — live (root still
// open) or completed — in end order. The explain surface reads a
// request's own child spans this way before the root ends.
func (t *Tracer) Collect(traceID string) []SpanData {
	t.mu.Lock()
	rec := t.active[traceID]
	t.mu.Unlock()
	if rec != nil {
		rec.mu.Lock()
		out := append([]SpanData(nil), rec.spans...)
		rec.mu.Unlock()
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.ring {
		if tr.TraceID == traceID {
			return append([]SpanData(nil), tr.Spans...)
		}
	}
	return nil
}

// Len reports the number of completed traces retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// randomTraceID mints a 16-byte lowercase-hex W3C trace ID; the
// all-zero value is invalid per spec, so zero draws are redrawn.
func randomTraceID() string {
	var hi, lo uint64
	for hi == 0 && lo == 0 {
		hi, lo = rand.Uint64(), rand.Uint64()
	}
	var b [32]byte
	putHex(b[:16], hi)
	putHex(b[16:], lo)
	return string(b[:])
}

// randomSpanID mints an 8-byte lowercase-hex span ID (nonzero).
func randomSpanID() string {
	var v uint64
	for v == 0 {
		v = rand.Uint64()
	}
	var b [16]byte
	putHex(b[:], v)
	return string(b[:])
}

const hexDigits = "0123456789abcdef"

// putHex renders v as big-endian lowercase hex into dst (len 16).
func putHex(dst []byte, v uint64) {
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}
