package trace

import (
	"context"
	"net/http"
	"strings"
)

// TraceparentHeader is the W3C trace-context header name.
const TraceparentHeader = "traceparent"

// SpanContext is the propagated identity of a span: the W3C trace ID
// (32 lowercase hex) and span/parent ID (16 lowercase hex).
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both IDs are well-formed and nonzero.
func (sc SpanContext) Valid() bool {
	return validHex(sc.TraceID, 32) && validHex(sc.SpanID, 16)
}

// Traceparent renders the context as a version-00 traceparent value
// with the sampled flag set, or "" when invalid.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// version 00 (and forward-compatibly any known-length future version
// except ff) and rejects all-zero IDs, per the spec.
func ParseTraceparent(v string) (SpanContext, bool) {
	v = strings.TrimSpace(v)
	// version "-" traceid "-" spanid "-" flags, possibly with future
	// fields appended after the flags for versions > 00.
	if len(v) < 55 {
		return SpanContext{}, false
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	version := v[:2]
	if !isHex(version) || version == "ff" {
		return SpanContext{}, false
	}
	if version == "00" && len(v) != 55 {
		return SpanContext{}, false
	}
	if len(v) > 55 && v[55] != '-' {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: v[3:35], SpanID: v[36:52]}
	if !sc.Valid() || !isHex(v[53:55]) {
		return SpanContext{}, false
	}
	return sc, true
}

// Extract reads an inbound traceparent off the request and, when one is
// present and valid, marks the context so the next Start joins the
// caller's trace. Invalid or absent headers leave ctx unchanged.
func Extract(ctx context.Context, r *http.Request) context.Context {
	sc, ok := ParseTraceparent(r.Header.Get(TraceparentHeader))
	if !ok {
		return ctx
	}
	return ContextWithRemote(ctx, sc)
}

// Inject writes the current span's traceparent onto outbound headers;
// a nil span (tracing off) writes nothing.
func Inject(s *Span, h http.Header) {
	if tp := s.SpanContext().Traceparent(); tp != "" {
		h.Set(TraceparentHeader, tp)
	}
}

func validHex(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}
