// Package sparse implements the compressed sparse row (CSR) matrices used
// by the CTMC solvers. Infinitesimal generator matrices of stochastic
// reward nets are extremely sparse (a few transitions per state), so the
// iterative steady-state and transient solvers in internal/ctmc operate on
// this representation rather than on dense matrices.
package sparse

import (
	"fmt"
	"sort"
)

// Entry is a single coordinate-format matrix element.
type Entry struct {
	Row, Col int
	Val      float64
}

// Builder accumulates coordinate-format entries and assembles them into a
// CSR matrix. Duplicate (row, col) entries are summed during Build, which
// lets callers add transition rates one firing at a time.
type Builder struct {
	rows, cols int
	entries    []Entry
}

// NewBuilder returns a Builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add records the value v at (row, col). Values at repeated coordinates
// accumulate. Add panics if the coordinate is out of range, since that is
// always a programming error in the model generators.
func (b *Builder) Add(row, col int, v float64) {
	if row < 0 || row >= b.rows || col < 0 || col >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d matrix", row, col, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, Entry{Row: row, Col: col, Val: v})
}

// Build assembles the accumulated entries into a CSR matrix, summing
// duplicates and dropping entries that cancel to exactly zero.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].Row != b.entries[j].Row {
			return b.entries[i].Row < b.entries[j].Row
		}
		return b.entries[i].Col < b.entries[j].Col
	})

	m := &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int, b.rows+1),
	}
	for i := 0; i < len(b.entries); {
		j := i
		sum := 0.0
		for ; j < len(b.entries) && b.entries[j].Row == b.entries[i].Row && b.entries[j].Col == b.entries[i].Col; j++ {
			sum += b.entries[j].Val
		}
		if sum != 0 {
			m.colIdx = append(m.colIdx, b.entries[i].Col)
			m.vals = append(m.vals, sum)
			m.rowPtr[b.entries[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < b.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// CSR is an immutable matrix in compressed sparse row format.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Dims returns the number of rows and columns.
func (m *CSR) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of stored (non-zero) entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the value at (row, col), or 0 when no entry is stored there.
// It performs a binary search within the row and is intended for tests and
// spot checks, not for inner solver loops.
func (m *CSR) At(row, col int) float64 {
	if row < 0 || row >= m.rows || col < 0 || col >= m.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) outside %dx%d matrix", row, col, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[row], m.rowPtr[row+1]
	i := sort.SearchInts(m.colIdx[lo:hi], col) + lo
	if i < hi && m.colIdx[i] == col {
		return m.vals[i]
	}
	return 0
}

// Row invokes fn for each stored entry (col, val) of the given row.
func (m *CSR) Row(row int, fn func(col int, val float64)) {
	for i := m.rowPtr[row]; i < m.rowPtr[row+1]; i++ {
		fn(m.colIdx[i], m.vals[i])
	}
}

// MulVec computes dst = m * x (matrix times column vector). dst and x must
// have lengths equal to the matrix dimensions; dst is overwritten.
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic("sparse: MulVec dimension mismatch")
	}
	for r := 0; r < m.rows; r++ {
		var sum float64
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			sum += m.vals[i] * x[m.colIdx[i]]
		}
		dst[r] = sum
	}
}

// MulVecLeft computes dst = x * m (row vector times matrix). dst and x must
// have lengths equal to the matrix dimensions; dst is overwritten.
func (m *CSR) MulVecLeft(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic("sparse: MulVecLeft dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			dst[m.colIdx[i]] += xr * m.vals[i]
		}
	}
}

// Transpose returns a new CSR matrix that is the transpose of m.
func (m *CSR) Transpose() *CSR {
	b := NewBuilder(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			b.Add(m.colIdx[i], r, m.vals[i])
		}
	}
	return b.Build()
}

// Dense expands the matrix into a row-major dense [][]float64. Intended
// for tests and spot checks; the solvers use the flat-backed Dense type
// instead.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.rows)
	for r := range d {
		d[r] = make([]float64, m.cols)
	}
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			d[r][m.colIdx[i]] = m.vals[i]
		}
	}
	return d
}

// Dense is a dense matrix over a single flat row-major backing slice. The
// direct CTMC solvers assemble their augmented elimination systems in one:
// one allocation per solve instead of one per row, and Reset lets a solver
// workspace recycle the backing across solves so repeated solves allocate
// nothing once the high-water mark is reached.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows x cols flat dense matrix.
func NewDense(rows, cols int) *Dense {
	d := &Dense{}
	d.Reset(rows, cols)
	return d
}

// Reset resizes the matrix to rows x cols and zeroes it, growing the flat
// backing only when the requested size exceeds its capacity.
func (d *Dense) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dense dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(d.data) < n {
		d.data = make([]float64, n)
	} else {
		d.data = d.data[:n]
		for i := range d.data {
			d.data[i] = 0
		}
	}
	d.rows, d.cols = rows, cols
}

// Dims returns the number of rows and columns.
func (d *Dense) Dims() (rows, cols int) { return d.rows, d.cols }

// Row returns the i-th row as a slice view into the flat backing; writes
// through it mutate the matrix.
func (d *Dense) Row(i int) []float64 {
	if i < 0 || i >= d.rows {
		panic(fmt.Sprintf("sparse: row %d outside %dx%d matrix", i, d.rows, d.cols))
	}
	return d.data[i*d.cols : (i+1)*d.cols]
}

// At returns the value at (row, col).
func (d *Dense) At(row, col int) float64 {
	d.check(row, col)
	return d.data[row*d.cols+col]
}

// Set stores v at (row, col).
func (d *Dense) Set(row, col int, v float64) {
	d.check(row, col)
	d.data[row*d.cols+col] = v
}

// Add accumulates v at (row, col).
func (d *Dense) Add(row, col int, v float64) {
	d.check(row, col)
	d.data[row*d.cols+col] += v
}

func (d *Dense) check(row, col int) {
	if row < 0 || row >= d.rows || col < 0 || col >= d.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) outside %dx%d matrix", row, col, d.rows, d.cols))
	}
}

// RowSums returns the sum of each row's stored values. CTMC generator
// validation uses it: every row of a well-formed generator sums to zero.
func (m *CSR) RowSums() []float64 {
	sums := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			sums[r] += m.vals[i]
		}
	}
	return sums
}
