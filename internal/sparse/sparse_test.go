package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTestMatrix() *CSR {
	// | 1 0 2 |
	// | 0 3 0 |
	b := NewBuilder(2, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	b.Add(1, 1, 3)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	m := buildTestMatrix()
	rows, cols := m.Dims()
	if rows != 2 || cols != 3 {
		t.Fatalf("Dims = (%d,%d), want (2,3)", rows, cols)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	tests := []struct {
		r, c int
		want float64
	}{
		{0, 0, 1}, {0, 1, 0}, {0, 2, 2},
		{1, 0, 0}, {1, 1, 3}, {1, 2, 0},
	}
	for _, tt := range tests {
		if got := m.At(tt.r, tt.c); got != tt.want {
			t.Errorf("At(%d,%d) = %v, want %v", tt.r, tt.c, got, tt.want)
		}
	}
}

func TestBuilderAccumulatesDuplicates(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 1.5)
	b.Add(0, 0, 2.5)
	m := b.Build()
	if got := m.At(0, 0); got != 4 {
		t.Errorf("At(0,0) = %v, want 4", got)
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", m.NNZ())
	}
}

func TestBuilderDropsCancelledEntries(t *testing.T) {
	b := NewBuilder(1, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, -1)
	b.Add(0, 1, 5)
	m := b.Build()
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (cancelled entry should be dropped)", m.NNZ())
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
}

func TestBuilderIgnoresZeros(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 0)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0", m.NNZ())
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add out of range should panic")
		}
	}()
	NewBuilder(1, 1).Add(1, 0, 1)
}

func TestMulVec(t *testing.T) {
	m := buildTestMatrix()
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 2, 3})
	if dst[0] != 7 || dst[1] != 6 {
		t.Errorf("MulVec = %v, want [7 6]", dst)
	}
}

func TestMulVecLeft(t *testing.T) {
	m := buildTestMatrix()
	dst := make([]float64, 3)
	m.MulVecLeft(dst, []float64{2, 5})
	want := []float64{2, 15, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVecLeft = %v, want %v", dst, want)
			break
		}
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := buildTestMatrix()
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong dims should panic")
		}
	}()
	m.MulVec(make([]float64, 2), []float64{1, 2})
}

func TestTranspose(t *testing.T) {
	m := buildTestMatrix()
	tr := m.Transpose()
	rows, cols := tr.Dims()
	if rows != 3 || cols != 2 {
		t.Fatalf("transpose Dims = (%d,%d), want (3,2)", rows, cols)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != tr.At(c, r) {
				t.Errorf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestDense(t *testing.T) {
	m := buildTestMatrix()
	d := m.Dense()
	want := [][]float64{{1, 0, 2}, {0, 3, 0}}
	for r := range want {
		for c := range want[r] {
			if d[r][c] != want[r][c] {
				t.Errorf("Dense[%d][%d] = %v, want %v", r, c, d[r][c], want[r][c])
			}
		}
	}
}

func TestRowSums(t *testing.T) {
	m := buildTestMatrix()
	sums := m.RowSums()
	if sums[0] != 3 || sums[1] != 3 {
		t.Errorf("RowSums = %v, want [3 3]", sums)
	}
}

func TestRowIteration(t *testing.T) {
	m := buildTestMatrix()
	var cols []int
	var vals []float64
	m.Row(0, func(c int, v float64) {
		cols = append(cols, c)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Errorf("Row(0) visited cols=%v vals=%v", cols, vals)
	}
}

// TestMulVecMatchesDense is a property test: the sparse product must match
// a straightforward dense computation on random matrices.
func TestMulVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		b := NewBuilder(rows, cols)
		dense := make([][]float64, rows)
		for r := range dense {
			dense[r] = make([]float64, cols)
		}
		for k := 0; k < rows*cols/2; k++ {
			r, c := rng.Intn(rows), rng.Intn(cols)
			v := rng.NormFloat64()
			b.Add(r, c, v)
			dense[r][c] += v
		}
		m := b.Build()

		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, rows)
		m.MulVec(got, x)
		for r := 0; r < rows; r++ {
			var want float64
			for c := 0; c < cols; c++ {
				want += dense[r][c] * x[c]
			}
			if math.Abs(got[r]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFlatDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	rows, cols := d.Dims()
	if rows != 2 || cols != 3 {
		t.Fatalf("Dims = (%d,%d), want (2,3)", rows, cols)
	}
	d.Set(0, 2, 5)
	d.Add(0, 2, 1.5)
	d.Add(1, 0, -2)
	if got := d.At(0, 2); got != 6.5 {
		t.Errorf("At(0,2) = %v, want 6.5", got)
	}
	if got := d.At(1, 0); got != -2 {
		t.Errorf("At(1,0) = %v, want -2", got)
	}
	// Row is a live view into the backing.
	row := d.Row(1)
	row[2] = 9
	if got := d.At(1, 2); got != 9 {
		t.Errorf("write through Row view lost: At(1,2) = %v, want 9", got)
	}
}

func TestFlatDenseResetReusesBacking(t *testing.T) {
	d := NewDense(4, 5)
	d.Set(3, 4, 7)
	backing := &d.data[0]
	d.Reset(2, 2) // shrink: same backing, zeroed
	if &d.data[0] != backing {
		t.Error("Reset to a smaller size should keep the backing slice")
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if d.At(r, c) != 0 {
				t.Errorf("Reset left At(%d,%d) = %v, want 0", r, c, d.At(r, c))
			}
		}
	}
	d.Reset(6, 6) // grow: fresh zeroed backing
	if rows, cols := d.Dims(); rows != 6 || cols != 6 {
		t.Fatalf("Dims after grow = (%d,%d), want (6,6)", rows, cols)
	}
	for i := range d.data {
		if d.data[i] != 0 {
			t.Fatal("grown backing not zeroed")
		}
	}
}

func TestFlatDenseBoundsPanics(t *testing.T) {
	d := NewDense(2, 2)
	for name, fn := range map[string]func(){
		"At":    func() { d.At(2, 0) },
		"Set":   func() { d.Set(0, 2, 1) },
		"Row":   func() { d.Row(-1) },
		"Reset": func() { d.Reset(-1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range should panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestTransposeInvolution checks transpose(transpose(m)) == m structurally.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		b := NewBuilder(rows, cols)
		for k := 0; k < rows*cols/2; k++ {
			b.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := b.Build()
		back := m.Transpose().Transpose()
		if m.NNZ() != back.NNZ() {
			return false
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if m.At(r, c) != back.At(r, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
