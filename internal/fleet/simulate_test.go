package fleet

import (
	"context"
	"encoding/json"
	"testing"
)

func perfectFleet(t *testing.T) (Plan, Resolver) {
	t.Helper()
	resolve := testResolver(t)
	a := testSystem("a")
	a.WindowMinutes = 35 // multi-round campaign
	b := testSystem("b")
	b.Priority = 1.5
	plan, err := PlanFleet(context.Background(), []System{a, b}, resolve, PlanOptions{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	return plan, resolve
}

// TestSimulatePerfectMatchesPlan is the dormant-rollback property: with
// every success probability at 1 the simulation must replay the plan's
// schedule window for window and reproduce the planner's residual-ASP
// trajectory bit for bit.
func TestSimulatePerfectMatchesPlan(t *testing.T) {
	plan, _ := perfectFleet(t)
	var events []Event
	sum, err := Simulate(context.Background(), plan, SimOptions{Seed: 42}, func(ev Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(plan.Windows) {
		t.Fatalf("events = %d, want the plan's %d windows", len(events), len(plan.Windows))
	}
	if sum.RolledBack != 0 || sum.DeferredRounds != 0 || sum.Succeeded != len(events) {
		t.Fatalf("perfect summary = %+v, want all succeeded", sum)
	}
	if sum.TotalDowntimeMinutes != plan.TotalDowntimeMinutes {
		t.Errorf("downtime %v, plan %v", sum.TotalDowntimeMinutes, plan.TotalDowntimeMinutes)
	}
	trajectories := map[string][]float64{}
	for _, sp := range plan.Systems {
		trajectories[sp.System.ID] = sp.ResidualASP
	}
	completed := map[string]int{}
	for i, ev := range events {
		w := plan.Windows[i]
		if ev.SystemID != w.SystemID || ev.Cycle != w.Cycle || ev.Round != w.Round {
			t.Fatalf("event %d = %s/c%d/r%d, plan window = %s/c%d/r%d",
				i, ev.SystemID, ev.Cycle, ev.Round, w.SystemID, w.Cycle, w.Round)
		}
		if ev.DowntimeMinutes != w.DowntimeMinutes {
			t.Errorf("event %d downtime %v, plan %v", i, ev.DowntimeMinutes, w.DowntimeMinutes)
		}
		completed[ev.SystemID]++
		// Bit-identical: both sides compose the residual set through the
		// same canonical CompositeASP.
		want := trajectories[ev.SystemID][completed[ev.SystemID]]
		if ev.SystemResidualASP != want {
			t.Errorf("event %d residual %v != plan trajectory %v", i, ev.SystemResidualASP, want)
		}
	}
}

// TestSimulateAllFailures drives the rollback branch deterministically:
// a success probability of ~0 fails every window, so each round burns
// its attempt budget and defers.
func TestSimulateAllFailures(t *testing.T) {
	resolve := testResolver(t)
	s := testSystem("a")
	s.SuccessProbability = 1e-12
	s.RollbackMinutes = 15
	plan, err := PlanFleet(context.Background(), []System{s}, resolve, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := len(plan.Systems[0].Rounds)
	if rounds == 0 {
		t.Fatal("expected at least one round")
	}
	var events []Event
	sum, err := Simulate(context.Background(), plan, SimOptions{Seed: 7, MaxAttempts: 3}, func(ev Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Succeeded != 0 || sum.RolledBack != rounds*3 || sum.DeferredRounds != rounds {
		t.Fatalf("summary = %+v, want %d rollbacks and %d deferred rounds", sum, rounds*3, rounds)
	}
	initial := plan.Systems[0].ResidualASP[0]
	for i, ev := range events {
		if ev.Attempt != i%3+1 {
			t.Errorf("event %d: attempt %d, want %d", i, ev.Attempt, i%3+1)
		}
		switch {
		case ev.Attempt < 3:
			if ev.Outcome.String() != "rolledBack" || len(ev.Requeued) == 0 {
				t.Errorf("event %d: %+v, want rolledBack with requeued CVEs", i, ev)
			}
		default:
			if ev.Outcome.String() != "deferred" || len(ev.DeferredCVEs) == 0 {
				t.Errorf("event %d: %+v, want deferred CVEs", i, ev)
			}
		}
		// Nothing ever lands, so the residual is pinned at the initial
		// attack surface — and never increases.
		if ev.SystemResidualASP != initial {
			t.Errorf("event %d: residual %v, want initial %v", i, ev.SystemResidualASP, initial)
		}
		// The failed window pays the half-work + rollback + reboot cost,
		// which differs from the success-branch downtime.
		if ev.DowntimeMinutes == plan.Windows[0].DowntimeMinutes {
			t.Errorf("event %d: failed downtime equals success downtime %v", i, ev.DowntimeMinutes)
		}
		if ev.Availability <= 0 || ev.Availability >= 1 {
			t.Errorf("event %d: availability %v", i, ev.Availability)
		}
	}
}

// TestSimulateMixedMonotone checks the headline stream invariant under
// genuine randomness: the fleet residual never increases.
func TestSimulateMixedMonotone(t *testing.T) {
	resolve := testResolver(t)
	a := testSystem("a")
	a.WindowMinutes = 35
	a.SuccessProbability = 0.5
	a.RollbackMinutes = 10
	b := testSystem("b")
	b.SuccessProbability = 0.5
	b.Priority = 2
	plan, err := PlanFleet(context.Background(), []System{a, b}, resolve, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := 2.0
	rolledBack := 0
	var events []Event
	sum, err := Simulate(context.Background(), plan, SimOptions{Seed: 3}, func(ev Event) error {
		if ev.ResidualASP > last {
			t.Errorf("fleet residual grew: %v -> %v at seq %d", last, ev.ResidualASP, ev.Seq)
		}
		last = ev.ResidualASP
		if ev.Outcome.String() == "rolledBack" {
			rolledBack++
		}
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rolledBack == 0 {
		t.Error("seed 3 at p=0.5 should roll back at least once")
	}
	if sum.FinalResidualASP != last {
		t.Errorf("summary residual %v, last event %v", sum.FinalResidualASP, last)
	}

	// Same seed, same stream — byte for byte.
	var replay []Event
	if _, err := Simulate(context.Background(), plan, SimOptions{Seed: 3}, func(ev Event) error {
		replay = append(replay, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(events)
	want, _ := json.Marshal(replay)
	if string(got) != string(want) {
		t.Error("same seed produced a different stream")
	}
}

func TestSimulateAborts(t *testing.T) {
	plan, _ := perfectFleet(t)
	if _, err := Simulate(context.Background(), Plan{}, SimOptions{}, nil); err == nil {
		t.Error("empty plan should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, plan, SimOptions{}, nil); err == nil {
		t.Error("cancelled context should fail")
	}
	sentinel := context.DeadlineExceeded
	if _, err := Simulate(context.Background(), plan, SimOptions{}, func(Event) error { return sentinel }); err != sentinel {
		t.Errorf("emit error not propagated: %v", err)
	}
}
