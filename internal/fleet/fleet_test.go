package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/redundancy"
)

// testEngine adapts a bare evaluator to the Engine interface (in the
// daemon the facade's CaseStudy plays this role, backed by the memoized
// engine).
type testEngine struct{ ev *redundancy.Evaluator }

func (t testEngine) EvaluateSpecCtx(ctx context.Context, spec paperdata.DesignSpec) (redundancy.Result, error) {
	return t.ev.EvaluateSpecContext(ctx, spec)
}

func (t testEngine) PlanCampaign(role string, maxWindow time.Duration) (patch.Campaign, error) {
	return t.ev.PlanCampaign(role, maxWindow)
}

func testResolver(t *testing.T) Resolver {
	t.Helper()
	ev, err := redundancy.NewEvaluator(redundancy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine{ev: ev}
	return func(scenario string) (Engine, error) {
		if scenario != "" && scenario != "default" {
			return nil, fmt.Errorf("unknown scenario %q", scenario)
		}
		return eng, nil
	}
}

func testSystem(id string) System {
	return System{
		ID:   id,
		Role: "app",
		Tiers: []TierSpec{
			{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 2},
			{Role: "app", Replicas: 2}, {Role: "db", Replicas: 1},
		},
		WindowMinutes: 60,
	}
}

func TestSystemValidate(t *testing.T) {
	if err := testSystem("ok").Validate(); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	mutations := map[string]func(*System){
		"emptyID":       func(s *System) { s.ID = "" },
		"noTiers":       func(s *System) { s.Tiers = nil },
		"emptyTierRole": func(s *System) { s.Tiers[0].Role = "" },
		"zeroReplicas":  func(s *System) { s.Tiers[0].Replicas = 0 },
		"emptyRole":     func(s *System) { s.Role = "" },
		"negPriority":   func(s *System) { s.Priority = -1 },
		"zeroWindow":    func(s *System) { s.WindowMinutes = 0 },
		"negDeadline":   func(s *System) { s.DeadlineHours = -1 },
		"badProb":       func(s *System) { s.SuccessProbability = 1.5 },
		"negRollback":   func(s *System) { s.RollbackMinutes = -1 },
	}
	for name, mut := range mutations {
		s := testSystem("x")
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestSystemDefaults(t *testing.T) {
	s := testSystem("x")
	if got := s.priority(); got != 1 {
		t.Errorf("default priority = %v, want 1", got)
	}
	if got := s.attempt(); got != patch.PerfectAttempt() {
		t.Errorf("default attempt = %+v, want perfect", got)
	}
	s.Priority = 1.5
	s.SuccessProbability = 0.8
	s.RollbackMinutes = 12
	if got := s.priority(); got != 1.5 {
		t.Errorf("priority = %v", got)
	}
	want := patch.Attempt{SuccessProbability: 0.8, Rollback: 12 * time.Minute}
	if got := s.attempt(); got != want {
		t.Errorf("attempt = %+v, want %+v", got, want)
	}
	spec := s.Spec()
	if spec.Name != "x" || len(spec.Tiers) != 4 || spec.Tiers[1].Replicas != 2 {
		t.Errorf("Spec() = %+v", spec)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(System{}); err == nil {
		t.Error("invalid system should not register")
	}
	if err := r.Register(testSystem("b")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testSystem("a")); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	list := r.List()
	if list[0].ID != "a" || list[1].ID != "b" {
		t.Errorf("List not sorted: %v, %v", list[0].ID, list[1].ID)
	}
	// Upsert bumps the revision and replaces the record.
	rev := r.Rev()
	s := testSystem("a")
	s.Priority = 2
	if err := r.Register(s); err != nil {
		t.Fatal(err)
	}
	if r.Rev() <= rev {
		t.Error("upsert did not bump the revision")
	}
	if got, _ := r.Get("a"); got.Priority != 2 {
		t.Errorf("upsert lost: %+v", got)
	}
	if !r.Remove("b") || r.Remove("b") {
		t.Error("Remove should succeed once")
	}
	if _, ok := r.Get("b"); ok {
		t.Error("b still present after Remove")
	}
}

func TestRegistrySnapshotRestore(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"a", "b"} {
		if err := r.Register(testSystem(id)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewRegistry()
	added, err := fresh.Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || fresh.Len() != 2 {
		t.Fatalf("restored %d systems into %d, want 2", added, fresh.Len())
	}

	// Live registrations win over the dump.
	partial := NewRegistry()
	s := testSystem("a")
	s.Priority = 9
	if err := partial.Register(s); err != nil {
		t.Fatal(err)
	}
	if added, err = partial.Restore(data); err != nil || added != 1 {
		t.Fatalf("Restore over live = (%d, %v), want (1, nil)", added, err)
	}
	if got, _ := partial.Get("a"); got.Priority != 9 {
		t.Error("restore overwrote a live registration")
	}

	if _, err := fresh.Restore([]byte("{")); err == nil {
		t.Error("corrupt snapshot should fail")
	}
	if _, err := fresh.Restore([]byte(`{"version":99,"systems":[]}`)); err == nil {
		t.Error("version mismatch should fail")
	}
	if _, err := fresh.Restore([]byte(`{"version":1,"systems":[{"id":""}]}`)); err == nil {
		t.Error("invalid record should reject the snapshot")
	}
}

func TestPlanFleet(t *testing.T) {
	resolve := testResolver(t)
	a := testSystem("a") // single 60-minute round
	b := testSystem("b")
	b.WindowMinutes = 35 // forces a multi-round campaign
	b.Priority = 2
	b.DeadlineHours = 1 // cannot hold: at least two monthly cycles
	c := testSystem("c")
	c.Tiers[2].Replicas = 4

	plan, err := PlanFleet(context.Background(), []System{c, a, b}, resolve, PlanOptions{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Systems) != 3 || plan.Systems[0].System.ID != "a" {
		t.Fatalf("systems not sorted by ID: %+v", plan.Systems)
	}
	for _, sp := range plan.Systems {
		if len(sp.Rounds) == 0 {
			t.Errorf("%s: no rounds planned", sp.System.ID)
		}
		if sp.RiskBefore <= sp.RiskAfter {
			t.Errorf("%s: patching did not reduce risk: %v -> %v", sp.System.ID, sp.RiskBefore, sp.RiskAfter)
		}
		if len(sp.ResidualASP) != len(sp.Rounds)+1 {
			t.Errorf("%s: residual trajectory %d entries, want %d", sp.System.ID, len(sp.ResidualASP), len(sp.Rounds)+1)
		}
		for i := 1; i < len(sp.ResidualASP); i++ {
			if sp.ResidualASP[i] > sp.ResidualASP[i-1] {
				t.Errorf("%s: residual grew at round %d", sp.System.ID, i)
			}
		}
		if sp.Score <= 0 {
			t.Errorf("%s: score = %v", sp.System.ID, sp.Score)
		}
	}
	bPlan := plan.Systems[1]
	if len(bPlan.Rounds) < 2 {
		t.Fatalf("b: rounds = %d, want a split campaign", len(bPlan.Rounds))
	}

	// Schedule invariants: cap respected, one window per system per
	// cycle, rounds in order, b's deadline flagged.
	perCycle := map[int]map[string]int{}
	nextRound := map[string]int{}
	var total float64
	for i, w := range plan.Windows {
		if w.Seq != i {
			t.Errorf("window %d: seq %d", i, w.Seq)
		}
		if perCycle[w.Cycle] == nil {
			perCycle[w.Cycle] = map[string]int{}
		}
		perCycle[w.Cycle][w.SystemID]++
		if perCycle[w.Cycle][w.SystemID] > 1 {
			t.Errorf("cycle %d: system %s patched twice", w.Cycle, w.SystemID)
		}
		if len(perCycle[w.Cycle]) > 2 {
			t.Errorf("cycle %d: concurrency cap exceeded", w.Cycle)
		}
		if w.Round != nextRound[w.SystemID] {
			t.Errorf("window %d: %s round %d out of order (want %d)", i, w.SystemID, w.Round, nextRound[w.SystemID])
		}
		nextRound[w.SystemID]++
		if want := float64(w.Cycle) * 720; w.StartHours != want {
			t.Errorf("window %d: start %v, want %v", i, w.StartHours, want)
		}
		total += w.DowntimeMinutes
	}
	if total != plan.TotalDowntimeMinutes {
		t.Errorf("TotalDowntimeMinutes = %v, windows sum %v", plan.TotalDowntimeMinutes, total)
	}
	// b has the highest score weight and a deadline it cannot hold.
	if !bPlan.DeadlineAtRisk || len(plan.DeadlineAtRisk) != 1 || plan.DeadlineAtRisk[0] != "b" {
		t.Errorf("deadline risk = %v (b flagged %v), want exactly b", plan.DeadlineAtRisk, bPlan.DeadlineAtRisk)
	}
	// Every planned round is scheduled.
	for _, sp := range plan.Systems {
		if nextRound[sp.System.ID] != len(sp.Rounds) {
			t.Errorf("%s: scheduled %d of %d rounds", sp.System.ID, nextRound[sp.System.ID], len(sp.Rounds))
		}
	}
}

func TestPlanFleetErrors(t *testing.T) {
	resolve := testResolver(t)
	if _, err := PlanFleet(context.Background(), nil, resolve, PlanOptions{}); err == nil {
		t.Error("empty fleet should fail")
	}
	if _, err := PlanFleet(context.Background(), []System{testSystem("a"), testSystem("a")}, resolve, PlanOptions{}); err == nil {
		t.Error("duplicate IDs should fail")
	}
	bad := testSystem("a")
	bad.Scenario = "nope"
	if _, err := PlanFleet(context.Background(), []System{bad}, resolve, PlanOptions{}); err == nil {
		t.Error("unresolvable scenario should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlanFleet(ctx, []System{testSystem("a")}, resolve, PlanOptions{}); err == nil {
		t.Error("cancelled context should fail")
	}
}
