// Package fleet scales the single-study evaluator to a fleet: a registry
// of modeled systems (scenario + design spec + priority + compliance
// deadline), a scheduler that plans per-system patch campaigns on the
// evaluation engine and orders maintenance windows by
// risk-reduction-per-downtime under a fleet-wide concurrency cap, and a
// campaign simulator that executes plans under the try-revert model —
// each window succeeds with the system's per-patch success probability
// or rolls back, re-queueing its vulnerabilities until an attempt budget
// defers them.
//
// The package sits above the evaluation internals (redundancy, patch,
// vulndb, paperdata) and below the redpatch facade: it never builds
// engines itself, it consumes them through the Engine interface so the
// daemon's scenario registry (or the facade) can resolve one engine per
// named scenario.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/redundancy"
)

// TierSpec is the wire form of one redundancy group of a fleet system.
// It mirrors paperdata.TierSpec with JSON tags (paperdata stays free of
// serialization concerns).
type TierSpec struct {
	// Role is the logical tier ("dns", "web", "app", "db").
	Role string `json:"role"`
	// Replicas is the server count of the group.
	Replicas int `json:"replicas"`
	// Variant optionally swaps the group's software stack.
	Variant string `json:"variant,omitempty"`
}

// System is one modeled system of the fleet.
type System struct {
	// ID uniquely names the system in the registry.
	ID string `json:"id"`
	// Scenario names the daemon scenario (policy + schedule) whose
	// engine evaluates the system; empty selects the default scenario.
	Scenario string `json:"scenario,omitempty"`
	// Tiers is the system's design.
	Tiers []TierSpec `json:"tiers"`
	// Role is the logical tier whose vulnerabilities the campaign
	// patches (the paper plans campaigns per server role).
	Role string `json:"role"`
	// Priority weights the system in the scheduler's ordering and the
	// fleet residual; zero defaults to 1 (exemplar agents weight
	// production 1.5, staging 1.2).
	Priority float64 `json:"priority,omitempty"`
	// WindowMinutes is the per-round downtime budget of the system's
	// maintenance windows.
	WindowMinutes float64 `json:"windowMinutes"`
	// DeadlineHours is the compliance deadline on the campaign clock;
	// zero means no deadline.
	DeadlineHours float64 `json:"deadlineHours,omitempty"`
	// SuccessProbability is the chance one maintenance window applies
	// cleanly; zero defaults to 1 (the paper's atomic windows).
	SuccessProbability float64 `json:"successProbability,omitempty"`
	// RollbackMinutes is the revert-procedure duration a failed window
	// pays before the system is back up unpatched.
	RollbackMinutes float64 `json:"rollbackMinutes,omitempty"`
}

// Validate checks the system definition.
func (s System) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("fleet: system with empty id")
	}
	if len(s.Tiers) == 0 {
		return fmt.Errorf("fleet: %s: no tiers", s.ID)
	}
	for i, t := range s.Tiers {
		if t.Role == "" {
			return fmt.Errorf("fleet: %s: tier %d has empty role", s.ID, i)
		}
		if t.Replicas < 1 {
			return fmt.Errorf("fleet: %s: tier %s has %d replicas", s.ID, t.Role, t.Replicas)
		}
	}
	if s.Role == "" {
		return fmt.Errorf("fleet: %s: empty campaign role", s.ID)
	}
	if s.Priority < 0 {
		return fmt.Errorf("fleet: %s: negative priority %v", s.ID, s.Priority)
	}
	if s.WindowMinutes <= 0 {
		return fmt.Errorf("fleet: %s: non-positive window %v min", s.ID, s.WindowMinutes)
	}
	if s.DeadlineHours < 0 {
		return fmt.Errorf("fleet: %s: negative deadline %v h", s.ID, s.DeadlineHours)
	}
	if s.SuccessProbability < 0 || s.SuccessProbability > 1 {
		return fmt.Errorf("fleet: %s: success probability %v outside [0, 1]", s.ID, s.SuccessProbability)
	}
	if s.RollbackMinutes < 0 {
		return fmt.Errorf("fleet: %s: negative rollback %v min", s.ID, s.RollbackMinutes)
	}
	return s.attempt().Validate()
}

// Spec converts the system's tiers into the engine's design vocabulary.
func (s System) Spec() paperdata.DesignSpec {
	spec := paperdata.DesignSpec{Name: s.ID}
	for _, t := range s.Tiers {
		spec.Tiers = append(spec.Tiers, paperdata.TierSpec{
			Role: t.Role, Replicas: t.Replicas, Variant: t.Variant,
		})
	}
	return spec
}

// priority returns the effective scheduling weight.
func (s System) priority() float64 {
	if s.Priority == 0 {
		return 1
	}
	return s.Priority
}

// attempt returns the system's try-revert parameters with defaults
// applied.
func (s System) attempt() patch.Attempt {
	p := s.SuccessProbability
	if p == 0 {
		p = 1
	}
	return patch.Attempt{
		SuccessProbability: p,
		Rollback:           time.Duration(s.RollbackMinutes * float64(time.Minute)),
	}
}

// window returns the per-round downtime budget.
func (s System) window() time.Duration {
	return time.Duration(s.WindowMinutes * float64(time.Minute))
}

// Engine is the per-scenario evaluation surface the fleet consumes: the
// memoized design evaluator and the campaign planner. The redpatch
// facade and the daemon's scenario registry both satisfy it.
type Engine interface {
	EvaluateSpecCtx(ctx context.Context, spec paperdata.DesignSpec) (redundancy.Result, error)
	PlanCampaign(role string, maxWindow time.Duration) (patch.Campaign, error)
}

// Resolver maps a scenario name to its engine; empty names the default
// scenario. PlanFleet resolves every distinct scenario once per call.
type Resolver func(scenario string) (Engine, error)

// Registry is the concurrency-safe fleet store. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu  sync.RWMutex
	m   map[string]System
	rev uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]System)} }

// Register validates the system and upserts it by ID.
func (r *Registry) Register(s System) error {
	if err := s.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	r.m[s.ID] = s
	r.rev++
	r.mu.Unlock()
	return nil
}

// Remove deletes a system, reporting whether it existed.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[id]; !ok {
		return false
	}
	delete(r.m, id)
	r.rev++
	return true
}

// Get returns a system by ID.
func (r *Registry) Get(id string) (System, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.m[id]
	return s, ok
}

// List returns every system sorted by ID.
func (r *Registry) List() []System {
	r.mu.RLock()
	out := make([]System, 0, len(r.m))
	for _, s := range r.m {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered systems.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Rev returns the registry's revision counter: it increments on every
// mutation, so persistence layers can dirty-track the registry the same
// way the engine caches track entry counts.
func (r *Registry) Rev() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rev
}

// snapshotVersion guards the registry dump format.
const snapshotVersion = 1

type registrySnapshot struct {
	Version int      `json:"version"`
	Systems []System `json:"systems"`
}

// Snapshot serializes the registry as deterministic versioned JSON.
func (r *Registry) Snapshot() ([]byte, error) {
	return json.Marshal(registrySnapshot{Version: snapshotVersion, Systems: r.List()})
}

// Restore merges a snapshot into the registry: systems whose ID is
// already registered are skipped (live registrations win over the dump),
// invalid records reject the whole snapshot, mirroring the engine
// cache's all-or-nothing restore. It returns how many systems were
// added.
func (r *Registry) Restore(data []byte) (int, error) {
	var snap registrySnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("fleet: parse snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("fleet: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	for _, s := range snap.Systems {
		if err := s.Validate(); err != nil {
			return 0, fmt.Errorf("fleet: snapshot rejected: %w", err)
		}
	}
	added := 0
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range snap.Systems {
		if _, ok := r.m[s.ID]; ok {
			continue
		}
		r.m[s.ID] = s
		added++
	}
	if added > 0 {
		r.rev++
	}
	return added, nil
}
