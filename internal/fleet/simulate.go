package fleet

import (
	"context"
	"fmt"
	"math/rand"

	"redpatch/internal/patch"
	"redpatch/internal/trace"
	"redpatch/internal/vulndb"
)

// SimOptions tunes the campaign simulator.
type SimOptions struct {
	// Seed feeds the deterministic RNG: the same plan and seed replay
	// the same campaign, window for window.
	Seed int64
	// MaxConcurrent caps systems patched per cycle (default 8, matching
	// PlanOptions).
	MaxConcurrent int
	// CycleHours is the cycle spacing (default 720).
	CycleHours float64
	// MaxAttempts bounds the tries per round before its vulnerabilities
	// are deferred for the rest of the campaign (default 3).
	MaxAttempts int
}

func (o SimOptions) withDefaults() SimOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 8
	}
	if o.CycleHours <= 0 {
		o.CycleHours = 720
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	return o
}

// Event is one executed maintenance window of a simulated campaign.
type Event struct {
	// Seq numbers events in execution order.
	Seq int `json:"seq"`
	// Cycle and ElapsedHours place the window on the campaign clock.
	Cycle        int     `json:"cycle"`
	ElapsedHours float64 `json:"elapsedHours"`
	// SystemID names the patched system; Round indexes its campaign
	// round, Attempt counts the tries of that round so far (1-based).
	SystemID string `json:"systemId"`
	Round    int    `json:"round"`
	Attempt  int    `json:"attempt"`
	// Outcome is succeeded or rolledBack.
	Outcome patch.Outcome `json:"outcome"`
	// DowntimeMinutes is the window's outage: the round downtime on
	// success, the half-work + rollback + reboot cost on failure.
	DowntimeMinutes float64 `json:"downtimeMinutes"`
	// CVEs are the vulnerabilities the window attempted.
	CVEs []string `json:"cves"`
	// Requeued lists the CVEs returned to the queue by a rollback.
	Requeued []string `json:"requeued,omitempty"`
	// DeferredCVEs lists CVEs abandoned after exhausting MaxAttempts.
	DeferredCVEs []string `json:"deferredCves,omitempty"`
	// SystemResidualASP is the composite attack-surface probability of
	// the system's still-unpatched vulnerabilities after the window.
	SystemResidualASP float64 `json:"systemResidualAsp"`
	// ResidualASP is the priority-weighted fleet residual after the
	// window — monotonically non-increasing over the stream.
	ResidualASP float64 `json:"residualAsp"`
	// Availability is the fraction of the cycle the system is up given
	// the window's outage.
	Availability float64 `json:"availability"`
}

// Summary totals a simulated campaign.
type Summary struct {
	// Windows counts executed maintenance windows; Succeeded and
	// RolledBack split them by outcome.
	Windows    int `json:"windows"`
	Succeeded  int `json:"succeeded"`
	RolledBack int `json:"rolledBack"`
	// DeferredRounds counts rounds abandoned after MaxAttempts.
	DeferredRounds int `json:"deferredRounds"`
	// Cycles is the number of cycles the simulated campaign spanned.
	Cycles int `json:"cycles"`
	// FinalResidualASP is the fleet residual after the last window.
	FinalResidualASP float64 `json:"finalResidualAsp"`
	// TotalDowntimeMinutes sums every executed window's outage.
	TotalDowntimeMinutes float64 `json:"totalDowntimeMinutes"`
}

// simState tracks one system through the simulation: the rounds still
// pending (head = next to attempt), tries of the head round, and the
// vulnerabilities deferred so far.
type simState struct {
	sched    schedState
	attempts int
	att      patch.Attempt
	deferred []vulndb.Vulnerability // campaign-deferred + simulation-deferred
}

// residual returns the system's unpatched set: every pending round's
// vulnerabilities plus everything deferred.
func (st *simState) residual() []vulndb.Vulnerability {
	var out []vulndb.Vulnerability
	for i := st.sched.next; i < len(st.sched.plan.campaign.Rounds); i++ {
		out = append(out, st.sched.plan.campaign.Rounds[i].Selected...)
	}
	return append(out, st.deferred...)
}

// Simulate executes a fleet plan under the try-revert model: each cycle
// the same greedy rule that built the plan picks up to MaxConcurrent
// systems, each attempts its next pending round, and a seeded RNG
// decides success. A failed window pays the rollback downtime and
// re-queues its vulnerabilities (the system retries next cycle) until
// MaxAttempts sends them to the deferred set. Events stream through emit
// in execution order; a non-nil emit error aborts the simulation. The
// call runs under a "fleet.simulate" span with one "fleet.window" span
// per executed window.
//
// With every system's success probability at 1 the RNG never fires the
// rollback branch and the simulation reproduces the plan's schedule and
// residual trajectory exactly.
func Simulate(ctx context.Context, plan Plan, opts SimOptions, emit func(Event) error) (Summary, error) {
	opts = opts.withDefaults()
	ctx, span := trace.Start(ctx, "fleet.simulate",
		trace.Attr{Key: "systems", Value: len(plan.Systems)},
		trace.Attr{Key: "seed", Value: opts.Seed})
	sum, err := simulate(ctx, plan, opts, emit)
	if err != nil {
		span.EndErr(err)
		return Summary{}, err
	}
	span.SetAttr("windows", sum.Windows)
	span.SetAttr("rolled_back", sum.RolledBack)
	span.End()
	return sum, nil
}

func simulate(ctx context.Context, plan Plan, opts SimOptions, emit func(Event) error) (Summary, error) {
	if len(plan.Systems) == 0 {
		return Summary{}, fmt.Errorf("fleet: empty plan")
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	states := make([]*simState, len(plan.Systems))
	schedView := make([]*schedState, len(plan.Systems))
	var weightSum float64
	for i := range plan.Systems {
		sp := &plan.Systems[i]
		states[i] = &simState{
			sched:    schedState{plan: sp},
			att:      sp.System.attempt(),
			deferred: append([]vulndb.Vulnerability(nil), sp.campaign.Deferred...),
		}
		schedView[i] = &states[i].sched
		weightSum += sp.System.priority()
	}
	if weightSum == 0 {
		weightSum = 1
	}
	// fleetResidual is maintained incrementally: each system contributes
	// priority × residual; only the patched system's term moves per
	// window, and the composite is canonical, so the trajectory is
	// deterministic and monotone non-increasing (a residual never grows).
	residuals := make([]float64, len(states))
	var fleetSum float64
	for i, st := range states {
		residuals[i] = vulndb.CompositeASP(st.residual())
		fleetSum += plan.Systems[i].System.priority() * residuals[i]
	}
	index := make(map[*schedState]int, len(states))
	for i := range states {
		index[schedView[i]] = i
	}

	var sum Summary
	for cycle := 0; ; cycle++ {
		if err := ctx.Err(); err != nil {
			return Summary{}, err
		}
		active := pickCycle(schedView, opts.MaxConcurrent, func(st *schedState) bool {
			return st.next < len(st.plan.Rounds)
		})
		if len(active) == 0 {
			break
		}
		sum.Cycles = cycle + 1
		start := float64(cycle) * opts.CycleHours
		for _, sched := range active {
			i := index[sched]
			st := states[i]
			sp := sched.plan
			roundPlan := sp.campaign.Rounds[sched.next]
			st.attempts++

			_, wspan := trace.Start(ctx, "fleet.window",
				trace.Attr{Key: "system", Value: sp.System.ID},
				trace.Attr{Key: "cycle", Value: cycle},
				trace.Attr{Key: "round", Value: sched.next})

			ev := Event{
				Seq:          sum.Windows,
				Cycle:        cycle,
				ElapsedHours: start,
				SystemID:     sp.System.ID,
				Round:        sched.next,
				Attempt:      st.attempts,
				CVEs:         cveIDs(roundPlan.Selected),
			}
			if rng.Float64() < st.att.SuccessProbability {
				ev.Outcome = patch.OutcomeSucceeded
				ev.DowntimeMinutes = roundPlan.TotalDowntime().Minutes()
				sum.Succeeded++
				sched.next++
				st.attempts = 0
			} else {
				ev.DowntimeMinutes = roundPlan.FailedDowntime(st.att).Minutes()
				sum.RolledBack++
				if st.attempts >= opts.MaxAttempts {
					ev.Outcome = patch.OutcomeDeferred
					ev.DeferredCVEs = ev.CVEs
					st.deferred = append(st.deferred, roundPlan.Selected...)
					sum.DeferredRounds++
					sched.next++
					st.attempts = 0
				} else {
					ev.Outcome = patch.OutcomeRolledBack
					ev.Requeued = ev.CVEs
				}
			}

			next := vulndb.CompositeASP(st.residual())
			fleetSum += sp.System.priority() * (next - residuals[i])
			residuals[i] = next
			ev.SystemResidualASP = next
			ev.ResidualASP = fleetSum / weightSum
			ev.Availability = 1 - ev.DowntimeMinutes/60/opts.CycleHours
			if ev.Availability < 0 {
				ev.Availability = 0
			}

			sum.Windows++
			sum.TotalDowntimeMinutes += ev.DowntimeMinutes
			sum.FinalResidualASP = ev.ResidualASP

			wspan.SetAttr("outcome", ev.Outcome.String())
			wspan.End()

			if emit != nil {
				if err := emit(ev); err != nil {
					return Summary{}, err
				}
			}
		}
	}
	if sum.Windows == 0 {
		// A fleet with nothing to patch still reports its residual.
		sum.FinalResidualASP = fleetSum / weightSum
	}
	return sum, nil
}
