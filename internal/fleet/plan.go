package fleet

import (
	"context"
	"fmt"
	"sort"

	"redpatch/internal/patch"
	"redpatch/internal/trace"
	"redpatch/internal/vulndb"
	"redpatch/internal/workpool"
)

// PlanOptions tunes the fleet scheduler.
type PlanOptions struct {
	// MaxConcurrent caps how many systems may hold a maintenance window
	// in the same cycle (default 8): a fleet never patches everything at
	// once.
	MaxConcurrent int
	// CycleHours is the spacing between scheduling cycles (default 720,
	// the paper's monthly cadence).
	CycleHours float64
	// Workers bounds the evaluation fan-out (0 = GOMAXPROCS).
	Workers int
}

func (o PlanOptions) withDefaults() PlanOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 8
	}
	if o.CycleHours <= 0 {
		o.CycleHours = 720
	}
	return o
}

// Round is one maintenance round of a system's campaign.
type Round struct {
	// CVEs are the vulnerabilities the round patches.
	CVEs []string `json:"cves"`
	// DowntimeMinutes is the round's outage when the window succeeds.
	DowntimeMinutes float64 `json:"downtimeMinutes"`
	// ExpectedDowntimeMinutes weights the success and rollback branches
	// by the system's success probability.
	ExpectedDowntimeMinutes float64 `json:"expectedDowntimeMinutes"`
}

// SystemPlan is one system's campaign inside a fleet plan.
type SystemPlan struct {
	// System echoes the registered definition.
	System System `json:"system"`
	// Rounds are the campaign's maintenance rounds in execution order.
	Rounds []Round `json:"rounds"`
	// Deferred lists vulnerabilities that fit no window at all.
	Deferred []string `json:"deferred"`
	// RiskBefore and RiskAfter are the design's network ASP before and
	// after the campaign's patch round (the engine's security axis).
	RiskBefore float64 `json:"riskBefore"`
	RiskAfter  float64 `json:"riskAfter"`
	// ResidualASP traces the composite attack-surface probability of the
	// campaign role's unpatched vulnerabilities after each completed
	// round: entry 0 is before any round, the last entry is the floor
	// the deferred set leaves behind.
	ResidualASP []float64 `json:"residualAsp"`
	// Score is the scheduler's ordering key:
	// priority × risk reduction ÷ campaign downtime hours.
	Score float64 `json:"score"`
	// DeadlineAtRisk reports that the scheduled campaign finishes after
	// the system's compliance deadline.
	DeadlineAtRisk bool `json:"deadlineAtRisk,omitempty"`

	// campaign retains the planner's vulnerability objects for the
	// simulator (IDs alone cannot re-enter the residual computation).
	campaign patch.Campaign
}

// Window is one scheduled maintenance window of the fleet plan.
type Window struct {
	// Seq numbers windows in schedule order.
	Seq int `json:"seq"`
	// SystemID and Scenario name the system the window patches.
	SystemID string `json:"systemId"`
	Scenario string `json:"scenario,omitempty"`
	// Cycle is the scheduling cycle the window runs in; Round indexes
	// the system's campaign round it executes.
	Cycle int `json:"cycle"`
	Round int `json:"round"`
	// StartHours is the window's start on the fleet campaign clock.
	StartHours float64 `json:"startHours"`
	// DowntimeMinutes is the round's success-branch outage.
	DowntimeMinutes float64 `json:"downtimeMinutes"`
	// CVEs are the vulnerabilities the window patches.
	CVEs []string `json:"cves"`
}

// Plan is a scheduled fleet campaign.
type Plan struct {
	// Systems holds one campaign per system, sorted by ID.
	Systems []SystemPlan `json:"systems"`
	// Windows is the fleet-wide schedule in execution order.
	Windows []Window `json:"windows"`
	// Cycles is the number of scheduling cycles the campaign spans.
	Cycles int `json:"cycles"`
	// DeadlineAtRisk lists systems whose campaign ends after their
	// compliance deadline, sorted by ID.
	DeadlineAtRisk []string `json:"deadlineAtRisk"`
	// TotalDowntimeMinutes sums the success-branch outage of every
	// scheduled window.
	TotalDowntimeMinutes float64 `json:"totalDowntimeMinutes"`
}

// residualTrajectory computes the composite ASP of the campaign's
// unpatched set after each completed round. The campaign's own rounds
// and deferred list reconstruct the full selected set, so the
// trajectory needs no second look at the vulnerability database; the
// composition is canonical (sorted by CVE), so any code path composing
// the same residual set produces bit-identical floats.
func residualTrajectory(camp patch.Campaign) []float64 {
	all := campaignVulns(camp)
	out := make([]float64, camp.TotalRounds()+1)
	for i := range out {
		out[i] = vulndb.CompositeASP(camp.ResidualAfterRound(i, all))
	}
	return out
}

// campaignVulns reconstructs the campaign's selected set: every round's
// vulnerabilities plus the deferred ones.
func campaignVulns(camp patch.Campaign) []vulndb.Vulnerability {
	var all []vulndb.Vulnerability
	for _, r := range camp.Rounds {
		all = append(all, r.Selected...)
	}
	return append(all, camp.Deferred...)
}

// cveIDs projects vulnerabilities onto their identifiers.
func cveIDs(vulns []vulndb.Vulnerability) []string {
	out := make([]string, len(vulns))
	for i, v := range vulns {
		out[i] = v.ID
	}
	return out
}

// planSystem evaluates one system and plans its campaign.
func planSystem(ctx context.Context, s System, eng Engine) (SystemPlan, error) {
	res, err := eng.EvaluateSpecCtx(ctx, s.Spec())
	if err != nil {
		return SystemPlan{}, fmt.Errorf("fleet: %s: %w", s.ID, err)
	}
	camp, err := eng.PlanCampaign(s.Role, s.window())
	if err != nil {
		return SystemPlan{}, fmt.Errorf("fleet: %s: %w", s.ID, err)
	}
	sp := SystemPlan{
		System:      s,
		Deferred:    cveIDs(camp.Deferred),
		RiskBefore:  res.Before.ASP,
		RiskAfter:   res.After.ASP,
		ResidualASP: residualTrajectory(camp),
		campaign:    camp,
	}
	if sp.Deferred == nil {
		sp.Deferred = []string{}
	}
	att := s.attempt()
	var downtimeHours float64
	for _, r := range camp.Rounds {
		sp.Rounds = append(sp.Rounds, Round{
			CVEs:                    cveIDs(r.Selected),
			DowntimeMinutes:         r.TotalDowntime().Minutes(),
			ExpectedDowntimeMinutes: r.ExpectedDowntime(att).Minutes(),
		})
		downtimeHours += r.TotalDowntime().Hours()
	}
	reduction := sp.RiskBefore - sp.RiskAfter
	if reduction < 0 {
		reduction = 0
	}
	if downtimeHours < 1.0/60 {
		downtimeHours = 1.0 / 60 // floor: a minute, so free campaigns don't divide by zero
	}
	sp.Score = s.priority() * reduction / downtimeHours
	return sp, nil
}

// schedState tracks one system through the greedy cycle loop.
type schedState struct {
	plan *SystemPlan
	next int // index of the next pending round
}

// pickCycle selects up to max systems with pending rounds, highest score
// first (ties broken by ID for determinism). Both the planner and the
// simulator schedule through this helper, so with the rollback branch
// dormant the simulator reproduces the planner's schedule exactly.
func pickCycle(states []*schedState, max int, pending func(*schedState) bool) []*schedState {
	eligible := make([]*schedState, 0, len(states))
	for _, st := range states {
		if pending(st) {
			eligible = append(eligible, st)
		}
	}
	sort.SliceStable(eligible, func(i, j int) bool {
		si, sj := eligible[i].plan.Score, eligible[j].plan.Score
		if si != sj {
			return si > sj
		}
		return eligible[i].plan.System.ID < eligible[j].plan.System.ID
	})
	if len(eligible) > max {
		eligible = eligible[:max]
	}
	return eligible
}

// PlanFleet evaluates every system concurrently on its scenario's
// engine, plans each system's campaign, and schedules the fleet's
// maintenance windows: cycle by cycle, the highest
// risk-reduction-per-downtime systems (weighted by priority) take the
// MaxConcurrent slots, one window per system per cycle, until every
// round is placed. The whole call runs under a "fleet.plan" span.
func PlanFleet(ctx context.Context, systems []System, resolve Resolver, opts PlanOptions) (Plan, error) {
	opts = opts.withDefaults()
	ctx, span := trace.Start(ctx, "fleet.plan",
		trace.Attr{Key: "systems", Value: len(systems)},
		trace.Attr{Key: "max_concurrent", Value: opts.MaxConcurrent})
	plan, err := planFleet(ctx, systems, resolve, opts)
	if err != nil {
		span.EndErr(err)
		return Plan{}, err
	}
	span.SetAttr("windows", len(plan.Windows))
	span.SetAttr("cycles", plan.Cycles)
	span.End()
	return plan, nil
}

func planFleet(ctx context.Context, systems []System, resolve Resolver, opts PlanOptions) (Plan, error) {
	if len(systems) == 0 {
		return Plan{}, fmt.Errorf("fleet: no systems to plan")
	}
	seen := make(map[string]bool, len(systems))
	for _, s := range systems {
		if err := s.Validate(); err != nil {
			return Plan{}, err
		}
		if seen[s.ID] {
			return Plan{}, fmt.Errorf("fleet: duplicate system id %q", s.ID)
		}
		seen[s.ID] = true
	}

	// Resolve every distinct scenario once, before the fan-out.
	engines := make(map[string]Engine)
	for _, s := range systems {
		if _, ok := engines[s.Scenario]; ok {
			continue
		}
		eng, err := resolve(s.Scenario)
		if err != nil {
			return Plan{}, fmt.Errorf("fleet: scenario %q: %w", s.Scenario, err)
		}
		engines[s.Scenario] = eng
	}

	plans, err := workpool.Map(opts.Workers, systems, func(_ int, s System) (SystemPlan, error) {
		if err := ctx.Err(); err != nil {
			return SystemPlan{}, err
		}
		return planSystem(ctx, s, engines[s.Scenario])
	})
	if err != nil {
		return Plan{}, err
	}

	sort.Slice(plans, func(i, j int) bool { return plans[i].System.ID < plans[j].System.ID })
	out := Plan{Systems: plans, DeadlineAtRisk: []string{}, Windows: []Window{}}

	states := make([]*schedState, len(out.Systems))
	for i := range out.Systems {
		states[i] = &schedState{plan: &out.Systems[i]}
	}
	lastEnd := make(map[string]float64, len(states))
	for cycle := 0; ; cycle++ {
		if err := ctx.Err(); err != nil {
			return Plan{}, err
		}
		active := pickCycle(states, opts.MaxConcurrent, func(st *schedState) bool {
			return st.next < len(st.plan.Rounds)
		})
		if len(active) == 0 {
			break
		}
		out.Cycles = cycle + 1
		start := float64(cycle) * opts.CycleHours
		for _, st := range active {
			r := st.plan.Rounds[st.next]
			out.Windows = append(out.Windows, Window{
				Seq:             len(out.Windows),
				SystemID:        st.plan.System.ID,
				Scenario:        st.plan.System.Scenario,
				Cycle:           cycle,
				Round:           st.next,
				StartHours:      start,
				DowntimeMinutes: r.DowntimeMinutes,
				CVEs:            r.CVEs,
			})
			out.TotalDowntimeMinutes += r.DowntimeMinutes
			lastEnd[st.plan.System.ID] = start + r.DowntimeMinutes/60
			st.next++
		}
	}

	for i := range out.Systems {
		sp := &out.Systems[i]
		if d := sp.System.DeadlineHours; d > 0 && lastEnd[sp.System.ID] > d {
			sp.DeadlineAtRisk = true
			out.DeadlineAtRisk = append(out.DeadlineAtRisk, sp.System.ID)
		}
	}
	return out, nil
}
