package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKahanSum(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{2.5}, want: 2.5},
		{name: "integers", give: []float64{1, 2, 3, 4}, want: 10},
		{name: "cancellation", give: []float64{1e16, 1, -1e16}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := KahanSum(tt.give); got != tt.want {
				t.Errorf("KahanSum(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestKahanSumMatchesNaiveOnSmallInputs(t *testing.T) {
	f := func(xs []float64) bool {
		var cleaned []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			cleaned = append(cleaned, x)
		}
		var naive float64
		for _, x := range cleaned {
			naive += x
		}
		return AlmostEqual(KahanSum(cleaned), naive, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRound1(t *testing.T) {
	tests := []struct {
		give float64
		want float64
	}{
		{give: 7.15, want: 7.2},
		{give: 9.9945, want: 10.0},
		{give: 4.2965, want: 4.3},
		{give: 2.86, want: 2.9},
		{give: 6.443, want: 6.4},
		{give: -1.25, want: -1.3},
		{give: 0, want: 0},
	}
	for _, tt := range tests {
		if got := Round1(tt.give); got != tt.want {
			t.Errorf("Round1(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRound2(t *testing.T) {
	tests := []struct {
		give float64
		want float64
	}{
		{give: 0.39487, want: 0.39},
		{give: 0.85888, want: 0.86},
		{give: 0.99968, want: 1.0},
		{give: 0.005, want: 0.01},
	}
	for _, tt := range tests {
		if got := Round2(tt.give); got != tt.want {
			t.Errorf("Round2(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRoundN(t *testing.T) {
	if got := RoundN(3.14159, 3); got != 3.142 {
		t.Errorf("RoundN(3.14159, 3) = %v, want 3.142", got)
	}
	if got := RoundN(3.14159, 0); got != 3 {
		t.Errorf("RoundN(3.14159, 0) = %v, want 3", got)
	}
}

func TestAlmostEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{name: "identical", a: 1, b: 1, tol: 0, want: true},
		{name: "withinAbs", a: 1, b: 1.0000001, tol: 1e-6, want: true},
		{name: "outside", a: 1, b: 1.1, tol: 1e-6, want: false},
		{name: "relativeLarge", a: 1e12, b: 1e12 + 1e3, tol: 1e-6, want: true},
		{name: "zeroVsTiny", a: 0, b: 1e-12, tol: 1e-9, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AlmostEqual(tt.a, tt.b, tt.tol); got != tt.want {
				t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", tt.a, tt.b, tt.tol, got, tt.want)
			}
		})
	}
}

func TestClamp01(t *testing.T) {
	tests := []struct {
		give float64
		want float64
	}{
		{give: -0.5, want: 0},
		{give: 0, want: 0},
		{give: 0.5, want: 0.5},
		{give: 1, want: 1},
		{give: 1.0000000000000002, want: 1},
	}
	for _, tt := range tests {
		if got := Clamp01(tt.give); got != tt.want {
			t.Errorf("Clamp01(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestClamp01AlwaysInRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		c := Clamp01(x)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMinFloat(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := MaxFloat(xs); got != 7 {
		t.Errorf("MaxFloat = %v, want 7", got)
	}
	if got := MinFloat(xs); got != -1 {
		t.Errorf("MinFloat = %v, want -1", got)
	}
	if got := MaxFloat(nil); got != 0 {
		t.Errorf("MaxFloat(nil) = %v, want 0", got)
	}
	if got := MinFloat(nil); got != 0 {
		t.Errorf("MinFloat(nil) = %v, want 0", got)
	}
}

func TestFactorial(t *testing.T) {
	tests := []struct {
		give int
		want float64
	}{
		{give: 0, want: 1},
		{give: 1, want: 1},
		{give: 5, want: 120},
		{give: 10, want: 3628800},
	}
	for _, tt := range tests {
		if got := Factorial(tt.give); got != tt.want {
			t.Errorf("Factorial(%d) = %v, want %v", tt.give, got, tt.want)
		}
	}
	if !math.IsNaN(Factorial(-1)) {
		t.Error("Factorial(-1) should be NaN")
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{n: 5, k: 0, want: 1},
		{n: 5, k: 5, want: 1},
		{n: 5, k: 2, want: 10},
		{n: 10, k: 3, want: 120},
		{n: 5, k: 6, want: 0},
		{n: 5, k: -1, want: 0},
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("Binomial(%d, %d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n % 30)
		kk := int(k % 30)
		return Binomial(nn, kk) == Binomial(nn, nn-kk) || kk > nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
