// Package mathx provides small numeric helpers shared by the analytic
// engines in this repository: numerically stable summation, the rounding
// rules mandated by the CVSS v2 specification, and tolerant floating-point
// comparison used throughout the model evaluators and their tests.
package mathx

import "math"

// KahanSum returns the sum of xs using Neumaier's improved Kahan
// compensated summation, which bounds the accumulated rounding error
// independently of len(xs) and, unlike plain Kahan summation, survives
// catastrophic cancellation such as [1e16, 1, -1e16]. The steady-state
// solvers normalise probability vectors with it so that long chains of tiny
// probabilities do not drift.
func KahanSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Round1 rounds x to one decimal digit, half away from zero, matching the
// round_to_1_decimal operation of the CVSS v2 scoring specification.
func Round1(x float64) float64 {
	return math.Round(x*10) / 10
}

// Round2 rounds x to two decimal digits, half away from zero. The paper
// reports attack success probabilities at two decimals.
func Round2(x float64) float64 {
	return math.Round(x*100) / 100
}

// RoundN rounds x to n decimal digits, half away from zero.
func RoundN(x float64, n int) float64 {
	p := math.Pow(10, float64(n))
	return math.Round(x*p) / p
}

// AlmostEqual reports whether a and b differ by at most tol in absolute
// terms or, for large magnitudes, by at most tol in relative terms.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	largest := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*largest
}

// Clamp01 restricts x to the closed interval [0, 1]. Probability
// computations use it to absorb harmless rounding excursions such as
// 1.0000000000000002.
func Clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// MaxFloat returns the maximum of xs, or 0 if xs is empty.
func MaxFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinFloat returns the minimum of xs, or 0 if xs is empty.
func MinFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Factorial returns n! as a float64. It is used for small closed-form
// queueing computations (n rarely exceeds a few dozen servers); for n < 0
// it returns NaN.
func Factorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// Binomial returns the binomial coefficient C(n, k) as a float64, or 0 when
// k is outside [0, n].
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}
