package cvss_test

import (
	"fmt"

	"redpatch/internal/cvss"
)

// ExampleParse scores the paper's headline MySQL vulnerability
// (CVE-2016-6662, Table I row v1db).
func ExampleParse() {
	v, err := cvss.Parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
	if err != nil {
		panic(err)
	}
	fmt.Printf("base %.1f impact %.1f asp %.2f %s\n",
		v.BaseScore(), v.ImpactScoreRounded(), v.AttackSuccessProbability(), v.Severity())
	// Output: base 10.0 impact 10.0 asp 1.00 HIGH
}

// ExampleParseV3 scores Log4Shell with the v3.1 engine.
func ExampleParseV3() {
	v, err := cvss.ParseV3("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H")
	if err != nil {
		panic(err)
	}
	fmt.Printf("base %.1f (%s)\n", v.BaseScore(), v.Severity())
	// Output: base 10.0 (CRITICAL)
}
