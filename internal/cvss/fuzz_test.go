package cvss

import "testing"

// FuzzParse exercises the v2 vector parser: it must never panic, and any
// vector it accepts must render back to a string that re-parses to the
// identical vector.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"AV:N/AC:L/Au:N/C:C/I:C/A:C",
		"AV:L/AC:H/Au:M/C:N/I:N/A:N",
		"(AV:N/AC:M/Au:S/C:P/I:P/A:P)",
		"",
		"AV:N/AC:L/Au:N/C:C/I:C",
		"AV:N/AV:N/Au:N/C:C/I:C/A:C",
		"AV:/AC:L/Au:N/C:C/I:C/A:C",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(v.String())
		if err != nil {
			t.Fatalf("accepted vector %q does not round-trip: %v", s, err)
		}
		if back != v {
			t.Fatalf("round trip changed %q: %+v -> %+v", s, v, back)
		}
		if base := v.BaseScore(); base < 0 || base > 10 {
			t.Fatalf("vector %q has out-of-range base score %v", s, base)
		}
	})
}

// FuzzParseV3 does the same for the v3.1 parser.
func FuzzParseV3(f *testing.F) {
	for _, seed := range []string{
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
		"CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:C/C:L/I:L/A:L",
		"AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H",
		"",
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H",
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:X/C:H/I:H/A:H",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseV3(s)
		if err != nil {
			return
		}
		back, err := ParseV3(v.String())
		if err != nil {
			t.Fatalf("accepted v3 vector %q does not round-trip: %v", s, err)
		}
		if back != v {
			t.Fatalf("round trip changed %q: %+v -> %+v", s, v, back)
		}
		if base := v.BaseScore(); base < 0 || base > 10 {
			t.Fatalf("v3 vector %q has out-of-range base score %v", s, base)
		}
	})
}
