package cvss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redpatch/internal/mathx"
)

func TestParseAndString(t *testing.T) {
	tests := []string{
		"AV:N/AC:L/Au:N/C:C/I:C/A:C",
		"AV:L/AC:L/Au:N/C:C/I:C/A:C",
		"AV:N/AC:M/Au:N/C:P/I:N/A:N",
		"AV:A/AC:H/Au:S/C:P/I:P/A:P",
		"AV:L/AC:M/Au:M/C:N/I:N/A:N",
	}
	for _, s := range tests {
		v, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := v.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
}

func TestParseParenthesized(t *testing.T) {
	v, err := Parse("(AV:N/AC:L/Au:N/C:C/I:C/A:C)")
	if err != nil {
		t.Fatal(err)
	}
	if v.AV != AccessNetwork {
		t.Error("parenthesized vector parsed incorrectly")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "tooFew", give: "AV:N/AC:L/Au:N"},
		{name: "badMetricName", give: "XX:N/AC:L/Au:N/C:C/I:C/A:C"},
		{name: "badValue", give: "AV:Q/AC:L/Au:N/C:C/I:C/A:C"},
		{name: "duplicate", give: "AV:N/AV:N/Au:N/C:C/I:C/A:C"},
		{name: "malformed", give: "AVN/AC:L/Au:N/C:C/I:C/A:C"},
		{name: "missingMetric", give: "AV:N/AC:L/Au:N/C:C/I:C/C:C"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.give); err == nil {
				t.Errorf("Parse(%q) should fail", tt.give)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of invalid vector should panic")
		}
	}()
	MustParse("garbage")
}

// TestKnownScores pins the scoring functions to published NVD v2 values.
// These vectors are the ones the paper's Table I relies on.
func TestKnownScores(t *testing.T) {
	tests := []struct {
		name       string
		vector     string
		wantImpact float64 // rounded to 1 decimal
		wantASP    float64 // exploitability/10 rounded to 2 decimals
		wantBase   float64
	}{
		{
			name:       "fullRemote", // e.g. CVE-2016-6662 (MySQL)
			vector:     "AV:N/AC:L/Au:N/C:C/I:C/A:C",
			wantImpact: 10.0,
			wantASP:    1.0,
			wantBase:   10.0,
		},
		{
			name:       "localPrivEsc", // CVE-2016-4997 (Linux kernel)
			vector:     "AV:L/AC:L/Au:N/C:C/I:C/A:C",
			wantImpact: 10.0,
			wantASP:    0.39,
			wantBase:   7.2,
		},
		{
			name:       "sslDowngrade", // CVE-2015-3152 (MySQL BACKRONYM)
			vector:     "AV:N/AC:M/Au:N/C:P/I:N/A:N",
			wantImpact: 2.9,
			wantASP:    0.86,
			wantBase:   4.3,
		},
		{
			name:       "partialTriple", // CVE-2016-0638 (WebLogic)
			vector:     "AV:N/AC:L/Au:N/C:P/I:P/A:P",
			wantImpact: 6.4,
			wantASP:    1.0,
			wantBase:   7.5,
		},
		{
			name:       "confidentialityOnly", // CVE-2016-4979 (Apache HTTP)
			vector:     "AV:N/AC:L/Au:N/C:P/I:N/A:N",
			wantImpact: 2.9,
			wantASP:    1.0,
			wantBase:   5.0,
		},
		{
			name:       "mediumComplexityFull", // CVE-2016-3227 as NVD scores it
			vector:     "AV:N/AC:M/Au:N/C:C/I:C/A:C",
			wantImpact: 10.0,
			wantASP:    0.86,
			wantBase:   9.3,
		},
		{
			name:       "noImpact",
			vector:     "AV:N/AC:L/Au:N/C:N/I:N/A:N",
			wantImpact: 0.0,
			wantASP:    1.0,
			wantBase:   0.0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := MustParse(tt.vector)
			if got := v.ImpactScoreRounded(); got != tt.wantImpact {
				t.Errorf("impact = %v, want %v", got, tt.wantImpact)
			}
			if got := v.AttackSuccessProbability(); got != tt.wantASP {
				t.Errorf("ASP = %v, want %v", got, tt.wantASP)
			}
			if got := v.BaseScore(); got != tt.wantBase {
				t.Errorf("base = %v, want %v", got, tt.wantBase)
			}
		})
	}
}

func TestSeverityBands(t *testing.T) {
	tests := []struct {
		vector string
		want   Severity
	}{
		{vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C", want: SeverityHigh},   // 10.0
		{vector: "AV:N/AC:L/Au:N/C:P/I:P/A:P", want: SeverityHigh},   // 7.5
		{vector: "AV:N/AC:L/Au:N/C:P/I:N/A:N", want: SeverityMedium}, // 5.0
		{vector: "AV:N/AC:M/Au:N/C:P/I:N/A:N", want: SeverityMedium}, // 4.3
		{vector: "AV:L/AC:H/Au:M/C:P/I:N/A:N", want: SeverityLow},
	}
	for _, tt := range tests {
		v := MustParse(tt.vector)
		if got := v.Severity(); got != tt.want {
			t.Errorf("Severity(%s) = %v (base %v), want %v", tt.vector, got, v.BaseScore(), tt.want)
		}
	}
}

func TestSeverityString(t *testing.T) {
	if SeverityLow.String() != "LOW" || SeverityMedium.String() != "MEDIUM" || SeverityHigh.String() != "HIGH" {
		t.Error("severity labels wrong")
	}
}

func randomVector(rng *rand.Rand) Vector {
	return Vector{
		AV: AccessVector(1 + rng.Intn(3)),
		AC: AccessComplexity(1 + rng.Intn(3)),
		Au: Authentication(1 + rng.Intn(3)),
		C:  Impact(1 + rng.Intn(3)),
		I:  Impact(1 + rng.Intn(3)),
		A:  Impact(1 + rng.Intn(3)),
	}
}

// TestScoreRanges is a property test over the full metric space: all scores
// stay within specification bounds and parsing round-trips.
func TestScoreRanges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVector(rng)
		if v.Validate() != nil {
			return false
		}
		base := v.BaseScore()
		if base < 0 || base > 10 {
			return false
		}
		if imp := v.ImpactScore(); imp < 0 || imp > 10.01 {
			return false
		}
		if exp := v.ExploitabilityScore(); exp < 0 || exp > 10.01 {
			return false
		}
		asp := v.AttackSuccessProbability()
		if asp < 0 || asp > 1 {
			return false
		}
		parsed, err := Parse(v.String())
		return err == nil && parsed == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMonotonicity: increasing any impact metric never lowers the base
// score.
func TestMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVector(rng)
		base := v.BaseScore()
		if v.C < ImpactComplete {
			w := v
			w.C++
			if w.BaseScore() < base {
				return false
			}
		}
		if v.A < ImpactComplete {
			w := v
			w.A++
			if w.BaseScore() < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExploitabilityExactWeights(t *testing.T) {
	// The paper's three ASP values come from these exploitability scores.
	tests := []struct {
		vector string
		want   float64
	}{
		{vector: "AV:N/AC:L/Au:N/C:C/I:C/A:C", want: 9.9968},
		{vector: "AV:L/AC:L/Au:N/C:C/I:C/A:C", want: 3.9487},
		{vector: "AV:N/AC:M/Au:N/C:C/I:C/A:C", want: 8.5888},
	}
	for _, tt := range tests {
		v := MustParse(tt.vector)
		if got := v.ExploitabilityScore(); !mathx.AlmostEqual(got, tt.want, 1e-3) {
			t.Errorf("exploitability(%s) = %v, want %v", tt.vector, got, tt.want)
		}
	}
}

func TestValidateZeroVector(t *testing.T) {
	var v Vector
	if err := v.Validate(); err == nil {
		t.Error("zero vector should fail validation")
	}
}
