package cvss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestV3KnownScores pins the v3.1 implementation to widely published NVD
// scores.
func TestV3KnownScores(t *testing.T) {
	tests := []struct {
		name   string
		vector string
		want   float64
	}{
		{
			name:   "log4shell", // CVE-2021-44228
			vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H",
			want:   10.0,
		},
		{
			name:   "fullUnchanged", // e.g. CVE-2019-0708 BlueKeep
			vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
			want:   9.8,
		},
		{
			name:   "lowPrivFull",
			vector: "CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
			want:   8.8,
		},
		{
			name:   "highComplexityFull", // e.g. CVE-2017-0144 EternalBlue per NVD
			vector: "CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
			want:   8.1,
		},
		{
			name:   "confidentialityOnly", // e.g. CVE-2014-0160 Heartbleed
			vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N",
			want:   7.5,
		},
		{
			name:   "lowConfidentialityOnly",
			vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N",
			want:   5.3,
		},
		{
			name:   "localUserInteraction",
			vector: "CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H",
			want:   7.8,
		},
		{
			name:   "noImpact",
			vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N",
			want:   0.0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := MustParseV3(tt.vector)
			if got := v.BaseScore(); got != tt.want {
				t.Errorf("BaseScore = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestV3Severity(t *testing.T) {
	tests := []struct {
		vector string
		want   V3Severity
	}{
		{vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", want: V3SeverityCritical},
		{vector: "CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", want: V3SeverityHigh},
		{vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N", want: V3SeverityMedium},
		{vector: "CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", want: V3SeverityLow},
		{vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", want: V3SeverityNone},
	}
	for _, tt := range tests {
		v := MustParseV3(tt.vector)
		if got := v.Severity(); got != tt.want {
			t.Errorf("Severity(%s) = %v (base %v), want %v", tt.vector, got, v.BaseScore(), tt.want)
		}
	}
	if V3SeverityCritical.String() != "CRITICAL" || V3SeverityNone.String() != "NONE" {
		t.Error("severity labels wrong")
	}
}

func TestV3ParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "tooFew", give: "AV:N/AC:L/PR:N"},
		{name: "badValue", give: "CVSS:3.1/AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"},
		{name: "duplicate", give: "CVSS:3.1/AV:N/AV:N/PR:N/UI:N/S:U/C:H/I:H/A:H"},
		{name: "unknownMetric", give: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/Z:H"},
		{name: "malformed", give: "CVSS:3.1/AVN/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseV3(tt.give); err == nil {
				t.Errorf("ParseV3(%q) should fail", tt.give)
			}
		})
	}
}

func TestV3RoundTrip(t *testing.T) {
	s := "CVSS:3.1/AV:N/AC:H/PR:L/UI:R/S:C/C:L/I:H/A:N"
	v := MustParseV3(s)
	if got := v.String(); got != s {
		t.Errorf("round trip %q -> %q", s, got)
	}
	// The 3.0 prefix parses too (same base formulas in 3.1).
	if _, err := ParseV3("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"); err != nil {
		t.Errorf("3.0 prefix should parse: %v", err)
	}
}

func TestRoundup(t *testing.T) {
	tests := []struct {
		give float64
		want float64
	}{
		{give: 4.0, want: 4.0},
		{give: 4.02, want: 4.1},
		{give: 4.0000004, want: 4.0}, // float residue must not bump the score
		{give: 9.86, want: 9.9},
		{give: 0, want: 0},
	}
	for _, tt := range tests {
		if got := roundup(tt.give); got != tt.want {
			t.Errorf("roundup(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func randomV3(rng *rand.Rand) V3Vector {
	return V3Vector{
		AV: V3AttackVector(1 + rng.Intn(4)),
		AC: V3AttackComplexity(1 + rng.Intn(2)),
		PR: V3PrivilegesRequired(1 + rng.Intn(3)),
		UI: V3UserInteraction(1 + rng.Intn(2)),
		S:  V3Scope(1 + rng.Intn(2)),
		C:  V3Impact(1 + rng.Intn(3)),
		I:  V3Impact(1 + rng.Intn(3)),
		A:  V3Impact(1 + rng.Intn(3)),
	}
}

// TestV3ScoreProperties: scores stay within [0, 10] with one decimal, and
// parsing round-trips, over the whole metric space.
func TestV3ScoreProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomV3(rng)
		if v.Validate() != nil {
			return false
		}
		s := v.BaseScore()
		if s < 0 || s > 10 {
			return false
		}
		if math.Abs(s*10-math.Round(s*10)) > 1e-9 {
			return false // must have one decimal place
		}
		parsed, err := ParseV3(v.String())
		if err != nil || parsed != v {
			return false
		}
		in := v.ToModelInputs()
		return in.Impact >= 0 && in.Impact <= 10 && in.ASP >= 0 && in.ASP <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestV3Monotonicity: raising any impact metric never lowers the base
// score (scope unchanged to avoid the changed-scope impact dip at high
// ISS, which is a documented property of the v3.1 formula).
func TestV3Monotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomV3(rng)
		v.S = V3ScopeUnchanged
		base := v.BaseScore()
		if v.C < V3ImpactHigh {
			w := v
			w.C++
			if w.BaseScore() < base {
				return false
			}
		}
		if v.A < V3ImpactHigh {
			w := v
			w.A++
			if w.BaseScore() < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestV3ToModelInputs(t *testing.T) {
	// Full unchanged-scope impact (ISS weight 0.56^3 path): impact
	// sub-score 5.873 -> scaled 9.8; exploitability 3.887 -> ASP 1.0.
	v := MustParseV3("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
	in := v.ToModelInputs()
	if in.ASP != 1.0 {
		t.Errorf("ASP = %v, want 1.0", in.ASP)
	}
	if in.Impact < 9.5 || in.Impact > 10 {
		t.Errorf("Impact = %v, want near 10", in.Impact)
	}
	// A local high-complexity vector maps to a low ASP.
	local := MustParseV3("CVSS:3.1/AV:L/AC:H/PR:L/UI:R/S:U/C:H/I:H/A:H")
	if got := local.ToModelInputs().ASP; got >= 0.3 {
		t.Errorf("local ASP = %v, want well below 0.3", got)
	}
}
