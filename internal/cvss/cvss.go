// Package cvss implements Common Vulnerability Scoring System version 2
// base-metric parsing and scoring as specified by FIRST (the v2 complete
// guide). The paper derives its security-model inputs from CVSS v2: the
// impact sub-score is used as attack impact, the exploitability sub-score
// divided by ten as attack success probability, and the base score defines
// which vulnerabilities the patch policy treats as critical.
package cvss

import (
	"fmt"
	"strings"

	"redpatch/internal/mathx"
)

// AccessVector is the AV base metric.
type AccessVector int

// Access vector values.
const (
	AccessLocal AccessVector = iota + 1
	AccessAdjacent
	AccessNetwork
)

// AccessComplexity is the AC base metric.
type AccessComplexity int

// Access complexity values.
const (
	ComplexityHigh AccessComplexity = iota + 1
	ComplexityMedium
	ComplexityLow
)

// Authentication is the Au base metric.
type Authentication int

// Authentication values.
const (
	AuthMultiple Authentication = iota + 1
	AuthSingle
	AuthNone
)

// Impact is the value of each of the C, I and A base metrics.
type Impact int

// Impact values shared by the confidentiality, integrity and availability
// metrics.
const (
	ImpactNone Impact = iota + 1
	ImpactPartial
	ImpactComplete
)

// Vector is a parsed CVSS v2 base vector.
type Vector struct {
	AV AccessVector
	AC AccessComplexity
	Au Authentication
	C  Impact
	I  Impact
	A  Impact
}

// numeric weights from the CVSS v2 specification.
func (v Vector) avWeight() float64 {
	switch v.AV {
	case AccessLocal:
		return 0.395
	case AccessAdjacent:
		return 0.646
	case AccessNetwork:
		return 1.0
	}
	return 0
}

func (v Vector) acWeight() float64 {
	switch v.AC {
	case ComplexityHigh:
		return 0.35
	case ComplexityMedium:
		return 0.61
	case ComplexityLow:
		return 0.71
	}
	return 0
}

func (v Vector) auWeight() float64 {
	switch v.Au {
	case AuthMultiple:
		return 0.45
	case AuthSingle:
		return 0.56
	case AuthNone:
		return 0.704
	}
	return 0
}

func impactWeight(i Impact) float64 {
	switch i {
	case ImpactNone:
		return 0
	case ImpactPartial:
		return 0.275
	case ImpactComplete:
		return 0.660
	}
	return 0
}

// Validate reports whether every metric of the vector holds a defined
// value.
func (v Vector) Validate() error {
	if v.AV < AccessLocal || v.AV > AccessNetwork {
		return fmt.Errorf("cvss: invalid access vector %d", v.AV)
	}
	if v.AC < ComplexityHigh || v.AC > ComplexityLow {
		return fmt.Errorf("cvss: invalid access complexity %d", v.AC)
	}
	if v.Au < AuthMultiple || v.Au > AuthNone {
		return fmt.Errorf("cvss: invalid authentication %d", v.Au)
	}
	for _, i := range []Impact{v.C, v.I, v.A} {
		if i < ImpactNone || i > ImpactComplete {
			return fmt.Errorf("cvss: invalid impact value %d", i)
		}
	}
	return nil
}

// ImpactScore returns the CVSS v2 impact sub-score in [0, 10.0]:
// 10.41 * (1 - (1-C)(1-I)(1-A)), unrounded.
func (v Vector) ImpactScore() float64 {
	return 10.41 * (1 - (1-impactWeight(v.C))*(1-impactWeight(v.I))*(1-impactWeight(v.A)))
}

// ImpactScoreRounded returns the impact sub-score rounded to one decimal,
// the precision at which the paper's Table I reports attack impact.
func (v Vector) ImpactScoreRounded() float64 { return mathx.Round1(v.ImpactScore()) }

// ExploitabilityScore returns the CVSS v2 exploitability sub-score in
// [0, 10.0]: 20 * AV * AC * Au, unrounded.
func (v Vector) ExploitabilityScore() float64 {
	return 20 * v.avWeight() * v.acWeight() * v.auWeight()
}

// BaseScore returns the CVSS v2 base score rounded to one decimal:
// ((0.6*Impact) + (0.4*Exploitability) - 1.5) * f(Impact), with
// f(Impact) = 0 when the impact sub-score is zero and 1.176 otherwise.
func (v Vector) BaseScore() float64 {
	impact := v.ImpactScore()
	f := 1.176
	if impact == 0 {
		f = 0
	}
	return mathx.Round1(((0.6 * impact) + (0.4 * v.ExploitabilityScore()) - 1.5) * f)
}

// AttackSuccessProbability maps the exploitability sub-score to the
// paper's attack success probability: exploitability / 10, rounded to two
// decimals (Table I).
func (v Vector) AttackSuccessProbability() float64 {
	return mathx.Round2(v.ExploitabilityScore() / 10)
}

// Severity is the qualitative NVD rating band for CVSS v2 base scores.
type Severity int

// Severity bands per the NVD v2 rating scale.
const (
	SeverityLow Severity = iota + 1
	SeverityMedium
	SeverityHigh
)

// String returns the NVD severity label.
func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "LOW"
	case SeverityMedium:
		return "MEDIUM"
	case SeverityHigh:
		return "HIGH"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Severity returns the NVD v2 qualitative rating of the base score:
// 0.0–3.9 low, 4.0–6.9 medium, 7.0–10.0 high.
func (v Vector) Severity() Severity {
	switch s := v.BaseScore(); {
	case s < 4.0:
		return SeverityLow
	case s < 7.0:
		return SeverityMedium
	default:
		return SeverityHigh
	}
}

// String renders the vector in the canonical short form, e.g.
// "AV:N/AC:L/Au:N/C:C/I:C/A:C".
func (v Vector) String() string {
	av := map[AccessVector]string{AccessLocal: "L", AccessAdjacent: "A", AccessNetwork: "N"}[v.AV]
	ac := map[AccessComplexity]string{ComplexityHigh: "H", ComplexityMedium: "M", ComplexityLow: "L"}[v.AC]
	au := map[Authentication]string{AuthMultiple: "M", AuthSingle: "S", AuthNone: "N"}[v.Au]
	imp := map[Impact]string{ImpactNone: "N", ImpactPartial: "P", ImpactComplete: "C"}
	return fmt.Sprintf("AV:%s/AC:%s/Au:%s/C:%s/I:%s/A:%s", av, ac, au, imp[v.C], imp[v.I], imp[v.A])
}

// Parse parses a CVSS v2 base vector of the form
// "AV:N/AC:L/Au:N/C:C/I:C/A:C" (optionally wrapped in parentheses, as NVD
// renders it). All six base metrics must be present exactly once.
func Parse(s string) (Vector, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.Split(s, "/")
	if len(parts) != 6 {
		return Vector{}, fmt.Errorf("cvss: vector %q must have 6 metrics, found %d", s, len(parts))
	}
	var v Vector
	seen := make(map[string]bool, 6)
	for _, part := range parts {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return Vector{}, fmt.Errorf("cvss: malformed metric %q", part)
		}
		name, val := kv[0], kv[1]
		if seen[name] {
			return Vector{}, fmt.Errorf("cvss: duplicate metric %q", name)
		}
		seen[name] = true
		var err error
		switch name {
		case "AV":
			v.AV, err = parseAV(val)
		case "AC":
			v.AC, err = parseAC(val)
		case "Au":
			v.Au, err = parseAu(val)
		case "C":
			v.C, err = parseImpact(val)
		case "I":
			v.I, err = parseImpact(val)
		case "A":
			v.A, err = parseImpact(val)
		default:
			err = fmt.Errorf("cvss: unknown metric %q", name)
		}
		if err != nil {
			return Vector{}, err
		}
	}
	if err := v.Validate(); err != nil {
		return Vector{}, fmt.Errorf("cvss: vector %q incomplete: %w", s, err)
	}
	return v, nil
}

// MustParse is Parse for statically known vectors; it panics on error and
// is intended for curated datasets and tests.
func MustParse(s string) Vector {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

func parseAV(s string) (AccessVector, error) {
	switch s {
	case "L":
		return AccessLocal, nil
	case "A":
		return AccessAdjacent, nil
	case "N":
		return AccessNetwork, nil
	}
	return 0, fmt.Errorf("cvss: invalid AV value %q", s)
}

func parseAC(s string) (AccessComplexity, error) {
	switch s {
	case "H":
		return ComplexityHigh, nil
	case "M":
		return ComplexityMedium, nil
	case "L":
		return ComplexityLow, nil
	}
	return 0, fmt.Errorf("cvss: invalid AC value %q", s)
}

func parseAu(s string) (Authentication, error) {
	switch s {
	case "M":
		return AuthMultiple, nil
	case "S":
		return AuthSingle, nil
	case "N":
		return AuthNone, nil
	}
	return 0, fmt.Errorf("cvss: invalid Au value %q", s)
}

func parseImpact(s string) (Impact, error) {
	switch s {
	case "N":
		return ImpactNone, nil
	case "P":
		return ImpactPartial, nil
	case "C":
		return ImpactComplete, nil
	}
	return 0, fmt.Errorf("cvss: invalid impact value %q", s)
}
