package cvss

import (
	"fmt"
	"math"
	"strings"
)

// This file implements CVSS v3.1 base scoring (first.org specification).
// The paper predates v3 adoption and works from v2, but NVD stopped
// issuing v2 scores for new CVEs in 2022; supporting v3.1 lets the
// framework consume current vulnerability data. V3Vector.ToModelInputs
// adapts v3.1 scores to the paper's model inputs the same way the paper
// adapts v2 (impact sub-score as attack impact, normalized exploitability
// as attack success probability).

// V3AttackVector is the AV base metric of CVSS v3.1.
type V3AttackVector int

// V3 attack vector values.
const (
	V3AVPhysical V3AttackVector = iota + 1
	V3AVLocal
	V3AVAdjacent
	V3AVNetwork
)

// V3AttackComplexity is the AC base metric.
type V3AttackComplexity int

// V3 attack complexity values.
const (
	V3ACHigh V3AttackComplexity = iota + 1
	V3ACLow
)

// V3PrivilegesRequired is the PR base metric.
type V3PrivilegesRequired int

// V3 privileges-required values.
const (
	V3PRHigh V3PrivilegesRequired = iota + 1
	V3PRLow
	V3PRNone
)

// V3UserInteraction is the UI base metric.
type V3UserInteraction int

// V3 user-interaction values.
const (
	V3UIRequired V3UserInteraction = iota + 1
	V3UINone
)

// V3Scope is the S base metric.
type V3Scope int

// V3 scope values.
const (
	V3ScopeUnchanged V3Scope = iota + 1
	V3ScopeChanged
)

// V3Impact is the value of the C, I and A base metrics.
type V3Impact int

// V3 impact values.
const (
	V3ImpactNone V3Impact = iota + 1
	V3ImpactLow
	V3ImpactHigh
)

// V3Vector is a parsed CVSS v3.1 base vector.
type V3Vector struct {
	AV V3AttackVector
	AC V3AttackComplexity
	PR V3PrivilegesRequired
	UI V3UserInteraction
	S  V3Scope
	C  V3Impact
	I  V3Impact
	A  V3Impact
}

// Validate reports whether every metric holds a defined value.
func (v V3Vector) Validate() error {
	if v.AV < V3AVPhysical || v.AV > V3AVNetwork {
		return fmt.Errorf("cvss: invalid v3 attack vector %d", v.AV)
	}
	if v.AC < V3ACHigh || v.AC > V3ACLow {
		return fmt.Errorf("cvss: invalid v3 attack complexity %d", v.AC)
	}
	if v.PR < V3PRHigh || v.PR > V3PRNone {
		return fmt.Errorf("cvss: invalid v3 privileges required %d", v.PR)
	}
	if v.UI < V3UIRequired || v.UI > V3UINone {
		return fmt.Errorf("cvss: invalid v3 user interaction %d", v.UI)
	}
	if v.S < V3ScopeUnchanged || v.S > V3ScopeChanged {
		return fmt.Errorf("cvss: invalid v3 scope %d", v.S)
	}
	for _, i := range []V3Impact{v.C, v.I, v.A} {
		if i < V3ImpactNone || i > V3ImpactHigh {
			return fmt.Errorf("cvss: invalid v3 impact value %d", i)
		}
	}
	return nil
}

func (v V3Vector) avWeight() float64 {
	switch v.AV {
	case V3AVPhysical:
		return 0.20
	case V3AVLocal:
		return 0.55
	case V3AVAdjacent:
		return 0.62
	case V3AVNetwork:
		return 0.85
	}
	return 0
}

func (v V3Vector) acWeight() float64 {
	if v.AC == V3ACHigh {
		return 0.44
	}
	return 0.77
}

func (v V3Vector) prWeight() float64 {
	changed := v.S == V3ScopeChanged
	switch v.PR {
	case V3PRNone:
		return 0.85
	case V3PRLow:
		if changed {
			return 0.68
		}
		return 0.62
	case V3PRHigh:
		if changed {
			return 0.50
		}
		return 0.27
	}
	return 0
}

func (v V3Vector) uiWeight() float64 {
	if v.UI == V3UINone {
		return 0.85
	}
	return 0.62
}

func v3ImpactWeight(i V3Impact) float64 {
	switch i {
	case V3ImpactNone:
		return 0
	case V3ImpactLow:
		return 0.22
	case V3ImpactHigh:
		return 0.56
	}
	return 0
}

// ISS returns the impact sub-score base 1 - (1-C)(1-I)(1-A).
func (v V3Vector) ISS() float64 {
	return 1 - (1-v3ImpactWeight(v.C))*(1-v3ImpactWeight(v.I))*(1-v3ImpactWeight(v.A))
}

// ImpactScore returns the v3.1 impact sub-score (unrounded, possibly
// negative for zero-impact vectors; callers clamp via BaseScore).
func (v V3Vector) ImpactScore() float64 {
	iss := v.ISS()
	if v.S == V3ScopeUnchanged {
		return 6.42 * iss
	}
	return 7.52*(iss-0.029) - 3.25*math.Pow(iss-0.02, 15)
}

// ExploitabilityScore returns the v3.1 exploitability sub-score:
// 8.22 * AV * AC * PR * UI.
func (v V3Vector) ExploitabilityScore() float64 {
	return 8.22 * v.avWeight() * v.acWeight() * v.prWeight() * v.uiWeight()
}

// BaseScore returns the CVSS v3.1 base score with the specification's
// roundup-to-one-decimal rule.
func (v V3Vector) BaseScore() float64 {
	impact := v.ImpactScore()
	if impact <= 0 {
		return 0
	}
	expl := v.ExploitabilityScore()
	var score float64
	if v.S == V3ScopeUnchanged {
		score = math.Min(impact+expl, 10)
	} else {
		score = math.Min(1.08*(impact+expl), 10)
	}
	return roundup(score)
}

// roundup implements the v3.1 specification's Roundup: the smallest
// number with one decimal place that is >= the input, with integer
// arithmetic guarding against floating-point residue.
func roundup(x float64) float64 {
	i := int(math.Round(x * 100000))
	if i%10000 == 0 {
		return float64(i) / 100000
	}
	return (math.Floor(float64(i)/10000) + 1) / 10
}

// V3Severity returns the v3.x qualitative rating: None 0.0, Low 0.1–3.9,
// Medium 4.0–6.9, High 7.0–8.9, Critical 9.0–10.0.
type V3Severity int

// V3 severity bands.
const (
	V3SeverityNone V3Severity = iota
	V3SeverityLow
	V3SeverityMedium
	V3SeverityHigh
	V3SeverityCritical
)

// String returns the severity label.
func (s V3Severity) String() string {
	switch s {
	case V3SeverityNone:
		return "NONE"
	case V3SeverityLow:
		return "LOW"
	case V3SeverityMedium:
		return "MEDIUM"
	case V3SeverityHigh:
		return "HIGH"
	case V3SeverityCritical:
		return "CRITICAL"
	default:
		return fmt.Sprintf("V3Severity(%d)", int(s))
	}
}

// Severity classifies the base score.
func (v V3Vector) Severity() V3Severity {
	switch s := v.BaseScore(); {
	case s == 0:
		return V3SeverityNone
	case s < 4.0:
		return V3SeverityLow
	case s < 7.0:
		return V3SeverityMedium
	case s < 9.0:
		return V3SeverityHigh
	default:
		return V3SeverityCritical
	}
}

// ModelInputs are the paper-model parameters derived from a score: the
// attack impact on the 0–10 scale of Table I and the attack success
// probability in [0, 1].
type ModelInputs struct {
	Impact float64
	ASP    float64
}

// ToModelInputs adapts a v3.1 vector to the paper's inputs the same way
// the paper adapts v2: impact sub-score (v3's tops out at 6.0 for
// unchanged scope, so it is rescaled by 10/6.0 and capped at 10) and
// exploitability normalized by its 3.89 maximum, both rounded as Table I
// rounds them.
func (v V3Vector) ToModelInputs() ModelInputs {
	impact := v.ImpactScore()
	if impact < 0 {
		impact = 0
	}
	scaled := impact * 10 / 6.0
	if scaled > 10 {
		scaled = 10
	}
	const maxExploitability = 3.8870355199999994 // 8.22 * 0.85 * 0.77 * 0.85 * 0.85
	asp := v.ExploitabilityScore() / maxExploitability
	if asp > 1 {
		asp = 1
	}
	return ModelInputs{
		Impact: math.Round(scaled*10) / 10,
		ASP:    math.Round(asp*100) / 100,
	}
}

// ParseV3 parses a CVSS v3.1 base vector such as
// "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H". The "CVSS:3.x" prefix
// is optional; all eight base metrics must appear exactly once.
func ParseV3(s string) (V3Vector, error) {
	s = strings.TrimSpace(s)
	for _, prefix := range []string{"CVSS:3.1/", "CVSS:3.0/"} {
		if strings.HasPrefix(s, prefix) {
			s = strings.TrimPrefix(s, prefix)
			break
		}
	}
	parts := strings.Split(s, "/")
	if len(parts) != 8 {
		return V3Vector{}, fmt.Errorf("cvss: v3 vector %q must have 8 base metrics, found %d", s, len(parts))
	}
	var v V3Vector
	seen := make(map[string]bool, 8)
	for _, part := range parts {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return V3Vector{}, fmt.Errorf("cvss: malformed v3 metric %q", part)
		}
		name, val := kv[0], kv[1]
		if seen[name] {
			return V3Vector{}, fmt.Errorf("cvss: duplicate v3 metric %q", name)
		}
		seen[name] = true
		var err error
		switch name {
		case "AV":
			v.AV, err = parseV3AV(val)
		case "AC":
			v.AC, err = parseV3AC(val)
		case "PR":
			v.PR, err = parseV3PR(val)
		case "UI":
			v.UI, err = parseV3UI(val)
		case "S":
			v.S, err = parseV3S(val)
		case "C":
			v.C, err = parseV3Impact(val)
		case "I":
			v.I, err = parseV3Impact(val)
		case "A":
			v.A, err = parseV3Impact(val)
		default:
			err = fmt.Errorf("cvss: unknown v3 metric %q", name)
		}
		if err != nil {
			return V3Vector{}, err
		}
	}
	if err := v.Validate(); err != nil {
		return V3Vector{}, fmt.Errorf("cvss: v3 vector %q incomplete: %w", s, err)
	}
	return v, nil
}

// MustParseV3 is ParseV3 for statically known vectors; panics on error.
func MustParseV3(s string) V3Vector {
	v, err := ParseV3(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the vector in canonical form with the CVSS:3.1 prefix.
func (v V3Vector) String() string {
	av := map[V3AttackVector]string{V3AVPhysical: "P", V3AVLocal: "L", V3AVAdjacent: "A", V3AVNetwork: "N"}[v.AV]
	ac := map[V3AttackComplexity]string{V3ACHigh: "H", V3ACLow: "L"}[v.AC]
	pr := map[V3PrivilegesRequired]string{V3PRHigh: "H", V3PRLow: "L", V3PRNone: "N"}[v.PR]
	ui := map[V3UserInteraction]string{V3UIRequired: "R", V3UINone: "N"}[v.UI]
	sc := map[V3Scope]string{V3ScopeUnchanged: "U", V3ScopeChanged: "C"}[v.S]
	imp := map[V3Impact]string{V3ImpactNone: "N", V3ImpactLow: "L", V3ImpactHigh: "H"}
	return fmt.Sprintf("CVSS:3.1/AV:%s/AC:%s/PR:%s/UI:%s/S:%s/C:%s/I:%s/A:%s",
		av, ac, pr, ui, sc, imp[v.C], imp[v.I], imp[v.A])
}

func parseV3AV(s string) (V3AttackVector, error) {
	switch s {
	case "P":
		return V3AVPhysical, nil
	case "L":
		return V3AVLocal, nil
	case "A":
		return V3AVAdjacent, nil
	case "N":
		return V3AVNetwork, nil
	}
	return 0, fmt.Errorf("cvss: invalid v3 AV value %q", s)
}

func parseV3AC(s string) (V3AttackComplexity, error) {
	switch s {
	case "H":
		return V3ACHigh, nil
	case "L":
		return V3ACLow, nil
	}
	return 0, fmt.Errorf("cvss: invalid v3 AC value %q", s)
}

func parseV3PR(s string) (V3PrivilegesRequired, error) {
	switch s {
	case "H":
		return V3PRHigh, nil
	case "L":
		return V3PRLow, nil
	case "N":
		return V3PRNone, nil
	}
	return 0, fmt.Errorf("cvss: invalid v3 PR value %q", s)
}

func parseV3UI(s string) (V3UserInteraction, error) {
	switch s {
	case "R":
		return V3UIRequired, nil
	case "N":
		return V3UINone, nil
	}
	return 0, fmt.Errorf("cvss: invalid v3 UI value %q", s)
}

func parseV3S(s string) (V3Scope, error) {
	switch s {
	case "U":
		return V3ScopeUnchanged, nil
	case "C":
		return V3ScopeChanged, nil
	}
	return 0, fmt.Errorf("cvss: invalid v3 S value %q", s)
}

func parseV3Impact(s string) (V3Impact, error) {
	switch s {
	case "N":
		return V3ImpactNone, nil
	case "L":
		return V3ImpactLow, nil
	case "H":
		return V3ImpactHigh, nil
	}
	return 0, fmt.Errorf("cvss: invalid v3 impact value %q", s)
}
