// Package harm implements the two-layered Hierarchical Attack
// Representation Model of Hong & Kim that the paper uses as its security
// model: the upper layer is an attack graph over host instances
// (internal/attackgraph), the lower layer an attack tree per host
// (internal/attacktree). The package builds HARMs from a network topology
// plus per-role attack-tree templates, applies the security-patch
// transformation, and evaluates the paper's five security metrics —
// attack impact (AIM), attack success probability (ASP), number of
// exploitable vulnerabilities (NoEV), number of attack paths (NoAP) and
// number of entry points (NoEP).
//
// Replica-redundant networks repeat identical hosts; the factored
// evaluator (factored.go) exploits that symmetry to compute the same
// metrics on a replica-collapsed quotient model in closed form.
package harm

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"redpatch/internal/attackgraph"
	"redpatch/internal/attacktree"
	"redpatch/internal/mathx"
	"redpatch/internal/topology"
)

// BuildInput carries everything the security model generator needs.
type BuildInput struct {
	// Topology is the network with one attacker node and role-annotated
	// hosts.
	Topology *topology.Topology
	// Trees maps a host role (e.g. "web") to its attack-tree template.
	// Every host of that role receives a clone of the template. Roles
	// without a template are treated as having no exploitable
	// vulnerabilities.
	Trees map[string]*attacktree.Tree
	// InstanceTrees overrides the role template for specific host
	// instances by name — the paper's §V heterogeneous redundancy, where
	// replicas of one tier run different software stacks.
	InstanceTrees map[string]*attacktree.Tree
	// TargetRoles are the roles whose hosts are the attacker's goal
	// (the database servers in the paper).
	TargetRoles []string
}

// HARM is a two-layered hierarchical attack representation model.
type HARM struct {
	top       *topology.Topology
	roles     map[string]*attacktree.Tree // templates by role (already pruned for patched HARMs)
	instances map[string]*attacktree.Tree // per-instance overrides (already pruned for patched HARMs)
	upper     *attackgraph.Graph
	lower     map[string]*attacktree.Tree // per host instance; replicas of one role share the template tree
	hosts     []string                    // sorted host names (keys of lower)
	attacker  string
	targets   []string
	tgtRoles  []string
}

// emptyTree is the shared stand-in for hosts without an attack tree. The
// lower layer aliases it rather than allocating one per host; Tree values
// are read-only once built, so sharing is safe.
var emptyTree = attacktree.New(nil)

// Build constructs the HARM: the upper layer contains the attacker and
// every host whose attack tree is non-empty (a host without exploitable
// vulnerabilities cannot be compromised, so it cannot appear on an attack
// path); the lower layer references one cloned attack tree per role (or
// per overridden instance), shared across that role's replicas.
func Build(in BuildInput) (*HARM, error) {
	if in.Topology == nil {
		return nil, errors.New("harm: nil topology")
	}
	if err := in.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("harm: %w", err)
	}
	attackers := in.Topology.Attackers()
	if len(attackers) != 1 {
		return nil, fmt.Errorf("harm: want exactly one attacker node, have %d", len(attackers))
	}
	if len(in.TargetRoles) == 0 {
		return nil, errors.New("harm: no target roles")
	}

	roles := make(map[string]*attacktree.Tree, len(in.Trees))
	for role, tr := range in.Trees {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("harm: role %q: %w", role, err)
		}
		roles[role] = tr.Clone()
	}
	instances := make(map[string]*attacktree.Tree, len(in.InstanceTrees))
	for host, tr := range in.InstanceTrees {
		if _, ok := in.Topology.Node(host); !ok {
			return nil, fmt.Errorf("harm: instance tree for unknown host %q", host)
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("harm: host %q: %w", host, err)
		}
		instances[host] = tr.Clone()
	}
	return assemble(in.Topology, roles, instances, attackers[0].Name, in.TargetRoles)
}

// assemble wires a HARM from an already-validated topology and
// already-owned attack trees — the shared tail of Build and Patched.
// Hosts alias the role (or instance) tree directly instead of cloning it
// per replica; the trees are never mutated after assembly.
func assemble(top *topology.Topology, roles, instances map[string]*attacktree.Tree, attacker string, targetRoles []string) (*HARM, error) {
	h := &HARM{
		top:       top,
		roles:     roles,
		instances: instances,
		lower:     make(map[string]*attacktree.Tree),
		attacker:  attacker,
		tgtRoles:  append([]string(nil), targetRoles...),
	}

	targetRole := make(map[string]bool, len(targetRoles))
	for _, r := range targetRoles {
		targetRole[r] = true
	}

	upper := attackgraph.New()
	if err := upper.AddNode(h.attacker); err != nil {
		return nil, err
	}
	for _, host := range top.Hosts() {
		tr := instances[host.Name]
		if tr == nil {
			tr = roles[host.Role]
		}
		if tr == nil {
			tr = emptyTree
		}
		h.lower[host.Name] = tr
		h.hosts = append(h.hosts, host.Name)
		if tr.Empty() {
			continue // not attackable: excluded from the upper layer
		}
		if err := upper.AddNode(host.Name); err != nil {
			return nil, err
		}
		if targetRole[host.Role] {
			h.targets = append(h.targets, host.Name)
		}
	}
	sort.Strings(h.hosts)
	sort.Strings(h.targets)
	if len(h.targets) == 0 {
		// Legal (e.g. every target patched clean); path metrics are zero.
		h.upper = upper
		return h, nil
	}
	for _, n := range top.Nodes() {
		if !upper.HasNode(n.Name) {
			continue
		}
		for _, to := range top.Successors(n.Name) {
			if upper.HasNode(to) {
				if err := upper.AddEdge(n.Name, to); err != nil {
					return nil, err
				}
			}
		}
	}
	h.upper = upper
	return h, nil
}

// Patched returns a new HARM in which every attack-tree leaf rejected by
// keep has been removed (the paper's patch transformation: patching a
// vulnerability deletes its leaf, AND-combinations collapse, hosts left
// with empty trees drop out of the attack graph). keep receives the host
// role together with the leaf; for instance-tree overrides the role is
// the host's role from the topology. The patched model overlays pruned
// trees on the already-validated topology — nothing is re-validated and
// no per-host tree is cloned.
func (h *HARM) Patched(keep func(role string, leaf *attacktree.Leaf) bool) (*HARM, error) {
	pruned := make(map[string]*attacktree.Tree, len(h.roles))
	for role, tr := range h.roles {
		role := role
		pruned[role] = tr.Prune(func(l *attacktree.Leaf) bool { return keep(role, l) })
	}
	prunedInst := make(map[string]*attacktree.Tree, len(h.instances))
	for host, tr := range h.instances {
		role := ""
		if n, ok := h.top.Node(host); ok {
			role = n.Role
		}
		prunedInst[host] = tr.Prune(func(l *attacktree.Leaf) bool { return keep(role, l) })
	}
	return assemble(h.top, pruned, prunedInst, h.attacker, h.tgtRoles)
}

// Attacker returns the attacker node name.
func (h *HARM) Attacker() string { return h.attacker }

// Targets returns the target host names, sorted.
func (h *HARM) Targets() []string { return append([]string(nil), h.targets...) }

// Hosts returns every host instance name (attackable or not), sorted.
func (h *HARM) Hosts() []string {
	return append([]string(nil), h.hosts...)
}

// Tree returns the attack tree of the given host instance (possibly
// empty), or nil if the host is unknown. Replicas of one role share the
// returned tree; callers must treat it as read-only.
func (h *HARM) Tree(host string) *attacktree.Tree { return h.lower[host] }

// Upper returns a copy of the upper-layer attack graph.
func (h *HARM) Upper() *attackgraph.Graph { return h.upper.Clone() }

// ASPStrategy selects how per-path success probabilities aggregate to the
// network-level ASP. See DESIGN.md §3 for why more than one is provided.
type ASPStrategy int

// ASP aggregation strategies.
const (
	// ASPMaxPath takes the maximum over attack paths of the product of
	// per-host probabilities — the rule in the framework papers the
	// authors cite ([18], [20]). Insensitive to redundancy.
	ASPMaxPath ASPStrategy = iota + 1
	// ASPIndependentPaths combines path probabilities as 1 - prod(1-p):
	// each path is an independent chance. Over-counts paths that share
	// hosts.
	ASPIndependentPaths
	// ASPCompromise computes the exact probability that at least one
	// attack path is fully compromised when each host is independently
	// compromised with its tree probability (inclusion–exclusion over
	// paths). This is the package default: it grows with redundancy, as
	// the paper's Figure 6(b) requires, without over-counting shared
	// hosts.
	ASPCompromise
)

// EvalOptions configures metric evaluation. The zero value applies the
// documented defaults.
type EvalOptions struct {
	// Strategy defaults to ASPCompromise.
	Strategy ASPStrategy
	// ORRule defaults to attacktree.ORMax (the HARM literature rule).
	ORRule attacktree.ORRule
	// MaxPaths caps attack-path enumeration; default 100000.
	MaxPaths int
	// MaxPathsExact caps the exponent of the exact ASPCompromise
	// computation: min(#paths, #hosts-on-paths) must not exceed it;
	// default 20.
	MaxPathsExact int
}

func (o EvalOptions) withDefaults() EvalOptions {
	if o.Strategy == 0 {
		o.Strategy = ASPCompromise
	}
	if o.ORRule == 0 {
		o.ORRule = attacktree.ORMax
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 100000
	}
	if o.MaxPathsExact <= 0 {
		o.MaxPathsExact = 20
	}
	return o
}

// PathMetric is the per-path detail underlying AIM and ASP.
type PathMetric struct {
	Path   attackgraph.Path
	Impact float64 // sum of host impacts along the path
	Prob   float64 // product of host probabilities along the path
	// Count is the number of concrete attack paths the entry stands for:
	// 1 in expanded-topology evaluations, the replica multiplicity
	// product in factored (quotient) evaluations.
	Count int
}

// Metrics are the paper's five security metrics plus per-path detail.
type Metrics struct {
	// AIM is the network-level attack impact: max over paths of the path
	// impact (paper §III-C).
	AIM float64
	// ASP is the network-level attack success probability under the
	// configured strategy.
	ASP float64
	// NoEV is the number of exploitable vulnerabilities summed over every
	// host instance (paper Table II counting rule).
	NoEV int
	// NoAP is the number of attack paths.
	NoAP int
	// NoEP is the number of entry points (distinct first hops).
	NoEP int
	// ShortestPath is the minimum number of hosts the attacker must
	// compromise to reach a target (0 when no path exists) — the
	// "shortest attack path" metric of the security-metrics survey the
	// paper cites.
	ShortestPath int
	// Paths is the per-path detail, in deterministic order. Factored
	// evaluations list quotient (per-class) paths with Count carrying the
	// replica multiplicity.
	Paths []PathMetric
}

// ErrExactASPInfeasible reports that the exact compromise probability
// cannot be computed within the configured limits; pick another strategy
// or raise the caps.
var ErrExactASPInfeasible = errors.New("harm: exact ASP computation infeasible")

// treeMetrics evaluates impact, probability and leaf count once per
// distinct tree. Replicas alias their role's tree, so an n-replica tier
// costs one tree walk instead of n.
type treeMetrics struct {
	impact, prob float64
	leaves       int
}

func metricsByTree(lower map[string]*attacktree.Tree, rule attacktree.ORRule) map[*attacktree.Tree]treeMetrics {
	out := make(map[*attacktree.Tree]treeMetrics, len(lower))
	for _, tr := range lower {
		if _, ok := out[tr]; ok {
			continue
		}
		im, pr := tr.Metrics(rule)
		out[tr] = treeMetrics{impact: im, prob: pr, leaves: tr.LeafCount()}
	}
	return out
}

// Evaluate computes the security metrics of the HARM.
func (h *HARM) Evaluate(opts EvalOptions) (Metrics, error) {
	opts = opts.withDefaults()

	byTree := metricsByTree(h.lower, opts.ORRule)
	var m Metrics
	for _, tr := range h.lower {
		m.NoEV += byTree[tr].leaves
	}
	if len(h.targets) == 0 {
		return m, nil
	}
	paths, err := h.upper.AllPaths(h.attacker, h.targets, attackgraph.AllPathsOptions{MaxPaths: opts.MaxPaths})
	if err != nil {
		return Metrics{}, fmt.Errorf("harm: %w", err)
	}
	m.NoAP = len(paths)
	m.NoEP = len(attackgraph.EntryPoints(paths))

	prob := make(map[string]float64, len(h.lower))
	for host, tr := range h.lower {
		prob[host] = byTree[tr].prob
	}

	m.Paths = make([]PathMetric, len(paths))
	for i, p := range paths {
		pm := PathMetric{Path: p, Prob: 1, Count: 1}
		for _, host := range p[1:] { // skip the attacker node
			tm := byTree[h.lower[host]]
			pm.Impact += tm.impact
			pm.Prob *= tm.prob
		}
		m.Paths[i] = pm
		if pm.Impact > m.AIM {
			m.AIM = pm.Impact
		}
		if hops := len(p) - 1; m.ShortestPath == 0 || hops < m.ShortestPath {
			m.ShortestPath = hops
		}
	}

	switch opts.Strategy {
	case ASPMaxPath:
		for _, pm := range m.Paths {
			if pm.Prob > m.ASP {
				m.ASP = pm.Prob
			}
		}
	case ASPIndependentPaths:
		q := 1.0
		for _, pm := range m.Paths {
			q *= 1 - pm.Prob
		}
		m.ASP = mathx.Clamp01(1 - q)
	case ASPCompromise:
		asp, err := compromiseProbability(paths, prob, opts.MaxPathsExact)
		if err != nil {
			return Metrics{}, err
		}
		m.ASP = asp
	default:
		return Metrics{}, fmt.Errorf("harm: unknown ASP strategy %d", opts.Strategy)
	}
	return m, nil
}

// HostSummary is the per-host view of the security model: the host's own
// attack-tree metrics plus its centrality (how many attack paths cross
// it). High-centrality hosts are the chokepoints where hardening or
// monitoring buys the most.
type HostSummary struct {
	Host string
	// Vulns is the number of exploitable vulnerabilities on the host.
	Vulns int
	// Impact and Prob are the host's attack-tree metrics.
	Impact, Prob float64
	// Centrality is the number of attack paths through the host.
	Centrality int
}

// HostSummaries evaluates the per-host detail, sorted by descending
// centrality and then by host name.
func (h *HARM) HostSummaries(opts EvalOptions) ([]HostSummary, error) {
	opts = opts.withDefaults()
	var paths []attackgraph.Path
	if len(h.targets) > 0 {
		var err error
		paths, err = h.upper.AllPaths(h.attacker, h.targets, attackgraph.AllPathsOptions{MaxPaths: opts.MaxPaths})
		if err != nil {
			return nil, fmt.Errorf("harm: %w", err)
		}
	}
	centrality := attackgraph.Centrality(paths)
	byTree := metricsByTree(h.lower, opts.ORRule)
	out := make([]HostSummary, 0, len(h.lower))
	for _, host := range h.hosts {
		tm := byTree[h.lower[host]]
		out = append(out, HostSummary{
			Host:       host,
			Vulns:      tm.leaves,
			Impact:     tm.impact,
			Prob:       tm.prob,
			Centrality: centrality[host],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Centrality != out[j].Centrality {
			return out[i].Centrality > out[j].Centrality
		}
		return out[i].Host < out[j].Host
	})
	return out, nil
}

// compromiseProbability computes P(at least one path fully compromised)
// with hosts compromised independently with probability prob[host]. Two
// exact algorithms are available and the cheaper one is chosen: inclusion–
// exclusion over path subsets (2^paths terms) or direct enumeration of
// host-compromise combinations (2^hosts terms). maxExact caps the chosen
// exponent; redundant tiered networks have few distinct hosts even when
// their path counts multiply, so at least one algorithm usually applies.
func compromiseProbability(paths []attackgraph.Path, prob map[string]float64, maxExact int) (float64, error) {
	k := len(paths)
	if k == 0 {
		return 0, nil
	}
	// Index the hosts appearing on any path; 64 suffice for a bitmask.
	hostIdx := make(map[string]int)
	var hostProb []float64
	for _, p := range paths {
		for _, host := range p[1:] {
			if _, ok := hostIdx[host]; !ok {
				hostIdx[host] = len(hostProb)
				hostProb = append(hostProb, prob[host])
			}
		}
	}
	h := len(hostProb)
	if h > 64 {
		return 0, fmt.Errorf("%w: %d distinct hosts exceed 64", ErrExactASPInfeasible, h)
	}
	pathMask := make([]uint64, k)
	for i, p := range paths {
		var mask uint64
		for _, host := range p[1:] {
			mask |= 1 << uint(hostIdx[host])
		}
		pathMask[i] = mask
	}
	switch {
	case k <= maxExact && (k <= h || h > maxExact):
		return inclusionExclusion(pathMask, hostProb), nil
	case h <= maxExact:
		return hostEnumeration(pathMask, hostProb), nil
	default:
		return 0, fmt.Errorf("%w: %d paths over %d hosts exceed cap %d", ErrExactASPInfeasible, k, h, maxExact)
	}
}

// inclusionExclusion sums, for every non-empty subset S of paths, the
// probability that every host on the union of S is compromised, with sign
// (-1)^(|S|+1). The include/exclude recursion carries the union mask and
// its probability product down the call tree, multiplying in only the
// hosts a path newly adds — no 2^k scratch table, no per-subset product
// from scratch.
func inclusionExclusion(pathMask []uint64, hostProb []float64) float64 {
	var rec func(i int, mask uint64, p, sign float64) float64
	rec = func(i int, mask uint64, p, sign float64) float64 {
		if i == len(pathMask) {
			if mask == 0 {
				return 0 // the empty subset contributes nothing
			}
			return sign * p
		}
		total := rec(i+1, mask, p, sign)
		pin := p
		for m := pathMask[i] &^ mask; m != 0; m &= m - 1 {
			pin *= hostProb[bits.TrailingZeros64(m)]
		}
		return total + rec(i+1, mask|pathMask[i], pin, -sign)
	}
	return mathx.Clamp01(rec(0, 0, 1, -1))
}

// hostEnumeration sums the probability of every host-compromise
// combination in which at least one path is fully compromised. The
// recursion accumulates the combination probability incrementally and
// abandons subtrees whose probability has already collapsed to zero
// (hosts with certain compromise contribute no mass to their
// not-compromised branch).
func hostEnumeration(pathMask []uint64, hostProb []float64) float64 {
	h := len(hostProb)
	var rec func(i int, mask uint64, p float64) float64
	rec = func(i int, mask uint64, p float64) float64 {
		if p == 0 {
			return 0
		}
		if i == h {
			for _, pm := range pathMask {
				if pm&mask == pm {
					return p
				}
			}
			return 0
		}
		return rec(i+1, mask, p*(1-hostProb[i])) +
			rec(i+1, mask|1<<uint(i), p*hostProb[i])
	}
	return mathx.Clamp01(rec(0, 0, 1))
}
