package harm

import (
	"fmt"

	"redpatch/internal/attackgraph"
	"redpatch/internal/attacktree"
	"redpatch/internal/mathx"
)

// This file implements the factored (replica-symmetric) security
// evaluator. Redundant designs repeat identical hosts: every replica of a
// (role, stack) class runs the same attack tree and — because tiers
// connect all-to-all — has exactly the same reachability. The expanded
// HARM therefore carries no information the replica-collapsed quotient
// does not: its attack paths are the quotient's paths with one instance
// chosen per class, so path counts multiply by the class multiplicities
// and the exact compromise probability factors per class.
//
// Concretely, for a quotient path P over classes c with multiplicities
// n_c and per-instance compromise probabilities p_c:
//
//   - every expanded path along P has probability prod_{c in P} p_c and
//     there are prod_{c in P} n_c of them;
//   - "some expanded path along P is fully compromised" is exactly
//     "every class on P has at least one compromised instance", an event
//     of probability prod_{c in P} (1 - (1-p_c)^{n_c}) with the class
//     events independent across classes — any choice of compromised
//     instances forms a valid expanded path precisely because inter-tier
//     connectivity is all-to-all.
//
// So ASP under every strategy, AIM, NoAP, NoEP, NoEV and the shortest
// path all follow from the quotient in closed form. A replica-R design
// evaluates on a graph whose size is independent of R; the expanded
// evaluator (Evaluate) remains as the cross-validation oracle
// (TestFactoredSecurityEquivalence).

// FactoredHARM is the quotient security model: a HARM whose hosts are
// replica classes rather than host instances. Build it with
// BuildFactored over the replica-collapsed topology; evaluate it with
// per-class multiplicities. A FactoredHARM is immutable after
// construction and safe for concurrent Evaluate calls, so one model
// serves every replica vector of a design family.
type FactoredHARM struct {
	h *HARM
}

// BuildFactored constructs the factored model from a quotient topology:
// one host node per replica class, with the class's attack tree resolved
// through the usual role/instance template rules. The topology must
// satisfy the quotient premise — within a class all replicas are
// identical and identically connected — which holds by construction for
// topologies produced by replica-collapsing a tiered design
// (paperdata.SpecQuotient).
func BuildFactored(in BuildInput) (*FactoredHARM, error) {
	h, err := Build(in)
	if err != nil {
		return nil, err
	}
	return &FactoredHARM{h: h}, nil
}

// Patched returns the factored model after the patch transformation,
// mirroring HARM.Patched: classes whose pruned trees empty drop out of
// the quotient graph, exactly as their expanded replicas would.
func (f *FactoredHARM) Patched(keep func(role string, leaf *attacktree.Leaf) bool) (*FactoredHARM, error) {
	h, err := f.h.Patched(keep)
	if err != nil {
		return nil, err
	}
	return &FactoredHARM{h: h}, nil
}

// Quotient exposes the underlying quotient HARM (classes as hosts).
func (f *FactoredHARM) Quotient() *HARM { return f.h }

// Evaluate computes the full expanded-topology security metrics from the
// quotient in closed form. mult maps class host names to their replica
// counts; classes absent from the map count one replica. Metrics.Paths
// lists quotient paths with Count carrying each path's expanded
// multiplicity.
//
// The MaxPaths and MaxPathsExact caps apply to the quotient enumeration,
// so designs whose expanded path counts would blow past the expanded
// evaluator's limits stay exactly evaluable here — that is the point.
func (f *FactoredHARM) Evaluate(mult map[string]int, opts EvalOptions) (Metrics, error) {
	h := f.h
	opts = opts.withDefaults()
	for class, n := range mult {
		if _, ok := h.lower[class]; !ok {
			return Metrics{}, fmt.Errorf("harm: multiplicity for unknown class %q", class)
		}
		if n < 1 {
			return Metrics{}, fmt.Errorf("harm: class %q multiplicity %d below 1", class, n)
		}
	}
	multOf := func(class string) int {
		if n, ok := mult[class]; ok {
			return n
		}
		return 1
	}

	byTree := metricsByTree(h.lower, opts.ORRule)
	var m Metrics
	for class, tr := range h.lower {
		m.NoEV += multOf(class) * byTree[tr].leaves
	}
	if len(h.targets) == 0 {
		return m, nil
	}
	paths, err := h.upper.AllPaths(h.attacker, h.targets, attackgraph.AllPathsOptions{MaxPaths: opts.MaxPaths})
	if err != nil {
		return Metrics{}, fmt.Errorf("harm: %w", err)
	}

	m.Paths = make([]PathMetric, len(paths))
	entries := make(map[string]bool)
	for i, p := range paths {
		pm := PathMetric{Path: p, Prob: 1, Count: 1}
		for _, class := range p[1:] {
			tm := byTree[h.lower[class]]
			pm.Impact += tm.impact
			pm.Prob *= tm.prob
			pm.Count *= multOf(class)
		}
		m.Paths[i] = pm
		m.NoAP += pm.Count
		if len(p) >= 2 && !entries[p[1]] {
			entries[p[1]] = true
			m.NoEP += multOf(p[1])
		}
		if pm.Impact > m.AIM {
			m.AIM = pm.Impact
		}
		if hops := len(p) - 1; m.ShortestPath == 0 || hops < m.ShortestPath {
			m.ShortestPath = hops
		}
	}

	switch opts.Strategy {
	case ASPMaxPath:
		// Every expanded path along a quotient path shares its
		// probability, so the maximum is multiplicity-blind.
		for _, pm := range m.Paths {
			if pm.Prob > m.ASP {
				m.ASP = pm.Prob
			}
		}
	case ASPIndependentPaths:
		q := 1.0
		for _, pm := range m.Paths {
			q *= intPow(1-pm.Prob, pm.Count)
		}
		m.ASP = mathx.Clamp01(1 - q)
	case ASPCompromise:
		// Per-class effective probability: at least one of the n_c
		// replicas compromised. The class events are independent, so the
		// expanded exact computation reduces to the same machinery over
		// quotient paths.
		eff := make(map[string]float64, len(h.lower))
		for class, tr := range h.lower {
			eff[class] = mathx.Clamp01(1 - intPow(1-byTree[tr].prob, multOf(class)))
		}
		asp, err := compromiseProbability(paths, eff, opts.MaxPathsExact)
		if err != nil {
			return Metrics{}, err
		}
		m.ASP = asp
	default:
		return Metrics{}, fmt.Errorf("harm: unknown ASP strategy %d", opts.Strategy)
	}
	return m, nil
}

// Classes returns the quotient's class names, sorted.
func (f *FactoredHARM) Classes() []string { return f.h.Hosts() }

// intPow raises x to a non-negative integer power by binary
// exponentiation: exact for the 0/1 endpoints the attack trees produce,
// deterministic, and O(log n) even for the path-multiplicity exponents
// of large replica counts.
func intPow(x float64, n int) float64 {
	p := 1.0
	for n > 0 {
		if n&1 == 1 {
			p *= x
		}
		x *= x
		n >>= 1
	}
	return p
}
