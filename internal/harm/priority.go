package harm

import (
	"fmt"
	"sort"

	"redpatch/internal/attacktree"
)

// Risk is the combined network-level risk of the metrics: attack success
// probability times attack impact, the standard composition in the
// security-metrics survey the paper cites.
func (m Metrics) Risk() float64 { return m.ASP * m.AIM }

// PatchCandidate reports the network-level effect of patching a single
// vulnerability everywhere it occurs.
type PatchCandidate struct {
	// Ref is the vulnerability reference (CVE ID in the paper dataset).
	Ref string
	// Hosts lists the host instances whose attack trees carry the
	// vulnerability, sorted.
	Hosts []string
	// After holds the network metrics with only this vulnerability
	// patched.
	After Metrics
	// RiskReduction is Risk(before) - Risk(after); the ranking key.
	RiskReduction float64
}

// RankPatchCandidates evaluates, for every distinct vulnerability in the
// HARM, the security metrics of the network with only that vulnerability
// patched, and returns the candidates sorted by descending risk
// reduction (ties broken by reference). It answers the prioritization
// question behind the paper's observation that patching everything is
// infeasible "due to time and cost constraints": which single patch buys
// the most security.
func (h *HARM) RankPatchCandidates(opts EvalOptions) ([]PatchCandidate, error) {
	return h.RankPatchCandidatesWhere(opts, nil)
}

// RankPatchCandidatesWhere is RankPatchCandidates restricted to the
// vulnerabilities eligible accepts — the ranking a patch policy needs
// when only its selected set is up for patching. A nil eligible ranks
// every vulnerability.
func (h *HARM) RankPatchCandidatesWhere(opts EvalOptions, eligible func(ref string) bool) ([]PatchCandidate, error) {
	before, err := h.Evaluate(opts)
	if err != nil {
		return nil, err
	}
	refHosts := make(map[string][]string)
	for _, host := range h.Hosts() {
		seen := make(map[string]bool)
		for _, leaf := range h.lower[host].Leaves() {
			if !seen[leaf.Ref] {
				seen[leaf.Ref] = true
				refHosts[leaf.Ref] = append(refHosts[leaf.Ref], host)
			}
		}
	}
	refs := make([]string, 0, len(refHosts))
	for ref := range refHosts {
		if eligible == nil || eligible(ref) {
			refs = append(refs, ref)
		}
	}
	sort.Strings(refs)

	out := make([]PatchCandidate, 0, len(refs))
	for _, ref := range refs {
		ref := ref
		patched, err := h.Patched(func(role string, l *attacktree.Leaf) bool { return l.Ref != ref })
		if err != nil {
			return nil, fmt.Errorf("harm: ranking %s: %w", ref, err)
		}
		after, err := patched.Evaluate(opts)
		if err != nil {
			return nil, fmt.Errorf("harm: ranking %s: %w", ref, err)
		}
		hosts := append([]string(nil), refHosts[ref]...)
		sort.Strings(hosts)
		out = append(out, PatchCandidate{
			Ref:           ref,
			Hosts:         hosts,
			After:         after,
			RiskReduction: before.Risk() - after.Risk(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].RiskReduction != out[j].RiskReduction {
			return out[i].RiskReduction > out[j].RiskReduction
		}
		return out[i].Ref < out[j].Ref
	})
	return out, nil
}

// GreedyPatchPlan selects up to k vulnerabilities by repeatedly patching
// the one with the largest remaining risk reduction, re-evaluating the
// network after each pick. It returns the chosen references in order and
// the metrics after applying all of them. The greedy loop stops early
// when no candidate reduces risk further.
func (h *HARM) GreedyPatchPlan(k int, opts EvalOptions) ([]string, Metrics, error) {
	if k < 0 {
		return nil, Metrics{}, fmt.Errorf("harm: negative plan size %d", k)
	}
	current := h
	var chosen []string
	metrics, err := current.Evaluate(opts)
	if err != nil {
		return nil, Metrics{}, err
	}
	for len(chosen) < k {
		candidates, err := current.RankPatchCandidates(opts)
		if err != nil {
			return nil, Metrics{}, err
		}
		if len(candidates) == 0 || candidates[0].RiskReduction <= 0 {
			break
		}
		best := candidates[0]
		chosen = append(chosen, best.Ref)
		current, err = current.Patched(func(role string, l *attacktree.Leaf) bool { return l.Ref != best.Ref })
		if err != nil {
			return nil, Metrics{}, err
		}
		metrics = best.After
	}
	return chosen, metrics, nil
}
