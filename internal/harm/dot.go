package harm

import (
	"fmt"
	"strings"

	"redpatch/internal/attacktree"
)

// DOT renders the two-layered HARM in Graphviz dot format: the upper
// layer's reachability edges with the attacker as a diamond, and each
// host labelled with its lower-layer attack tree (the s-expression form)
// plus its node-level impact and success probability. Hosts that fell
// out of the attack graph (empty trees after patching) appear greyed
// out. The output is deterministic.
func (h *HARM) DOT() string {
	var b strings.Builder
	b.WriteString("digraph harm {\n  rankdir=LR;\n  node [shape=box];\n")
	fmt.Fprintf(&b, "  %q [shape=diamond];\n", h.attacker)

	targets := make(map[string]bool, len(h.targets))
	for _, t := range h.targets {
		targets[t] = true
	}
	for _, host := range h.Hosts() {
		tr := h.lower[host]
		attrs := []string{
			fmt.Sprintf("label=\"%s\\n%s\\nimpact %.1f, prob %.2f\"",
				host, escapeDOT(tr.String()), tr.Impact(), tr.Probability(attacktree.ORMax)),
		}
		if tr.Empty() {
			attrs = append(attrs, "style=dashed", "color=gray")
		}
		if targets[host] {
			attrs = append(attrs, "peripheries=2")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", host, strings.Join(attrs, ", "))
	}
	for _, from := range h.upper.Nodes() {
		for _, to := range h.upper.Successors(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
