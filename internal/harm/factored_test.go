package harm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"redpatch/internal/attacktree"
	"redpatch/internal/mathx"
	"redpatch/internal/topology"
)

// quotientPaperTopology is the replica-collapsed paper network: one node
// per (role, stack) class.
func quotientPaperTopology(t *testing.T) *topology.Topology {
	t.Helper()
	top := topology.New()
	top.MustAddNode(topology.Node{Name: "attacker", Kind: topology.KindAttacker, Subnet: "internet"})
	top.MustAddNode(topology.Node{Name: "dns", Kind: topology.KindHost, Subnet: "dmz2", Role: "dns"})
	top.MustAddNode(topology.Node{Name: "web", Kind: topology.KindHost, Subnet: "dmz1", Role: "web"})
	top.MustAddNode(topology.Node{Name: "app", Kind: topology.KindHost, Subnet: "intranet", Role: "app"})
	top.MustAddNode(topology.Node{Name: "db", Kind: topology.KindHost, Subnet: "intranet", Role: "db"})
	for _, e := range [][2]string{
		{"attacker", "dns"}, {"attacker", "web"},
		{"dns", "web"}, {"web", "app"}, {"app", "db"},
	} {
		top.MustConnect(e[0], e[1])
	}
	return top
}

// TestFactoredMatchesPaperTableII: the factored evaluation of the
// quotient model with multiplicities {web: 2, app: 2} must reproduce the
// paper's Table II metrics that the expanded base network produces.
func TestFactoredMatchesPaperTableII(t *testing.T) {
	f, err := BuildFactored(BuildInput{
		Topology:    quotientPaperTopology(t),
		Trees:       paperTrees(),
		TargetRoles: []string{"db"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mult := map[string]int{"web": 2, "app": 2}
	m, err := f.Evaluate(mult, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(m.AIM, 52.2, 1e-9) {
		t.Errorf("AIM = %v, want 52.2", m.AIM)
	}
	if !mathx.AlmostEqual(m.ASP, 1.0, 1e-9) {
		t.Errorf("ASP = %v, want 1.0", m.ASP)
	}
	if m.NoEV != 26 {
		t.Errorf("NoEV = %d, want 26", m.NoEV)
	}
	if m.NoAP != 8 {
		t.Errorf("NoAP = %d, want 8", m.NoAP)
	}
	if m.NoEP != 3 {
		t.Errorf("NoEP = %d, want 3", m.NoEP)
	}
	if m.ShortestPath != 3 {
		t.Errorf("ShortestPath = %d, want 3", m.ShortestPath)
	}

	patched, err := f.Patched(func(role string, l *attacktree.Leaf) bool {
		return !criticalRefs[l.Ref]
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := patched.Evaluate(mult, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(after.AIM, 42.2, 1e-9) {
		t.Errorf("after AIM = %v, want 42.2", after.AIM)
	}
	if after.NoEV != 11 || after.NoAP != 4 || after.NoEP != 2 {
		t.Errorf("after NoEV/NoAP/NoEP = %d/%d/%d, want 11/4/2",
			after.NoEV, after.NoAP, after.NoEP)
	}
	// The patched DNS class must have left the quotient graph.
	if patched.Quotient().Upper().HasNode("dns") {
		t.Error("patched dns class should leave the quotient graph")
	}
}

// randomQuotient draws a random layered quotient model: 2-3 layers with
// 1-2 classes each, random per-class probabilities (including exact 0 and
// 1 endpoints), random multiplicities 1-4, and attacker entry into the
// first layer plus sometimes the second.
type randomQuotient struct {
	top     *topology.Topology
	trees   map[string]*attacktree.Tree
	mult    map[string]int
	targets []string
}

func drawQuotient(rng *rand.Rand) randomQuotient {
	q := randomQuotient{
		top:   topology.New(),
		trees: make(map[string]*attacktree.Tree),
		mult:  make(map[string]int),
	}
	q.top.MustAddNode(topology.Node{Name: "attacker", Kind: topology.KindAttacker})
	layers := 2 + rng.Intn(2)
	var prev []string
	for l := 0; l < layers; l++ {
		classes := 1 + rng.Intn(2)
		var cur []string
		for c := 0; c < classes; c++ {
			name := fmt.Sprintf("c%d_%d", l, c)
			q.top.MustAddNode(topology.Node{Name: name, Kind: topology.KindHost, Role: name})
			p := rng.Float64()
			switch rng.Intn(6) {
			case 0:
				p = 1 // certain compromise: zero mass on the not-compromised branch
			case 1:
				p = 0 // a prob-0 leaf still counts toward NoEV
			}
			q.trees[name] = attacktree.New(attacktree.NewLeaf("v"+name, 1+rng.Float64()*9, p))
			q.mult[name] = 1 + rng.Intn(2)
			cur = append(cur, name)
			if l == 0 || (l == 1 && rng.Intn(2) == 0) {
				q.top.MustConnect("attacker", name)
			}
		}
		for _, a := range prev {
			for _, b := range cur {
				q.top.MustConnect(a, b)
			}
		}
		if l == layers-1 {
			q.targets = cur
		}
		prev = cur
	}
	// Boost one class up to multiplicity 4; the rest stay at 1-2 so the
	// expanded oracle's exact ASP stays cheap enough to brute-force.
	classes := q.top.Hosts()
	boosted := classes[rng.Intn(len(classes))].Name
	q.mult[boosted] += rng.Intn(3)
	return q
}

// expand replicates every class into its multiplicity of identical,
// identically connected instances — the expanded topology the quotient
// stands for.
func (q randomQuotient) expand() (*topology.Topology, []string) {
	top := topology.New()
	top.MustAddNode(topology.Node{Name: "attacker", Kind: topology.KindAttacker})
	names := func(class string) []string {
		out := make([]string, q.mult[class])
		for i := range out {
			out[i] = fmt.Sprintf("%s_r%d", class, i)
		}
		return out
	}
	for _, n := range q.top.Hosts() {
		for _, inst := range names(n.Name) {
			top.MustAddNode(topology.Node{Name: inst, Kind: topology.KindHost, Role: n.Name})
		}
	}
	for _, n := range q.top.Nodes() {
		for _, to := range q.top.Successors(n.Name) {
			froms := []string{n.Name}
			if n.Kind != topology.KindAttacker {
				froms = names(n.Name)
			}
			for _, f := range froms {
				for _, t := range names(to) {
					top.MustConnect(f, t)
				}
			}
		}
	}
	var targetRoles []string
	targetRoles = append(targetRoles, q.targets...)
	return top, targetRoles
}

// TestFactoredEquivalenceRandom: on random layered quotients the factored
// evaluation must match the expanded-topology evaluation for every ASP
// strategy and OR rule, on every metric, to 1e-9.
func TestFactoredEquivalenceRandom(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := drawQuotient(rng)
		fh, err := BuildFactored(BuildInput{Topology: q.top, Trees: q.trees, TargetRoles: q.targets})
		if err != nil {
			t.Logf("seed %d: factored build: %v", seed, err)
			return false
		}
		expTop, targetRoles := q.expand()
		eh, err := Build(BuildInput{Topology: expTop, Trees: q.trees, TargetRoles: targetRoles})
		if err != nil {
			t.Logf("seed %d: expanded build: %v", seed, err)
			return false
		}
		for _, strat := range []ASPStrategy{ASPMaxPath, ASPIndependentPaths, ASPCompromise} {
			for _, rule := range []attacktree.ORRule{attacktree.ORMax, attacktree.ORNoisy} {
				opts := EvalOptions{Strategy: strat, ORRule: rule, MaxPathsExact: 24}
				fm, err := fh.Evaluate(q.mult, opts)
				if err != nil {
					t.Logf("seed %d strat %d: factored eval: %v", seed, strat, err)
					return false
				}
				em, err := eh.Evaluate(opts)
				if err != nil {
					t.Logf("seed %d strat %d: expanded eval: %v", seed, strat, err)
					return false
				}
				if fm.NoEV != em.NoEV || fm.NoAP != em.NoAP || fm.NoEP != em.NoEP ||
					fm.ShortestPath != em.ShortestPath {
					t.Logf("seed %d strat %d: counts %d/%d/%d/%d != %d/%d/%d/%d",
						seed, strat, fm.NoEV, fm.NoAP, fm.NoEP, fm.ShortestPath,
						em.NoEV, em.NoAP, em.NoEP, em.ShortestPath)
					return false
				}
				if !mathx.AlmostEqual(fm.AIM, em.AIM, 1e-9) {
					t.Logf("seed %d strat %d: AIM %v != %v", seed, strat, fm.AIM, em.AIM)
					return false
				}
				if !mathx.AlmostEqual(fm.ASP, em.ASP, 1e-9) {
					t.Logf("seed %d strat %d rule %d: ASP %.12f != %.12f",
						seed, strat, rule, fm.ASP, em.ASP)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFactoredEvaluateValidation covers the multiplicity error paths.
func TestFactoredEvaluateValidation(t *testing.T) {
	f, err := BuildFactored(BuildInput{
		Topology:    quotientPaperTopology(t),
		Trees:       paperTrees(),
		TargetRoles: []string{"db"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Evaluate(map[string]int{"nosuch": 2}, EvalOptions{}); err == nil {
		t.Error("unknown class multiplicity should fail")
	}
	if _, err := f.Evaluate(map[string]int{"web": 0}, EvalOptions{}); err == nil {
		t.Error("zero multiplicity should fail")
	}
	// Missing classes default to one replica: identical to the expanded
	// single-instance model.
	m, err := f.Evaluate(nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NoAP != 2 {
		t.Errorf("NoAP with all-1 multiplicities = %d, want 2", m.NoAP)
	}
	if got := f.Classes(); len(got) != 4 {
		t.Errorf("Classes = %v, want 4 entries", got)
	}
}
