package harm

import (
	"testing"

	"redpatch/internal/attacktree"
	"redpatch/internal/mathx"
	"redpatch/internal/topology"
)

func TestRisk(t *testing.T) {
	m := Metrics{ASP: 0.5, AIM: 40}
	if got := m.Risk(); got != 20 {
		t.Errorf("Risk = %v, want 20", got)
	}
}

func TestRankPatchCandidates(t *testing.T) {
	h := buildPaperHARM(t)
	candidates, err := h.RankPatchCandidates(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 16 distinct references (CVE-2016-4997 shared between app and db).
	if len(candidates) != 16 {
		t.Fatalf("candidates = %d, want 16", len(candidates))
	}
	// v1dns is the only DNS vulnerability: patching it removes dns1 from
	// the graph, cutting AIM from 52.2 to 42.2 at unchanged ASP 1.0 —
	// the largest single-patch risk reduction.
	if candidates[0].Ref != "v1dns" {
		t.Errorf("top candidate = %s, want v1dns", candidates[0].Ref)
	}
	if !mathx.AlmostEqual(candidates[0].RiskReduction, 10.0, 1e-9) {
		t.Errorf("top risk reduction = %v, want 10.0", candidates[0].RiskReduction)
	}
	if len(candidates[0].Hosts) != 1 || candidates[0].Hosts[0] != "dns1" {
		t.Errorf("top candidate hosts = %v, want [dns1]", candidates[0].Hosts)
	}
	// Patching any one of the three interchangeable critical web flaws
	// changes nothing (the others still give probability 1, impact 12.9).
	var v1web PatchCandidate
	for _, c := range candidates {
		if c.Ref == "v1web" {
			v1web = c
		}
	}
	if v1web.Ref == "" {
		t.Fatal("v1web not ranked")
	}
	if !mathx.AlmostEqual(v1web.RiskReduction, 0, 1e-9) {
		t.Errorf("v1web risk reduction = %v, want 0 (redundant exploit)", v1web.RiskReduction)
	}
	// Replicated vulnerabilities are attributed to every instance.
	for _, c := range candidates {
		if c.Ref == "v5app" {
			if len(c.Hosts) != 2 || c.Hosts[0] != "app1" || c.Hosts[1] != "app2" {
				t.Errorf("v5app hosts = %v, want [app1 app2]", c.Hosts)
			}
		}
	}
	// Ordering invariant.
	for i := 1; i < len(candidates); i++ {
		if candidates[i-1].RiskReduction < candidates[i].RiskReduction-1e-12 {
			t.Error("candidates must be sorted by descending risk reduction")
		}
	}
}

func TestGreedyPatchPlan(t *testing.T) {
	h := buildPaperHARM(t)
	refs, after, err := h.GreedyPatchPlan(2, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("plan = %v, want 2 picks", refs)
	}
	if refs[0] != "v1dns" {
		t.Errorf("first pick = %s, want v1dns", refs[0])
	}
	before, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Risk() >= before.Risk() {
		t.Errorf("greedy plan should reduce risk: %v -> %v", before.Risk(), after.Risk())
	}
	// Zero-size plan: no picks, metrics unchanged.
	none, unchanged, err := h.GreedyPatchPlan(0, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 || !mathx.AlmostEqual(unchanged.Risk(), before.Risk(), 1e-12) {
		t.Error("zero-size plan must change nothing")
	}
	if _, _, err := h.GreedyPatchPlan(-1, EvalOptions{}); err == nil {
		t.Error("negative plan size should fail")
	}
}

func TestGreedyPatchPlanStopsWhenNoGain(t *testing.T) {
	// A single host whose only exploit chain is one AND pair: patching
	// either leaf removes the whole path; afterwards nothing reduces risk
	// further, so the greedy loop stops after one pick even with k = 5.
	top := topology.New()
	top.MustAddNode(topology.Node{Name: "A", Kind: topology.KindAttacker})
	top.MustAddNode(topology.Node{Name: "h", Kind: topology.KindHost, Role: "h"})
	top.MustConnect("A", "h")
	trees := map[string]*attacktree.Tree{
		"h": attacktree.New(attacktree.NewAND(
			attacktree.NewLeaf("x", 5, 0.5),
			attacktree.NewLeaf("y", 5, 0.5),
		)),
	}
	h, err := Build(BuildInput{Topology: top, Trees: trees, TargetRoles: []string{"h"}})
	if err != nil {
		t.Fatal(err)
	}
	refs, after, err := h.GreedyPatchPlan(5, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Errorf("plan = %v, want a single pick", refs)
	}
	if after.Risk() != 0 {
		t.Errorf("risk after = %v, want 0", after.Risk())
	}
}

// TestInstanceTreeOverrides exercises heterogeneous redundancy: two web
// replicas with different stacks.
func TestInstanceTreeOverrides(t *testing.T) {
	top := paperTopology(t)
	trees := paperTrees()
	altWeb := attacktree.New(attacktree.NewOR(
		attacktree.NewLeaf("alt1", 10.0, 1.0),
		attacktree.NewAND(
			attacktree.NewLeaf("alt2", 6.4, 0.86),
			attacktree.NewLeaf("alt3", 10.0, 0.39),
		),
	))
	h, err := Build(BuildInput{
		Topology:      top,
		Trees:         trees,
		InstanceTrees: map[string]*attacktree.Tree{"web2": altWeb},
		TargetRoles:   []string{"db"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// web2 now carries 3 vulnerabilities instead of 5: NoEV drops by 2.
	m, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NoEV != 24 {
		t.Errorf("NoEV = %d, want 24 (26 - 2)", m.NoEV)
	}
	if got := h.Tree("web2").String(); got != "OR(alt1, AND(alt2, alt3))" {
		t.Errorf("web2 tree = %s", got)
	}
	if got := h.Tree("web1").String(); got == h.Tree("web2").String() {
		t.Error("web1 must keep the role template")
	}

	// Patch the critical paper vulns plus alt1: web2's remaining chain
	// differs from web1's, and both instances prune independently.
	patched, err := h.Patched(func(role string, l *attacktree.Leaf) bool {
		return !criticalRefs[l.Ref] && l.Ref != "alt1"
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := patched.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := patched.Tree("web2").String(); got != "OR(AND(alt2, alt3))" {
		t.Errorf("patched web2 tree = %s", got)
	}
	// web2's success probability (0.86*0.39) differs from web1's 0.39, so
	// the compromise ASP must differ from the homogeneous case.
	homoPatched := patchCriticals(t, buildPaperHARM(t))
	homo, err := homoPatched.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mathx.AlmostEqual(after.ASP, homo.ASP, 1e-9) {
		t.Errorf("heterogeneous ASP %v should differ from homogeneous %v", after.ASP, homo.ASP)
	}
	if after.ASP >= homo.ASP {
		t.Errorf("the harder alt chain should lower ASP: %v vs %v", after.ASP, homo.ASP)
	}
}

func TestInstanceTreeValidation(t *testing.T) {
	top := paperTopology(t)
	if _, err := Build(BuildInput{
		Topology:      top,
		Trees:         paperTrees(),
		InstanceTrees: map[string]*attacktree.Tree{"ghost": attacktree.New(attacktree.NewLeaf("x", 1, 1))},
		TargetRoles:   []string{"db"},
	}); err == nil {
		t.Error("instance tree for unknown host should fail")
	}
	if _, err := Build(BuildInput{
		Topology:      top,
		Trees:         paperTrees(),
		InstanceTrees: map[string]*attacktree.Tree{"web2": attacktree.New(attacktree.NewLeaf("x", -1, 1))},
		TargetRoles:   []string{"db"},
	}); err == nil {
		t.Error("invalid instance tree should fail")
	}
}
