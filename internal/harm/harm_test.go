package harm

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"redpatch/internal/attackgraph"
	"redpatch/internal/attacktree"
	"redpatch/internal/mathx"
	"redpatch/internal/topology"
)

// paperTrees builds the Table I attack trees of the four server roles.
func paperTrees() map[string]*attacktree.Tree {
	return map[string]*attacktree.Tree{
		"dns": attacktree.New(attacktree.NewOR(
			attacktree.NewLeaf("v1dns", 10.0, 1.0),
		)),
		"web": attacktree.New(attacktree.NewOR(
			attacktree.NewLeaf("v1web", 10.0, 1.0),
			attacktree.NewLeaf("v2web", 10.0, 1.0),
			attacktree.NewLeaf("v3web", 10.0, 1.0),
			attacktree.NewAND(
				attacktree.NewLeaf("v4web", 2.9, 1.0),
				attacktree.NewLeaf("v5web", 10.0, 0.39),
			),
		)),
		"app": attacktree.New(attacktree.NewOR(
			attacktree.NewLeaf("v1app", 10.0, 1.0),
			attacktree.NewLeaf("v2app", 10.0, 1.0),
			attacktree.NewLeaf("v3app", 10.0, 1.0),
			attacktree.NewAND(
				attacktree.NewLeaf("v4app", 6.4, 1.0),
				attacktree.NewLeaf("v5app", 10.0, 0.39),
			),
		)),
		"db": attacktree.New(attacktree.NewOR(
			attacktree.NewLeaf("v1db", 10.0, 1.0),
			attacktree.NewLeaf("v2db", 10.0, 1.0),
			attacktree.NewAND(
				attacktree.NewLeaf("v3db", 2.9, 0.86),
				attacktree.NewLeaf("v4db", 10.0, 0.39),
			),
			attacktree.NewLeaf("v5db", 10.0, 0.39),
		)),
	}
}

// criticalRefs is the set of Table I vulnerabilities with CVSS base score
// above 8.0 — the ones the paper's monthly patch removes.
var criticalRefs = map[string]bool{
	"v1dns": true,
	"v1web": true, "v2web": true, "v3web": true,
	"v1app": true, "v2app": true, "v3app": true,
	"v1db": true, "v2db": true,
}

// paperTopology builds the example network (Fig. 2) with the base
// redundancy 1 DNS + 2 WEB + 2 APP + 1 DB.
func paperTopology(t *testing.T) *topology.Topology {
	t.Helper()
	top := topology.New()
	top.MustAddNode(topology.Node{Name: "attacker", Kind: topology.KindAttacker, Subnet: "internet"})
	top.MustAddNode(topology.Node{Name: "dns1", Kind: topology.KindHost, Subnet: "dmz2", Role: "dns"})
	top.MustAddNode(topology.Node{Name: "web1", Kind: topology.KindHost, Subnet: "dmz1", Role: "web"})
	top.MustAddNode(topology.Node{Name: "web2", Kind: topology.KindHost, Subnet: "dmz1", Role: "web"})
	top.MustAddNode(topology.Node{Name: "app1", Kind: topology.KindHost, Subnet: "intranet", Role: "app"})
	top.MustAddNode(topology.Node{Name: "app2", Kind: topology.KindHost, Subnet: "intranet", Role: "app"})
	top.MustAddNode(topology.Node{Name: "db1", Kind: topology.KindHost, Subnet: "intranet", Role: "db"})
	for _, e := range [][2]string{
		{"attacker", "dns1"}, {"attacker", "web1"}, {"attacker", "web2"},
		{"dns1", "web1"}, {"dns1", "web2"},
		{"web1", "app1"}, {"web1", "app2"}, {"web2", "app1"}, {"web2", "app2"},
		{"app1", "db1"}, {"app2", "db1"},
	} {
		top.MustConnect(e[0], e[1])
	}
	return top
}

func buildPaperHARM(t *testing.T) *HARM {
	t.Helper()
	h, err := Build(BuildInput{
		Topology:    paperTopology(t),
		Trees:       paperTrees(),
		TargetRoles: []string{"db"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func patchCriticals(t *testing.T, h *HARM) *HARM {
	t.Helper()
	patched, err := h.Patched(func(role string, l *attacktree.Leaf) bool {
		return !criticalRefs[l.Ref]
	})
	if err != nil {
		t.Fatal(err)
	}
	return patched
}

func TestBeforePatchMetrics(t *testing.T) {
	// Paper Table II, before patch: AIM 52.2, ASP 1.0, NoAP 8, NoEP 3.
	// NoEV: the paper prints 25; summing Table I exploitable
	// vulnerabilities over instances gives 1 + 2*5 + 2*5 + 5 = 26 (see
	// DESIGN.md §7).
	h := buildPaperHARM(t)
	m, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(m.AIM, 52.2, 1e-9) {
		t.Errorf("AIM = %v, want 52.2", m.AIM)
	}
	if !mathx.AlmostEqual(m.ASP, 1.0, 1e-9) {
		t.Errorf("ASP = %v, want 1.0", m.ASP)
	}
	if m.NoEV != 26 {
		t.Errorf("NoEV = %d, want 26", m.NoEV)
	}
	if m.NoAP != 8 {
		t.Errorf("NoAP = %d, want 8", m.NoAP)
	}
	if m.NoEP != 3 {
		t.Errorf("NoEP = %d, want 3", m.NoEP)
	}
}

func TestHostSummaries(t *testing.T) {
	h := buildPaperHARM(t)
	sums, err := h.HostSummaries(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 6 {
		t.Fatalf("summaries = %d, want 6", len(sums))
	}
	// db1 sits on all 8 paths: highest centrality.
	if sums[0].Host != "db1" || sums[0].Centrality != 8 {
		t.Errorf("top host = %+v, want db1 with centrality 8", sums[0])
	}
	byHost := make(map[string]HostSummary)
	for _, s := range sums {
		byHost[s.Host] = s
	}
	if byHost["web1"].Vulns != 5 || !mathx.AlmostEqual(byHost["web1"].Impact, 12.9, 1e-9) {
		t.Errorf("web1 summary = %+v", byHost["web1"])
	}
	if byHost["dns1"].Centrality != 4 {
		t.Errorf("dns1 centrality = %d, want 4", byHost["dns1"].Centrality)
	}
	// After a full patch, summaries still list hosts with zero metrics.
	clean, err := h.Patched(func(string, *attacktree.Leaf) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	cleanSums, err := clean.HostSummaries(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cleanSums {
		if s.Vulns != 0 || s.Centrality != 0 {
			t.Errorf("clean summary %+v should be zeroed", s)
		}
	}
}

func TestShortestPath(t *testing.T) {
	h := buildPaperHARM(t)
	m, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Direct entry via a web server: 3 hosts (web, app, db).
	if m.ShortestPath != 3 {
		t.Errorf("ShortestPath = %d, want 3", m.ShortestPath)
	}
	after, err := patchCriticals(t, h).Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after.ShortestPath != 3 {
		t.Errorf("ShortestPath after patch = %d, want 3", after.ShortestPath)
	}
	// No paths: zero.
	clean, err := h.Patched(func(string, *attacktree.Leaf) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	none, err := clean.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if none.ShortestPath != 0 {
		t.Errorf("ShortestPath with no paths = %d, want 0", none.ShortestPath)
	}
}

func TestPaperPathImpactExample(t *testing.T) {
	// Paper §III-C: aim(ap1 = dns1,web1,app1,db1) = 52.2.
	h := buildPaperHARM(t)
	m, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, pm := range m.Paths {
		if pm.Path.String() == "attacker -> dns1 -> web1 -> app1 -> db1" {
			found = true
			if !mathx.AlmostEqual(pm.Impact, 52.2, 1e-9) {
				t.Errorf("path impact = %v, want 52.2", pm.Impact)
			}
		}
	}
	if !found {
		t.Error("expected path attacker->dns1->web1->app1->db1 not enumerated")
	}
}

func TestAfterPatchMetrics(t *testing.T) {
	// Paper Table II, after patch: AIM 42.2, NoEV 11, NoAP 4, NoEP 2.
	h := patchCriticals(t, buildPaperHARM(t))
	m, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(m.AIM, 42.2, 1e-9) {
		t.Errorf("AIM = %v, want 42.2", m.AIM)
	}
	if m.NoEV != 11 {
		t.Errorf("NoEV = %d, want 11", m.NoEV)
	}
	if m.NoAP != 4 {
		t.Errorf("NoAP = %d, want 4", m.NoAP)
	}
	if m.NoEP != 2 {
		t.Errorf("NoEP = %d, want 2", m.NoEP)
	}
	// The patched DNS server must have dropped out of the upper layer but
	// still be known to the lower layer with an empty tree.
	if h.Upper().HasNode("dns1") {
		t.Error("dns1 should leave the attack graph after patch")
	}
	if h.Tree("dns1") == nil || !h.Tree("dns1").Empty() {
		t.Error("dns1 should keep an empty tree in the lower layer")
	}
}

func TestASPStrategiesAfterPatch(t *testing.T) {
	h := patchCriticals(t, buildPaperHARM(t))

	// Host probabilities after patch with ORMax: web 0.39, app 0.39,
	// db max(0.86*0.39, 0.39) = 0.39.
	pathProb := 0.39 * 0.39 * 0.39

	t.Run("maxPath", func(t *testing.T) {
		m, err := h.Evaluate(EvalOptions{Strategy: ASPMaxPath})
		if err != nil {
			t.Fatal(err)
		}
		if !mathx.AlmostEqual(m.ASP, pathProb, 1e-12) {
			t.Errorf("ASP = %v, want %v", m.ASP, pathProb)
		}
	})
	t.Run("independentPaths", func(t *testing.T) {
		m, err := h.Evaluate(EvalOptions{Strategy: ASPIndependentPaths})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - (1-pathProb)*(1-pathProb)*(1-pathProb)*(1-pathProb)
		if !mathx.AlmostEqual(m.ASP, want, 1e-12) {
			t.Errorf("ASP = %v, want %v", m.ASP, want)
		}
	})
	t.Run("compromiseMaxOR", func(t *testing.T) {
		m, err := h.Evaluate(EvalOptions{Strategy: ASPCompromise})
		if err != nil {
			t.Fatal(err)
		}
		// P((w1 or w2) and (a1 or a2) and db) with all hosts at 0.39.
		tier := 1 - 0.61*0.61
		want := tier * tier * 0.39
		if !mathx.AlmostEqual(m.ASP, want, 1e-12) {
			t.Errorf("ASP = %v, want %v", m.ASP, want)
		}
	})
	t.Run("compromiseNoisyOR", func(t *testing.T) {
		// The configuration closest to the paper's Table II value 0.265
		// (see DESIGN.md §3): db tree combines noisy-OR to 0.594594.
		m, err := h.Evaluate(EvalOptions{Strategy: ASPCompromise, ORRule: attacktree.ORNoisy})
		if err != nil {
			t.Fatal(err)
		}
		tier := 1 - 0.61*0.61
		db := 1 - (1-0.86*0.39)*(1-0.39)
		want := tier * tier * db
		if !mathx.AlmostEqual(m.ASP, want, 1e-12) {
			t.Errorf("ASP = %v, want %v", m.ASP, want)
		}
		if m.ASP < 0.23 || m.ASP > 0.27 {
			t.Errorf("ASP = %v, expected in the neighbourhood of the paper's 0.265", m.ASP)
		}
	})
}

func TestASPGrowsWithRedundancy(t *testing.T) {
	// Paper Fig. 6(b): designs with more redundancy have higher ASP after
	// patch; designs 1 and 2 are equal because patched DNS leaves the
	// graph.
	build := func(nweb int) *HARM {
		top := topology.New()
		top.MustAddNode(topology.Node{Name: "attacker", Kind: topology.KindAttacker})
		top.MustAddNode(topology.Node{Name: "db1", Kind: topology.KindHost, Role: "db"})
		for i := 1; i <= nweb; i++ {
			name := "web" + string(rune('0'+i))
			top.MustAddNode(topology.Node{Name: name, Kind: topology.KindHost, Role: "web"})
			top.MustConnect("attacker", name)
			top.MustConnect(name, "db1")
		}
		h, err := Build(BuildInput{Topology: top, Trees: paperTrees(), TargetRoles: []string{"db"}})
		if err != nil {
			t.Fatal(err)
		}
		return patchCriticals(t, h)
	}
	m1, err := build(1).Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := build(2).Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ASP <= m1.ASP {
		t.Errorf("ASP with 2 web (%v) should exceed ASP with 1 web (%v)", m2.ASP, m1.ASP)
	}
}

func TestCompromiseMatchesBruteForce(t *testing.T) {
	// Exhaustively verify inclusion–exclusion against enumeration of all
	// host compromise combinations on random layered graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top := topology.New()
		top.MustAddNode(topology.Node{Name: "A", Kind: topology.KindAttacker})
		n1 := 1 + rng.Intn(2)
		n2 := 1 + rng.Intn(2)
		probs := make(map[string]float64)
		var layer1, layer2 []string
		for i := 0; i < n1; i++ {
			name := "f" + string(rune('0'+i))
			layer1 = append(layer1, name)
			top.MustAddNode(topology.Node{Name: name, Kind: topology.KindHost, Role: name})
			top.MustConnect("A", name)
			probs[name] = rng.Float64()
		}
		for i := 0; i < n2; i++ {
			name := "g" + string(rune('0'+i))
			layer2 = append(layer2, name)
			top.MustAddNode(topology.Node{Name: name, Kind: topology.KindHost, Role: name})
			probs[name] = rng.Float64()
		}
		top.MustAddNode(topology.Node{Name: "T", Kind: topology.KindHost, Role: "target"})
		probs["T"] = rng.Float64()
		for _, a := range layer1 {
			for _, b := range layer2 {
				if rng.Intn(3) > 0 {
					top.MustConnect(a, b)
				}
			}
		}
		for _, b := range layer2 {
			top.MustConnect(b, "T")
		}
		trees := make(map[string]*attacktree.Tree)
		for name, p := range probs {
			role := name
			if name == "T" {
				role = "target"
			}
			trees[role] = attacktree.New(attacktree.NewLeaf("v"+name, 1, p))
		}
		h, err := Build(BuildInput{Topology: top, Trees: trees, TargetRoles: []string{"target"}})
		if err != nil {
			return false
		}
		m, err := h.Evaluate(EvalOptions{Strategy: ASPCompromise})
		if err != nil {
			return false
		}
		// Brute force over all compromise subsets of hosts on paths.
		paths, err := h.Upper().AllPaths("A", []string{"T"}, attackgraph.AllPathsOptions{})
		if err != nil {
			return false
		}
		hosts := attackgraph.NodesOnPaths(paths)
		want := 0.0
		for mask := 0; mask < 1<<uint(len(hosts)); mask++ {
			comp := make(map[string]bool)
			p := 1.0
			for i, hname := range hosts {
				if mask&(1<<uint(i)) != 0 {
					comp[hname] = true
					p *= probs[hname]
				} else {
					p *= 1 - probs[hname]
				}
			}
			ok := false
			for _, path := range paths {
				all := true
				for _, hname := range path[1:] {
					if !comp[hname] {
						all = false
						break
					}
				}
				if all {
					ok = true
					break
				}
			}
			if ok {
				want += p
			}
		}
		return mathx.AlmostEqual(m.ASP, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExactAlgorithmsAgree: the two exact compromise-probability
// algorithms must produce identical results on random instances.
func TestExactAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Intn(10)
		k := 1 + rng.Intn(8)
		hostProb := make([]float64, h)
		for i := range hostProb {
			hostProb[i] = rng.Float64()
		}
		pathMask := make([]uint64, k)
		for i := range pathMask {
			pathMask[i] = uint64(rng.Intn(1<<uint(h)-1) + 1)
		}
		a := inclusionExclusion(pathMask, hostProb)
		b := hostEnumeration(pathMask, hostProb)
		return mathx.AlmostEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExactASPCap(t *testing.T) {
	h := buildPaperHARM(t)
	_, err := h.Evaluate(EvalOptions{Strategy: ASPCompromise, MaxPathsExact: 1})
	if !errors.Is(err, ErrExactASPInfeasible) {
		t.Errorf("expected ErrExactASPInfeasible, got %v", err)
	}
}

func TestAllTargetsPatchedClean(t *testing.T) {
	h := buildPaperHARM(t)
	patched, err := h.Patched(func(role string, l *attacktree.Leaf) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	m, err := patched.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NoEV != 0 || m.NoAP != 0 || m.NoEP != 0 || m.AIM != 0 || m.ASP != 0 {
		t.Errorf("fully patched network should zero every metric, got %+v", m)
	}
}

func TestUnreachableHostStillCountsNoEV(t *testing.T) {
	top := paperTopology(t)
	// An isolated host with vulnerabilities: counts toward NoEV, not paths.
	top.MustAddNode(topology.Node{Name: "island", Kind: topology.KindHost, Role: "web"})
	h, err := Build(BuildInput{Topology: top, Trees: paperTrees(), TargetRoles: []string{"db"}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NoEV != 31 { // 26 + 5 for the island web server
		t.Errorf("NoEV = %d, want 31", m.NoEV)
	}
	if m.NoAP != 8 {
		t.Errorf("NoAP = %d, want 8 (island adds no paths)", m.NoAP)
	}
}

func TestBuildValidation(t *testing.T) {
	top := paperTopology(t)
	t.Run("nilTopology", func(t *testing.T) {
		if _, err := Build(BuildInput{Trees: paperTrees(), TargetRoles: []string{"db"}}); err == nil {
			t.Error("nil topology should fail")
		}
	})
	t.Run("noTargets", func(t *testing.T) {
		if _, err := Build(BuildInput{Topology: top, Trees: paperTrees()}); err == nil {
			t.Error("no target roles should fail")
		}
	})
	t.Run("badTree", func(t *testing.T) {
		trees := paperTrees()
		trees["web"] = attacktree.New(attacktree.NewLeaf("x", -1, 0.5))
		if _, err := Build(BuildInput{Topology: top, Trees: trees, TargetRoles: []string{"db"}}); err == nil {
			t.Error("invalid tree should fail")
		}
	})
	t.Run("twoAttackers", func(t *testing.T) {
		bad := paperTopology(t)
		bad.MustAddNode(topology.Node{Name: "attacker2", Kind: topology.KindAttacker})
		if _, err := Build(BuildInput{Topology: bad, Trees: paperTrees(), TargetRoles: []string{"db"}}); err == nil {
			t.Error("two attackers should fail")
		}
	})
}

func TestAccessors(t *testing.T) {
	h := buildPaperHARM(t)
	if h.Attacker() != "attacker" {
		t.Errorf("Attacker = %q", h.Attacker())
	}
	if got := h.Targets(); len(got) != 1 || got[0] != "db1" {
		t.Errorf("Targets = %v", got)
	}
	if got := h.Hosts(); len(got) != 6 {
		t.Errorf("Hosts = %v, want 6 entries", got)
	}
	if h.Tree("web1") == nil || h.Tree("nosuch") != nil {
		t.Error("Tree lookup misbehaves")
	}
	// Upper returns a copy: mutating it must not corrupt the HARM.
	up := h.Upper()
	up.RemoveNode("db1")
	m, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NoAP != 8 {
		t.Error("mutating the Upper copy must not affect the HARM")
	}
}

func TestHARMDOT(t *testing.T) {
	h := buildPaperHARM(t)
	dot := h.DOT()
	for _, want := range []string{
		"digraph harm",
		`"attacker" [shape=diamond]`,
		"OR(v1web, v2web, v3web, AND(v4web, v5web))",
		"peripheries=2", // target marking on db1
		"->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if dot != h.DOT() {
		t.Error("DOT must be deterministic")
	}
	// Patched HARM greys out the cleaned DNS host.
	patched := patchCriticals(t, h)
	if !strings.Contains(patched.DOT(), "style=dashed") {
		t.Error("patched DOT should grey out empty hosts")
	}
}

func TestPatchedDoesNotMutateOriginal(t *testing.T) {
	h := buildPaperHARM(t)
	before, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = patchCriticals(t, h)
	after, err := h.Evaluate(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if before.NoEV != after.NoEV || before.NoAP != after.NoAP {
		t.Error("Patched must not mutate the original HARM")
	}
}
