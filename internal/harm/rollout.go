package harm

import "redpatch/internal/attacktree"

// BuildFactoredRollout constructs the mixed-version factored model of a
// rollout quotient (paperdata.SpecRolloutQuotient): the class hosts
// named in patched run the post-patch version of their stack — their
// attack tree is the stack template pruned by keep, installed as a
// per-instance override — while every other class keeps its unpatched
// template. patched maps class host names to the stack whose template
// to prune; keep is the patch transformation predicate of HARM.Patched.
//
// With no patched classes this is exactly BuildFactored, and with every
// class patched it matches BuildFactored(...).Patched(keep) — the
// pruned per-instance trees are value-identical to the pruned role
// templates, so both degenerate rollout endpoints reproduce the atomic
// models' metrics bit for bit.
func BuildFactoredRollout(in BuildInput, patched map[string]string, keep func(role string, leaf *attacktree.Leaf) bool) (*FactoredHARM, error) {
	if len(patched) == 0 {
		return BuildFactored(in)
	}
	inst := make(map[string]*attacktree.Tree, len(patched)+len(in.InstanceTrees))
	for host, tr := range in.InstanceTrees {
		inst[host] = tr
	}
	for host, stack := range patched {
		tmpl := inst[host]
		if tmpl == nil {
			tmpl = in.Trees[stack]
		}
		if tmpl == nil {
			continue // no attack tree: patching changes nothing
		}
		stack := stack
		inst[host] = tmpl.Prune(func(l *attacktree.Leaf) bool { return keep(stack, l) })
	}
	in.InstanceTrees = inst
	return BuildFactored(in)
}
