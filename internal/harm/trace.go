package harm

import (
	"context"

	"redpatch/internal/trace"
)

// EvaluateCtx is (*HARM).Evaluate under a "harm.expanded.evaluate"
// span: identical semantics, but the full replica-expanded enumeration
// — the cross-validation oracle, never the sweep hot path — shows up
// in a request trace attributed to the right model. The factored
// (quotient) evaluator deliberately has no traced variant: a factored
// evaluation is closed-form arithmetic, and its provenance is recorded
// as attributes on the caller's span instead.
func (h *HARM) EvaluateCtx(ctx context.Context, opts EvalOptions) (Metrics, error) {
	_, sp := trace.Start(ctx, "harm.expanded.evaluate",
		trace.Attr{Key: "hosts", Value: len(h.lower)})
	m, err := h.Evaluate(opts)
	sp.EndErr(err)
	return m, err
}
