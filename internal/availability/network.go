package availability

import (
	"fmt"
	"math"

	"redpatch/internal/ctmc"
	"redpatch/internal/srn"
)

// Tier is one redundancy group of identical servers in the upper-layer
// network model: N servers that each go down for patching at rate
// LambdaEq and come back at rate MuEq (the aggregated rates of the
// lower-layer model).
type Tier struct {
	// Name labels the tier, e.g. "web".
	Name string
	// N is the number of redundant servers (paper: 1 or 2).
	N int
	// LambdaEq and MuEq are the aggregated per-server patch and recovery
	// rates per hour. A tier with LambdaEq == 0 never patches and is
	// always fully up.
	LambdaEq, MuEq float64
	// Group names the logical service tier this group of servers belongs
	// to; it defaults to Name. Heterogeneous redundancy (paper §V) is
	// modelled as several tiers sharing a Group: the service is up while
	// at least one server across the group is up, even though the
	// replicas patch and recover at different rates.
	Group string
}

// group returns the effective logical tier.
func (t Tier) group() string {
	if t.Group != "" {
		return t.Group
	}
	return t.Name
}

// Validate checks tier sanity.
func (t Tier) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("availability: tier with empty name")
	}
	if t.N <= 0 {
		return fmt.Errorf("availability: tier %s: non-positive size %d", t.Name, t.N)
	}
	if t.LambdaEq < 0 {
		return fmt.Errorf("availability: tier %s: negative lambda", t.Name)
	}
	if t.LambdaEq > 0 && t.MuEq <= 0 {
		return fmt.Errorf("availability: tier %s: patching without recovery", t.Name)
	}
	return nil
}

// RecoverySemantics selects how simultaneous patch outages within a tier
// recover.
type RecoverySemantics int

// Recovery semantics values.
const (
	// PerServer lets every down server recover independently (rate
	// mu * #down): each server runs its own patch pipeline. This matches
	// the independence of per-server patch clocks in the lower-layer
	// model and reproduces the paper's Table VI value; it is the default.
	PerServer RecoverySemantics = iota + 1
	// SingleRepair serializes recoveries (rate mu regardless of #down),
	// modelling a single operations team; provided as an ablation.
	SingleRepair
)

// NetworkModel is the upper-layer SRN input: one Tier per server type.
type NetworkModel struct {
	Tiers    []Tier
	Recovery RecoverySemantics // zero value selects PerServer
	// Quorum optionally raises the number of servers a logical group
	// needs for the service to count as up (k-out-of-n, e.g. a database
	// cluster needing a majority), keyed by group name. Groups absent
	// from the map need one server (the paper's Table VI semantics).
	Quorum map[string]int
}

// quorumOf returns the required up-count of a group.
func (nm NetworkModel) quorumOf(group string) int {
	if q, ok := nm.Quorum[group]; ok {
		return q
	}
	return 1
}

func (nm NetworkModel) recovery() RecoverySemantics {
	if nm.Recovery == 0 {
		return PerServer
	}
	return nm.Recovery
}

// Validate checks the model.
func (nm NetworkModel) Validate() error {
	if len(nm.Tiers) == 0 {
		return fmt.Errorf("availability: network model with no tiers")
	}
	seen := make(map[string]bool, len(nm.Tiers))
	for _, t := range nm.Tiers {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("availability: duplicate tier %s", t.Name)
		}
		seen[t.Name] = true
	}
	if r := nm.recovery(); r != PerServer && r != SingleRepair {
		return fmt.Errorf("availability: invalid recovery semantics %d", r)
	}
	if len(nm.Quorum) > 0 {
		groupSize := make(map[string]int)
		for _, t := range nm.Tiers {
			groupSize[t.group()] += t.N
		}
		for group, q := range nm.Quorum {
			size, ok := groupSize[group]
			if !ok {
				return fmt.Errorf("availability: quorum for unknown group %q", group)
			}
			if q < 1 || q > size {
				return fmt.Errorf("availability: quorum %d for group %q outside [1, %d]", q, group, size)
			}
		}
	}
	return nil
}

// TotalServers returns the number of servers across tiers.
func (nm NetworkModel) TotalServers() int {
	n := 0
	for _, t := range nm.Tiers {
		n += t.N
	}
	return n
}

// BuildNetworkSRN constructs the upper-layer SRN of the paper's Fig. 4:
// per tier an up-place initially holding N tokens and a down place, with a
// marking-dependent patch transition (rate lambda_eq * #up, as the paper
// specifies) and a recovery transition whose rate depends on the recovery
// semantics. It returns the net and the up-places per tier in input
// order.
func BuildNetworkSRN(nm NetworkModel) (*srn.Net, []*srn.Place, error) {
	if err := nm.Validate(); err != nil {
		return nil, nil, err
	}
	n := srn.New("network")
	ups := make([]*srn.Place, len(nm.Tiers))
	for i, t := range nm.Tiers {
		t := t
		up := n.AddPlace("P"+t.Name+"up", t.N)
		down := n.AddPlace("P"+t.Name+"d", 0)
		ups[i] = up
		if t.LambdaEq == 0 {
			continue // tier never patches
		}
		n.AddTimedTransition("T"+t.Name+"d", 0).From(up).To(down).
			WithRateFunc(func(m srn.Marking) float64 { return t.LambdaEq * float64(m.Tokens(up)) })
		switch nm.recovery() {
		case SingleRepair:
			n.AddTimedTransition("T"+t.Name+"up", t.MuEq).From(down).To(up)
		default: // PerServer
			n.AddTimedTransition("T"+t.Name+"up", 0).From(down).To(up).
				WithRateFunc(func(m srn.Marking) float64 { return t.MuEq * float64(m.Tokens(down)) })
		}
	}
	return n, ups, nil
}

// COAReward generalizes the paper's Table VI reward function: a marking
// earns (#servers up / #servers total) when every logical tier (group)
// meets its quorum (by default one server up), and zero otherwise (the
// end-to-end service is down, so no capacity is delivered). With
// homogeneous tiers and default quorums this reduces to Table VI exactly.
func COAReward(nm NetworkModel, ups []*srn.Place) srn.RewardFunc {
	total := float64(nm.TotalServers())
	groups := groupIndices(nm)
	quorums := make([]int, len(groups))
	for g, idxs := range groups {
		quorums[g] = nm.quorumOf(nm.Tiers[idxs[0]].group())
	}
	return func(m srn.Marking) float64 {
		upCount := 0
		for g, idxs := range groups {
			groupUp := 0
			for _, i := range idxs {
				groupUp += m.Tokens(ups[i])
			}
			if groupUp < quorums[g] {
				return 0
			}
			upCount += groupUp
		}
		return float64(upCount) / total
	}
}

// groupIndices returns tier indices per logical group in deterministic
// (first appearance) order.
func groupIndices(nm NetworkModel) [][]int {
	order := make(map[string]int)
	var groups [][]int
	for i, t := range nm.Tiers {
		g := t.group()
		idx, ok := order[g]
		if !ok {
			idx = len(groups)
			order[g] = idx
			groups = append(groups, nil)
		}
		groups[idx] = append(groups[idx], i)
	}
	return groups
}

// NetworkSolution reports the upper-layer results.
type NetworkSolution struct {
	// COA is the capacity oriented availability (expected steady-state
	// reward of the Table VI function).
	COA float64
	// ServiceAvailability is P(every tier has at least one server up).
	ServiceAvailability float64
	// TierAllUp maps tier name to P(every server of the tier up).
	TierAllUp map[string]float64
	// States is the size of the solved CTMC: the tangible product chain
	// the tiers span. The factored path never materializes it but reports
	// the same number, so both solvers account state space identically.
	States int
	// Factored reports which solver produced the solution: true for the
	// per-tier factored path, false for the generated SRN.
	Factored bool
}

// SolveNetwork solves the upper-layer model, dispatching on the model's
// structure: under PerServer recovery the tiers are independent
// birth–death chains and the factored solver (SolveNetworkFactored)
// answers in O(total servers) without generating the product CTMC; the
// SingleRepair ablation keeps the generated-SRN path. SolveNetworkSRN
// remains available as the cross-validation oracle for the factored
// solver (see TestFactoredEquivalence).
func SolveNetwork(nm NetworkModel) (NetworkSolution, error) {
	if err := nm.Validate(); err != nil {
		return NetworkSolution{}, err
	}
	if nm.recovery() == PerServer {
		return SolveNetworkFactored(nm)
	}
	return SolveNetworkSRN(nm)
}

// SolveNetworkSRN builds the upper-layer SRN, generates its CTMC, solves
// it, and evaluates COA and the auxiliary availability measures — the
// paper's original pipeline, exact under every recovery semantics.
func SolveNetworkSRN(nm NetworkModel) (NetworkSolution, error) {
	net, ups, err := BuildNetworkSRN(nm)
	if err != nil {
		return NetworkSolution{}, err
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		return NetworkSolution{}, err
	}
	pi, err := ss.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		return NetworkSolution{}, err
	}
	sol := NetworkSolution{States: ss.NumTangible(), TierAllUp: make(map[string]float64, len(nm.Tiers))}
	sol.COA, err = ss.ExpectedReward(pi, COAReward(nm, ups))
	if err != nil {
		return NetworkSolution{}, err
	}
	groups := groupIndices(nm)
	quorums := make([]int, len(groups))
	for g, idxs := range groups {
		quorums[g] = nm.quorumOf(nm.Tiers[idxs[0]].group())
	}
	sol.ServiceAvailability, err = ss.Probability(pi, func(m srn.Marking) bool {
		for g, idxs := range groups {
			groupUp := 0
			for _, i := range idxs {
				groupUp += m.Tokens(ups[i])
			}
			if groupUp < quorums[g] {
				return false
			}
		}
		return true
	})
	if err != nil {
		return NetworkSolution{}, err
	}
	for i, t := range nm.Tiers {
		p := ups[i]
		want := t.N
		sol.TierAllUp[t.Name], err = ss.Probability(pi, func(m srn.Marking) bool { return m.Tokens(p) == want })
		if err != nil {
			return NetworkSolution{}, err
		}
	}
	return sol, nil
}

// ClosedFormCOA computes COA analytically under PerServer semantics:
// every server is an independent two-state chain with availability
// a = mu/(lambda+mu), each logical group's up-count distribution is the
// convolution of its tiers' binomials, and by linearity of expectation
// over the independent groups
//
//	COA = (1/total) * sum_g E[up_g * 1{up_g >= q_g}] * prod_{h != g} P(up_h >= q_h).
//
// It predates — and is now a thin view of — the factored solver, which
// computes exactly this composition (SolveTierFactor + ComposeNetwork);
// delegating keeps one copy of the quorum-COA derivation in the package.
func ClosedFormCOA(nm NetworkModel) (float64, error) {
	if nm.Recovery != 0 && nm.Recovery != PerServer {
		return 0, fmt.Errorf("availability: closed form requires PerServer semantics")
	}
	sol, err := SolveNetworkFactored(nm)
	if err != nil {
		return 0, err
	}
	return sol.COA, nil
}

func pow(x float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= x
	}
	return p
}

// BirnbaumImportance returns, per tier, the classical Birnbaum importance
// of its servers' availability to the end-to-end service availability:
// the partial derivative of P(every group meets a one-server quorum) with
// respect to the tier's per-server availability. Redundancy slashes a
// tier's importance by orders of magnitude — the quantitative face of the
// paper's availability argument for redundancy. Requires PerServer
// semantics and the default one-server quorums (the closed form used
// here factorizes over groups).
func BirnbaumImportance(nm NetworkModel) (map[string]float64, error) {
	if err := nm.Validate(); err != nil {
		return nil, err
	}
	if nm.recovery() != PerServer {
		return nil, fmt.Errorf("availability: Birnbaum importance requires PerServer semantics")
	}
	if len(nm.Quorum) > 0 {
		return nil, fmt.Errorf("availability: Birnbaum importance supports the default quorums only")
	}
	groups := groupIndices(nm)

	avail := func(t Tier) float64 {
		if t.LambdaEq == 0 {
			return 1
		}
		return t.MuEq / (t.LambdaEq + t.MuEq)
	}
	// P(group has >= 1 up) per group, and, per tier, the derivative of
	// its own group's term with respect to the tier availability:
	// d/da [1 - (1-a)^N * rest] = N (1-a)^(N-1) * rest.
	pUp := make([]float64, len(groups))
	for g, idxs := range groups {
		allDown := 1.0
		for _, i := range idxs {
			allDown *= pow(1-avail(nm.Tiers[i]), nm.Tiers[i].N)
		}
		pUp[g] = 1 - allDown
	}
	out := make(map[string]float64, len(nm.Tiers))
	for g, idxs := range groups {
		othersProduct := 1.0
		for h := range groups {
			if h != g {
				othersProduct *= pUp[h]
			}
		}
		for _, i := range idxs {
			t := nm.Tiers[i]
			a := avail(t)
			rest := 1.0
			for _, j := range idxs {
				if j != i {
					rest *= pow(1-avail(nm.Tiers[j]), nm.Tiers[j].N)
				}
			}
			out[t.Name] = float64(t.N) * pow(1-a, t.N-1) * rest * othersProduct
		}
	}
	return out, nil
}

// MeanTimeToServiceDown returns the expected time from the all-up state
// until the service first drops below quorum in some logical group — the
// mean time between patch-induced service outages. Computed by making
// every below-quorum marking absorbing and solving the first-passage
// system.
func MeanTimeToServiceDown(nm NetworkModel) (float64, error) {
	net, ups, err := BuildNetworkSRN(nm)
	if err != nil {
		return 0, err
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		return 0, err
	}
	groups := groupIndices(nm)
	quorums := make([]int, len(groups))
	for g, idxs := range groups {
		quorums[g] = nm.quorumOf(nm.Tiers[idxs[0]].group())
	}
	serviceDown := func(m srn.Marking) bool {
		for g, idxs := range groups {
			groupUp := 0
			for _, i := range idxs {
				groupUp += m.Tokens(ups[i])
			}
			if groupUp < quorums[g] {
				return true
			}
		}
		return false
	}
	var absorbing []int
	for i, m := range ss.Markings() {
		if serviceDown(m) {
			absorbing = append(absorbing, i)
		}
	}
	if len(absorbing) == 0 {
		return 0, fmt.Errorf("availability: the service can never go down in this model")
	}
	start, ok := ss.StateOf(net.InitialMarking())
	if !ok {
		return 0, fmt.Errorf("availability: all-up marking not tangible")
	}
	tau, err := ss.Chain().MeanTimeToAbsorption(absorbing)
	if err != nil {
		return 0, err
	}
	return tau[start], nil
}

// RedundancyGain reports, for every tier of the model, the COA increase
// obtained by adding one server to that tier — the quantitative version
// of the paper's §IV-C observation that redundancy helps most on the tier
// with the slowest patch recovery. Computed with the closed form, so the
// model must use PerServer semantics.
func RedundancyGain(nm NetworkModel) (map[string]float64, error) {
	base, err := ClosedFormCOA(nm)
	if err != nil {
		return nil, err
	}
	gains := make(map[string]float64, len(nm.Tiers))
	for i, t := range nm.Tiers {
		variant := NetworkModel{Tiers: append([]Tier(nil), nm.Tiers...), Recovery: nm.Recovery}
		variant.Tiers[i].N++
		coa, err := ClosedFormCOA(variant)
		if err != nil {
			return nil, err
		}
		gains[t.Name] = coa - base
	}
	return gains, nil
}

// BestRedundancyPlacement returns the tier whose extra server yields the
// highest COA gain, with the gain itself.
func BestRedundancyPlacement(nm NetworkModel) (string, float64, error) {
	gains, err := RedundancyGain(nm)
	if err != nil {
		return "", 0, err
	}
	best := ""
	bestGain := math.Inf(-1)
	for name, g := range gains {
		if g > bestGain || (g == bestGain && name < best) {
			best, bestGain = name, g
		}
	}
	return best, bestGain, nil
}

// SolveServerTiers runs the full paper pipeline for a set of server types:
// solve each lower-layer model once, aggregate, and instantiate tiers with
// the requested replica counts. counts maps tier name to N; params must
// contain one entry per counted tier. Tiers whose servers require no patch
// (zero selected vulnerabilities) should simply be given LambdaEq 0 by the
// caller instead.
func SolveServerTiers(params []ServerParams, counts map[string]int) (NetworkModel, []ServerSolution, error) {
	var nm NetworkModel
	sols := make([]ServerSolution, 0, len(params))
	for _, p := range params {
		n, ok := counts[p.Name]
		if !ok {
			return NetworkModel{}, nil, fmt.Errorf("availability: no replica count for tier %s", p.Name)
		}
		sol, err := SolveServer(p)
		if err != nil {
			return NetworkModel{}, nil, err
		}
		agg, err := Aggregate(sol)
		if err != nil {
			return NetworkModel{}, nil, err
		}
		sols = append(sols, sol)
		nm.Tiers = append(nm.Tiers, Tier{Name: p.Name, N: n, LambdaEq: agg.LambdaEq, MuEq: agg.MuEq})
	}
	return nm, sols, nil
}
