package availability

import (
	"fmt"
	"math"

	"redpatch/internal/mathx"
)

// This file implements the factored upper-layer solver. Under PerServer
// recovery every server patches and recovers on its own clock, so the
// tiers of the network SRN are statistically independent birth–death
// chains: the joint generator is the Kronecker sum of the per-tier
// generators and the joint steady state is the product of the per-tier
// solutions. Instead of generating the (n_1+1)*...*(n_k+1) product chain
// and eliminating it — the paper pipeline's scalability wall — we solve
// each tier's (n+1)-state chain in O(n), convolve tiers into logical
// groups, and assemble COA, service availability and the per-tier
// measures from the group distributions. The SRN path (SolveNetworkSRN)
// remains both the SingleRepair solver (its recovery transition couples
// the servers of a tier, but the chain per tier is still generated
// faithfully there) and the cross-validation oracle for this one.

// TierFactor is the steady-state solution of one tier's birth–death
// chain: the distribution of the number of servers up.
type TierFactor struct {
	// PMF[k] = P(exactly k of the tier's N servers are up), k = 0..N.
	PMF []float64
}

// N returns the tier size the factor was solved for.
func (f TierFactor) N() int { return len(f.PMF) - 1 }

// AllUp returns P(every server of the tier up).
func (f TierFactor) AllUp() float64 {
	if len(f.PMF) == 0 {
		return 0
	}
	return f.PMF[len(f.PMF)-1]
}

// SolveTierFactor solves the (N+1)-state birth–death chain of one tier
// under PerServer recovery. With k servers up, the chain moves down at
// rate lambda*k and up at rate mu*(N-k); detailed balance gives the
// product form pi_{k+1} = pi_k * mu(N-k)/(lambda(k+1)), which normalizes
// to the binomial distribution with per-server availability
// a = mu/(lambda+mu) — each server is an independent two-state chain.
// The binomial parameterization is used directly because it stays finite
// for arbitrary rate ratios where the raw product-form weights overflow.
func SolveTierFactor(t Tier) (TierFactor, error) {
	if err := t.Validate(); err != nil {
		return TierFactor{}, err
	}
	pmf := make([]float64, t.N+1)
	if t.LambdaEq == 0 {
		pmf[t.N] = 1 // a tier that never patches is always fully up
		return TierFactor{PMF: pmf}, nil
	}
	a := t.MuEq / (t.LambdaEq + t.MuEq)
	for k := 0; k <= t.N; k++ {
		pmf[k] = mathx.Binomial(t.N, k) * pow(a, k) * pow(1-a, t.N-k)
	}
	return TierFactor{PMF: pmf}, nil
}

// ComposeNetwork assembles the full NetworkSolution from per-tier
// factors, one per tier of nm in order. Logical groups convolve their
// members' up-count distributions; quorums apply per group exactly as in
// the SRN reward. The model must use PerServer semantics — composing
// SingleRepair factors would assert an independence the model does not
// have. States reports the size the product-form CTMC would have had, so
// callers comparing against the SRN path see the same state-space
// accounting.
func ComposeNetwork(nm NetworkModel, factors []TierFactor) (NetworkSolution, error) {
	if err := nm.Validate(); err != nil {
		return NetworkSolution{}, err
	}
	if nm.recovery() != PerServer {
		return NetworkSolution{}, fmt.Errorf("availability: factored solve requires PerServer semantics")
	}
	if len(factors) != len(nm.Tiers) {
		return NetworkSolution{}, fmt.Errorf("availability: %d tier factors for %d tiers", len(factors), len(nm.Tiers))
	}
	for i, t := range nm.Tiers {
		if factors[i].N() != t.N {
			return NetworkSolution{}, fmt.Errorf("availability: tier %s factor solved for %d servers, tier has %d", t.Name, factors[i].N(), t.N)
		}
	}

	sol := NetworkSolution{
		Factored:  true,
		States:    productStates(nm),
		TierAllUp: make(map[string]float64, len(nm.Tiers)),
	}
	for i, t := range nm.Tiers {
		sol.TierAllUp[t.Name] = factors[i].AllUp()
	}

	total := float64(nm.TotalServers())
	groups := groupIndices(nm)
	quorumOK := make([]float64, len(groups))  // P(up_g >= q_g)
	upGivenOK := make([]float64, len(groups)) // E[up_g * 1{up_g >= q_g}]
	for g, idxs := range groups {
		pmf := []float64{1} // up-count distribution of the group so far
		for _, i := range idxs {
			pmf = convolve(pmf, factors[i].PMF)
		}
		q := nm.quorumOf(nm.Tiers[idxs[0]].group())
		for k := q; k < len(pmf); k++ {
			quorumOK[g] += pmf[k]
			upGivenOK[g] += float64(k) * pmf[k]
		}
	}

	sol.ServiceAvailability = 1
	for _, p := range quorumOK {
		sol.ServiceAvailability *= p
	}
	terms := make([]float64, len(groups))
	for g := range groups {
		term := upGivenOK[g]
		for h := range groups {
			if h != g {
				term *= quorumOK[h]
			}
		}
		terms[g] = term
	}
	sol.COA = mathx.KahanSum(terms) / total
	return sol, nil
}

// SolveNetworkFactored solves the upper-layer model by the factored
// path: one O(n) birth–death solve per tier plus group convolutions,
// instead of generating and eliminating the product CTMC. Exact (up to
// floating point) under PerServer recovery; rejected otherwise.
func SolveNetworkFactored(nm NetworkModel) (NetworkSolution, error) {
	if err := nm.Validate(); err != nil {
		return NetworkSolution{}, err
	}
	if nm.recovery() != PerServer {
		return NetworkSolution{}, fmt.Errorf("availability: factored solve requires PerServer semantics")
	}
	factors := make([]TierFactor, len(nm.Tiers))
	for i, t := range nm.Tiers {
		f, err := SolveTierFactor(t)
		if err != nil {
			return NetworkSolution{}, err
		}
		factors[i] = f
	}
	return ComposeNetwork(nm, factors)
}

// convolve returns the distribution of the sum of two independent
// nonnegative integer variables with the given PMFs.
func convolve(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, pa := range a {
		if pa == 0 {
			continue
		}
		for j, pb := range b {
			out[i+j] += pa * pb
		}
	}
	return out
}

// productStates returns the tangible state count of the product chain
// the tiers would generate, saturating at MaxInt. A patching tier spans
// n+1 up-counts; a never-patching tier has no transitions, so the SRN
// reaches only its all-up marking and it contributes a single state.
func productStates(nm NetworkModel) int {
	states := 1
	for _, t := range nm.Tiers {
		n := 1
		if t.LambdaEq > 0 {
			n = t.N + 1
		}
		if states > math.MaxInt/n {
			return math.MaxInt
		}
		states *= n
	}
	return states
}
