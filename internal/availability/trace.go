package availability

import (
	"context"

	"redpatch/internal/trace"
)

// This file holds the context-threaded variants of the upper-layer
// solvers. Each wraps its untraced counterpart in a span so a request
// trace shows which solver ran and how long the solve took; with no
// tracer in the context they cost one nil check and delegate directly.
// Only genuinely expensive steps get a variant here — closed-form work
// (ComposeNetwork) is recorded by callers as span attributes instead.

// SolveNetworkSRNCtx is SolveNetworkSRN under an "availability.srn"
// span recording the tier count and the eliminated state-space size.
func SolveNetworkSRNCtx(ctx context.Context, nm NetworkModel) (NetworkSolution, error) {
	_, sp := trace.Start(ctx, "availability.srn",
		trace.Attr{Key: "tiers", Value: len(nm.Tiers)})
	sol, err := SolveNetworkSRN(nm)
	if err == nil {
		sp.SetAttr("states", sol.States)
	}
	sp.EndErr(err)
	return sol, err
}

// SolveTierFactorCtx is SolveTierFactor under an
// "availability.tierfactor" span. Callers memoizing factors only reach
// it on a miss, so each span marks a genuinely new (stack, n) solve.
func SolveTierFactorCtx(ctx context.Context, t Tier) (TierFactor, error) {
	_, sp := trace.Start(ctx, "availability.tierfactor",
		trace.Attr{Key: "n", Value: t.N})
	f, err := SolveTierFactor(t)
	sp.EndErr(err)
	return f, err
}

// SolveTierFactorRolloutCtx is SolveTierFactorRollout under an
// "availability.tierfactor" span additionally recording the patched
// sub-population size.
func SolveTierFactorRolloutCtx(ctx context.Context, t Tier, patched int) (TierFactor, error) {
	_, sp := trace.Start(ctx, "availability.tierfactor",
		trace.Attr{Key: "n", Value: t.N},
		trace.Attr{Key: "patched", Value: patched})
	f, err := SolveTierFactorRollout(t, patched)
	sp.EndErr(err)
	return f, err
}
