package availability

import (
	"testing"

	"redpatch/internal/mathx"
)

// TestPatchWindowTransient traces the DNS server through its 40-minute
// patch window: availability starts at 0 (patch in progress), stays low
// through the window, and recovers to ~1 afterwards.
func TestPatchWindowTransient(t *testing.T) {
	p := paperServerParams("dns")
	// Sample at 6 min, 20 min, 40 min, 1 h 20 m and 10 h after trigger.
	times := []float64{0.1, 1.0 / 3, 2.0 / 3, 4.0 / 3, 10}
	points, err := PatchWindowTransient(p, times)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(times) {
		t.Fatalf("points = %d, want %d", len(points), len(times))
	}
	// Early in the window the service is almost surely still patching.
	if points[0].ServiceUp > 0.2 {
		t.Errorf("P(up) at 6 min = %v, expected low (mean window 40 min)", points[0].ServiceUp)
	}
	if points[0].PatchDown < 0.8 {
		t.Errorf("P(patching) at 6 min = %v, expected high", points[0].PatchDown)
	}
	// Long after the window the service has recovered.
	last := points[len(points)-1]
	if last.ServiceUp < 0.99 {
		t.Errorf("P(up) at 10 h = %v, expected ≈ 1", last.ServiceUp)
	}
	// Availability is monotonically recovering across the samples.
	for i := 1; i < len(points); i++ {
		if points[i].ServiceUp < points[i-1].ServiceUp-1e-9 {
			t.Errorf("availability decreased between %v h and %v h: %v -> %v",
				points[i-1].Hours, points[i].Hours, points[i-1].ServiceUp, points[i].ServiceUp)
		}
	}
}

func TestPatchWindowTransientValidation(t *testing.T) {
	p := paperServerParams("dns")
	if _, err := PatchWindowTransient(p, nil); err == nil {
		t.Error("empty sample times should fail")
	}
	if _, err := PatchWindowTransient(p, []float64{-1}); err == nil {
		t.Error("negative time should fail")
	}
}

func TestTransientCOA(t *testing.T) {
	nm := paperTiers(t, baseCounts)

	at0, err := TransientCOA(nm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(at0, 1, 1e-12) {
		t.Errorf("COA(0) = %v, want 1 (all up)", at0)
	}

	steady, err := ClosedFormCOA(nm)
	if err != nil {
		t.Fatal(err)
	}
	atLong, err := TransientCOA(nm, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(atLong, steady, 1e-6) {
		t.Errorf("COA(50000h) = %v, want steady %v", atLong, steady)
	}

	mid, err := TransientCOA(nm, 720)
	if err != nil {
		t.Fatal(err)
	}
	if mid <= steady || mid >= 1 {
		t.Errorf("COA(720h) = %v, want between steady %v and 1", mid, steady)
	}
}

func TestIntervalCOA(t *testing.T) {
	nm := paperTiers(t, baseCounts)
	steady, err := ClosedFormCOA(nm)
	if err != nil {
		t.Fatal(err)
	}
	short, err := IntervalCOA(nm, 24)
	if err != nil {
		t.Fatal(err)
	}
	long, err := IntervalCOA(nm, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Starting all-up, early intervals deliver more capacity than the
	// steady state; long intervals converge to it from above.
	if short <= long {
		t.Errorf("interval COA should decrease with horizon: %v vs %v", short, long)
	}
	if !mathx.AlmostEqual(long, steady, 1e-4) {
		t.Errorf("interval COA over long horizon = %v, want ≈ %v", long, steady)
	}
}
