package availability

import (
	"fmt"

	"redpatch/internal/mathx"
)

// This file extends the factored upper-layer solver to mixed-version
// tiers: during a rollout, only the sub-population of a tier already
// running the patched version participates in the patch/recovery cycle,
// while the not-yet-patched servers have nothing to install and stay up.
// The tier's up-count distribution is therefore the patched
// sub-population's binomial shifted up by the always-up remainder —
// still a product-form factor, so ComposeNetwork applies unchanged and
// availability during a rolling window stays closed-form.

// SolveTierFactorRollout solves the up-count distribution of a tier
// mid-rollout: patched of the tier's N servers run the patched version
// and cycle through patch windows at the tier's aggregated rates; the
// remaining N-patched servers still run the old version and, patching
// nothing, are always up. patched == N reproduces SolveTierFactor
// byte-identically (the fully-patched endpoint is the atomic model);
// patched == 0 is a point mass at N up (the untouched endpoint).
func SolveTierFactorRollout(t Tier, patched int) (TierFactor, error) {
	if err := t.Validate(); err != nil {
		return TierFactor{}, err
	}
	if patched < 0 || patched > t.N {
		return TierFactor{}, fmt.Errorf("availability: tier %s: %d patched servers of %d", t.Name, patched, t.N)
	}
	if patched == t.N {
		return SolveTierFactor(t)
	}
	pmf := make([]float64, t.N+1)
	if t.LambdaEq == 0 || patched == 0 {
		pmf[t.N] = 1 // nothing in the tier is patching: always fully up
		return TierFactor{PMF: pmf}, nil
	}
	a := t.MuEq / (t.LambdaEq + t.MuEq)
	base := t.N - patched // unpatched sub-population, permanently up
	for k := 0; k <= patched; k++ {
		pmf[base+k] = mathx.Binomial(patched, k) * pow(a, k) * pow(1-a, patched-k)
	}
	return TierFactor{PMF: pmf}, nil
}

// SolveNetworkRollout solves the upper-layer model mid-rollout by the
// factored path: one mixed-version birth–death factor per tier, with
// patched[i] servers of tier i on the patch cycle, composed exactly as
// in SolveNetworkFactored. Exact (up to floating point) under PerServer
// recovery; rejected otherwise.
func SolveNetworkRollout(nm NetworkModel, patched []int) (NetworkSolution, error) {
	if err := nm.Validate(); err != nil {
		return NetworkSolution{}, err
	}
	if nm.recovery() != PerServer {
		return NetworkSolution{}, fmt.Errorf("availability: factored solve requires PerServer semantics")
	}
	if len(patched) != len(nm.Tiers) {
		return NetworkSolution{}, fmt.Errorf("availability: %d patched counts for %d tiers", len(patched), len(nm.Tiers))
	}
	factors := make([]TierFactor, len(nm.Tiers))
	for i, t := range nm.Tiers {
		f, err := SolveTierFactorRollout(t, patched[i])
		if err != nil {
			return NetworkSolution{}, err
		}
		factors[i] = f
	}
	return ComposeNetwork(nm, factors)
}
