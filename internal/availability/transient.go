package availability

import (
	"fmt"
	"sort"

	"redpatch/internal/srn"
)

// PatchWindowPoint is one sample of the patch-window transient: the
// probability that the service is up at a given time after the patch
// trigger fires.
type PatchWindowPoint struct {
	// Hours since the patch round was triggered.
	Hours float64
	// ServiceUp is P(service up at that instant).
	ServiceUp float64
	// PatchDown is P(service inside the patch pipeline at that instant).
	PatchDown float64
}

// PatchWindowTransient computes the service-availability trajectory of a
// server through a patch window: the underlying CTMC starts in the
// marking "everything up, patch just triggered" and the returned points
// sample P(service up) and P(in patch pipeline) at the requested times
// (hours). Times are processed in ascending order and reported that way.
func PatchWindowTransient(p ServerParams, times []float64) ([]PatchWindowPoint, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("availability: no sample times")
	}
	for _, t := range times {
		if t < 0 {
			return nil, fmt.Errorf("availability: negative sample time %v", t)
		}
	}
	net, pl, err := BuildServerSRN(p)
	if err != nil {
		return nil, err
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		return nil, err
	}
	// The triggered state: everything up, clock token in Ptrigger. That
	// marking is vanishing (Tsvcptrig fires immediately), so start from
	// its tangible successor: service ready to patch.
	start := net.InitialMarking()
	start[indexOfPlace(net, "Pclock")] = 0
	start[indexOfPlace(net, "Ptrigger")] = 1
	start[indexOfPlace(net, "Psvcup")] = 0
	start[indexOfPlace(net, "Psvcrp")] = 1
	state, ok := ss.StateOf(start)
	if !ok {
		return nil, fmt.Errorf("availability: triggered marking not reachable; model changed?")
	}
	p0 := make([]float64, ss.NumTangible())
	p0[state] = 1

	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	out := make([]PatchWindowPoint, 0, len(sorted))
	for _, t := range sorted {
		pt, err := ss.Chain().Transient(p0, t)
		if err != nil {
			return nil, err
		}
		up, err := ss.Probability(pt, func(m srn.Marking) bool { return m.Tokens(pl.SvcUp) == 1 })
		if err != nil {
			return nil, err
		}
		pd, err := ss.Probability(pt, func(m srn.Marking) bool {
			return m.Tokens(pl.SvcReady) == 1 || m.Tokens(pl.SvcDone) == 1 || m.Tokens(pl.SvcReboot) == 1
		})
		if err != nil {
			return nil, err
		}
		out = append(out, PatchWindowPoint{Hours: t, ServiceUp: up, PatchDown: pd})
	}
	return out, nil
}

func indexOfPlace(net *srn.Net, name string) int {
	for i, p := range net.Places() {
		if p.Name() == name {
			return i
		}
	}
	panic("availability: place " + name + " missing")
}

// TransientCOA returns the network's expected COA at time t, starting
// from the all-up state — the availability trajectory as patch rounds
// begin to arrive. It converges to the steady-state COA as t grows.
func TransientCOA(nm NetworkModel, t float64) (float64, error) {
	net, ups, err := BuildNetworkSRN(nm)
	if err != nil {
		return 0, err
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		return 0, err
	}
	return ss.TransientReward(COAReward(nm, ups), t)
}

// IntervalCOA returns the time-averaged COA over [0, t] starting from the
// all-up state — the expected capacity delivered during the first t hours
// of operation.
func IntervalCOA(nm NetworkModel, t float64) (float64, error) {
	net, ups, err := BuildNetworkSRN(nm)
	if err != nil {
		return 0, err
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		return 0, err
	}
	return ss.IntervalReward(COAReward(nm, ups), t)
}
