package availability

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"redpatch/internal/mathx"
	"redpatch/internal/trace"
)

// randomModel builds a random grouped network model: 1-3 logical groups,
// 1-2 member tiers each, replica counts 1-4, rates spanning never-patching
// tiers to fast patch clocks, and (sometimes) a non-default quorum.
func randomModel(rng *rand.Rand) NetworkModel {
	var nm NetworkModel
	groupSize := make(map[string]int)
	nGroups := 1 + rng.Intn(3)
	id := 0
	for g := 0; g < nGroups; g++ {
		group := "g" + string(rune('0'+g))
		members := 1 + rng.Intn(2)
		for m := 0; m < members; m++ {
			lambda := rng.Float64() * 0.05
			if rng.Intn(8) == 0 {
				lambda = 0 // never-patching tier
			}
			n := 1 + rng.Intn(4)
			nm.Tiers = append(nm.Tiers, Tier{
				Name:     "t" + string(rune('0'+id)),
				Group:    group,
				N:        n,
				LambdaEq: lambda,
				MuEq:     0.3 + rng.Float64()*2.2,
			})
			groupSize[group] += n
			id++
		}
	}
	if rng.Intn(2) == 0 {
		// Raise one group's quorum above the default single server.
		group := "g" + string(rune('0'+rng.Intn(nGroups)))
		nm.Quorum = map[string]int{group: 1 + rng.Intn(groupSize[group])}
	}
	return nm
}

// TestFactoredEquivalence is the dispatch correctness gate: across random
// tier counts, replica counts, rates, groups and quorums, the factored
// solution must agree with the SRN oracle on every NetworkSolution
// measure within 1e-9. CI runs it under the race detector.
func TestFactoredEquivalence(t *testing.T) {
	// The oracle solves run traced, so the gate also covers the span
	// recording path the daemon adds around the solver.
	ctx := trace.WithTracer(context.Background(), trace.New(trace.Options{}))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nm := randomModel(rng)
		fac, err := SolveNetworkFactored(nm)
		if err != nil {
			t.Logf("seed %d: factored solve: %v", seed, err)
			return false
		}
		srn, err := SolveNetworkSRNCtx(ctx, nm)
		if err != nil {
			t.Logf("seed %d: SRN solve: %v", seed, err)
			return false
		}
		if !fac.Factored || srn.Factored {
			t.Logf("seed %d: Factored flags wrong: %v/%v", seed, fac.Factored, srn.Factored)
			return false
		}
		if fac.States != srn.States {
			t.Logf("seed %d: states %d != %d", seed, fac.States, srn.States)
			return false
		}
		const tol = 1e-9
		if !mathx.AlmostEqual(fac.COA, srn.COA, tol) {
			t.Logf("seed %d: COA %.12f != %.12f", seed, fac.COA, srn.COA)
			return false
		}
		if !mathx.AlmostEqual(fac.ServiceAvailability, srn.ServiceAvailability, tol) {
			t.Logf("seed %d: service availability %.12f != %.12f",
				seed, fac.ServiceAvailability, srn.ServiceAvailability)
			return false
		}
		for _, tier := range nm.Tiers {
			if !mathx.AlmostEqual(fac.TierAllUp[tier.Name], srn.TierAllUp[tier.Name], tol) {
				t.Logf("seed %d: tier %s all-up %.12f != %.12f",
					seed, tier.Name, fac.TierAllUp[tier.Name], srn.TierAllUp[tier.Name])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFactoredEquivalencePaperDesigns pins the dispatch on the paper's
// own designs: SolveNetwork must produce the factored solution and match
// the SRN oracle to full tolerance.
func TestFactoredEquivalencePaperDesigns(t *testing.T) {
	for _, counts := range []map[string]int{
		baseCounts,
		{"dns": 1, "web": 1, "app": 1, "db": 1},
		{"dns": 2, "web": 3, "app": 2, "db": 2},
	} {
		nm := paperTiers(t, counts)
		sol, err := SolveNetwork(nm)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Factored {
			t.Fatalf("SolveNetwork(%v) did not dispatch to the factored path", counts)
		}
		oracle, err := SolveNetworkSRN(nm)
		if err != nil {
			t.Fatal(err)
		}
		if !mathx.AlmostEqual(sol.COA, oracle.COA, 1e-9) {
			t.Errorf("%v: factored COA %.12f != SRN %.12f", counts, sol.COA, oracle.COA)
		}
		if !mathx.AlmostEqual(sol.ServiceAvailability, oracle.ServiceAvailability, 1e-9) {
			t.Errorf("%v: factored service availability %.12f != SRN %.12f",
				counts, sol.ServiceAvailability, oracle.ServiceAvailability)
		}
		for name := range oracle.TierAllUp {
			if !mathx.AlmostEqual(sol.TierAllUp[name], oracle.TierAllUp[name], 1e-9) {
				t.Errorf("%v: tier %s all-up %.12f != SRN %.12f",
					counts, name, sol.TierAllUp[name], oracle.TierAllUp[name])
			}
		}
	}
}

// TestSingleRepairRoutesToSRN pins the dispatch rule: the SingleRepair
// ablation must keep the generated-SRN path (its recovery transition
// couples the servers of a tier, so the binomial factor would be wrong),
// and the factored entry points must refuse it outright.
func TestSingleRepairRoutesToSRN(t *testing.T) {
	nm := NetworkModel{
		Tiers:    []Tier{{Name: "web", N: 3, LambdaEq: 0.01, MuEq: 0.5}},
		Recovery: SingleRepair,
	}
	sol, err := SolveNetwork(nm)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Factored {
		t.Error("SingleRepair model solved by the factored path")
	}
	if _, err := SolveNetworkFactored(nm); err == nil {
		t.Error("SolveNetworkFactored should reject SingleRepair")
	}
	if _, err := ComposeNetwork(nm, []TierFactor{{PMF: []float64{0, 0, 0, 1}}}); err == nil {
		t.Error("ComposeNetwork should reject SingleRepair")
	}

	per := nm
	per.Recovery = PerServer
	pSol, err := SolveNetwork(per)
	if err != nil {
		t.Fatal(err)
	}
	if !pSol.Factored {
		t.Error("PerServer model should dispatch to the factored path")
	}
}

func TestSolveTierFactor(t *testing.T) {
	f, err := SolveTierFactor(Tier{Name: "web", N: 3, LambdaEq: 1.0 / 720, MuEq: 1.7})
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 3 {
		t.Errorf("N = %d, want 3", f.N())
	}
	if sum := mathx.KahanSum(f.PMF); !mathx.AlmostEqual(sum, 1, 1e-12) {
		t.Errorf("PMF sums to %v, want 1", sum)
	}
	a := 1.7 / (1.7 + 1.0/720)
	if want := a * a * a; !mathx.AlmostEqual(f.AllUp(), want, 1e-12) {
		t.Errorf("AllUp = %v, want %v", f.AllUp(), want)
	}
	// A never-patching tier is deterministically all-up.
	f0, err := SolveTierFactor(Tier{Name: "static", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f0.AllUp() != 1 || f0.PMF[0] != 0 {
		t.Errorf("never-patching factor = %v, want [0 0 1]", f0.PMF)
	}
	// Invalid tiers are rejected.
	if _, err := SolveTierFactor(Tier{Name: "bad", N: 0}); err == nil {
		t.Error("zero-size tier should fail")
	}
}

func TestComposeNetworkValidation(t *testing.T) {
	nm := NetworkModel{Tiers: []Tier{{Name: "web", N: 2, LambdaEq: 0.01, MuEq: 1}}}
	good, err := SolveTierFactor(nm.Tiers[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComposeNetwork(nm, nil); err == nil {
		t.Error("missing factors should fail")
	}
	if _, err := ComposeNetwork(nm, []TierFactor{{PMF: []float64{1}}}); err == nil {
		t.Error("size-mismatched factor should fail")
	}
	sol, err := ComposeNetwork(nm, []TierFactor{good})
	if err != nil {
		t.Fatal(err)
	}
	if sol.States != 3 {
		t.Errorf("states = %d, want 3", sol.States)
	}
}

// TestFactoredExtremeRates guards the binomial parameterization: rate
// ratios spanning nine orders of magnitude and larger tiers must stay
// finite, normalized and in agreement with the closed-form COA.
func TestFactoredExtremeRates(t *testing.T) {
	nm := NetworkModel{Tiers: []Tier{
		{Name: "fast", N: 40, LambdaEq: 1e3, MuEq: 1e6},
		{Name: "slow", N: 2, LambdaEq: 1e-3, MuEq: 1e-1},
	}}
	sol, err := SolveNetworkFactored(nm)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sol.COA) || sol.COA < 0 || sol.COA > 1 {
		t.Errorf("COA = %v outside [0,1]", sol.COA)
	}
	cf, err := ClosedFormCOA(nm)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(sol.COA, cf, 1e-9) {
		t.Errorf("factored COA %v != closed form %v", sol.COA, cf)
	}
}

// TestProductStatesSaturates: a model too large to enumerate must report
// MaxInt instead of a wrapped product.
func TestProductStatesSaturates(t *testing.T) {
	var nm NetworkModel
	for i := 0; i < 16; i++ {
		nm.Tiers = append(nm.Tiers, Tier{
			Name: "t" + string(rune('a'+i)), N: 1 << 20, LambdaEq: 0.01, MuEq: 1,
		})
	}
	if got := productStates(nm); got != math.MaxInt {
		t.Errorf("productStates = %d, want MaxInt", got)
	}
}
