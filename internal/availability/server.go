// Package availability implements the paper's availability models: the
// lower-layer stochastic reward net of a single server (hardware, OS,
// service and patch-clock sub-models of Fig. 5 with the guard functions of
// Table III), the aggregation of its solution into a two-state patch/
// recovery abstraction (Eq. 1 and Eq. 2), and the upper-layer network
// model across server tiers whose expected steady-state reward is the
// capacity oriented availability (Fig. 4 with the Table VI reward).
package availability

import (
	"fmt"
	"time"

	"redpatch/internal/ctmc"
	"redpatch/internal/srn"
)

// ServerParams are the failure/recovery/patch timing inputs of one server
// type (paper Table IV). All values are mean durations of exponentially
// distributed activities.
type ServerParams struct {
	// Name labels the server type, e.g. "dns".
	Name string

	// HWMTBF and HWRepair are hardware mean time between failures and mean
	// repair time (paper: 87600 h and 1 h).
	HWMTBF, HWRepair time.Duration

	// OSMTBF, OSRepair and OSRebootAfterFailure parameterize OS failures
	// (paper: 1440 h, 1 h, 10 min).
	OSMTBF, OSRepair, OSRebootAfterFailure time.Duration

	// SvcMTBF, SvcRepair and SvcRebootAfterFailure parameterize service
	// failures (paper: 336 h, 30 min, 5 min).
	SvcMTBF, SvcRepair, SvcRebootAfterFailure time.Duration

	// SvcPatchTime and OSPatchTime are the per-round patch windows, the
	// product of the critical-vulnerability count and the per-vulnerability
	// patch time (internal/patch computes them).
	SvcPatchTime, OSPatchTime time.Duration

	// OSReboot and SvcReboot are the post-patch reboot/restart times
	// (paper: 10 min and 5 min).
	OSReboot, SvcReboot time.Duration

	// PatchInterval is the patch cadence (paper: 720 h).
	PatchInterval time.Duration
}

// Validate checks that every duration needed by the model is positive.
// Zero patch windows are permitted (they are clamped to one second when
// the net is built, an approximation documented on BuildServerSRN).
func (p ServerParams) Validate() error {
	named := []struct {
		label string
		d     time.Duration
	}{
		{"HWMTBF", p.HWMTBF}, {"HWRepair", p.HWRepair},
		{"OSMTBF", p.OSMTBF}, {"OSRepair", p.OSRepair}, {"OSRebootAfterFailure", p.OSRebootAfterFailure},
		{"SvcMTBF", p.SvcMTBF}, {"SvcRepair", p.SvcRepair}, {"SvcRebootAfterFailure", p.SvcRebootAfterFailure},
		{"OSReboot", p.OSReboot}, {"SvcReboot", p.SvcReboot},
		{"PatchInterval", p.PatchInterval},
	}
	for _, n := range named {
		if n.d <= 0 {
			return fmt.Errorf("availability: %s: non-positive %s (%v)", p.Name, n.label, n.d)
		}
	}
	if p.SvcPatchTime < 0 || p.OSPatchTime < 0 {
		return fmt.Errorf("availability: %s: negative patch time", p.Name)
	}
	return nil
}

// DefaultRates returns the paper's Table IV failure/recovery durations
// with the patch windows left zero (fill them from a patch plan).
func DefaultRates(name string) ServerParams {
	return ServerParams{
		Name:                  name,
		HWMTBF:                87600 * time.Hour,
		HWRepair:              time.Hour,
		OSMTBF:                1440 * time.Hour,
		OSRepair:              time.Hour,
		OSRebootAfterFailure:  10 * time.Minute,
		SvcMTBF:               336 * time.Hour,
		SvcRepair:             30 * time.Minute,
		SvcRebootAfterFailure: 5 * time.Minute,
		OSReboot:              10 * time.Minute,
		SvcReboot:             5 * time.Minute,
		PatchInterval:         720 * time.Hour,
	}
}

// rate converts a mean duration into an hourly exponential rate.
func rate(d time.Duration) float64 { return 1 / d.Hours() }

// clampDuration protects against zero-length patch windows: a server whose
// plan patches nothing in one layer still transits that pipeline stage, so
// the stage is approximated by a one-second activity (negligible against a
// 720 h cycle).
func clampDuration(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	return d
}

// ServerPlaces exposes the places of a built server net so that callers
// can define measures against it.
type ServerPlaces struct {
	HWUp, HWDown                            *srn.Place
	OSUp, OSDown, OSFailed, OSReady, OSDone *srn.Place
	SvcUp, SvcDown, SvcFailed               *srn.Place
	SvcReady, SvcDone, SvcReboot            *srn.Place
	Clock, Trigger, Policy                  *srn.Place
}

// BuildServerSRN constructs the four-sub-model server SRN of the paper's
// Fig. 5 with the guard functions of Table III:
//
//   - hardware: Phwup <-> Phwd;
//   - OS: up / down-due-to-hardware / failed / ready-to-patch / patched;
//   - service: up / down / failed / ready-to-patch / patched /
//     ready-to-reboot;
//   - patch clock: Pclock -> Ptrigger -> Ppolicy -> Pclock.
//
// The patch pipeline follows the paper's §III-D: application patches
// first (triggered by the clock), OS patches immediately after
// (triggered by the finished application patch), one merged reboot at the
// end (OS reboot, then service restart once the OS is back up).
func BuildServerSRN(p ServerParams) (*srn.Net, *ServerPlaces, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := srn.New(p.Name)
	pl := &ServerPlaces{
		HWUp:      n.AddPlace("Phwup", 1),
		HWDown:    n.AddPlace("Phwd", 0),
		OSUp:      n.AddPlace("Posup", 1),
		OSDown:    n.AddPlace("Posd", 0),
		OSFailed:  n.AddPlace("Posfd", 0),
		OSReady:   n.AddPlace("Posrp", 0),
		OSDone:    n.AddPlace("Posp", 0),
		SvcUp:     n.AddPlace("Psvcup", 1),
		SvcDown:   n.AddPlace("Psvcd", 0),
		SvcFailed: n.AddPlace("Psvcfd", 0),
		SvcReady:  n.AddPlace("Psvcrp", 0),
		SvcDone:   n.AddPlace("Psvcp", 0),
		SvcReboot: n.AddPlace("Psvcrrb", 0),
		Clock:     n.AddPlace("Pclock", 1),
		Trigger:   n.AddPlace("Ptrigger", 0),
		Policy:    n.AddPlace("Ppolicy", 0),
	}

	hwUp := func(m srn.Marking) bool { return m.Tokens(pl.HWUp) == 1 }
	hwDown := func(m srn.Marking) bool { return m.Tokens(pl.HWDown) == 1 }
	osUp := func(m srn.Marking) bool { return m.Tokens(pl.OSUp) == 1 }
	hwAndOSUp := func(m srn.Marking) bool { return hwUp(m) && osUp(m) }
	hwDownOrOSFailed := func(m srn.Marking) bool {
		return hwDown(m) || m.Tokens(pl.OSFailed) == 1
	}

	// Hardware sub-model (Fig. 5a).
	n.AddTimedTransition("Thwd", rate(p.HWMTBF)).From(pl.HWUp).To(pl.HWDown)
	n.AddTimedTransition("Thwup", rate(p.HWRepair)).From(pl.HWDown).To(pl.HWUp)

	// OS sub-model (Fig. 5b).
	n.AddImmediateTransition("Tosd").From(pl.OSUp).To(pl.OSDown).WithGuard(hwDown)                           // gosd
	n.AddTimedTransition("Tosdrb", rate(p.OSRebootAfterFailure)).From(pl.OSDown).To(pl.OSUp).WithGuard(hwUp) // gosdrb
	n.AddTimedTransition("Tosfd", rate(p.OSMTBF)).From(pl.OSUp).To(pl.OSFailed)
	n.AddTimedTransition("Tosfup", rate(p.OSRepair)).From(pl.OSFailed).To(pl.OSUp).WithGuard(hwUp) // gosfup
	n.AddImmediateTransition("Tosptrig").From(pl.OSUp).To(pl.OSReady).
		WithGuard(func(m srn.Marking) bool { return m.Tokens(pl.SvcDone) == 1 }) // gosptrig
	n.AddTimedTransition("Tosp", rate(clampDuration(p.OSPatchTime))).From(pl.OSReady).To(pl.OSDone).WithGuard(hwUp) // gosp
	n.AddImmediateTransition("Tosrpd").From(pl.OSReady).To(pl.OSDown).WithGuard(hwDown)                             // gosrpd
	n.AddImmediateTransition("Tospd").From(pl.OSDone).To(pl.OSDown).WithGuard(hwDown)                               // gospd
	n.AddTimedTransition("Tosprb", rate(p.OSReboot)).From(pl.OSDone).To(pl.OSUp).WithGuard(hwUp)                    // gosprb

	// Service sub-model (Fig. 5c).
	n.AddImmediateTransition("Tsvcd").From(pl.SvcUp).To(pl.SvcDown).WithGuard(hwDownOrOSFailed)                       // gsvcd
	n.AddTimedTransition("Tsvcdrb", rate(p.SvcRebootAfterFailure)).From(pl.SvcDown).To(pl.SvcUp).WithGuard(hwAndOSUp) // gsvcdrb
	n.AddTimedTransition("Tsvcfd", rate(p.SvcMTBF)).From(pl.SvcUp).To(pl.SvcFailed)
	n.AddTimedTransition("Tsvcfup", rate(p.SvcRepair)).From(pl.SvcFailed).To(pl.SvcUp).WithGuard(hwAndOSUp) // gsvcfup
	n.AddImmediateTransition("Tsvcptrig").From(pl.SvcUp).To(pl.SvcReady).
		WithGuard(func(m srn.Marking) bool { return m.Tokens(pl.Trigger) == 1 }) // gsvcptrig
	n.AddTimedTransition("Tsvcp", rate(clampDuration(p.SvcPatchTime))).From(pl.SvcReady).To(pl.SvcDone).WithGuard(hwAndOSUp) // gsvcp
	n.AddImmediateTransition("Tsvcrpd").From(pl.SvcReady).To(pl.SvcDown).WithGuard(hwDownOrOSFailed)                         // gsvcrpd
	n.AddImmediateTransition("Tsvcrrb").From(pl.SvcDone).To(pl.SvcReboot).
		WithGuard(func(m srn.Marking) bool { return m.Tokens(pl.OSDone) == 1 }) // gsvcrrb
	n.AddImmediateTransition("Tsvcrrbd").From(pl.SvcReboot).To(pl.SvcDown).WithGuard(hwDownOrOSFailed)      // gsvcrrbd
	n.AddTimedTransition("Tsvcprb", rate(p.SvcReboot)).From(pl.SvcReboot).To(pl.SvcUp).WithGuard(hwAndOSUp) // gsvcprb

	// Patch clock sub-model (Fig. 5d).
	n.AddTimedTransition("Tinterval", rate(p.PatchInterval)).From(pl.Clock).To(pl.Trigger).
		WithGuard(func(m srn.Marking) bool {
			return m.Tokens(pl.SvcUp) == 1 || m.Tokens(pl.SvcDown) == 1 || m.Tokens(pl.SvcFailed) == 1
		}) // ginterval
	n.AddImmediateTransition("Tpolicy").From(pl.Trigger).To(pl.Policy).
		WithGuard(func(m srn.Marking) bool { return m.Tokens(pl.SvcDone) == 1 }) // gpolicy
	n.AddImmediateTransition("Treset").From(pl.Policy).To(pl.Clock).
		WithGuard(func(m srn.Marking) bool { return m.Tokens(pl.OSDone) == 1 }) // greset

	return n, pl, nil
}

// ServerSolution carries the steady-state measures of one server's SRN.
type ServerSolution struct {
	// Params echoes the inputs.
	Params ServerParams
	// ServiceUp is P(service token in Psvcup): the paper's p_up.
	ServiceUp float64
	// PatchDown is P(service token in the patch pipeline — Psvcrp, Psvcp
	// or Psvcrrb): the paper's p_pd.
	PatchDown float64
	// ReadyToReboot is P(final service restart enabled — token in Psvcrrb
	// with hardware and OS up): the paper's p_prrb.
	ReadyToReboot float64
	// FailureDown is P(service down for non-patch reasons — Psvcd or
	// Psvcfd).
	FailureDown float64
	// HardwareDown is P(hardware failed), and OSDown is P(OS token
	// anywhere but "up"); they decompose FailureDown by cause for
	// diagnostics.
	HardwareDown, OSDown float64
	// Tangible and Vanishing report the generated state-space size.
	Tangible, Vanishing int
}

// DowntimeShare reports the fraction of total service downtime
// attributable to the patch pipeline (as opposed to failures). The
// paper's COA analysis isolates exactly this share by modelling only
// patch-induced outages in the upper layer.
func (s ServerSolution) DowntimeShare() float64 {
	total := s.PatchDown + s.FailureDown
	if total == 0 {
		return 0
	}
	return s.PatchDown / total
}

// SolveServer builds and solves the server SRN and extracts the measures
// that feed the paper's aggregation equations.
func SolveServer(p ServerParams) (ServerSolution, error) {
	net, pl, err := BuildServerSRN(p)
	if err != nil {
		return ServerSolution{}, err
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		return ServerSolution{}, fmt.Errorf("availability: %s: %w", p.Name, err)
	}
	pi, err := ss.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		return ServerSolution{}, fmt.Errorf("availability: %s: %w", p.Name, err)
	}

	sol := ServerSolution{
		Params:    p,
		Tangible:  ss.NumTangible(),
		Vanishing: ss.NumVanishing(),
	}
	sol.ServiceUp, err = ss.Probability(pi, func(m srn.Marking) bool { return m.Tokens(pl.SvcUp) == 1 })
	if err != nil {
		return ServerSolution{}, err
	}
	sol.PatchDown, err = ss.Probability(pi, func(m srn.Marking) bool {
		return m.Tokens(pl.SvcReady) == 1 || m.Tokens(pl.SvcDone) == 1 || m.Tokens(pl.SvcReboot) == 1
	})
	if err != nil {
		return ServerSolution{}, err
	}
	sol.ReadyToReboot, err = ss.Probability(pi, func(m srn.Marking) bool {
		return m.Tokens(pl.SvcReboot) == 1 && m.Tokens(pl.OSUp) == 1 && m.Tokens(pl.HWUp) == 1
	})
	if err != nil {
		return ServerSolution{}, err
	}
	sol.FailureDown, err = ss.Probability(pi, func(m srn.Marking) bool {
		return m.Tokens(pl.SvcDown) == 1 || m.Tokens(pl.SvcFailed) == 1
	})
	if err != nil {
		return ServerSolution{}, err
	}
	sol.HardwareDown, err = ss.Probability(pi, func(m srn.Marking) bool {
		return m.Tokens(pl.HWDown) == 1
	})
	if err != nil {
		return ServerSolution{}, err
	}
	sol.OSDown, err = ss.Probability(pi, func(m srn.Marking) bool {
		return m.Tokens(pl.OSUp) == 0
	})
	if err != nil {
		return ServerSolution{}, err
	}
	return sol, nil
}

// AggregatedRates is the two-state abstraction of a server under patching,
// produced by the paper's aggregation method (Eq. 1 and Eq. 2).
type AggregatedRates struct {
	// LambdaEq is the equivalent patch (down-going) rate per hour:
	// lambda_eq = tau_p (Eq. 1).
	LambdaEq float64
	// MuEq is the equivalent recovery rate per hour:
	// mu_eq = beta_svc * p_prrb / p_pd (Eq. 2).
	MuEq float64
}

// MTTP returns the mean time to patch in hours (1/lambda_eq).
func (a AggregatedRates) MTTP() float64 { return 1 / a.LambdaEq }

// MTTR returns the mean time to recover from a patch in hours (1/mu_eq).
func (a AggregatedRates) MTTR() float64 { return 1 / a.MuEq }

// Availability returns the steady-state availability of the two-state
// abstraction: mu/(lambda+mu).
func (a AggregatedRates) Availability() float64 { return a.MuEq / (a.LambdaEq + a.MuEq) }

// Aggregate applies Eq. 1 and Eq. 2 to a solved server model.
func Aggregate(sol ServerSolution) (AggregatedRates, error) {
	if sol.PatchDown <= 0 {
		return AggregatedRates{}, fmt.Errorf("availability: %s: patch-down probability %v not positive; is the patch pipeline reachable?", sol.Params.Name, sol.PatchDown)
	}
	return AggregatedRates{
		LambdaEq: rate(sol.Params.PatchInterval),
		MuEq:     rate(sol.Params.SvcReboot) * sol.ReadyToReboot / sol.PatchDown,
	}, nil
}

// AggregateTotal produces a two-state abstraction covering ALL service
// downtime — patching and failures alike — by frequency matching: the
// down-going rate is the steady-state frequency of the service leaving
// its up state divided by P(up), the recovery rate the same frequency
// divided by P(down). The resulting two-state chain reproduces both the
// exact availability and the exact outage frequency of the full model.
// The paper's upper layer deliberately models patch downtime only;
// feeding these rates instead quantifies what that isolation leaves out.
func AggregateTotal(p ServerParams) (AggregatedRates, ServerSolution, error) {
	net, pl, err := BuildServerSRN(p)
	if err != nil {
		return AggregatedRates{}, ServerSolution{}, err
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		return AggregatedRates{}, ServerSolution{}, err
	}
	pi, err := ss.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		return AggregatedRates{}, ServerSolution{}, err
	}
	sol, err := SolveServer(p)
	if err != nil {
		return AggregatedRates{}, ServerSolution{}, err
	}
	upPred := func(m srn.Marking) bool { return m.Tokens(pl.SvcUp) == 1 }
	freq, err := ss.ExitFrequency(pi, upPred)
	if err != nil {
		return AggregatedRates{}, ServerSolution{}, err
	}
	if freq <= 0 || sol.ServiceUp <= 0 || sol.ServiceUp >= 1 {
		return AggregatedRates{}, ServerSolution{}, fmt.Errorf("availability: %s: degenerate service process (freq %v, up %v)", p.Name, freq, sol.ServiceUp)
	}
	return AggregatedRates{
		LambdaEq: freq / sol.ServiceUp,
		MuEq:     freq / (1 - sol.ServiceUp),
	}, sol, nil
}
