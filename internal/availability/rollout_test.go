package availability

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"redpatch/internal/mathx"
)

func TestSolveTierFactorRollout(t *testing.T) {
	tier := Tier{Name: "web", N: 4, LambdaEq: 1.0 / 720, MuEq: 1.7}
	for patched := 0; patched <= tier.N; patched++ {
		f, err := SolveTierFactorRollout(tier, patched)
		if err != nil {
			t.Fatalf("patched=%d: %v", patched, err)
		}
		if f.N() != tier.N {
			t.Errorf("patched=%d: N = %d, want %d", patched, f.N(), tier.N)
		}
		if sum := mathx.KahanSum(f.PMF); !mathx.AlmostEqual(sum, 1, 1e-12) {
			t.Errorf("patched=%d: PMF sums to %v, want 1", patched, sum)
		}
		// Fewer than N-patched servers can never be up: the unpatched
		// sub-population has nothing to install.
		for k := 0; k < tier.N-patched; k++ {
			if f.PMF[k] != 0 {
				t.Errorf("patched=%d: PMF[%d] = %v, want 0", patched, k, f.PMF[k])
			}
		}
	}
	// The endpoints are the atomic models: patched == N must be
	// byte-identical to SolveTierFactor, patched == 0 a point mass at N.
	full, err := SolveTierFactorRollout(tier, tier.N)
	if err != nil {
		t.Fatal(err)
	}
	atomic, err := SolveTierFactor(tier)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, atomic) {
		t.Errorf("patched=N factor %v != atomic %v", full.PMF, atomic.PMF)
	}
	zero, err := SolveTierFactorRollout(tier, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.AllUp() != 1 || zero.PMF[tier.N] != 1 {
		t.Errorf("patched=0 factor = %v, want point mass at %d", zero.PMF, tier.N)
	}
	// Out-of-range patched counts and invalid tiers are rejected.
	if _, err := SolveTierFactorRollout(tier, -1); err == nil {
		t.Error("negative patched count should fail")
	}
	if _, err := SolveTierFactorRollout(tier, tier.N+1); err == nil {
		t.Error("patched > N should fail")
	}
	if _, err := SolveTierFactorRollout(Tier{Name: "bad", N: 0}, 0); err == nil {
		t.Error("zero-size tier should fail")
	}
}

// splitRollout is the oracle construction: a tier with p of n servers
// patched is exactly a two-tier split in the same group — p servers on
// the patch cycle plus n-p never-patching (always-up) servers — so the
// split model solved by the atomic factored path must agree with the
// mixed-version factor on every network measure.
func splitRollout(nm NetworkModel, patched []int) NetworkModel {
	split := NetworkModel{Quorum: nm.Quorum, Recovery: nm.Recovery}
	for i, tier := range nm.Tiers {
		p := patched[i]
		if p > 0 {
			cycling := tier
			cycling.Name = tier.Name + "_patched"
			cycling.N = p
			split.Tiers = append(split.Tiers, cycling)
		}
		if p < tier.N {
			static := tier
			static.Name = tier.Name + "_old"
			static.N = tier.N - p
			static.LambdaEq = 0 // nothing to install: always up
			split.Tiers = append(split.Tiers, static)
		}
	}
	return split
}

// TestFactoredEquivalenceRollout is the mixed-version correctness gate:
// across random grouped models, rates, quorums and patched counts, the
// rollout factors composed over the original tiers must agree with the
// split-tier oracle solved by the already-validated atomic factored path
// within 1e-9. CI runs it under the race detector alongside the atomic
// equivalence gate.
func TestFactoredEquivalenceRollout(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nm := randomModel(rng)
		patched := make([]int, len(nm.Tiers))
		for i, tier := range nm.Tiers {
			patched[i] = rng.Intn(tier.N + 1)
		}
		mixed, err := SolveNetworkRollout(nm, patched)
		if err != nil {
			t.Logf("seed %d: rollout solve: %v", seed, err)
			return false
		}
		oracle, err := SolveNetworkFactored(splitRollout(nm, patched))
		if err != nil {
			t.Logf("seed %d: split oracle solve: %v", seed, err)
			return false
		}
		const tol = 1e-9
		if !mathx.AlmostEqual(mixed.COA, oracle.COA, tol) {
			t.Logf("seed %d: patched %v: COA %.12f != %.12f", seed, patched, mixed.COA, oracle.COA)
			return false
		}
		if !mathx.AlmostEqual(mixed.ServiceAvailability, oracle.ServiceAvailability, tol) {
			t.Logf("seed %d: patched %v: service availability %.12f != %.12f",
				seed, patched, mixed.ServiceAvailability, oracle.ServiceAvailability)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRolloutEndpointsAtomic pins the endpoint identities on the paper's
// tiers: all-patched reproduces the atomic factored solution
// byte-identically, all-unpatched is deterministically fully up.
func TestRolloutEndpointsAtomic(t *testing.T) {
	nm := paperTiers(t, baseCounts)
	patched := make([]int, len(nm.Tiers))
	for i, tier := range nm.Tiers {
		patched[i] = tier.N
	}
	full, err := SolveNetworkRollout(nm, patched)
	if err != nil {
		t.Fatal(err)
	}
	atomic, err := SolveNetworkFactored(nm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, atomic) {
		t.Errorf("all-patched rollout solution differs from the atomic factored solution:\n%+v\n%+v", full, atomic)
	}
	zero, err := SolveNetworkRollout(nm, make([]int, len(nm.Tiers)))
	if err != nil {
		t.Fatal(err)
	}
	if zero.COA != 1 || zero.ServiceAvailability != 1 {
		t.Errorf("all-unpatched rollout: COA %v, service availability %v, want exactly 1",
			zero.COA, zero.ServiceAvailability)
	}

	// Validation: wrong patched-count length and SingleRepair are rejected.
	if _, err := SolveNetworkRollout(nm, []int{1}); err == nil {
		t.Error("mismatched patched length should fail")
	}
	single := nm
	single.Recovery = SingleRepair
	if _, err := SolveNetworkRollout(single, patched); err == nil {
		t.Error("SingleRepair should be rejected")
	}
}
