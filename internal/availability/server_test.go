package availability

import (
	"testing"
	"time"

	"redpatch/internal/ctmc"
	"redpatch/internal/mathx"
	"redpatch/internal/srn"
)

// paperServerParams returns the Table IV parameters of the four server
// types; the patch windows derive from the per-type critical counts
// (DESIGN.md §6).
func paperServerParams(name string) ServerParams {
	p := DefaultRates(name)
	switch name {
	case "dns":
		p.SvcPatchTime = 5 * time.Minute
		p.OSPatchTime = 20 * time.Minute
	case "web":
		p.SvcPatchTime = 10 * time.Minute
		p.OSPatchTime = 10 * time.Minute
	case "app":
		p.SvcPatchTime = 15 * time.Minute
		p.OSPatchTime = 30 * time.Minute
	case "db":
		p.SvcPatchTime = 10 * time.Minute
		p.OSPatchTime = 30 * time.Minute
	}
	return p
}

func TestValidateParams(t *testing.T) {
	p := paperServerParams("dns")
	if err := p.Validate(); err != nil {
		t.Errorf("paper params should validate: %v", err)
	}
	bad := p
	bad.HWMTBF = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero HWMTBF should fail")
	}
	bad = p
	bad.SvcPatchTime = -time.Minute
	if err := bad.Validate(); err == nil {
		t.Error("negative patch time should fail")
	}
}

func TestBuildServerSRNStructure(t *testing.T) {
	net, pl, err := BuildServerSRN(paperServerParams("dns"))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("net invalid: %v", err)
	}
	if got := len(net.Places()); got != 16 {
		t.Errorf("places = %d, want 16", got)
	}
	// 24 transitions: 2 hardware, 9 OS, 10 service, 3 clock.
	if got := len(net.Transitions()); got != 24 {
		t.Errorf("transitions = %d, want 24", got)
	}
	// The 20 guard functions of Table III map onto these transitions.
	guarded := 0
	for _, name := range []string{
		"Tosd", "Tosdrb", "Tosfup", "Tosptrig", "Tosp", "Tosrpd", "Tospd", "Tosprb",
		"Tsvcd", "Tsvcdrb", "Tsvcfup", "Tsvcptrig", "Tsvcp", "Tsvcrpd", "Tsvcrrb", "Tsvcrrbd", "Tsvcprb",
		"Tinterval", "Tpolicy", "Treset",
	} {
		if net.TransitionByName(name) == nil {
			t.Errorf("missing transition %s", name)
			continue
		}
		guarded++
	}
	if guarded != 20 {
		t.Errorf("guarded transitions = %d, want 20", guarded)
	}
	if pl.HWUp.Initial() != 1 || pl.OSUp.Initial() != 1 || pl.SvcUp.Initial() != 1 || pl.Clock.Initial() != 1 {
		t.Error("initial marking should have one token in each up place and the clock")
	}
}

// TestDNSSolutionMatchesPaper pins the lower-layer solution against the
// probabilities the paper publishes for the DNS server in §III-D2:
// p_prrb ≈ 0.00011563 and p_pd ≈ 0.00092506, giving mu_eq ≈ 1.49992.
func TestDNSSolutionMatchesPaper(t *testing.T) {
	sol, err := SolveServer(paperServerParams("dns"))
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(sol.ReadyToReboot, 0.00011563, 1e-4) {
		t.Errorf("p_prrb = %.8f, want ≈ 0.00011563", sol.ReadyToReboot)
	}
	if !mathx.AlmostEqual(sol.PatchDown, 0.00092506, 1e-4) {
		t.Errorf("p_pd = %.8f, want ≈ 0.00092506", sol.PatchDown)
	}
	agg, err := Aggregate(sol)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(agg.LambdaEq, 1.0/720, 1e-12) {
		t.Errorf("lambda_eq = %v, want 1/720", agg.LambdaEq)
	}
	if !mathx.AlmostEqual(agg.MuEq, 1.49992, 1e-4) {
		t.Errorf("mu_eq = %.5f, want ≈ 1.49992", agg.MuEq)
	}
}

// TestTable5AggregatedRates pins the aggregation for all four server
// types against the paper's Table V.
func TestTable5AggregatedRates(t *testing.T) {
	tests := []struct {
		name     string
		wantMTTP float64 // hours
		wantMu   float64
		wantMTTR float64 // hours
	}{
		{name: "dns", wantMTTP: 720, wantMu: 1.49992, wantMTTR: 0.6667},
		{name: "web", wantMTTP: 720, wantMu: 1.71420, wantMTTR: 0.5834},
		{name: "app", wantMTTP: 720, wantMu: 0.99995, wantMTTR: 1.0001},
		{name: "db", wantMTTP: 720, wantMu: 1.09085, wantMTTR: 0.9167},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sol, err := SolveServer(paperServerParams(tt.name))
			if err != nil {
				t.Fatal(err)
			}
			agg, err := Aggregate(sol)
			if err != nil {
				t.Fatal(err)
			}
			if !mathx.AlmostEqual(agg.MTTP(), tt.wantMTTP, 1e-9) {
				t.Errorf("MTTP = %v, want %v", agg.MTTP(), tt.wantMTTP)
			}
			if !mathx.AlmostEqual(agg.MuEq, tt.wantMu, 1e-4) {
				t.Errorf("mu_eq = %.5f, want ≈ %.5f", agg.MuEq, tt.wantMu)
			}
			if !mathx.AlmostEqual(agg.MTTR(), tt.wantMTTR, 1e-4) {
				t.Errorf("MTTR = %.4f, want ≈ %.4f", agg.MTTR(), tt.wantMTTR)
			}
		})
	}
}

// TestMTTRDecomposition: the aggregated MTTR approximates the sum of the
// patch pipeline stages (service patch + OS patch + OS reboot + service
// restart), since failures during the short window are rare.
func TestMTTRDecomposition(t *testing.T) {
	p := paperServerParams("web")
	sol, err := SolveServer(p)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(sol)
	if err != nil {
		t.Fatal(err)
	}
	pipeline := (p.SvcPatchTime + p.OSPatchTime + p.OSReboot + p.SvcReboot).Hours()
	if !mathx.AlmostEqual(agg.MTTR(), pipeline, 2e-3) {
		t.Errorf("MTTR = %v, want ≈ pipeline duration %v", agg.MTTR(), pipeline)
	}
}

func TestServerStateSpaceIsSmallAndStable(t *testing.T) {
	sol, err := SolveServer(paperServerParams("db"))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Tangible != 27 {
		t.Errorf("tangible states = %d, want 27", sol.Tangible)
	}
	if sol.Vanishing == 0 {
		t.Error("expected vanishing markings to be eliminated")
	}
}

func TestServiceUpDominates(t *testing.T) {
	sol, err := SolveServer(paperServerParams("app"))
	if err != nil {
		t.Fatal(err)
	}
	if sol.ServiceUp < 0.99 {
		t.Errorf("service availability = %v, implausibly low", sol.ServiceUp)
	}
	total := sol.ServiceUp + sol.PatchDown + sol.FailureDown
	if !mathx.AlmostEqual(total, 1, 1e-9) {
		t.Errorf("up + patch-down + failure-down = %v, want 1", total)
	}
}

// TestPatchPipelineOrdering verifies the paper's patch sequence on the
// reachability graph: from the tangible marking where the service is
// ready to patch, the pipeline passes through service-patched, OS-ready,
// OS-patched and ready-to-reboot markings before returning to up.
func TestPatchPipelineOrdering(t *testing.T) {
	net, pl, err := BuildServerSRN(paperServerParams("dns"))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sawSvcReady, sawSvcDoneOSReady, sawOSReboot, sawSvcReboot bool
	for _, m := range ss.Markings() {
		if m.Tokens(pl.SvcReady) == 1 && m.Tokens(pl.OSUp) == 1 {
			sawSvcReady = true
		}
		if m.Tokens(pl.SvcDone) == 1 && m.Tokens(pl.OSReady) == 1 {
			sawSvcDoneOSReady = true
		}
		if m.Tokens(pl.SvcReboot) == 1 && m.Tokens(pl.OSDone) == 1 {
			sawOSReboot = true
		}
		if m.Tokens(pl.SvcReboot) == 1 && m.Tokens(pl.OSUp) == 1 {
			sawSvcReboot = true
		}
		if m.Tokens(pl.SvcDone) == 1 && m.Tokens(pl.OSUp) == 1 {
			t.Errorf("tangible marking with service patched but OS still up: the OS patch trigger should fire immediately (%s)", net.MarkingString(m))
		}
	}
	if !sawSvcReady || !sawSvcDoneOSReady || !sawOSReboot || !sawSvcReboot {
		t.Errorf("patch pipeline stages missing: svcReady=%v svcDoneOSReady=%v osReboot=%v svcReboot=%v",
			sawSvcReady, sawSvcDoneOSReady, sawOSReboot, sawSvcReboot)
	}
}

// TestServerModelConservation: the server SRN conserves exactly four
// tokens — one each for the hardware, OS, service and patch-clock
// sub-models — and every reachable marking honours the conservation laws.
func TestServerModelConservation(t *testing.T) {
	net, _, err := BuildServerSRN(paperServerParams("dns"))
	if err != nil {
		t.Fatal(err)
	}
	inv := net.PlaceInvariants()
	if len(inv) != 4 {
		t.Fatalf("place invariants = %d, want 4 (hw, os, svc, clock)", len(inv))
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.CheckConservation(ss); err != nil {
		t.Errorf("conservation violated: %v", err)
	}
}

// TestNoDeadlock: every tangible marking must have at least one enabled
// timed transition (the model is ergodic; a deadlock would trap the
// token).
func TestNoDeadlock(t *testing.T) {
	net, _, err := BuildServerSRN(paperServerParams("web"))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chain := ss.Chain()
	for i := 0; i < chain.NumStates(); i++ {
		if chain.ExitRate(i) == 0 {
			t.Errorf("tangible state %d (%s) is absorbing", i, net.MarkingString(ss.Markings()[i]))
		}
	}
	// Ergodicity: the steady state must exist and put mass on the up
	// state.
	pi, err := ss.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pi {
		if p < 0 || p > 1 {
			t.Errorf("pi[%d] = %v outside [0,1]", i, p)
		}
	}
}

func TestZeroPatchWindowClamped(t *testing.T) {
	p := paperServerParams("dns")
	p.SvcPatchTime = 0 // nothing to patch in the service layer
	sol, err := SolveServer(p)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(sol)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline reduces to ~OS patch + reboots; MTTR ≈ 35 min = 0.5836 h.
	want := (20*time.Minute + 10*time.Minute + 5*time.Minute + time.Second).Hours()
	if !mathx.AlmostEqual(agg.MTTR(), want, 2e-3) {
		t.Errorf("MTTR = %v, want ≈ %v", agg.MTTR(), want)
	}
}

// TestFasterPatchingImprovesAvailability is a sanity ablation: halving
// the patch windows must raise the aggregated availability.
func TestFasterPatchingImprovesAvailability(t *testing.T) {
	slow := paperServerParams("app")
	fast := slow
	fast.SvcPatchTime /= 2
	fast.OSPatchTime /= 2
	solSlow, err := SolveServer(slow)
	if err != nil {
		t.Fatal(err)
	}
	solFast, err := SolveServer(fast)
	if err != nil {
		t.Fatal(err)
	}
	aggSlow, err := Aggregate(solSlow)
	if err != nil {
		t.Fatal(err)
	}
	aggFast, err := Aggregate(solFast)
	if err != nil {
		t.Fatal(err)
	}
	if aggFast.Availability() <= aggSlow.Availability() {
		t.Errorf("faster patching should raise availability: %v vs %v",
			aggFast.Availability(), aggSlow.Availability())
	}
}

// TestAggregateTotal: the frequency-matched two-state abstraction
// reproduces the full model's service availability exactly, and its
// downtime exceeds the patch-only abstraction's (failures included).
func TestAggregateTotal(t *testing.T) {
	p := paperServerParams("dns")
	total, sol, err := AggregateTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(total.Availability(), sol.ServiceUp, 1e-9) {
		t.Errorf("two-state availability %v != full-model %v", total.Availability(), sol.ServiceUp)
	}
	patchOnly, err := Aggregate(sol)
	if err != nil {
		t.Fatal(err)
	}
	if total.Availability() >= patchOnly.Availability() {
		t.Errorf("including failures must lower availability: %v vs %v",
			total.Availability(), patchOnly.Availability())
	}
	// Outages happen more often than monthly once failures count: the
	// service fails every ~336 h on top of the 720 h patch cycle.
	if total.MTTP() >= 720 {
		t.Errorf("total MTTP = %v h, want below the 720 h patch interval", total.MTTP())
	}
	// Combined outage rate ≈ 1/336 (svc) + 1/1440 (os) + 1/720 (patch)
	// ≈ 1/198 h.
	if total.MTTP() < 150 {
		t.Errorf("total MTTP = %v h, implausibly frequent", total.MTTP())
	}
}

// TestCOAWithFailures quantifies what the paper's patch-only upper layer
// leaves out: COA over the total abstraction is visibly lower.
func TestCOAWithFailures(t *testing.T) {
	var patchTiers, totalTiers []Tier
	counts := map[string]int{"dns": 1, "web": 2, "app": 2, "db": 1}
	for _, role := range []string{"dns", "web", "app", "db"} {
		p := paperServerParams(role)
		total, sol, err := AggregateTotal(p)
		if err != nil {
			t.Fatal(err)
		}
		patchAgg, err := Aggregate(sol)
		if err != nil {
			t.Fatal(err)
		}
		patchTiers = append(patchTiers, Tier{Name: role, N: counts[role], LambdaEq: patchAgg.LambdaEq, MuEq: patchAgg.MuEq})
		totalTiers = append(totalTiers, Tier{Name: role, N: counts[role], LambdaEq: total.LambdaEq, MuEq: total.MuEq})
	}
	patchCOA, err := ClosedFormCOA(NetworkModel{Tiers: patchTiers})
	if err != nil {
		t.Fatal(err)
	}
	totalCOA, err := ClosedFormCOA(NetworkModel{Tiers: totalTiers})
	if err != nil {
		t.Fatal(err)
	}
	if totalCOA >= patchCOA {
		t.Errorf("COA with failures %v should be below patch-only %v", totalCOA, patchCOA)
	}
	if totalCOA < 0.98 {
		t.Errorf("COA with failures = %v, implausibly low", totalCOA)
	}
	t.Logf("COA patch-only %.6f vs with failures %.6f", patchCOA, totalCOA)
}

func TestAggregateRejectsUnsolvedPipeline(t *testing.T) {
	if _, err := Aggregate(ServerSolution{Params: paperServerParams("dns")}); err == nil {
		t.Error("Aggregate with zero patch-down probability should fail")
	}
}
