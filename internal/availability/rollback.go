package availability

import (
	"fmt"
	"sort"
	"time"

	"redpatch/internal/srn"
)

// Rollback carries the try-revert parameters of a patch window at the
// availability layer: the probability the window's patches all apply,
// and how long the revert procedure takes when they do not. A success
// probability of 1 recovers the paper's atomic-window model exactly.
type Rollback struct {
	// SuccessProb is the chance the window completes, in (0, 1].
	SuccessProb float64
	// Duration is the time the revert procedure adds to a failed window
	// before the system reboots back into the unpatched image.
	Duration time.Duration
}

// PerfectRollback returns the dormant rollback branch: every window
// succeeds.
func PerfectRollback() Rollback { return Rollback{SuccessProb: 1} }

// Validate checks the rollback parameters.
func (r Rollback) Validate() error {
	if r.SuccessProb <= 0 || r.SuccessProb > 1 {
		return fmt.Errorf("availability: rollback success probability %v outside (0, 1]", r.SuccessProb)
	}
	if r.Duration < 0 {
		return fmt.Errorf("availability: negative rollback duration %v", r.Duration)
	}
	return nil
}

// failureParams is the failed-window view of a server's patch pipeline:
// on average the failure strikes halfway through the patch work (half of
// each patch stage is spent before the revert), the rollback procedure
// extends the OS stage, and the system reboots back into the unpatched
// image — the reboot costs are paid either way. This is a mean-value
// approximation of the failure branch, consistent with
// patch.Plan.FailedDowntime.
func failureParams(p ServerParams, r Rollback) ServerParams {
	fp := p
	fp.SvcPatchTime = p.SvcPatchTime / 2
	fp.OSPatchTime = p.OSPatchTime/2 + r.Duration
	return fp
}

// PatchWindowTransientRollback computes the patch-window trajectory of a
// server under the try-revert model: the pointwise mixture of the
// success branch (the plain PatchWindowTransient) and the failure branch
// (patch work cut short at its mean, rollback appended, reboots paid),
// weighted by the rollback's success probability. With SuccessProb == 1
// it short-circuits to PatchWindowTransient.
func PatchWindowTransientRollback(p ServerParams, r Rollback, times []float64) ([]PatchWindowPoint, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.SuccessProb == 1 {
		return PatchWindowTransient(p, times)
	}
	success, err := PatchWindowTransient(p, times)
	if err != nil {
		return nil, err
	}
	failure, err := PatchWindowTransient(failureParams(p, r), times)
	if err != nil {
		return nil, err
	}
	s := r.SuccessProb
	out := make([]PatchWindowPoint, len(success))
	for i := range success {
		out[i] = PatchWindowPoint{
			Hours:     success[i].Hours,
			ServiceUp: s*success[i].ServiceUp + (1-s)*failure[i].ServiceUp,
			PatchDown: s*success[i].PatchDown + (1-s)*failure[i].PatchDown,
		}
	}
	return out, nil
}

// CampaignWindow is one maintenance window on a campaign timeline: the
// hour it starts, the server parameters of that round (patch times from
// the round's plan), and the round's rollback parameters.
type CampaignWindow struct {
	// StartHours is the window's start on the campaign clock.
	StartHours float64
	// Params is the server model for the round, its patch windows set
	// from the round's plan.
	Params ServerParams
	// Rollback carries the round's try-revert parameters.
	Rollback Rollback
}

// CampaignTransient traces a server's availability over a whole campaign
// timeline: each sample time is answered by the most recently started
// window's try-revert transient, evaluated at the offset into that
// window; times before the first window report the nominal all-up state.
// Windows must be given in ascending StartHours order. The mixture
// treats windows independently — by the time the next window opens, the
// previous round's pipeline has long drained (window minutes against a
// cycle of weeks), the same scale separation the paper's steady-state
// model relies on.
func CampaignTransient(windows []CampaignWindow, times []float64) ([]PatchWindowPoint, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("availability: no sample times")
	}
	for i := 1; i < len(windows); i++ {
		if windows[i].StartHours < windows[i-1].StartHours {
			return nil, fmt.Errorf("availability: campaign windows out of order at %d", i)
		}
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)

	out := make([]PatchWindowPoint, 0, len(sorted))
	// Group consecutive sample times by the window answering them, so
	// each window's (expensive) transient solve runs once over all its
	// offsets.
	i := 0
	for i < len(sorted) {
		w := -1 // index of the most recently started window
		for j := range windows {
			if windows[j].StartHours <= sorted[i] {
				w = j
			} else {
				break
			}
		}
		j := i
		for j < len(sorted) && (w+1 >= len(windows) || sorted[j] < windows[w+1].StartHours) {
			j++
		}
		if w < 0 {
			for _, t := range sorted[i:j] {
				out = append(out, PatchWindowPoint{Hours: t, ServiceUp: 1})
			}
			i = j
			continue
		}
		offsets := make([]float64, j-i)
		for k, t := range sorted[i:j] {
			offsets[k] = t - windows[w].StartHours
		}
		pts, err := PatchWindowTransientRollback(windows[w].Params, windows[w].Rollback, offsets)
		if err != nil {
			return nil, err
		}
		for _, pt := range pts {
			out = append(out, PatchWindowPoint{
				Hours:     windows[w].StartHours + pt.Hours,
				ServiceUp: pt.ServiceUp,
				PatchDown: pt.PatchDown,
			})
		}
		i = j
	}
	return out, nil
}

// TransientCOAs returns the network's expected COA at each of the given
// times, starting from the all-up state — the batched form of
// TransientCOA: the SRN is generated once and only the transient reward
// is re-evaluated per time point. Results follow the input order.
func TransientCOAs(nm NetworkModel, times []float64) ([]float64, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("availability: no sample times")
	}
	net, ups, err := BuildNetworkSRN(nm)
	if err != nil {
		return nil, err
	}
	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		return nil, err
	}
	reward := COAReward(nm, ups)
	out := make([]float64, len(times))
	for i, t := range times {
		v, err := ss.TransientReward(reward, t)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
