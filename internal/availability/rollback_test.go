package availability

import (
	"testing"
	"time"

	"redpatch/internal/mathx"
)

func TestRollbackValidate(t *testing.T) {
	if err := PerfectRollback().Validate(); err != nil {
		t.Errorf("PerfectRollback invalid: %v", err)
	}
	for _, r := range []Rollback{
		{SuccessProb: 0},
		{SuccessProb: 1.5},
		{SuccessProb: 0.9, Duration: -time.Minute},
	} {
		if err := r.Validate(); err == nil {
			t.Errorf("Rollback %+v should be invalid", r)
		}
	}
}

// TestPatchWindowTransientRollbackMixture cross-checks the mixture
// against its two branch transients computed independently.
func TestPatchWindowTransientRollbackMixture(t *testing.T) {
	p := paperServerParams("dns")
	r := Rollback{SuccessProb: 0.7, Duration: 12 * time.Minute}
	times := []float64{0.1, 0.5, 1, 4}

	got, err := PatchWindowTransientRollback(p, r, times)
	if err != nil {
		t.Fatal(err)
	}
	success, err := PatchWindowTransient(p, times)
	if err != nil {
		t.Fatal(err)
	}
	failure, err := PatchWindowTransient(failureParams(p, r), times)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		wantUp := 0.7*success[i].ServiceUp + 0.3*failure[i].ServiceUp
		wantDown := 0.7*success[i].PatchDown + 0.3*failure[i].PatchDown
		if !mathx.AlmostEqual(got[i].ServiceUp, wantUp, 1e-12) {
			t.Errorf("ServiceUp[%d] = %v, want %v", i, got[i].ServiceUp, wantUp)
		}
		if !mathx.AlmostEqual(got[i].PatchDown, wantDown, 1e-12) {
			t.Errorf("PatchDown[%d] = %v, want %v", i, got[i].PatchDown, wantDown)
		}
	}
	// The failure branch halves the patch work but adds the rollback:
	// early in the window the pipeline probability must still be high.
	if failure[0].PatchDown < 0.5 {
		t.Errorf("failure branch P(patching) at 6 min = %v, expected high", failure[0].PatchDown)
	}
}

// TestPatchWindowTransientRollbackPerfect asserts the dormant branch:
// SuccessProb 1 must be the plain transient, bit for bit.
func TestPatchWindowTransientRollbackPerfect(t *testing.T) {
	p := paperServerParams("web")
	times := []float64{0.25, 1, 8}
	got, err := PatchWindowTransientRollback(p, PerfectRollback(), times)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PatchWindowTransient(p, times)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("point %d: %+v != plain %+v", i, got[i], want[i])
		}
	}
	if _, err := PatchWindowTransientRollback(p, Rollback{}, times); err == nil {
		t.Error("invalid rollback should fail")
	}
}

func TestCampaignTransient(t *testing.T) {
	p := paperServerParams("dns")
	r := Rollback{SuccessProb: 0.8, Duration: 10 * time.Minute}
	windows := []CampaignWindow{
		{StartHours: 10, Params: p, Rollback: r},
		{StartHours: 730, Params: p, Rollback: r},
	}
	times := []float64{0, 5, 10.1, 14, 730.1, 734}
	pts, err := CampaignTransient(windows, times)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(times) {
		t.Fatalf("points = %d, want %d", len(pts), len(times))
	}
	// Before the first window: nominal all-up.
	for i := 0; i < 2; i++ {
		if pts[i].ServiceUp != 1 || pts[i].PatchDown != 0 {
			t.Errorf("point %d (t=%v) = %+v, want all-up", i, pts[i].Hours, pts[i])
		}
	}
	// Just inside each window the pipeline dominates; well after it the
	// service has recovered.
	ref, err := PatchWindowTransientRollback(p, r, []float64{0.1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []struct{ in, after int }{{2, 3}, {4, 5}} {
		if !mathx.AlmostEqual(pts[w.in].ServiceUp, ref[0].ServiceUp, 1e-12) {
			t.Errorf("point %d = %v, want window offset 0.1h value %v", w.in, pts[w.in].ServiceUp, ref[0].ServiceUp)
		}
		if !mathx.AlmostEqual(pts[w.after].ServiceUp, ref[1].ServiceUp, 1e-12) {
			t.Errorf("point %d = %v, want window offset 4h value %v", w.after, pts[w.after].ServiceUp, ref[1].ServiceUp)
		}
	}

	if _, err := CampaignTransient(windows, nil); err == nil {
		t.Error("empty sample times should fail")
	}
	if _, err := CampaignTransient([]CampaignWindow{windows[1], windows[0]}, times); err == nil {
		t.Error("out-of-order windows should fail")
	}
	// No windows at all: the whole timeline is nominal.
	pts, err = CampaignTransient(nil, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.ServiceUp != 1 {
			t.Errorf("windowless point %+v, want all-up", pt)
		}
	}
}

func TestTransientCOAs(t *testing.T) {
	nm := paperTiers(t, baseCounts)
	times := []float64{0, 720, 50000}
	got, err := TransientCOAs(nm, times)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		want, err := TransientCOA(nm, tt)
		if err != nil {
			t.Fatal(err)
		}
		if !mathx.AlmostEqual(got[i], want, 1e-12) {
			t.Errorf("COA(%v) = %v, want %v", tt, got[i], want)
		}
	}
	if _, err := TransientCOAs(nm, nil); err == nil {
		t.Error("empty sample times should fail")
	}
}
