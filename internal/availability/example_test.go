package availability_test

import (
	"fmt"
	"time"

	"redpatch/internal/availability"
)

// Example runs the paper's two-level availability pipeline for the DNS
// server: build and solve the Fig. 5 stochastic reward net, aggregate it
// into the Table V two-state rates, and combine four such tiers into the
// network-level capacity oriented availability of Table VI.
func Example() {
	params := availability.DefaultRates("dns")
	params.SvcPatchTime = 5 * time.Minute // one critical service vuln
	params.OSPatchTime = 20 * time.Minute // two critical OS vulns

	sol, err := availability.SolveServer(params)
	if err != nil {
		panic(err)
	}
	agg, err := availability.Aggregate(sol)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dns: MTTP %.0f h, MTTR %.4f h\n", agg.MTTP(), agg.MTTR())

	nm := availability.NetworkModel{Tiers: []availability.Tier{
		{Name: "dns", N: 1, LambdaEq: agg.LambdaEq, MuEq: agg.MuEq},
		{Name: "web", N: 2, LambdaEq: 1.0 / 720, MuEq: 1.71420},
		{Name: "app", N: 2, LambdaEq: 1.0 / 720, MuEq: 0.99995},
		{Name: "db", N: 1, LambdaEq: 1.0 / 720, MuEq: 1.09085},
	}}
	coa, err := availability.ClosedFormCOA(nm)
	if err != nil {
		panic(err)
	}
	fmt.Printf("network COA: %.5f\n", coa)
	// Output:
	// dns: MTTP 720 h, MTTR 0.6667 h
	// network COA: 0.99707
}
