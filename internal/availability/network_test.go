package availability

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redpatch/internal/mathx"
	"redpatch/internal/srn"
)

// paperTiers returns the aggregated tiers of the example network using
// the Table V rates computed by the lower-layer model.
func paperTiers(t *testing.T, counts map[string]int) NetworkModel {
	t.Helper()
	var params []ServerParams
	for _, name := range []string{"dns", "web", "app", "db"} {
		if _, ok := counts[name]; ok {
			params = append(params, paperServerParams(name))
		}
	}
	nm, _, err := SolveServerTiers(params, counts)
	if err != nil {
		t.Fatal(err)
	}
	return nm
}

var baseCounts = map[string]int{"dns": 1, "web": 2, "app": 2, "db": 1}

// TestTable6COA pins the paper's headline availability number: COA of the
// base network ≈ 0.99707.
func TestTable6COA(t *testing.T) {
	nm := paperTiers(t, baseCounts)
	sol, err := SolveNetwork(nm)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(sol.COA, 0.99707, 1e-4) {
		t.Errorf("COA = %.6f, want ≈ 0.99707", sol.COA)
	}
	if sol.States != 36 {
		t.Errorf("states = %d, want 36 (2*3*3*2)", sol.States)
	}
	if sol.ServiceAvailability <= sol.COA {
		t.Error("service availability should exceed COA (partial capacity counts against COA only)")
	}
}

// TestFiveDesignCOAs pins the five designs of §IV to the values our
// pipeline computes (all within the paper's Fig. 6 axis range
// [0.9955, 0.9964]) and checks the orderings the paper reports.
func TestFiveDesignCOAs(t *testing.T) {
	designs := []struct {
		name   string
		counts map[string]int
		want   float64
	}{
		{name: "D1", counts: map[string]int{"dns": 1, "web": 1, "app": 1, "db": 1}, want: 0.995614},
		{name: "D2", counts: map[string]int{"dns": 2, "web": 1, "app": 1, "db": 1}, want: 0.996166},
		{name: "D3", counts: map[string]int{"dns": 1, "web": 2, "app": 1, "db": 1}, want: 0.996097},
		{name: "D4", counts: map[string]int{"dns": 1, "web": 1, "app": 2, "db": 1}, want: 0.996442},
		{name: "D5", counts: map[string]int{"dns": 1, "web": 1, "app": 1, "db": 2}, want: 0.996373},
	}
	coa := make(map[string]float64, len(designs))
	for _, d := range designs {
		nm := paperTiers(t, d.counts)
		sol, err := SolveNetwork(nm)
		if err != nil {
			t.Fatal(err)
		}
		coa[d.name] = sol.COA
		if !mathx.AlmostEqual(sol.COA, d.want, 1e-4) {
			t.Errorf("%s COA = %.6f, want ≈ %.6f", d.name, sol.COA, d.want)
		}
		if sol.COA < 0.9955 || sol.COA > 0.9965 {
			t.Errorf("%s COA = %.6f outside the paper's Fig. 6 range", d.name, sol.COA)
		}
	}
	// Paper §IV-A: the fourth design (redundant app tier — the slowest
	// recovery) gains the most COA; every redundant design beats D1.
	if !(coa["D4"] > coa["D5"] && coa["D5"] > coa["D2"] && coa["D2"] > coa["D3"] && coa["D3"] > coa["D1"]) {
		t.Errorf("COA ordering wrong: %+v", coa)
	}
}

// TestClosedFormMatchesSRN cross-validates the two COA computations on
// the paper's designs.
func TestClosedFormMatchesSRN(t *testing.T) {
	for _, counts := range []map[string]int{
		baseCounts,
		{"dns": 1, "web": 1, "app": 1, "db": 1},
		{"dns": 1, "web": 3, "app": 2, "db": 2},
	} {
		nm := paperTiers(t, counts)
		sol, err := SolveNetwork(nm)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := ClosedFormCOA(nm)
		if err != nil {
			t.Fatal(err)
		}
		if !mathx.AlmostEqual(sol.COA, cf, 1e-9) {
			t.Errorf("SRN COA %.9f != closed form %.9f for %v", sol.COA, cf, counts)
		}
	}
}

// TestClosedFormMatchesSRNRandom extends the cross-validation to random
// tier configurations.
func TestClosedFormMatchesSRNRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTiers := 1 + rng.Intn(3)
		var nm NetworkModel
		for i := 0; i < nTiers; i++ {
			nm.Tiers = append(nm.Tiers, Tier{
				Name:     "t" + string(rune('0'+i)),
				N:        1 + rng.Intn(3),
				LambdaEq: rng.Float64() * 0.05,
				MuEq:     0.5 + rng.Float64()*2,
			})
		}
		sol, err := SolveNetwork(nm)
		if err != nil {
			return false
		}
		cf, err := ClosedFormCOA(nm)
		if err != nil {
			return false
		}
		return mathx.AlmostEqual(sol.COA, cf, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTierValidation(t *testing.T) {
	tests := []struct {
		name    string
		tier    Tier
		wantErr bool
	}{
		{name: "ok", tier: Tier{Name: "web", N: 2, LambdaEq: 0.001, MuEq: 1}, wantErr: false},
		{name: "noName", tier: Tier{N: 1}, wantErr: true},
		{name: "zeroN", tier: Tier{Name: "x"}, wantErr: true},
		{name: "negLambda", tier: Tier{Name: "x", N: 1, LambdaEq: -1}, wantErr: true},
		{name: "patchNoRecovery", tier: Tier{Name: "x", N: 1, LambdaEq: 1}, wantErr: true},
		{name: "neverPatches", tier: Tier{Name: "x", N: 1}, wantErr: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.tier.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNetworkModelValidation(t *testing.T) {
	if err := (NetworkModel{}).Validate(); err == nil {
		t.Error("empty model should fail")
	}
	dup := NetworkModel{Tiers: []Tier{
		{Name: "a", N: 1}, {Name: "a", N: 1},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate tier should fail")
	}
}

func TestNeverPatchingTierIsAlwaysUp(t *testing.T) {
	nm := NetworkModel{Tiers: []Tier{
		{Name: "static", N: 2},
		{Name: "patchy", N: 1, LambdaEq: 1.0 / 720, MuEq: 1.5},
	}}
	sol, err := SolveNetwork(nm)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(sol.TierAllUp["static"], 1, 1e-12) {
		t.Errorf("non-patching tier availability = %v, want 1", sol.TierAllUp["static"])
	}
	// COA = (2 + a)/3 weighted: with a = mu/(lambda+mu).
	a := 1.5 / (1.5 + 1.0/720)
	want := a*1 + (1-a)*0 // reward 0 when the single patchy server is down
	if !mathx.AlmostEqual(sol.COA, want, 1e-9) {
		t.Errorf("COA = %v, want %v", sol.COA, want)
	}
}

func TestSingleRepairLowersCOA(t *testing.T) {
	// With serialized recovery, overlapping patches last longer, so COA
	// must be (weakly) lower than with per-server recovery.
	tiers := []Tier{{Name: "web", N: 3, LambdaEq: 0.01, MuEq: 0.5}}
	per, err := SolveNetwork(NetworkModel{Tiers: tiers, Recovery: PerServer})
	if err != nil {
		t.Fatal(err)
	}
	single, err := SolveNetwork(NetworkModel{Tiers: tiers, Recovery: SingleRepair})
	if err != nil {
		t.Fatal(err)
	}
	if single.COA >= per.COA {
		t.Errorf("SingleRepair COA %v should be below PerServer COA %v", single.COA, per.COA)
	}
	if _, err := ClosedFormCOA(NetworkModel{Tiers: tiers, Recovery: SingleRepair}); err == nil {
		t.Error("closed form must reject SingleRepair")
	}
}

func TestCOARewardGeneralizesTable6(t *testing.T) {
	// Reconstruct the Table VI reward rows for the base network.
	nm := paperTiers(t, baseCounts)
	net, ups, err := BuildNetworkSRN(nm)
	if err != nil {
		t.Fatal(err)
	}
	reward := COAReward(nm, ups)
	marking := net.InitialMarking()
	if got := reward(marking); got != 1 {
		t.Errorf("all-up reward = %v, want 1", got)
	}
	// One web down: 5/6.
	m := net.InitialMarking()
	m[indexOf(t, net.Places(), "Pwebup")] = 1
	if got := reward(m); !mathx.AlmostEqual(got, 5.0/6, 1e-12) {
		t.Errorf("one web down reward = %v, want 5/6", got)
	}
	// One web and one app down: 4/6.
	m[indexOf(t, net.Places(), "Pappup")] = 1
	if got := reward(m); !mathx.AlmostEqual(got, 4.0/6, 1e-12) {
		t.Errorf("one web + one app down reward = %v, want 4/6", got)
	}
	// DNS down: 0 regardless of capacity elsewhere.
	m = net.InitialMarking()
	m[indexOf(t, net.Places(), "Pdnsup")] = 0
	if got := reward(m); got != 0 {
		t.Errorf("dns down reward = %v, want 0", got)
	}
}

func indexOf(t *testing.T, places []*srn.Place, name string) int {
	t.Helper()
	for i, p := range places {
		if p.Name() == name {
			return i
		}
	}
	t.Fatalf("place %s not found", name)
	return -1
}

// TestBirnbaumImportance: redundant tiers matter orders of magnitude less
// to service availability than singleton tiers, and the numbers agree
// with a numerical derivative of the closed-form service availability.
func TestBirnbaumImportance(t *testing.T) {
	nm := paperTiers(t, baseCounts)
	imp, err := BirnbaumImportance(nm)
	if err != nil {
		t.Fatal(err)
	}
	// Singleton tiers (dns, db) carry importance near 1; the duplicated
	// web/app tiers near zero.
	for _, single := range []string{"dns", "db"} {
		if imp[single] < 0.99 {
			t.Errorf("importance(%s) = %v, want near 1", single, imp[single])
		}
	}
	for _, dup := range []string{"web", "app"} {
		if imp[dup] > 0.01 {
			t.Errorf("importance(%s) = %v, want near 0 (redundant)", dup, imp[dup])
		}
		if imp[dup] <= 0 {
			t.Errorf("importance(%s) = %v, want positive", dup, imp[dup])
		}
	}
	// Validate one entry against a numerical derivative: perturb the web
	// tier's availability through its recovery rate.
	serviceAvail := func(model NetworkModel) float64 {
		sol, err := SolveNetwork(model)
		if err != nil {
			t.Fatal(err)
		}
		return sol.ServiceAvailability
	}
	perturbed := NetworkModel{Tiers: append([]Tier(nil), nm.Tiers...)}
	var webIdx int
	for i, tier := range perturbed.Tiers {
		if tier.Name == "web" {
			webIdx = i
		}
	}
	w := perturbed.Tiers[webIdx]
	a0 := w.MuEq / (w.LambdaEq + w.MuEq)
	const dA = 1e-5
	a1 := a0 - dA
	// Solve mu for the perturbed availability at fixed lambda.
	perturbed.Tiers[webIdx].MuEq = a1 * w.LambdaEq / (1 - a1)
	numerical := (serviceAvail(nm) - serviceAvail(perturbed)) / dA
	if !mathx.AlmostEqual(numerical, imp["web"], 1e-2) {
		t.Errorf("numerical derivative %v vs Birnbaum %v", numerical, imp["web"])
	}
	// Guard rails.
	if _, err := BirnbaumImportance(NetworkModel{Tiers: nm.Tiers, Recovery: SingleRepair}); err == nil {
		t.Error("SingleRepair should be rejected")
	}
	if _, err := BirnbaumImportance(NetworkModel{Tiers: nm.Tiers, Quorum: map[string]int{"web": 2}}); err == nil {
		t.Error("non-default quorums should be rejected")
	}
}

// TestExtremeRateRatios guards numerical robustness: rates spanning nine
// orders of magnitude must still produce a valid distribution.
func TestExtremeRateRatios(t *testing.T) {
	nm := NetworkModel{Tiers: []Tier{
		{Name: "fast", N: 2, LambdaEq: 1e3, MuEq: 1e6},
		{Name: "slow", N: 1, LambdaEq: 1e-3, MuEq: 1e-1},
	}}
	sol, err := SolveNetwork(nm)
	if err != nil {
		t.Fatal(err)
	}
	if sol.COA < 0 || sol.COA > 1 {
		t.Errorf("COA = %v outside [0,1]", sol.COA)
	}
	cf, err := ClosedFormCOA(nm)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(sol.COA, cf, 1e-6) {
		t.Errorf("SRN %v vs closed form %v under extreme rates", sol.COA, cf)
	}
}

// TestMeanTimeToServiceDown checks first-passage analysis on the upper
// layer: with single DNS/DB servers, the first patch on either takes the
// service down, so the MTTF is close to 720/2 h minus redundancy effects.
func TestMeanTimeToServiceDown(t *testing.T) {
	nm := paperTiers(t, baseCounts)
	mttf, err := MeanTimeToServiceDown(nm)
	if err != nil {
		t.Fatal(err)
	}
	// Two singleton tiers patch at 1/720 each: the service-down arrival
	// rate is slightly above 2/720 (double web/app outages contribute a
	// little), so the MTTF sits just below 360 h.
	if mttf < 300 || mttf > 360 {
		t.Errorf("MTTF = %v h, want just below 360", mttf)
	}
	// A two-state sanity model: single tier, single server: MTTF = MTTP.
	single := NetworkModel{Tiers: []Tier{{Name: "x", N: 1, LambdaEq: 1.0 / 720, MuEq: 1}}}
	mttfSingle, err := MeanTimeToServiceDown(single)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(mttfSingle, 720, 1e-6) {
		t.Errorf("single-server MTTF = %v, want 720", mttfSingle)
	}
	// Redundancy extends the MTTF.
	redundant := NetworkModel{Tiers: []Tier{{Name: "x", N: 2, LambdaEq: 1.0 / 720, MuEq: 1}}}
	mttfRedundant, err := MeanTimeToServiceDown(redundant)
	if err != nil {
		t.Fatal(err)
	}
	if mttfRedundant <= 10*mttfSingle {
		t.Errorf("redundant MTTF = %v, expected much larger than %v", mttfRedundant, mttfSingle)
	}
	// A never-patching model has no down states.
	if _, err := MeanTimeToServiceDown(NetworkModel{Tiers: []Tier{{Name: "x", N: 1}}}); err == nil {
		t.Error("model without down states should fail")
	}
}

// TestQuorum exercises the k-out-of-n generalization of the Table VI
// reward: a two-server database cluster that needs both replicas.
func TestQuorum(t *testing.T) {
	tiers := []Tier{
		{Name: "web", N: 2, LambdaEq: 1.0 / 720, MuEq: 1.71420},
		{Name: "db", N: 2, LambdaEq: 1.0 / 720, MuEq: 1.09085},
	}
	loose := NetworkModel{Tiers: tiers}
	strict := NetworkModel{Tiers: tiers, Quorum: map[string]int{"db": 2}}

	lSol, err := SolveNetwork(loose)
	if err != nil {
		t.Fatal(err)
	}
	sSol, err := SolveNetwork(strict)
	if err != nil {
		t.Fatal(err)
	}
	if sSol.COA >= lSol.COA {
		t.Errorf("a 2-of-2 quorum must cost COA: %v vs %v", sSol.COA, lSol.COA)
	}
	if sSol.ServiceAvailability >= lSol.ServiceAvailability {
		t.Errorf("quorum must cost service availability: %v vs %v",
			sSol.ServiceAvailability, lSol.ServiceAvailability)
	}
	// Closed form agrees with the SRN under quorums too.
	cf, err := ClosedFormCOA(strict)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(sSol.COA, cf, 1e-9) {
		t.Errorf("quorum closed form %.9f != SRN %.9f", cf, sSol.COA)
	}
	// Reward spot check: one db down zeroes the reward under the quorum.
	net, ups, err := BuildNetworkSRN(strict)
	if err != nil {
		t.Fatal(err)
	}
	reward := COAReward(strict, ups)
	m := net.InitialMarking()
	m[indexOf(t, net.Places(), "Pdbup")] = 1
	if got := reward(m); got != 0 {
		t.Errorf("reward with quorum broken = %v, want 0", got)
	}
}

func TestQuorumValidation(t *testing.T) {
	tiers := []Tier{{Name: "db", N: 2, LambdaEq: 0.001, MuEq: 1}}
	tests := []struct {
		name   string
		quorum map[string]int
		ok     bool
	}{
		{name: "valid", quorum: map[string]int{"db": 2}, ok: true},
		{name: "unknownGroup", quorum: map[string]int{"ghost": 1}, ok: false},
		{name: "tooLarge", quorum: map[string]int{"db": 3}, ok: false},
		{name: "zero", quorum: map[string]int{"db": 0}, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			nm := NetworkModel{Tiers: tiers, Quorum: tt.quorum}
			if err := nm.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

// TestRedundancyGain verifies the quantitative form of §IV-C observation
// 1: the application tier (slowest patch recovery) benefits most from an
// extra server.
func TestRedundancyGain(t *testing.T) {
	nm := paperTiers(t, map[string]int{"dns": 1, "web": 1, "app": 1, "db": 1})
	gains, err := RedundancyGain(nm)
	if err != nil {
		t.Fatal(err)
	}
	if len(gains) != 4 {
		t.Fatalf("gains = %v, want 4 entries", gains)
	}
	for _, other := range []string{"dns", "web", "db"} {
		if gains["app"] <= gains[other] {
			t.Errorf("gain(app)=%v should exceed gain(%s)=%v", gains["app"], other, gains[other])
		}
	}
	best, gain, err := BestRedundancyPlacement(nm)
	if err != nil {
		t.Fatal(err)
	}
	if best != "app" {
		t.Errorf("best placement = %s, want app", best)
	}
	if !mathx.AlmostEqual(gain, gains["app"], 1e-15) {
		t.Errorf("best gain = %v, want %v", gain, gains["app"])
	}
	// Every gain must be positive: redundancy never hurts COA here.
	for name, g := range gains {
		if g <= 0 {
			t.Errorf("gain(%s) = %v, want positive", name, g)
		}
	}
}

func TestDowntimeDecomposition(t *testing.T) {
	sol, err := SolveServer(paperServerParams("dns"))
	if err != nil {
		t.Fatal(err)
	}
	// The DNS server's downtime is dominated by the patch pipeline: the
	// OS fails every 1440 h (1 h repair) and the service every 336 h
	// (0.5 h repair), versus 0.667 h of patching every 720 h.
	if share := sol.DowntimeShare(); share < 0.2 || share > 0.5 {
		t.Errorf("patch downtime share = %v, expected a substantial minority share", share)
	}
	if sol.HardwareDown <= 0 || sol.HardwareDown > 1e-4 {
		t.Errorf("P(hw down) = %v, expected tiny but positive", sol.HardwareDown)
	}
	if sol.OSDown <= sol.HardwareDown {
		t.Errorf("P(os not up) = %v should exceed P(hw down) = %v (os fails more often and patches)",
			sol.OSDown, sol.HardwareDown)
	}
	if (ServerSolution{}).DowntimeShare() != 0 {
		t.Error("zero solution should have zero share")
	}
}

// TestHeterogeneousGroups models the paper's §V heterogeneous-redundancy
// extension: two web servers with different stacks (different patch
// windows) forming one logical tier.
func TestHeterogeneousGroups(t *testing.T) {
	hetero := NetworkModel{Tiers: []Tier{
		{Name: "webA", Group: "web", N: 1, LambdaEq: 1.0 / 720, MuEq: 1.71420},
		{Name: "webB", Group: "web", N: 1, LambdaEq: 1.0 / 720, MuEq: 2.0},
		{Name: "db", N: 1, LambdaEq: 1.0 / 720, MuEq: 1.09085},
	}}
	sol, err := SolveNetwork(hetero)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := ClosedFormCOA(hetero)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(sol.COA, cf, 1e-9) {
		t.Errorf("SRN COA %.9f != closed form %.9f", sol.COA, cf)
	}
	// Sanity: the grouped pair must beat a single webA server (redundancy
	// helps) and the COA must exceed the service availability would-be
	// product of any single chain.
	single := NetworkModel{Tiers: []Tier{
		{Name: "webA", N: 1, LambdaEq: 1.0 / 720, MuEq: 1.71420},
		{Name: "db", N: 1, LambdaEq: 1.0 / 720, MuEq: 1.09085},
	}}
	sSol, err := SolveNetwork(single)
	if err != nil {
		t.Fatal(err)
	}
	if sol.ServiceAvailability <= sSol.ServiceAvailability {
		t.Errorf("heterogeneous redundancy should raise service availability: %v vs %v",
			sol.ServiceAvailability, sSol.ServiceAvailability)
	}
	// The grouped reward must treat one-of-two web servers down as
	// degraded capacity, not an outage.
	net, ups, err := BuildNetworkSRN(hetero)
	if err != nil {
		t.Fatal(err)
	}
	reward := COAReward(hetero, ups)
	m := net.InitialMarking()
	if got := reward(m); !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("all-up reward = %v", got)
	}
	m[indexOf(t, net.Places(), "PwebAup")] = 0
	if got := reward(m); !mathx.AlmostEqual(got, 2.0/3, 1e-12) {
		t.Errorf("one web down reward = %v, want 2/3 (capacity loss, not outage)", got)
	}
	m[indexOf(t, net.Places(), "PwebBup")] = 0
	if got := reward(m); got != 0 {
		t.Errorf("whole web group down reward = %v, want 0", got)
	}
}

func TestGroupedClosedFormMatchesSRNRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var nm NetworkModel
		nGroups := 1 + rng.Intn(2)
		id := 0
		for g := 0; g < nGroups; g++ {
			members := 1 + rng.Intn(2)
			for m := 0; m < members; m++ {
				nm.Tiers = append(nm.Tiers, Tier{
					Name:     "t" + string(rune('0'+id)),
					Group:    "g" + string(rune('0'+g)),
					N:        1 + rng.Intn(2),
					LambdaEq: rng.Float64() * 0.05,
					MuEq:     0.5 + rng.Float64()*2,
				})
				id++
			}
		}
		sol, err := SolveNetwork(nm)
		if err != nil {
			return false
		}
		cf, err := ClosedFormCOA(nm)
		if err != nil {
			return false
		}
		return mathx.AlmostEqual(sol.COA, cf, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSolveServerTiersMissingCount(t *testing.T) {
	_, _, err := SolveServerTiers([]ServerParams{paperServerParams("dns")}, map[string]int{})
	if err == nil {
		t.Error("missing replica count should fail")
	}
}
