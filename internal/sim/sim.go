// Package sim is a discrete-event Monte-Carlo simulator for the
// stochastic reward nets of internal/srn. It estimates steady-state
// expected reward rates by simulating trajectories and batching, serving
// as an independent cross-check of the analytic
// reachability-plus-steady-state pipeline — the role a measurement
// testbed would play for the paper's models.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"redpatch/internal/srn"
)

// Options configures a simulation run. Times are in the same unit as the
// net's rates (hours throughout this repository).
type Options struct {
	// Horizon is the simulated time per batch after warmup; required.
	Horizon float64
	// Warmup is discarded simulated time at the start (default: one tenth
	// of the horizon).
	Warmup float64
	// Batches is the number of independent batches used for the standard
	// error (default 10, minimum 2).
	Batches int
	// Seed seeds the random source; the same seed reproduces the run
	// exactly.
	Seed int64
	// MaxEvents caps the total number of transition firings as a runaway
	// guard (default 50 million).
	MaxEvents int64
	// MaxImmediateChain caps consecutive immediate firings without time
	// advancing (default 10000); exceeding it indicates a vanishing loop.
	MaxImmediateChain int
}

func (o Options) withDefaults() (Options, error) {
	if o.Horizon <= 0 || math.IsNaN(o.Horizon) {
		return o, fmt.Errorf("sim: invalid horizon %v", o.Horizon)
	}
	if o.Warmup < 0 {
		return o, fmt.Errorf("sim: negative warmup")
	}
	if o.Warmup == 0 {
		o.Warmup = o.Horizon / 10
	}
	if o.Batches == 0 {
		o.Batches = 10
	}
	if o.Batches < 2 {
		return o, fmt.Errorf("sim: need at least 2 batches, have %d", o.Batches)
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 50_000_000
	}
	if o.MaxImmediateChain <= 0 {
		o.MaxImmediateChain = 10000
	}
	return o, nil
}

// Estimate is the simulation result for one reward function.
type Estimate struct {
	// Mean is the batch-mean estimate of the expected steady-state reward
	// rate.
	Mean float64
	// StdErr is the standard error across batches.
	StdErr float64
	// Lo95 and Hi95 bound the approximate 95% confidence interval
	// (mean ± 1.96 stderr).
	Lo95, Hi95 float64
	// Events counts transition firings over the whole run.
	Events int64
}

// Contains reports whether the confidence interval covers x.
func (e Estimate) Contains(x float64) bool { return x >= e.Lo95 && x <= e.Hi95 }

// ErrDeadlock reports that the simulation reached a marking with no
// enabled transitions.
var ErrDeadlock = errors.New("sim: deadlock marking reached")

// ErrImmediateLoop reports a non-terminating chain of immediate firings.
var ErrImmediateLoop = errors.New("sim: immediate-transition loop")

// EstimateReward simulates the net and estimates the expected steady-state
// rate of the reward function by the batch-means method.
func EstimateReward(net *srn.Net, reward srn.RewardFunc, opts Options) (Estimate, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return Estimate{}, err
	}
	if err := net.Validate(); err != nil {
		return Estimate{}, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	st := &state{
		net:   net,
		rng:   rng,
		m:     net.InitialMarking(),
		opts:  opts,
		timed: timedTransitions(net),
	}
	// Settle immediates of the initial marking.
	if err := st.settleImmediates(); err != nil {
		return Estimate{}, err
	}
	// Warmup.
	if err := st.run(opts.Warmup, nil); err != nil {
		return Estimate{}, err
	}
	// Batches.
	means := make([]float64, opts.Batches)
	for b := range means {
		var acc float64
		accfn := func(dt float64, m srn.Marking) { acc += dt * reward(m) }
		if err := st.run(opts.Horizon, accfn); err != nil {
			return Estimate{}, err
		}
		means[b] = acc / opts.Horizon
	}

	est := Estimate{Events: st.events}
	for _, m := range means {
		est.Mean += m
	}
	est.Mean /= float64(opts.Batches)
	var ss float64
	for _, m := range means {
		d := m - est.Mean
		ss += d * d
	}
	est.StdErr = math.Sqrt(ss / float64(opts.Batches-1) / float64(opts.Batches))
	est.Lo95 = est.Mean - 1.96*est.StdErr
	est.Hi95 = est.Mean + 1.96*est.StdErr
	return est, nil
}

type state struct {
	net    *srn.Net
	rng    *rand.Rand
	m      srn.Marking
	opts   Options
	events int64
	timed  []*srn.Transition
}

func timedTransitions(net *srn.Net) []*srn.Transition {
	var out []*srn.Transition
	for _, t := range net.Transitions() {
		if t.Kind() == srn.Timed {
			out = append(out, t)
		}
	}
	return out
}

// run advances the simulation by the given amount of simulated time,
// feeding occupancy intervals to acc (when non-nil).
func (s *state) run(duration float64, acc func(dt float64, m srn.Marking)) error {
	remaining := duration
	for remaining > 0 {
		if s.events >= s.opts.MaxEvents {
			return fmt.Errorf("sim: event cap %d exceeded", s.opts.MaxEvents)
		}
		// Exponential race among enabled timed transitions: with
		// memoryless delays, sampling one exponential with the total rate
		// and picking the winner proportionally to rate is equivalent.
		total := 0.0
		rates := make([]float64, len(s.timed))
		for i, t := range s.timed {
			if r, enabled := s.net.TimedRate(t, s.m); enabled {
				rates[i] = r
				total += r
			}
		}
		if total == 0 {
			return fmt.Errorf("%w: %s", ErrDeadlock, s.net.MarkingString(s.m))
		}
		dt := s.rng.ExpFloat64() / total
		if dt >= remaining {
			if acc != nil {
				acc(remaining, s.m)
			}
			return nil
		}
		if acc != nil {
			acc(dt, s.m)
		}
		remaining -= dt

		// Pick the firing transition proportionally to its rate.
		x := s.rng.Float64() * total
		idx := -1
		for i, r := range rates {
			if r == 0 {
				continue
			}
			x -= r
			if x <= 0 {
				idx = i
				break
			}
		}
		if idx < 0 { // numerical edge: take the last enabled
			for i := len(rates) - 1; i >= 0; i-- {
				if rates[i] > 0 {
					idx = i
					break
				}
			}
		}
		s.m = s.net.Fire(s.timed[idx], s.m)
		s.events++
		if err := s.settleImmediates(); err != nil {
			return err
		}
	}
	return nil
}

// settleImmediates fires enabled immediate transitions (highest priority
// first, weight-proportional among ties) until the marking is tangible.
func (s *state) settleImmediates() error {
	for chain := 0; ; chain++ {
		if chain > s.opts.MaxImmediateChain {
			return fmt.Errorf("%w at %s", ErrImmediateLoop, s.net.MarkingString(s.m))
		}
		enabled := s.net.EnabledImmediates(s.m)
		if len(enabled) == 0 {
			return nil
		}
		total := 0.0
		for _, t := range enabled {
			total += t.Weight()
		}
		x := s.rng.Float64() * total
		pick := enabled[len(enabled)-1]
		for _, t := range enabled {
			x -= t.Weight()
			if x <= 0 {
				pick = t
				break
			}
		}
		s.m = s.net.Fire(pick, s.m)
		s.events++
	}
}
