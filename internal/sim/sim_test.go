package sim

import (
	"errors"
	"math"
	"testing"

	"redpatch/internal/availability"
	"redpatch/internal/srn"
)

func upDownNet(t *testing.T, lambda, mu float64) (*srn.Net, *srn.Place) {
	t.Helper()
	n := srn.New("updown")
	up := n.AddPlace("up", 1)
	down := n.AddPlace("down", 0)
	n.AddTimedTransition("Tfail", lambda).From(up).To(down)
	n.AddTimedTransition("Trepair", mu).From(down).To(up)
	return n, up
}

func TestEstimateMatchesClosedForm(t *testing.T) {
	const lambda, mu = 0.5, 2.0
	net, up := upDownNet(t, lambda, mu)
	est, err := EstimateReward(net,
		func(m srn.Marking) float64 { return float64(m.Tokens(up)) },
		Options{Horizon: 2000, Batches: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lambda + mu)
	if math.Abs(est.Mean-want) > 0.01 {
		t.Errorf("estimate = %v, want ≈ %v", est.Mean, want)
	}
	if !est.Contains(want) && math.Abs(est.Mean-want) > 3*est.StdErr {
		t.Errorf("closed form %v outside CI [%v, %v]", want, est.Lo95, est.Hi95)
	}
	if est.Events == 0 {
		t.Error("simulation should fire events")
	}
}

func TestEstimateIsReproducible(t *testing.T) {
	net, up := upDownNet(t, 0.5, 2.0)
	reward := func(m srn.Marking) float64 { return float64(m.Tokens(up)) }
	a, err := EstimateReward(net, reward, Options{Horizon: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateReward(net, reward, Options{Horizon: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Events != b.Events {
		t.Error("same seed must reproduce the run")
	}
	c, err := EstimateReward(net, reward, Options{Horizon: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean == c.Mean {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestImmediateBranchingWeights(t *testing.T) {
	// Vanishing marking splits 1:3; occupancy of the two branches must
	// reflect the weights.
	n := srn.New("weights")
	src := n.AddPlace("src", 1)
	mid := n.AddPlace("mid", 0)
	a := n.AddPlace("a", 0)
	b := n.AddPlace("b", 0)
	n.AddTimedTransition("Tgo", 1).From(src).To(mid)
	n.AddImmediateTransition("TtoA").From(mid).To(a).WithWeight(1)
	n.AddImmediateTransition("TtoB").From(mid).To(b).WithWeight(3)
	n.AddTimedTransition("TbackA", 1).From(a).To(src)
	n.AddTimedTransition("TbackB", 1).From(b).To(src)

	estA, err := EstimateReward(n,
		func(m srn.Marking) float64 { return float64(m.Tokens(a)) },
		Options{Horizon: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	estB, err := EstimateReward(n,
		func(m srn.Marking) float64 { return float64(m.Tokens(b)) },
		Options{Horizon: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := estB.Mean / estA.Mean
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("occupancy ratio = %v, want ≈ 3", ratio)
	}
}

func TestDeadlockDetected(t *testing.T) {
	n := srn.New("dead")
	a := n.AddPlace("a", 1)
	b := n.AddPlace("b", 0)
	n.AddTimedTransition("Tgo", 1).From(a).To(b) // b has no way out
	_, err := EstimateReward(n, func(srn.Marking) float64 { return 0 },
		Options{Horizon: 10, Seed: 1})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("expected ErrDeadlock, got %v", err)
	}
}

func TestImmediateLoopDetected(t *testing.T) {
	n := srn.New("loop")
	a := n.AddPlace("a", 1)
	b := n.AddPlace("b", 0)
	n.AddImmediateTransition("Tab").From(a).To(b)
	n.AddImmediateTransition("Tba").From(b).To(a)
	// A timed transition so validation passes and the run starts.
	clock := n.AddPlace("clock", 1)
	n.AddTimedTransition("Tc", 1).From(clock).To(clock)
	_, err := EstimateReward(n, func(srn.Marking) float64 { return 0 },
		Options{Horizon: 10, Seed: 1, MaxImmediateChain: 50})
	if !errors.Is(err, ErrImmediateLoop) {
		t.Errorf("expected ErrImmediateLoop, got %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	net, _ := upDownNet(t, 1, 1)
	reward := func(srn.Marking) float64 { return 0 }
	if _, err := EstimateReward(net, reward, Options{}); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := EstimateReward(net, reward, Options{Horizon: 10, Batches: 1}); err == nil {
		t.Error("single batch should fail")
	}
	if _, err := EstimateReward(net, reward, Options{Horizon: 10, Warmup: -1}); err == nil {
		t.Error("negative warmup should fail")
	}
}

func TestEventCap(t *testing.T) {
	net, _ := upDownNet(t, 100, 100)
	_, err := EstimateReward(net, func(srn.Marking) float64 { return 0 },
		Options{Horizon: 1e6, Seed: 1, MaxEvents: 1000})
	if err == nil {
		t.Error("event cap should trip on a long busy run")
	}
}

// TestNetworkCOAAgainstAnalytic cross-validates the paper's upper-layer
// availability model: the simulated COA of the base network must agree
// with the analytic 0.99707 within the confidence interval.
func TestNetworkCOAAgainstAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo cross-validation skipped in -short mode")
	}
	nm := availability.NetworkModel{Tiers: []availability.Tier{
		{Name: "dns", N: 1, LambdaEq: 1.0 / 720, MuEq: 1.49992},
		{Name: "web", N: 2, LambdaEq: 1.0 / 720, MuEq: 1.71420},
		{Name: "app", N: 2, LambdaEq: 1.0 / 720, MuEq: 0.99995},
		{Name: "db", N: 1, LambdaEq: 1.0 / 720, MuEq: 1.09085},
	}}
	net, ups, err := availability.BuildNetworkSRN(nm)
	if err != nil {
		t.Fatal(err)
	}
	reward := availability.COAReward(nm, ups)
	// 60 batches x 20000 h: patches are rare events (1/720 h per server),
	// so the horizon must cover many thousands of cycles.
	est, err := EstimateReward(net, reward, Options{Horizon: 20000, Batches: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := availability.ClosedFormCOA(nm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-analytic) > 4*est.StdErr+1e-4 {
		t.Errorf("simulated COA %v too far from analytic %v (stderr %v)", est.Mean, analytic, est.StdErr)
	}
}

// TestSingleRepairAgainstAnalytic cross-validates the serialized-repair
// ablation: the simulator and the SRN solver must agree on the COA of a
// single-repair tier.
func TestSingleRepairAgainstAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo cross-validation skipped in -short mode")
	}
	nm := availability.NetworkModel{
		Tiers:    []availability.Tier{{Name: "web", N: 3, LambdaEq: 0.02, MuEq: 0.5}},
		Recovery: availability.SingleRepair,
	}
	analytic, err := availability.SolveNetwork(nm)
	if err != nil {
		t.Fatal(err)
	}
	net, ups, err := availability.BuildNetworkSRN(nm)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateReward(net, availability.COAReward(nm, ups),
		Options{Horizon: 30000, Batches: 30, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-analytic.COA) > 4*est.StdErr+1e-3 {
		t.Errorf("simulated single-repair COA %v too far from analytic %v (stderr %v)",
			est.Mean, analytic.COA, est.StdErr)
	}
}

// TestServerModelAgainstAnalytic cross-validates the lower-layer server
// SRN: simulated service availability must match the analytic solution.
func TestServerModelAgainstAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo cross-validation skipped in -short mode")
	}
	p := availability.DefaultRates("dns")
	p.SvcPatchTime = 5 * 60 * 1e9 // 5 minutes in time.Duration units
	p.OSPatchTime = 20 * 60 * 1e9 // 20 minutes
	sol, err := availability.SolveServer(p)
	if err != nil {
		t.Fatal(err)
	}
	net, pl, err := availability.BuildServerSRN(p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateReward(net,
		func(m srn.Marking) float64 { return float64(m.Tokens(pl.SvcUp)) },
		Options{Horizon: 50000, Batches: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-sol.ServiceUp) > 4*est.StdErr+5e-4 {
		t.Errorf("simulated availability %v too far from analytic %v (stderr %v)",
			est.Mean, sol.ServiceUp, est.StdErr)
	}
}
