// Package workpool is the bounded fan-out primitive under the design
// evaluation engine: a fixed number of worker goroutines draining a
// slice, either collecting results in input order (Map) or handing them
// to a collector as they complete (Stream).
// redundancy.(*Evaluator).EvaluateAll delegates to Map and the engine's
// sweeps to Stream, so serial and concurrent evaluation share one pool
// and differ only in worker count.
package workpool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp normalizes a worker count: non-positive selects GOMAXPROCS, and
// the count never exceeds the number of items (n <= 0 leaves it alone).
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	return workers
}

// Map applies fn to every item with at most workers goroutines and
// returns the results in input order. fn receives the item index and the
// item. On error, Map stops handing out new items, waits for in-flight
// calls, and returns the recorded error with the lowest index together
// with a nil slice. workers <= 0 selects GOMAXPROCS; workers == 1 is
// exactly the serial left-to-right loop.
func Map[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return []R{}, nil
	}
	workers = Clamp(workers, n)

	out := make([]R, n)
	if workers == 1 {
		for i, it := range items {
			r, err := fn(i, it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stream applies fn to every item with at most workers goroutines and
// hands each outcome to emit in completion order. emit runs on the
// calling goroutine only, so it needs no locking; returning false stops
// the stream — no new items are handed out, in-flight calls finish and
// their outcomes are discarded. Stream returns once every worker has
// exited. workers <= 0 selects GOMAXPROCS.
func Stream[T, R any](workers int, items []T, fn func(int, T) (R, error), emit func(idx int, r R, err error) bool) {
	StreamCtx(context.Background(), workers, items, fn, emit)
}

// StreamCtx is Stream with a cancellation context: once ctx is done,
// workers exit before picking up their next item, so a cancelled
// caller's queued items are dropped instead of burning worker slots on
// fn calls whose outcomes nobody wants. Items already in flight finish
// normally (fn is not interrupted); their outcomes still reach emit.
// The engine's sweeps run on this so a disconnected sweep releases the
// pool at once rather than draining its whole backlog through fn.
func StreamCtx[T, R any](ctx context.Context, workers int, items []T, fn func(int, T) (R, error), emit func(idx int, r R, err error) bool) {
	n := len(items)
	if n == 0 {
		return
	}
	workers = Clamp(workers, n)

	type outcome struct {
		idx int
		r   R
		err error
	}
	ch := make(chan outcome, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() || ctx.Err() != nil {
					return
				}
				r, err := fn(i, items[i])
				ch <- outcome{idx: i, r: r, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	stopped := false
	for o := range ch {
		if !stopped && !emit(o.idx, o.r, o.err) {
			stopped = true
			stop.Store(true)
		}
	}
}
