package workpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 100, 200} {
		got, err := Map(workers, items, func(_ int, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, nil, func(_ int, v int) (int, error) { return v, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(1, items, func(i int, _ int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("item %d", i)
		}
		return 0, nil
	})
	if err == nil || err.Error() != "item 3" {
		t.Fatalf("err = %v, want item 3", err)
	}
}

func TestMapStopsSchedulingAfterError(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	items := make([]int, 1000)
	_, err := Map(2, items, func(i int, _ int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n == int64(len(items)) {
		t.Errorf("all %d items ran despite early error", n)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	items := make([]int, 64)
	_, err := Map(workers, items, func(_ int, _ int) (int, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		runtime.Gosched()
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Clamp(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Clamp(8, 3); got != 3 {
		t.Errorf("Clamp(8, 3) = %d, want 3", got)
	}
	if got := Clamp(2, 3); got != 2 {
		t.Errorf("Clamp(2, 3) = %d, want 2", got)
	}
}

func TestStreamDeliversEveryOutcome(t *testing.T) {
	items := []int{10, 20, 30, 40, 50}
	got := make(map[int]int)
	Stream(3, items, func(_ int, v int) (int, error) { return v * 2, nil },
		func(idx int, r int, err error) bool {
			if err != nil {
				t.Fatal(err)
			}
			got[idx] = r
			return true
		})
	if len(got) != len(items) {
		t.Fatalf("delivered %d outcomes, want %d", len(got), len(items))
	}
	for i, v := range items {
		if got[i] != v*2 {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], v*2)
		}
	}
}

func TestStreamStopsOnFalse(t *testing.T) {
	var calls atomic.Int64
	items := make([]int, 1000)
	delivered := 0
	Stream(2, items, func(i int, _ int) (int, error) {
		calls.Add(1)
		return i, nil
	}, func(int, int, error) bool {
		delivered++
		return delivered < 3
	})
	if delivered < 3 {
		t.Fatalf("delivered %d outcomes before stopping, want 3", delivered)
	}
	if n := calls.Load(); n == int64(len(items)) {
		t.Errorf("all %d items ran despite early stop", n)
	}
}

func TestStreamPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	var sawErr error
	Stream(2, []int{0, 1, 2, 3}, func(i int, _ int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	}, func(_ int, _ int, err error) bool {
		if err != nil {
			sawErr = err
			return false
		}
		return true
	})
	if !errors.Is(sawErr, boom) {
		t.Fatalf("collector saw %v, want boom", sawErr)
	}
}

// TestStreamCtxDropsQueuedWork: once the context is cancelled, workers
// must exit without picking up still-queued items — a cancelled
// caller's backlog must not cycle through fn (even a cheap fn call per
// queued item holds the worker slot and channel against other users of
// the pool).
func TestStreamCtxDropsQueuedWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	items := make([]int, 1000)
	StreamCtx(ctx, 1, items, func(i int, _ int) (int, error) {
		calls.Add(1)
		cancel() // cancel while the first item is in flight
		return i, nil
	}, func(int, int, error) bool { return true })
	// Worker 1 picked item 0 before the cancel; everything else was
	// queued and must have been dropped at the loop top.
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times after cancellation, want 1", n)
	}
}

// TestStreamCtxDeliversInFlightOutcome: items already in flight at
// cancellation finish normally and their outcomes still reach emit.
func TestStreamCtxDeliversInFlightOutcome(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered []int
	StreamCtx(ctx, 1, []int{7, 8, 9}, func(i int, v int) (int, error) {
		if i == 1 {
			cancel()
		}
		return v, nil
	}, func(_ int, r int, err error) bool {
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, r)
		return true
	})
	// Items 0 and 1 ran (1 was in flight when it cancelled); item 2 was
	// dropped.
	if len(delivered) != 2 || delivered[0] != 7 || delivered[1] != 8 {
		t.Fatalf("delivered = %v, want [7 8]", delivered)
	}
}

// TestStreamCtxNilSafeBackground: Stream remains StreamCtx under a
// background context — full delivery, no behaviour change.
func TestStreamCtxBackgroundDeliversAll(t *testing.T) {
	n := 0
	StreamCtx(context.Background(), 4, []int{1, 2, 3, 4, 5},
		func(_ int, v int) (int, error) { return v, nil },
		func(int, int, error) bool { n++; return true })
	if n != 5 {
		t.Fatalf("delivered %d outcomes, want 5", n)
	}
}
