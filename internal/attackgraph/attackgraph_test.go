package attackgraph

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// paperGraph builds the example network's upper layer before patch:
// attacker -> dns1 and web{1,2}; dns1 -> web{1,2}; web -> app{1,2};
// app -> db1.
func paperGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, n := range []string{"attacker", "dns1", "web1", "web2", "app1", "app2", "db1"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]string{
		{"attacker", "dns1"}, {"attacker", "web1"}, {"attacker", "web2"},
		{"dns1", "web1"}, {"dns1", "web2"},
		{"web1", "app1"}, {"web1", "app2"}, {"web2", "app1"}, {"web2", "app2"},
		{"app1", "db1"}, {"app2", "db1"},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddNodeAndEdgeValidation(t *testing.T) {
	g := New()
	if err := g.AddNode(""); err == nil {
		t.Error("empty node name should fail")
	}
	if err := g.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a"); err != nil {
		t.Error("re-adding a node is a no-op, not an error")
	}
	if err := g.AddEdge("a", "missing"); err == nil {
		t.Error("edge to unknown node should fail")
	}
	if err := g.AddEdge("missing", "a"); err == nil {
		t.Error("edge from unknown node should fail")
	}
	if err := g.AddEdge("a", "a"); err == nil {
		t.Error("self edge should fail")
	}
}

func TestPaperPathCount(t *testing.T) {
	// Paper Table II: 8 attack paths before patch.
	g := paperGraph(t)
	paths, err := g.AllPaths("attacker", []string{"db1"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 8 {
		t.Fatalf("paths = %d, want 8", len(paths))
	}
	// Paper Table II: 3 entry points before patch (dns1, web1, web2).
	eps := EntryPoints(paths)
	want := []string{"dns1", "web1", "web2"}
	if len(eps) != len(want) {
		t.Fatalf("entry points = %v, want %v", eps, want)
	}
	for i := range want {
		if eps[i] != want[i] {
			t.Fatalf("entry points = %v, want %v", eps, want)
		}
	}
}

func TestPathsAfterRemovingDNS(t *testing.T) {
	// Paper Table II: after patch the DNS server leaves the graph;
	// 4 paths and 2 entry points remain.
	g := paperGraph(t)
	g.RemoveNode("dns1")
	paths, err := g.AllPaths("attacker", []string{"db1"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("paths after removal = %d, want 4", len(paths))
	}
	if eps := EntryPoints(paths); len(eps) != 2 {
		t.Fatalf("entry points after removal = %v, want 2", eps)
	}
}

func TestAllPathsAreSimpleAndDeterministic(t *testing.T) {
	g := paperGraph(t)
	paths, err := g.AllPaths("attacker", []string{"db1"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		seen := make(map[string]bool)
		for _, n := range p {
			if seen[n] {
				t.Fatalf("path %v revisits %q", p, n)
			}
			seen[n] = true
		}
		if p[0] != "attacker" || p[len(p)-1] != "db1" {
			t.Fatalf("path %v has wrong endpoints", p)
		}
	}
	again, err := g.AllPaths("attacker", []string{"db1"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths {
		if paths[i].String() != again[i].String() {
			t.Fatal("AllPaths must be deterministic")
		}
	}
}

func TestAllPathsStopAtTarget(t *testing.T) {
	// target in the middle of a chain: paths must not continue past it.
	g := New()
	for _, n := range []string{"a", "t", "c"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("a", "t"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("t", "c"); err != nil {
		t.Fatal(err)
	}
	paths, err := g.AllPaths("a", []string{"t"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Fatalf("paths = %v, want single a->t", paths)
	}
}

func TestAllPathsSourceIsTarget(t *testing.T) {
	g := paperGraph(t)
	paths, err := g.AllPaths("db1", []string{"db1"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("paths = %v, want the trivial path", paths)
	}
}

func TestAllPathsUnknownNodes(t *testing.T) {
	g := paperGraph(t)
	if _, err := g.AllPaths("ghost", []string{"db1"}, AllPathsOptions{}); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := g.AllPaths("attacker", []string{"ghost"}, AllPathsOptions{}); err == nil {
		t.Error("unknown target should fail")
	}
}

func TestAllPathsCap(t *testing.T) {
	g := paperGraph(t)
	_, err := g.AllPaths("attacker", []string{"db1"}, AllPathsOptions{MaxPaths: 3})
	if !errors.Is(err, ErrTooManyPaths) {
		t.Errorf("expected ErrTooManyPaths, got %v", err)
	}
}

func TestAllPathsWithCycle(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c", "t"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "b"}, {"c", "t"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := g.AllPaths("a", []string{"t"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v, want 1 (cycle must not loop)", paths)
	}
}

func TestRemoveNode(t *testing.T) {
	g := paperGraph(t)
	before := g.NumEdges()
	g.RemoveNode("web1")
	if g.HasNode("web1") {
		t.Error("node should be gone")
	}
	if g.HasEdge("attacker", "web1") || g.HasEdge("web1", "app1") {
		t.Error("edges touching removed node should be gone")
	}
	// web1 had 2 in-edges (attacker, dns1) and 2 out-edges (app1, app2).
	if got := g.NumEdges(); got != before-4 {
		t.Errorf("NumEdges = %d, want %d", got, before-4)
	}
	g.RemoveNode("ghost") // no-op
}

func TestClone(t *testing.T) {
	g := paperGraph(t)
	c := g.Clone()
	c.RemoveNode("dns1")
	if !g.HasNode("dns1") {
		t.Error("Clone must be independent")
	}
	if len(c.Nodes()) != len(g.Nodes())-1 {
		t.Error("clone node count wrong")
	}
}

func TestNodesOnPaths(t *testing.T) {
	g := paperGraph(t)
	paths, err := g.AllPaths("attacker", []string{"db1"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := NodesOnPaths(paths)
	if len(nodes) != 6 {
		t.Errorf("NodesOnPaths = %v, want all 6 hosts", nodes)
	}
	for _, n := range nodes {
		if n == "attacker" {
			t.Error("source must not be included")
		}
	}
}

func TestCentrality(t *testing.T) {
	g := paperGraph(t)
	paths, err := g.AllPaths("attacker", []string{"db1"}, AllPathsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := Centrality(paths)
	// Every one of the 8 paths crosses db1; each web/app server carries
	// half of them; dns1 carries the 4 paths that stage through it.
	if c["db1"] != 8 {
		t.Errorf("centrality(db1) = %d, want 8", c["db1"])
	}
	if c["web1"] != 4 || c["app2"] != 4 {
		t.Errorf("centrality(web1, app2) = %d, %d, want 4, 4", c["web1"], c["app2"])
	}
	if c["dns1"] != 4 {
		t.Errorf("centrality(dns1) = %d, want 4", c["dns1"])
	}
	if _, ok := c["attacker"]; ok {
		t.Error("the source must not be counted")
	}
	if len(Centrality(nil)) != 0 {
		t.Error("no paths, no centrality")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{"a", "b", "c"}
	if p.String() != "a -> b -> c" {
		t.Errorf("String = %q", p.String())
	}
	if !p.Contains("b") || p.Contains("z") {
		t.Error("Contains misbehaves")
	}
}

func TestEntryPointsShortPaths(t *testing.T) {
	if got := EntryPoints([]Path{{"only"}}); len(got) != 0 {
		t.Errorf("EntryPoints of trivial path = %v, want empty", got)
	}
}

func TestDOT(t *testing.T) {
	g := paperGraph(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "attacker", "db1", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if dot != g.DOT() {
		t.Error("DOT must be deterministic")
	}
}

func TestAdjacencySnapshot(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order and duplicate inserts: Successors stays sorted and
	// deduplicated without per-call rebuilding.
	for _, e := range [][2]string{{"a", "d"}, {"a", "b"}, {"a", "c"}, {"a", "b"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"b", "c", "d"}
	if got := g.Successors("a"); !reflect.DeepEqual(got, want) {
		t.Errorf("Successors(a) = %v, want %v", got, want)
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge("a", "c") || g.HasEdge("c", "a") {
		t.Error("HasEdge misbehaves on the sorted snapshot")
	}

	// Clone copies the snapshot; removals on the clone leave the
	// original intact, and vice versa.
	c := g.Clone()
	c.RemoveNode("c")
	if c.HasNode("c") || c.HasEdge("a", "c") {
		t.Error("RemoveNode left traces in the clone")
	}
	if got := c.Successors("a"); !reflect.DeepEqual(got, []string{"b", "d"}) {
		t.Errorf("clone Successors(a) = %v, want [b d]", got)
	}
	if got := g.Successors("a"); !reflect.DeepEqual(got, want) {
		t.Errorf("original Successors(a) = %v after clone removal, want %v", got, want)
	}
}
