// Package attackgraph implements the directed reachability graph that
// forms the upper layer of the paper's HARM. Nodes are host instances plus
// the attacker's location; an edge means the attacker, having compromised
// the source, can attempt the destination. The central operation is
// enumeration of all simple attack paths from the attacker to the target
// hosts, from which the paper's path-based metrics (number of attack
// paths, number of entry points, path impact/probability) are computed.
package attackgraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrTooManyPaths reports that simple-path enumeration exceeded the
// configured cap, which protects against combinatorial blow-up on dense
// graphs.
var ErrTooManyPaths = errors.New("attackgraph: too many attack paths")

// Graph is a directed graph over string-named nodes. Adjacency is kept as
// sorted successor slices maintained on insertion, so traversal
// (Successors, AllPaths) never rebuilds or re-sorts per call and the graph
// is safe for concurrent reads once construction is done.
type Graph struct {
	nodes map[string]bool
	adj   map[string][]string // sorted successor names per node
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]bool),
		adj:   make(map[string][]string),
	}
}

// AddNode inserts a node; adding an existing node is a no-op.
func (g *Graph) AddNode(name string) error {
	if name == "" {
		return fmt.Errorf("attackgraph: empty node name")
	}
	g.nodes[name] = true
	return nil
}

// AddEdge inserts a directed edge; both endpoints must exist. Inserting an
// existing edge is a no-op.
func (g *Graph) AddEdge(from, to string) error {
	if !g.nodes[from] {
		return fmt.Errorf("attackgraph: unknown node %q", from)
	}
	if !g.nodes[to] {
		return fmt.Errorf("attackgraph: unknown node %q", to)
	}
	if from == to {
		return fmt.Errorf("attackgraph: self edge on %q", from)
	}
	succ := g.adj[from]
	i := sort.SearchStrings(succ, to)
	if i < len(succ) && succ[i] == to {
		return nil
	}
	succ = append(succ, "")
	copy(succ[i+1:], succ[i:])
	succ[i] = to
	g.adj[from] = succ
	return nil
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(name string) bool { return g.nodes[name] }

// HasEdge reports whether the directed edge exists.
func (g *Graph) HasEdge(from, to string) bool {
	succ := g.adj[from]
	i := sort.SearchStrings(succ, to)
	return i < len(succ) && succ[i] == to
}

// RemoveNode deletes a node and every edge touching it. The HARM applies
// it when patching leaves a host with an empty attack tree.
func (g *Graph) RemoveNode(name string) {
	if !g.nodes[name] {
		return
	}
	delete(g.nodes, name)
	delete(g.adj, name)
	for from, succ := range g.adj {
		i := sort.SearchStrings(succ, name)
		if i < len(succ) && succ[i] == name {
			g.adj[from] = append(succ[:i], succ[i+1:]...)
		}
	}
}

// Nodes returns all node names sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Successors returns the direct successors of a node, sorted. The slice is
// the graph's own adjacency snapshot — callers must not modify it.
func (g *Graph) Successors(name string) []string {
	return g.adj[name]
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, succ := range g.adj {
		n += len(succ)
	}
	return n
}

// Clone returns a deep copy of the graph. The adjacency snapshot is copied
// wholesale instead of replayed edge by edge.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: make(map[string]bool, len(g.nodes)),
		adj:   make(map[string][]string, len(g.adj)),
	}
	for n := range g.nodes {
		c.nodes[n] = true
	}
	for from, succ := range g.adj {
		c.adj[from] = append([]string(nil), succ...)
	}
	return c
}

// Path is a simple path through the graph, source first.
type Path []string

// String renders the path as "a -> b -> c".
func (p Path) String() string { return strings.Join(p, " -> ") }

// Contains reports whether the path visits the given node.
func (p Path) Contains(name string) bool {
	for _, n := range p {
		if n == name {
			return true
		}
	}
	return false
}

// AllPathsOptions configures path enumeration. The zero value applies the
// documented defaults.
type AllPathsOptions struct {
	// MaxPaths caps the number of enumerated paths; default 100000.
	MaxPaths int
}

func (o AllPathsOptions) withDefaults() AllPathsOptions {
	if o.MaxPaths <= 0 {
		o.MaxPaths = 100000
	}
	return o
}

// AllPaths enumerates every simple path from src to any node in targets,
// in deterministic (lexicographically ordered DFS) order. Paths stop at
// the first target they reach: the attacker's goal is reaching a target,
// so continuing past one would double-count.
func (g *Graph) AllPaths(src string, targets []string, opts AllPathsOptions) ([]Path, error) {
	if !g.nodes[src] {
		return nil, fmt.Errorf("attackgraph: unknown source %q", src)
	}
	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		if !g.nodes[t] {
			return nil, fmt.Errorf("attackgraph: unknown target %q", t)
		}
		targetSet[t] = true
	}
	opts = opts.withDefaults()

	var paths []Path
	onPath := map[string]bool{src: true}
	cur := Path{src}
	var dfs func(node string) error
	dfs = func(node string) error {
		for _, next := range g.adj[node] {
			if onPath[next] {
				continue
			}
			cur = append(cur, next)
			if targetSet[next] {
				if len(paths) >= opts.MaxPaths {
					return fmt.Errorf("%w (cap %d)", ErrTooManyPaths, opts.MaxPaths)
				}
				p := make(Path, len(cur))
				copy(p, cur)
				paths = append(paths, p)
			} else {
				onPath[next] = true
				if err := dfs(next); err != nil {
					return err
				}
				delete(onPath, next)
			}
			cur = cur[:len(cur)-1]
		}
		return nil
	}
	if targetSet[src] {
		return []Path{{src}}, nil
	}
	if err := dfs(src); err != nil {
		return nil, err
	}
	return paths, nil
}

// EntryPoints returns the distinct first hops of the given paths (the
// nodes the attacker can strike directly), sorted. Paths of length < 2
// contribute nothing.
func EntryPoints(paths []Path) []string {
	set := make(map[string]bool)
	for _, p := range paths {
		if len(p) >= 2 {
			set[p[1]] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Centrality counts, for every non-source node, how many of the given
// paths pass through it. Hosts appearing on many attack paths are the
// chokepoints whose hardening (or monitoring) pays off most.
func Centrality(paths []Path) map[string]int {
	out := make(map[string]int)
	for _, p := range paths {
		for _, n := range p[1:] {
			out[n]++
		}
	}
	return out
}

// NodesOnPaths returns the union of non-source nodes visited by the paths,
// sorted.
func NodesOnPaths(paths []Path) []string {
	set := make(map[string]bool)
	for _, p := range paths {
		for _, n := range p[1:] {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DOT renders the graph in Graphviz dot format; output is deterministic.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph attackgraph {\n  rankdir=LR;\n")
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, from := range g.Nodes() {
		for _, to := range g.Successors(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
