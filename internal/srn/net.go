// Package srn implements stochastic reward nets (SRNs): Petri nets with
// exponentially timed and immediate transitions, enabling guard functions,
// marking-dependent firing rates, inhibitor arcs, priorities and weights
// for immediate-transition conflicts, and rate-reward structures. Nets are
// compiled into continuous-time Markov chains (internal/ctmc) by reachability
// exploration with on-the-fly elimination of vanishing markings, which is
// the same pipeline the paper drives through the SPNP tool.
package srn

import (
	"fmt"
	"sort"
)

// Place is a token container in the net. Places are created through
// Net.AddPlace and referenced by pointer in arcs, guards and rewards.
type Place struct {
	name    string
	index   int
	initial int
}

// Name returns the place name.
func (p *Place) Name() string { return p.name }

// Initial returns the number of tokens the place holds in the initial
// marking.
func (p *Place) Initial() int { return p.initial }

// Kind distinguishes timed from immediate transitions.
type Kind int

const (
	// Timed transitions fire after an exponentially distributed delay.
	Timed Kind = iota + 1
	// Immediate transitions fire in zero time and have priority over all
	// timed transitions.
	Immediate
)

// String returns a human-readable transition kind.
func (k Kind) String() string {
	switch k {
	case Timed:
		return "timed"
	case Immediate:
		return "immediate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Guard is an enabling predicate evaluated against the current marking;
// a nil Guard is treated as always true. Guards express the inter-submodel
// dependencies of the paper's Table III.
type Guard func(m Marking) bool

// RateFunc yields a marking-dependent firing rate for a timed transition.
type RateFunc func(m Marking) float64

// RewardFunc assigns a reward rate to a marking; expected steady-state
// reward is the integral the paper uses for capacity oriented availability.
type RewardFunc func(m Marking) float64

type arc struct {
	place *Place
	mult  int
}

// Transition is a timed or immediate transition. Configure it with the
// fluent With*/From/To methods at net-construction time; it must not be
// mutated after the state space has been generated.
type Transition struct {
	name     string
	kind     Kind
	rate     float64
	rateFn   RateFunc
	weight   float64
	priority int
	guard    Guard
	in       []arc
	out      []arc
	inhib    []arc
}

// Name returns the transition name.
func (t *Transition) Name() string { return t.name }

// Kind returns whether the transition is timed or immediate.
func (t *Transition) Kind() Kind { return t.kind }

// From adds input arcs (multiplicity 1) from each of the given places.
func (t *Transition) From(places ...*Place) *Transition {
	for _, p := range places {
		t.in = append(t.in, arc{place: p, mult: 1})
	}
	return t
}

// FromN adds an input arc from p with the given multiplicity.
func (t *Transition) FromN(p *Place, mult int) *Transition {
	t.in = append(t.in, arc{place: p, mult: mult})
	return t
}

// To adds output arcs (multiplicity 1) to each of the given places.
func (t *Transition) To(places ...*Place) *Transition {
	for _, p := range places {
		t.out = append(t.out, arc{place: p, mult: 1})
	}
	return t
}

// ToN adds an output arc to p with the given multiplicity.
func (t *Transition) ToN(p *Place, mult int) *Transition {
	t.out = append(t.out, arc{place: p, mult: mult})
	return t
}

// Inhibit adds an inhibitor arc: the transition is disabled while p holds
// at least mult tokens.
func (t *Transition) Inhibit(p *Place, mult int) *Transition {
	t.inhib = append(t.inhib, arc{place: p, mult: mult})
	return t
}

// WithGuard attaches an enabling guard.
func (t *Transition) WithGuard(g Guard) *Transition {
	t.guard = g
	return t
}

// WithRateFunc makes a timed transition's rate marking-dependent, as the
// paper requires for the upper-layer tier transitions (rate = lambda * #up).
func (t *Transition) WithRateFunc(fn RateFunc) *Transition {
	t.rateFn = fn
	return t
}

// WithWeight sets the conflict-resolution weight of an immediate
// transition (default 1). When several immediate transitions of equal
// priority are enabled, each fires with probability proportional to its
// weight.
func (t *Transition) WithWeight(w float64) *Transition {
	t.weight = w
	return t
}

// WithPriority sets the priority of an immediate transition (default 0).
// Only the highest-priority enabled immediates compete to fire.
func (t *Transition) WithPriority(p int) *Transition {
	t.priority = p
	return t
}

// Net is a stochastic reward net under construction.
type Net struct {
	name        string
	places      []*Place
	transitions []*Transition
	byPlaceName map[string]*Place
	byTransName map[string]*Transition
}

// New returns an empty net with the given name.
func New(name string) *Net {
	return &Net{
		name:        name,
		byPlaceName: make(map[string]*Place),
		byTransName: make(map[string]*Transition),
	}
}

// Name returns the net name.
func (n *Net) Name() string { return n.name }

// AddPlace creates a place with the given initial token count. Place names
// must be unique within the net; AddPlace panics on duplicates because the
// model builders construct nets from static descriptions.
func (n *Net) AddPlace(name string, initial int) *Place {
	if _, dup := n.byPlaceName[name]; dup {
		panic(fmt.Sprintf("srn: duplicate place %q", name))
	}
	if initial < 0 {
		panic(fmt.Sprintf("srn: place %q has negative initial marking", name))
	}
	p := &Place{name: name, index: len(n.places), initial: initial}
	n.places = append(n.places, p)
	n.byPlaceName[name] = p
	return p
}

// AddTimedTransition creates an exponentially timed transition with the
// given (constant) rate. Use WithRateFunc for marking-dependent rates; the
// constant rate is then ignored.
func (n *Net) AddTimedTransition(name string, rate float64) *Transition {
	t := n.addTransition(name, Timed)
	t.rate = rate
	return t
}

// AddImmediateTransition creates an immediate transition with weight 1 and
// priority 0.
func (n *Net) AddImmediateTransition(name string) *Transition {
	t := n.addTransition(name, Immediate)
	t.weight = 1
	return t
}

func (n *Net) addTransition(name string, k Kind) *Transition {
	if _, dup := n.byTransName[name]; dup {
		panic(fmt.Sprintf("srn: duplicate transition %q", name))
	}
	t := &Transition{name: name, kind: k}
	n.transitions = append(n.transitions, t)
	n.byTransName[name] = t
	return t
}

// Place returns the place with the given name, or nil if absent.
func (n *Net) Place(name string) *Place { return n.byPlaceName[name] }

// TransitionByName returns the transition with the given name, or nil.
func (n *Net) TransitionByName(name string) *Transition { return n.byTransName[name] }

// Places returns the places in creation order.
func (n *Net) Places() []*Place {
	out := make([]*Place, len(n.places))
	copy(out, n.places)
	return out
}

// Transitions returns the transitions in creation order.
func (n *Net) Transitions() []*Transition {
	out := make([]*Transition, len(n.transitions))
	copy(out, n.transitions)
	return out
}

// InitialMarking returns the net's initial marking.
func (n *Net) InitialMarking() Marking {
	m := make(Marking, len(n.places))
	for _, p := range n.places {
		m[p.index] = p.initial
	}
	return m
}

// Validate checks structural well-formedness: every transition has at least
// one arc, arc multiplicities are positive, timed transitions have a
// positive constant rate or a rate function, and immediate transitions have
// positive weight.
func (n *Net) Validate() error {
	if len(n.places) == 0 {
		return fmt.Errorf("srn %q: net has no places", n.name)
	}
	for _, t := range n.transitions {
		if len(t.in)+len(t.out) == 0 {
			return fmt.Errorf("srn %q: transition %q has no arcs", n.name, t.name)
		}
		for _, a := range append(append(append([]arc{}, t.in...), t.out...), t.inhib...) {
			if a.mult <= 0 {
				return fmt.Errorf("srn %q: transition %q has non-positive arc multiplicity on place %q", n.name, t.name, a.place.name)
			}
		}
		switch t.kind {
		case Timed:
			if t.rateFn == nil && t.rate <= 0 {
				return fmt.Errorf("srn %q: timed transition %q has no positive rate", n.name, t.name)
			}
		case Immediate:
			if t.weight <= 0 {
				return fmt.Errorf("srn %q: immediate transition %q has non-positive weight", n.name, t.name)
			}
		default:
			return fmt.Errorf("srn %q: transition %q has invalid kind %v", n.name, t.name, t.kind)
		}
	}
	return nil
}

// enabled reports whether t may fire in marking m.
func (n *Net) enabled(t *Transition, m Marking) bool {
	for _, a := range t.in {
		if m[a.place.index] < a.mult {
			return false
		}
	}
	for _, a := range t.inhib {
		if m[a.place.index] >= a.mult {
			return false
		}
	}
	if t.guard != nil && !t.guard(m) {
		return false
	}
	return true
}

// fire returns the marking reached by firing t in m. It assumes t is
// enabled.
func (n *Net) fire(t *Transition, m Marking) Marking {
	next := make(Marking, len(m))
	copy(next, m)
	for _, a := range t.in {
		next[a.place.index] -= a.mult
	}
	for _, a := range t.out {
		next[a.place.index] += a.mult
	}
	return next
}

// rateOf returns the firing rate of a timed transition in marking m.
func (t *Transition) rateOf(m Marking) float64 {
	if t.rateFn != nil {
		return t.rateFn(m)
	}
	return t.rate
}

// enabledImmediates returns the highest-priority enabled immediate
// transitions in m, or nil when none are enabled (m is tangible).
func (n *Net) enabledImmediates(m Marking) []*Transition {
	var best []*Transition
	bestPrio := 0
	for _, t := range n.transitions {
		if t.kind != Immediate || !n.enabled(t, m) {
			continue
		}
		switch {
		case best == nil || t.priority > bestPrio:
			best = []*Transition{t}
			bestPrio = t.priority
		case t.priority == bestPrio:
			best = append(best, t)
		}
	}
	return best
}

// enabledTimed returns the timed transitions enabled in m.
func (n *Net) enabledTimed(m Marking) []*Transition {
	var out []*Transition
	for _, t := range n.transitions {
		if t.kind == Timed && n.enabled(t, m) {
			out = append(out, t)
		}
	}
	return out
}

// Weight returns the conflict-resolution weight of an immediate
// transition (1 unless set otherwise).
func (t *Transition) Weight() float64 { return t.weight }

// Priority returns the priority of an immediate transition.
func (t *Transition) Priority() int { return t.priority }

// Enabled reports whether t may fire in marking m (exported for
// simulators and diagnostics).
func (n *Net) Enabled(t *Transition, m Marking) bool { return n.enabled(t, m) }

// TimedRate returns the firing rate of a timed transition in marking m
// and whether the transition is enabled there.
func (n *Net) TimedRate(t *Transition, m Marking) (float64, bool) {
	if t.kind != Timed || !n.enabled(t, m) {
		return 0, false
	}
	return t.rateOf(m), true
}

// EnabledImmediates returns the highest-priority enabled immediate
// transitions of m (exported for simulators).
func (n *Net) EnabledImmediates(m Marking) []*Transition { return n.enabledImmediates(m) }

// Fire returns the marking reached by firing t in m. Firing a disabled
// transition is a programming error and panics.
func (n *Net) Fire(t *Transition, m Marking) Marking {
	if !n.enabled(t, m) {
		panic(fmt.Sprintf("srn: firing disabled transition %q in %s", t.name, n.MarkingString(m)))
	}
	return n.fire(t, m)
}

// MarkingString renders a marking as "Place:count" pairs of the non-empty
// places, sorted by place name; used in diagnostics and tests.
func (n *Net) MarkingString(m Marking) string {
	type pc struct {
		name  string
		count int
	}
	var parts []pc
	for _, p := range n.places {
		if m[p.index] > 0 {
			parts = append(parts, pc{name: p.name, count: m[p.index]})
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].name < parts[j].name })
	s := "{"
	for i, q := range parts {
		if i > 0 {
			s += " "
		}
		if q.count == 1 {
			s += q.name
		} else {
			s += fmt.Sprintf("%s:%d", q.name, q.count)
		}
	}
	return s + "}"
}
