package srn

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the net structure in Graphviz dot format: places as circles
// labelled with their initial marking, timed transitions as hollow boxes,
// immediate transitions as filled bars, inhibitor arcs with circle
// arrowheads. The output is deterministic to keep documentation diffs and
// golden tests stable.
func (n *Net) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", n.name)
	b.WriteString("  rankdir=LR;\n")

	places := append([]*Place(nil), n.places...)
	sort.Slice(places, func(i, j int) bool { return places[i].name < places[j].name })
	for _, p := range places {
		label := p.name
		if p.initial > 0 {
			label = fmt.Sprintf("%s (%d)", p.name, p.initial)
		}
		fmt.Fprintf(&b, "  %q [shape=circle, label=%q];\n", "p_"+p.name, label)
	}

	trans := append([]*Transition(nil), n.transitions...)
	sort.Slice(trans, func(i, j int) bool { return trans[i].name < trans[j].name })
	for _, t := range trans {
		shape := "box"
		style := ""
		if t.kind == Immediate {
			style = ", style=filled, fillcolor=black, fontcolor=white, height=0.1"
		}
		fmt.Fprintf(&b, "  %q [shape=%s%s, label=%q];\n", "t_"+t.name, shape, style, t.name)
	}
	for _, t := range trans {
		for _, a := range t.in {
			fmt.Fprintf(&b, "  %q -> %q%s;\n", "p_"+a.place.name, "t_"+t.name, multAttr(a.mult))
		}
		for _, a := range t.out {
			fmt.Fprintf(&b, "  %q -> %q%s;\n", "t_"+t.name, "p_"+a.place.name, multAttr(a.mult))
		}
		for _, a := range t.inhib {
			fmt.Fprintf(&b, "  %q -> %q [arrowhead=odot%s];\n", "p_"+a.place.name, "t_"+t.name, multLabel(a.mult))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func multAttr(mult int) string {
	if mult == 1 {
		return ""
	}
	return fmt.Sprintf(" [label=\"%d\"]", mult)
}

func multLabel(mult int) string {
	if mult == 1 {
		return ""
	}
	return fmt.Sprintf(", label=\"%d\"", mult)
}
