package srn

import (
	"errors"
	"fmt"

	"redpatch/internal/ctmc"
	"redpatch/internal/mathx"
)

// ErrVanishingLoop reports a cycle of immediate transitions: the net can
// fire immediates forever without time passing, so no CTMC exists.
var ErrVanishingLoop = errors.New("srn: cycle of immediate transitions (vanishing loop)")

// ErrStateSpaceExceeded reports that reachability exploration hit the
// configured marking cap, which usually indicates an unbounded net.
var ErrStateSpaceExceeded = errors.New("srn: state space exceeds configured maximum")

// GenerateOptions configures state-space generation. The zero value applies
// the defaults documented on the fields.
type GenerateOptions struct {
	// MaxMarkings caps the total number of explored markings (tangible and
	// vanishing); default 1 << 20.
	MaxMarkings int
	// MaxVanishingDepth caps the length of any chain of immediate firings
	// between two tangible markings; default 4096. A hit usually means a
	// vanishing loop reachable only through repeated token growth.
	MaxVanishingDepth int
}

func (o GenerateOptions) withDefaults() GenerateOptions {
	if o.MaxMarkings <= 0 {
		o.MaxMarkings = 1 << 20
	}
	if o.MaxVanishingDepth <= 0 {
		o.MaxVanishingDepth = 4096
	}
	return o
}

// StateSpace is the result of compiling a net: the set of tangible
// markings, the underlying CTMC over those markings, and bookkeeping about
// eliminated vanishing markings.
type StateSpace struct {
	net       *Net
	markings  []Marking // tangible markings, index = CTMC state
	index     map[string]int
	chain     *ctmc.Chain
	vanishing int             // number of distinct vanishing markings eliminated
	initDist  map[int]float64 // tangible distribution of the initial marking
}

// Generate explores the reachability graph from the net's initial marking,
// eliminates vanishing markings on the fly, and assembles the tangible
// CTMC. The initial marking itself may be vanishing; its tangible successors
// seed the exploration.
func (n *Net) Generate(opts GenerateOptions) (*StateSpace, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	ss := &StateSpace{
		net:   n,
		index: make(map[string]int),
	}
	vanishingSeen := make(map[string]bool)

	// resolve maps an arbitrary marking to a distribution over tangible
	// markings by following immediate firings. onStack detects loops.
	var resolve func(m Marking, prob float64, onStack map[string]bool, depth int, acc map[string]tangibleMass) error
	type queued struct{ state int }
	var queue []queued

	intern := func(m Marking) (int, bool, error) {
		k := m.key()
		if id, ok := ss.index[k]; ok {
			return id, false, nil
		}
		if len(ss.index)+len(vanishingSeen) >= opts.MaxMarkings {
			return 0, false, fmt.Errorf("%w (%d markings)", ErrStateSpaceExceeded, opts.MaxMarkings)
		}
		id := len(ss.markings)
		ss.index[k] = id
		ss.markings = append(ss.markings, m)
		return id, true, nil
	}

	resolve = func(m Marking, prob float64, onStack map[string]bool, depth int, acc map[string]tangibleMass) error {
		if depth > opts.MaxVanishingDepth {
			return fmt.Errorf("%w: immediate chain longer than %d", ErrVanishingLoop, opts.MaxVanishingDepth)
		}
		imm := n.enabledImmediates(m)
		if len(imm) == 0 {
			k := m.key()
			tm := acc[k]
			tm.marking = m
			tm.prob += prob
			acc[k] = tm
			return nil
		}
		k := m.key()
		if onStack[k] {
			return fmt.Errorf("%w at marking %s", ErrVanishingLoop, n.MarkingString(m))
		}
		if !vanishingSeen[k] {
			vanishingSeen[k] = true
			if len(ss.index)+len(vanishingSeen) > opts.MaxMarkings {
				return fmt.Errorf("%w (%d markings)", ErrStateSpaceExceeded, opts.MaxMarkings)
			}
		}
		onStack[k] = true
		defer delete(onStack, k)

		var totalWeight float64
		for _, t := range imm {
			totalWeight += t.weight
		}
		for _, t := range imm {
			next := n.fire(t, m)
			if err := resolve(next, prob*t.weight/totalWeight, onStack, depth+1, acc); err != nil {
				return err
			}
		}
		return nil
	}

	// Seed with the tangible closure of the initial marking, keeping its
	// probability split for transient analysis.
	ss.initDist = make(map[int]float64)
	initAcc := make(map[string]tangibleMass)
	if err := resolve(n.InitialMarking(), 1, make(map[string]bool), 0, initAcc); err != nil {
		return nil, err
	}
	for _, tm := range initAcc {
		id, fresh, err := intern(tm.marking)
		if err != nil {
			return nil, err
		}
		ss.initDist[id] += tm.prob
		if fresh {
			queue = append(queue, queued{state: id})
		}
	}

	// Explore tangible markings breadth-first; record rates lazily and
	// assemble the chain once the full state count is known.
	type ratedEdge struct {
		from, to int
		rate     float64
	}
	var edges []ratedEdge

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		m := ss.markings[cur.state]
		for _, t := range n.enabledTimed(m) {
			rate := t.rateOf(m)
			if rate < 0 {
				return nil, fmt.Errorf("srn: transition %q has negative rate %v in marking %s", t.name, rate, n.MarkingString(m))
			}
			if rate == 0 {
				continue
			}
			acc := make(map[string]tangibleMass)
			if err := resolve(n.fire(t, m), 1, make(map[string]bool), 0, acc); err != nil {
				return nil, err
			}
			for _, tm := range acc {
				id, fresh, err := intern(tm.marking)
				if err != nil {
					return nil, err
				}
				if fresh {
					queue = append(queue, queued{state: id})
				}
				if id != cur.state {
					edges = append(edges, ratedEdge{from: cur.state, to: id, rate: rate * tm.prob})
				}
				// A timed firing that returns to the same tangible marking
				// is a stochastic no-op; dropping it preserves the CTMC.
			}
		}
	}

	ss.vanishing = len(vanishingSeen)
	ss.chain = ctmc.New(len(ss.markings))
	for _, e := range edges {
		if err := ss.chain.AddRate(e.from, e.to, e.rate); err != nil {
			return nil, fmt.Errorf("srn: assembling CTMC: %w", err)
		}
	}
	return ss, nil
}

type tangibleMass struct {
	marking Marking
	prob    float64
}

// NumTangible returns the number of tangible markings (CTMC states).
func (s *StateSpace) NumTangible() int { return len(s.markings) }

// NumVanishing returns the number of distinct vanishing markings that were
// eliminated during generation.
func (s *StateSpace) NumVanishing() int { return s.vanishing }

// Chain exposes the underlying CTMC.
func (s *StateSpace) Chain() *ctmc.Chain { return s.chain }

// Markings returns the tangible markings; index corresponds to CTMC state.
func (s *StateSpace) Markings() []Marking {
	out := make([]Marking, len(s.markings))
	for i, m := range s.markings {
		out[i] = m.clone()
	}
	return out
}

// StateOf returns the CTMC state index of the given marking and whether the
// marking is a known tangible state.
func (s *StateSpace) StateOf(m Marking) (int, bool) {
	id, ok := s.index[m.key()]
	return id, ok
}

// SteadyState solves the underlying CTMC for its stationary distribution.
func (s *StateSpace) SteadyState(opts ctmc.SolveOptions) ([]float64, error) {
	return s.chain.SteadyState(opts)
}

// InitialDistribution returns the probability distribution over tangible
// states induced by the (possibly vanishing) initial marking.
func (s *StateSpace) InitialDistribution() []float64 {
	p0 := make([]float64, len(s.markings))
	for id, prob := range s.initDist {
		p0[id] = prob
	}
	return p0
}

// Transient returns the state distribution at time t, starting from the
// initial marking.
func (s *StateSpace) Transient(t float64) ([]float64, error) {
	return s.chain.Transient(s.InitialDistribution(), t)
}

// TransientReward returns the expected reward rate at time t, starting
// from the initial marking — e.g. point availability t hours after a
// patch round begins.
func (s *StateSpace) TransientReward(reward RewardFunc, t float64) (float64, error) {
	pt, err := s.Transient(t)
	if err != nil {
		return 0, err
	}
	return s.ExpectedReward(pt, reward)
}

// IntervalReward returns the time-averaged expected reward over [0, t]
// starting from the initial marking — e.g. interval availability over a
// maintenance window.
func (s *StateSpace) IntervalReward(reward RewardFunc, t float64) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("srn: interval reward requires positive t, have %v", t)
	}
	l, err := s.chain.AccumulatedProbability(s.InitialDistribution(), t)
	if err != nil {
		return 0, err
	}
	acc, err := s.ExpectedReward(l, reward)
	if err != nil {
		return 0, err
	}
	return acc / t, nil
}

// ExpectedReward computes the expected steady-state reward rate of the
// given reward function under the distribution pi — the SPNP operation the
// paper uses for capacity oriented availability.
func (s *StateSpace) ExpectedReward(pi []float64, reward RewardFunc) (float64, error) {
	if len(pi) != len(s.markings) {
		return 0, fmt.Errorf("srn: distribution has %d entries, want %d", len(pi), len(s.markings))
	}
	terms := make([]float64, len(pi))
	for i, m := range s.markings {
		terms[i] = pi[i] * reward(m)
	}
	return mathx.KahanSum(terms), nil
}

// Probability sums the stationary probability of the markings satisfying
// the predicate; used for measures such as P(service down due to patch).
func (s *StateSpace) Probability(pi []float64, pred func(m Marking) bool) (float64, error) {
	if len(pi) != len(s.markings) {
		return 0, fmt.Errorf("srn: distribution has %d entries, want %d", len(pi), len(s.markings))
	}
	var terms []float64
	for i, m := range s.markings {
		if pred(m) {
			terms = append(terms, pi[i])
		}
	}
	return mathx.KahanSum(terms), nil
}

// Throughput returns the steady-state throughput of the named timed
// transition: sum over tangible markings of pi(m) * rate(m) where the
// transition is enabled.
func (s *StateSpace) Throughput(pi []float64, name string) (float64, error) {
	t := s.net.TransitionByName(name)
	if t == nil {
		return 0, fmt.Errorf("srn: unknown transition %q", name)
	}
	if t.kind != Timed {
		return 0, fmt.Errorf("srn: transition %q is immediate; throughput is defined for timed transitions", name)
	}
	if len(pi) != len(s.markings) {
		return 0, fmt.Errorf("srn: distribution has %d entries, want %d", len(pi), len(s.markings))
	}
	var terms []float64
	for i, m := range s.markings {
		if s.net.enabled(t, m) {
			terms = append(terms, pi[i]*t.rateOf(m))
		}
	}
	return mathx.KahanSum(terms), nil
}

// MeanTokens returns the expected steady-state token count of place p.
func (s *StateSpace) MeanTokens(pi []float64, p *Place) (float64, error) {
	return s.ExpectedReward(pi, func(m Marking) float64 { return float64(m.Tokens(p)) })
}

// ExitFrequency returns the steady-state frequency (events per unit
// time) of leaving the set of markings satisfying pred: the sum over
// member states i and non-member states j of pi_i * q_ij. For an
// up-state predicate this is the service-failure frequency, the quantity
// frequency-based two-state aggregation preserves.
func (s *StateSpace) ExitFrequency(pi []float64, pred func(m Marking) bool) (float64, error) {
	if len(pi) != len(s.markings) {
		return 0, fmt.Errorf("srn: distribution has %d entries, want %d", len(pi), len(s.markings))
	}
	member := make([]bool, len(s.markings))
	for i, m := range s.markings {
		member[i] = pred(m)
	}
	gen := s.chain.Generator()
	var terms []float64
	for i := range s.markings {
		if !member[i] {
			continue
		}
		weight := pi[i]
		gen.Row(i, func(j int, rate float64) {
			if j != i && !member[j] && rate > 0 {
				terms = append(terms, weight*rate)
			}
		})
	}
	return mathx.KahanSum(terms), nil
}
