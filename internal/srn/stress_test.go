package srn

import (
	"testing"

	"redpatch/internal/ctmc"
	"redpatch/internal/mathx"
)

// TestLargeStateSpace generates a four-tier network with nine servers per
// tier — a 10000-state CTMC — and checks that reachability, vanishing
// elimination and the iterative steady-state solver stay exact against
// the closed-form product of binomials.
func TestLargeStateSpace(t *testing.T) {
	const (
		tiers   = 4
		n       = 9
		lambda  = 0.002
		mu      = 1.5
		wantDim = (n + 1) * (n + 1) * (n + 1) * (n + 1)
	)
	net := New("big")
	var ups []*Place
	for i := 0; i < tiers; i++ {
		up := net.AddPlace("up"+string(rune('0'+i)), n)
		down := net.AddPlace("down"+string(rune('0'+i)), 0)
		net.AddTimedTransition("Td"+string(rune('0'+i)), 0).From(up).To(down).
			WithRateFunc(func(m Marking) float64 { return lambda * float64(m.Tokens(up)) })
		net.AddTimedTransition("Tu"+string(rune('0'+i)), 0).From(down).To(up).
			WithRateFunc(func(m Marking) float64 { return mu * float64(m.Tokens(down)) })
		ups = append(ups, up)
	}
	ss, err := net.Generate(GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumTangible() != wantDim {
		t.Fatalf("tangible = %d, want %d", ss.NumTangible(), wantDim)
	}
	pi, err := ss.SteadyState(ctmc.SolveOptions{Method: ctmc.GaussSeidel, Tolerance: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	// P(all up in tier 0) = a^n with a = mu/(lambda+mu).
	a := mu / (lambda + mu)
	want := 1.0
	for k := 0; k < n; k++ {
		want *= a
	}
	got, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(ups[0]) == n })
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(got, want, 1e-6) {
		t.Errorf("P(tier 0 all up) = %v, want %v", got, want)
	}
	// Expected up-count across tiers: 4 * n * a.
	var mean float64
	for _, up := range ups {
		up := up
		m, err := ss.MeanTokens(pi, up)
		if err != nil {
			t.Fatal(err)
		}
		mean += m
	}
	if !mathx.AlmostEqual(mean, tiers*n*a, 1e-6) {
		t.Errorf("mean up = %v, want %v", mean, tiers*n*a)
	}
}
