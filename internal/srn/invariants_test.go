package srn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redpatch/internal/mathx"
)

func TestIncidenceMatrix(t *testing.T) {
	n := New("inc")
	a := n.AddPlace("a", 1)
	b := n.AddPlace("b", 0)
	n.AddTimedTransition("T", 1).FromN(a, 2).ToN(b, 3)
	c := n.IncidenceMatrix()
	if c[a.index][0] != -2 || c[b.index][0] != 3 {
		t.Errorf("incidence = %v, want a:-2 b:+3", c)
	}
}

func TestPlaceInvariantsUpDown(t *testing.T) {
	// up <-> down conserves one token: a single invariant (1, 1).
	n := New("updown")
	up := n.AddPlace("up", 1)
	down := n.AddPlace("down", 0)
	n.AddTimedTransition("Tf", 1).From(up).To(down)
	n.AddTimedTransition("Tr", 1).From(down).To(up)
	inv := n.PlaceInvariants()
	if len(inv) != 1 {
		t.Fatalf("invariants = %d, want 1", len(inv))
	}
	// The invariant assigns equal weight to both places.
	if !mathx.AlmostEqual(inv[0][0], inv[0][1], 1e-12) {
		t.Errorf("invariant = %v, want equal weights", inv[0])
	}
}

func TestPlaceInvariantsSourceSink(t *testing.T) {
	// A token source has no conservation law involving the fed place.
	n := New("source")
	clock := n.AddPlace("clock", 1)
	pool := n.AddPlace("pool", 0)
	n.AddTimedTransition("Tgen", 1).From(clock).To(clock).To(pool)
	inv := n.PlaceInvariants()
	// The clock place is conserved (self-loop); the pool is not.
	if len(inv) != 1 {
		t.Fatalf("invariants = %v, want exactly the clock conservation", inv)
	}
	if inv[0][pool.index] != 0 {
		t.Errorf("pool must not appear in any invariant, got %v", inv[0])
	}
	if inv[0][clock.index] == 0 {
		t.Errorf("clock conservation missing: %v", inv[0])
	}
}

// TestInvariantsHoldOnReachableMarkings is the fundamental property: for
// any net, every reachable marking satisfies y·M = y·M0 for every
// computed invariant.
func TestInvariantsHoldOnReachableMarkings(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New("rand")
		nPlaces := 2 + rng.Intn(4)
		places := make([]*Place, nPlaces)
		for i := range places {
			places[i] = n.AddPlace("p"+string(rune('0'+i)), rng.Intn(3))
		}
		nTrans := 1 + rng.Intn(5)
		for i := 0; i < nTrans; i++ {
			tr := n.AddTimedTransition("t"+string(rune('0'+i)), 0.5+rng.Float64())
			tr.From(places[rng.Intn(nPlaces)]).To(places[rng.Intn(nPlaces)])
		}
		ss, err := n.Generate(GenerateOptions{MaxMarkings: 5000})
		if err != nil {
			return true // unbounded or degenerate: nothing to check
		}
		return n.CheckConservation(ss) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
