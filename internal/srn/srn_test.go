package srn

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"redpatch/internal/ctmc"
	"redpatch/internal/mathx"
)

// upDownNet builds the simplest availability SRN: one token cycling between
// up and down through two timed transitions.
func upDownNet(t *testing.T, lambda, mu float64) (*Net, *Place, *Place) {
	t.Helper()
	n := New("updown")
	up := n.AddPlace("Pup", 1)
	down := n.AddPlace("Pdown", 0)
	n.AddTimedTransition("Tfail", lambda).From(up).To(down)
	n.AddTimedTransition("Trepair", mu).From(down).To(up)
	return n, up, down
}

func solve(t *testing.T, n *Net) (*StateSpace, []float64) {
	t.Helper()
	ss, err := n.Generate(GenerateOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	pi, err := ss.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	return ss, pi
}

func TestUpDownSteadyState(t *testing.T) {
	const lambda, mu = 0.2, 1.6
	n, up, _ := upDownNet(t, lambda, mu)
	ss, pi := solve(t, n)
	if ss.NumTangible() != 2 {
		t.Fatalf("NumTangible = %d, want 2", ss.NumTangible())
	}
	pUp, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(up) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lambda + mu)
	if !mathx.AlmostEqual(pUp, want, 1e-10) {
		t.Errorf("P(up) = %v, want %v", pUp, want)
	}
}

func TestImmediateElimination(t *testing.T) {
	// up --timed--> staging --immediate--> down --timed--> up.
	// The staging marking must be eliminated: 2 tangible states.
	n := New("elim")
	up := n.AddPlace("up", 1)
	staging := n.AddPlace("staging", 0)
	down := n.AddPlace("down", 0)
	n.AddTimedTransition("Tfail", 1).From(up).To(staging)
	n.AddImmediateTransition("Tmove").From(staging).To(down)
	n.AddTimedTransition("Trepair", 2).From(down).To(up)

	ss, pi := solve(t, n)
	if ss.NumTangible() != 2 {
		t.Fatalf("NumTangible = %d, want 2", ss.NumTangible())
	}
	if ss.NumVanishing() != 1 {
		t.Errorf("NumVanishing = %d, want 1", ss.NumVanishing())
	}
	pUp, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(up) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(pUp, 2.0/3.0, 1e-10) {
		t.Errorf("P(up) = %v, want 2/3", pUp)
	}
}

func TestImmediateWeights(t *testing.T) {
	// A vanishing marking splits 1:3 between two tangible branches; each
	// branch returns at the same rate, so steady-state occupancy of the
	// branches must be 0.25 : 0.75 of the total branch mass.
	n := New("weights")
	src := n.AddPlace("src", 1)
	mid := n.AddPlace("mid", 0)
	a := n.AddPlace("a", 0)
	bp := n.AddPlace("b", 0)
	n.AddTimedTransition("Tgo", 1).From(src).To(mid)
	n.AddImmediateTransition("TtoA").From(mid).To(a).WithWeight(1)
	n.AddImmediateTransition("TtoB").From(mid).To(bp).WithWeight(3)
	n.AddTimedTransition("TbackA", 1).From(a).To(src)
	n.AddTimedTransition("TbackB", 1).From(bp).To(src)

	ss, pi := solve(t, n)
	pA, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(a) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	pB, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(bp) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(pB/pA, 3, 1e-9) {
		t.Errorf("P(b)/P(a) = %v, want 3", pB/pA)
	}
}

func TestImmediatePriorities(t *testing.T) {
	// The high-priority immediate must shadow the low-priority one.
	n := New("prio")
	src := n.AddPlace("src", 1)
	mid := n.AddPlace("mid", 0)
	hi := n.AddPlace("hi", 0)
	lo := n.AddPlace("lo", 0)
	n.AddTimedTransition("Tgo", 1).From(src).To(mid)
	n.AddImmediateTransition("Thi").From(mid).To(hi).WithPriority(2)
	n.AddImmediateTransition("Tlo").From(mid).To(lo).WithPriority(1)
	n.AddTimedTransition("TbackHi", 1).From(hi).To(src)
	n.AddTimedTransition("TbackLo", 1).From(lo).To(src)

	ss, pi := solve(t, n)
	pLo, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(lo) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if pLo != 0 {
		t.Errorf("P(lo) = %v, want 0 (shadowed by priority)", pLo)
	}
}

func TestGuardDisablesTransition(t *testing.T) {
	n := New("guard")
	up := n.AddPlace("up", 1)
	down := n.AddPlace("down", 0)
	flag := n.AddPlace("flag", 0) // never marked
	n.AddTimedTransition("Tfail", 1).From(up).To(down).
		WithGuard(func(m Marking) bool { return m.Tokens(flag) == 1 })
	n.AddTimedTransition("Trepair", 1).From(down).To(up)

	ss, _ := solve(t, n)
	if ss.NumTangible() != 1 {
		t.Errorf("NumTangible = %d, want 1 (guard blocks the only move)", ss.NumTangible())
	}
}

func TestInhibitorArc(t *testing.T) {
	// Token generator inhibited at 3 tokens: bounded state space {0,1,2,3}.
	n := New("inhib")
	pool := n.AddPlace("pool", 0)
	clock := n.AddPlace("clock", 1)
	n.AddTimedTransition("Tgen", 1).From(clock).To(clock).To(pool).Inhibit(pool, 3)
	n.AddTimedTransition("Tdrain", 2).From(pool)

	ss, pi := solve(t, n)
	if ss.NumTangible() != 4 {
		t.Fatalf("NumTangible = %d, want 4", ss.NumTangible())
	}
	p3, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(pool) == 3 })
	if err != nil {
		t.Fatal(err)
	}
	// Birth-death with birth 1 (below 3), death 2: pi_i ~ (1/2)^i.
	want := math.Pow(0.5, 3) / (1 + 0.5 + 0.25 + 0.125)
	if !mathx.AlmostEqual(p3, want, 1e-10) {
		t.Errorf("P(pool=3) = %v, want %v", p3, want)
	}
}

func TestVanishingLoopDetected(t *testing.T) {
	n := New("loop")
	a := n.AddPlace("a", 1)
	b := n.AddPlace("b", 0)
	n.AddImmediateTransition("Tab").From(a).To(b)
	n.AddImmediateTransition("Tba").From(b).To(a)
	_, err := n.Generate(GenerateOptions{})
	if !errors.Is(err, ErrVanishingLoop) {
		t.Errorf("expected ErrVanishingLoop, got %v", err)
	}
}

func TestUnboundedNetCapped(t *testing.T) {
	n := New("unbounded")
	clock := n.AddPlace("clock", 1)
	pool := n.AddPlace("pool", 0)
	n.AddTimedTransition("Tgen", 1).From(clock).To(clock).To(pool)
	_, err := n.Generate(GenerateOptions{MaxMarkings: 100})
	if !errors.Is(err, ErrStateSpaceExceeded) {
		t.Errorf("expected ErrStateSpaceExceeded, got %v", err)
	}
}

func TestMarkingDependentRates(t *testing.T) {
	// Two independent servers patching at rate lambda each (rate = lambda *
	// #up) and recovering at mu each: occupancy is Binomial(2, pUp).
	const lambda, mu = 0.05, 1.5
	n := New("tier")
	up := n.AddPlace("up", 2)
	down := n.AddPlace("down", 0)
	n.AddTimedTransition("Tpatch", 0).From(up).To(down).
		WithRateFunc(func(m Marking) float64 { return lambda * float64(m.Tokens(up)) })
	n.AddTimedTransition("Trecover", 0).From(down).To(up).
		WithRateFunc(func(m Marking) float64 { return mu * float64(m.Tokens(down)) })

	ss, pi := solve(t, n)
	if ss.NumTangible() != 3 {
		t.Fatalf("NumTangible = %d, want 3", ss.NumTangible())
	}
	pUp := mu / (lambda + mu)
	for k := 0; k <= 2; k++ {
		got, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(up) == k })
		if err != nil {
			t.Fatal(err)
		}
		want := mathx.Binomial(2, k) * math.Pow(pUp, float64(k)) * math.Pow(1-pUp, float64(2-k))
		if !mathx.AlmostEqual(got, want, 1e-9) {
			t.Errorf("P(#up=%d) = %v, want %v", k, got, want)
		}
	}
}

func TestExpectedRewardAndMeanTokens(t *testing.T) {
	const lambda, mu = 0.5, 1.5
	n, up, _ := upDownNet(t, lambda, mu)
	ss, pi := solve(t, n)
	coa, err := ss.ExpectedReward(pi, func(m Marking) float64 { return float64(m.Tokens(up)) })
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lambda + mu)
	if !mathx.AlmostEqual(coa, want, 1e-10) {
		t.Errorf("ExpectedReward = %v, want %v", coa, want)
	}
	mean, err := ss.MeanTokens(pi, up)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(mean, want, 1e-10) {
		t.Errorf("MeanTokens = %v, want %v", mean, want)
	}
}

func TestThroughput(t *testing.T) {
	const lambda, mu = 0.5, 1.5
	n, _, _ := upDownNet(t, lambda, mu)
	ss, pi := solve(t, n)
	thr, err := ss.Throughput(pi, "Tfail")
	if err != nil {
		t.Fatal(err)
	}
	// In steady state, failure throughput = P(up) * lambda.
	want := mu / (lambda + mu) * lambda
	if !mathx.AlmostEqual(thr, want, 1e-10) {
		t.Errorf("Throughput(Tfail) = %v, want %v", thr, want)
	}
	if _, err := ss.Throughput(pi, "nosuch"); err == nil {
		t.Error("Throughput of unknown transition should fail")
	}
}

func TestStateOf(t *testing.T) {
	n, up, down := upDownNet(t, 1, 1)
	ss, _ := solve(t, n)
	m := n.InitialMarking()
	if _, ok := ss.StateOf(m); !ok {
		t.Error("initial marking should be a tangible state")
	}
	m[up.index] = 0
	m[down.index] = 1
	if _, ok := ss.StateOf(m); !ok {
		t.Error("down marking should be a tangible state")
	}
	m[down.index] = 5
	if _, ok := ss.StateOf(m); ok {
		t.Error("unreachable marking should not be a state")
	}
}

func TestVanishingInitialMarking(t *testing.T) {
	// The initial marking immediately fires into the tangible chain.
	n := New("vanishinit")
	boot := n.AddPlace("boot", 1)
	up := n.AddPlace("up", 0)
	down := n.AddPlace("down", 0)
	n.AddImmediateTransition("Tboot").From(boot).To(up)
	n.AddTimedTransition("Tfail", 1).From(up).To(down)
	n.AddTimedTransition("Trepair", 1).From(down).To(up)

	ss, pi := solve(t, n)
	if ss.NumTangible() != 2 {
		t.Fatalf("NumTangible = %d, want 2", ss.NumTangible())
	}
	pUp, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(up) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(pUp, 0.5, 1e-10) {
		t.Errorf("P(up) = %v, want 0.5", pUp)
	}
}

func TestExitFrequency(t *testing.T) {
	// Up/down chain: frequency of leaving up = pi_up * lambda.
	const lambda, mu = 0.5, 1.5
	n, up, _ := upDownNet(t, lambda, mu)
	ss, pi := solve(t, n)
	freq, err := ss.ExitFrequency(pi, func(m Marking) bool { return m.Tokens(up) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lambda + mu) * lambda
	if !mathx.AlmostEqual(freq, want, 1e-10) {
		t.Errorf("ExitFrequency = %v, want %v", freq, want)
	}
	// Flow balance: leaving the up set happens exactly as often as
	// leaving the down set in steady state.
	freqDown, err := ss.ExitFrequency(pi, func(m Marking) bool { return m.Tokens(up) == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(freq, freqDown, 1e-10) {
		t.Errorf("flow imbalance: out %v vs in %v", freq, freqDown)
	}
	// The whole state space has no exits.
	all, err := ss.ExitFrequency(pi, func(Marking) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if all != 0 {
		t.Errorf("exit frequency of the full space = %v, want 0", all)
	}
	if _, err := ss.ExitFrequency([]float64{1}, func(Marking) bool { return true }); err == nil {
		t.Error("wrong-length distribution should fail")
	}
}

func TestInitialDistribution(t *testing.T) {
	// A vanishing initial marking splitting 1:3 must seed the transient
	// analysis with a 0.25/0.75 distribution.
	n := New("split")
	boot := n.AddPlace("boot", 1)
	a := n.AddPlace("a", 0)
	b := n.AddPlace("b", 0)
	n.AddImmediateTransition("Ta").From(boot).To(a).WithWeight(1)
	n.AddImmediateTransition("Tb").From(boot).To(b).WithWeight(3)
	n.AddTimedTransition("Tba", 1).From(b).To(a)
	n.AddTimedTransition("Tab", 1).From(a).To(b)
	ss, err := n.Generate(GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p0 := ss.InitialDistribution()
	if !mathx.AlmostEqual(mathx.KahanSum(p0), 1, 1e-12) {
		t.Errorf("initial distribution sums to %v", mathx.KahanSum(p0))
	}
	pA, err := ss.Probability(p0, func(m Marking) bool { return m.Tokens(a) == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(pA, 0.25, 1e-12) {
		t.Errorf("P0(a) = %v, want 0.25", pA)
	}
}

func TestTransientRewardConverges(t *testing.T) {
	const lambda, mu = 0.5, 1.5
	n, up, _ := upDownNet(t, lambda, mu)
	ss, pi := solve(t, n)
	reward := func(m Marking) float64 { return float64(m.Tokens(up)) }

	at0, err := ss.TransientReward(reward, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(at0, 1, 1e-12) {
		t.Errorf("reward at t=0 = %v, want 1 (starts up)", at0)
	}
	atInf, err := ss.TransientReward(reward, 100)
	if err != nil {
		t.Fatal(err)
	}
	steady, err := ss.ExpectedReward(pi, reward)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(atInf, steady, 1e-9) {
		t.Errorf("reward at large t = %v, want steady %v", atInf, steady)
	}
	interval, err := ss.IntervalReward(reward, 100)
	if err != nil {
		t.Fatal(err)
	}
	if interval <= steady || interval >= 1 {
		t.Errorf("interval reward %v must lie between steady %v and initial 1", interval, steady)
	}
	if _, err := ss.IntervalReward(reward, 0); err == nil {
		t.Error("zero-length interval should fail")
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("noPlaces", func(t *testing.T) {
		n := New("empty")
		if err := n.Validate(); err == nil {
			t.Error("empty net should fail validation")
		}
	})
	t.Run("noArcs", func(t *testing.T) {
		n := New("noarcs")
		n.AddPlace("p", 1)
		n.AddTimedTransition("t", 1)
		if err := n.Validate(); err == nil {
			t.Error("transition without arcs should fail validation")
		}
	})
	t.Run("badRate", func(t *testing.T) {
		n := New("badrate")
		p := n.AddPlace("p", 1)
		n.AddTimedTransition("t", 0).From(p).To(p)
		if err := n.Validate(); err == nil {
			t.Error("timed transition without rate should fail validation")
		}
	})
	t.Run("badWeight", func(t *testing.T) {
		n := New("badweight")
		p := n.AddPlace("p", 1)
		n.AddImmediateTransition("t").From(p).To(p).WithWeight(0)
		if err := n.Validate(); err == nil {
			t.Error("immediate transition with zero weight should fail validation")
		}
	})
	t.Run("badMultiplicity", func(t *testing.T) {
		n := New("badmult")
		p := n.AddPlace("p", 1)
		n.AddTimedTransition("t", 1).FromN(p, 0).To(p)
		if err := n.Validate(); err == nil {
			t.Error("zero arc multiplicity should fail validation")
		}
	})
}

func TestDuplicatePlacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate place should panic")
		}
	}()
	n := New("dup")
	n.AddPlace("p", 0)
	n.AddPlace("p", 0)
}

func TestDuplicateTransitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate transition should panic")
		}
	}()
	n := New("dup")
	n.AddTimedTransition("t", 1)
	n.AddTimedTransition("t", 1)
}

func TestLookups(t *testing.T) {
	n, _, _ := upDownNet(t, 1, 1)
	if n.Place("Pup") == nil || n.Place("nosuch") != nil {
		t.Error("Place lookup misbehaves")
	}
	if n.TransitionByName("Tfail") == nil || n.TransitionByName("nosuch") != nil {
		t.Error("TransitionByName lookup misbehaves")
	}
	if len(n.Places()) != 2 || len(n.Transitions()) != 2 {
		t.Error("Places/Transitions lists wrong length")
	}
}

func TestMarkingString(t *testing.T) {
	n := New("str")
	a := n.AddPlace("b_place", 1)
	b := n.AddPlace("a_place", 2)
	m := n.InitialMarking()
	_ = a
	_ = b
	if got := n.MarkingString(m); got != "{a_place:2 b_place}" {
		t.Errorf("MarkingString = %q", got)
	}
}

func TestMarkingKeyLargeCounts(t *testing.T) {
	// Token counts at and above the one-byte escape boundary must keep
	// distinct markings distinct.
	counts := []int{0, 1, 254, 255, 256, 300, 1 << 20}
	seen := make(map[string]int)
	for _, a := range counts {
		for _, b := range counts {
			m := Marking{a, b}
			k := m.key()
			if prev, dup := seen[k]; dup && prev != a*1000000+b {
				t.Errorf("markings collide: key of {%d,%d} already used", a, b)
			}
			seen[k] = a*1000000 + b
		}
	}
	if len(seen) != len(counts)*len(counts) {
		t.Errorf("distinct keys = %d, want %d", len(seen), len(counts)*len(counts))
	}
}

func TestHighTokenCountStateSpace(t *testing.T) {
	// A tier of 300 servers exercises the multi-byte marking encoding end
	// to end: 301 tangible states.
	n := New("large")
	up := n.AddPlace("up", 300)
	down := n.AddPlace("down", 0)
	n.AddTimedTransition("Td", 0).From(up).To(down).
		WithRateFunc(func(m Marking) float64 { return 0.001 * float64(m.Tokens(up)) })
	n.AddTimedTransition("Tu", 0).From(down).To(up).
		WithRateFunc(func(m Marking) float64 { return 1.0 * float64(m.Tokens(down)) })
	ss, err := n.Generate(GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumTangible() != 301 {
		t.Errorf("tangible = %d, want 301", ss.NumTangible())
	}
}

func TestDOTOutput(t *testing.T) {
	n, _, _ := upDownNet(t, 1, 1)
	dot := n.DOT()
	for _, want := range []string{"digraph", "p_Pup", "t_Tfail", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// TestRandomBirthDeathMatchesDirectCTMC cross-validates the SRN pipeline
// against a hand-built CTMC on random bounded birth-death nets.
func TestRandomBirthDeathMatchesDirectCTMC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capTokens := 1 + rng.Intn(6)
		birth := 0.2 + rng.Float64()*2
		death := 0.2 + rng.Float64()*2

		n := New("bd")
		pool := n.AddPlace("pool", 0)
		clock := n.AddPlace("clock", 1)
		n.AddTimedTransition("Tb", birth).From(clock).To(clock).To(pool).Inhibit(pool, capTokens+1)
		n.AddTimedTransition("Td", 0).From(pool).
			WithRateFunc(func(m Marking) float64 { return death * float64(m.Tokens(pool)) })

		ss, err := n.Generate(GenerateOptions{})
		if err != nil {
			return false
		}
		pi, err := ss.SteadyState(ctmc.SolveOptions{})
		if err != nil {
			return false
		}

		ref := ctmc.New(capTokens + 2)
		for i := 0; i <= capTokens; i++ {
			if err := ref.AddRate(i, i+1, birth); err != nil {
				return false
			}
		}
		for i := 1; i <= capTokens+1; i++ {
			if err := ref.AddRate(i, i-1, death*float64(i)); err != nil {
				return false
			}
		}
		refPi, err := ref.SteadyState(ctmc.SolveOptions{})
		if err != nil {
			return false
		}
		for k := 0; k <= capTokens+1; k++ {
			got, err := ss.Probability(pi, func(m Marking) bool { return m.Tokens(pool) == k })
			if err != nil || !mathx.AlmostEqual(got, refPi[k], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
