package srn_test

import (
	"fmt"

	"redpatch/internal/ctmc"
	"redpatch/internal/srn"
)

// Example builds the smallest useful stochastic reward net — a server
// that fails and recovers — and computes its steady-state availability.
func Example() {
	net := srn.New("server")
	up := net.AddPlace("up", 1)
	down := net.AddPlace("down", 0)
	net.AddTimedTransition("fail", 0.01).From(up).To(down)
	net.AddTimedTransition("repair", 1.0).From(down).To(up)

	ss, err := net.Generate(srn.GenerateOptions{})
	if err != nil {
		panic(err)
	}
	pi, err := ss.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		panic(err)
	}
	availability, err := ss.ExpectedReward(pi, func(m srn.Marking) float64 {
		return float64(m.Tokens(up))
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("states: %d, availability: %.4f\n", ss.NumTangible(), availability)
	// Output: states: 2, availability: 0.9901
}
