package srn

// Marking is a token count per place, indexed by place creation order.
// Guards, rate functions and reward functions receive the marking and read
// it through Tokens, mirroring the #P notation of the paper's Table III.
type Marking []int

// Tokens returns the number of tokens in place p (the paper's "#P").
func (m Marking) Tokens(p *Place) int { return m[p.index] }

// key returns a compact map key identifying the marking. Token counts in
// the models of this repository are tiny (bounded by server replica
// counts), so one byte per place suffices; the rare larger count falls back
// to a multi-byte big-endian encoding with an escape byte.
func (m Marking) key() string {
	buf := make([]byte, 0, len(m)+4)
	for _, c := range m {
		if c < 255 {
			buf = append(buf, byte(c))
			continue
		}
		buf = append(buf, 255,
			byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
	}
	return string(buf)
}

// clone returns a copy of the marking.
func (m Marking) clone() Marking {
	out := make(Marking, len(m))
	copy(out, m)
	return out
}
