package srn

import (
	"fmt"
	"math"

	"redpatch/internal/mathx"
)

// IncidenceMatrix returns the net's incidence matrix C with one row per
// place (creation order) and one column per transition (creation order):
// C[p][t] = tokens produced into p by t minus tokens consumed from p by
// t. Inhibitor arcs move no tokens and do not appear.
func (n *Net) IncidenceMatrix() [][]int {
	c := make([][]int, len(n.places))
	for i := range c {
		c[i] = make([]int, len(n.transitions))
	}
	for j, t := range n.transitions {
		for _, a := range t.in {
			c[a.place.index][j] -= a.mult
		}
		for _, a := range t.out {
			c[a.place.index][j] += a.mult
		}
	}
	return c
}

// PlaceInvariants returns a basis of the left null space of the incidence
// matrix: weight vectors y over places such that the weighted token count
// y·M is constant under every transition firing. Token-conservation laws
// of the model (e.g. "the hardware token never leaves the hardware
// sub-model") appear here; the basis is computed over floats by Gaussian
// elimination, so vectors may mix signs.
func (n *Net) PlaceInvariants() [][]float64 {
	inc := n.IncidenceMatrix()
	nPlaces := len(n.places)
	nTrans := len(n.transitions)

	// Solve y^T C = 0, i.e. C^T y = 0: eliminate on the nTrans x nPlaces
	// matrix A = C^T and read the null space off the free columns.
	a := make([][]float64, nTrans)
	for t := 0; t < nTrans; t++ {
		a[t] = make([]float64, nPlaces)
		for p := 0; p < nPlaces; p++ {
			a[t][p] = float64(inc[p][t])
		}
	}

	pivotOfCol := make([]int, nPlaces)
	for i := range pivotOfCol {
		pivotOfCol[i] = -1
	}
	row := 0
	for col := 0; col < nPlaces && row < nTrans; col++ {
		pivot := -1
		best := 1e-9
		for r := row; r < nTrans; r++ {
			if math.Abs(a[r][col]) > best {
				best = math.Abs(a[r][col])
				pivot = r
			}
		}
		if pivot < 0 {
			continue
		}
		a[row], a[pivot] = a[pivot], a[row]
		inv := 1 / a[row][col]
		for k := col; k < nPlaces; k++ {
			a[row][k] *= inv
		}
		for r := 0; r < nTrans; r++ {
			if r == row {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for k := col; k < nPlaces; k++ {
				a[r][k] -= f * a[row][k]
			}
		}
		pivotOfCol[col] = row
		row++
	}

	var basis [][]float64
	for col := 0; col < nPlaces; col++ {
		if pivotOfCol[col] >= 0 {
			continue // bound column
		}
		y := make([]float64, nPlaces)
		y[col] = 1
		for c2 := 0; c2 < nPlaces; c2++ {
			if r := pivotOfCol[c2]; r >= 0 {
				y[c2] = -a[r][col]
			}
		}
		basis = append(basis, y)
	}
	return basis
}

// CheckConservation verifies that every tangible marking of the generated
// state space conserves every place invariant of the net (the weighted
// token count matches the initial marking's). A violation means the state
// space and the net structure disagree — an internal error worth failing
// loudly on.
func (n *Net) CheckConservation(ss *StateSpace) error {
	invariants := n.PlaceInvariants()
	if len(invariants) == 0 {
		return nil
	}
	m0 := n.InitialMarking()
	want := make([]float64, len(invariants))
	for i, y := range invariants {
		want[i] = dot(y, m0)
	}
	for _, m := range ss.Markings() {
		for i, y := range invariants {
			if got := dot(y, m); !mathx.AlmostEqual(got, want[i], 1e-6) {
				return fmt.Errorf("srn: marking %s violates invariant %d: weighted count %v, want %v",
					n.MarkingString(m), i, got, want[i])
			}
		}
	}
	return nil
}

func dot(y []float64, m Marking) float64 {
	var s float64
	for i, w := range y {
		s += w * float64(m[i])
	}
	return s
}
