package faultinject

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// hitSeq runs n hits against a fresh injector with one configured site
// and returns which hits errored.
func hitSeq(seed int64, cfg Site, n int) []bool {
	in := New(seed)
	in.Configure("s", cfg)
	out := make([]bool, n)
	for i := range out {
		out[i] = in.Hit("s") != nil
	}
	return out
}

// TestDeterministic: the same seed and call sequence produce the same
// fault sequence; a different seed produces a different one.
func TestDeterministic(t *testing.T) {
	cfg := Site{ErrProb: 0.3}
	a := hitSeq(42, cfg, 200)
	b := hitSeq(42, cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: seed 42 diverged from itself", i)
		}
	}
	c := hitSeq(43, cfg, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 200-hit sequences")
	}
}

// TestErrRate: a 30% error site errs roughly 30% of the time and wraps
// ErrInjected so callers can tell injected faults apart.
func TestErrRate(t *testing.T) {
	in := New(1)
	in.Configure("s", Site{ErrProb: 0.3})
	errs := 0
	for i := 0; i < 1000; i++ {
		if err := in.Hit("s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			errs++
		}
	}
	if errs < 200 || errs > 400 {
		t.Errorf("1000 hits at ErrProb 0.3 errored %d times", errs)
	}
	if n := in.Counts("s"); n.Hits != 1000 || n.Errors != uint64(errs) {
		t.Errorf("counts = %+v, want 1000 hits and %d errors", n, errs)
	}
}

// TestCustomErr: a configured Site.Err is returned verbatim.
func TestCustomErr(t *testing.T) {
	want := errors.New("disk full")
	in := New(1)
	in.Configure("s", Site{ErrProb: 1, Err: want})
	if err := in.Hit("s"); !errors.Is(err, want) {
		t.Errorf("Hit = %v, want %v", err, want)
	}
}

// TestPanic: a PanicProb 1 site panics with the site name.
func TestPanic(t *testing.T) {
	in := New(1)
	in.Configure("boom", Site{PanicProb: 1})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic from PanicProb 1")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "boom") {
			t.Errorf("panic value %v does not name the site", p)
		}
		if n := in.Counts("boom"); n.Panics != 1 {
			t.Errorf("panic count = %d, want 1", n.Panics)
		}
	}()
	in.Hit("boom")
}

// TestLatencyCtx: an injected latency respects the caller's context —
// a cancelled wait returns ctx.Err instead of sleeping out the delay.
func TestLatencyCtx(t *testing.T) {
	in := New(1)
	in.Configure("slow", Site{LatencyProb: 1, Latency: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.HitCtx(ctx, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("HitCtx = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancelled wait took %v", d)
	}
}

// TestRecovery: dialing a site's probabilities to zero stops all
// faults — the monotone-recovery contract the chaos suite leans on —
// without resetting its counters.
func TestRecovery(t *testing.T) {
	in := New(7)
	in.Configure("s", Site{ErrProb: 1})
	if in.Hit("s") == nil {
		t.Fatal("ErrProb 1 did not err")
	}
	in.Configure("s", Site{})
	for i := 0; i < 100; i++ {
		if err := in.Hit("s"); err != nil {
			t.Fatalf("hit %d errored after recovery: %v", i, err)
		}
	}
	if n := in.Counts("s"); n.Errors != 1 || n.Hits != 101 {
		t.Errorf("counts = %+v, want errors 1 and hits 101 across reconfiguration", n)
	}
}

// TestNilAndUnconfigured: nil injectors and unknown sites are free
// no-ops, so production call sites need no chaos-enabled branch.
func TestNilAndUnconfigured(t *testing.T) {
	var in *Injector
	if err := in.Hit("anything"); err != nil {
		t.Errorf("nil injector Hit = %v", err)
	}
	if n := in.Counts("anything"); n != (Counts{}) {
		t.Errorf("nil injector Counts = %+v", n)
	}
	in = New(1)
	if err := in.Hit("unconfigured"); err != nil {
		t.Errorf("unconfigured site Hit = %v", err)
	}
	if n := in.Counts("unconfigured"); n != (Counts{}) {
		t.Errorf("unconfigured site counted: %+v", n)
	}
}

// TestConcurrentHits: concurrent hits race-cleanly share a site and
// lose no counts.
func TestConcurrentHits(t *testing.T) {
	in := New(3)
	in.Configure("s", Site{ErrProb: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				_ = in.Hit("s")
			}
		}()
	}
	wg.Wait()
	if n := in.Counts("s"); n.Hits != 2000 {
		t.Errorf("hits = %d, want 2000", n.Hits)
	}
}

// TestConcurrentDeterministicStreams: every hit consumes its site's
// PRNG draws under the injector lock, so a parallel hit storm produces
// exactly the fault totals of a serial replay with the same seed — not
// just statistically similar ones — and one site's traffic never
// perturbs another's stream. (Which goroutine takes the k-th hit is
// scheduling-dependent; which fault the k-th hit fires is not.)
func TestConcurrentDeterministicStreams(t *testing.T) {
	const (
		seed    = 17
		workers = 16
		perW    = 125
		total   = workers * perW
	)
	cfg := map[string]Site{
		"a": {ErrProb: 0.25},
		"b": {ErrProb: 0.75, LatencyProb: 0.1, Latency: time.Nanosecond},
	}
	run := func(parallel bool) map[string]Counts {
		in := New(seed)
		for name, c := range cfg {
			in.Configure(name, c)
		}
		if parallel {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						_ = in.Hit("a")
						_ = in.Hit("b")
					}
				}()
			}
			wg.Wait()
		} else {
			for i := 0; i < total; i++ {
				_ = in.Hit("a")
				_ = in.Hit("b")
			}
		}
		return map[string]Counts{"a": in.Counts("a"), "b": in.Counts("b")}
	}
	serial := run(false)
	concurrent := run(true)
	for name := range cfg {
		if concurrent[name].Hits != uint64(total) {
			t.Errorf("site %q: concurrent hits = %d, want exactly %d", name, concurrent[name].Hits, total)
		}
		if serial[name] != concurrent[name] {
			t.Errorf("site %q: concurrent counts %+v diverged from serial same-seed replay %+v",
				name, concurrent[name], serial[name])
		}
	}
	if serial["a"].Errors == 0 || serial["b"].Errors == 0 || serial["b"].Delays == 0 {
		t.Errorf("replay exercised no faults: %+v", serial)
	}
}
