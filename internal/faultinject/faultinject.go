// Package faultinject is a deterministic, seeded fault injector for
// chaos testing: named sites threaded through the daemon's seams (the
// evaluator behind the engine, the fleet Resolver→Engine indirection,
// the cache-persistence I/O path, a handler) draw from per-site PRNGs
// and fail with a configured probability — an injected error, added
// latency, or a panic. The same seed and call sequence always produce
// the same faults, so a chaos suite's failures replay exactly.
//
// A nil *Injector is a valid no-op: production call sites invoke
// Hit/HitCtx unconditionally and pay one nil check when chaos is off.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the default error a site returns; configured sites may
// substitute their own via Site.Err. Callers can errors.Is against it
// to tell injected faults from organic ones in test assertions.
var ErrInjected = errors.New("faultinject: injected fault")

// Site configures one injection point. Probabilities are in [0, 1] and
// are drawn independently in a fixed order — latency, then panic, then
// error — so reconfiguring one probability never shifts another's draw
// sequence. The zero Site never fires, which is how a test turns a
// site back off to assert recovery.
type Site struct {
	// ErrProb is the probability of returning an error (Err, or
	// ErrInjected when nil).
	ErrProb float64
	Err     error
	// LatencyProb is the probability of sleeping Latency before any
	// other draw takes effect.
	LatencyProb float64
	Latency     time.Duration
	// PanicProb is the probability of panicking with the site name.
	PanicProb float64
}

// Counts is a snapshot of one site's activity.
type Counts struct {
	Hits   uint64 // times the site was reached
	Errors uint64 // injected errors returned
	Panics uint64 // injected panics raised
	Delays uint64 // injected latencies slept
}

type siteState struct {
	cfg Site
	rng *rand.Rand
	n   Counts
}

// Injector holds the configured sites. It is safe for concurrent use;
// each site's PRNG draws under the injector lock, so the per-site draw
// sequence is deterministic even under concurrent hits (which fault
// fires on the k-th hit of a site is fixed by the seed, though which
// goroutine takes the k-th hit is scheduling-dependent).
type Injector struct {
	seed int64

	mu    sync.Mutex
	sites map[string]*siteState
}

// New builds an injector. Every site derives its own PRNG from seed and
// the site name, so adding a site never perturbs another's sequence.
func New(seed int64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*siteState)}
}

// Configure sets (or replaces) a site's fault configuration. The site's
// PRNG and counters survive reconfiguration, so a test can dial a
// probability to zero mid-run and assert monotone recovery without
// resetting the draw sequence.
func (in *Injector) Configure(name string, cfg Site) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.sites[name]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(name))
		st = &siteState{rng: rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))}
		in.sites[name] = st
	}
	st.cfg = cfg
}

// Counts returns a site's activity snapshot; unknown sites read zero.
func (in *Injector) Counts(name string) Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.sites[name]; ok {
		return st.n
	}
	return Counts{}
}

// Hit runs the named site with no cancellation: HitCtx under a
// background context.
func (in *Injector) Hit(name string) error {
	return in.HitCtx(context.Background(), name)
}

// HitCtx runs the named site: maybe sleeps (respecting ctx — a
// cancelled wait returns ctx.Err, the closest analogue of a stalled
// dependency the caller gave up on), maybe panics, maybe returns the
// configured error. Unconfigured sites and nil injectors return nil
// without drawing.
func (in *Injector) HitCtx(ctx context.Context, name string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st, ok := in.sites[name]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	st.n.Hits++
	cfg := st.cfg
	// Fixed draw order (latency, panic, error) regardless of which
	// probabilities are set keeps the per-site sequence stable across
	// reconfigurations.
	sleep := st.rng.Float64() < cfg.LatencyProb
	panics := st.rng.Float64() < cfg.PanicProb
	errs := st.rng.Float64() < cfg.ErrProb
	if sleep && cfg.Latency > 0 {
		st.n.Delays++
	}
	if panics {
		st.n.Panics++
	}
	if errs {
		st.n.Errors++
	}
	in.mu.Unlock()

	if sleep && cfg.Latency > 0 {
		t := time.NewTimer(cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if panics {
		panic(fmt.Sprintf("faultinject: injected panic at site %q", name))
	}
	if errs {
		if cfg.Err != nil {
			return cfg.Err
		}
		return fmt.Errorf("site %q: %w", name, ErrInjected)
	}
	return nil
}
