package paperdata

import (
	"reflect"
	"testing"
)

func TestLogicalIndices(t *testing.T) {
	spec := DesignSpec{
		Name: "het",
		Tiers: []TierSpec{
			{Role: RoleDNS, Replicas: 2},
			{Role: RoleWeb, Replicas: 3},
			{Role: RoleApp, Replicas: 4},
			{Role: RoleWeb, Replicas: 2, Variant: RoleWebAlt},
			{Role: RoleDB, Replicas: 2},
		},
	}
	got := spec.LogicalIndices()
	want := [][]int{{0}, {1, 3}, {2}, {4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LogicalIndices = %v, want %v", got, want)
	}
	// The indices line up with Logical(): same layer count, same group
	// counts, and the referenced tiers match the logical groups.
	logical := spec.Logical()
	if len(logical) != len(got) {
		t.Fatalf("%d logical tiers, %d index groups", len(logical), len(got))
	}
	for li, lt := range logical {
		if len(lt.Groups) != len(got[li]) {
			t.Fatalf("logical tier %d: %d groups, %d indices", li, len(lt.Groups), len(got[li]))
		}
		for gi, idx := range got[li] {
			if !reflect.DeepEqual(spec.Tiers[idx], lt.Groups[gi]) {
				t.Errorf("logical tier %d group %d: index %d points at %+v, logical has %+v",
					li, gi, idx, spec.Tiers[idx], lt.Groups[gi])
			}
		}
	}
}

func TestSpecRolloutQuotient(t *testing.T) {
	spec := DesignSpec{
		Name: "het",
		Tiers: []TierSpec{
			{Role: RoleDNS, Replicas: 2},
			{Role: RoleWeb, Replicas: 3},
			{Role: RoleWeb, Replicas: 2, Variant: RoleWebAlt},
			{Role: RoleWeb, Replicas: 1}, // same stack as the first web group: merges
			{Role: RoleApp, Replicas: 4},
			{Role: RoleDB, Replicas: 2},
		},
	}
	// Patch 1 of 2 dns, 2 of the 4 merged web (1 from each group), all
	// webalt, none of app, all db: dns and web split, the rest stay
	// single-class.
	rq, err := SpecRolloutQuotient(spec, []int{1, 1, 2, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	wantMult := map[string]int{
		"dns1": 1, "dns2": 1, // 1 unpatched, then 1 patched
		"web1": 2, "web2": 2, // 2 unpatched, then 2 patched
		"webalt1": 2,
		"app1":    4,
		"db1":     2,
	}
	if !reflect.DeepEqual(rq.Mult, wantMult) {
		t.Errorf("Mult = %v, want %v", rq.Mult, wantMult)
	}
	wantPatched := map[string]string{
		"dns2": "dns", "web2": "web", "webalt1": "webalt", "db1": "db",
	}
	if !reflect.DeepEqual(rq.PatchedHosts, wantPatched) {
		t.Errorf("PatchedHosts = %v, want %v", rq.PatchedHosts, wantPatched)
	}
	for _, tier := range rq.Quotient.Tiers {
		if tier.Replicas != 1 {
			t.Errorf("quotient tier %s has %d replicas, want 1", tier.label(), tier.Replicas)
		}
	}
	// Every multiplicity key is a host of the quotient topology.
	top, err := SpecTopology(rq.Quotient)
	if err != nil {
		t.Fatal(err)
	}
	for name := range wantMult {
		if _, ok := top.Node(name); !ok {
			t.Errorf("quotient topology missing class host %q", name)
		}
	}

	// The structure key distinguishes which duplicate group is patched
	// and is replica-independent for a fixed patch pattern shape.
	flipped, err := SpecRolloutQuotient(spec, []int{1, 2, 0, 1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if flipped.Structure == rq.Structure {
		t.Error("different patch patterns must not share a structure key")
	}

	// The degenerate points reproduce SpecQuotient exactly: same quotient
	// identity (Key), same host multiplicities.
	quotient, mult, _, err := SpecQuotient(spec)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := SpecRolloutQuotient(spec, make([]int, len(spec.Tiers)))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Quotient.Key() != quotient.Key() {
		t.Errorf("all-unpatched quotient key %q != atomic %q", zero.Quotient.Key(), quotient.Key())
	}
	if !reflect.DeepEqual(zero.Mult, mult) {
		t.Errorf("all-unpatched Mult = %v, want %v", zero.Mult, mult)
	}
	if len(zero.PatchedHosts) != 0 {
		t.Errorf("all-unpatched PatchedHosts = %v, want empty", zero.PatchedHosts)
	}
	full := []int{2, 3, 2, 1, 4, 2}
	one, err := SpecRolloutQuotient(spec, full)
	if err != nil {
		t.Fatal(err)
	}
	if one.Quotient.Key() != quotient.Key() {
		t.Errorf("all-patched quotient key %q != atomic %q", one.Quotient.Key(), quotient.Key())
	}
	if !reflect.DeepEqual(one.Mult, mult) {
		t.Errorf("all-patched Mult = %v, want %v", one.Mult, mult)
	}
	if len(one.PatchedHosts) != len(one.Quotient.Tiers) {
		t.Errorf("all-patched PatchedHosts = %v, want every class", one.PatchedHosts)
	}
	if zero.Structure == one.Structure {
		t.Error("all-unpatched and all-patched must not share a structure key")
	}

	// Validation: wrong length and out-of-range counts are rejected.
	if _, err := SpecRolloutQuotient(spec, []int{1}); err == nil {
		t.Error("mismatched patched length should fail")
	}
	if _, err := SpecRolloutQuotient(spec, []int{3, 0, 0, 0, 0, 0}); err == nil {
		t.Error("patched above replicas should fail")
	}
	if _, err := SpecRolloutQuotient(spec, []int{-1, 0, 0, 0, 0, 0}); err == nil {
		t.Error("negative patched should fail")
	}
	if _, err := SpecRolloutQuotient(DesignSpec{}, nil); err == nil {
		t.Error("invalid spec should fail")
	}
}
