package paperdata

import (
	"reflect"
	"testing"
	"time"

	"redpatch/internal/attacktree"
	"redpatch/internal/mathx"
	"redpatch/internal/patch"
	"redpatch/internal/vulndb"
)

// TestTable1Values verifies that every Table I row reproduces from the
// curated CVSS vectors: attack impact and attack success probability.
func TestTable1Values(t *testing.T) {
	db := VulnDB()
	tests := []struct {
		row        string
		id         string
		wantImpact float64
		wantASP    float64
	}{
		{row: "v1dns", id: "CVE-2016-3227", wantImpact: 10.0, wantASP: 1.0},
		{row: "v1web", id: "CVE-2016-4448", wantImpact: 10.0, wantASP: 1.0},
		{row: "v2web", id: "CVE-2015-4602", wantImpact: 10.0, wantASP: 1.0},
		{row: "v3web", id: "CVE-2015-4603", wantImpact: 10.0, wantASP: 1.0},
		{row: "v4web", id: "CVE-2016-4979", wantImpact: 2.9, wantASP: 1.0},
		{row: "v5web", id: "CVE-2016-4805", wantImpact: 10.0, wantASP: 0.39},
		{row: "v1app", id: "CVE-2016-3586", wantImpact: 10.0, wantASP: 1.0},
		{row: "v2app", id: "CVE-2016-3510", wantImpact: 10.0, wantASP: 1.0},
		{row: "v3app", id: "CVE-2016-3499", wantImpact: 10.0, wantASP: 1.0},
		{row: "v4app", id: "CVE-2016-0638", wantImpact: 6.4, wantASP: 1.0},
		{row: "v5app/v5db", id: "CVE-2016-4997", wantImpact: 10.0, wantASP: 0.39},
		{row: "v1db", id: "CVE-2016-6662", wantImpact: 10.0, wantASP: 1.0},
		{row: "v2db", id: "CVE-2016-0639", wantImpact: 10.0, wantASP: 1.0},
		{row: "v3db", id: "CVE-2015-3152", wantImpact: 2.9, wantASP: 0.86},
		{row: "v4db", id: "CVE-2016-3471", wantImpact: 10.0, wantASP: 0.39},
	}
	for _, tt := range tests {
		t.Run(tt.row, func(t *testing.T) {
			v, ok := db.ByID(tt.id)
			if !ok {
				t.Fatalf("%s missing from dataset", tt.id)
			}
			if got := v.Impact(); got != tt.wantImpact {
				t.Errorf("impact = %v, want %v", got, tt.wantImpact)
			}
			if got := v.ASP(); got != tt.wantASP {
				t.Errorf("ASP = %v, want %v", got, tt.wantASP)
			}
			if !v.Exploitable {
				t.Error("Table I rows are exploitable by definition")
			}
		})
	}
}

// TestCriticalCounts verifies the per-role critical-vulnerability counts
// that drive the paper's Table V MTTRs.
func TestCriticalCounts(t *testing.T) {
	db := VulnDB()
	pol := patch.CriticalPolicy()
	tests := []struct {
		role        string
		wantService int
		wantOS      int
	}{
		{role: RoleDNS, wantService: 1, wantOS: 2},
		{role: RoleWeb, wantService: 2, wantOS: 1},
		{role: RoleApp, wantService: 3, wantOS: 3},
		{role: RoleDB, wantService: 2, wantOS: 3},
	}
	for _, tt := range tests {
		t.Run(tt.role, func(t *testing.T) {
			vulns, err := VulnsForRole(db, tt.role)
			if err != nil {
				t.Fatal(err)
			}
			var osC, svcC int
			for _, v := range vulns {
				if !pol.Selects(v) {
					continue
				}
				if v.Component == vulndb.ComponentOS {
					osC++
				} else {
					svcC++
				}
			}
			if svcC != tt.wantService || osC != tt.wantOS {
				t.Errorf("critical counts = (%d service, %d os), want (%d, %d)",
					svcC, osC, tt.wantService, tt.wantOS)
			}
		})
	}
}

// TestExploitableCounts verifies the per-role exploitable counts implied
// by Table I (5 per web/app/db server, 1 for DNS).
func TestExploitableCounts(t *testing.T) {
	db := VulnDB()
	want := map[string]int{RoleDNS: 1, RoleWeb: 5, RoleApp: 5, RoleDB: 5}
	for role, n := range want {
		vulns, err := VulnsForRole(db, role)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, v := range vulns {
			if v.Exploitable {
				got++
			}
		}
		if got != n {
			t.Errorf("%s exploitable = %d, want %d", role, got, n)
		}
	}
}

func TestTreesMatchPaperStructure(t *testing.T) {
	db := VulnDB()
	trees := Trees(db)
	tests := []struct {
		role       string
		wantString string
		wantImpact float64
	}{
		{role: RoleDNS, wantString: "OR(CVE-2016-3227)", wantImpact: 10.0},
		{role: RoleWeb, wantString: "OR(CVE-2016-4448, CVE-2015-4602, CVE-2015-4603, AND(CVE-2016-4979, CVE-2016-4805))", wantImpact: 12.9},
		{role: RoleApp, wantString: "OR(CVE-2016-3586, CVE-2016-3510, CVE-2016-3499, AND(CVE-2016-0638, CVE-2016-4997))", wantImpact: 16.4},
		{role: RoleDB, wantString: "OR(CVE-2016-6662, CVE-2016-0639, AND(CVE-2015-3152, CVE-2016-3471), CVE-2016-4997)", wantImpact: 12.9},
	}
	for _, tt := range tests {
		t.Run(tt.role, func(t *testing.T) {
			tr := trees[tt.role]
			if tr == nil {
				t.Fatal("missing tree")
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := tr.String(); got != tt.wantString {
				t.Errorf("structure = %q, want %q", got, tt.wantString)
			}
			if got := tr.Impact(); !mathx.AlmostEqual(got, tt.wantImpact, 1e-9) {
				t.Errorf("impact = %v, want %v (paper §III-C)", got, tt.wantImpact)
			}
		})
	}
}

func TestDesigns(t *testing.T) {
	ds := Designs()
	if len(ds) != 5 {
		t.Fatalf("Designs = %d, want 5", len(ds))
	}
	if ds[0].Total() != 4 || ds[1].Total() != 5 {
		t.Error("design sizes wrong")
	}
	if got := ds[1].String(); got != "2 DNS + 1 WEB + 1 APP + 1 DB" {
		t.Errorf("String = %q", got)
	}
	base := BaseDesign()
	if base.Total() != 6 {
		t.Errorf("base design total = %d, want 6", base.Total())
	}
	for _, d := range append(ds, base) {
		if err := d.Validate(); err != nil {
			t.Errorf("design %s invalid: %v", d.Name, err)
		}
	}
	if err := (Design{Name: "bad", DNS: 0, Web: 1, App: 1, DB: 1}).Validate(); err == nil {
		t.Error("zero-tier design should fail validation")
	}
}

func TestTopologyShape(t *testing.T) {
	top, err := Topology(BaseDesign())
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(top.Hosts()); got != 6 {
		t.Errorf("hosts = %d, want 6", got)
	}
	for _, e := range [][2]string{
		{"attacker", "dns1"}, {"attacker", "web1"}, {"attacker", "web2"},
		{"dns1", "web2"}, {"web1", "app2"}, {"app1", "db1"},
	} {
		if !top.HasEdge(e[0], e[1]) {
			t.Errorf("edge %s -> %s missing", e[0], e[1])
		}
	}
	for _, e := range [][2]string{
		{"attacker", "app1"}, {"attacker", "db1"}, {"web1", "db1"}, {"dns1", "app1"},
	} {
		if top.HasEdge(e[0], e[1]) {
			t.Errorf("edge %s -> %s must not exist", e[0], e[1])
		}
	}
	if _, err := Topology(Design{Name: "bad"}); err == nil {
		t.Error("invalid design should fail")
	}
}

func TestVulnsForRoleUnknown(t *testing.T) {
	if _, err := VulnsForRole(VulnDB(), "mainframe"); err == nil {
		t.Error("unknown role should fail")
	}
}

// TestServerParams verifies the computed patch windows per role (the
// inputs behind Table IV/V).
func TestServerParams(t *testing.T) {
	db := VulnDB()
	tests := []struct {
		role     string
		wantSvc  time.Duration
		wantOS   time.Duration
		wantDown time.Duration
	}{
		{role: RoleDNS, wantSvc: 5 * time.Minute, wantOS: 20 * time.Minute, wantDown: 40 * time.Minute},
		{role: RoleWeb, wantSvc: 10 * time.Minute, wantOS: 10 * time.Minute, wantDown: 35 * time.Minute},
		{role: RoleApp, wantSvc: 15 * time.Minute, wantOS: 30 * time.Minute, wantDown: 60 * time.Minute},
		{role: RoleDB, wantSvc: 10 * time.Minute, wantOS: 30 * time.Minute, wantDown: 55 * time.Minute},
	}
	for _, tt := range tests {
		t.Run(tt.role, func(t *testing.T) {
			p, plan, err := ServerParams(db, tt.role, patch.CriticalPolicy(), patch.MonthlySchedule())
			if err != nil {
				t.Fatal(err)
			}
			if p.SvcPatchTime != tt.wantSvc {
				t.Errorf("SvcPatchTime = %v, want %v", p.SvcPatchTime, tt.wantSvc)
			}
			if p.OSPatchTime != tt.wantOS {
				t.Errorf("OSPatchTime = %v, want %v", p.OSPatchTime, tt.wantOS)
			}
			if got := plan.TotalDowntime(); got != tt.wantDown {
				t.Errorf("TotalDowntime = %v, want %v", got, tt.wantDown)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("params invalid: %v", err)
			}
		})
	}
}

func TestDatasetSize(t *testing.T) {
	db := VulnDB()
	// 15 distinct Table I CVEs (CVE-2016-4997 shared) + 5 OS criticals
	// + 4 alt-web-stack records.
	if db.Len() != 24 {
		t.Errorf("dataset size = %d, want 24", db.Len())
	}
	if got := len(db.Critical(8.0)); got != 16 {
		// 9 critical exploitable (v1dns, v1-3web, v1-3app, v1db, v2db)
		// + 5 critical non-exploitable OS records + 2 alt-web criticals.
		t.Errorf("critical records = %d, want 16", got)
	}
}

// TestAltWebStack verifies the heterogeneity extension's dataset: tree
// structure, after-patch chain, and the 30-minute patch window.
func TestAltWebStack(t *testing.T) {
	db := VulnDB()
	tr := AltWebTree(db)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "OR(CVE-2016-4450, AND(CVE-2016-5385, CVE-2016-4557))" {
		t.Errorf("alt web tree = %s", got)
	}
	// The Apache stack and the Nginx stack must share no vulnerability.
	apache, err := VulnsForRole(db, RoleWeb)
	if err != nil {
		t.Fatal(err)
	}
	nginx, err := VulnsForRole(db, RoleWebAlt)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, v := range apache {
		seen[v.ID] = true
	}
	for _, v := range nginx {
		if seen[v.ID] {
			t.Errorf("stacks share %s; heterogeneity requires disjoint vulnerabilities", v.ID)
		}
	}
	// Patch window: 1 critical service vuln + 1 critical OS vuln = 30 min.
	_, plan, err := ServerParams(db, RoleWebAlt, patch.CriticalPolicy(), patch.MonthlySchedule())
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.TotalDowntime(); got != 30*time.Minute {
		t.Errorf("alt web downtime = %v, want 30m", got)
	}
	// After the critical patch the surviving chain has probability
	// 0.86 * 0.39.
	pruned := tr.Prune(func(l *attacktree.Leaf) bool {
		v, ok := db.ByID(l.Ref)
		return ok && !v.IsCritical(8.0)
	})
	if got := pruned.Probability(attacktree.ORMax); !mathx.AlmostEqual(got, 0.86*0.39, 1e-12) {
		t.Errorf("alt web after-patch probability = %v, want %v", got, 0.86*0.39)
	}
}

func TestSpecQuotient(t *testing.T) {
	spec := DesignSpec{
		Name: "het",
		Tiers: []TierSpec{
			{Role: RoleDNS, Replicas: 2},
			{Role: RoleWeb, Replicas: 3},
			{Role: RoleWeb, Replicas: 2, Variant: RoleWebAlt},
			{Role: RoleWeb, Replicas: 1}, // same stack as the first web group: merges
			{Role: RoleApp, Replicas: 4},
			{Role: RoleDB, Replicas: 2},
		},
	}
	quotient, mult, structure, err := SpecQuotient(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(quotient.Tiers) != 5 {
		t.Fatalf("quotient tiers = %d, want 5 (web groups merged)", len(quotient.Tiers))
	}
	for _, tier := range quotient.Tiers {
		if tier.Replicas != 1 {
			t.Errorf("quotient tier %s has %d replicas, want 1", tier.Role, tier.Replicas)
		}
	}
	want := map[string]int{"dns1": 2, "web1": 4, "webalt1": 2, "app1": 4, "db1": 2}
	if !reflect.DeepEqual(mult, want) {
		t.Errorf("mult = %v, want %v", mult, want)
	}

	// The structure key is replica-independent: scaling any group leaves
	// it unchanged, while changing the variant set does not.
	scaled := spec
	scaled.Tiers = append([]TierSpec(nil), spec.Tiers...)
	scaled.Tiers[1].Replicas = 1
	scaled.Tiers[4].Replicas = 2
	_, _, scaledStructure, err := SpecQuotient(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if scaledStructure != structure {
		t.Errorf("structure changed with replica counts: %q != %q", scaledStructure, structure)
	}
	homogeneous := Design{Name: "h", DNS: 2, Web: 3, App: 4, DB: 2}.Spec()
	_, _, homStructure, err := SpecQuotient(homogeneous)
	if err != nil {
		t.Fatal(err)
	}
	if homStructure == structure {
		t.Error("variant and homogeneous specs must not share a structure key")
	}

	// The quotient topology names match the multiplicity keys.
	top, err := SpecTopology(quotient)
	if err != nil {
		t.Fatal(err)
	}
	for name := range want {
		if _, ok := top.Node(name); !ok {
			t.Errorf("quotient topology missing class host %q", name)
		}
	}
	if _, _, _, err := SpecQuotient(DesignSpec{}); err == nil {
		t.Error("invalid spec should fail")
	}
}
