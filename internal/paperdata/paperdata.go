// Package paperdata curates the inputs of the paper's case study: the
// Table I vulnerabilities with CVSS v2 vectors chosen to reproduce the
// published impact and attack-success-probability values, the critical
// OS vulnerabilities whose counts the paper states or implies (two for
// Windows Server 2012 R2; one critical RHEL flaw doubles as v1web; three
// for Oracle Linux 7, shared by the application and database servers),
// the attack-tree structures of Fig. 3, the example network of Fig. 2
// parameterized by redundancy design, and the Table IV timing parameters.
//
// Where the paper's Table I deviates from NVD (it lists the Windows DNS
// flaw CVE-2016-3227 with attack success probability 1.0 where NVD's
// vector implies 0.86), this dataset follows the paper, since reproducing
// its numbers is the point; every such curation is noted on the record.
package paperdata

import (
	"fmt"

	"redpatch/internal/attacktree"
	"redpatch/internal/availability"
	"redpatch/internal/cvss"
	"redpatch/internal/patch"
	"redpatch/internal/topology"
	"redpatch/internal/vulndb"
)

// Products of the example network's software stacks.
const (
	ProductMicrosoftDNS = "Microsoft DNS"
	ProductWindows      = "Windows Server 2012 R2"
	ProductApache       = "Apache HTTP"
	ProductRHEL         = "Red Hat Enterprise Linux"
	ProductWebLogic     = "Oracle WebLogic"
	ProductOracleLinux  = "Oracle Linux 7"
	ProductMySQL        = "MySQL"

	// The alternative web stack used by the heterogeneous-redundancy
	// extension (paper §V): a different web server on a different OS, so
	// a replica pair shares no vulnerability.
	ProductNginx  = "Nginx"
	ProductUbuntu = "Ubuntu Server 16.04"
)

// Server roles of the example network.
const (
	RoleDNS = "dns"
	RoleWeb = "web"
	RoleApp = "app"
	RoleDB  = "db"
	// RoleWebAlt is the alternative web stack for heterogeneous
	// redundancy studies; it serves the same logical tier as RoleWeb.
	RoleWebAlt = "webalt"
)

// Roles lists the four server roles in tier order.
func Roles() []string { return []string{RoleDNS, RoleWeb, RoleApp, RoleDB} }

// RoleSpec names the software stack of a server role.
type RoleSpec struct {
	Role           string
	ServiceProduct string
	OSProduct      string
}

// Catalog returns the role-to-stack mapping of the paper's §III-A plus
// the alternative web stack of the heterogeneity extension.
func Catalog() []RoleSpec {
	return []RoleSpec{
		{Role: RoleDNS, ServiceProduct: ProductMicrosoftDNS, OSProduct: ProductWindows},
		{Role: RoleWeb, ServiceProduct: ProductApache, OSProduct: ProductRHEL},
		{Role: RoleApp, ServiceProduct: ProductWebLogic, OSProduct: ProductOracleLinux},
		{Role: RoleDB, ServiceProduct: ProductMySQL, OSProduct: ProductOracleLinux},
		{Role: RoleWebAlt, ServiceProduct: ProductNginx, OSProduct: ProductUbuntu},
	}
}

const (
	fullRemote = "AV:N/AC:L/Au:N/C:C/I:C/A:C" // impact 10.0, ASP 1.00, base 10.0
	localFull  = "AV:L/AC:L/Au:N/C:C/I:C/A:C" // impact 10.0, ASP 0.39, base 7.2
	mediumFull = "AV:N/AC:M/Au:N/C:C/I:C/A:C" // impact 10.0, ASP 0.86, base 9.3
)

// VulnDB returns the curated vulnerability database: the sixteen distinct
// CVEs of Table I (CVE-2016-4997 appears there twice, as v5app and v5db,
// because the application and database servers share Oracle Linux 7) plus
// the five non-exploitable critical OS vulnerabilities that only matter
// for patch durations.
func VulnDB() *vulndb.DB {
	db := vulndb.New()
	add := func(id, product string, comp vulndb.Component, vector string, exploitable bool, desc string) {
		db.MustAdd(vulndb.Vulnerability{
			ID:          id,
			Product:     product,
			Component:   comp,
			Vector:      cvss.MustParse(vector),
			Exploitable: exploitable,
			Description: desc,
		})
	}

	// DNS server (Table I row v1dns). The paper lists ASP 1.0, so the
	// vector is curated to AV:N/AC:L (NVD scores this CVE AC:M).
	add("CVE-2016-3227", ProductMicrosoftDNS, vulndb.ComponentService, fullRemote, true,
		"Windows DNS server use-after-free RCE (paper v1dns)")

	// Web server: Apache HTTP stack on RHEL (rows v1web..v5web).
	add("CVE-2016-4448", ProductRHEL, vulndb.ComponentOS, fullRemote, true,
		"libxml2 format string flaw in the web host OS image (paper v1web)")
	add("CVE-2015-4602", ProductApache, vulndb.ComponentService, fullRemote, true,
		"web stack incomplete-class unserialize RCE (paper v2web)")
	add("CVE-2015-4603", ProductApache, vulndb.ComponentService, fullRemote, true,
		"web stack exception::getTraceAsString type-confusion RCE (paper v3web)")
	add("CVE-2016-4979", ProductApache, vulndb.ComponentService, "AV:N/AC:L/Au:N/C:P/I:N/A:N", true,
		"Apache HTTP/2 X.509 client-certificate bypass (paper v4web)")
	add("CVE-2016-4805", ProductRHEL, vulndb.ComponentOS, localFull, true,
		"Linux kernel ppp use-after-free local privilege escalation (paper v5web)")

	// Application server: Oracle WebLogic on Oracle Linux 7 (v1app..v5app).
	add("CVE-2016-3586", ProductWebLogic, vulndb.ComponentService, fullRemote, true,
		"WebLogic remote code execution (paper v1app)")
	add("CVE-2016-3510", ProductWebLogic, vulndb.ComponentService, fullRemote, true,
		"WebLogic T3 deserialization RCE (paper v2app)")
	add("CVE-2016-3499", ProductWebLogic, vulndb.ComponentService, fullRemote, true,
		"WebLogic servlet runtime flaw (paper v3app)")
	add("CVE-2016-0638", ProductWebLogic, vulndb.ComponentService, "AV:N/AC:L/Au:N/C:P/I:P/A:P", true,
		"WebLogic JMS deserialization (paper v4app)")
	add("CVE-2016-4997", ProductOracleLinux, vulndb.ComponentOS, localFull, true,
		"Linux kernel netfilter local privilege escalation (paper v5app and v5db)")

	// Database server: MySQL on Oracle Linux 7 (v1db..v4db; v5db above).
	add("CVE-2016-6662", ProductMySQL, vulndb.ComponentService, fullRemote, true,
		"MySQL logging remote root code execution (paper v1db)")
	add("CVE-2016-0639", ProductMySQL, vulndb.ComponentService, fullRemote, true,
		"MySQL protocol remote compromise (paper v2db)")
	add("CVE-2015-3152", ProductMySQL, vulndb.ComponentService, "AV:N/AC:M/Au:N/C:P/I:N/A:N", true,
		"MySQL BACKRONYM SSL downgrade (paper v3db)")
	add("CVE-2016-3471", ProductMySQL, vulndb.ComponentService, localFull, true,
		"MySQL server option parsing local escalation (paper v4db)")

	// Critical OS vulnerabilities that are patched but not remotely
	// exploitable for privilege gain; the paper states the Windows count
	// (two) and the Oracle Linux count (three) follows from Table V.
	add("CVE-2016-3213", ProductWindows, vulndb.ComponentOS, mediumFull, false,
		"Windows WPAD elevation; critical OS patch on the DNS host")
	add("CVE-2016-3299", ProductWindows, vulndb.ComponentOS, mediumFull, false,
		"Windows PDF library RCE; critical OS patch on the DNS host")
	add("CVE-2016-2108", ProductOracleLinux, vulndb.ComponentOS, fullRemote, false,
		"OpenSSL ASN.1 negative-zero memory corruption; critical OS patch")
	add("CVE-2016-0799", ProductOracleLinux, vulndb.ComponentOS, fullRemote, false,
		"OpenSSL BIO_printf memory issue; critical OS patch")
	add("CVE-2016-2842", ProductOracleLinux, vulndb.ComponentOS, fullRemote, false,
		"OpenSSL doapr_outch memory issue; critical OS patch")

	// Alternative web stack (Nginx on Ubuntu) for heterogeneous
	// redundancy studies: no vulnerability shared with the Apache/RHEL
	// stack.
	add("CVE-2016-4450", ProductNginx, vulndb.ComponentService, fullRemote, true,
		"nginx chunked-body NULL write; curated remote compromise of the alt web stack")
	add("CVE-2016-5385", ProductNginx, vulndb.ComponentService, "AV:N/AC:M/Au:N/C:P/I:P/A:P", true,
		"httpoxy request-header proxy poisoning; foothold on the alt web stack")
	add("CVE-2016-4557", ProductUbuntu, vulndb.ComponentOS, localFull, true,
		"Linux BPF double-fdput local privilege escalation")
	add("CVE-2016-1583", ProductUbuntu, vulndb.ComponentOS, mediumFull, false,
		"ecryptfs stack overflow; critical OS patch on the alt web host")

	return db
}

// AltWebTree returns the attack tree of the alternative web stack:
// OR(remote nginx compromise, AND(httpoxy foothold, local privilege
// escalation)). After the critical patch only the AND chain survives,
// with success probability 0.86 x 0.39 — different from the Apache
// stack's 0.39, which is the point of heterogeneity.
func AltWebTree(db *vulndb.DB) *attacktree.Tree {
	return attacktree.New(attacktree.NewOR(
		leaf(db, "CVE-2016-4450"),
		attacktree.NewAND(
			leaf(db, "CVE-2016-5385"),
			leaf(db, "CVE-2016-4557"),
		),
	))
}

// VulnsForRole returns every vulnerability affecting the given role's
// service and OS products.
func VulnsForRole(db *vulndb.DB, role string) ([]vulndb.Vulnerability, error) {
	for _, spec := range Catalog() {
		if spec.Role != role {
			continue
		}
		out := append(db.ByProduct(spec.ServiceProduct), db.ByProduct(spec.OSProduct)...)
		return out, nil
	}
	return nil, fmt.Errorf("paperdata: unknown role %q", role)
}

// leaf builds an attack-tree leaf from a database record.
func leaf(db *vulndb.DB, id string) *attacktree.Leaf {
	v, ok := db.ByID(id)
	if !ok {
		panic(fmt.Sprintf("paperdata: vulnerability %s missing from dataset", id))
	}
	return attacktree.NewLeaf(v.ID, v.Impact(), v.ASP())
}

// Trees returns the Fig. 3 attack-tree templates per role, with leaf
// values derived from the CVSS vectors (reproducing Table I), plus the
// alternative web stack's tree keyed by RoleWebAlt so variant-aware
// designs resolve their trees from the same map. Extra templates are
// inert for designs that deploy no host of that role.
func Trees(db *vulndb.DB) map[string]*attacktree.Tree {
	return map[string]*attacktree.Tree{
		RoleWebAlt: AltWebTree(db),
		RoleDNS: attacktree.New(attacktree.NewOR(
			leaf(db, "CVE-2016-3227"),
		)),
		RoleWeb: attacktree.New(attacktree.NewOR(
			leaf(db, "CVE-2016-4448"),
			leaf(db, "CVE-2015-4602"),
			leaf(db, "CVE-2015-4603"),
			attacktree.NewAND(
				leaf(db, "CVE-2016-4979"),
				leaf(db, "CVE-2016-4805"),
			),
		)),
		RoleApp: attacktree.New(attacktree.NewOR(
			leaf(db, "CVE-2016-3586"),
			leaf(db, "CVE-2016-3510"),
			leaf(db, "CVE-2016-3499"),
			attacktree.NewAND(
				leaf(db, "CVE-2016-0638"),
				leaf(db, "CVE-2016-4997"),
			),
		)),
		RoleDB: attacktree.New(attacktree.NewOR(
			leaf(db, "CVE-2016-6662"),
			leaf(db, "CVE-2016-0639"),
			attacktree.NewAND(
				leaf(db, "CVE-2015-3152"),
				leaf(db, "CVE-2016-3471"),
			),
			leaf(db, "CVE-2016-4997"),
		)),
	}
}

// Design is a redundancy configuration: replica counts per tier.
type Design struct {
	Name string
	DNS  int
	Web  int
	App  int
	DB   int
}

// Counts returns the per-role replica counts as a map.
func (d Design) Counts() map[string]int {
	return map[string]int{RoleDNS: d.DNS, RoleWeb: d.Web, RoleApp: d.App, RoleDB: d.DB}
}

// Total returns the number of servers in the design.
func (d Design) Total() int { return d.DNS + d.Web + d.App + d.DB }

// DefaultName renders the canonical compact name of a design tuple
// ("1d2w2a1b") — the one naming scheme shared by design enumeration and
// the evaluation service.
func DefaultName(dns, web, app, db int) string {
	return fmt.Sprintf("%dd%dw%da%db", dns, web, app, db)
}

// String renders the design in the paper's notation.
func (d Design) String() string {
	return fmt.Sprintf("%d DNS + %d WEB + %d APP + %d DB", d.DNS, d.Web, d.App, d.DB)
}

// Validate checks the design has at least one server per tier.
func (d Design) Validate() error {
	if d.DNS < 1 || d.Web < 1 || d.App < 1 || d.DB < 1 {
		return fmt.Errorf("paperdata: design %s must have at least one server per tier", d)
	}
	return nil
}

// Designs returns the five design choices compared in the paper's §IV.
func Designs() []Design {
	return []Design{
		{Name: "D1", DNS: 1, Web: 1, App: 1, DB: 1},
		{Name: "D2", DNS: 2, Web: 1, App: 1, DB: 1},
		{Name: "D3", DNS: 1, Web: 2, App: 1, DB: 1},
		{Name: "D4", DNS: 1, Web: 1, App: 2, DB: 1},
		{Name: "D5", DNS: 1, Web: 1, App: 1, DB: 2},
	}
}

// BaseDesign returns the case-study network of §III-A: active-active web
// and application clusters (1 DNS + 2 WEB + 2 APP + 1 DB).
func BaseDesign() Design {
	return Design{Name: "base", DNS: 1, Web: 2, App: 2, DB: 1}
}

// Topology builds the Fig. 2 network for a redundancy design: the
// attacker can reach the DNS DMZ and the web DMZ through the external
// firewall; web servers reach the application tier and application
// servers reach the database tier through the internal firewall; the DNS
// server can also be used as a stepping stone to the web tier (Fig. 3a).
// It is the classic 4-tuple view of SpecTopology.
func Topology(d Design) (*topology.Topology, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return SpecTopology(d.Spec())
}

// ServerParams computes the availability-model parameters of a role:
// Table IV failure/recovery rates plus patch windows derived from the
// role's critical vulnerabilities under the given policy and schedule.
func ServerParams(db *vulndb.DB, role string, pol patch.Policy, sch patch.Schedule) (availability.ServerParams, patch.Plan, error) {
	vulns, err := VulnsForRole(db, role)
	if err != nil {
		return availability.ServerParams{}, patch.Plan{}, err
	}
	plan, err := patch.Compute(role, vulns, pol, sch)
	if err != nil {
		return availability.ServerParams{}, patch.Plan{}, err
	}
	p := availability.DefaultRates(role)
	p.SvcPatchTime = plan.ServicePatchTime
	p.OSPatchTime = plan.OSPatchTime
	p.OSReboot = sch.OSReboot
	p.SvcReboot = sch.ServiceReboot
	p.PatchInterval = sch.Interval
	return p, plan, nil
}
