package paperdata

import "fmt"

// Mid-rollout a replica class is mixed-version: some replicas already
// run the patched stack, the rest still run the unpatched one. The
// replica-symmetry argument behind SpecQuotient survives the split —
// within each sub-population the replicas are still identical and
// identically connected — so a rollout point quotients to at most two
// classes per (logical tier, stack) pair instead of one.

// RolloutQuotient is the mixed-version quotient of a design at one
// rollout point.
type RolloutQuotient struct {
	// Quotient is the sub-classed quotient spec: one single-replica tier
	// group per (logical tier, stack, patch-state) class. A class whose
	// patched count is 0 or its full size contributes one group; a mixed
	// class contributes two (unpatched first, then patched), wired
	// identically by SpecTopology since they share role and stack.
	Quotient DesignSpec
	// Mult maps the quotient topology's class host names to sub-class
	// multiplicities (replica counts).
	Mult map[string]int
	// PatchedHosts maps the host names of patched sub-classes to their
	// stack, for per-instance tree pruning downstream.
	PatchedHosts map[string]string
	// Structure is the replica-independent rollout structure key. The
	// quotient spec's own key cannot distinguish which of two duplicate
	// groups is the patched one, so the patch-state pattern is appended.
	Structure string
}

// LogicalIndices returns, for each logical tier in Logical() order, the
// spec.Tiers indices of its groups — the original-index companion of
// Logical(), for mapping per-group data (rollout fractions, patched
// counts) kept in spec order onto the logical layering.
func (s DesignSpec) LogicalIndices() [][]int {
	index := make(map[string]int)
	var out [][]int
	for i, t := range s.Tiers {
		j, ok := index[t.Role]
		if !ok {
			j = len(out)
			index[t.Role] = j
			out = append(out, nil)
		}
		out[j] = append(out[j], i)
	}
	return out
}

// SpecRolloutQuotient collapses a spec's replicas into mixed-version
// classes at one rollout point: patched[i] of spec.Tiers[i]'s replicas
// run the patched stack. Per (logical tier, stack) class the patched
// counts of its groups merge; a class split by the rollout yields two
// quotient groups (unpatched, then patched). The degenerate points —
// all-zero and all-full patched counts — reproduce SpecQuotient's
// quotient spec, host names and multiplicities exactly, so the rollout
// path collapses to the atomic one at both endpoints.
func SpecRolloutQuotient(spec DesignSpec, patched []int) (RolloutQuotient, error) {
	if err := spec.Validate(); err != nil {
		return RolloutQuotient{}, err
	}
	if len(patched) != len(spec.Tiers) {
		return RolloutQuotient{}, fmt.Errorf("paperdata: design spec %q: %d patched counts for %d tiers",
			spec.Name, len(patched), len(spec.Tiers))
	}
	for i, p := range patched {
		if p < 0 || p > spec.Tiers[i].Replicas {
			return RolloutQuotient{}, fmt.Errorf("paperdata: design spec %q: tier %s: %d patched of %d replicas",
				spec.Name, spec.Tiers[i].label(), p, spec.Tiers[i].Replicas)
		}
	}

	quotient := DesignSpec{Name: spec.Name + "/rollout"}
	var counts []int     // sub-class multiplicities, in quotient tier order
	var isPatched []bool // patch state per quotient tier
	var markers []byte   // 'u'/'p' pattern appended to the structure key
	for _, idxs := range spec.LogicalIndices() {
		role := spec.Tiers[idxs[0]].Role
		type agg struct{ total, patched int }
		classes := make(map[string]*agg, len(idxs))
		var order []string
		for _, i := range idxs {
			g := spec.Tiers[i]
			stack := g.Stack()
			a, ok := classes[stack]
			if !ok {
				a = &agg{}
				classes[stack] = a
				order = append(order, stack)
			}
			a.total += g.Replicas
			a.patched += patched[i]
		}
		for _, stack := range order {
			a := classes[stack]
			variant := ""
			if stack != role {
				variant = stack
			}
			appendClass := func(n int, p bool) {
				quotient.Tiers = append(quotient.Tiers, TierSpec{Role: role, Replicas: 1, Variant: variant})
				counts = append(counts, n)
				isPatched = append(isPatched, p)
				if p {
					markers = append(markers, 'p')
				} else {
					markers = append(markers, 'u')
				}
			}
			switch {
			case a.patched == 0:
				appendClass(a.total, false)
			case a.patched == a.total:
				appendClass(a.total, true)
			default:
				appendClass(a.total-a.patched, false)
				appendClass(a.patched, true)
			}
		}
	}

	// Class host names replay SpecTopology's stack-keyed counter over the
	// quotient spec; the duplicate groups of a split class get consecutive
	// numbers ("web1" unpatched, "web2" patched). Logical() preserves the
	// append order — roles were appended contiguously in first-appearance
	// order — so the flat index gi walks the tiers exactly as built.
	rq := RolloutQuotient{
		Quotient:     quotient,
		Mult:         make(map[string]int, len(quotient.Tiers)),
		PatchedHosts: make(map[string]string),
		Structure:    quotient.Key() + "|" + string(markers),
	}
	counter := make(map[string]int)
	gi := 0
	for _, lt := range quotient.Logical() {
		for _, g := range lt.Groups {
			stack := g.Stack()
			counter[stack]++
			name := fmt.Sprintf("%s%d", stack, counter[stack])
			rq.Mult[name] = counts[gi]
			if isPatched[gi] {
				rq.PatchedHosts[name] = stack
			}
			gi++
		}
	}
	return rq, nil
}
