package paperdata

import (
	"fmt"
	"hash/fnv"
	"strings"

	"redpatch/internal/topology"
)

// TierSpec is one redundancy group of a role-keyed design: Replicas
// servers serving the logical tier Role. Variant, when non-empty, selects
// an alternate software stack for the group (e.g. RoleWebAlt for a web
// tier) with its own vulnerability set and patch plan; empty means the
// role's own stack. Several TierSpecs may share a Role — they then form
// one heterogeneous logical tier (the paper's §V variant deployment),
// available while any server across the groups is up.
type TierSpec struct {
	Role     string
	Replicas int
	Variant  string
}

// Stack returns the software-stack role the group's servers run: the
// variant when one is set (and differs from the role), the role itself
// otherwise.
func (t TierSpec) Stack() string {
	if t.Variant != "" && t.Variant != t.Role {
		return t.Variant
	}
	return t.Role
}

// label renders the tier for names and keys: "role" or "role/variant".
func (t TierSpec) label() string {
	if s := t.Stack(); s != t.Role {
		return t.Role + "/" + s
	}
	return t.Role
}

// DesignSpec is a role-keyed redundancy design: an ordered list of tier
// groups. It generalizes the paper's fixed (DNS, Web, App, DB) tuple to
// arbitrary tier chains and heterogeneous variants; Design.Spec converts
// the classic tuple into the canonical four-tier spec.
type DesignSpec struct {
	Name  string
	Tiers []TierSpec
}

// Spec converts the classic 4-int design into its role-keyed equivalent.
func (d Design) Spec() DesignSpec {
	return DesignSpec{Name: d.Name, Tiers: []TierSpec{
		{Role: RoleDNS, Replicas: d.DNS},
		{Role: RoleWeb, Replicas: d.Web},
		{Role: RoleApp, Replicas: d.App},
		{Role: RoleDB, Replicas: d.DB},
	}}
}

// KnownStack reports whether the catalog names a software stack for the
// role.
func KnownStack(role string) bool {
	for _, spec := range Catalog() {
		if spec.Role == role {
			return true
		}
	}
	return false
}

// Validate checks the spec: at least one tier, at least one replica per
// group, and every stack (role or variant) present in the catalog, since
// evaluation needs the stack's vulnerabilities and patch plan.
func (s DesignSpec) Validate() error {
	if len(s.Tiers) == 0 {
		return fmt.Errorf("paperdata: design spec %q has no tiers", s.Name)
	}
	for i, t := range s.Tiers {
		if t.Role == "" {
			return fmt.Errorf("paperdata: design spec %q: tier %d has no role", s.Name, i)
		}
		if t.Replicas < 1 {
			return fmt.Errorf("paperdata: design spec %q: tier %s needs at least one replica, have %d",
				s.Name, t.label(), t.Replicas)
		}
		if !KnownStack(t.Stack()) {
			return fmt.Errorf("paperdata: design spec %q: tier %s uses unknown stack %q",
				s.Name, t.Role, t.Stack())
		}
	}
	return nil
}

// Total returns the number of servers in the spec.
func (s DesignSpec) Total() int {
	n := 0
	for _, t := range s.Tiers {
		n += t.Replicas
	}
	return n
}

// Key is the canonical cache identity of the spec: tier order, roles,
// variants and replica counts — everything that changes the models — and
// deliberately not the name, so renaming a design never misses the cache.
func (s DesignSpec) Key() string {
	parts := make([]string, len(s.Tiers))
	for i, t := range s.Tiers {
		parts[i] = fmt.Sprintf("%s:%d", t.label(), t.Replicas)
	}
	return strings.Join(parts, ";")
}

// ShardIndex maps a spec cache key (DesignSpec.Key) onto one of count
// hash partitions. Sharded sweeps partition the design space with it:
// because the hash is over the canonical key — not the name, not the
// enumeration order — every participant (coordinator, workers, local
// fallback) assigns a design to the same shard regardless of how the
// sweep was enumerated. count < 2 means "unsharded": everything lands
// in shard 0.
func ShardIndex(key string, count int) int {
	if count < 2 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(count))
}

// String renders the spec in the paper's notation, e.g.
// "1 DNS + 2 WEB + 2 APP + 1 DB"; variant groups render as
// "1 WEB/WEBALT".
func (s DesignSpec) String() string {
	parts := make([]string, len(s.Tiers))
	for i, t := range s.Tiers {
		parts[i] = fmt.Sprintf("%d %s", t.Replicas, strings.ToUpper(t.label()))
	}
	return strings.Join(parts, " + ")
}

// classic reports whether the spec is exactly the homogeneous
// (DNS, Web, App, DB) tuple, returning it when so.
func (s DesignSpec) classic() (Design, bool) {
	if len(s.Tiers) != 4 {
		return Design{}, false
	}
	for i, role := range Roles() {
		t := s.Tiers[i]
		if t.Role != role || t.Stack() != role {
			return Design{}, false
		}
	}
	return Design{
		Name: s.Name,
		DNS:  s.Tiers[0].Replicas,
		Web:  s.Tiers[1].Replicas,
		App:  s.Tiers[2].Replicas,
		DB:   s.Tiers[3].Replicas,
	}, true
}

// CanonicalName is the compact default name of a spec: the classic
// "1d2w2a1b" scheme for homogeneous four-tier designs (shared with the
// 4-int API), and a role-keyed "1dns-2web/webalt-..." form otherwise.
func (s DesignSpec) CanonicalName() string {
	if d, ok := s.classic(); ok {
		return DefaultName(d.DNS, d.Web, d.App, d.DB)
	}
	parts := make([]string, len(s.Tiers))
	for i, t := range s.Tiers {
		parts[i] = fmt.Sprintf("%d%s", t.Replicas, t.label())
	}
	return strings.Join(parts, "-")
}

// LogicalTier is one logical service tier of a spec: every group sharing
// one role, in spec order.
type LogicalTier struct {
	Role   string
	Groups []TierSpec
}

// Logical groups the spec's tiers by role in first-appearance order. The
// chain of logical tiers defines the network layering; groups within one
// logical tier are redundant alternatives for the same service.
func (s DesignSpec) Logical() []LogicalTier {
	index := make(map[string]int)
	var out []LogicalTier
	for _, t := range s.Tiers {
		i, ok := index[t.Role]
		if !ok {
			i = len(out)
			index[t.Role] = i
			out = append(out, LogicalTier{Role: t.Role})
		}
		out[i].Groups = append(out[i].Groups, t)
	}
	return out
}

// TargetStacks returns the distinct stack roles of the last logical tier
// — the attacker's goal hosts (the database servers in the paper).
func (s DesignSpec) TargetStacks() []string {
	logical := s.Logical()
	if len(logical) == 0 {
		return nil
	}
	last := logical[len(logical)-1]
	seen := make(map[string]bool, len(last.Groups))
	var out []string
	for _, g := range last.Groups {
		if stack := g.Stack(); !seen[stack] {
			seen[stack] = true
			out = append(out, stack)
		}
	}
	return out
}

// SpecQuotient collapses a spec's replicas into classes: one host per
// (logical tier, stack) pair. It returns the quotient spec (every class
// at one replica, groups of one tier sharing a stack merged), the class
// multiplicities keyed by the quotient topology's host names, and the
// replica-independent structure key. Two specs that differ only in
// replica counts share the structure key — and therefore, downstream,
// one factored security model — while their multiplicity maps differ.
// Within a class all replicas are identical (same attack tree) and
// identically connected (SpecTopology wires tiers all-to-all), which is
// exactly the premise of harm.FactoredHARM.
func SpecQuotient(spec DesignSpec) (quotient DesignSpec, mult map[string]int, structure string, err error) {
	if err := spec.Validate(); err != nil {
		return DesignSpec{}, nil, "", err
	}
	quotient = DesignSpec{Name: spec.Name + "/quotient"}
	replicas := make(map[string]int) // per class, in quotient tier order
	for _, lt := range spec.Logical() {
		seen := make(map[string]bool, len(lt.Groups))
		for _, g := range lt.Groups {
			stack := g.Stack()
			key := lt.Role + "\x00" + stack
			if !seen[stack] {
				seen[stack] = true
				variant := ""
				if stack != lt.Role {
					variant = stack
				}
				quotient.Tiers = append(quotient.Tiers, TierSpec{Role: lt.Role, Replicas: 1, Variant: variant})
				replicas[key] = 0
			}
			replicas[key] += g.Replicas
		}
	}
	// Class host names replay SpecTopology's stack-keyed counter over the
	// quotient spec, where every class contributes exactly one host.
	mult = make(map[string]int, len(quotient.Tiers))
	counter := make(map[string]int)
	for _, lt := range quotient.Logical() {
		for _, g := range lt.Groups {
			stack := g.Stack()
			counter[stack]++
			name := fmt.Sprintf("%s%d", stack, counter[stack])
			mult[name] = replicas[lt.Role+"\x00"+stack]
		}
	}
	return quotient, mult, quotient.Key(), nil
}

// tierSubnet places a logical tier on the Fig. 2 network: the paper's
// DMZ assignments for the known roles, the intranet for everything else.
func tierSubnet(role string) string {
	switch role {
	case RoleDNS:
		return "dmz2"
	case RoleWeb, RoleWebAlt:
		return "dmz1"
	default:
		return "intranet"
	}
}

// SpecTopology builds the network of a role-keyed design, generalizing
// the paper's Fig. 2: logical tiers form a chain in spec order (every
// server of one tier reaches every server of the next), the attacker
// reaches every DMZ tier (the paper's dual entry through DNS and web),
// and — when no tier sits in a DMZ — the first tier. Server names are
// stack-keyed ("web1", "webalt1"), matching the classic Topology for
// homogeneous designs.
func SpecTopology(spec DesignSpec) (*topology.Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	top := topology.New()
	top.MustAddNode(topology.Node{Name: "attacker", Kind: topology.KindAttacker, Subnet: "internet"})

	logical := spec.Logical()
	counter := make(map[string]int)
	hosts := make([][]string, len(logical))
	for i, lt := range logical {
		subnet := tierSubnet(lt.Role)
		for _, g := range lt.Groups {
			stack := g.Stack()
			for r := 0; r < g.Replicas; r++ {
				counter[stack]++
				name := fmt.Sprintf("%s%d", stack, counter[stack])
				top.MustAddNode(topology.Node{Name: name, Kind: topology.KindHost, Subnet: subnet, Role: stack})
				hosts[i] = append(hosts[i], name)
			}
		}
	}
	connectAll := func(from, to []string) {
		for _, f := range from {
			for _, t := range to {
				top.MustConnect(f, t)
			}
		}
	}
	entered := false
	for i, lt := range logical {
		if strings.HasPrefix(tierSubnet(lt.Role), "dmz") {
			connectAll([]string{"attacker"}, hosts[i])
			entered = true
		}
	}
	if !entered {
		connectAll([]string{"attacker"}, hosts[0])
	}
	for i := 0; i+1 < len(logical); i++ {
		connectAll(hosts[i], hosts[i+1])
	}
	return top, nil
}
