package ctmc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassifyIrreducible(t *testing.T) {
	c := twoState(t, 1, 2)
	cls := c.Classify()
	if !cls.Irreducible {
		t.Error("two-state cycle should be irreducible")
	}
	if len(cls.Components) != 1 || len(cls.Components[0]) != 2 {
		t.Errorf("components = %v", cls.Components)
	}
	if len(cls.Absorbing) != 0 {
		t.Errorf("absorbing = %v, want none", cls.Absorbing)
	}
	if err := c.RequireIrreducible(); err != nil {
		t.Errorf("RequireIrreducible: %v", err)
	}
}

func TestClassifyAbsorbingChain(t *testing.T) {
	// 2 -> 1 -> 0 with no way back: three singleton components, one
	// absorbing state.
	c := New(3)
	if err := c.AddRate(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	cls := c.Classify()
	if cls.Irreducible {
		t.Error("pure death chain is reducible")
	}
	if len(cls.Components) != 3 {
		t.Errorf("components = %v, want 3 singletons", cls.Components)
	}
	if len(cls.Absorbing) != 1 || cls.Absorbing[0] != 0 {
		t.Errorf("absorbing = %v, want [0]", cls.Absorbing)
	}
	if err := c.RequireIrreducible(); err == nil {
		t.Error("RequireIrreducible should fail")
	}
}

func TestClassifyTwoIslands(t *testing.T) {
	c := New(4)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}} {
		if err := c.AddRate(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	cls := c.Classify()
	if len(cls.Components) != 2 {
		t.Errorf("components = %v, want 2", cls.Components)
	}
	total := 0
	for _, comp := range cls.Components {
		total += len(comp)
	}
	if total != 4 {
		t.Errorf("components cover %d states, want 4", total)
	}
}

// TestClassifyAgreesWithDirectSolver: an irreducible chain always has a
// Direct steady-state solution (the converse does not hold — a reducible
// unichain still has a unique stationary distribution).
func TestClassifyAgreesWithDirectSolver(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c := New(n)
		for k := 0; k < n+rng.Intn(2*n); k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				if err := c.AddRate(i, j, 0.5+rng.Float64()); err != nil {
					return false
				}
			}
		}
		irreducible := c.Classify().Irreducible
		_, err := c.SteadyState(SolveOptions{Method: Direct})
		return !irreducible || err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestComponentsPartitionStates: components always partition [0, n).
func TestComponentsPartitionStates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		c := New(n)
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				if err := c.AddRate(i, j, 1); err != nil {
					return false
				}
			}
		}
		seen := make(map[int]bool)
		for _, comp := range c.Classify().Components {
			for _, s := range comp {
				if seen[s] {
					return false
				}
				seen[s] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
