package ctmc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"redpatch/internal/mathx"
)

// twoState builds the canonical up/down availability chain with failure
// rate lambda and repair rate mu. Its stationary distribution is known in
// closed form: pi_up = mu/(lambda+mu).
func twoState(t *testing.T, lambda, mu float64) *Chain {
	t.Helper()
	c := New(2)
	if err := c.AddRate(0, 1, lambda); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(1, 0, mu); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddRateValidation(t *testing.T) {
	c := New(2)
	tests := []struct {
		name    string
		i, j    int
		rate    float64
		wantErr bool
	}{
		{name: "ok", i: 0, j: 1, rate: 1, wantErr: false},
		{name: "selfLoop", i: 0, j: 0, rate: 1, wantErr: true},
		{name: "outOfRange", i: 0, j: 5, rate: 1, wantErr: true},
		{name: "negativeRate", i: 1, j: 0, rate: -2, wantErr: true},
		{name: "zeroRate", i: 1, j: 0, rate: 0, wantErr: true},
		{name: "nanRate", i: 1, j: 0, rate: math.NaN(), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := c.AddRate(tt.i, tt.j, tt.rate)
			if (err != nil) != tt.wantErr {
				t.Errorf("AddRate(%d,%d,%v) err = %v, wantErr %v", tt.i, tt.j, tt.rate, err, tt.wantErr)
			}
		})
	}
}

func TestNewPanicsOnEmptyChain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestAddRateAfterFreeze(t *testing.T) {
	c := twoState(t, 1, 2)
	if _, err := c.SteadyState(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(0, 1, 1); err == nil {
		t.Error("AddRate after solve should fail")
	}
}

func TestTwoStateSteadyStateAllMethods(t *testing.T) {
	const lambda, mu = 0.25, 2.0
	wantUp := mu / (lambda + mu)
	for _, method := range []Method{Direct, GaussSeidel, Power, Auto} {
		c := twoState(t, lambda, mu)
		pi, err := c.SteadyState(SolveOptions{Method: method})
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		if !mathx.AlmostEqual(pi[0], wantUp, 1e-9) {
			t.Errorf("method %d: pi_up = %v, want %v", method, pi[0], wantUp)
		}
		if !mathx.AlmostEqual(pi[0]+pi[1], 1, 1e-12) {
			t.Errorf("method %d: distribution does not sum to 1", method)
		}
	}
}

// birthDeath builds an M/M/1-like chain truncated at n states with birth
// rate lambda and death rate mu; stationary pi_i proportional to rho^i.
func birthDeath(t *testing.T, n int, lambda, mu float64) *Chain {
	t.Helper()
	c := New(n)
	for i := 0; i < n-1; i++ {
		if err := c.AddRate(i, i+1, lambda); err != nil {
			t.Fatal(err)
		}
		if err := c.AddRate(i+1, i, mu); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestBirthDeathClosedForm(t *testing.T) {
	const n, lambda, mu = 8, 0.7, 1.3
	rho := lambda / mu
	var norm float64
	for i := 0; i < n; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for _, method := range []Method{Direct, GaussSeidel, Power} {
		c := birthDeath(t, n, lambda, mu)
		pi, err := c.SteadyState(SolveOptions{Method: method})
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		for i := 0; i < n; i++ {
			want := math.Pow(rho, float64(i)) / norm
			if !mathx.AlmostEqual(pi[i], want, 1e-8) {
				t.Errorf("method %d: pi[%d] = %v, want %v", method, i, pi[i], want)
			}
		}
	}
}

func TestMethodsAgreeOnRandomChains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		direct := New(n)
		gs := New(n)
		pow := New(n)
		// Ring plus random chords guarantees irreducibility.
		for i := 0; i < n; i++ {
			r := 0.1 + rng.Float64()*5
			for _, c := range []*Chain{direct, gs, pow} {
				if err := c.AddRate(i, (i+1)%n, r); err != nil {
					return false
				}
			}
			if rng.Intn(2) == 0 {
				j := rng.Intn(n)
				if j != i {
					r2 := 0.1 + rng.Float64()*5
					for _, c := range []*Chain{direct, gs, pow} {
						if err := c.AddRate(i, j, r2); err != nil {
							return false
						}
					}
				}
			}
		}
		pd, err := direct.SteadyState(SolveOptions{Method: Direct})
		if err != nil {
			return false
		}
		pg, err := gs.SteadyState(SolveOptions{Method: GaussSeidel})
		if err != nil {
			return false
		}
		pp, err := pow.SteadyState(SolveOptions{Method: Power, Tolerance: 1e-13})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !mathx.AlmostEqual(pd[i], pg[i], 1e-6) || !mathx.AlmostEqual(pd[i], pp[i], 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateBalanced(t *testing.T) {
	// Verify pi*Q = 0 numerically on a random chain.
	rng := rand.New(rand.NewSource(7))
	n := 12
	c := New(n)
	for i := 0; i < n; i++ {
		if err := c.AddRate(i, (i+1)%n, 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
		if err := c.AddRate(i, (i+3)%n, 0.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	pi, err := c.SteadyState(SolveOptions{Method: Direct})
	if err != nil {
		t.Fatal(err)
	}
	q := c.Generator()
	res := make([]float64, n)
	q.MulVecLeft(res, pi)
	for i, r := range res {
		if math.Abs(r) > 1e-10 {
			t.Errorf("residual (pi*Q)[%d] = %v, want ~0", i, r)
		}
	}
}

func TestReducibleChainDirectFails(t *testing.T) {
	// Two disconnected components: stationary distribution is not unique.
	c := New(4)
	if err := c.AddRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(3, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SteadyState(SolveOptions{Method: Direct}); err == nil {
		t.Error("Direct solve of reducible chain should fail")
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c := twoState(t, 0.5, 1.5)
	p0 := []float64{1, 0}
	pt, err := c.Transient(p0, 50)
	if err != nil {
		t.Fatal(err)
	}
	wantUp := 1.5 / 2.0
	if !mathx.AlmostEqual(pt[0], wantUp, 1e-9) {
		t.Errorf("transient at t=50: p_up = %v, want %v", pt[0], wantUp)
	}
}

func TestTransientMatchesClosedForm(t *testing.T) {
	// For the two-state chain: p_up(t) = pi_up + (1-pi_up) e^{-(l+m)t}.
	const lambda, mu = 0.4, 1.1
	c := twoState(t, lambda, mu)
	piUp := mu / (lambda + mu)
	for _, tm := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		pt, err := c.Transient([]float64{1, 0}, tm)
		if err != nil {
			t.Fatal(err)
		}
		want := piUp + (1-piUp)*math.Exp(-(lambda+mu)*tm)
		if !mathx.AlmostEqual(pt[0], want, 1e-9) {
			t.Errorf("p_up(%v) = %v, want %v", tm, pt[0], want)
		}
	}
}

func TestTransientValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.Transient([]float64{1}, 1); err == nil {
		t.Error("wrong-length p0 should fail")
	}
	if _, err := c.Transient([]float64{1, 0}, -1); err == nil {
		t.Error("negative time should fail")
	}
}

func TestTransientPreservesProbability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := New(n)
		for i := 0; i < n; i++ {
			if err := c.AddRate(i, (i+1)%n, 0.2+rng.Float64()*3); err != nil {
				return false
			}
		}
		p0 := make([]float64, n)
		p0[rng.Intn(n)] = 1
		pt, err := c.Transient(p0, rng.Float64()*10)
		if err != nil {
			return false
		}
		return mathx.AlmostEqual(mathx.KahanSum(pt), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatedProbabilityMatchesClosedForm(t *testing.T) {
	// Two-state chain: L_up(t) = pi_up*t + (1-pi_up)(1-e^{-(l+m)t})/(l+m)
	// starting from up.
	const lambda, mu = 0.4, 1.1
	c := twoState(t, lambda, mu)
	piUp := mu / (lambda + mu)
	rate := lambda + mu
	for _, tm := range []float64{0.1, 0.5, 1, 3, 10} {
		l, err := c.AccumulatedProbability([]float64{1, 0}, tm)
		if err != nil {
			t.Fatal(err)
		}
		want := piUp*tm + (1-piUp)*(1-math.Exp(-rate*tm))/rate
		if !mathx.AlmostEqual(l[0], want, 1e-8) {
			t.Errorf("L_up(%v) = %v, want %v", tm, l[0], want)
		}
		// Occupancies over [0, t] must sum to t.
		if !mathx.AlmostEqual(l[0]+l[1], tm, 1e-8) {
			t.Errorf("sum L(%v) = %v, want %v", tm, l[0]+l[1], tm)
		}
	}
}

func TestAccumulatedProbabilityEdgeCases(t *testing.T) {
	c := twoState(t, 1, 1)
	l, err := c.AccumulatedProbability([]float64{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l[0] != 0 || l[1] != 0 {
		t.Error("L(0) must be zero")
	}
	if _, err := c.AccumulatedProbability([]float64{1}, 1); err == nil {
		t.Error("wrong-length p0 should fail")
	}
	if _, err := c.AccumulatedProbability([]float64{1, 0}, -1); err == nil {
		t.Error("negative t should fail")
	}
}

func TestIntervalRewardConvergesToSteadyState(t *testing.T) {
	const lambda, mu = 0.5, 1.5
	c := twoState(t, lambda, mu)
	reward := []float64{1, 0}
	got, err := c.IntervalReward([]float64{1, 0}, reward, 500)
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lambda + mu)
	if !mathx.AlmostEqual(got, want, 1e-3) {
		t.Errorf("interval reward over long horizon = %v, want ≈ %v", got, want)
	}
	// Short horizon from the up state: availability near 1.
	short, err := c.IntervalReward([]float64{1, 0}, reward, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if short < 0.99 {
		t.Errorf("interval reward over short horizon = %v, want ≈ 1", short)
	}
	if _, err := c.IntervalReward([]float64{1, 0}, reward, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestExpectedReward(t *testing.T) {
	got, err := ExpectedReward([]float64{0.25, 0.75}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.25 {
		t.Errorf("ExpectedReward = %v, want 0.25", got)
	}
	if _, err := ExpectedReward([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestMeanTimeToAbsorption(t *testing.T) {
	// Pure death chain 2 -> 1 -> 0 with rate mu: MTTA from state i is i/mu.
	const mu = 4.0
	c := New(3)
	if err := c.AddRate(2, 1, mu); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(1, 0, mu); err != nil {
		t.Fatal(err)
	}
	tau, err := c.MeanTimeToAbsorption([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(tau[1], 1/mu, 1e-12) || !mathx.AlmostEqual(tau[2], 2/mu, 1e-12) {
		t.Errorf("MTTA = %v, want [0 %v %v]", tau, 1/mu, 2/mu)
	}
	if tau[0] != 0 {
		t.Errorf("MTTA of absorbing state = %v, want 0", tau[0])
	}
}

func TestMeanTimeToAbsorptionValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.MeanTimeToAbsorption(nil); err == nil {
		t.Error("empty absorbing set should fail")
	}
	if _, err := c.MeanTimeToAbsorption([]int{9}); err == nil {
		t.Error("out-of-range absorbing state should fail")
	}
}

func TestValidate(t *testing.T) {
	c := twoState(t, 1, 2)
	if err := c.Validate(); err != nil {
		t.Errorf("Validate on well-formed chain: %v", err)
	}
}

func TestGeneratorRowsSumToZero(t *testing.T) {
	c := birthDeath(t, 5, 0.9, 1.4)
	q := c.Generator()
	for _, s := range q.RowSums() {
		if math.Abs(s) > 1e-12 {
			t.Errorf("generator row sum = %v, want 0", s)
		}
	}
}

func TestExitRate(t *testing.T) {
	c := New(3)
	if err := c.AddRate(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.ExitRate(0); got != 5 {
		t.Errorf("ExitRate(0) = %v, want 5", got)
	}
}

// TestWorkspaceReuseMatchesFreshSolves: solving several different chains
// through one workspace must give bit-identical results to workspace-free
// solves, and the returned vectors must not alias workspace memory.
func TestWorkspaceReuseMatchesFreshSolves(t *testing.T) {
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		build := func() *Chain {
			c := New(n)
			for i := 0; i < n; i++ {
				if err := c.AddRate(i, (i+1)%n, 0.2+rng.Float64()*3); err != nil {
					t.Fatal(err)
				}
			}
			return c
		}
		seed := rng.Int63()
		rng.Seed(seed)
		withWS := build()
		rng.Seed(seed)
		without := build()

		for _, method := range []Method{Direct, Power} {
			got, err := withWS.SteadyStateWith(ws, SolveOptions{Method: method})
			if err != nil {
				t.Fatal(err)
			}
			want, err := without.SteadyState(SolveOptions{Method: method})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d method %d: ws solve diverged at state %d: %v vs %v",
						trial, method, i, got[i], want[i])
				}
			}
			// Mutating the result must not disturb later ws solves (no
			// aliasing): stash and re-check after the next method runs.
			for i := range got {
				got[i] = -1
			}
		}

		p0 := make([]float64, n)
		p0[0] = 1
		gotT, err := withWS.TransientWith(ws, p0, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		wantT, err := without.Transient(p0, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantT {
			if gotT[i] != wantT[i] {
				t.Fatalf("trial %d: ws transient diverged at state %d", trial, i)
			}
		}
		gotL, err := withWS.AccumulatedProbabilityWith(ws, p0, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		wantL, err := without.AccumulatedProbability(p0, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantL {
			if gotL[i] != wantL[i] {
				t.Fatalf("trial %d: ws accumulated probability diverged at state %d", trial, i)
			}
		}
	}
}

// TestDirectSolveAllocations pins the satellite fix: the flat-backed
// direct solve through a warmed workspace performs O(1) allocations
// (result vector plus closure plumbing), not one per matrix row.
func TestDirectSolveAllocations(t *testing.T) {
	const n = 200
	build := func() *Chain {
		c := New(n)
		for i := 0; i < n-1; i++ {
			if err := c.AddRate(i, i+1, 1.2); err != nil {
				t.Fatal(err)
			}
			if err := c.AddRate(i+1, i, 0.8); err != nil {
				t.Fatal(err)
			}
		}
		c.freeze()
		return c
	}
	ws := NewWorkspace()
	if _, err := build().SteadyStateWith(ws, SolveOptions{Method: Direct}); err != nil {
		t.Fatal(err) // warm the workspace high-water mark
	}
	chains := make([]*Chain, 10)
	for i := range chains {
		chains[i] = build()
	}
	idx := 0
	avg := testing.AllocsPerRun(len(chains), func() {
		if _, err := chains[idx].SteadyStateWith(ws, SolveOptions{Method: Direct}); err != nil {
			t.Fatal(err)
		}
		idx = (idx + 1) % len(chains)
	})
	// The n x (n+1) system alone would be n+1 allocations in the old
	// row-slice representation; the flat path needs only the returned
	// distribution and a couple of closure headers.
	if avg > 8 {
		t.Errorf("direct solve with warm workspace averaged %.1f allocs, want <= 8", avg)
	}
}

func TestNotConvergedError(t *testing.T) {
	c := twoState(t, 1, 3)
	_, err := c.SteadyState(SolveOptions{Method: Power, Tolerance: 1e-16, MaxIter: 1})
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("expected ErrNotConverged, got %v", err)
	}
}
