package ctmc

import "fmt"

// Classification describes the communicating structure of a chain.
type Classification struct {
	// Components lists the strongly connected components in reverse
	// topological order (Tarjan's order); each component holds state
	// indices.
	Components [][]int
	// Irreducible is true when the chain has a single component.
	Irreducible bool
	// Absorbing lists states with no outgoing rate.
	Absorbing []int
}

// Classify computes the strongly connected components of the transition
// graph (Tarjan's algorithm, iterative to keep large chains off the call
// stack). Steady-state solvers require an irreducible chain; Classify
// turns the cryptic singular-matrix failure into an actionable
// diagnosis.
func (c *Chain) Classify() Classification {
	c.freeze()
	n := c.n

	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		cls     Classification
		counter int
	)

	type frame struct {
		v    int
		succ []int
		next int
	}
	succOf := func(v int) []int {
		var out []int
		c.gen.Row(v, func(j int, rate float64) {
			if rate > 0 {
				out = append(out, j)
			}
		})
		return out
	}

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root, succ: succOf(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succ: succOf(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: close the component if v is a root.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				cls.Components = append(cls.Components, comp)
			}
		}
	}

	cls.Irreducible = len(cls.Components) == 1
	for i := 0; i < n; i++ {
		if c.ExitRate(i) == 0 {
			cls.Absorbing = append(cls.Absorbing, i)
		}
	}
	return cls
}

// RequireIrreducible returns a descriptive error when the chain is not
// irreducible; steady-state callers use it to fail with a diagnosis
// instead of a singular linear system.
func (c *Chain) RequireIrreducible() error {
	cls := c.Classify()
	if cls.Irreducible {
		return nil
	}
	return fmt.Errorf("ctmc: chain is reducible: %d communicating classes, %d absorbing states",
		len(cls.Components), len(cls.Absorbing))
}
