// Package ctmc implements continuous-time Markov chain analysis: steady-
// state solution by several methods, transient solution by uniformization,
// expected reward computation, and mean time to absorption. It plays the
// role SHARPE/SPNP's numerical core plays in the paper: the stochastic
// reward nets of internal/srn are compiled into chains solved here.
package ctmc

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"redpatch/internal/mathx"
	"redpatch/internal/sparse"
)

// Chain is a finite-state CTMC under construction or analysis. States are
// dense integer indices [0, n). Rates are accumulated with AddRate and
// frozen into a generator on first solve.
type Chain struct {
	n       int
	builder *sparse.Builder
	gen     *sparse.CSR // off-diagonal rates, rows = source states
	diag    []float64   // diagonal of the generator (negative exit rates)

	// Lazy transpose of gen (Gauss-Seidel sweeps). Guarded by a Once so
	// concurrent solves on an already-frozen chain stay safe — the
	// pre-cache code built a fresh transpose per call and callers (e.g.
	// a shared srn.StateSpace) rely on that.
	incomingOnce sync.Once
	incoming     *sparse.CSR
}

// New returns a chain with n states and no transitions.
func New(n int) *Chain {
	if n <= 0 {
		panic("ctmc: chain must have at least one state")
	}
	return &Chain{n: n, builder: sparse.NewBuilder(n, n)}
}

// NumStates returns the number of states in the chain.
func (c *Chain) NumStates() int { return c.n }

// AddRate adds a transition from state i to state j with the given positive
// rate. Multiple calls for the same pair accumulate. Self loops are
// rejected: they have no effect on a CTMC's dynamics and always indicate a
// modelling error upstream.
func (c *Chain) AddRate(i, j int, rate float64) error {
	if c.builder == nil {
		return errors.New("ctmc: chain already frozen by a solve")
	}
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		return fmt.Errorf("ctmc: transition %d->%d outside state space of size %d", i, j, c.n)
	}
	if i == j {
		return fmt.Errorf("ctmc: self-loop on state %d", i)
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("ctmc: invalid rate %v for transition %d->%d", rate, i, j)
	}
	c.builder.Add(i, j, rate)
	return nil
}

// freeze assembles the off-diagonal rate matrix and the diagonal.
func (c *Chain) freeze() {
	if c.gen != nil {
		return
	}
	c.gen = c.builder.Build()
	c.builder = nil
	c.diag = make([]float64, c.n)
	sums := c.gen.RowSums()
	for i := range c.diag {
		c.diag[i] = -sums[i]
	}
}

// Generator returns the full generator matrix Q (including the diagonal) as
// a CSR matrix. Each row of Q sums to zero.
func (c *Chain) Generator() *sparse.CSR {
	c.freeze()
	b := sparse.NewBuilder(c.n, c.n)
	for i := 0; i < c.n; i++ {
		c.gen.Row(i, func(j int, v float64) { b.Add(i, j, v) })
		b.Add(i, i, c.diag[i])
	}
	return b.Build()
}

// ExitRate returns the total exit rate of state i.
func (c *Chain) ExitRate(i int) float64 {
	c.freeze()
	return -c.diag[i]
}

// Method selects the steady-state solution algorithm.
type Method int

const (
	// Auto picks Direct up to autoDirectLimit states and GaussSeidel
	// otherwise.
	Auto Method = iota + 1
	// Direct uses dense Gaussian elimination with partial pivoting on the
	// normalized balance equations. Exact up to floating point; O(n^3).
	Direct
	// GaussSeidel iterates the balance equations in place. Fast on sparse
	// chains; requires an irreducible chain to converge to the unique
	// stationary distribution.
	GaussSeidel
	// Power iterates the uniformized DTMC. Slowest but most robust.
	Power
)

// SolveOptions configures the steady-state solvers. The zero value selects
// Auto with defaults.
type SolveOptions struct {
	Method    Method
	Tolerance float64 // convergence tolerance; default 1e-12
	MaxIter   int     // iteration cap for iterative methods; default 200000
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Method == 0 {
		o.Method = Auto
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200000
	}
	return o
}

// ErrNotConverged reports that an iterative solver hit its iteration cap
// before reaching the requested tolerance.
var ErrNotConverged = errors.New("ctmc: iterative solver did not converge")

// autoDirectLimit is the state count up to which Auto selects the exact
// Direct solver. The flat-backed elimination (single allocation, row-
// pointer pivoting) made Direct cheap enough that it beats Gauss-Seidel
// convergence on chains a few hundred states larger than the previous
// [][]float64 implementation could afford.
const autoDirectLimit = 512

// SteadyState returns the stationary distribution pi with pi*Q = 0 and
// sum(pi) = 1, using the configured method.
func (c *Chain) SteadyState(opts SolveOptions) ([]float64, error) {
	return c.SteadyStateWith(nil, opts)
}

// SteadyStateWith is SteadyState drawing its scratch buffers from ws.
// A nil ws allocates per call; the returned distribution never aliases
// workspace memory.
func (c *Chain) SteadyStateWith(ws *Workspace, opts SolveOptions) ([]float64, error) {
	c.freeze()
	opts = opts.withDefaults()
	method := opts.Method
	if method == Auto {
		if c.n <= autoDirectLimit {
			method = Direct
		} else {
			method = GaussSeidel
		}
	}
	switch method {
	case Direct:
		return c.steadyDirect(ws)
	case GaussSeidel:
		return c.steadyGaussSeidel(opts)
	case Power:
		return c.steadyPower(ws, opts)
	default:
		return nil, fmt.Errorf("ctmc: unknown method %d", method)
	}
}

// steadyDirect solves Q^T pi = 0 with the last equation replaced by the
// normalization sum(pi) = 1, by Gaussian elimination with partial
// pivoting on a flat-backed augmented matrix: one backing allocation
// (reused through ws) instead of one slice per row, and pivoting swaps
// row indices instead of rows.
func (c *Chain) steadyDirect(ws *Workspace) ([]float64, error) {
	n := c.n
	// Assemble A = Q^T with the final row overwritten by ones, b = e_n.
	a := ws.denseSystem(n, n+1)
	for i := 0; i < n; i++ {
		c.gen.Row(i, func(j int, v float64) { a.Add(j, i, v) })
		a.Add(i, i, c.diag[i])
	}
	last := a.Row(n - 1)
	for j := 0; j <= n; j++ {
		last[j] = 1
	}

	pi := make([]float64, n)
	if err := eliminate(a, ws.rowPerm(n), pi); err != nil {
		return nil, fmt.Errorf("ctmc: singular balance system (%v) — chain reducible?", err)
	}
	clampAndNormalize(pi)
	return pi, nil
}

// eliminate solves the m x (m+1) augmented linear system held flat in a,
// destroying a's contents. Partial pivoting runs over the row-index
// permutation perm (len m): a pivot exchange swaps two ints, never two
// rows of the backing. The solution lands in x (len m).
func eliminate(a *sparse.Dense, perm []int, x []float64) error {
	m := len(x)
	for i := 0; i < m; i++ {
		perm[i] = i
	}
	for col := 0; col < m; col++ {
		pivot := col
		best := math.Abs(a.Row(perm[col])[col])
		for r := col + 1; r < m; r++ {
			if v := math.Abs(a.Row(perm[r])[col]); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-300 {
			return fmt.Errorf("singular system at column %d", col)
		}
		perm[col], perm[pivot] = perm[pivot], perm[col]
		prow := a.Row(perm[col])
		inv := 1 / prow[col]
		for r := col + 1; r < m; r++ {
			row := a.Row(perm[r])
			f := row[col] * inv
			if f == 0 {
				continue
			}
			row[col] = 0
			for k := col + 1; k <= m; k++ {
				row[k] -= f * prow[k]
			}
		}
	}
	for r := m - 1; r >= 0; r-- {
		row := a.Row(perm[r])
		sum := row[m]
		for k := r + 1; k < m; k++ {
			sum -= row[k] * x[k]
		}
		x[r] = sum / row[r]
	}
	return nil
}

// incomingMatrix returns (building lazily, once) the transpose of the
// off-diagonal rate matrix: row j holds the incoming rates of state j.
func (c *Chain) incomingMatrix() *sparse.CSR {
	c.incomingOnce.Do(func() { c.incoming = c.gen.Transpose() })
	return c.incoming
}

// steadyGaussSeidel iterates pi_j = (sum_{i != j} pi_i q_ij) / (-q_jj).
func (c *Chain) steadyGaussSeidel(opts SolveOptions) ([]float64, error) {
	n := c.n
	incoming := c.incomingMatrix() // row j holds incoming rates of state j

	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < n; j++ {
			if c.diag[j] == 0 {
				// Absorbing state: in an irreducible chain this cannot
				// happen; leave the estimate untouched and let the
				// normalization sort it out (tests cover rejection).
				continue
			}
			var sum float64
			incoming.Row(j, func(i int, q float64) { sum += pi[i] * q })
			next := sum / -c.diag[j]
			delta := math.Abs(next - pi[j])
			if ref := math.Abs(next); ref > 1 {
				delta /= ref
			}
			if delta > maxDelta {
				maxDelta = delta
			}
			pi[j] = next
		}
		normalize(pi)
		if maxDelta < opts.Tolerance {
			clampAndNormalize(pi)
			return pi, nil
		}
	}
	return nil, fmt.Errorf("%w: gauss-seidel after %d iterations", ErrNotConverged, opts.MaxIter)
}

// steadyPower iterates the uniformized DTMC P = I + Q/Lambda.
func (c *Chain) steadyPower(ws *Workspace, opts SolveOptions) ([]float64, error) {
	n := c.n
	lambda := c.uniformizationRate()
	pi := ws.vec(0, n)
	next := ws.vec(1, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// next = pi * P = pi + (pi * Q)/lambda
		for j := range next {
			next[j] = pi[j] * (1 + c.diag[j]/lambda)
		}
		for i := 0; i < n; i++ {
			w := pi[i] / lambda
			if w == 0 {
				continue
			}
			c.gen.Row(i, func(j int, q float64) { next[j] += w * q })
		}
		normalize(next)
		maxDelta := 0.0
		for j := range next {
			if d := math.Abs(next[j] - pi[j]); d > maxDelta {
				maxDelta = d
			}
		}
		pi, next = next, pi
		if maxDelta < opts.Tolerance {
			out := make([]float64, n) // detach the result from ws memory
			copy(out, pi)
			clampAndNormalize(out)
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: power iteration after %d iterations", ErrNotConverged, opts.MaxIter)
}

// uniformizationRate returns a rate strictly greater than every exit rate.
func (c *Chain) uniformizationRate() float64 {
	maxExit := 0.0
	for _, d := range c.diag {
		if -d > maxExit {
			maxExit = -d
		}
	}
	if maxExit == 0 {
		return 1
	}
	return maxExit * 1.02
}

// Transient returns the state distribution at time t >= 0 starting from the
// distribution p0, computed by uniformization with adaptive truncation of
// the Poisson series (truncation error below 1e-12).
func (c *Chain) Transient(p0 []float64, t float64) ([]float64, error) {
	return c.TransientWith(nil, p0, t)
}

// TransientWith is Transient drawing its uniformization buffers from ws.
// A nil ws allocates per call; the returned distribution never aliases
// workspace memory.
func (c *Chain) TransientWith(ws *Workspace, p0 []float64, t float64) ([]float64, error) {
	c.freeze()
	if len(p0) != c.n {
		return nil, fmt.Errorf("ctmc: initial distribution has %d entries, want %d", len(p0), c.n)
	}
	if t < 0 || math.IsNaN(t) {
		return nil, fmt.Errorf("ctmc: invalid time %v", t)
	}
	out := make([]float64, c.n)
	if t == 0 {
		copy(out, p0)
		return out, nil
	}
	lambda := c.uniformizationRate()
	lt := lambda * t

	cur := ws.vec(0, c.n)
	next := ws.vec(1, c.n)
	copy(cur, p0)

	// Accumulate sum_k Poisson(k; lt) * p0 * P^k with scaled weights to
	// avoid underflow for large lt.
	logW := -lt // log of Poisson weight at k = 0
	const tail = 1e-12
	// Upper truncation: mean + 10 sqrt(mean) + 50 comfortably bounds the
	// series remainder below the tolerance.
	kMax := int(lt + 10*math.Sqrt(lt) + 50)
	for k := 0; ; k++ {
		w := math.Exp(logW)
		if w > 0 {
			for i := range out {
				out[i] += w * cur[i]
			}
		}
		if k >= kMax {
			break
		}
		// Early exit once the remaining mass is negligible: the accumulated
		// weights sum to the Poisson CDF at k.
		if k > int(lt) && w < tail {
			break
		}
		// next = cur * P
		for j := range next {
			next[j] = cur[j] * (1 + c.diag[j]/lambda)
		}
		for i := 0; i < c.n; i++ {
			wi := cur[i] / lambda
			if wi == 0 {
				continue
			}
			c.gen.Row(i, func(j int, q float64) { next[j] += wi * q })
		}
		cur, next = next, cur
		logW += math.Log(lt / float64(k+1))
	}
	clampAndNormalize(out)
	return out, nil
}

// AccumulatedProbability returns L(t) with L_i(t) = E[time spent in state
// i during [0, t]] starting from distribution p0, computed by
// uniformization: the integral of the transient distribution. Dividing by
// t yields the interval (time-average) distribution, from which interval
// availability and accumulated-reward measures derive.
func (c *Chain) AccumulatedProbability(p0 []float64, t float64) ([]float64, error) {
	return c.AccumulatedProbabilityWith(nil, p0, t)
}

// AccumulatedProbabilityWith is AccumulatedProbability drawing its
// uniformization buffers from ws. A nil ws allocates per call; the
// returned occupancies never alias workspace memory.
func (c *Chain) AccumulatedProbabilityWith(ws *Workspace, p0 []float64, t float64) ([]float64, error) {
	c.freeze()
	if len(p0) != c.n {
		return nil, fmt.Errorf("ctmc: initial distribution has %d entries, want %d", len(p0), c.n)
	}
	if t < 0 || math.IsNaN(t) {
		return nil, fmt.Errorf("ctmc: invalid time %v", t)
	}
	out := make([]float64, c.n)
	if t == 0 {
		return out, nil
	}
	lambda := c.uniformizationRate()
	lt := lambda * t

	cur := ws.vec(0, c.n)
	next := ws.vec(1, c.n)
	copy(cur, p0)

	// L(t) = (1/Lambda) * sum_k P(N(lt) > k) * p0 P^k, where
	// P(N(lt) > k) = 1 - PoissonCDF(k; lt). Accumulate the CDF as we go.
	logW := -lt // log Poisson(0; lt)
	cdf := 0.0
	const tail = 1e-12
	kMax := int(lt + 10*math.Sqrt(lt) + 50)
	for k := 0; ; k++ {
		cdf += math.Exp(logW)
		tailProb := 1 - cdf
		if tailProb < 0 {
			tailProb = 0
		}
		if tailProb > 0 {
			w := tailProb / lambda
			for i := range out {
				out[i] += w * cur[i]
			}
		}
		if k >= kMax || (k > int(lt) && tailProb < tail) {
			break
		}
		// next = cur * P.
		for j := range next {
			next[j] = cur[j] * (1 + c.diag[j]/lambda)
		}
		for i := 0; i < c.n; i++ {
			wi := cur[i] / lambda
			if wi == 0 {
				continue
			}
			c.gen.Row(i, func(j int, q float64) { next[j] += wi * q })
		}
		cur, next = next, cur
		logW += math.Log(lt / float64(k+1))
	}
	return out, nil
}

// IntervalReward returns (1/t) * E[integral of reward over [0, t]]
// starting from p0 — e.g. the interval availability when reward is the
// indicator of up states.
func (c *Chain) IntervalReward(p0, reward []float64, t float64) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("ctmc: interval reward requires positive t, have %v", t)
	}
	l, err := c.AccumulatedProbability(p0, t)
	if err != nil {
		return 0, err
	}
	acc, err := ExpectedReward(l, reward)
	if err != nil {
		return 0, err
	}
	return acc / t, nil
}

// ExpectedReward returns sum_i pi_i * reward_i.
func ExpectedReward(pi, reward []float64) (float64, error) {
	if len(pi) != len(reward) {
		return 0, fmt.Errorf("ctmc: reward vector has %d entries, want %d", len(reward), len(pi))
	}
	terms := make([]float64, len(pi))
	for i := range pi {
		terms[i] = pi[i] * reward[i]
	}
	return mathx.KahanSum(terms), nil
}

// MeanTimeToAbsorption returns, for each transient state, the expected time
// until the chain first enters any of the given absorbing states, starting
// from that state. The absorbing set must be non-empty and every state must
// be able to reach it (otherwise the linear system is singular and an error
// is returned). Entries for absorbing states are zero.
func (c *Chain) MeanTimeToAbsorption(absorbing []int) ([]float64, error) {
	c.freeze()
	if len(absorbing) == 0 {
		return nil, errors.New("ctmc: no absorbing states given")
	}
	isAbs := make([]bool, c.n)
	for _, s := range absorbing {
		if s < 0 || s >= c.n {
			return nil, fmt.Errorf("ctmc: absorbing state %d out of range", s)
		}
		isAbs[s] = true
	}
	// Transient-state indexing.
	idx := make([]int, c.n)
	var transient []int
	for i := 0; i < c.n; i++ {
		if isAbs[i] {
			idx[i] = -1
			continue
		}
		idx[i] = len(transient)
		transient = append(transient, i)
	}
	m := len(transient)
	if m == 0 {
		return make([]float64, c.n), nil
	}
	// Solve Q_TT * tau = -1 by flat-backed dense elimination.
	a := sparse.NewDense(m, m+1)
	for r, s := range transient {
		row := a.Row(r)
		row[idx[s]] = c.diag[s]
		c.gen.Row(s, func(j int, v float64) {
			if !isAbs[j] {
				row[idx[j]] += v
			}
		})
		row[m] = -1
	}
	tau := make([]float64, m)
	if err := eliminate(a, make([]int, m), tau); err != nil {
		return nil, fmt.Errorf("ctmc: mean time to absorption: %w", err)
	}
	out := make([]float64, c.n)
	for r, s := range transient {
		out[s] = tau[r]
	}
	return out, nil
}

// Validate checks structural well-formedness of the generator: every
// off-diagonal rate non-negative and every row of Q summing to zero within
// tolerance. It is primarily a guard for hand-built chains in tests.
func (c *Chain) Validate() error {
	c.freeze()
	for i := 0; i < c.n; i++ {
		var sum float64
		bad := false
		c.gen.Row(i, func(j int, v float64) {
			sum += v
			if v < 0 {
				bad = true
			}
		})
		if bad {
			return fmt.Errorf("ctmc: negative off-diagonal rate in row %d", i)
		}
		if !mathx.AlmostEqual(sum, -c.diag[i], 1e-9) {
			return fmt.Errorf("ctmc: row %d of generator does not sum to zero", i)
		}
	}
	return nil
}

func normalize(v []float64) {
	sum := mathx.KahanSum(v)
	if sum == 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

func clampAndNormalize(v []float64) {
	for i := range v {
		if v[i] < 0 && v[i] > -1e-9 {
			v[i] = 0
		}
	}
	normalize(v)
}
