package ctmc

import "redpatch/internal/sparse"

// Workspace holds the scratch buffers of the numerical solvers so that
// repeated solves — design-space sweeps solve thousands of small chains —
// reuse one set of allocations instead of churning the garbage collector.
// The zero value is ready to use; a nil *Workspace is accepted everywhere
// and falls back to per-call allocation. A Workspace is NOT safe for
// concurrent use: give each worker goroutine its own.
//
// Returned solution vectors never alias workspace memory; callers may keep
// them across further solves on the same workspace.
type Workspace struct {
	system *sparse.Dense // augmented elimination system (direct solves)
	perm   []int         // row-index permutation for pivoting
	vecs   [2][]float64  // iteration vectors (power, uniformization)
}

// NewWorkspace returns an empty workspace. Buffers grow to the largest
// chain solved through it and are then reused.
func NewWorkspace() *Workspace { return &Workspace{} }

// denseSystem returns a zeroed rows x cols flat matrix, reusing the
// workspace backing when possible.
func (w *Workspace) denseSystem(rows, cols int) *sparse.Dense {
	if w == nil {
		return sparse.NewDense(rows, cols)
	}
	if w.system == nil {
		w.system = sparse.NewDense(rows, cols)
	} else {
		w.system.Reset(rows, cols)
	}
	return w.system
}

// rowPerm returns an n-entry row-permutation buffer (contents undefined).
func (w *Workspace) rowPerm(n int) []int {
	if w == nil {
		return make([]int, n)
	}
	if cap(w.perm) < n {
		w.perm = make([]int, n)
	}
	w.perm = w.perm[:n]
	return w.perm
}

// vec returns the i-th (0 or 1) n-entry scratch vector (contents
// undefined — every solver fully overwrites it before reading).
func (w *Workspace) vec(i, n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	if cap(w.vecs[i]) < n {
		w.vecs[i] = make([]float64, n)
	}
	w.vecs[i] = w.vecs[i][:n]
	return w.vecs[i]
}
