// Package core implements the paper's proposed framework (Fig. 1) as a
// reusable three-phase pipeline over arbitrary enterprise networks:
//
//	phase 1 — data input: network topology, vulnerability data with
//	          per-role attack trees, failure/recovery behaviours, and a
//	          patch schedule/policy;
//	phase 2 — model construction: a two-layered HARM for security (before
//	          and after the patch transformation) and hierarchical SRN
//	          availability models (per-server lower layer, aggregated
//	          network upper layer);
//	phase 3 — evaluation: the five security metrics, the Table V
//	          aggregated rates, and capacity oriented availability.
//
// The paperdata package supplies ready-made inputs for the paper's case
// study; this package is deliberately independent of it so that other
// networks can be analyzed with the same pipeline.
package core

import (
	"errors"
	"fmt"
	"sort"

	"redpatch/internal/attacktree"
	"redpatch/internal/availability"
	"redpatch/internal/harm"
	"redpatch/internal/patch"
	"redpatch/internal/topology"
	"redpatch/internal/vulndb"
)

// Inputs is phase 1 of the framework.
type Inputs struct {
	// Topology is the network with one attacker and role-annotated hosts.
	Topology *topology.Topology
	// DB holds the vulnerability records referenced by the attack trees.
	DB *vulndb.DB
	// Trees maps host roles to attack-tree templates; leaf Refs must be
	// IDs present in DB for the patch transformation to resolve them.
	Trees map[string]*attacktree.Tree
	// RoleVulns maps each role to the vulnerabilities its software stack
	// carries (exploitable or not); patch plans derive from it.
	RoleVulns map[string][]vulndb.Vulnerability
	// TargetRoles are the attacker's goals (e.g. the database tier).
	TargetRoles []string
	// Rates maps each role to its failure/recovery behaviour; patch
	// windows inside are overwritten from the computed plans.
	Rates map[string]availability.ServerParams
	// Policy and Schedule drive the patch round.
	Policy   patch.Policy
	Schedule patch.Schedule
	// Eval configures security-metric evaluation (zero value = package
	// defaults of internal/harm).
	Eval harm.EvalOptions
}

// Validate checks phase-1 completeness.
func (in Inputs) Validate() error {
	if in.Topology == nil {
		return errors.New("core: missing topology")
	}
	if in.DB == nil {
		return errors.New("core: missing vulnerability database")
	}
	if len(in.Trees) == 0 {
		return errors.New("core: missing attack trees")
	}
	if len(in.TargetRoles) == 0 {
		return errors.New("core: missing target roles")
	}
	if err := in.Schedule.Validate(); err != nil {
		return err
	}
	for _, host := range in.Topology.Hosts() {
		if _, ok := in.Rates[host.Role]; !ok {
			return fmt.Errorf("core: no server rates for role %q", host.Role)
		}
	}
	return nil
}

// RoleReport carries the per-role availability results (the rows of the
// paper's Table V).
type RoleReport struct {
	Role string
	// Plan is the computed patch work.
	Plan patch.Plan
	// Solution is the solved lower-layer model; zero-valued when the role
	// requires no patch.
	Solution availability.ServerSolution
	// Rates are the aggregated lambda_eq/mu_eq; zero-valued when the role
	// requires no patch.
	Rates availability.AggregatedRates
	// Replicas is the number of servers of this role in the topology.
	Replicas int
}

// Report is phase 3's output.
type Report struct {
	// SecurityBefore and SecurityAfter are the HARM metrics on either
	// side of the patch round.
	SecurityBefore, SecurityAfter harm.Metrics
	// Roles lists per-role availability results sorted by role name.
	Roles []RoleReport
	// COA is the capacity oriented availability of the network under the
	// patch schedule.
	COA float64
	// ServiceAvailability is P(every tier has at least one server up).
	ServiceAvailability float64
}

// Pipeline is the constructed framework, ready for evaluation.
type Pipeline struct {
	in Inputs
}

// NewPipeline validates the inputs and returns a pipeline.
func NewPipeline(in Inputs) (*Pipeline, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{in: in}, nil
}

// BuildSecurityModels constructs phase 2's HARMs: the before-patch model
// and the after-patch model under the pipeline's policy.
func (p *Pipeline) BuildSecurityModels() (before, after *harm.HARM, err error) {
	before, err = harm.Build(harm.BuildInput{
		Topology:    p.in.Topology,
		Trees:       p.in.Trees,
		TargetRoles: p.in.TargetRoles,
	})
	if err != nil {
		return nil, nil, err
	}
	after, err = before.Patched(func(role string, l *attacktree.Leaf) bool {
		v, ok := p.in.DB.ByID(l.Ref)
		if !ok {
			return true
		}
		return !p.in.Policy.Selects(v)
	})
	if err != nil {
		return nil, nil, err
	}
	return before, after, nil
}

// replicaCounts tallies hosts per role from the topology.
func (p *Pipeline) replicaCounts() map[string]int {
	counts := make(map[string]int)
	for _, h := range p.in.Topology.Hosts() {
		counts[h.Role]++
	}
	return counts
}

// BuildAvailabilityModel solves the lower-layer model of every role
// present in the topology and assembles the upper-layer network model.
func (p *Pipeline) BuildAvailabilityModel() (availability.NetworkModel, []RoleReport, error) {
	counts := p.replicaCounts()
	roles := make([]string, 0, len(counts))
	for role := range counts {
		roles = append(roles, role)
	}
	sort.Strings(roles)

	var nm availability.NetworkModel
	var reports []RoleReport
	for _, role := range roles {
		plan, err := patch.Compute(role, p.in.RoleVulns[role], p.in.Policy, p.in.Schedule)
		if err != nil {
			return availability.NetworkModel{}, nil, err
		}
		rr := RoleReport{Role: role, Plan: plan, Replicas: counts[role]}
		tier := availability.Tier{Name: role, N: counts[role]}
		if plan.RequiresPatch() {
			params := p.in.Rates[role]
			params.Name = role
			params.SvcPatchTime = plan.ServicePatchTime
			params.OSPatchTime = plan.OSPatchTime
			params.OSReboot = p.in.Schedule.OSReboot
			params.SvcReboot = p.in.Schedule.ServiceReboot
			params.PatchInterval = p.in.Schedule.Interval
			sol, err := availability.SolveServer(params)
			if err != nil {
				return availability.NetworkModel{}, nil, err
			}
			agg, err := availability.Aggregate(sol)
			if err != nil {
				return availability.NetworkModel{}, nil, err
			}
			rr.Solution = sol
			rr.Rates = agg
			tier.LambdaEq = agg.LambdaEq
			tier.MuEq = agg.MuEq
		}
		reports = append(reports, rr)
		nm.Tiers = append(nm.Tiers, tier)
	}
	return nm, reports, nil
}

// Evaluate runs the full pipeline: both security models, the availability
// model, and the combined report.
func (p *Pipeline) Evaluate() (Report, error) {
	before, after, err := p.BuildSecurityModels()
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if rep.SecurityBefore, err = before.Evaluate(p.in.Eval); err != nil {
		return Report{}, err
	}
	if rep.SecurityAfter, err = after.Evaluate(p.in.Eval); err != nil {
		return Report{}, err
	}
	nm, roles, err := p.BuildAvailabilityModel()
	if err != nil {
		return Report{}, err
	}
	rep.Roles = roles
	sol, err := availability.SolveNetwork(nm)
	if err != nil {
		return Report{}, err
	}
	rep.COA = sol.COA
	rep.ServiceAvailability = sol.ServiceAvailability
	return rep, nil
}
