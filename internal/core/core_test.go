package core

import (
	"testing"

	"redpatch/internal/attacktree"
	"redpatch/internal/availability"
	"redpatch/internal/harm"
	"redpatch/internal/mathx"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/vulndb"
)

// paperInputs assembles the case-study inputs through the generic
// pipeline API.
func paperInputs(t *testing.T) Inputs {
	t.Helper()
	db := paperdata.VulnDB()
	top, err := paperdata.Topology(paperdata.BaseDesign())
	if err != nil {
		t.Fatal(err)
	}
	roleVulns := make(map[string][]vulndb.Vulnerability)
	rates := make(map[string]availability.ServerParams)
	for _, role := range paperdata.Roles() {
		vulns, err := paperdata.VulnsForRole(db, role)
		if err != nil {
			t.Fatal(err)
		}
		roleVulns[role] = vulns
		rates[role] = availability.DefaultRates(role)
	}
	return Inputs{
		Topology:    top,
		DB:          db,
		Trees:       paperdata.Trees(db),
		RoleVulns:   roleVulns,
		TargetRoles: []string{paperdata.RoleDB},
		Rates:       rates,
		Policy:      patch.CriticalPolicy(),
		Schedule:    patch.MonthlySchedule(),
		Eval:        harm.EvalOptions{Strategy: harm.ASPCompromise, ORRule: attacktree.ORNoisy},
	}
}

// TestFullPipelineReproducesPaper runs the entire Fig. 1 framework on the
// case study and checks the headline numbers of Tables II, V and VI.
func TestFullPipelineReproducesPaper(t *testing.T) {
	p, err := NewPipeline(paperInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}

	// Table II (security): see DESIGN.md §7 for the NoEV=26 and ASP
	// discrepancies.
	if !mathx.AlmostEqual(rep.SecurityBefore.AIM, 52.2, 1e-9) {
		t.Errorf("AIM before = %v, want 52.2", rep.SecurityBefore.AIM)
	}
	if !mathx.AlmostEqual(rep.SecurityBefore.ASP, 1.0, 1e-9) {
		t.Errorf("ASP before = %v, want 1.0", rep.SecurityBefore.ASP)
	}
	if rep.SecurityBefore.NoEV != 26 || rep.SecurityBefore.NoAP != 8 || rep.SecurityBefore.NoEP != 3 {
		t.Errorf("before = %+v, want NoEV 26, NoAP 8, NoEP 3", rep.SecurityBefore)
	}
	if !mathx.AlmostEqual(rep.SecurityAfter.AIM, 42.2, 1e-9) {
		t.Errorf("AIM after = %v, want 42.2", rep.SecurityAfter.AIM)
	}
	if rep.SecurityAfter.NoEV != 11 || rep.SecurityAfter.NoAP != 4 || rep.SecurityAfter.NoEP != 2 {
		t.Errorf("after = %+v, want NoEV 11, NoAP 4, NoEP 2", rep.SecurityAfter)
	}
	if rep.SecurityAfter.ASP < 0.2 || rep.SecurityAfter.ASP > 0.3 {
		t.Errorf("ASP after = %v, want in the paper's neighbourhood of 0.265", rep.SecurityAfter.ASP)
	}

	// Table V (aggregated rates).
	wantMu := map[string]float64{"dns": 1.49992, "web": 1.71420, "app": 0.99995, "db": 1.09085}
	if len(rep.Roles) != 4 {
		t.Fatalf("roles = %d, want 4", len(rep.Roles))
	}
	for _, rr := range rep.Roles {
		if !mathx.AlmostEqual(rr.Rates.MuEq, wantMu[rr.Role], 1e-4) {
			t.Errorf("%s mu_eq = %v, want ≈ %v", rr.Role, rr.Rates.MuEq, wantMu[rr.Role])
		}
		if !mathx.AlmostEqual(rr.Rates.MTTP(), 720, 1e-9) {
			t.Errorf("%s MTTP = %v, want 720", rr.Role, rr.Rates.MTTP())
		}
	}

	// Table VI (COA).
	if !mathx.AlmostEqual(rep.COA, 0.99707, 1e-4) {
		t.Errorf("COA = %v, want ≈ 0.99707", rep.COA)
	}
}

func TestBuildSecurityModels(t *testing.T) {
	p, err := NewPipeline(paperInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	before, after, err := p.BuildSecurityModels()
	if err != nil {
		t.Fatal(err)
	}
	if !before.Upper().HasNode("dns1") {
		t.Error("before-patch HARM should include dns1")
	}
	if after.Upper().HasNode("dns1") {
		t.Error("after-patch HARM should exclude dns1")
	}
}

func TestReplicaCountsFromTopology(t *testing.T) {
	in := paperInputs(t)
	p, err := NewPipeline(in)
	if err != nil {
		t.Fatal(err)
	}
	nm, roles, err := p.BuildAvailabilityModel()
	if err != nil {
		t.Fatal(err)
	}
	if nm.TotalServers() != 6 {
		t.Errorf("total servers = %d, want 6", nm.TotalServers())
	}
	counts := map[string]int{"dns": 1, "web": 2, "app": 2, "db": 1}
	for _, rr := range roles {
		if rr.Replicas != counts[rr.Role] {
			t.Errorf("%s replicas = %d, want %d", rr.Role, rr.Replicas, counts[rr.Role])
		}
	}
}

func TestValidation(t *testing.T) {
	base := paperInputs(t)
	tests := []struct {
		name string
		mut  func(*Inputs)
	}{
		{name: "noTopology", mut: func(in *Inputs) { in.Topology = nil }},
		{name: "noDB", mut: func(in *Inputs) { in.DB = nil }},
		{name: "noTrees", mut: func(in *Inputs) { in.Trees = nil }},
		{name: "noTargets", mut: func(in *Inputs) { in.TargetRoles = nil }},
		{name: "badSchedule", mut: func(in *Inputs) { in.Schedule = patch.Schedule{} }},
		{name: "missingRates", mut: func(in *Inputs) { delete(in.Rates, "web") }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := paperInputs(t)
			tt.mut(&in)
			if _, err := NewPipeline(in); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := NewPipeline(base); err != nil {
		t.Errorf("valid inputs rejected: %v", err)
	}
}

// TestRoleWithoutPatchableVulns: a role whose stack has no critical
// vulnerabilities never patches, so its tier never goes down.
func TestRoleWithoutPatchableVulns(t *testing.T) {
	in := paperInputs(t)
	// Strip the DNS stack of patch-selected vulnerabilities.
	in.RoleVulns["dns"] = nil
	p, err := NewPipeline(in)
	if err != nil {
		t.Fatal(err)
	}
	nm, roles, err := p.BuildAvailabilityModel()
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range roles {
		if rr.Role == "dns" {
			if rr.Plan.RequiresPatch() {
				t.Error("dns plan should be empty")
			}
			if rr.Rates.LambdaEq != 0 {
				t.Error("dns tier should never patch")
			}
		}
	}
	sol, err := availability.SolveNetwork(nm)
	if err != nil {
		t.Fatal(err)
	}
	// COA must improve over the fully patched network.
	full, err := NewPipeline(paperInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	fullRep, err := full.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if sol.COA <= fullRep.COA {
		t.Errorf("skipping dns patches should raise COA: %v vs %v", sol.COA, fullRep.COA)
	}
}
