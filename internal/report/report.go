// Package report renders the outputs of the evaluation pipeline in the
// forms the paper presents them: aligned text tables (Tables I–VI),
// scatter-plot series (Fig. 6) and radar-chart series (Fig. 7), plus CSV
// for external plotting. All rendering is deterministic.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(strconv.Quote(c))
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown returns the table as a GitHub-flavored Markdown table (title
// as a bold caption line when present).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given number of decimals.
func F(x float64, decimals int) string {
	return strconv.FormatFloat(x, 'f', decimals, 64)
}

// I formats an int.
func I(x int) string { return strconv.Itoa(x) }

// ScatterPoint is one labelled point of a scatter plot.
type ScatterPoint struct {
	Label string
	X, Y  float64
}

// ScatterSeries is the data behind one of the paper's Fig. 6 panels.
type ScatterSeries struct {
	Title  string
	XLabel string
	YLabel string
	Points []ScatterPoint
}

// Render lists the points as text.
func (s ScatterSeries) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s vs %s)\n", s.Title, s.XLabel, s.YLabel)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "  %-28s %s=%.6f  %s=%.6f\n", p.Label, s.XLabel, p.X, s.YLabel, p.Y)
	}
	return b.String()
}

// CSV renders the series as label,x,y rows.
func (s ScatterSeries) CSV() string {
	t := NewTable("", "label", s.XLabel, s.YLabel)
	for _, p := range s.Points {
		t.AddRow(p.Label, F(p.X, 6), F(p.Y, 6))
	}
	return t.CSV()
}

// ASCIIPlot renders the scatter series as a text plot of roughly the
// given dimensions (minimums apply), marking each point with its 1-based
// index and listing a legend underneath. Points sharing a cell keep the
// first marker. The output is deterministic.
func (s ScatterSeries) ASCIIPlot(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if len(s.Points) == 0 {
		return s.Title + "\n(no points)\n"
	}
	minX, maxX := s.Points[0].X, s.Points[0].X
	minY, maxY := s.Points[0].Y, s.Points[0].Y
	for _, p := range s.Points[1:] {
		minX = minFloat(minX, p.X)
		maxX = maxFloat(maxX, p.X)
		minY = minFloat(minY, p.Y)
		maxY = maxFloat(maxY, p.Y)
	}
	// Pad degenerate ranges so every point lands inside the grid.
	if maxX == minX {
		minX, maxX = minX-1, maxX+1
	}
	if maxY == minY {
		minY, maxY = minY-1, maxY+1
	}
	padX := (maxX - minX) * 0.05
	padY := (maxY - minY) * 0.05
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	marker := func(i int) byte {
		if i < 9 {
			return byte('1' + i)
		}
		return byte('a' + i - 9)
	}
	for i, p := range s.Points {
		col := int((p.X - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
		if grid[row][col] == ' ' {
			grid[row][col] = marker(i)
		}
	}

	var b strings.Builder
	if s.Title != "" {
		b.WriteString(s.Title)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%s (vertical), %s (horizontal)\n", s.YLabel, s.XLabel)
	fmt.Fprintf(&b, "%10.6f ", maxY)
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for r := 0; r < height; r++ {
		b.WriteString(strings.Repeat(" ", 11))
		b.WriteString("|")
		b.Write(grid[r])
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%10.6f ", minY)
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	fmt.Fprintf(&b, "%12s%-*.6f%*.6f\n", "", width/2, minX, width-width/2, maxX)
	for i, p := range s.Points {
		fmt.Fprintf(&b, "  %c = %s (%.6f, %.6f)\n", marker(i), p.Label, p.X, p.Y)
	}
	return b.String()
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RadarSeries is one polygon of a radar chart: a value per axis.
type RadarSeries struct {
	Label  string
	Values []float64
}

// RadarChart is the data behind one of the paper's Fig. 7 panels.
type RadarChart struct {
	Title  string
	Axes   []string
	Series []RadarSeries
}

// Validate checks that every series covers every axis.
func (r RadarChart) Validate() error {
	if len(r.Axes) == 0 {
		return fmt.Errorf("report: radar chart without axes")
	}
	for _, s := range r.Series {
		if len(s.Values) != len(r.Axes) {
			return fmt.Errorf("report: series %q has %d values for %d axes", s.Label, len(s.Values), len(r.Axes))
		}
	}
	return nil
}

// Render presents the chart as an axes-by-series table.
func (r RadarChart) Render() string {
	headers := append([]string{"metric"}, labels(r.Series)...)
	t := NewTable(r.Title, headers...)
	for i, axis := range r.Axes {
		row := make([]string, 0, len(r.Series)+1)
		row = append(row, axis)
		for _, s := range r.Series {
			row = append(row, F(s.Values[i], 6))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// CSV renders the chart with one row per axis.
func (r RadarChart) CSV() string {
	headers := append([]string{"metric"}, labels(r.Series)...)
	t := NewTable("", headers...)
	for i, axis := range r.Axes {
		row := make([]string, 0, len(r.Series)+1)
		row = append(row, axis)
		for _, s := range r.Series {
			row = append(row, F(s.Values[i], 6))
		}
		t.AddRow(row...)
	}
	return t.CSV()
}

func labels(series []RadarSeries) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}
