package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("be", "22")
	out := tbl.Render()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("title missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator wrong: %q", lines[2])
	}
	// Alignment: the "value" column must start at the same offset in
	// every row.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1") || !strings.HasPrefix(lines[4][idx:], "22") {
		t.Errorf("columns not aligned:\n%s", out)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("1")                    // short row padded
	tbl.AddRow("1", "2", "3", "extra") // long row truncated
	out := tbl.Render()
	if strings.Contains(out, "extra") {
		t.Error("long rows must be truncated to the header width")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("ignored", "name", "note")
	tbl.AddRow("a", "plain")
	tbl.AddRow("b", `with "quotes", commas`)
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "name,note" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if lines[1] != "a,plain" {
		t.Errorf("CSV row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], `b,"with `) {
		t.Errorf("CSV quoting wrong: %q", lines[2])
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("Caption", "name", "note")
	tbl.AddRow("a", "with|pipe")
	md := tbl.Markdown()
	lines := strings.Split(strings.TrimRight(md, "\n"), "\n")
	if lines[0] != "**Caption**" {
		t.Errorf("caption = %q", lines[0])
	}
	if lines[2] != "| name | note |" {
		t.Errorf("header = %q", lines[2])
	}
	if lines[3] != "| --- | --- |" {
		t.Errorf("separator = %q", lines[3])
	}
	if !strings.Contains(lines[4], `with\|pipe`) {
		t.Errorf("pipe not escaped: %q", lines[4])
	}
	// Untitled tables skip the caption.
	md2 := NewTable("", "x").Markdown()
	if strings.HasPrefix(md2, "**") {
		t.Error("untitled table should have no caption")
	}
}

func TestFormatters(t *testing.T) {
	if F(0.99707, 3) != "0.997" {
		t.Errorf("F = %q", F(0.99707, 3))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
}

func TestScatterSeries(t *testing.T) {
	s := ScatterSeries{
		Title:  "After patch",
		XLabel: "ASP",
		YLabel: "COA",
		Points: []ScatterPoint{
			{Label: "1 DNS + 1 WEB + 1 APP + 1 DB", X: 0.09, Y: 0.9956},
		},
	}
	out := s.Render()
	for _, want := range []string{"After patch", "ASP", "COA", "1 DNS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "label,ASP,COA\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "0.090000") {
		t.Errorf("CSV missing point: %q", csv)
	}
}

func TestASCIIPlot(t *testing.T) {
	s := ScatterSeries{
		Title:  "designs",
		XLabel: "ASP",
		YLabel: "COA",
		Points: []ScatterPoint{
			{Label: "D1", X: 0.09, Y: 0.9956},
			{Label: "D4", X: 0.15, Y: 0.9964},
		},
	}
	out := s.ASCIIPlot(40, 10)
	for _, want := range []string{"designs", "COA", "ASP", "1", "2", "D1", "D4", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCIIPlot missing %q:\n%s", want, out)
		}
	}
	if out != s.ASCIIPlot(40, 10) {
		t.Error("ASCIIPlot must be deterministic")
	}
	// Degenerate cases must not panic.
	if got := (ScatterSeries{Title: "empty"}).ASCIIPlot(40, 10); !strings.Contains(got, "no points") {
		t.Error("empty series should render a placeholder")
	}
	one := ScatterSeries{Points: []ScatterPoint{{Label: "only", X: 1, Y: 1}}}
	if got := one.ASCIIPlot(1, 1); !strings.Contains(got, "only") {
		t.Error("single point with tiny dimensions should render")
	}
}

func TestASCIIPlotManyPoints(t *testing.T) {
	var s ScatterSeries
	for i := 0; i < 12; i++ {
		s.Points = append(s.Points, ScatterPoint{Label: "p", X: float64(i), Y: float64(i % 5)})
	}
	out := s.ASCIIPlot(60, 12)
	// Markers beyond 9 continue with letters.
	for _, want := range []string{"9", "a", "b", "c"} {
		if !strings.Contains(out, want+" = p") {
			t.Errorf("marker %q missing:\n%s", want, out)
		}
	}
}

func TestRadarChart(t *testing.T) {
	chart := RadarChart{
		Title: "Fig 7",
		Axes:  []string{"ASP", "COA"},
		Series: []RadarSeries{
			{Label: "D1", Values: []float64{0.09, 0.9956}},
			{Label: "D2", Values: []float64{0.09, 0.9962}},
		},
	}
	if err := chart.Validate(); err != nil {
		t.Fatal(err)
	}
	out := chart.Render()
	for _, want := range []string{"Fig 7", "metric", "D1", "D2", "ASP", "COA"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	csv := chart.CSV()
	if !strings.HasPrefix(csv, "metric,D1,D2\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}

	bad := RadarChart{Axes: []string{"a"}, Series: []RadarSeries{{Label: "x", Values: []float64{1, 2}}}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched series length should fail")
	}
	if err := (RadarChart{}).Validate(); err == nil {
		t.Error("chart without axes should fail")
	}
}
