package vulndb

import (
	"math"
	"testing"

	"redpatch/internal/cvss"
)

func compositeFixture() []Vulnerability {
	return []Vulnerability{
		{
			ID:          "CVE-2016-0001",
			Product:     "A",
			Component:   ComponentService,
			Vector:      cvss.MustParse("AV:N/AC:L/Au:N/C:C/I:C/A:C"), // ASP 1.00
			Exploitable: true,
		},
		{
			ID:          "CVE-2016-0002",
			Product:     "B",
			Component:   ComponentOS,
			Vector:      cvss.MustParse("AV:N/AC:M/Au:N/C:C/I:C/A:C"), // ASP 0.86
			Exploitable: true,
		},
		{
			ID:          "CVE-2016-0003",
			Product:     "C",
			Component:   ComponentService,
			Vector:      cvss.MustParse("AV:L/AC:L/Au:N/C:C/I:C/A:C"), // local, still has ASP
			Exploitable: false,
		},
	}
}

func TestCompositeASP(t *testing.T) {
	vulns := compositeFixture()

	if got := CompositeASP(nil); got != 0 {
		t.Fatalf("CompositeASP(nil) = %v, want 0", got)
	}
	// Only the exploitable records contribute.
	want := 1 - (1-vulns[0].ASP())*(1-vulns[1].ASP())
	if got := CompositeASP(vulns); math.Abs(got-want) > 1e-15 {
		t.Fatalf("CompositeASP = %v, want %v", got, want)
	}
	if got := CompositeASP(vulns[2:]); got != 0 {
		t.Fatalf("unexploitable-only composite = %v, want 0", got)
	}
	// Single exploitable record composes to its own ASP.
	if got := CompositeASP(vulns[1:2]); got != vulns[1].ASP() {
		t.Fatalf("single composite = %v, want %v", got, vulns[1].ASP())
	}
}

func TestCompositeASPOrderIndependent(t *testing.T) {
	vulns := compositeFixture()
	forward := CompositeASP(vulns)
	reversed := CompositeASP([]Vulnerability{vulns[2], vulns[1], vulns[0]})
	if forward != reversed {
		t.Fatalf("composite not order independent: %v vs %v", forward, reversed)
	}
}
