package vulndb

import (
	"encoding/json"
	"os"
	"testing"

	"redpatch/internal/cvss"
)

func sample() Vulnerability {
	return Vulnerability{
		ID:          "CVE-2016-6662",
		Product:     "MySQL",
		Component:   ComponentService,
		Vector:      cvss.MustParse("AV:N/AC:L/Au:N/C:C/I:C/A:C"),
		Exploitable: true,
		Description: "MySQL logging remote root code execution",
	}
}

func TestAddAndLookup(t *testing.T) {
	db := New()
	if err := db.Add(sample()); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	v, ok := db.ByID("CVE-2016-6662")
	if !ok {
		t.Fatal("ByID should find the record")
	}
	if v.Product != "MySQL" {
		t.Errorf("Product = %q", v.Product)
	}
	if _, ok := db.ByID("CVE-0000-0000"); ok {
		t.Error("ByID should not find a missing record")
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	db := New()
	if err := db.Add(sample()); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(sample()); err == nil {
		t.Error("duplicate Add should fail")
	}
}

func TestAddValidates(t *testing.T) {
	db := New()
	tests := []struct {
		name string
		mut  func(*Vulnerability)
	}{
		{name: "emptyID", mut: func(v *Vulnerability) { v.ID = "" }},
		{name: "badComponent", mut: func(v *Vulnerability) { v.Component = 0 }},
		{name: "zeroVector", mut: func(v *Vulnerability) { v.Vector = cvss.Vector{} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := sample()
			tt.mut(&v)
			if err := db.Add(v); err == nil {
				t.Error("Add should fail validation")
			}
		})
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd of invalid record should panic")
		}
	}()
	v := sample()
	v.ID = ""
	New().MustAdd(v)
}

func TestDerivedScores(t *testing.T) {
	v := sample()
	if got := v.BaseScore(); got != 10.0 {
		t.Errorf("BaseScore = %v, want 10.0", got)
	}
	if got := v.Impact(); got != 10.0 {
		t.Errorf("Impact = %v, want 10.0", got)
	}
	if got := v.ASP(); got != 1.0 {
		t.Errorf("ASP = %v, want 1.0", got)
	}
	if !v.IsCritical(8.0) {
		t.Error("base 10.0 should be critical at threshold 8.0")
	}
	if v.IsCritical(10.0) {
		t.Error("criticality must be strict inequality")
	}
}

func buildTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	records := []Vulnerability{
		sample(),
		{
			ID:        "CVE-2016-4997",
			Product:   "Oracle Linux 7",
			Component: ComponentOS,
			Vector:    cvss.MustParse("AV:L/AC:L/Au:N/C:C/I:C/A:C"), // base 7.2
			// Local privilege escalation: not remotely exploitable on its
			// own, but the paper's attack trees pair it with a remote flaw.
			Exploitable: true,
		},
		{
			ID:          "CVE-2015-3152",
			Product:     "MySQL",
			Component:   ComponentService,
			Vector:      cvss.MustParse("AV:N/AC:M/Au:N/C:P/I:N/A:N"), // base 4.3
			Exploitable: true,
		},
		{
			ID:          "CVE-2016-9999",
			Product:     "Windows Server 2012 R2",
			Component:   ComponentOS,
			Vector:      cvss.MustParse("AV:N/AC:M/Au:N/C:C/I:C/A:C"), // base 9.3
			Exploitable: false,
		},
	}
	for _, r := range records {
		if err := db.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestQueries(t *testing.T) {
	db := buildTestDB(t)

	if got := db.ByProduct("MySQL"); len(got) != 2 {
		t.Errorf("ByProduct(MySQL) returned %d records, want 2", len(got))
	}
	crit := db.Critical(8.0)
	if len(crit) != 2 {
		t.Fatalf("Critical(8.0) returned %d records, want 2", len(crit))
	}
	if crit[0].ID != "CVE-2016-6662" || crit[1].ID != "CVE-2016-9999" {
		t.Errorf("Critical returned %v, want sorted [CVE-2016-6662 CVE-2016-9999]", []string{crit[0].ID, crit[1].ID})
	}
	expl := db.Exploitable()
	if len(expl) != 3 {
		t.Errorf("Exploitable returned %d records, want 3", len(expl))
	}
	all := db.All()
	if len(all) != 4 {
		t.Fatalf("All returned %d records, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Error("All must be sorted by ID")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := buildTestDB(t)
	data, err := json.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	var back DB
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost records: %d != %d", back.Len(), db.Len())
	}
	for _, v := range db.All() {
		got, ok := back.ByID(v.ID)
		if !ok {
			t.Fatalf("record %s lost in round trip", v.ID)
		}
		if got != v {
			t.Errorf("record %s changed in round trip: %+v != %+v", v.ID, got, v)
		}
	}
}

func TestUnmarshalRejectsBadVector(t *testing.T) {
	var db DB
	err := json.Unmarshal([]byte(`[{"id":"CVE-1","product":"x","Component":"os","vector":"nope","exploitable":false}]`), &db)
	if err == nil {
		t.Error("unmarshal with bad vector should fail")
	}
}

func TestComponentJSON(t *testing.T) {
	data, err := json.Marshal(ComponentOS)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"os"` {
		t.Errorf("marshal ComponentOS = %s", data)
	}
	var c Component
	if err := json.Unmarshal([]byte(`"service"`), &c); err != nil {
		t.Fatal(err)
	}
	if c != ComponentService {
		t.Errorf("unmarshal service = %v", c)
	}
	if err := json.Unmarshal([]byte(`"kernel"`), &c); err == nil {
		t.Error("unknown component should fail")
	}
}

func TestComponentString(t *testing.T) {
	if ComponentOS.String() != "os" || ComponentService.String() != "service" {
		t.Error("component labels wrong")
	}
}

func TestFileRoundTrip(t *testing.T) {
	db := buildTestDB(t)
	path := t.TempDir() + "/vulns.json"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("file round trip lost records: %d != %d", back.Len(), db.Len())
	}
	for _, v := range db.All() {
		got, ok := back.ByID(v.ID)
		if !ok || got != v {
			t.Errorf("record %s changed in file round trip", v.ID)
		}
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file should fail")
	}
	path := t.TempDir() + "/bad.json"
	if err := writeFile(t, path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("malformed file should fail")
	}
}

func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestCountByComponent(t *testing.T) {
	db := buildTestDB(t)
	osC, svcC := CountByComponent(db.All())
	if osC != 2 || svcC != 2 {
		t.Errorf("CountByComponent = (%d, %d), want (2, 2)", osC, svcC)
	}
	osC, svcC = CountByComponent(nil)
	if osC != 0 || svcC != 0 {
		t.Error("CountByComponent(nil) should be zero")
	}
}
