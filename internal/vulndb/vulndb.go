// Package vulndb provides an in-memory vulnerability store modelled on the
// National Vulnerability Database records the paper collects its inputs
// from. Each record carries a CVE identifier, the affected product, whether
// the flaw lives in the operating system or the service layer (which
// determines its patch duration in the availability model), its CVSS v2
// base vector, and a curated exploitability flag (whether a remote attacker
// gains privileges by exploiting it, the property that admits it into the
// attack-tree lower layer of the HARM).
package vulndb

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"redpatch/internal/cvss"
)

// Component says which layer of a server a vulnerability lives in. The
// paper patches application vulnerabilities first and OS vulnerabilities
// immediately after, with different per-vulnerability durations.
type Component int

// Component values.
const (
	// ComponentOS marks operating-system vulnerabilities.
	ComponentOS Component = iota + 1
	// ComponentService marks application/service vulnerabilities.
	ComponentService
)

// String returns the component label.
func (c Component) String() string {
	switch c {
	case ComponentOS:
		return "os"
	case ComponentService:
		return "service"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// MarshalJSON encodes the component as its label.
func (c Component) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON decodes a component label.
func (c *Component) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "os":
		*c = ComponentOS
	case "service":
		*c = ComponentService
	default:
		return fmt.Errorf("vulndb: unknown component %q", s)
	}
	return nil
}

// Vulnerability is one vulnerability record.
type Vulnerability struct {
	// ID is the CVE identifier, e.g. "CVE-2016-6662".
	ID string
	// Product is the affected software, e.g. "MySQL" or "Oracle Linux 7".
	Product string
	// Component says whether the flaw is in the OS or the service layer.
	Component Component
	// Vector is the CVSS v2 base vector.
	Vector cvss.Vector
	// Exploitable records whether a remote attacker can exploit the flaw to
	// gain some level of privilege (the paper's admission criterion for the
	// HARM). It is curated rather than derived: CVSS alone cannot tell
	// privilege escalation from, say, an information leak.
	Exploitable bool
	// Description is free-text context.
	Description string
}

// BaseScore returns the CVSS v2 base score.
func (v Vulnerability) BaseScore() float64 { return v.Vector.BaseScore() }

// Impact returns the attack impact used by the security model: the CVSS
// impact sub-score rounded to one decimal (paper Table I).
func (v Vulnerability) Impact() float64 { return v.Vector.ImpactScoreRounded() }

// ASP returns the attack success probability used by the security model:
// exploitability sub-score divided by ten, rounded to two decimals (paper
// Table I).
func (v Vulnerability) ASP() float64 { return v.Vector.AttackSuccessProbability() }

// IsCritical reports whether the base score strictly exceeds the given
// threshold; the paper defines critical as base score higher than 8.0.
func (v Vulnerability) IsCritical(threshold float64) bool { return v.BaseScore() > threshold }

// Validate checks that the record is well-formed.
func (v Vulnerability) Validate() error {
	if v.ID == "" {
		return fmt.Errorf("vulndb: vulnerability with empty ID")
	}
	if v.Component != ComponentOS && v.Component != ComponentService {
		return fmt.Errorf("vulndb: %s: invalid component %d", v.ID, v.Component)
	}
	if err := v.Vector.Validate(); err != nil {
		return fmt.Errorf("vulndb: %s: %w", v.ID, err)
	}
	return nil
}

// DB is a collection of vulnerability records keyed by CVE ID.
type DB struct {
	byID map[string]Vulnerability
}

// New returns an empty database.
func New() *DB {
	return &DB{byID: make(map[string]Vulnerability)}
}

// Add inserts a record, rejecting duplicates and malformed records.
func (db *DB) Add(v Vulnerability) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if _, dup := db.byID[v.ID]; dup {
		return fmt.Errorf("vulndb: duplicate vulnerability %s", v.ID)
	}
	db.byID[v.ID] = v
	return nil
}

// MustAdd is Add for curated datasets; it panics on error.
func (db *DB) MustAdd(v Vulnerability) {
	if err := db.Add(v); err != nil {
		panic(err)
	}
}

// Len returns the number of records.
func (db *DB) Len() int { return len(db.byID) }

// ByID returns the record for the given CVE ID.
func (db *DB) ByID(id string) (Vulnerability, bool) {
	v, ok := db.byID[id]
	return v, ok
}

// All returns every record sorted by CVE ID.
func (db *DB) All() []Vulnerability {
	out := make([]Vulnerability, 0, len(db.byID))
	for _, v := range db.byID {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByProduct returns the records affecting the given product, sorted by ID.
func (db *DB) ByProduct(product string) []Vulnerability {
	var out []Vulnerability
	for _, v := range db.byID {
		if v.Product == product {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Critical returns the records with base score strictly above the
// threshold, sorted by ID.
func (db *DB) Critical(threshold float64) []Vulnerability {
	var out []Vulnerability
	for _, v := range db.byID {
		if v.IsCritical(threshold) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Exploitable returns the records flagged exploitable, sorted by ID.
func (db *DB) Exploitable() []Vulnerability {
	var out []Vulnerability
	for _, v := range db.byID {
		if v.Exploitable {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// jsonRecord is the serialized form of a vulnerability.
type jsonRecord struct {
	ID          string `json:"id"`
	Product     string `json:"product"`
	Component   Component
	Vector      string `json:"vector"`
	Exploitable bool   `json:"exploitable"`
	Description string `json:"description,omitempty"`
}

// MarshalJSON encodes the database as a sorted array of records with the
// CVSS vector in its canonical string form.
func (db *DB) MarshalJSON() ([]byte, error) {
	all := db.All()
	recs := make([]jsonRecord, len(all))
	for i, v := range all {
		recs[i] = jsonRecord{
			ID:          v.ID,
			Product:     v.Product,
			Component:   v.Component,
			Vector:      v.Vector.String(),
			Exploitable: v.Exploitable,
			Description: v.Description,
		}
	}
	return json.Marshal(recs)
}

// UnmarshalJSON decodes an array of records, validating each.
func (db *DB) UnmarshalJSON(data []byte) error {
	var recs []jsonRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return err
	}
	db.byID = make(map[string]Vulnerability, len(recs))
	for _, r := range recs {
		vec, err := cvss.Parse(r.Vector)
		if err != nil {
			return fmt.Errorf("vulndb: %s: %w", r.ID, err)
		}
		v := Vulnerability{
			ID:          r.ID,
			Product:     r.Product,
			Component:   r.Component,
			Vector:      vec,
			Exploitable: r.Exploitable,
			Description: r.Description,
		}
		if err := db.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// SaveFile writes the database as indented JSON to the given path.
func (db *DB) SaveFile(path string) error {
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return fmt.Errorf("vulndb: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("vulndb: write %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a database previously written by SaveFile (or any JSON
// array of records in the documented schema).
func LoadFile(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("vulndb: read %s: %w", path, err)
	}
	db := New()
	if err := json.Unmarshal(data, db); err != nil {
		return nil, fmt.Errorf("vulndb: parse %s: %w", path, err)
	}
	return db, nil
}

// CountByComponent returns how many of the given vulnerabilities live in
// each layer; the availability model derives patch durations from these
// counts.
func CountByComponent(vulns []Vulnerability) (osCount, serviceCount int) {
	for _, v := range vulns {
		switch v.Component {
		case ComponentOS:
			osCount++
		case ComponentService:
			serviceCount++
		}
	}
	return osCount, serviceCount
}
