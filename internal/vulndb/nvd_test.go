package vulndb

import (
	"strings"
	"testing"
)

// sampleFeed is a minimal NVD JSON 1.1 document with two scored CVEs and
// one without a v2 score.
const sampleFeed = `{
  "CVE_data_type": "CVE",
  "CVE_Items": [
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2016-6662"},
        "description": {"description_data": [
          {"lang": "es", "value": "ejemplo"},
          {"lang": "en", "value": "MySQL remote root code execution"}
        ]}
      },
      "impact": {"baseMetricV2": {"cvssV2": {"vectorString": "AV:N/AC:L/Au:N/C:C/I:C/A:C"}}}
    },
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2015-3152"},
        "description": {"description_data": [
          {"lang": "en", "value": "MySQL BACKRONYM SSL downgrade"}
        ]}
      },
      "impact": {"baseMetricV2": {"cvssV2": {"vectorString": "(AV:N/AC:M/Au:N/C:P/I:N/A:N)"}}}
    },
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2023-0001"},
        "description": {"description_data": [
          {"lang": "en", "value": "modern flaw without a v2 score"}
        ]}
      },
      "impact": {}
    }
  ]
}`

func TestFromNVDJSON(t *testing.T) {
	classify := func(item NVDItem) (Vulnerability, bool) {
		if !item.HasV2 {
			return Vulnerability{}, false
		}
		return Vulnerability{
			ID:          item.ID,
			Product:     "MySQL",
			Component:   ComponentService,
			Vector:      item.VectorV2,
			Exploitable: true,
			Description: item.Description,
		}, true
	}
	db, err := FromNVDJSON(strings.NewReader(sampleFeed), classify)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (the unscored item is skipped)", db.Len())
	}
	v, ok := db.ByID("CVE-2016-6662")
	if !ok {
		t.Fatal("CVE-2016-6662 missing")
	}
	if v.BaseScore() != 10.0 {
		t.Errorf("base score = %v, want 10.0", v.BaseScore())
	}
	if v.Description != "MySQL remote root code execution" {
		t.Errorf("description = %q (English must win)", v.Description)
	}
	low, _ := db.ByID("CVE-2015-3152")
	if low.BaseScore() != 4.3 {
		t.Errorf("parenthesized vector score = %v, want 4.3", low.BaseScore())
	}
}

func TestFromNVDJSONClassifierSeesUnscored(t *testing.T) {
	var unscored []string
	_, err := FromNVDJSON(strings.NewReader(sampleFeed), func(item NVDItem) (Vulnerability, bool) {
		if !item.HasV2 {
			unscored = append(unscored, item.ID)
		}
		return Vulnerability{}, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(unscored) != 1 || unscored[0] != "CVE-2023-0001" {
		t.Errorf("unscored = %v, want [CVE-2023-0001]", unscored)
	}
}

func TestFromNVDJSONErrors(t *testing.T) {
	keepAll := func(item NVDItem) (Vulnerability, bool) {
		return Vulnerability{ID: item.ID, Product: "x", Component: ComponentOS, Vector: item.VectorV2}, item.HasV2
	}
	if _, err := FromNVDJSON(strings.NewReader(sampleFeed), nil); err == nil {
		t.Error("nil classifier should fail")
	}
	if _, err := FromNVDJSON(strings.NewReader("{not json"), keepAll); err == nil {
		t.Error("malformed JSON should fail")
	}
	bad := `{"CVE_Items":[{"cve":{"CVE_data_meta":{"ID":"CVE-1"}},"impact":{"baseMetricV2":{"cvssV2":{"vectorString":"garbage"}}}}]}`
	if _, err := FromNVDJSON(strings.NewReader(bad), keepAll); err == nil {
		t.Error("bad vector should fail")
	}
	noID := `{"CVE_Items":[{"cve":{},"impact":{}}]}`
	if _, err := FromNVDJSON(strings.NewReader(noID), keepAll); err == nil {
		t.Error("missing CVE ID should fail")
	}
}
