package vulndb

import (
	"encoding/json"
	"fmt"
	"io"

	"redpatch/internal/cvss"
)

// This file ingests the National Vulnerability Database JSON 1.1 feed
// format (the nvdcve-1.1-*.json files), the data source the paper
// collected its inputs from. Only the fields the framework needs are
// decoded: CVE identifier, description, and the CVSS v2 base vector.
// Product assignment, component classification and the exploitability
// flag require human judgement (the paper curates them too), so the
// caller supplies them through a Classifier.

// NVDItem is the decoded subset of one CVE_Items entry.
type NVDItem struct {
	// ID is the CVE identifier.
	ID string
	// Description is the first English description, if any.
	Description string
	// VectorV2 is the CVSS v2 base vector, zero-valued when the feed
	// carries no v2 score.
	VectorV2 cvss.Vector
	// HasV2 reports whether VectorV2 is populated.
	HasV2 bool
}

// Classifier turns a decoded feed item into a full vulnerability record,
// or returns keep=false to skip the item (e.g. products outside the
// modelled network).
type Classifier func(NVDItem) (v Vulnerability, keep bool)

// feed mirrors just enough of the NVD JSON 1.1 schema.
type feed struct {
	CVEItems []struct {
		CVE struct {
			Meta struct {
				ID string `json:"ID"`
			} `json:"CVE_data_meta"`
			Description struct {
				Data []struct {
					Lang  string `json:"lang"`
					Value string `json:"value"`
				} `json:"description_data"`
			} `json:"description"`
		} `json:"cve"`
		Impact struct {
			BaseMetricV2 struct {
				CVSSV2 struct {
					VectorString string `json:"vectorString"`
				} `json:"cvssV2"`
			} `json:"baseMetricV2"`
		} `json:"impact"`
	} `json:"CVE_Items"`
}

// FromNVDJSON decodes an NVD JSON 1.1 feed and builds a database from the
// items the classifier keeps. Items without a v2 vector are offered to
// the classifier with HasV2 == false (it can still keep them by filling
// Vulnerability.Vector itself, e.g. translated from a v3 score).
func FromNVDJSON(r io.Reader, classify Classifier) (*DB, error) {
	if classify == nil {
		return nil, fmt.Errorf("vulndb: nil classifier")
	}
	var f feed
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("vulndb: decode NVD feed: %w", err)
	}
	db := New()
	for _, item := range f.CVEItems {
		out := NVDItem{ID: item.CVE.Meta.ID}
		if out.ID == "" {
			return nil, fmt.Errorf("vulndb: feed item without CVE ID")
		}
		for _, d := range item.CVE.Description.Data {
			if d.Lang == "en" {
				out.Description = d.Value
				break
			}
		}
		if vs := item.Impact.BaseMetricV2.CVSSV2.VectorString; vs != "" {
			vec, err := cvss.Parse(vs)
			if err != nil {
				return nil, fmt.Errorf("vulndb: %s: %w", out.ID, err)
			}
			out.VectorV2 = vec
			out.HasV2 = true
		}
		v, keep := classify(out)
		if !keep {
			continue
		}
		if err := db.Add(v); err != nil {
			return nil, err
		}
	}
	return db, nil
}
