package vulndb

import "sort"

// CompositeASP returns the probability that at least one of the given
// vulnerabilities is successfully exploited, treating exploit attempts as
// independent: 1 - ∏(1 - ASP). Only exploitable records contribute — the
// same admission criterion the HARM applies — so a residual set made of
// unexploitable flaws composes to zero attack surface. The product runs
// over the records in ascending CVE-ID order regardless of input order,
// so callers composing the same set from different traversals (campaign
// planner, fleet simulator) get bit-identical floats.
func CompositeASP(vulns []Vulnerability) float64 {
	asps := make([]struct {
		id  string
		asp float64
	}, 0, len(vulns))
	for _, v := range vulns {
		if !v.Exploitable {
			continue
		}
		asps = append(asps, struct {
			id  string
			asp float64
		}{v.ID, v.ASP()})
	}
	sort.Slice(asps, func(i, j int) bool { return asps[i].id < asps[j].id })
	survive := 1.0
	for _, a := range asps {
		survive *= 1 - a.asp
	}
	return 1 - survive
}
