package attacktree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redpatch/internal/mathx"
)

// webTree reproduces the paper's web-server attack tree:
// OR(v1, v2, v3, AND(v4, v5)) with the Table I values.
func webTree() *Tree {
	return New(NewOR(
		NewLeaf("v1web", 10.0, 1.0),
		NewLeaf("v2web", 10.0, 1.0),
		NewLeaf("v3web", 10.0, 1.0),
		NewAND(
			NewLeaf("v4web", 2.9, 1.0),
			NewLeaf("v5web", 10.0, 0.39),
		),
	))
}

func TestImpactPaperExample(t *testing.T) {
	// Paper §III-C: aim(web1) = max(10.0, 10.0, 10.0, 12.9) = 12.9.
	if got := webTree().Impact(); got != 12.9 {
		t.Errorf("Impact = %v, want 12.9", got)
	}
}

func TestProbabilityRules(t *testing.T) {
	tr := webTree()
	if got := tr.Probability(ORMax); got != 1.0 {
		t.Errorf("Probability(ORMax) = %v, want 1.0", got)
	}
	// After dropping v1..v3 only AND(v4, v5) remains: 1.0 * 0.39.
	pruned := tr.Prune(func(l *Leaf) bool { return l.Ref == "v4web" || l.Ref == "v5web" })
	if got := pruned.Probability(ORMax); !mathx.AlmostEqual(got, 0.39, 1e-12) {
		t.Errorf("pruned Probability = %v, want 0.39", got)
	}
	if got := pruned.Impact(); got != 12.9 {
		t.Errorf("pruned Impact = %v, want 12.9 (2.9 + 10.0)", got)
	}
}

func TestNoisyOR(t *testing.T) {
	tr := New(NewOR(NewLeaf("a", 1, 0.5), NewLeaf("b", 1, 0.5)))
	if got := tr.Probability(ORNoisy); !mathx.AlmostEqual(got, 0.75, 1e-12) {
		t.Errorf("Probability(ORNoisy) = %v, want 0.75", got)
	}
	if got := tr.Probability(ORMax); got != 0.5 {
		t.Errorf("Probability(ORMax) = %v, want 0.5", got)
	}
}

func TestEmptyTree(t *testing.T) {
	empty := New(nil)
	if !empty.Empty() {
		t.Error("tree with nil root should be empty")
	}
	if empty.Impact() != 0 || empty.Probability(ORMax) != 0 {
		t.Error("empty tree metrics should be 0")
	}
	if empty.Leaves() != nil {
		t.Error("empty tree has no leaves")
	}
	if empty.String() != "∅" {
		t.Errorf("empty tree String = %q", empty.String())
	}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty tree should validate: %v", err)
	}
	var nilTree *Tree
	if !nilTree.Empty() {
		t.Error("nil *Tree should be empty")
	}
}

func TestPruneANDSemantics(t *testing.T) {
	// Removing one AND child kills the whole conjunction.
	tr := New(NewAND(NewLeaf("a", 1, 1), NewLeaf("b", 2, 1)))
	pruned := tr.Prune(func(l *Leaf) bool { return l.Ref == "a" })
	if !pruned.Empty() {
		t.Errorf("pruned AND should be empty, got %v", pruned)
	}
}

func TestPruneORSemantics(t *testing.T) {
	tr := New(NewOR(NewLeaf("a", 1, 0.5), NewLeaf("b", 2, 0.7)))
	pruned := tr.Prune(func(l *Leaf) bool { return l.Ref == "b" })
	if pruned.Empty() {
		t.Fatal("OR with one surviving child should remain")
	}
	if got := pruned.Impact(); got != 2 {
		t.Errorf("pruned Impact = %v, want 2", got)
	}
	all := tr.Prune(func(l *Leaf) bool { return false })
	if !all.Empty() {
		t.Error("pruning every leaf should empty the tree")
	}
}

func TestPruneNested(t *testing.T) {
	// The paper's database tree: OR(v1, v2, AND(v3, v4), v5); patching
	// v1 and v2 must keep OR(AND(v3, v4), v5).
	tr := New(NewOR(
		NewLeaf("v1db", 10.0, 1.0),
		NewLeaf("v2db", 10.0, 1.0),
		NewAND(NewLeaf("v3db", 2.9, 0.86), NewLeaf("v4db", 10.0, 0.39)),
		NewLeaf("v5db", 10.0, 0.39),
	))
	critical := map[string]bool{"v1db": true, "v2db": true}
	pruned := tr.Prune(func(l *Leaf) bool { return !critical[l.Ref] })
	if got := pruned.Impact(); got != 12.9 {
		t.Errorf("pruned db Impact = %v, want 12.9", got)
	}
	if got := len(pruned.Leaves()); got != 3 {
		t.Errorf("pruned db leaves = %d, want 3", got)
	}
	if got := pruned.Probability(ORMax); got != 0.39 {
		t.Errorf("pruned db Probability(ORMax) = %v, want 0.39", got)
	}
}

func TestPruneDoesNotMutateOriginal(t *testing.T) {
	tr := webTree()
	before := tr.String()
	_ = tr.Prune(func(l *Leaf) bool { return false })
	if tr.String() != before {
		t.Error("Prune must not mutate the receiver")
	}
}

func TestLeaves(t *testing.T) {
	got := webTree().Leaves()
	if len(got) != 5 {
		t.Fatalf("Leaves = %d, want 5", len(got))
	}
	if got[0].Ref != "v1web" || got[4].Ref != "v5web" {
		t.Errorf("Leaves order wrong: %v, %v", got[0].Ref, got[4].Ref)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := webTree()
	cl := tr.Clone()
	cl.Leaves()[0].Impact = 99
	if tr.Leaves()[0].Impact == 99 {
		t.Error("Clone must copy leaves")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		tree    *Tree
		wantErr bool
	}{
		{name: "ok", tree: webTree(), wantErr: false},
		{name: "emptyGate", tree: New(NewOR()), wantErr: true},
		{name: "badProb", tree: New(NewLeaf("x", 1, 1.5)), wantErr: true},
		{name: "negImpact", tree: New(NewLeaf("x", -1, 0.5)), wantErr: true},
		{name: "emptyRef", tree: New(NewLeaf("", 1, 0.5)), wantErr: true},
		{name: "badOp", tree: New(&Gate{Op: 0, Children: []Node{NewLeaf("x", 1, 1)}}), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.tree.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestString(t *testing.T) {
	want := "OR(v1web, v2web, v3web, AND(v4web, v5web))"
	if got := webTree().String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func randomTree(rng *rand.Rand, depth int) Node {
	if depth == 0 || rng.Intn(3) == 0 {
		return NewLeaf("v", rng.Float64()*10, rng.Float64())
	}
	n := 1 + rng.Intn(3)
	children := make([]Node, n)
	for i := range children {
		children[i] = randomTree(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return NewOR(children...)
	}
	return NewAND(children...)
}

// TestProbabilityBounds: probabilities stay in [0,1] and noisy-OR
// dominates max-OR on every tree.
func TestProbabilityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(randomTree(rng, 4))
		pMax := tr.Probability(ORMax)
		pNoisy := tr.Probability(ORNoisy)
		if pMax < 0 || pMax > 1 || pNoisy < 0 || pNoisy > 1 {
			return false
		}
		return pNoisy >= pMax-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPruneMonotonicity: pruning can never increase impact or probability.
func TestPruneMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(randomTree(rng, 4))
		pruned := tr.Prune(func(l *Leaf) bool { return rng.Intn(2) == 0 })
		if pruned.Impact() > tr.Impact()+1e-12 {
			return false
		}
		return pruned.Probability(ORMax) <= tr.Probability(ORMax)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
