package attacktree_test

import (
	"fmt"

	"redpatch/internal/attacktree"
)

// Example builds the paper's web-server attack tree and applies the
// security-patch transformation: the three critical exploits disappear
// and only the AND-chained pair survives.
func Example() {
	tree := attacktree.New(attacktree.NewOR(
		attacktree.NewLeaf("v1web", 10.0, 1.0),
		attacktree.NewLeaf("v2web", 10.0, 1.0),
		attacktree.NewLeaf("v3web", 10.0, 1.0),
		attacktree.NewAND(
			attacktree.NewLeaf("v4web", 2.9, 1.0),
			attacktree.NewLeaf("v5web", 10.0, 0.39),
		),
	))
	fmt.Printf("before: impact %.1f prob %.2f\n", tree.Impact(), tree.Probability(attacktree.ORMax))

	critical := map[string]bool{"v1web": true, "v2web": true, "v3web": true}
	patched := tree.Prune(func(l *attacktree.Leaf) bool { return !critical[l.Ref] })
	fmt.Printf("after:  impact %.1f prob %.2f (%s)\n",
		patched.Impact(), patched.Probability(attacktree.ORMax), patched)
	// Output:
	// before: impact 12.9 prob 1.00
	// after:  impact 12.9 prob 0.39 (OR(AND(v4web, v5web)))
}
