// Package attacktree implements the AND/OR attack trees that form the
// lower layer of the paper's HARM. A tree describes how combinations of
// vulnerability exploits compromise a single host: OR children are
// alternative exploits, AND children must all succeed together (the paper
// pairs a remote foothold with a local privilege escalation this way).
//
// Metric evaluation follows the HARM literature the paper cites:
// attack impact uses max over OR and sum over AND; attack success
// probability uses product over AND and, selectably, max or noisy-OR over
// OR.
package attacktree

import (
	"fmt"
	"strings"
)

// Node is a tree node: either a *Leaf or a *Gate.
type Node interface {
	isNode()
	clone() Node
}

// Leaf references a single exploitable vulnerability with its attack
// impact and attack success probability (derived from CVSS in the paper).
type Leaf struct {
	// Ref identifies the vulnerability, e.g. "CVE-2016-6662".
	Ref string
	// Impact is the attack impact of a successful exploit.
	Impact float64
	// Prob is the attack success probability in [0, 1].
	Prob float64
}

func (*Leaf) isNode() {}

func (l *Leaf) clone() Node {
	c := *l
	return &c
}

// Op is a gate operator.
type Op int

// Gate operators.
const (
	// OR succeeds when any child succeeds.
	OR Op = iota + 1
	// AND succeeds only when all children succeed.
	AND
)

// String returns the operator label.
func (o Op) String() string {
	switch o {
	case OR:
		return "OR"
	case AND:
		return "AND"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Gate combines child nodes under an operator.
type Gate struct {
	Op       Op
	Children []Node
}

func (*Gate) isNode() {}

func (g *Gate) clone() Node {
	c := &Gate{Op: g.Op, Children: make([]Node, len(g.Children))}
	for i, ch := range g.Children {
		c.Children[i] = ch.clone()
	}
	return c
}

// NewLeaf constructs a leaf node.
func NewLeaf(ref string, impact, prob float64) *Leaf {
	return &Leaf{Ref: ref, Impact: impact, Prob: prob}
}

// NewOR constructs an OR gate over the given children.
func NewOR(children ...Node) *Gate { return &Gate{Op: OR, Children: children} }

// NewAND constructs an AND gate over the given children.
func NewAND(children ...Node) *Gate { return &Gate{Op: AND, Children: children} }

// ORRule selects how OR gates combine child probabilities.
type ORRule int

// OR combination rules.
const (
	// ORMax takes the maximum child probability: the attacker picks the
	// single most promising alternative. This is the rule in the HARM
	// papers the authors cite.
	ORMax ORRule = iota + 1
	// ORNoisy combines children as 1 - prod(1 - p): alternatives count as
	// independent chances.
	ORNoisy
)

// Tree is an attack tree for one host. A Tree with a nil root is "empty":
// the host has no exploitable vulnerability combination, which after
// patching removes it from the attack graph.
type Tree struct {
	root Node
}

// New builds a tree with the given root; a nil root yields an empty tree.
func New(root Node) *Tree { return &Tree{root: root} }

// Empty reports whether the tree offers the attacker nothing.
func (t *Tree) Empty() bool { return t == nil || t.root == nil }

// Root returns the root node (nil for an empty tree).
func (t *Tree) Root() Node {
	if t == nil {
		return nil
	}
	return t.root
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree {
	if t.Empty() {
		return &Tree{}
	}
	return &Tree{root: t.root.clone()}
}

// Validate checks structural sanity: gates have at least one child, leaf
// probabilities lie in [0, 1], and impacts are non-negative.
func (t *Tree) Validate() error {
	if t.Empty() {
		return nil
	}
	return validate(t.root)
}

func validate(n Node) error {
	switch v := n.(type) {
	case *Leaf:
		if v.Ref == "" {
			return fmt.Errorf("attacktree: leaf with empty ref")
		}
		if v.Prob < 0 || v.Prob > 1 {
			return fmt.Errorf("attacktree: leaf %q probability %v outside [0,1]", v.Ref, v.Prob)
		}
		if v.Impact < 0 {
			return fmt.Errorf("attacktree: leaf %q negative impact %v", v.Ref, v.Impact)
		}
		return nil
	case *Gate:
		if v.Op != OR && v.Op != AND {
			return fmt.Errorf("attacktree: invalid gate op %d", v.Op)
		}
		if len(v.Children) == 0 {
			return fmt.Errorf("attacktree: %s gate with no children", v.Op)
		}
		for _, ch := range v.Children {
			if err := validate(ch); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("attacktree: unknown node type %T", n)
	}
}

// Impact evaluates the attack impact of the tree: leaves contribute their
// impact, OR takes the maximum child, AND sums its children (paper
// §III-C). An empty tree has impact 0.
func (t *Tree) Impact() float64 {
	if t.Empty() {
		return 0
	}
	return impactOf(t.root)
}

func impactOf(n Node) float64 {
	switch v := n.(type) {
	case *Leaf:
		return v.Impact
	case *Gate:
		if v.Op == AND {
			var sum float64
			for _, ch := range v.Children {
				sum += impactOf(ch)
			}
			return sum
		}
		best := 0.0
		for _, ch := range v.Children {
			if i := impactOf(ch); i > best {
				best = i
			}
		}
		return best
	default:
		return 0
	}
}

// Probability evaluates the attack success probability of the tree: AND
// multiplies children, OR combines them per the rule. An empty tree has
// probability 0.
func (t *Tree) Probability(rule ORRule) float64 {
	if t.Empty() {
		return 0
	}
	return probOf(t.root, rule)
}

func probOf(n Node, rule ORRule) float64 {
	switch v := n.(type) {
	case *Leaf:
		return v.Prob
	case *Gate:
		if v.Op == AND {
			p := 1.0
			for _, ch := range v.Children {
				p *= probOf(ch, rule)
			}
			return p
		}
		if rule == ORNoisy {
			q := 1.0
			for _, ch := range v.Children {
				q *= 1 - probOf(ch, rule)
			}
			return 1 - q
		}
		best := 0.0
		for _, ch := range v.Children {
			if p := probOf(ch, rule); p > best {
				best = p
			}
		}
		return best
	default:
		return 0
	}
}

// LeafCount returns the number of leaves without materializing them —
// the alloc-free counterpart of len(Leaves()) for the NoEV hot path,
// where the metric is recomputed per host instance.
func (t *Tree) LeafCount() int {
	if t.Empty() {
		return 0
	}
	return leafCount(t.root)
}

func leafCount(n Node) int {
	switch v := n.(type) {
	case *Leaf:
		return 1
	case *Gate:
		total := 0
		for _, ch := range v.Children {
			total += leafCount(ch)
		}
		return total
	default:
		return 0
	}
}

// Metrics evaluates impact and success probability in one traversal —
// the combined form of Impact and Probability for evaluators that need
// both per host and want to walk the tree once.
func (t *Tree) Metrics(rule ORRule) (impact, prob float64) {
	if t.Empty() {
		return 0, 0
	}
	return metricsOf(t.root, rule)
}

func metricsOf(n Node, rule ORRule) (impact, prob float64) {
	switch v := n.(type) {
	case *Leaf:
		return v.Impact, v.Prob
	case *Gate:
		if v.Op == AND {
			prob = 1
			for _, ch := range v.Children {
				ci, cp := metricsOf(ch, rule)
				impact += ci
				prob *= cp
			}
			return impact, prob
		}
		if rule == ORNoisy {
			q := 1.0
			for _, ch := range v.Children {
				ci, cp := metricsOf(ch, rule)
				if ci > impact {
					impact = ci
				}
				q *= 1 - cp
			}
			return impact, 1 - q
		}
		for _, ch := range v.Children {
			ci, cp := metricsOf(ch, rule)
			if ci > impact {
				impact = ci
			}
			if cp > prob {
				prob = cp
			}
		}
		return impact, prob
	default:
		return 0, 0
	}
}

// Leaves returns the leaves of the tree in depth-first order.
func (t *Tree) Leaves() []*Leaf {
	if t.Empty() {
		return nil
	}
	var out []*Leaf
	var walk func(Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case *Leaf:
			out = append(out, v)
		case *Gate:
			for _, ch := range v.Children {
				walk(ch)
			}
		}
	}
	walk(t.root)
	return out
}

// Prune returns a new tree containing only the leaves accepted by keep.
// AND gates lose their purpose when any child disappears (the combination
// is no longer executable), so they vanish entirely; OR gates drop removed
// children and vanish only when no child remains. This is exactly the
// transformation the paper applies when critical vulnerabilities are
// patched.
func (t *Tree) Prune(keep func(*Leaf) bool) *Tree {
	if t.Empty() {
		return &Tree{}
	}
	return &Tree{root: prune(t.root, keep)}
}

func prune(n Node, keep func(*Leaf) bool) Node {
	switch v := n.(type) {
	case *Leaf:
		if keep(v) {
			return v.clone()
		}
		return nil
	case *Gate:
		var kept []Node
		for _, ch := range v.Children {
			if p := prune(ch, keep); p != nil {
				kept = append(kept, p)
			}
		}
		if v.Op == AND {
			if len(kept) != len(v.Children) {
				return nil
			}
			return &Gate{Op: AND, Children: kept}
		}
		if len(kept) == 0 {
			return nil
		}
		return &Gate{Op: OR, Children: kept}
	default:
		return nil
	}
}

// String renders the tree as a compact s-expression, e.g.
// "OR(v1, AND(v4, v5))"; empty trees render as "∅".
func (t *Tree) String() string {
	if t.Empty() {
		return "∅"
	}
	var b strings.Builder
	render(&b, t.root)
	return b.String()
}

func render(b *strings.Builder, n Node) {
	switch v := n.(type) {
	case *Leaf:
		b.WriteString(v.Ref)
	case *Gate:
		b.WriteString(v.Op.String())
		b.WriteString("(")
		for i, ch := range v.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			render(b, ch)
		}
		b.WriteString(")")
	}
}
