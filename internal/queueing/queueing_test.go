package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"redpatch/internal/mathx"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		q       MMc
		wantErr bool
	}{
		{name: "ok", q: MMc{Lambda: 10, Mu: 4, C: 3}, wantErr: false},
		{name: "zeroLambda", q: MMc{Mu: 4, C: 3}, wantErr: true},
		{name: "zeroMu", q: MMc{Lambda: 1, C: 3}, wantErr: true},
		{name: "zeroServers", q: MMc{Lambda: 1, Mu: 1}, wantErr: true},
		{name: "nan", q: MMc{Lambda: math.NaN(), Mu: 1, C: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.q.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

// TestMM1ClosedForm: for c = 1 the Erlang-C probability equals rho and
// W = 1/(mu - lambda).
func TestMM1ClosedForm(t *testing.T) {
	q := MMc{Lambda: 3, Mu: 5, C: 1}
	pc, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(pc, 0.6, 1e-12) {
		t.Errorf("ErlangC = %v, want rho = 0.6", pc)
	}
	w, err := q.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(w, 1.0/(5-3), 1e-12) {
		t.Errorf("W = %v, want 0.5", w)
	}
	lq, err := q.MeanQueueLength()
	if err != nil {
		t.Fatal(err)
	}
	// Lq = rho^2/(1-rho) = 0.36/0.4 = 0.9.
	if !mathx.AlmostEqual(lq, 0.9, 1e-12) {
		t.Errorf("Lq = %v, want 0.9", lq)
	}
}

// TestMM2KnownValue pins an M/M/2 Erlang-C value computed by hand:
// lambda=3, mu=2, a=1.5, rho=0.75 -> C = (a^2/2!)/(1-rho) /
// (1 + a + (a^2/2!)/(1-rho)) = 4.5/7 = 0.642857...
func TestMM2KnownValue(t *testing.T) {
	q := MMc{Lambda: 3, Mu: 2, C: 2}
	pc, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(pc, 4.5/7, 1e-12) {
		t.Errorf("ErlangC = %v, want %v", pc, 4.5/7)
	}
}

func TestUnstableQueue(t *testing.T) {
	q := MMc{Lambda: 10, Mu: 4, C: 2}
	if q.Stable() {
		t.Error("rho = 1.25 should be unstable")
	}
	if _, err := q.ErlangC(); err == nil {
		t.Error("ErlangC of unstable queue should fail")
	}
}

// TestMoreServersReduceWaiting is a property: adding a server at fixed
// load never increases the mean response time.
func TestMoreServersReduceWaiting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.5 + rng.Float64()*5
		c := 1 + rng.Intn(6)
		lambda := 0.9 * float64(c) * mu * rng.Float64()
		if lambda <= 0 {
			return true
		}
		q1 := MMc{Lambda: lambda, Mu: mu, C: c}
		q2 := MMc{Lambda: lambda, Mu: mu, C: c + 1}
		w1, err1 := q1.MeanResponseTime()
		w2, err2 := q2.MeanResponseTime()
		if err1 != nil || err2 != nil {
			return false
		}
		return w2 <= w1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestErlangCInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.5 + rng.Float64()*5
		c := 1 + rng.Intn(10)
		lambda := 0.99 * float64(c) * mu * rng.Float64()
		if lambda <= 0 {
			return true
		}
		pc, err := MMc{Lambda: lambda, Mu: mu, C: c}.ErlangC()
		return err == nil && pc >= 0 && pc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinomialCapacity(t *testing.T) {
	d := BinomialCapacity(2, 0.9)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(d[2], 0.81, 1e-12) || !mathx.AlmostEqual(d[1], 0.18, 1e-12) || !mathx.AlmostEqual(d[0], 0.01, 1e-12) {
		t.Errorf("BinomialCapacity(2, 0.9) = %v", d)
	}
}

func TestCapacityDistributionValidate(t *testing.T) {
	if err := (CapacityDistribution{}).Validate(); err == nil {
		t.Error("empty distribution should fail")
	}
	if err := (CapacityDistribution{0.5, 0.4}).Validate(); err == nil {
		t.Error("non-normalized distribution should fail")
	}
	if err := (CapacityDistribution{-0.1, 1.1}).Validate(); err == nil {
		t.Error("negative probability should fail")
	}
}

func TestResponseUnderPatch(t *testing.T) {
	// Two servers, each up with probability 0.99; load fits one server.
	capacity := BinomialCapacity(2, 0.99)
	resp, err := ResponseUnderPatch(3, 5, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if resp.UnstableProbability != 0 {
		t.Errorf("no state should be unstable, got %v", resp.UnstableProbability)
	}
	if !mathx.AlmostEqual(resp.DownProbability, 0.0001, 1e-12) {
		t.Errorf("DownProbability = %v, want 0.0001", resp.DownProbability)
	}
	// The conditional mean lies between the M/M/2 and M/M/1 times.
	w2, err := MMc{Lambda: 3, Mu: 5, C: 2}.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	w1, err := MMc{Lambda: 3, Mu: 5, C: 1}.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if resp.MeanResponseTime < w2 || resp.MeanResponseTime > w1 {
		t.Errorf("mean response %v outside [%v, %v]", resp.MeanResponseTime, w2, w1)
	}
}

func TestResponseUnderPatchUnstableStates(t *testing.T) {
	// Load needs two servers: the one-server state is unstable.
	capacity := BinomialCapacity(2, 0.9)
	resp, err := ResponseUnderPatch(7, 5, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(resp.UnstableProbability, 0.18, 1e-12) {
		t.Errorf("UnstableProbability = %v, want 0.18 (the one-up state)", resp.UnstableProbability)
	}
}

// TestPatchImpactOnResponse documents the extension's headline: a slower
// patch (lower per-server availability) worsens user-visible response
// time via capacity loss.
func TestPatchImpactOnResponse(t *testing.T) {
	fast, err := ResponseUnderPatch(4, 5, BinomialCapacity(2, 0.999))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ResponseUnderPatch(4, 5, BinomialCapacity(2, 0.99))
	if err != nil {
		t.Fatal(err)
	}
	if slow.MeanResponseTime <= fast.MeanResponseTime {
		t.Errorf("lower availability should worsen response: %v vs %v",
			slow.MeanResponseTime, fast.MeanResponseTime)
	}
}
