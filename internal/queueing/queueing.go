// Package queueing implements the M/M/c queueing model the paper lists as
// its user-oriented-performance extension (§V): mean response and waiting
// times of a server tier under client load, including the degraded-capacity
// states a patch round induces. The Erlang-C machinery is standard; the
// patch-aware helper weights per-capacity response times by the tier's
// steady-state capacity distribution.
package queueing

import (
	"fmt"
	"math"

	"redpatch/internal/mathx"
)

// MMc is an M/M/c queue: Poisson arrivals at rate Lambda, exponential
// service at rate Mu per server, C identical servers, infinite buffer.
type MMc struct {
	Lambda float64 // arrival rate (requests per hour)
	Mu     float64 // per-server service rate (requests per hour)
	C      int     // number of servers
}

// Validate checks parameter sanity (stability is checked separately).
func (q MMc) Validate() error {
	if q.Lambda <= 0 || math.IsNaN(q.Lambda) || math.IsInf(q.Lambda, 0) {
		return fmt.Errorf("queueing: invalid arrival rate %v", q.Lambda)
	}
	if q.Mu <= 0 || math.IsNaN(q.Mu) || math.IsInf(q.Mu, 0) {
		return fmt.Errorf("queueing: invalid service rate %v", q.Mu)
	}
	if q.C < 1 {
		return fmt.Errorf("queueing: need at least one server, have %d", q.C)
	}
	return nil
}

// Utilization returns rho = lambda / (c * mu).
func (q MMc) Utilization() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports whether the queue is stable (rho < 1).
func (q MMc) Stable() bool { return q.Utilization() < 1 }

// ErlangC returns the probability an arriving request has to wait
// (the Erlang-C formula). The queue must be valid and stable.
func (q MMc) ErlangC() (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if !q.Stable() {
		return 0, fmt.Errorf("queueing: unstable queue (rho = %v)", q.Utilization())
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	c := q.C
	// Compute the Erlang-C probability with a numerically stable
	// iterative form of the factorial sums.
	sum := 0.0
	term := 1.0 // a^k / k! at k = 0
	for k := 0; k < c; k++ {
		sum += term
		term *= a / float64(k+1)
	}
	// term now holds a^c / c!.
	last := term / (1 - q.Utilization())
	return mathx.Clamp01(last / (sum + last)), nil
}

// MeanWaitingTime returns Wq, the mean time spent queued before service.
func (q MMc) MeanWaitingTime() (float64, error) {
	pc, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pc / (float64(q.C)*q.Mu - q.Lambda), nil
}

// MeanResponseTime returns W = Wq + 1/mu.
func (q MMc) MeanResponseTime() (float64, error) {
	wq, err := q.MeanWaitingTime()
	if err != nil {
		return 0, err
	}
	return wq + 1/q.Mu, nil
}

// MeanQueueLength returns Lq = lambda * Wq (Little's law).
func (q MMc) MeanQueueLength() (float64, error) {
	wq, err := q.MeanWaitingTime()
	if err != nil {
		return 0, err
	}
	return q.Lambda * wq, nil
}

// CapacityDistribution is the steady-state probability of each up-server
// count of a tier, indexed 0..N. internal/availability produces it from
// the aggregated patch/recovery rates (binomial under per-server
// semantics).
type CapacityDistribution []float64

// BinomialCapacity returns the capacity distribution of n independent
// servers each up with probability a.
func BinomialCapacity(n int, a float64) CapacityDistribution {
	out := make(CapacityDistribution, n+1)
	for k := 0; k <= n; k++ {
		out[k] = mathx.Binomial(n, k) * math.Pow(a, float64(k)) * math.Pow(1-a, float64(n-k))
	}
	return out
}

// Validate checks the distribution sums to one.
func (d CapacityDistribution) Validate() error {
	if len(d) == 0 {
		return fmt.Errorf("queueing: empty capacity distribution")
	}
	sum := 0.0
	for _, p := range d {
		if p < 0 {
			return fmt.Errorf("queueing: negative probability in capacity distribution")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("queueing: capacity distribution sums to %v, want 1", sum)
	}
	return nil
}

// PatchAwareResponse is the user-oriented performance result of a tier
// under a patch schedule.
type PatchAwareResponse struct {
	// MeanResponseTime is E[W | some capacity is up and the state is
	// stable], in hours.
	MeanResponseTime float64
	// UnstableProbability is the probability mass of capacity states
	// where the offered load exceeds the remaining capacity (requests
	// pile up without bound).
	UnstableProbability float64
	// DownProbability is the probability that no server is up.
	DownProbability float64
}

// ResponseUnderPatch weights M/M/k response times by the capacity
// distribution of a tier: state k has k servers up and behaves as M/M/k.
// States with zero capacity or an unstable queue are excluded from the
// conditional mean and reported separately.
func ResponseUnderPatch(lambda, mu float64, capacity CapacityDistribution) (PatchAwareResponse, error) {
	if err := capacity.Validate(); err != nil {
		return PatchAwareResponse{}, err
	}
	var out PatchAwareResponse
	var weighted, mass float64
	for k, p := range capacity {
		if p == 0 {
			continue
		}
		if k == 0 {
			out.DownProbability += p
			continue
		}
		q := MMc{Lambda: lambda, Mu: mu, C: k}
		if err := q.Validate(); err != nil {
			return PatchAwareResponse{}, err
		}
		if !q.Stable() {
			out.UnstableProbability += p
			continue
		}
		w, err := q.MeanResponseTime()
		if err != nil {
			return PatchAwareResponse{}, err
		}
		weighted += p * w
		mass += p
	}
	if mass > 0 {
		out.MeanResponseTime = weighted / mass
	}
	return out, nil
}
