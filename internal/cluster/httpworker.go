package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"encoding/json"

	"redpatch/internal/paperdata"
)

// HTTPWorker speaks the redpatchd worker RPC: POST the shard's sweep
// request to the v2 NDJSON sweep endpoint and stream the report lines
// back, with GET /readyz as the health probe. The protocol is exactly
// the public sweep API — a worker is an ordinary redpatchd process,
// and the lines it returns are forwarded to clients verbatim.
type HTTPWorker struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTPWorker builds a worker for a redpatchd base URL
// ("http://host:port", scheme optional — host:port gets http://).
// A nil client uses http.DefaultClient.
func NewHTTPWorker(base string, client *http.Client) *HTTPWorker {
	name := base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPWorker{name: name, base: strings.TrimRight(base, "/"), client: client}
}

// Name implements Worker.
func (w *HTTPWorker) Name() string { return w.name }

// Healthy implements Worker: GET /readyz, 200 means ready. A worker
// that is alive but still restoring its cache (or not yet registered)
// answers 503 and stays out of the rotation.
func (w *HTTPWorker) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: worker %s not ready: %s", w.name, resp.Status)
	}
	return nil
}

// wireLine is the union of every NDJSON line shape the sweep stream
// produces: progress events, the done trailer, error trailers and
// report lines (recognized by their Spec). One unmarshal classifies
// a line. Done is raw because the field is overloaded on the wire:
// progress events carry a completed-design count ("done":12), the
// trailer carries the boolean true.
type wireLine struct {
	Progress bool            `json:"progress"`
	Done     json.RawMessage `json:"done"`
	Total    int             `json:"total"`
	Error    string          `json:"error"`
	Spec     struct {
		Tiers []struct {
			Role     string `json:"role"`
			Replicas int    `json:"replicas"`
			Variant  string `json:"variant"`
		} `json:"tiers"`
	} `json:"Spec"`
}

// RunShard implements Worker: stream the shard's sweep and emit each
// report line with its design key. A response that ends without a
// done trailer — a worker killed mid-shard — is an error, so the
// coordinator retries the shard elsewhere.
func (w *HTTPWorker) RunShard(ctx context.Context, body []byte, emit func(Report) error) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/api/v2/sweep/stream", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("cluster: worker %s: %s: %s", w.name, resp.Status, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var wl wireLine
		if err := json.Unmarshal(line, &wl); err != nil {
			return 0, fmt.Errorf("cluster: worker %s: malformed line: %w", w.name, err)
		}
		switch {
		case wl.Error != "":
			return 0, fmt.Errorf("cluster: worker %s: %s", w.name, wl.Error)
		case string(wl.Done) == "true":
			return wl.Total, nil
		case wl.Progress:
			// Per-shard progress: the coordinator reports shard
			// completions instead, so these are dropped.
		case len(wl.Spec.Tiers) > 0:
			spec := paperdata.DesignSpec{Tiers: make([]paperdata.TierSpec, len(wl.Spec.Tiers))}
			for i, t := range wl.Spec.Tiers {
				spec.Tiers[i] = paperdata.TierSpec{Role: t.Role, Replicas: t.Replicas, Variant: t.Variant}
			}
			if err := emit(Report{Key: spec.Key(), Line: append([]byte(nil), line...)}); err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("cluster: worker %s: unrecognized line %q", w.name, line)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("cluster: worker %s: stream cut mid-shard: %w", w.name, err)
	}
	return 0, fmt.Errorf("cluster: worker %s: stream ended without done trailer", w.name)
}
