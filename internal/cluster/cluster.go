// Package cluster is the fault-tolerant sharded sweep layer behind
// redpatchd's coordinator mode: it partitions a sweep's design space
// into hash shards (paperdata.ShardIndex over DesignSpec.Key) and
// dispatches each shard to a worker — a redpatchd process in -worker
// mode, spoken to over the existing v2 NDJSON sweep protocol — with
// the robustness machinery a fleet of unreliable processes needs:
//
//   - a per-worker circuit breaker fed by dispatch outcomes and
//     periodic health probes (/readyz), so dead workers stop being
//     picked after a few failures and come back via half-open trials;
//   - per-shard attempt timeouts and capped exponential backoff with
//     full jitter between retries;
//   - hedged re-dispatch of straggler shards onto a second worker,
//     first result wins;
//   - reassignment: every retry re-picks the least-loaded available
//     worker, excluding the one that just failed;
//   - graceful degradation: a shard that exhausts its remote attempts
//     — or a sweep that starts with no available worker at all — runs
//     through the caller-supplied local evaluator, so a cluster of
//     zero is byte-identical to a single process.
//
// Results are deduplicated by design key as they stream in (a retried
// or hedged shard may re-emit designs its failed attempt already
// delivered; every emission is a correct evaluation of the same
// design, so dropping duplicates is safe), and the coordinator's
// caller merges Pareto fronts incrementally from the deduplicated
// stream. Every dispatch and probe runs through an optional
// faultinject site, so the whole layer is chaos-testable in-process.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	randv2 "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"redpatch/internal/faultinject"
	"redpatch/internal/trace"
)

// Chaos site names the coordinator runs when Options.Chaos is set.
const (
	// ChaosSiteDispatch runs before every remote shard attempt.
	ChaosSiteDispatch = "cluster.dispatch"
	// ChaosSiteProbe runs before every health probe.
	ChaosSiteProbe = "cluster.probe"
)

// Shard identifies one hash partition of a sweep's design space:
// the designs whose paperdata.ShardIndex(key, Count) equals Index.
type Shard struct {
	Index int
	Count int
}

// Report is one evaluated design streamed back from a shard: the
// design's canonical cache key (the dedup identity) and the verbatim
// NDJSON report line it arrived as, so the coordinator can forward
// worker results byte-identical to locally evaluated ones.
type Report struct {
	Key  string
	Line []byte
}

// Worker is one remote evaluation endpoint. Implementations must be
// safe for concurrent use; the coordinator may run several shards —
// including hedged duplicates — on one worker at a time.
type Worker interface {
	// Name labels the worker in logs, metrics and spans.
	Name() string
	// Healthy reports whether the worker is ready to accept shards;
	// the probe the circuit breaker consumes (GET /readyz for the
	// HTTP worker).
	Healthy(ctx context.Context) error
	// RunShard executes one shard request (an opaque, caller-built
	// RPC body) and streams each evaluated design to emit as it
	// arrives. It returns the number of designs the shard enumerated.
	// An error — including a stream cut mid-shard — means the shard
	// must be retried elsewhere; designs already emitted stay valid.
	RunShard(ctx context.Context, body []byte, emit func(Report) error) (total int, err error)
}

// Job is one sweep to distribute: how to render a shard's RPC body,
// and how to evaluate a shard locally when no worker can.
type Job struct {
	// Body renders the worker RPC request for one shard — the v2
	// sweep request with the shard field set.
	Body func(Shard) ([]byte, error)
	// Local evaluates one shard in-process: the graceful-degradation
	// path. emit runs on the calling goroutine.
	Local func(ctx context.Context, shard Shard, emit func(Report) error) (total int, err error)
}

// Options tune the coordinator's robustness machinery. Zero values
// select the defaults noted on each field.
type Options struct {
	// ShardTimeout bounds one remote shard attempt (default 2m).
	ShardTimeout time.Duration
	// MaxAttempts is the number of remote attempts per shard before
	// falling back to local evaluation (default 3).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the full-jitter exponential
	// backoff between a shard's remote attempts: attempt n sleeps
	// uniform[0, min(BackoffBase<<n, BackoffCap)) (defaults 50ms, 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeAfter is how long a shard attempt may run before a
	// duplicate attempt is dispatched to a second worker, first
	// result wins (default 15s; negative disables hedging).
	HedgeAfter time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects the worker
	// before a half-open trial may close it again (default 10s).
	BreakerCooldown time.Duration
	// ProbeInterval is the health-probe cadence of Start (default 5s).
	ProbeInterval time.Duration
	// Chaos, when non-nil, threads the dispatch and probe sites
	// through the injector. Nil in production.
	Chaos *faultinject.Injector
	// Logger receives worker-failure and fallback events; nil
	// discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 2 * time.Minute
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 15 * time.Second
	}
	if o.BreakerThreshold < 1 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 5 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// workerState is one worker plus its circuit breaker and load.
type workerState struct {
	w Worker

	mu          sync.Mutex
	inflight    int
	consecFails int
	openUntil   time.Time
	successes   uint64
	failures    uint64
}

// succeed closes the circuit.
func (ws *workerState) succeed() {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.consecFails = 0
	ws.openUntil = time.Time{}
	ws.successes++
}

// fail records one failure; at threshold the circuit opens (and an
// already-open circuit's cooldown restarts, so a half-open trial that
// fails re-opens it).
func (ws *workerState) fail(threshold int, cooldown time.Duration) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.failures++
	ws.consecFails++
	if ws.consecFails >= threshold {
		ws.openUntil = time.Now().Add(cooldown)
	}
}

// Coordinator owns a set of workers and distributes sharded sweeps
// across them. Safe for concurrent use; many sweeps may run at once.
type Coordinator struct {
	workers []*workerState
	opts    Options

	dispatches     atomic.Uint64
	retries        atomic.Uint64
	hedges         atomic.Uint64
	localFallbacks atomic.Uint64
	shardsDone     atomic.Uint64
}

// New builds a coordinator over the given workers. An empty worker
// set is valid: every sweep then runs on the local path.
func New(workers []Worker, opts Options) *Coordinator {
	c := &Coordinator{opts: opts.withDefaults()}
	for _, w := range workers {
		c.workers = append(c.workers, &workerState{w: w})
	}
	return c
}

// Start runs the health-probe loop until ctx ends: every
// ProbeInterval each worker is probed, feeding the circuit breaker —
// an unreachable worker's circuit opens before any sweep pays for
// the discovery, and a recovered worker's closes again.
func (c *Coordinator) Start(ctx context.Context) {
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.probeAll(ctx)
		}
	}
}

func (c *Coordinator) probeAll(ctx context.Context) {
	for _, ws := range c.workers {
		pctx, cancel := context.WithTimeout(ctx, c.opts.ProbeInterval)
		err := c.opts.Chaos.HitCtx(pctx, ChaosSiteProbe)
		if err == nil {
			err = ws.w.Healthy(pctx)
		}
		cancel()
		if err != nil {
			ws.fail(c.opts.BreakerThreshold, c.opts.BreakerCooldown)
			c.opts.Logger.Warn("cluster: worker probe failed",
				"worker", ws.w.Name(), "error", err)
		} else {
			ws.succeed()
		}
	}
}

// WorkerStatus is one worker's snapshot for metrics and /stats.
type WorkerStatus struct {
	Name        string
	Open        bool // circuit open (worker currently excluded)
	Inflight    int
	ConsecFails int
	Successes   uint64
	Failures    uint64
}

// Stats is a coordinator activity snapshot.
type Stats struct {
	Dispatches     uint64 // remote shard attempts started
	Retries        uint64 // attempts beyond a shard's first
	Hedges         uint64 // duplicate straggler dispatches
	LocalFallbacks uint64 // shards evaluated by Job.Local
	ShardsDone     uint64 // shards completed (any path)
	Workers        []WorkerStatus
}

// Stats snapshots the coordinator's counters and per-worker state.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		Dispatches:     c.dispatches.Load(),
		Retries:        c.retries.Load(),
		Hedges:         c.hedges.Load(),
		LocalFallbacks: c.localFallbacks.Load(),
		ShardsDone:     c.shardsDone.Load(),
	}
	now := time.Now()
	for _, ws := range c.workers {
		ws.mu.Lock()
		s.Workers = append(s.Workers, WorkerStatus{
			Name:        ws.w.Name(),
			Open:        now.Before(ws.openUntil),
			Inflight:    ws.inflight,
			ConsecFails: ws.consecFails,
			Successes:   ws.successes,
			Failures:    ws.failures,
		})
		ws.mu.Unlock()
	}
	return s
}

// WorkersAvailable reports whether any worker's circuit is closed (or
// cooled down enough for a half-open trial). False with workers
// configured means the whole fleet is dead or excluded — the signal
// redpatchd's admission layer turns into 429 + Retry-After instead
// of silently absorbing every sweep locally.
func (c *Coordinator) WorkersAvailable() bool {
	return c.pick(nil) != nil
}

// Workers reports how many workers are configured.
func (c *Coordinator) Workers() int { return len(c.workers) }

// pick returns the available worker with the least in-flight shards,
// skipping exclude; nil when none is available. Ties keep
// configuration order, so a freshly idle fleet fills round-robin-ish
// from the front rather than randomly.
func (c *Coordinator) pick(exclude *workerState) *workerState {
	now := time.Now()
	var best *workerState
	bestLoad := 0
	for _, ws := range c.workers {
		if ws == exclude {
			continue
		}
		ws.mu.Lock()
		open := now.Before(ws.openUntil)
		load := ws.inflight
		ws.mu.Unlock()
		if open {
			continue
		}
		if best == nil || load < bestLoad {
			best, bestLoad = ws, load
		}
	}
	return best
}

// shardMsg is one event from a shard goroutine to the collector.
type shardMsg struct {
	report *Report // an evaluated design, when non-nil
	done   bool    // shard completed; total is valid
	total  int
	err    error // shard failed permanently
}

// Sweep distributes the job over shardCount shards and streams the
// deduplicated union of their results to emit (collector goroutine —
// emit and progress need no locking; an emit error cancels the
// sweep). progress runs after each completed shard with the
// cumulative design count. It returns the total designs enumerated
// across shards and the deduplicated kept count.
//
// With no available worker at call time the entire sweep runs as one
// local shard — the same enumeration, evaluation and emission order
// a plain single-process sweep produces.
func (c *Coordinator) Sweep(ctx context.Context, job Job, shardCount int, emit func(Report) error, progress func(designsDone int)) (total, kept int, err error) {
	ctx, sp := trace.Start(ctx, "cluster.sweep",
		trace.Attr{Key: "shards", Value: shardCount},
		trace.Attr{Key: "workers", Value: len(c.workers)})
	defer func() { sp.EndErr(err) }()

	if shardCount < 1 {
		shardCount = 1
	}
	if c.pick(nil) == nil {
		// Graceful degradation: no worker to shard over, so run the
		// whole space as one local shard — byte-identical to a
		// single-process sweep.
		c.localFallbacks.Add(1)
		sp.SetAttr("local_fallback", true)
		total, err = job.Local(ctx, Shard{Index: 0, Count: 1}, func(r Report) error {
			kept++
			return emit(r)
		})
		if err != nil {
			return 0, 0, err
		}
		c.shardsDone.Add(1)
		if progress != nil {
			progress(total)
		}
		return total, kept, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	msgs := make(chan shardMsg, 64)
	var wg sync.WaitGroup
	for i := 0; i < shardCount; i++ {
		wg.Add(1)
		go func(shard Shard) {
			defer wg.Done()
			c.runShard(ctx, job, shard, msgs)
		}(Shard{Index: i, Count: shardCount})
	}
	go func() {
		wg.Wait()
		close(msgs)
	}()

	seen := make(map[string]bool)
	var firstErr error
	for m := range msgs {
		if firstErr != nil {
			continue // drain: shard goroutines must never block on send
		}
		switch {
		case m.report != nil:
			if seen[m.report.Key] {
				continue // re-emission from a retried or hedged attempt
			}
			seen[m.report.Key] = true
			if err := emit(*m.report); err != nil {
				firstErr = err
				cancel()
			}
		case m.done:
			total += m.total
			c.shardsDone.Add(1)
			if progress != nil {
				progress(total)
			}
		case m.err != nil:
			firstErr = m.err
			cancel()
		}
	}
	if firstErr != nil {
		return 0, 0, firstErr
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	return total, len(seen), nil
}

// runShard drives one shard to completion: remote attempts with
// backoff, reassignment and hedging, then the local fallback. It
// sends every event on msgs and returns only when no goroutine it
// started can still touch msgs.
func (c *Coordinator) runShard(ctx context.Context, job Job, shard Shard, msgs chan<- shardMsg) {
	body, err := job.Body(shard)
	if err != nil {
		msgs <- shardMsg{err: fmt.Errorf("cluster: rendering shard %d/%d: %w", shard.Index, shard.Count, err)}
		return
	}
	var last *workerState
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		ws := c.pick(last)
		if ws == nil && last != nil && c.pick(nil) == last {
			// Sole surviving worker: retrying it beats skipping straight
			// to the fallback.
			ws = last
		}
		if ws == nil {
			break
		}
		if attempt > 0 {
			c.retries.Add(1)
			if !c.sleepBackoff(ctx, attempt) {
				msgs <- shardMsg{err: ctx.Err()}
				return
			}
		}
		total, err := c.attemptWithHedge(ctx, shard, body, ws, msgs)
		if err == nil {
			msgs <- shardMsg{done: true, total: total}
			return
		}
		lastErr = err
		last = ws
		if ctx.Err() != nil {
			msgs <- shardMsg{err: ctx.Err()}
			return
		}
		c.opts.Logger.Warn("cluster: shard attempt failed",
			"shard", shard.Index, "worker", ws.w.Name(), "attempt", attempt+1, "error", err)
	}
	// Remote attempts exhausted (or no worker was ever available):
	// evaluate the shard in-process so the sweep still completes.
	c.localFallbacks.Add(1)
	if lastErr != nil {
		c.opts.Logger.Warn("cluster: shard falling back to local evaluation",
			"shard", shard.Index, "error", lastErr)
	}
	total, err := job.Local(ctx, shard, func(r Report) error {
		rc := r
		msgs <- shardMsg{report: &rc}
		return ctx.Err()
	})
	if err != nil {
		msgs <- shardMsg{err: err}
		return
	}
	msgs <- shardMsg{done: true, total: total}
}

// sleepBackoff sleeps the full-jitter exponential backoff for the
// given retry attempt, returning false when ctx ended first.
func (c *Coordinator) sleepBackoff(ctx context.Context, attempt int) bool {
	upper := c.opts.BackoffCap
	if shifted := c.opts.BackoffBase << (attempt - 1); shifted > 0 && shifted < upper {
		upper = shifted
	}
	t := time.NewTimer(randv2.N(upper))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attemptResult is one attempt's outcome inside attemptWithHedge.
type attemptResult struct {
	total int
	err   error
	ws    *workerState
}

// attemptWithHedge runs the shard on ws and, if it straggles past
// HedgeAfter, dispatches a duplicate to a second worker — first
// success wins and cancels the other. It returns once every attempt
// goroutine it started has finished, so callers may assume nothing
// still writes to msgs afterwards.
func (c *Coordinator) attemptWithHedge(ctx context.Context, shard Shard, body []byte, ws *workerState, msgs chan<- shardMsg) (int, error) {
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	resc := make(chan attemptResult, 2)
	launch := func(ws *workerState) {
		go func() {
			total, err := c.attempt(actx, shard, body, ws, msgs)
			resc <- attemptResult{total: total, err: err, ws: ws}
		}()
	}
	launch(ws)
	launched := 1

	var hedgeC <-chan time.Time
	if c.opts.HedgeAfter > 0 && len(c.workers) > 1 {
		ht := time.NewTimer(c.opts.HedgeAfter)
		defer ht.Stop()
		hedgeC = ht.C
	}

	var firstErr error
	success := false
	best := attemptResult{err: fmt.Errorf("cluster: shard %d/%d: no attempt ran", shard.Index, shard.Count)}
	for done := 0; done < launched; {
		select {
		case r := <-resc:
			done++
			if r.err == nil {
				if !success {
					success = true
					best = r
				}
				acancel() // first success: stop the losing attempt
			} else if firstErr == nil {
				firstErr = r.err
			}
		case <-hedgeC:
			hedgeC = nil
			if h := c.pick(ws); h != nil {
				c.hedges.Add(1)
				c.opts.Logger.Info("cluster: hedging straggler shard",
					"shard", shard.Index, "worker", ws.w.Name(), "hedge", h.w.Name())
				launch(h)
				launched++
			}
		}
	}
	if success {
		return best.total, nil
	}
	return 0, firstErr
}

// attempt runs one remote shard attempt on one worker, under the
// per-shard timeout, feeding the circuit breaker with the outcome.
func (c *Coordinator) attempt(ctx context.Context, shard Shard, body []byte, ws *workerState, msgs chan<- shardMsg) (total int, err error) {
	ctx, sp := trace.Start(ctx, "cluster.shard",
		trace.Attr{Key: "shard", Value: shard.Index},
		trace.Attr{Key: "worker", Value: ws.w.Name()})
	defer func() { sp.EndErr(err) }()
	ctx, cancel := context.WithTimeout(ctx, c.opts.ShardTimeout)
	defer cancel()

	c.dispatches.Add(1)
	ws.mu.Lock()
	ws.inflight++
	ws.mu.Unlock()
	defer func() {
		ws.mu.Lock()
		ws.inflight--
		ws.mu.Unlock()
		if err != nil {
			ws.fail(c.opts.BreakerThreshold, c.opts.BreakerCooldown)
		} else {
			ws.succeed()
		}
	}()

	if err := c.opts.Chaos.HitCtx(ctx, ChaosSiteDispatch); err != nil {
		return 0, err
	}
	return ws.w.RunShard(ctx, body, func(r Report) error {
		rc := r
		msgs <- shardMsg{report: &rc}
		return ctx.Err()
	})
}
