package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redpatch/internal/faultinject"
)

// fakeSpace is a deterministic 40-design space partitioned by a
// trivial modulo; the tests' stand-in for the real hash partition.
const fakeSpaceSize = 40

func fakeShardKeys(s Shard) []string {
	var keys []string
	for i := 0; i < fakeSpaceSize; i++ {
		if i%s.Count == s.Index {
			keys = append(keys, fmt.Sprintf("design-%02d", i))
		}
	}
	return keys
}

// fakeJob renders shard bodies as JSON and evaluates locally from the
// same deterministic space.
func fakeJob(t *testing.T, localRuns *atomic.Int64) Job {
	t.Helper()
	return Job{
		Body: func(s Shard) ([]byte, error) { return json.Marshal(s) },
		Local: func(ctx context.Context, s Shard, emit func(Report) error) (int, error) {
			if localRuns != nil {
				localRuns.Add(1)
			}
			keys := fakeShardKeys(s)
			for _, k := range keys {
				if err := emit(Report{Key: k, Line: []byte(`{"local":"` + k + `"}`)}); err != nil {
					return 0, err
				}
			}
			return len(keys), nil
		},
	}
}

// fakeWorker replays the fake space remotely; fail(n) can inject a
// failure on the n-th RunShard call (1-based), optionally after
// emitting a partial prefix.
type fakeWorker struct {
	name string

	mu        sync.Mutex
	calls     int
	failCalls map[int]int // call number -> emit this many reports, then fail
	unhealthy bool
	delay     time.Duration
}

func (w *fakeWorker) Name() string { return w.name }

func (w *fakeWorker) Healthy(ctx context.Context) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.unhealthy {
		return errors.New("unhealthy")
	}
	return nil
}

func (w *fakeWorker) RunShard(ctx context.Context, body []byte, emit func(Report) error) (int, error) {
	var s Shard
	if err := json.Unmarshal(body, &s); err != nil {
		return 0, err
	}
	w.mu.Lock()
	w.calls++
	call := w.calls
	partial, fail := -1, false
	if n, ok := w.failCalls[call]; ok {
		partial, fail = n, true
	}
	delay := w.delay
	w.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	keys := fakeShardKeys(s)
	for i, k := range keys {
		if fail && i == partial {
			return 0, fmt.Errorf("worker %s: injected mid-shard death", w.name)
		}
		if err := emit(Report{Key: k, Line: []byte(`{"remote":"` + k + `"}`)}); err != nil {
			return 0, err
		}
	}
	if fail && partial >= len(keys) {
		return 0, fmt.Errorf("worker %s: injected post-emit death", w.name)
	}
	return len(keys), nil
}

// collect runs a sweep and returns the deduplicated keys emitted.
func collect(t *testing.T, c *Coordinator, job Job, shards int) (map[string]bool, int, int) {
	t.Helper()
	seen := make(map[string]bool)
	total, kept, err := c.Sweep(context.Background(), job, shards, func(r Report) error {
		if seen[r.Key] {
			t.Fatalf("duplicate emission for %s", r.Key)
		}
		seen[r.Key] = true
		return nil
	}, nil)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	return seen, total, kept
}

func testOptions() Options {
	return Options{
		ShardTimeout:     5 * time.Second,
		MaxAttempts:      3,
		BackoffBase:      time.Millisecond,
		BackoffCap:       5 * time.Millisecond,
		HedgeAfter:       -1, // off unless a test enables it
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		ProbeInterval:    10 * time.Millisecond,
	}
}

func TestSweepAllRemote(t *testing.T) {
	w1 := &fakeWorker{name: "w1"}
	w2 := &fakeWorker{name: "w2"}
	c := New([]Worker{w1, w2}, testOptions())
	seen, total, kept := collect(t, c, fakeJob(t, nil), 4)
	if total != fakeSpaceSize || kept != fakeSpaceSize || len(seen) != fakeSpaceSize {
		t.Fatalf("total=%d kept=%d seen=%d, want %d each", total, kept, len(seen), fakeSpaceSize)
	}
	if w1.calls+w2.calls != 4 {
		t.Fatalf("expected 4 shard dispatches, got %d + %d", w1.calls, w2.calls)
	}
	if s := c.Stats(); s.ShardsDone != 4 || s.LocalFallbacks != 0 {
		t.Fatalf("stats = %+v, want 4 shards done, 0 fallbacks", s)
	}
}

func TestSweepRetriesMidShardDeathWithoutDuplicates(t *testing.T) {
	// Worker 1 dies mid-shard on its first call after emitting a
	// partial prefix; the shard is reassigned and the duplicate
	// prefix is deduplicated.
	w1 := &fakeWorker{name: "w1", failCalls: map[int]int{1: 3}}
	w2 := &fakeWorker{name: "w2"}
	c := New([]Worker{w1, w2}, testOptions())
	seen, total, kept := collect(t, c, fakeJob(t, nil), 2)
	if total != fakeSpaceSize || kept != fakeSpaceSize || len(seen) != fakeSpaceSize {
		t.Fatalf("total=%d kept=%d seen=%d, want %d each", total, kept, len(seen), fakeSpaceSize)
	}
	if s := c.Stats(); s.Retries == 0 {
		t.Fatalf("expected at least one retry, stats = %+v", s)
	}
}

func TestSweepNoWorkersRunsLocal(t *testing.T) {
	var localRuns atomic.Int64
	c := New(nil, testOptions())
	if c.WorkersAvailable() {
		t.Fatal("no workers configured but WorkersAvailable")
	}
	seen, total, kept := collect(t, c, fakeJob(t, &localRuns), 8)
	if total != fakeSpaceSize || kept != fakeSpaceSize || len(seen) != fakeSpaceSize {
		t.Fatalf("total=%d kept=%d seen=%d, want %d each", total, kept, len(seen), fakeSpaceSize)
	}
	// The whole sweep degrades to ONE local shard covering the full
	// space — the byte-identity guarantee, not 8 local shards.
	if got := localRuns.Load(); got != 1 {
		t.Fatalf("local evaluator ran %d times, want 1", got)
	}
	if s := c.Stats(); s.LocalFallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 local fallback", s)
	}
}

func TestShardFallsBackLocalWhenAttemptsExhausted(t *testing.T) {
	// A single worker that always dies: every attempt fails, the
	// breaker opens, and each shard completes via local fallback.
	w1 := &fakeWorker{name: "w1", failCalls: map[int]int{1: 0, 2: 0, 3: 0, 4: 0, 5: 0, 6: 0, 7: 0, 8: 0}}
	var localRuns atomic.Int64
	c := New([]Worker{w1}, testOptions())
	seen, total, kept := collect(t, c, fakeJob(t, &localRuns), 2)
	if total != fakeSpaceSize || kept != fakeSpaceSize || len(seen) != fakeSpaceSize {
		t.Fatalf("total=%d kept=%d seen=%d, want %d each", total, kept, len(seen), fakeSpaceSize)
	}
	if localRuns.Load() == 0 {
		t.Fatal("expected local fallback runs")
	}
	st := c.Stats()
	if st.Workers[0].Failures == 0 {
		t.Fatalf("worker failures not recorded: %+v", st)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	opts := testOptions()
	w1 := &fakeWorker{name: "w1", unhealthy: true}
	c := New([]Worker{w1}, opts)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Start(ctx)

	deadline := time.Now().Add(2 * time.Second)
	for c.WorkersAvailable() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.WorkersAvailable() {
		t.Fatal("circuit never opened for unhealthy worker")
	}
	w1.mu.Lock()
	w1.unhealthy = false
	w1.mu.Unlock()
	deadline = time.Now().Add(2 * time.Second)
	for !c.WorkersAvailable() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !c.WorkersAvailable() {
		t.Fatal("circuit never closed after worker recovered")
	}
}

func TestHedgeRacesStraggler(t *testing.T) {
	opts := testOptions()
	opts.HedgeAfter = 10 * time.Millisecond
	w1 := &fakeWorker{name: "slow", delay: 2 * time.Second}
	w2 := &fakeWorker{name: "fast"}
	c := New([]Worker{w1, w2}, opts)
	// One shard: it lands on the idle pick (configuration order → w1,
	// the slow worker), straggles, and the hedge onto w2 wins.
	start := time.Now()
	seen, total, _ := collect(t, c, fakeJob(t, nil), 1)
	if total != fakeSpaceSize || len(seen) != fakeSpaceSize {
		t.Fatalf("total=%d seen=%d, want %d", total, len(seen), fakeSpaceSize)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not race the straggler: sweep took %v", elapsed)
	}
	if s := c.Stats(); s.Hedges != 1 {
		t.Fatalf("stats = %+v, want exactly 1 hedge", s)
	}
}

func TestSweepChaosDispatchSite(t *testing.T) {
	inj := faultinject.New(7)
	inj.Configure(ChaosSiteDispatch, faultinject.Site{ErrProb: 0.5})
	opts := testOptions()
	opts.Chaos = inj
	w1 := &fakeWorker{name: "w1"}
	w2 := &fakeWorker{name: "w2"}
	c := New([]Worker{w1, w2}, opts)
	seen, total, kept := collect(t, c, fakeJob(t, nil), 6)
	if total != fakeSpaceSize || kept != fakeSpaceSize || len(seen) != fakeSpaceSize {
		t.Fatalf("total=%d kept=%d seen=%d, want %d each", total, kept, len(seen), fakeSpaceSize)
	}
	if inj.Counts(ChaosSiteDispatch).Errors == 0 {
		t.Fatal("chaos site never fired")
	}
}

func TestSweepCancellation(t *testing.T) {
	w1 := &fakeWorker{name: "w1", delay: 10 * time.Second}
	c := New([]Worker{w1}, testOptions())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Sweep(ctx, fakeJob(t, nil), 2, func(Report) error { return nil }, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled sweep returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled sweep did not return")
	}
}

func TestSweepEmitErrorCancels(t *testing.T) {
	w1 := &fakeWorker{name: "w1"}
	c := New([]Worker{w1}, testOptions())
	sentinel := errors.New("stop")
	n := 0
	_, _, err := c.Sweep(context.Background(), fakeJob(t, nil), 2, func(Report) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	}, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

func TestSweepProgressReportsShardCompletions(t *testing.T) {
	w1 := &fakeWorker{name: "w1"}
	c := New([]Worker{w1}, testOptions())
	var marks []int
	_, _, err := c.Sweep(context.Background(), fakeJob(t, nil), 4, func(Report) error { return nil }, func(done int) {
		marks = append(marks, done)
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(marks) != 4 || marks[len(marks)-1] != fakeSpaceSize {
		t.Fatalf("progress marks = %v, want 4 ending at %d", marks, fakeSpaceSize)
	}
	for i := 1; i < len(marks); i++ {
		if marks[i] <= marks[i-1] {
			t.Fatalf("progress not monotone: %v", marks)
		}
	}
}

// TestHTTPWorkerRunShard exercises the NDJSON protocol parse: report
// lines keyed by spec, progress skipped, done trailer terminates,
// error trailer and truncated streams fail.
func TestHTTPWorkerRunShard(t *testing.T) {
	stream := strings.Join([]string{
		`{"Name":"1d1w","Spec":{"name":"1d1w","tiers":[{"role":"dns","replicas":1},{"role":"web","replicas":2}]},"COA":0.99}`,
		`{"progress":true,"done":1,"total":2}`,
		`{"Name":"1d2w","Spec":{"name":"1d2w","tiers":[{"role":"dns","replicas":1},{"role":"web","replicas":3,"variant":"webalt"}]},"COA":0.98}`,
		`{"done":true,"scenario":"default","total":2,"kept":2}`,
	}, "\n") + "\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			w.WriteHeader(http.StatusOK)
		case "/api/v2/sweep/stream":
			fmt.Fprint(w, stream)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	w := NewHTTPWorker(srv.URL, srv.Client())
	if err := w.Healthy(context.Background()); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	var got []Report
	total, err := w.RunShard(context.Background(), []byte(`{}`), func(r Report) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if total != 2 || len(got) != 2 {
		t.Fatalf("total=%d reports=%d, want 2 and 2", total, len(got))
	}
	if got[0].Key != "dns:1;web:2" || got[1].Key != "dns:1;web/webalt:3" {
		t.Fatalf("keys = %q, %q", got[0].Key, got[1].Key)
	}
	if !strings.Contains(string(got[1].Line), `"COA":0.98`) {
		t.Fatalf("line not forwarded verbatim: %s", got[1].Line)
	}
}

func TestHTTPWorkerErrors(t *testing.T) {
	cases := map[string]string{
		"error trailer":  `{"error":"boom","reason":"internal"}` + "\n",
		"truncated":      `{"Name":"x","Spec":{"tiers":[{"role":"dns","replicas":1}]}}` + "\n",
		"unrecognized":   `{"mystery":1}` + "\n",
		"malformed":      "not json\n",
		"empty, no done": "",
	}
	for name, stream := range cases {
		t.Run(name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprint(w, stream)
			}))
			defer srv.Close()
			w := NewHTTPWorker(srv.URL, srv.Client())
			if _, err := w.RunShard(context.Background(), nil, func(Report) error { return nil }); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	t.Run("non-200", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
		}))
		defer srv.Close()
		w := NewHTTPWorker(srv.URL, srv.Client())
		if _, err := w.RunShard(context.Background(), nil, func(Report) error { return nil }); err == nil || !strings.Contains(err.Error(), "400") {
			t.Fatalf("err = %v, want a 400", err)
		}
	})
	t.Run("not ready", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "starting", http.StatusServiceUnavailable)
		}))
		defer srv.Close()
		w := NewHTTPWorker(srv.URL, srv.Client())
		if err := w.Healthy(context.Background()); err == nil {
			t.Fatal("expected not-ready error")
		}
	})
}
