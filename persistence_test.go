package redpatch

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"redpatch/internal/engine"
)

// TestCachePersistenceRoundTrip dumps a warmed study and restores it
// into a fresh one built from the same config: the restored study must
// serve identical reports without re-solving anything.
func TestCachePersistenceRoundTrip(t *testing.T) {
	warm, err := NewCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	spec := DesignSpec{Tiers: []TierSpec{
		{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 2},
		{Role: "app", Replicas: 2}, {Role: "db", Replicas: 1},
	}}
	want, err := warm.EvaluateSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := warm.SnapshotCache(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || warm.CacheEntries() != 1 {
		t.Fatalf("snapshot entries = %d, cache = %d, want 1", n, warm.CacheEntries())
	}

	cold, err := NewCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := cold.RestoreCache(bytes.NewReader(buf.Bytes())); err != nil || restored != 1 {
		t.Fatalf("restored = %d, err = %v", restored, err)
	}
	got, err := cold.EvaluateSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored report differs:\ngot  %+v\nwant %+v", got, want)
	}
	st := cold.EngineStats()
	if st.Solves != 0 || st.Hits != 1 {
		t.Fatalf("restored study solved %d / hit %d, want 0 / 1", st.Solves, st.Hits)
	}
}

// TestCachePersistenceVariantSpecs: two specs with the same replica
// counts but different variant sets come from distinct factored security
// models; their cached results must stay distinct through a
// snapshot/restore round trip, and the restored study must serve both
// without re-solving.
func TestCachePersistenceVariantSpecs(t *testing.T) {
	warm, err := NewCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	plain := DesignSpec{Tiers: []TierSpec{
		{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 2},
		{Role: "app", Replicas: 2}, {Role: "db", Replicas: 1},
	}}
	variant := DesignSpec{Tiers: []TierSpec{
		{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 2, Variant: "webalt"},
		{Role: "app", Replicas: 2}, {Role: "db", Replicas: 1},
	}}
	wantPlain, err := warm.EvaluateSpec(plain)
	if err != nil {
		t.Fatal(err)
	}
	wantVariant, err := warm.EvaluateSpec(variant)
	if err != nil {
		t.Fatal(err)
	}
	if wantPlain.Before.NoEV == wantVariant.Before.NoEV {
		t.Fatalf("plain and variant NoEV both %d; security factors leaked across variants",
			wantPlain.Before.NoEV)
	}

	var buf bytes.Buffer
	if n, err := warm.SnapshotCache(&buf); err != nil || n != 2 {
		t.Fatalf("snapshot entries = %d, err = %v, want 2", n, err)
	}
	cold, err := NewCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := cold.RestoreCache(bytes.NewReader(buf.Bytes())); err != nil || restored != 2 {
		t.Fatalf("restored = %d, err = %v", restored, err)
	}
	gotPlain, err := cold.EvaluateSpec(plain)
	if err != nil {
		t.Fatal(err)
	}
	gotVariant, err := cold.EvaluateSpec(variant)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPlain, wantPlain) || !reflect.DeepEqual(gotVariant, wantVariant) {
		t.Fatal("restored variant reports differ from the solve-time reports")
	}
	if st := cold.EngineStats(); st.Solves != 0 || st.Hits != 2 {
		t.Fatalf("restored study solved %d / hit %d, want 0 / 2", st.Solves, st.Hits)
	}
}

// TestCachePersistenceRejectsOtherPolicy: a dump written under one
// patch policy or schedule must not restore into a study built under
// another — same design keys, different models.
func TestCachePersistenceRejectsOtherPolicy(t *testing.T) {
	base, err := NewCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.EvaluateDesign("d", 1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := base.SnapshotCache(&buf); err != nil {
		t.Fatal(err)
	}

	for name, cfg := range map[string]Config{
		"patch-all policy": {PatchAll: true},
		"other threshold":  {CriticalThreshold: 5},
		"other schedule":   {PatchIntervalHours: 168},
	} {
		t.Run(name, func(t *testing.T) {
			other, err := NewCaseStudyWithConfig(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n, err := other.RestoreCache(bytes.NewReader(buf.Bytes()))
			if !errors.Is(err, engine.ErrSnapshotFingerprint) {
				t.Fatalf("err = %v, want engine.ErrSnapshotFingerprint", err)
			}
			if n != 0 || other.CacheEntries() != 0 {
				t.Fatalf("foreign dump merged %d entries (cache %d)", n, other.CacheEntries())
			}
		})
	}
}

// TestFingerprintContentAddressesDataset: the cache fingerprint must
// carry the vulnerability-dataset hash — the ROADMAP's content
// addressing — alongside policy and schedule, and resolve defaults so
// equivalent configs share dumps.
func TestFingerprintContentAddressesDataset(t *testing.T) {
	fp := Config{}.fingerprint()
	if !strings.Contains(fp, "db=") {
		t.Fatalf("fingerprint %q does not content-address the dataset", fp)
	}
	if len(datasetFingerprint()) != 16 {
		t.Fatalf("dataset fingerprint %q not a truncated sha256 hex", datasetFingerprint())
	}
	if got := (Config{CriticalThreshold: 8, PatchIntervalHours: 720}).fingerprint(); got != fp {
		t.Fatalf("explicit defaults fingerprint %q differs from zero config %q", got, fp)
	}
	for _, other := range []Config{
		{PatchAll: true},
		{CriticalThreshold: 5},
		{PatchIntervalHours: 168},
	} {
		if other.fingerprint() == fp {
			t.Fatalf("config %+v shares the default fingerprint", other)
		}
	}
}
