package redpatch

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// TestV1V2Equivalence is the compatibility guarantee of the DesignSpec
// redesign: every classic 4-tuple design evaluated through the
// deprecated wrappers must produce byte-identical reports via the
// role-keyed spec path. Two separate case studies are used so the shared
// engine cache cannot trivialize the comparison — each side solves its
// own models.
func TestV1V2Equivalence(t *testing.T) {
	v1, err := NewCaseStudyWithConfig(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewCaseStudyWithConfig(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range [][4]int{
		{1, 1, 1, 1},
		{1, 2, 2, 1},
		{2, 3, 1, 2},
	} {
		old, err := v1.EvaluateDesign("eq", tc[0], tc[1], tc[2], tc[3])
		if err != nil {
			t.Fatal(err)
		}
		spec, err := v2.EvaluateSpec(DesignSpec{Name: "eq", Tiers: []TierSpec{
			{Role: "dns", Replicas: tc[0]},
			{Role: "web", Replicas: tc[1]},
			{Role: "app", Replicas: tc[2]},
			{Role: "db", Replicas: tc[3]},
		}})
		if err != nil {
			t.Fatal(err)
		}
		oldJSON, err := json.Marshal(old)
		if err != nil {
			t.Fatal(err)
		}
		specJSON, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		if string(oldJSON) != string(specJSON) {
			t.Errorf("%v: v1 and v2 reports differ:\n%s\n%s", tc, oldJSON, specJSON)
		}
	}

	// The deprecated sweep must match the spec sweep design for design.
	oldSweep, err := v1.Sweep(context.Background(), FullSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	specSweep, err := v2.SweepSpec(context.Background(), SpecSweepRequest{Tiers: []TierSweep{
		{Role: "dns", Min: 1, Max: 2},
		{Role: "web", Min: 1, Max: 2},
		{Role: "app", Min: 1, Max: 2},
		{Role: "db", Min: 1, Max: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldSweep, specSweep) {
		t.Fatal("deprecated sweep differs from the spec sweep")
	}
	if oldSweep.Total != 16 || len(oldSweep.Reports) != 16 {
		t.Fatalf("sweep covered %d/%d designs, want 16", oldSweep.Total, len(oldSweep.Reports))
	}
}

// TestHeterogeneousFacadeSweep drives the §V variant deployment through
// the public facade: sweeping the web tier across both stacks yields a
// non-empty Pareto front, and the variant designs carry distinct names,
// descriptions and metrics.
func TestHeterogeneousFacadeSweep(t *testing.T) {
	s, _ := caseStudy(t)
	sum, err := s.SweepSpec(context.Background(), SpecSweepRequest{Tiers: []TierSweep{
		{Role: "dns", Min: 1, Max: 1},
		{Role: "web", Min: 2, Max: 2, Variants: []string{"", "webalt"}},
		{Role: "app", Min: 1, Max: 1},
		{Role: "db", Min: 1, Max: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 2 || len(sum.Reports) != 2 {
		t.Fatalf("total = %d, reports = %d, want 2", sum.Total, len(sum.Reports))
	}
	if len(sum.Pareto) == 0 {
		t.Fatal("empty Pareto front")
	}
	apache, nginx := sum.Reports[0], sum.Reports[1]
	if apache.Name != "1d2w1a1b" {
		t.Errorf("homogeneous name = %q", apache.Name)
	}
	if nginx.Name != "1dns-2web/webalt-1app-1db" {
		t.Errorf("variant name = %q", nginx.Name)
	}
	if nginx.Description != "1 DNS + 2 WEB/WEBALT + 1 APP + 1 DB" {
		t.Errorf("variant description = %q", nginx.Description)
	}
	if apache.After.ASP == nginx.After.ASP && apache.After.NoEV == nginx.After.NoEV {
		t.Error("variant stack evaluated identically to the base stack")
	}
}

// TestMixedTierSpec evaluates one heterogeneous logical tier (Apache +
// Nginx replicas side by side) through the facade — the deployment shape
// the example program builds by hand.
func TestMixedTierSpec(t *testing.T) {
	s, _ := caseStudy(t)
	hetero, err := s.EvaluateSpec(DesignSpec{Tiers: []TierSpec{
		{Role: "dns", Replicas: 1},
		{Role: "web", Replicas: 1},
		{Role: "web", Replicas: 1, Variant: "webalt"},
		{Role: "app", Replicas: 1},
		{Role: "db", Replicas: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	homog, err := s.EvaluateSpec(ClassicSpec("", 1, 2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if hetero.Servers != 5 {
		t.Errorf("servers = %d, want 5", hetero.Servers)
	}
	// Mixed stacks share no vulnerability, so the surviving exploit
	// chain is strictly harder than the homogeneous pair's.
	if hetero.After.ASP >= homog.After.ASP {
		t.Errorf("mixed-tier after-patch ASP = %v, want below homogeneous %v",
			hetero.After.ASP, homog.After.ASP)
	}
	if hetero.COA <= 0 || hetero.COA > 1 {
		t.Errorf("implausible COA %v", hetero.COA)
	}
	if hetero.Name != "1dns-1web-1web/webalt-1app-1db" {
		t.Errorf("canonical name = %q", hetero.Name)
	}
}

// TestSpecValidationAtFacade pins facade-level validation failures.
func TestSpecValidationAtFacade(t *testing.T) {
	s, _ := caseStudy(t)
	for name, spec := range map[string]DesignSpec{
		"no tiers":      {},
		"zero replicas": {Tiers: []TierSpec{{Role: "web", Replicas: 0}}},
		"unknown stack": {Tiers: []TierSpec{{Role: "mainframe", Replicas: 1}}},
		"unknown variant": {Tiers: []TierSpec{
			{Role: "web", Replicas: 1, Variant: "iis"}}},
	} {
		if _, err := s.EvaluateSpec(spec); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
