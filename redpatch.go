// Package redpatch is a from-scratch Go implementation of the modelling
// framework of "Evaluating Security and Availability of Multiple
// Redundancy Designs when Applying Security Patches" (Ge, Kim & Kim,
// DSN-W 2017): graphical security models (two-layered HARM over attack
// graphs and attack trees, scored from CVSS v2), stochastic reward nets
// compiled to continuous-time Markov chains for capacity oriented
// availability under patch schedules, and the administrator decision
// functions that combine the two.
//
// This package is the high-level facade: it exposes the paper's complete
// case study plus design evaluation, decision regions, Pareto analysis and
// cost modelling. The engines live in internal packages (srn, ctmc, harm,
// availability, ...) and are exercised through examples/ and cmd/.
//
// Designs are described by role-keyed DesignSpecs — ordered tier groups
// with replica counts and optional stack variants — evaluated through
// EvaluateSpec and swept through SweepSpec. The fixed 4-int methods
// (EvaluateDesign, Sweep, ...) remain as thin deprecated wrappers over
// the spec path.
//
//	study, err := redpatch.NewCaseStudy()
//	r, err := study.EvaluateSpec(redpatch.DesignSpec{Name: "mine", Tiers: []redpatch.TierSpec{
//		{Role: "dns", Replicas: 1}, {Role: "web", Replicas: 2},
//		{Role: "app", Replicas: 2}, {Role: "db", Replicas: 1},
//	}})
//	fmt.Println(r.COA, r.After.ASP)
package redpatch

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"redpatch/internal/availability"
	"redpatch/internal/engine"
	"redpatch/internal/faultinject"
	"redpatch/internal/harm"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/redundancy"
)

// hours converts a float hour count to a duration.
func hours(h float64) time.Duration {
	return time.Duration(h * float64(time.Hour))
}

// SecuritySummary carries the paper's five security metrics for one
// design at one point in time (before or after the patch round).
type SecuritySummary struct {
	// AIM is the network-level attack impact.
	AIM float64
	// ASP is the network-level attack success probability.
	ASP float64
	// NoEV is the number of exploitable vulnerabilities across servers.
	NoEV int
	// NoAP is the number of attack paths to the target tier.
	NoAP int
	// NoEP is the number of entry points.
	NoEP int
}

func summarize(m harm.Metrics) SecuritySummary {
	return SecuritySummary{AIM: m.AIM, ASP: m.ASP, NoEV: m.NoEV, NoAP: m.NoAP, NoEP: m.NoEP}
}

// TierSpec is one redundancy group of a role-keyed design: Replicas
// servers serving the logical tier Role. Variant, when non-empty,
// selects an alternate software stack (e.g. "webalt" — Nginx on Ubuntu —
// for a "web" tier) with its own vulnerability set and patch plan.
// Several TierSpecs may share a Role: they then form one heterogeneous
// logical tier, available while any of its servers is up.
type TierSpec struct {
	Role     string `json:"role"`
	Replicas int    `json:"replicas"`
	Variant  string `json:"variant,omitempty"`
}

// DesignSpec is a role-keyed redundancy design: an ordered list of tier
// groups forming the network's logical chain. It generalizes the paper's
// fixed (DNS, Web, App, DB) tuple to arbitrary tier sequences and
// heterogeneous variants. An empty Name gets the canonical compact name.
type DesignSpec struct {
	Name  string     `json:"name,omitempty"`
	Tiers []TierSpec `json:"tiers"`
}

// pd converts to the internal representation.
func (s DesignSpec) pd() paperdata.DesignSpec {
	out := paperdata.DesignSpec{Name: s.Name, Tiers: make([]paperdata.TierSpec, len(s.Tiers))}
	for i, t := range s.Tiers {
		out.Tiers[i] = paperdata.TierSpec{Role: t.Role, Replicas: t.Replicas, Variant: t.Variant}
	}
	return out
}

func specFromPD(s paperdata.DesignSpec) DesignSpec {
	out := DesignSpec{Name: s.Name, Tiers: make([]TierSpec, len(s.Tiers))}
	for i, t := range s.Tiers {
		out.Tiers[i] = TierSpec{Role: t.Role, Replicas: t.Replicas, Variant: t.Variant}
	}
	return out
}

// ClassicSpec builds the paper's four-tier homogeneous spec from the
// classic replica tuple — the shape every deprecated 4-int method
// evaluates.
func ClassicSpec(name string, dns, web, app, db int) DesignSpec {
	return specFromPD(paperdata.Design{Name: name, DNS: dns, Web: web, App: app, DB: db}.Spec())
}

// Validate checks the spec without evaluating it.
func (s DesignSpec) Validate() error { return s.pd().Validate() }

// Key is the canonical cache identity of the spec: tier order, roles,
// variants and replica counts — everything that changes the models —
// and deliberately not the name. Sharded sweeps (internal/cluster)
// partition design spaces by a hash of this key, so two processes
// always agree on which shard owns a design.
func (s DesignSpec) Key() string { return s.pd().Key() }

// DesignReport is the combined evaluation of one redundancy design.
type DesignReport struct {
	// Name labels the design; Description renders it in the paper's
	// "1 DNS + 2 WEB + 2 APP + 1 DB" notation.
	Name, Description string
	// Spec is the role-keyed design the report was evaluated from.
	Spec DesignSpec
	// Servers is the total server count.
	Servers int
	// Before and After are the security metrics around the patch round.
	Before, After SecuritySummary
	// COA is the capacity oriented availability under the monthly patch
	// schedule.
	COA float64
	// ServiceAvailability is P(at least one server up per tier).
	ServiceAvailability float64
}

// PatchRates are the aggregated per-server-type rates of the paper's
// Table V.
type PatchRates struct {
	// MTTPHours is the mean time to patch (1/lambda_eq).
	MTTPHours float64
	// PatchRate is lambda_eq per hour.
	PatchRate float64
	// MTTRHours is the mean time to recover from a patch (1/mu_eq).
	MTTRHours float64
	// RecoveryRate is mu_eq per hour.
	RecoveryRate float64
	// DowntimeMinutes is the planned patch-window length (service patch +
	// OS patch + merged reboots).
	DowntimeMinutes float64
}

// CaseStudy is the paper's example enterprise network, ready to evaluate
// redundancy designs against. Every evaluation goes through a concurrent
// memoizing engine (internal/engine), so repeated and overlapping queries
// for the same design tuple are served from cache; a CaseStudy is safe
// for concurrent use.
type CaseStudy struct {
	eval *redundancy.Evaluator
	eng  *engine.Engine
}

// NewCaseStudy builds the paper's case study: the Table I vulnerability
// dataset, the Fig. 3 attack trees, the Table IV rates, the critical
// patch policy (CVSS base score > 8.0) and the monthly schedule. The four
// per-server-type availability models are solved once here.
func NewCaseStudy() (*CaseStudy, error) {
	return NewCaseStudyWithConfig(Config{})
}

// Config customizes the case study's patch management. Zero-value fields
// select the paper's defaults.
type Config struct {
	// CriticalThreshold is the CVSS base-score bound above which
	// vulnerabilities are patched (default 8.0). Ignored when PatchAll is
	// set.
	CriticalThreshold float64
	// PatchAll patches every vulnerability regardless of score.
	PatchAll bool
	// PatchIntervalHours is the patch cadence (default 720, i.e. monthly).
	PatchIntervalHours float64
	// Workers bounds the evaluation worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Chaos, when non-nil, threads a fault injector between the engine
	// and the solvers: every design evaluation first runs the injector's
	// "evaluate" site, which may add latency, return an injected error,
	// or panic (the engine's panic recovery converts it to an error).
	// Chaos testing only; nil in production. The fingerprint ignores it —
	// injected faults never reach the memo cache, so cached results are
	// chaos-free by construction.
	Chaos *faultinject.Injector
}

// ChaosSiteEvaluate is the injector site name CaseStudy evaluations
// run when Config.Chaos is set.
const ChaosSiteEvaluate = "evaluate"

// chaosEvaluator interposes a fault-injection site between the engine
// and the real evaluator. It forwards the SolverStats extension so the
// engine's dispatch counters keep working under chaos.
type chaosEvaluator struct {
	inj  *faultinject.Injector
	next *redundancy.Evaluator
}

func (c chaosEvaluator) EvaluateSpec(spec paperdata.DesignSpec) (redundancy.Result, error) {
	return c.EvaluateSpecContext(context.Background(), spec)
}

func (c chaosEvaluator) EvaluateSpecContext(ctx context.Context, spec paperdata.DesignSpec) (redundancy.Result, error) {
	if err := c.inj.HitCtx(ctx, ChaosSiteEvaluate); err != nil {
		return redundancy.Result{}, err
	}
	return c.next.EvaluateSpecContext(ctx, spec)
}

func (c chaosEvaluator) SolverStats() redundancy.SolverStats { return c.next.SolverStats() }

// datasetFingerprint content-addresses the vulnerability dataset every
// case study evaluates against: a truncated SHA-256 over its canonical
// JSON encoding (sorted by CVE ID). Computed once — the paper dataset
// is immutable per process.
var datasetFingerprint = sync.OnceValue(func() string {
	data, err := json.Marshal(paperdata.VulnDB())
	if err != nil {
		// The curated dataset always marshals; failing here means the
		// program cannot evaluate anything either.
		panic(fmt.Sprintf("redpatch: fingerprinting vulnerability dataset: %v", err))
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:8])
})

// fingerprint identifies everything a cached result depends on: the
// vulnerability dataset (content-addressed), the patch policy and the
// schedule. Engine snapshots (SnapshotCache/RestoreCache) carry it, so
// a cache dump taken under different inputs is rejected on restore
// rather than silently served. It is computed over the resolved values,
// not the raw fields, so Config{} and an explicit
// Config{CriticalThreshold: 8, PatchIntervalHours: 720} fingerprint
// identically — they build the same policy.
func (c Config) fingerprint() string {
	interval := c.PatchIntervalHours
	if interval <= 0 {
		interval = 720
	}
	policy := ""
	if c.PatchAll {
		policy = "all"
	} else {
		thr := c.CriticalThreshold
		if thr <= 0 {
			thr = 8.0
		}
		policy = fmt.Sprintf("thr=%g", thr)
	}
	return fmt.Sprintf("db=%s,%s,interval=%g", datasetFingerprint(), policy, interval)
}

// NewCaseStudyWithConfig builds the case study under a custom patch
// policy and schedule — the what-if knobs of the paper's §V (different
// patch schedules, different vulnerability selections).
func NewCaseStudyWithConfig(cfg Config) (*CaseStudy, error) {
	pol := patch.CriticalPolicy()
	if cfg.PatchAll {
		pol = patch.Policy{PatchAll: true}
	} else if cfg.CriticalThreshold > 0 {
		pol = patch.Policy{CriticalThreshold: cfg.CriticalThreshold}
	}
	sch := patch.MonthlySchedule()
	if cfg.PatchIntervalHours > 0 {
		sch.Interval = hours(cfg.PatchIntervalHours)
	}
	e, err := redundancy.NewEvaluator(redundancy.Options{Policy: &pol, Schedule: &sch})
	if err != nil {
		return nil, err
	}
	var de engine.DesignEvaluator = e
	if cfg.Chaos != nil {
		de = chaosEvaluator{inj: cfg.Chaos, next: e}
	}
	eng, err := engine.New(de, engine.Options{Workers: cfg.Workers, Fingerprint: cfg.fingerprint()})
	if err != nil {
		return nil, err
	}
	return &CaseStudy{eval: e, eng: eng}, nil
}

// EvaluateSpec evaluates a role-keyed design. Repeat evaluations of the
// same spec identity (tier order, roles, variants, replica counts) are
// served from the engine cache regardless of name.
func (s *CaseStudy) EvaluateSpec(spec DesignSpec) (DesignReport, error) {
	return s.EvaluateSpecCtx(context.Background(), spec)
}

// EvaluateSpecCtx is EvaluateSpec with the caller's context threaded
// through for tracing (internal/trace): when the context carries a
// tracer, the evaluation records engine and solver spans — cache
// hit/miss, which availability and security solver ran, memo hits and
// per-step durations — under the context's current span. The context
// never cancels a solve in flight; results stay shared across
// deduplicated callers.
func (s *CaseStudy) EvaluateSpecCtx(ctx context.Context, spec DesignSpec) (DesignReport, error) {
	p := spec.pd()
	if spec.Name == "" {
		p.Name = p.CanonicalName()
	}
	r, err := s.eng.EvaluateSpecCtx(ctx, p)
	if err != nil {
		return DesignReport{}, err
	}
	return convert(r), nil
}

// EvaluateDesign evaluates a classic design given per-tier replica
// counts (each at least 1).
//
// Deprecated: use EvaluateSpec, which also expresses arbitrary tier
// chains and heterogeneous variants. This wrapper evaluates the
// equivalent four-tier spec and produces an identical report.
func (s *CaseStudy) EvaluateDesign(name string, dns, web, app, db int) (DesignReport, error) {
	return s.EvaluateSpec(ClassicSpec(name, dns, web, app, db))
}

// PaperDesigns evaluates the five design choices of the paper's §IV in
// order (D1..D5).
func (s *CaseStudy) PaperDesigns() ([]DesignReport, error) {
	results, err := s.eng.EvaluateAll(paperdata.Designs())
	if err != nil {
		return nil, err
	}
	out := make([]DesignReport, len(results))
	for i, r := range results {
		out[i] = convert(r)
	}
	return out, nil
}

// BaseNetwork evaluates the paper's §III case-study network
// (1 DNS + 2 WEB + 2 APP + 1 DB), whose COA the paper reports as 0.99707.
func (s *CaseStudy) BaseNetwork() (DesignReport, error) {
	r, err := s.eng.Evaluate(paperdata.BaseDesign())
	if err != nil {
		return DesignReport{}, err
	}
	return convert(r), nil
}

// PatchRates returns the aggregated patch/recovery rates per server type
// (the paper's Table V), keyed by "dns", "web", "app", "db".
func (s *CaseStudy) PatchRates() map[string]PatchRates {
	agg := s.eval.AggregatedRates()
	plans := s.eval.Plans()
	out := make(map[string]PatchRates, len(agg))
	for role, a := range agg {
		pr := PatchRates{
			PatchRate:       a.LambdaEq,
			RecoveryRate:    a.MuEq,
			DowntimeMinutes: plans[role].TotalDowntime().Minutes(),
		}
		if a.LambdaEq > 0 {
			pr.MTTPHours = a.MTTP()
		}
		if a.MuEq > 0 {
			pr.MTTRHours = a.MTTR()
		}
		out[role] = pr
	}
	return out
}

func convert(r redundancy.Result) DesignReport {
	return DesignReport{
		Name:                r.Spec.Name,
		Description:         r.Spec.String(),
		Spec:                specFromPD(r.Spec),
		Servers:             r.Spec.Total(),
		Before:              summarize(r.Before),
		After:               summarize(r.After),
		COA:                 r.COA,
		ServiceAvailability: r.ServiceAvailability,
	}
}

// ScatterBounds are the Eq. 3 administrator bounds: an ASP ceiling (phi)
// and a COA floor (psi). The JSON tags are the redpatchd v2 wire shape.
type ScatterBounds struct {
	MaxASP float64 `json:"maxAsp"`
	MinCOA float64 `json:"minCoa"`
}

// MultiBounds are the Eq. 4 administrator bounds over four security
// metrics and COA. The JSON tags are the redpatchd v2 wire shape.
type MultiBounds struct {
	MaxASP  float64 `json:"maxAsp"`
	MaxNoEV int     `json:"maxNoev"`
	MaxNoAP int     `json:"maxNoap"`
	MaxNoEP int     `json:"maxNoep"`
	MinCOA  float64 `json:"minCoa"`
}

// SatisfiesScatter implements the paper's Eq. 3 on a design report.
func SatisfiesScatter(r DesignReport, b ScatterBounds) bool {
	return r.After.ASP <= b.MaxASP && r.COA >= b.MinCOA
}

// SatisfiesMulti implements the paper's Eq. 4 on a design report.
func SatisfiesMulti(r DesignReport, b MultiBounds) bool {
	return r.After.ASP <= b.MaxASP &&
		r.After.NoEV <= b.MaxNoEV &&
		r.After.NoAP <= b.MaxNoAP &&
		r.After.NoEP <= b.MaxNoEP &&
		r.COA >= b.MinCOA
}

// FilterScatter returns the designs satisfying Eq. 3, preserving order.
func FilterScatter(reports []DesignReport, b ScatterBounds) []DesignReport {
	var out []DesignReport
	for _, r := range reports {
		if SatisfiesScatter(r, b) {
			out = append(out, r)
		}
	}
	return out
}

// FilterMulti returns the designs satisfying Eq. 4, preserving order.
func FilterMulti(reports []DesignReport, b MultiBounds) []DesignReport {
	var out []DesignReport
	for _, r := range reports {
		if SatisfiesMulti(r, b) {
			out = append(out, r)
		}
	}
	return out
}

// Pareto returns the reports not dominated on (minimize after-patch ASP,
// maximize COA), sorted by ascending ASP.
func Pareto(reports []DesignReport) []DesignReport {
	var front []DesignReport
	for i, r := range reports {
		dominated := false
		for j, s := range reports {
			if i == j {
				continue
			}
			if s.After.ASP <= r.After.ASP && s.COA >= r.COA &&
				(s.After.ASP < r.After.ASP || s.COA > r.COA) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, r)
		}
	}
	for i := 1; i < len(front); i++ {
		for j := i; j > 0 && less(front[j], front[j-1]); j-- {
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	return front
}

func less(a, b DesignReport) bool {
	if a.After.ASP != b.After.ASP {
		return a.After.ASP < b.After.ASP
	}
	if a.COA != b.COA {
		return a.COA > b.COA
	}
	// Name is the final tiebreak so the front's order is a pure function
	// of its members — a sharded sweep that merges shard results in
	// arrival order serializes the same front bytes as a local sweep.
	return a.Name < b.Name
}

// CostModel monetizes a design per month (the paper's §V economics
// extension).
type CostModel struct {
	// ServerPerMonth is the operating cost of one server.
	ServerPerMonth float64
	// DowntimePerHour is the cost of one lost full-capacity hour.
	DowntimePerHour float64
	// BreachLoss is the loss of a successful compromise, weighted by the
	// after-patch ASP.
	BreachLoss float64
}

// MonthlyCost evaluates the model for one design report (720 h month).
func (c CostModel) MonthlyCost(r DesignReport) float64 {
	return c.ServerPerMonth*float64(r.Servers) +
		c.DowntimePerHour*(1-r.COA)*720 +
		c.BreachLoss*r.After.ASP
}

// PatchPriority is one entry of the vulnerability ranking: the
// network-level effect of patching a single CVE everywhere it occurs.
type PatchPriority struct {
	// CVE identifies the vulnerability.
	CVE string
	// Hosts lists the server instances carrying it.
	Hosts []string
	// RiskReduction is the drop in network risk (ASP x AIM) from patching
	// it alone; the ranking key.
	RiskReduction float64
	// ASPAfter is the network attack success probability with only this
	// CVE patched.
	ASPAfter float64
}

// RankPatchesSpec ranks the case study's policy-selected vulnerabilities
// of a role-keyed design by the network-level risk reduction of patching
// each alone — the prioritization an administrator needs when the
// selected set does not fit one maintenance window. The ranking uses the
// study's configured policy: a PatchAll study ranks every vulnerability,
// a threshold study only its critical set.
func (s *CaseStudy) RankPatchesSpec(spec DesignSpec) ([]PatchPriority, error) {
	candidates, err := s.eval.RankPatches(spec.pd())
	if err != nil {
		return nil, err
	}
	out := make([]PatchPriority, len(candidates))
	for i, c := range candidates {
		out[i] = PatchPriority{
			CVE:           c.Ref,
			Hosts:         c.Hosts,
			RiskReduction: c.RiskReduction,
			ASPAfter:      c.After.ASP,
		}
	}
	return out, nil
}

// RankPatches ranks the policy-selected vulnerabilities of a classic
// design.
//
// Deprecated: use RankPatchesSpec.
func (s *CaseStudy) RankPatches(name string, dns, web, app, db int) ([]PatchPriority, error) {
	return s.RankPatchesSpec(ClassicSpec(name, dns, web, app, db))
}

// CampaignRound is one maintenance round of a patch campaign.
type CampaignRound struct {
	// CVEs are the vulnerabilities patched in the round.
	CVEs []string `json:"cves"`
	// DowntimeMinutes is the round's service outage (patches plus merged
	// reboots).
	DowntimeMinutes float64 `json:"downtimeMinutes"`
}

// CampaignPlan splits one stack role's policy-selected patches across
// maintenance rounds bounded by a per-round window.
type CampaignPlan struct {
	// Role is the stack role the plan covers.
	Role string `json:"role"`
	// WindowMinutes is the per-round downtime budget.
	WindowMinutes float64 `json:"windowMinutes"`
	// Rounds are the planned rounds in execution order, most severe
	// vulnerabilities earliest.
	Rounds []CampaignRound `json:"rounds"`
	// TotalRounds counts them.
	TotalRounds int `json:"totalRounds"`
	// Deferred lists vulnerabilities whose lone patch exceeds the window
	// — always present, so API clients can tell "nothing deferred" from
	// an older server that never reported deferrals.
	Deferred []string `json:"deferred"`
	// ResidualASP traces the composite attack-surface probability of the
	// role's still-unpatched selected vulnerabilities after each
	// completed round: entry 0 is before any round; with deferrals the
	// last entry is the floor they leave behind.
	ResidualASP []float64 `json:"residualAsp"`
	// TotalDowntimeMinutes sums the rounds.
	TotalDowntimeMinutes float64 `json:"totalDowntimeMinutes"`
}

// PlanCampaign distributes the policy-selected patches of a stack role
// ("dns", "web", "webalt", ...) over successive rounds so no round's
// downtime exceeds the window — the paper's §III multi-month patching
// future work, under the study's own policy and schedule.
func (s *CaseStudy) PlanCampaign(role string, window time.Duration) (CampaignPlan, error) {
	camp, err := s.eval.PlanCampaign(role, window)
	if err != nil {
		return CampaignPlan{}, err
	}
	residual, err := s.eval.CampaignResidualASP(role, camp)
	if err != nil {
		return CampaignPlan{}, err
	}
	out := CampaignPlan{
		Role:                 role,
		WindowMinutes:        window.Minutes(),
		Rounds:               make([]CampaignRound, len(camp.Rounds)),
		TotalRounds:          camp.TotalRounds(),
		Deferred:             []string{},
		ResidualASP:          residual,
		TotalDowntimeMinutes: camp.TotalDowntime().Minutes(),
	}
	for i, r := range camp.Rounds {
		round := CampaignRound{DowntimeMinutes: r.TotalDowntime().Minutes()}
		for _, v := range r.Selected {
			round.CVEs = append(round.CVEs, v.ID)
		}
		out.Rounds[i] = round
	}
	for _, v := range camp.Deferred {
		out.Deferred = append(out.Deferred, v.ID)
	}
	return out, nil
}

// MeanTimeToServiceOutageSpec returns the expected hours from an all-up
// start until some logical tier of the design first loses all servers to
// patching.
func (s *CaseStudy) MeanTimeToServiceOutageSpec(spec DesignSpec) (float64, error) {
	nm, err := s.eval.NetworkModelFor(spec.pd())
	if err != nil {
		return 0, err
	}
	return availability.MeanTimeToServiceDown(nm)
}

// MeanTimeToServiceOutage is the classic-tuple MeanTimeToServiceOutageSpec.
//
// Deprecated: use MeanTimeToServiceOutageSpec.
func (s *CaseStudy) MeanTimeToServiceOutage(name string, dns, web, app, db int) (float64, error) {
	return s.MeanTimeToServiceOutageSpec(ClassicSpec(name, dns, web, app, db))
}

// EnumerateDesigns evaluates every design with 1..maxPerTier replicas per
// tier (the larger design spaces of §V), concurrently and cached.
func (s *CaseStudy) EnumerateDesigns(maxPerTier int) ([]DesignReport, error) {
	if maxPerTier < 1 {
		return nil, fmt.Errorf("redpatch: maxPerTier must be at least 1, have %d", maxPerTier)
	}
	results, err := s.eng.EvaluateAll(redundancy.EnumerateDesigns(maxPerTier))
	if err != nil {
		return nil, err
	}
	out := make([]DesignReport, len(results))
	for i, r := range results {
		out[i] = convert(r)
	}
	return out, nil
}

// SweepRange is an inclusive per-tier replica range; the zero value means
// "exactly one replica".
type SweepRange struct {
	Min, Max int
}

// TierSweep is one tier of a role-keyed sweep: an inclusive replica
// range plus the stack variants to enumerate. An empty Variants set
// sweeps the role's own stack only; listing variants (the empty string
// stands for the base stack) multiplies the space by the stack choices —
// the paper's §V heterogeneous-redundancy exploration.
type TierSweep struct {
	Role     string   `json:"role"`
	Min      int      `json:"min"`
	Max      int      `json:"max"`
	Variants []string `json:"variants,omitempty"`
}

// SweepShard restricts a sweep to one hash partition of its design
// space: the designs whose paperdata.ShardIndex(spec.Key(), Count)
// equals Index. Shards are disjoint and cover the space — a
// coordinator that runs every shard exactly once evaluates exactly
// the unsharded sweep. The JSON tags are the redpatchd v2 wire shape
// (the cluster worker RPC).
type SweepShard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// SpecSweepRequest describes a role-keyed design-space sweep: an ordered
// list of tier sweeps plus optional administrator bounds. Designs
// failing a configured bound are dropped as they are evaluated, never
// accumulated.
type SpecSweepRequest struct {
	Tiers []TierSweep `json:"tiers"`
	// Scatter, when non-nil, applies the Eq. 3 bounds.
	Scatter *ScatterBounds `json:"scatter,omitempty"`
	// Multi, when non-nil, applies the Eq. 4 bounds.
	Multi *MultiBounds `json:"multi,omitempty"`
	// Shard, when non-nil, restricts the sweep to one hash partition of
	// the design space. SweepSize still reports the full space — the
	// request-cap guard — while the sweep's total reflects the shard.
	Shard *SweepShard `json:"shard,omitempty"`
}

func (r SpecSweepRequest) spec() engine.SweepSpec {
	spec := engine.SweepSpec{Tiers: make([]engine.TierSweep, len(r.Tiers))}
	for i, t := range r.Tiers {
		spec.Tiers[i] = engine.TierSweep{
			Role:     t.Role,
			Replicas: engine.Range{Min: t.Min, Max: t.Max},
			Variants: t.Variants,
		}
	}
	if r.Scatter != nil {
		spec.Scatter = &redundancy.ScatterBounds{MaxASP: r.Scatter.MaxASP, MinCOA: r.Scatter.MinCOA}
	}
	if r.Multi != nil {
		spec.Multi = &redundancy.MultiBounds{
			MaxASP: r.Multi.MaxASP, MaxNoEV: r.Multi.MaxNoEV,
			MaxNoAP: r.Multi.MaxNoAP, MaxNoEP: r.Multi.MaxNoEP, MinCOA: r.Multi.MinCOA,
		}
	}
	if r.Shard != nil {
		spec.Shard = &engine.SweepShard{Index: r.Shard.Index, Count: r.Shard.Count}
	}
	return spec
}

// SweepSize returns the number of designs the request enumerates,
// without evaluating any.
func (r SpecSweepRequest) SweepSize() int { return r.spec().Size() }

// Validate rejects requests with no tiers, unknown roles or variants,
// and nonsensical replica ranges.
func (r SpecSweepRequest) Validate() error { return r.spec().Validate() }

// SweepRequest describes a classic design-space sweep: a replica range
// per fixed tier plus optional administrator bounds.
//
// Deprecated: use SpecSweepRequest, which also sweeps arbitrary tier
// chains and variant sets. A SweepRequest sweeps the equivalent
// four-tier spec with identical results.
type SweepRequest struct {
	DNS, Web, App, DB SweepRange
	// Scatter, when non-nil, applies the Eq. 3 bounds.
	Scatter *ScatterBounds
	// Multi, when non-nil, applies the Eq. 4 bounds.
	Multi *MultiBounds
}

// FullSweep requests every design with 1..maxPerTier replicas per tier.
// maxPerTier < 1 yields a request that fails Validate (and therefore
// Sweep) instead of silently sweeping a single design.
func FullSweep(maxPerTier int) SweepRequest {
	r := SweepRange{Min: 1, Max: maxPerTier}
	if maxPerTier < 1 {
		r = SweepRange{Min: 1, Max: -1}
	}
	return SweepRequest{DNS: r, Web: r, App: r, DB: r}
}

// Spec converts the classic request into its role-keyed equivalent.
func (r SweepRequest) Spec() SpecSweepRequest {
	return SpecSweepRequest{
		Tiers: []TierSweep{
			{Role: paperdata.RoleDNS, Min: r.DNS.Min, Max: r.DNS.Max},
			{Role: paperdata.RoleWeb, Min: r.Web.Min, Max: r.Web.Max},
			{Role: paperdata.RoleApp, Min: r.App.Min, Max: r.App.Max},
			{Role: paperdata.RoleDB, Min: r.DB.Min, Max: r.DB.Max},
		},
		Scatter: r.Scatter,
		Multi:   r.Multi,
	}
}

// SweepSize returns the number of designs a request enumerates, without
// evaluating any.
func (r SweepRequest) SweepSize() int { return r.Spec().SweepSize() }

// Validate rejects nonsensical replica ranges (negative or inverted).
func (r SweepRequest) Validate() error { return r.Spec().Validate() }

// SweepSummary is a completed sweep.
type SweepSummary struct {
	// Total is the number of designs enumerated and evaluated (possibly
	// from cache).
	Total int
	// Reports are the designs passing the request's bounds, in
	// lexicographic (dns, web, app, db) enumeration order.
	Reports []DesignReport
	// Pareto is the (minimize after-patch ASP, maximize COA) front over
	// Reports, sorted by ascending ASP.
	Pareto []DesignReport
}

// SweepSpec evaluates the requested role-keyed design space on the
// engine's worker pool and returns the bound-filtered reports plus their
// Pareto front. The context cancels an in-flight sweep.
func (s *CaseStudy) SweepSpec(ctx context.Context, req SpecSweepRequest) (SweepSummary, error) {
	res, err := s.eng.Sweep(ctx, req.spec())
	if err != nil {
		return SweepSummary{}, err
	}
	out := SweepSummary{
		Total:   res.Total,
		Reports: make([]DesignReport, len(res.Kept)),
		Pareto:  make([]DesignReport, len(res.Front)),
	}
	for i, r := range res.Kept {
		out.Reports[i] = convert(r)
	}
	for i, r := range res.Front {
		out.Pareto[i] = convert(r)
	}
	return out, nil
}

// SweepSpecPareto evaluates the requested design space but returns only
// its Pareto front (plus the enumerated-design count) — for callers that
// do not need the full kept set.
func (s *CaseStudy) SweepSpecPareto(ctx context.Context, req SpecSweepRequest) (int, []DesignReport, error) {
	total, front, err := s.eng.SweepPareto(ctx, req.spec())
	if err != nil {
		return 0, nil, err
	}
	out := make([]DesignReport, len(front))
	for i, r := range front {
		out[i] = convert(r)
	}
	return total, out, nil
}

// SweepSpecEach streams every report passing the request's bounds to fn
// as designs finish evaluating (completion order). fn runs on one
// collector goroutine; returning an error cancels the sweep. The total
// number of enumerated designs is returned.
func (s *CaseStudy) SweepSpecEach(ctx context.Context, req SpecSweepRequest, fn func(DesignReport) error) (int, error) {
	return s.eng.SweepFunc(ctx, req.spec(), func(r redundancy.Result) error {
		return fn(convert(r))
	})
}

// SweepSpecEachProgress is SweepSpecEach plus a progress callback:
// progress runs on the collector goroutine after every completed
// evaluation — kept or bound-filtered — with the count of designs done
// so far and the total. redpatchd's NDJSON sweep stream derives its
// periodic progress events (done/total, cache-hit ratio, ETA) from it.
func (s *CaseStudy) SweepSpecEachProgress(ctx context.Context, req SpecSweepRequest, fn func(DesignReport) error, progress func(done, total int)) (int, error) {
	return s.eng.SweepFuncProgress(ctx, req.spec(), func(r redundancy.Result) error {
		return fn(convert(r))
	}, progress)
}

// Sweep evaluates a classic design space.
//
// Deprecated: use SweepSpec.
func (s *CaseStudy) Sweep(ctx context.Context, req SweepRequest) (SweepSummary, error) {
	return s.SweepSpec(ctx, req.Spec())
}

// SweepPareto evaluates a classic design space, returning only the
// Pareto front.
//
// Deprecated: use SweepSpecPareto.
func (s *CaseStudy) SweepPareto(ctx context.Context, req SweepRequest) (int, []DesignReport, error) {
	return s.SweepSpecPareto(ctx, req.Spec())
}

// SweepEach streams a classic design space.
//
// Deprecated: use SweepSpecEach.
func (s *CaseStudy) SweepEach(ctx context.Context, req SweepRequest, fn func(DesignReport) error) (int, error) {
	return s.SweepSpecEach(ctx, req.Spec(), fn)
}

// EngineStats reports the evaluation engine's cache behaviour: Solves is
// the number of full model evaluations performed, Hits the number of
// requests served from the memo cache (including requests that joined an
// in-flight solve of the same design). The solver counters break the
// model work down by dispatch path: FactoredSolves counts network
// availability models answered by the per-tier factored solver, SRNSolves
// those that generated and eliminated the full SRN, and
// TierSolves/TierFactorHits the per-(stack, replicas) birth–death memo
// misses and hits behind the factored path. On the security axis,
// SecurityFactored counts spec evaluations served by the quotient
// (replica-symmetric) HARM evaluator, SecuritySolves the factored
// security models built (one per variant structure), and
// SecurityFactorHits the evaluations served from the security memo.
// The rollout counters cover mixed-version evaluation: RolloutSolves
// rollout points evaluated by the engine, RolloutHits points served
// from (or deduplicated onto) the rollout memo, RolloutModels
// mixed-version security models built (one per rollout structure), and
// RolloutModelHits evaluations served from that memo.
type EngineStats struct {
	Solves             uint64
	Hits               uint64
	FactoredSolves     uint64
	SRNSolves          uint64
	TierSolves         uint64
	TierFactorHits     uint64
	SecurityFactored   uint64
	SecuritySolves     uint64
	SecurityFactorHits uint64
	RolloutSolves      uint64
	RolloutHits        uint64
	RolloutModels      uint64
	RolloutModelHits   uint64
}

// EngineStats returns a snapshot of the case study's cache counters.
func (s *CaseStudy) EngineStats() EngineStats {
	st := s.eng.Stats()
	return EngineStats{
		Solves:             st.Solves,
		Hits:               st.Hits,
		FactoredSolves:     st.FactoredSolves,
		SRNSolves:          st.SRNSolves,
		TierSolves:         st.TierSolves,
		TierFactorHits:     st.TierFactorHits,
		SecurityFactored:   st.SecurityFactored,
		SecuritySolves:     st.SecuritySolves,
		SecurityFactorHits: st.SecurityFactorHits,
		RolloutSolves:      st.RolloutSolves,
		RolloutHits:        st.RolloutHits,
		RolloutModels:      st.RolloutModels,
		RolloutModelHits:   st.RolloutModelHits,
	}
}

// CacheEntries reports the number of completed designs in the engine's
// memo cache (in-flight solves excluded).
func (s *CaseStudy) CacheEntries() int { return s.eng.Len() }

// CachePeek reports whether spec's result is already completed in the
// engine's memo cache, without solving, waiting or moving any counter.
// redpatchd's admission control uses it to let warm evaluate requests
// bypass the limiter: a true peek means the matching EvaluateSpec is a
// map lookup. Best-effort — a concurrent eviction of an erred entry or
// a racing solve may change the answer by the time the evaluation
// runs, which costs at most one un-admitted solve.
func (s *CaseStudy) CachePeek(spec DesignSpec) bool {
	p := spec.pd()
	if spec.Name == "" {
		p.Name = p.CanonicalName()
	}
	return s.eng.Peek(p)
}

// SnapshotCache writes the engine's memo cache to w as versioned JSON,
// fingerprinted by the vulnerability dataset, patch policy and schedule
// the study was built under, and reports how many entries it wrote.
// redpatchd dumps each scenario's cache this way on graceful shutdown
// so a restart keeps the warmed cache.
func (s *CaseStudy) SnapshotCache(w io.Writer) (int, error) { return s.eng.Snapshot(w) }

// RestoreCache merges a SnapshotCache dump into the engine's memo cache
// and reports how many entries it added. A dump taken under a different
// vulnerability dataset, policy or schedule — a different fingerprint —
// is rejected with engine.ErrSnapshotFingerprint and changes nothing;
// designs already cached (or being solved) keep their live results.
func (s *CaseStudy) RestoreCache(r io.Reader) (int, error) { return s.eng.Restore(r) }
