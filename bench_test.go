package redpatch

// Benchmark harness: one benchmark per table and figure of the paper
// (DESIGN.md §4 maps them to experiments E1–E11), plus ablation benches
// for the design choices DESIGN.md calls out (recovery semantics, ASP
// aggregation strategy, closed-form vs SRN availability). Each benchmark
// regenerates its artefact per iteration, so ns/op measures the cost of a
// full reproduction of that table or figure.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"redpatch/internal/admission"
	"redpatch/internal/attacktree"
	"redpatch/internal/availability"
	"redpatch/internal/cluster"
	"redpatch/internal/engine"
	"redpatch/internal/harm"
	"redpatch/internal/paperdata"
	"redpatch/internal/patch"
	"redpatch/internal/queueing"
	"redpatch/internal/redundancy"
	"redpatch/internal/sim"
	"redpatch/internal/srn"
	"redpatch/internal/trace"
	"redpatch/internal/vulndb"
)

// BenchmarkTable1VulnerabilityScores scores the full curated dataset
// (impact, exploitability, base score, criticality) as Table I requires.
func BenchmarkTable1VulnerabilityScores(b *testing.B) {
	db := paperdata.VulnDB()
	vulns := db.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var criticals int
		for _, v := range vulns {
			_ = v.Impact()
			_ = v.ASP()
			if v.IsCritical(8.0) {
				criticals++
			}
		}
		// 14 case-study criticals + 2 on the alternative web stack.
		if criticals != 16 {
			b.Fatalf("criticals = %d", criticals)
		}
	}
}

// BenchmarkFigure3HARMConstruction builds the two-layered HARMs of
// Fig. 3: the before-patch model and its patched transformation.
func BenchmarkFigure3HARMConstruction(b *testing.B) {
	db := paperdata.VulnDB()
	trees := paperdata.Trees(db)
	top, err := paperdata.Topology(paperdata.BaseDesign())
	if err != nil {
		b.Fatal(err)
	}
	pol := patch.CriticalPolicy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := harm.Build(harm.BuildInput{Topology: top, Trees: trees, TargetRoles: []string{paperdata.RoleDB}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Patched(func(role string, l *attacktree.Leaf) bool {
			v, ok := db.ByID(l.Ref)
			return !ok || !pol.Selects(v)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2SecurityMetrics evaluates the five security metrics
// before and after patch on the base network (Table II).
func BenchmarkTable2SecurityMetrics(b *testing.B) {
	db := paperdata.VulnDB()
	top, err := paperdata.Topology(paperdata.BaseDesign())
	if err != nil {
		b.Fatal(err)
	}
	h, err := harm.Build(harm.BuildInput{Topology: top, Trees: paperdata.Trees(db), TargetRoles: []string{paperdata.RoleDB}})
	if err != nil {
		b.Fatal(err)
	}
	pol := patch.CriticalPolicy()
	patched, err := h.Patched(func(role string, l *attacktree.Leaf) bool {
		v, ok := db.ByID(l.Ref)
		return !ok || !pol.Selects(v)
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := harm.EvalOptions{Strategy: harm.ASPCompromise, ORRule: attacktree.ORNoisy}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before, err := h.Evaluate(opts)
		if err != nil {
			b.Fatal(err)
		}
		after, err := patched.Evaluate(opts)
		if err != nil {
			b.Fatal(err)
		}
		if before.NoAP != 8 || after.NoAP != 4 {
			b.Fatal("wrong path counts")
		}
	}
}

// BenchmarkTable3GuardEvaluation builds the guarded server SRN of Table
// III and generates its state space (every guard evaluated across the
// reachability exploration).
func BenchmarkTable3GuardEvaluation(b *testing.B) {
	params, _, err := paperdata.ServerParams(paperdata.VulnDB(), paperdata.RoleDNS, patch.CriticalPolicy(), patch.MonthlySchedule())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, _, err := availability.BuildServerSRN(params)
		if err != nil {
			b.Fatal(err)
		}
		ss, err := net.Generate(srn.GenerateOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if ss.NumTangible() != 27 {
			b.Fatalf("tangible = %d", ss.NumTangible())
		}
	}
}

// BenchmarkTable4ServerModelSolve solves the DNS server's lower-layer
// model with the Table IV parameters (state space + CTMC steady state).
func BenchmarkTable4ServerModelSolve(b *testing.B) {
	params, _, err := paperdata.ServerParams(paperdata.VulnDB(), paperdata.RoleDNS, patch.CriticalPolicy(), patch.MonthlySchedule())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := availability.SolveServer(params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5AggregatedRates solves and aggregates all four server
// types (the whole of Table V).
func BenchmarkTable5AggregatedRates(b *testing.B) {
	db := paperdata.VulnDB()
	var params []availability.ServerParams
	for _, role := range paperdata.Roles() {
		p, _, err := paperdata.ServerParams(db, role, patch.CriticalPolicy(), patch.MonthlySchedule())
		if err != nil {
			b.Fatal(err)
		}
		params = append(params, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range params {
			sol, err := availability.SolveServer(p)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := availability.Aggregate(sol); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable6COA solves the upper-layer network model of the base
// design and evaluates the Table VI reward.
func BenchmarkTable6COA(b *testing.B) {
	nm := paperNetworkModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := availability.SolveNetwork(nm)
		if err != nil {
			b.Fatal(err)
		}
		if sol.COA < 0.99 {
			b.Fatal("implausible COA")
		}
	}
}

// BenchmarkFigure6Scatter regenerates both Fig. 6 panels: five designs
// evaluated on (ASP, COA) plus the Eq. 3 regions.
func BenchmarkFigure6Scatter(b *testing.B) {
	s, ds := caseStudy(b)
	_ = s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1 := FilterScatter(ds, ScatterBounds{MaxASP: 0.2, MinCOA: 0.9962})
		r2 := FilterScatter(ds, ScatterBounds{MaxASP: 0.1, MinCOA: 0.9961})
		if len(r1) != 2 || len(r2) != 1 {
			b.Fatal("wrong regions")
		}
	}
}

// BenchmarkFigure6DesignEvaluation measures the full five-design
// evaluation behind Fig. 6 (security models + availability per design).
func BenchmarkFigure6DesignEvaluation(b *testing.B) {
	s, _ := caseStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PaperDesigns(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Radar regenerates both Fig. 7 panels (six metrics per
// design) plus the Eq. 4 regions.
func BenchmarkFigure7Radar(b *testing.B) {
	_, ds := caseStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1 := FilterMulti(ds, MultiBounds{MaxASP: 0.2, MaxNoEV: 9, MaxNoAP: 2, MaxNoEP: 1, MinCOA: 0.9962})
		r2 := FilterMulti(ds, MultiBounds{MaxASP: 0.1, MaxNoEV: 7, MaxNoAP: 1, MaxNoEP: 1, MinCOA: 0.9961})
		if len(r1) != 1 || len(r2) != 1 {
			b.Fatal("wrong regions")
		}
	}
}

// BenchmarkAblationRedundancyPlacement compares the COA gain of placing
// one redundant server in each tier (paper §IV-C observation 1).
func BenchmarkAblationRedundancyPlacement(b *testing.B) {
	nm := paperNetworkModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best := ""
		bestCOA := 0.0
		for idx, tier := range nm.Tiers {
			variant := availability.NetworkModel{Tiers: append([]availability.Tier(nil), nm.Tiers...)}
			for j := range variant.Tiers {
				variant.Tiers[j].N = 1
			}
			variant.Tiers[idx].N = 2
			coa, err := availability.ClosedFormCOA(variant)
			if err != nil {
				b.Fatal(err)
			}
			if coa > bestCOA {
				bestCOA, best = coa, tier.Name
			}
		}
		if best != "app" {
			b.Fatalf("best placement = %s, want app", best)
		}
	}
}

// BenchmarkAblationRecoverySemantics compares per-server and
// single-repair recovery in the upper layer.
func BenchmarkAblationRecoverySemantics(b *testing.B) {
	nm := paperNetworkModel(b)
	single := nm
	single.Recovery = availability.SingleRepair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per, err := availability.SolveNetwork(nm)
		if err != nil {
			b.Fatal(err)
		}
		ser, err := availability.SolveNetwork(single)
		if err != nil {
			b.Fatal(err)
		}
		if ser.COA > per.COA {
			b.Fatal("single repair cannot beat per-server recovery")
		}
	}
}

// BenchmarkAblationASPStrategies compares the three ASP aggregation
// strategies on the patched base network.
func BenchmarkAblationASPStrategies(b *testing.B) {
	db := paperdata.VulnDB()
	top, err := paperdata.Topology(paperdata.BaseDesign())
	if err != nil {
		b.Fatal(err)
	}
	h, err := harm.Build(harm.BuildInput{Topology: top, Trees: paperdata.Trees(db), TargetRoles: []string{paperdata.RoleDB}})
	if err != nil {
		b.Fatal(err)
	}
	pol := patch.CriticalPolicy()
	patched, err := h.Patched(func(role string, l *attacktree.Leaf) bool {
		v, ok := db.ByID(l.Ref)
		return !ok || !pol.Selects(v)
	})
	if err != nil {
		b.Fatal(err)
	}
	strategies := []harm.ASPStrategy{harm.ASPMaxPath, harm.ASPIndependentPaths, harm.ASPCompromise}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range strategies {
			if _, err := patched.Evaluate(harm.EvalOptions{Strategy: st}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationClosedFormCOA compares the closed-form COA against the
// SRN solve it replaces in sweeps.
func BenchmarkAblationClosedFormCOA(b *testing.B) {
	nm := paperNetworkModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := availability.ClosedFormCOA(nm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionPatchSchedules sweeps the patch interval (weekly,
// monthly, quarterly) over the base network (§V extension).
func BenchmarkExtensionPatchSchedules(b *testing.B) {
	nm := paperNetworkModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := 0.0
		for _, interval := range []float64{168, 720, 2160} {
			variant := availability.NetworkModel{Tiers: append([]availability.Tier(nil), nm.Tiers...)}
			for j := range variant.Tiers {
				variant.Tiers[j].LambdaEq = 1 / interval
			}
			coa, err := availability.ClosedFormCOA(variant)
			if err != nil {
				b.Fatal(err)
			}
			if coa < prev {
				b.Fatal("COA must grow with the interval")
			}
			prev = coa
		}
	}
}

// BenchmarkExtensionQueueing evaluates user-oriented performance of the
// web tier under patch (§V extension).
func BenchmarkExtensionQueueing(b *testing.B) {
	capacity := queueing.BinomialCapacity(2, 0.99919)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queueing.ResponseUnderPatch(1000, 900, capacity); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionDesignSpace sweeps the 16-design space (1..2 replicas
// per tier) with closed-form COA — the §V "larger systems" extension.
func BenchmarkExtensionDesignSpace(b *testing.B) {
	nm := paperNetworkModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		for dns := 1; dns <= 2; dns++ {
			for web := 1; web <= 2; web++ {
				for app := 1; app <= 2; app++ {
					for db := 1; db <= 2; db++ {
						variant := availability.NetworkModel{Tiers: append([]availability.Tier(nil), nm.Tiers...)}
						variant.Tiers[0].N = dns
						variant.Tiers[1].N = web
						variant.Tiers[2].N = app
						variant.Tiers[3].N = db
						if _, err := availability.ClosedFormCOA(variant); err != nil {
							b.Fatal(err)
						}
						count++
					}
				}
			}
		}
		if count != 16 {
			b.Fatal("wrong design count")
		}
	}
}

// BenchmarkSimulationValidation runs the Monte-Carlo cross-validation of
// the upper-layer model (short horizon per iteration).
func BenchmarkSimulationValidation(b *testing.B) {
	nm := paperNetworkModel(b)
	net, ups, err := availability.BuildNetworkSRN(nm)
	if err != nil {
		b.Fatal(err)
	}
	reward := availability.COAReward(nm, ups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.EstimateReward(net, reward, sim.Options{Horizon: 2000, Batches: 2, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalabilityHARM measures security-model evaluation as the
// network grows: n replicas in every tier multiply the attack paths
// (n^3(n+1) of them), the scalability pressure the HARM literature
// targets.
func BenchmarkScalabilityHARM(b *testing.B) {
	db := paperdata.VulnDB()
	trees := paperdata.Trees(db)
	for _, n := range []int{1, 2, 3, 4} {
		n := n
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			top, err := paperdata.Topology(paperdata.Design{Name: "scale", DNS: n, Web: n, App: n, DB: n})
			if err != nil {
				b.Fatal(err)
			}
			h, err := harm.Build(harm.BuildInput{Topology: top, Trees: trees, TargetRoles: []string{paperdata.RoleDB}})
			if err != nil {
				b.Fatal(err)
			}
			// Path-OR aggregation keeps the bench about enumeration, not
			// about the exponential exact computation.
			opts := harm.EvalOptions{Strategy: harm.ASPIndependentPaths}
			wantPaths := n * n * n * (n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := h.Evaluate(opts)
				if err != nil {
					b.Fatal(err)
				}
				if m.NoAP != wantPaths {
					b.Fatalf("paths = %d, want %d", m.NoAP, wantPaths)
				}
			}
		})
	}
}

// BenchmarkScalabilitySRN measures upper-layer availability solving as
// replica counts grow: the state space spans (n+1)^4 states. Since PR 3
// SolveNetwork dispatches PerServer models to the factored per-tier
// solver, so this measures the production path; the generated-SRN
// elimination it replaced is BenchmarkScalabilitySRNOracle.
func BenchmarkScalabilitySRN(b *testing.B) {
	base := paperNetworkModel(b)
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			nm := availability.NetworkModel{Tiers: append([]availability.Tier(nil), base.Tiers...)}
			for i := range nm.Tiers {
				nm.Tiers[i].N = n
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := availability.SolveNetwork(nm)
				if err != nil {
					b.Fatal(err)
				}
				want := (n + 1) * (n + 1) * (n + 1) * (n + 1)
				if sol.States != want {
					b.Fatalf("states = %d, want %d", sol.States, want)
				}
				if !sol.Factored {
					b.Fatal("PerServer model not dispatched to the factored path")
				}
			}
		})
	}
}

// BenchmarkScalabilitySRNOracle measures the generated-SRN path the
// factored solver replaced (kept as the SingleRepair solver and the
// cross-validation oracle): state-space generation plus CTMC steady
// state over (n+1)^4 states.
func BenchmarkScalabilitySRNOracle(b *testing.B) {
	base := paperNetworkModel(b)
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			nm := availability.NetworkModel{Tiers: append([]availability.Tier(nil), base.Tiers...)}
			for i := range nm.Tiers {
				nm.Tiers[i].N = n
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := availability.SolveNetworkSRN(nm)
				if err != nil {
					b.Fatal(err)
				}
				want := (n + 1) * (n + 1) * (n + 1) * (n + 1)
				if sol.States != want {
					b.Fatalf("states = %d, want %d", sol.States, want)
				}
			}
		})
	}
}

// BenchmarkScalabilityFactored pushes the factored solver past where the
// product CTMC stops being generable at all: 33^4 through 257^4 states.
func BenchmarkScalabilityFactored(b *testing.B) {
	base := paperNetworkModel(b)
	for _, n := range []int{32, 64, 256} {
		n := n
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			nm := availability.NetworkModel{Tiers: append([]availability.Tier(nil), base.Tiers...)}
			for i := range nm.Tiers {
				nm.Tiers[i].N = n
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := availability.SolveNetwork(nm)
				if err != nil {
					b.Fatal(err)
				}
				if sol.COA <= 0 || sol.COA >= 1 {
					b.Fatalf("implausible COA %v", sol.COA)
				}
			}
		})
	}
}

// BenchmarkExtensionTransientCOA measures the availability trajectory
// computation (uniformization over the 36-state base network).
func BenchmarkExtensionTransientCOA(b *testing.B) {
	nm := paperNetworkModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := availability.TransientCOA(nm, 720); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionCampaign measures multi-round campaign planning for
// all four server roles under a 35-minute window.
func BenchmarkExtensionCampaign(b *testing.B) {
	db := paperdata.VulnDB()
	roleVulns := make(map[string][]vulndb.Vulnerability, 4)
	for _, role := range paperdata.Roles() {
		vulns, err := paperdata.VulnsForRole(db, role)
		if err != nil {
			b.Fatal(err)
		}
		roleVulns[role] = vulns
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for role, vulns := range roleVulns {
			camp, err := patch.PlanCampaign(role, vulns, patch.CriticalPolicy(), patch.MonthlySchedule(), 35*time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			if camp.TotalRounds() == 0 {
				b.Fatal("empty campaign")
			}
		}
	}
}

// BenchmarkExtensionPatchPrioritization measures the greedy
// vulnerability-ranking extension on the base network.
func BenchmarkExtensionPatchPrioritization(b *testing.B) {
	db := paperdata.VulnDB()
	top, err := paperdata.Topology(paperdata.BaseDesign())
	if err != nil {
		b.Fatal(err)
	}
	h, err := harm.Build(harm.BuildInput{Topology: top, Trees: paperdata.Trees(db), TargetRoles: []string{paperdata.RoleDB}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RankPatchCandidates(harm.EvalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// paperNetworkModel returns the aggregated base-design network model,
// cached across benchmarks.
func paperNetworkModel(b *testing.B) availability.NetworkModel {
	b.Helper()
	paperNMOnce.Do(func() {
		db := paperdata.VulnDB()
		var params []availability.ServerParams
		for _, role := range paperdata.Roles() {
			p, _, err := paperdata.ServerParams(db, role, patch.CriticalPolicy(), patch.MonthlySchedule())
			if err != nil {
				paperNMErr = err
				return
			}
			params = append(params, p)
		}
		paperNM, _, paperNMErr = availability.SolveServerTiers(params, paperdata.BaseDesign().Counts())
	})
	if paperNMErr != nil {
		b.Fatal(paperNMErr)
	}
	return paperNM
}

var (
	paperNM     availability.NetworkModel
	paperNMErr  error
	paperNMOnce sync.Once
)

// securityBenchCases are the replica counts the security benchmarks run
// at, each with the heaviest ASP strategy that stays feasible on the
// expanded topology: the production exact-compromise configuration at
// replicas=4 (65536 host combinations), path-OR at replicas=8 (4608
// expanded paths; the exact computation is infeasible on the expanded
// model there, while the quotient path handles it trivially).
func securityBenchCases() []struct {
	name string
	n    int
	opts harm.EvalOptions
} {
	return []struct {
		name string
		n    int
		opts harm.EvalOptions
	}{
		{"replicas=4", 4, harm.EvalOptions{Strategy: harm.ASPCompromise, ORRule: attacktree.ORNoisy}},
		{"replicas=8", 8, harm.EvalOptions{Strategy: harm.ASPIndependentPaths, ORRule: attacktree.ORNoisy}},
	}
}

// securityKeep is the critical-policy patch transformation used by both
// security benchmarks.
func securityKeep(b *testing.B) func(string, *attacktree.Leaf) bool {
	b.Helper()
	db := paperdata.VulnDB()
	pol := patch.CriticalPolicy()
	return func(role string, l *attacktree.Leaf) bool {
		v, ok := db.ByID(l.Ref)
		return !ok || !pol.Selects(v)
	}
}

// BenchmarkSecurityExpanded measures one spec's security evaluation on
// the replica-expanded HARM — build, evaluate, patch, evaluate — the
// per-spec cost EvaluateSpec paid before the factored path.
func BenchmarkSecurityExpanded(b *testing.B) {
	trees := paperdata.Trees(paperdata.VulnDB())
	keep := securityKeep(b)
	for _, tc := range securityBenchCases() {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := paperdata.Design{Name: "sec", DNS: tc.n, Web: tc.n, App: tc.n, DB: tc.n}.Spec()
			wantPaths := tc.n * tc.n * tc.n * (tc.n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				top, err := paperdata.SpecTopology(spec)
				if err != nil {
					b.Fatal(err)
				}
				h, err := harm.Build(harm.BuildInput{Topology: top, Trees: trees, TargetRoles: spec.TargetStacks()})
				if err != nil {
					b.Fatal(err)
				}
				before, err := h.Evaluate(tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				patched, err := h.Patched(keep)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := patched.Evaluate(tc.opts); err != nil {
					b.Fatal(err)
				}
				if before.NoAP != wantPaths {
					b.Fatalf("paths = %d, want %d", before.NoAP, wantPaths)
				}
			}
		})
	}
}

// BenchmarkSecurityQuotient measures the same per-spec security
// evaluation on the factored (quotient) model, built cold per iteration:
// quotient topology, factored HARM, patch transformation and both
// closed-form metric evaluations. The memoized path the sweeps take
// (BenchmarkSweepSecurityFactored) amortizes everything but the two
// Evaluate calls.
func BenchmarkSecurityQuotient(b *testing.B) {
	trees := paperdata.Trees(paperdata.VulnDB())
	keep := securityKeep(b)
	for _, tc := range securityBenchCases() {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := paperdata.Design{Name: "sec", DNS: tc.n, Web: tc.n, App: tc.n, DB: tc.n}.Spec()
			wantPaths := tc.n * tc.n * tc.n * (tc.n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				quotient, mult, _, err := paperdata.SpecQuotient(spec)
				if err != nil {
					b.Fatal(err)
				}
				top, err := paperdata.SpecTopology(quotient)
				if err != nil {
					b.Fatal(err)
				}
				f, err := harm.BuildFactored(harm.BuildInput{Topology: top, Trees: trees, TargetRoles: quotient.TargetStacks()})
				if err != nil {
					b.Fatal(err)
				}
				before, err := f.Evaluate(mult, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				patched, err := f.Patched(keep)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := patched.Evaluate(mult, tc.opts); err != nil {
					b.Fatal(err)
				}
				if before.NoAP != wantPaths {
					b.Fatalf("paths = %d, want %d", before.NoAP, wantPaths)
				}
			}
		})
	}
}

// BenchmarkSecurityQuotientMemo measures the steady-state per-spec
// security evaluation — the factored model already memoized (as in every
// sweep past the first spec of a variant structure), leaving only the
// two closed-form Evaluate calls. This is the security cost EvaluateSpec
// actually pays per design; compare BenchmarkSecurityExpanded for what
// it paid before the factored path.
func BenchmarkSecurityQuotientMemo(b *testing.B) {
	trees := paperdata.Trees(paperdata.VulnDB())
	keep := securityKeep(b)
	for _, tc := range securityBenchCases() {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := paperdata.Design{Name: "sec", DNS: tc.n, Web: tc.n, App: tc.n, DB: tc.n}.Spec()
			quotient, mult, _, err := paperdata.SpecQuotient(spec)
			if err != nil {
				b.Fatal(err)
			}
			top, err := paperdata.SpecTopology(quotient)
			if err != nil {
				b.Fatal(err)
			}
			f, err := harm.BuildFactored(harm.BuildInput{Topology: top, Trees: trees, TargetRoles: quotient.TargetStacks()})
			if err != nil {
				b.Fatal(err)
			}
			patched, err := f.Patched(keep)
			if err != nil {
				b.Fatal(err)
			}
			wantPaths := tc.n * tc.n * tc.n * (tc.n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				before, err := f.Evaluate(mult, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := patched.Evaluate(mult, tc.opts); err != nil {
					b.Fatal(err)
				}
				if before.NoAP != wantPaths {
					b.Fatalf("paths = %d, want %d", before.NoAP, wantPaths)
				}
			}
		})
	}
}

// BenchmarkSweepSecurityFactored is the sweep-scale security headline:
// the 81-design 3^4 replica space evaluated fully cold — fresh evaluator
// and engine per iteration — where the security memo holds the whole
// space to a single factored HARM build (all 81 designs share one
// variant structure).
func BenchmarkSweepSecurityFactored(b *testing.B) {
	spec := engine.FullSpace(3)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := redundancy.NewEvaluator(redundancy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.New(ev, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Sweep(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total != 81 {
			b.Fatalf("total = %d, want 81", res.Total)
		}
		st := ev.SolverStats()
		if st.SecuritySolves != 1 || st.SecurityFactored != 81 {
			b.Fatalf("security solves/factored = %d/%d, want 1/81",
				st.SecuritySolves, st.SecurityFactored)
		}
	}
}

// BenchmarkSweepSerial is the pre-engine baseline: the 16-design space
// (1..2 replicas per tier) evaluated by the serial EvaluateAll loop, no
// caching, one core.
func BenchmarkSweepSerial(b *testing.B) {
	ev, err := redundancy.NewEvaluator(redundancy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	designs := redundancy.EnumerateDesigns(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateAll(designs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same 16-design space through the
// engine's worker pool with a cold cache per iteration, so ns/op isolates
// the fan-out gain over BenchmarkSweepSerial (expect ~no gain on one
// core, near-linear scaling on multi-core).
func BenchmarkSweepParallel(b *testing.B) {
	ev, err := redundancy.NewEvaluator(redundancy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	spec := engine.FullSpace(2)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := engine.New(ev, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Sweep(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCold81 is the sweep-scale headline: the 81-design 3^4
// replica space evaluated cold (fresh engine and evaluator memo per
// iteration). The factored path holds the availability work to one tier
// solve per distinct (role, replicas) pair — 12 for this space.
func BenchmarkSweepCold81(b *testing.B) {
	ev, err := redundancy.NewEvaluator(redundancy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	spec := engine.FullSpace(3)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := engine.New(ev, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Sweep(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total != 81 {
			b.Fatalf("total = %d, want 81", res.Total)
		}
	}
}

// BenchmarkTraceOverhead prices the span tracer against the cold
// 81-design sweep. "off" carries no tracer in the context — the
// disabled Start path, which must stay allocation-free — while "on"
// records the full span tree (sweep root, per-design evaluate spans,
// solver children) into a bounded ring, exactly what redpatchd does per
// request. The CI bench gate holds "on" within a few percent of "off".
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, ctx context.Context) {
		ev, err := redundancy.NewEvaluator(redundancy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		spec := engine.FullSpace(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(ev, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Sweep(ctx, spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Total != 81 {
				b.Fatalf("total = %d, want 81", res.Total)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, context.Background()) })
	b.Run("on", func(b *testing.B) {
		run(b, trace.WithTracer(context.Background(), trace.New(trace.Options{})))
	})
}

// BenchmarkSweepCached measures the repeat-sweep path: every design is
// served from the engine's memo cache, no model is re-solved.
func BenchmarkSweepCached(b *testing.B) {
	ev, err := redundancy.NewEvaluator(redundancy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New(ev, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	spec := engine.FullSpace(2)
	ctx := context.Background()
	if _, err := eng.Sweep(ctx, spec); err != nil { // prime the cache
		b.Fatal(err)
	}
	solvesBefore := eng.Stats().Solves
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Sweep(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := eng.Stats().Solves; s != solvesBefore {
		b.Fatalf("cached sweep re-solved %d designs", s-solvesBefore)
	}
}

// BenchmarkClusterSweepLocalFallback measures the coordinator's
// graceful-degradation path: with zero configured workers a cluster
// sweep collapses to one in-process execution, whose overhead over
// calling the sweep directly must stay within a few percent. The memo
// cache is primed first so ns/op isolates coordination cost (sharding,
// dedup, result plumbing) rather than solver time; the "direct"
// sub-benchmark is the denominator recorded beside it in the committed
// baseline.
func BenchmarkClusterSweepLocalFallback(b *testing.B) {
	study, err := NewCaseStudy()
	if err != nil {
		b.Fatal(err)
	}
	req := SpecSweepRequest{Tiers: []TierSweep{
		{Role: "web", Min: 1, Max: 4},
		{Role: "app", Min: 1, Max: 4},
	}}
	ctx := context.Background()
	runLocal := func(ctx context.Context, sh cluster.Shard, emit func(cluster.Report) error) (int, error) {
		r := req
		if sh.Count > 1 {
			r.Shard = &SweepShard{Index: sh.Index, Count: sh.Count}
		}
		return study.SweepSpecEach(ctx, r, func(rep DesignReport) error {
			return emit(cluster.Report{Key: rep.Spec.Key()})
		})
	}
	if _, err := runLocal(ctx, cluster.Shard{Count: 1}, func(cluster.Report) error { return nil }); err != nil {
		b.Fatal(err) // prime the memo cache
	}

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kept := 0
			total, err := runLocal(ctx, cluster.Shard{Count: 1}, func(cluster.Report) error { kept++; return nil })
			if err != nil || total != 16 || kept != 16 {
				b.Fatalf("direct sweep: total %d kept %d err %v", total, kept, err)
			}
		}
	})
	b.Run("coordinator", func(b *testing.B) {
		coord := cluster.New(nil, cluster.Options{})
		job := cluster.Job{Local: runLocal}
		for i := 0; i < b.N; i++ {
			n := 0
			total, kept, err := coord.Sweep(ctx, job, 4, func(cluster.Report) error { n++; return nil }, nil)
			if err != nil || total != 16 || kept != 16 || n != 16 {
				b.Fatalf("fallback sweep: total %d kept %d emitted %d err %v", total, kept, n, err)
			}
		}
	})
}

// BenchmarkRolloutQuotient measures one mixed-version rollout point's
// security evaluation built fully cold: sub-classed rollout quotient,
// topology, factored HARM with per-instance pruned trees, and the
// closed-form metric evaluation. This is the model-build cost the
// evaluator's rollout memo amortizes across a whole schedule.
func BenchmarkRolloutQuotient(b *testing.B) {
	trees := paperdata.Trees(paperdata.VulnDB())
	keep := securityKeep(b)
	spec := paperdata.Design{Name: "rq", DNS: 2, Web: 4, App: 4, DB: 2}.Spec()
	patched := []int{1, 2, 2, 1}
	opts := harm.EvalOptions{Strategy: harm.ASPCompromise, ORRule: attacktree.ORNoisy}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq, err := paperdata.SpecRolloutQuotient(spec, patched)
		if err != nil {
			b.Fatal(err)
		}
		top, err := paperdata.SpecTopology(rq.Quotient)
		if err != nil {
			b.Fatal(err)
		}
		f, err := harm.BuildFactoredRollout(harm.BuildInput{
			Topology:    top,
			Trees:       trees,
			TargetRoles: rq.Quotient.TargetStacks(),
		}, rq.PatchedHosts, keep)
		if err != nil {
			b.Fatal(err)
		}
		m, err := f.Evaluate(rq.Mult, opts)
		if err != nil {
			b.Fatal(err)
		}
		if m.NoAP == 0 {
			b.Fatal("no attack paths")
		}
	}
}

// BenchmarkRolloutSweep is the rollout headline: a 8-wave rolling
// schedule over the 2-3-2-2 design swept through the engine fully cold —
// fresh evaluator and engine per iteration, so ns/op covers every
// mixed-version model build, the partial tier factors and the NDJSON-
// ready per-point results, exactly what one first-time
// POST /api/v2/rollout/sweep pays.
func BenchmarkRolloutSweep(b *testing.B) {
	spec := paperdata.Design{Name: "rs", DNS: 2, Web: 3, App: 2, DB: 2}.Spec()
	sched := redundancy.RolloutSchedule{Strategy: redundancy.RolloutRolling, Steps: 8}
	points, err := sched.Points(len(spec.Tiers))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := redundancy.NewEvaluator(redundancy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.New(ev, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		err = eng.RolloutSweep(ctx, spec, points, func(step int, r redundancy.RolloutResult) error {
			n++
			return nil
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if n != len(points) {
			b.Fatalf("streamed %d points, want %d", n, len(points))
		}
	}
}

// BenchmarkAdmissionOverhead prices the admission limiter against the
// warm evaluate path — the cheapest request redpatchd serves, so the
// least favourable denominator for the limiter's fixed cost. "off" is
// the bare memoized evaluation; "on" adds an uncontended
// Acquire/release pair, the fast path every admitted request takes.
// The CI bench gate holds both within the shared tolerance, keeping
// the resilience layer honest about its per-request overhead.
func BenchmarkAdmissionOverhead(b *testing.B) {
	study, err := NewCaseStudy()
	if err != nil {
		b.Fatal(err)
	}
	spec := ClassicSpec("admission-bench", 1, 2, 2, 1)
	if _, err := study.EvaluateSpec(spec); err != nil { // prime the memo cache
		b.Fatal(err)
	}
	run := func(b *testing.B, lim *admission.Limiter) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if lim != nil {
				release, err := lim.Acquire(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := study.EvaluateSpecCtx(ctx, spec); err != nil {
					b.Fatal(err)
				}
				release()
				continue
			}
			if _, err := study.EvaluateSpecCtx(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		run(b, admission.New("evaluate", admission.Options{
			Concurrency: 64,
			Queue:       256,
			MaxWait:     10 * time.Second,
		}))
	})
}
